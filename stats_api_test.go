package pax_test

import (
	"strings"
	"testing"

	"pax"
)

func TestPoolStatsSnapshot(t *testing.T) {
	pool, err := pax.MapPool("", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	m, err := pax.NewMap(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := m.Put([]byte{byte(i), 'k'}, []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := pool.Persist()
	if err != nil {
		t.Fatal(err)
	}

	s := pool.Stats()
	if s.DevicePersists == 0 || s.DeviceLogAppends == 0 || s.HostUpgrades == 0 {
		t.Fatalf("counters did not move: %+v", s)
	}
	if s.DurableEpoch != st.Epoch || s.Epoch != st.Epoch+1 {
		t.Fatalf("epoch bookkeeping: stats %d/%d, persist reported %d", s.Epoch, s.DurableEpoch, st.Epoch)
	}
	if s.DeviceHBMMisses != s.DeviceFillsServed-s.DeviceHBMHits {
		t.Fatalf("HBM miss derivation inconsistent: %+v", s)
	}
	if s.LogCapacityEntries == 0 || s.LogAppends == 0 {
		t.Fatalf("log counters did not move: %+v", s)
	}

	text := pool.StatsRegistry().Text()
	for _, metric := range []string{"pax_device_persists", "pax_durable_epoch", "pax_host_upgrades", "pax_log_appends_total"} {
		if !strings.Contains(text, metric+" ") {
			t.Fatalf("registry missing %s:\n%s", metric, text)
		}
	}
}
