package pax_test

// One benchmark per paper table/figure (and per DESIGN.md ablation), each
// regenerating its experiment on the simulator, plus per-operation
// micro-benchmarks of every system under test.
//
// Benchmarks report two kinds of numbers: Go's wall-clock ns/op measures the
// *simulator*; the custom metrics (sim-ns/op, etc.) are the simulated
// quantities the paper's figures are about.

import (
	"testing"

	"pax/internal/benchkit"
	"pax/internal/workload"
)

// benchSizes keeps experiment benchmarks to sub-second iterations while
// still exercising every code path.
func benchSizes() benchkit.Sizes {
	return benchkit.Sizes{Keys: 2000, MeasureOps: 2000, PersistEvery: 200, Threads: []int{1, 8, 16, 24, 32}}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := benchkit.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchkit.TestConfig()
	sz := benchSizes()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg, sz)
		if len(tables) == 0 {
			b.Fatal("no output tables")
		}
	}
}

// Paper figures.

func BenchmarkFig2aAMAT(b *testing.B)       { runExperiment(b, "fig2a") }
func BenchmarkFig2bThroughput(b *testing.B) { runExperiment(b, "fig2b") }
func BenchmarkFig2bPAX(b *testing.B)        { runExperiment(b, "fig2b-pax") }

// Ablations and analyses from DESIGN.md's experiment index.

func BenchmarkWriteAmplification(b *testing.B) { runExperiment(b, "wamp") }
func BenchmarkStallBreakdown(b *testing.B)     { runExperiment(b, "stalls") }
func BenchmarkTrapOverhead(b *testing.B)       { runExperiment(b, "traps") }
func BenchmarkBandwidthCeilings(b *testing.B)  { runExperiment(b, "bw") }
func BenchmarkDeviceClockSweep(b *testing.B)   { runExperiment(b, "devrate") }
func BenchmarkEpochLength(b *testing.B)        { runExperiment(b, "epoch") }
func BenchmarkEvictionPolicy(b *testing.B)     { runExperiment(b, "evict") }
func BenchmarkRecovery(b *testing.B)           { runExperiment(b, "recovery") }
func BenchmarkLinkLatencySweep(b *testing.B)   { runExperiment(b, "latsweep") }
func BenchmarkHBMSize(b *testing.B)            { runExperiment(b, "hbmsize") }
func BenchmarkOverlappedPersist(b *testing.B)  { runExperiment(b, "overlap") }
func BenchmarkCapacityCost(b *testing.B)       { runExperiment(b, "capacity") }

// Per-operation micro-benchmarks: wall time measures the simulator itself;
// the sim-ns/op metric is the simulated per-operation latency.

func benchPuts(b *testing.B, kind benchkit.SystemKind, persistEvery int) {
	b.Helper()
	f, err := benchkit.Build(kind, benchkit.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Fig2bConfig(4096))
	// Warm the table.
	for i := uint64(0); i < 4096; i++ {
		if err := f.Map.Put(gen.MakeKey(i), gen.MakeValue(i)); err != nil {
			b.Fatal(err)
		}
	}
	start := f.Core.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		if err := f.Map.Put(op.Key, op.Value); err != nil {
			b.Fatal(err)
		}
		if persistEvery > 0 && (i+1)%persistEvery == 0 {
			f.Persist()
		}
	}
	b.StopTimer()
	elapsed := f.Core.Now() - start
	b.ReportMetric(elapsed.Nanoseconds()/float64(b.N), "sim-ns/op")
}

func BenchmarkPutDRAM(b *testing.B)      { benchPuts(b, benchkit.DRAM, 0) }
func BenchmarkPutPMDirect(b *testing.B)  { benchPuts(b, benchkit.PMDirect, 0) }
func BenchmarkPutPMDK(b *testing.B)      { benchPuts(b, benchkit.PMDK, 0) }
func BenchmarkPutCompiler(b *testing.B)  { benchPuts(b, benchkit.CompilerPass, 0) }
func BenchmarkPutPageFault(b *testing.B) { benchPuts(b, benchkit.PageFault, 200) }
func BenchmarkPutPAXCXL(b *testing.B)    { benchPuts(b, benchkit.PAXCXL, 200) }
func BenchmarkPutPAXEnzian(b *testing.B) { benchPuts(b, benchkit.PAXEnzian, 200) }

func BenchmarkGetPAXCXL(b *testing.B) {
	f, err := benchkit.Build(benchkit.PAXCXL, benchkit.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Fig2aConfig(4096))
	for i := uint64(0); i < 4096; i++ {
		f.Map.Put(gen.MakeKey(i), gen.MakeValue(i))
	}
	f.Persist()
	start := f.Core.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := gen.Next()
		if _, ok := f.Map.Get(op.Key); !ok {
			b.Fatal("loaded key missing")
		}
	}
	b.StopTimer()
	elapsed := f.Core.Now() - start
	b.ReportMetric(elapsed.Nanoseconds()/float64(b.N), "sim-ns/op")
}

func BenchmarkPersistLatency(b *testing.B) {
	f, err := benchkit.Build(benchkit.PAXCXL, benchkit.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGenerator(workload.Fig2bConfig(4096))
	var persistSim float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Dirty 64 lines, then persist them.
		for j := 0; j < 64; j++ {
			op := gen.Next()
			f.Map.Put(op.Key, op.Value)
		}
		before := f.Core.Now()
		f.Persist()
		persistSim += (f.Core.Now() - before).Nanoseconds()
	}
	b.StopTimer()
	b.ReportMetric(persistSim/float64(b.N), "sim-ns/persist")
}

func BenchmarkRecoveryOpen(b *testing.B) {
	// Cost of opening a pool with a crashed epoch of ~1000 dirty lines.
	f, err := benchkit.Build(benchkit.PAXCXL, benchkit.TestConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := f.Pool.Mem(0)
	base := f.Pool.DataBase() + 1<<20
	for i := uint64(0); i < 1000; i++ {
		m.Store(base+i*64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}
	img := f.PM.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := benchkit.ReopenCrashImage(f, img)
		if err != nil {
			b.Fatal(err)
		}
		if pool.Recovery().LinesRolledBack == 0 {
			b.Fatal("nothing recovered")
		}
	}
}

func BenchmarkYCSBMixes(b *testing.B) { runExperiment(b, "ycsb") }

func BenchmarkHybridPaging(b *testing.B) { runExperiment(b, "hybrid") }

func BenchmarkTailLatency(b *testing.B) { runExperiment(b, "tail") }

func BenchmarkScanWorkload(b *testing.B) { runExperiment(b, "scan") }

// BenchmarkLoadgenServing drives the paxserve group-commit engine with
// concurrent clients (throughput and persist-batch amortization vs client
// count); see also `paxbench -loadgen`.
func BenchmarkLoadgenServing(b *testing.B) { runExperiment(b, "loadgen") }
