package pax_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"pax"
)

func smallOpts() pax.Options {
	return pax.Options{DataSize: 2 << 20, LogSize: 2 << 20, Profile: pax.ProfileCXL, HBMSize: 64 << 10}
}

func TestListing1Workflow(t *testing.T) {
	// The paper's Listing 1, in Go.
	pool, err := pax.MapPool("", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	m, err := pax.NewMap(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	m.Put([]byte("1"), []byte("100"))
	if v, ok := m.Get([]byte("1")); !ok || string(v) != "100" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	m.Put([]byte("2"), []byte("200"))
	st, err := pool.Persist()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch == 0 || st.SimulatedLatency <= 0 {
		t.Fatalf("persist stats %+v", st)
	}
}

func TestFileBackedRestartRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "restart.pool")
	opts := smallOpts()

	pool, err := pax.MapPool(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := pax.NewMap(pool, 0)
	for i := 0; i < 100; i++ {
		m.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i)))
	}
	pool.Persist()
	m.Put([]byte("unpersisted"), []byte("dies"))
	if err := pool.Close(); err != nil { // close without persist = crash
		t.Fatal(err)
	}

	// "Restart the process": map the same pool file.
	pool2, err := pax.MapPool(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if pool2.Recovery().DurableEpoch == 0 {
		t.Fatal("no recovery info after reopen")
	}
	m2, err := pax.NewMap(pool2, 0) // same call as construction (§3.4)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 100 {
		t.Fatalf("recovered %d entries, want 100", m2.Len())
	}
	if v, ok := m2.Get([]byte("k042")); !ok || string(v) != "v042" {
		t.Fatalf("k042 = %q %v", v, ok)
	}
	if _, ok := m2.Get([]byte("unpersisted")); ok {
		t.Fatal("unpersisted entry survived restart")
	}
}

func TestAllStructureFacades(t *testing.T) {
	path := filepath.Join(t.TempDir(), "structs.pool")
	pool, err := pax.MapPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}

	m, _ := pax.NewMap(pool, 0)
	sm, _ := pax.NewSortedMap(pool, 1)
	q, _ := pax.NewQueue(pool, 2)
	v, _ := pax.NewVector(pool, 3, 8)

	m.Put([]byte("hash"), []byte("map"))
	sm.Put([]byte("bbb"), []byte("2"))
	sm.Put([]byte("aaa"), []byte("1"))
	q.Push([]byte("first"))
	q.Push([]byte("second"))
	v.Push([]byte("elem0001"))
	v.Push([]byte("elem0002"))
	pool.Persist()
	pool.Close()

	pool2, err := pax.MapPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	m2, _ := pax.NewMap(pool2, 0)
	sm2, _ := pax.NewSortedMap(pool2, 1)
	q2, _ := pax.NewQueue(pool2, 2)
	v2, _ := pax.NewVector(pool2, 3, 8)

	if val, ok := m2.Get([]byte("hash")); !ok || string(val) != "map" {
		t.Fatal("map lost")
	}
	if k, val, ok := sm2.Min(); !ok || string(k) != "aaa" || string(val) != "1" {
		t.Fatalf("sorted map min = %q/%q", k, val)
	}
	var scanned []string
	sm2.Scan(nil, func(k, _ []byte) bool {
		scanned = append(scanned, string(k))
		return true
	})
	if len(scanned) != 2 || scanned[0] != "aaa" || scanned[1] != "bbb" {
		t.Fatalf("scan = %v", scanned)
	}
	if got, ok := q2.Peek(); !ok || string(got) != "first" {
		t.Fatal("queue order lost")
	}
	if got, ok, _ := q2.Pop(); !ok || string(got) != "first" {
		t.Fatal("queue pop wrong")
	}
	if v2.Len() != 2 || v2.ElemSize() != 8 {
		t.Fatalf("vector len=%d elem=%d", v2.Len(), v2.ElemSize())
	}
	buf := make([]byte, 8)
	v2.Get(1, buf)
	if !bytes.Equal(buf, []byte("elem0002")) {
		t.Fatalf("vector[1] = %q", buf)
	}
}

func TestIndexFacade(t *testing.T) {
	path := filepath.Join(t.TempDir(), "index.pool")
	pool, err := pax.MapPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := pax.NewIndex(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 500; i++ {
		if err := ix.Put(i*3, i); err != nil {
			t.Fatal(err)
		}
	}
	ix.Delete(0)
	pool.Persist()
	pool.Close()

	pool2, err := pax.MapPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	ix2, err := pax.NewIndex(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Len() != 499 {
		t.Fatalf("recovered %d entries", ix2.Len())
	}
	if k, v, ok := ix2.Min(); !ok || k != 3 || v != 1 {
		t.Fatalf("min = %d/%d %v", k, v, ok)
	}
	var scanned int
	prev := uint64(0)
	ix2.Scan(0, func(k, v uint64) bool {
		if scanned > 0 && k <= prev {
			t.Fatalf("scan out of order at %d", k)
		}
		prev = k
		scanned++
		return true
	})
	if scanned != 499 {
		t.Fatalf("scan visited %d", scanned)
	}
}

func TestPersistAsync(t *testing.T) {
	pool, err := pax.MapPool("", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	m, _ := pax.NewMap(pool, 0)
	for round := 0; round < 5; round++ {
		m.Put([]byte{byte(round)}, []byte{byte(round)})
		st, err := pool.PersistAsync()
		if err != nil {
			t.Fatal(err)
		}
		if st.Epoch == 0 {
			t.Fatal("no epoch in async persist stats")
		}
	}
	if pool.DurableEpoch() < 5 {
		t.Fatalf("durable epoch %d after 5 async persists", pool.DurableEpoch())
	}
}

func TestEnzianProfile(t *testing.T) {
	opts := smallOpts()
	opts.Profile = pax.ProfileEnzian
	pool, err := pax.MapPool("", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	m, _ := pax.NewMap(pool, 0)
	m.Put([]byte("e"), []byte("nzian"))
	pool.Persist()
	if v, ok := m.Get([]byte("e")); !ok || string(v) != "nzian" {
		t.Fatal("enzian-profile pool broken")
	}
}

func TestOptionValidation(t *testing.T) {
	bad := smallOpts()
	bad.Profile = "quantum"
	if _, err := pax.MapPool("", bad); err == nil {
		t.Fatal("bogus profile accepted")
	}
	if _, err := pax.OpenPool(filepath.Join(t.TempDir(), "missing.pool"), smallOpts()); err == nil {
		t.Fatal("opened nonexistent pool")
	}
	pool, _ := pax.MapPool("", smallOpts())
	defer pool.Close()
	if _, err := pax.NewMap(pool, 99); err == nil {
		t.Fatal("root slot 99 accepted")
	}
}

func TestOddHBMSizeNormalized(t *testing.T) {
	// Arbitrary (non-power-of-two) HBM sizes must be rounded to a valid
	// geometry, not panic.
	for _, size := range []int{0, 1, 63, 100_000, 1 << 20, 3<<20 + 7} {
		opts := smallOpts()
		opts.HBMSize = size
		pool, err := pax.MapPool("", opts)
		if err != nil {
			t.Fatalf("HBMSize %d: %v", size, err)
		}
		m, _ := pax.NewMap(pool, 0)
		m.Put([]byte("k"), []byte("v"))
		pool.Persist()
		pool.Close()
	}
}

func TestRawAllocLoadStore(t *testing.T) {
	pool, err := pax.MapPool("", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	addr, err := pool.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	pool.Store(addr, []byte("raw vPM access"))
	buf := make([]byte, 14)
	pool.Load(addr, buf)
	if string(buf) != "raw vPM access" {
		t.Fatalf("got %q", buf)
	}
	pool.SetRoot(5, addr)
	if pool.Root(5) != addr {
		t.Fatal("root round trip failed")
	}
	if err := pool.Free(addr, 128); err != nil {
		t.Fatal(err)
	}
}

func TestEpochAccounting(t *testing.T) {
	pool, _ := pax.MapPool("", smallOpts())
	defer pool.Close()
	e0 := pool.Epoch()
	d0 := pool.DurableEpoch()
	if e0 != d0+1 {
		t.Fatalf("epoch %d, durable %d", e0, d0)
	}
	m, _ := pax.NewMap(pool, 0)
	m.Put([]byte("x"), []byte("y"))
	pool.Persist()
	if pool.DurableEpoch() != d0+1 || pool.Epoch() != e0+1 {
		t.Fatalf("epochs after persist: durable %d epoch %d", pool.DurableEpoch(), pool.Epoch())
	}
}
