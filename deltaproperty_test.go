package pax_test

// Recovery-equivalence property tests for the epoch store: the same op
// sequence driven through a full-image pool and an epoch-log pool, with the
// same persist and crash schedule, must recover to byte-identical media
// after every restart — (checkpoint + replayed deltas) IS the full image.
// A torn final append must recover to the previous committed epoch.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"pax"
	"pax/internal/epochlog"
)

func deltaOpts() pax.Options {
	o := smallOpts()
	o.EpochLog = true
	return o
}

// copyPoolState clones a pool's on-disk durable state (checkpoint file plus
// segment directory) — the image a crash at this instant would leave.
func copyPoolState(t *testing.T, src, dst string) {
	t.Helper()
	img, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, img, 0o644); err != nil {
		t.Fatal(err)
	}
	srcDir := src + epochlog.DirSuffix
	entries, err := os.ReadDir(srcDir)
	if errors.Is(err, os.ErrNotExist) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst+epochlog.DirSuffix, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst+epochlog.DirSuffix, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEpochLogMatchesFullImageAcrossRestarts(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()
			fullPath := filepath.Join(dir, "full.pool")
			deltaPath := filepath.Join(dir, "delta.pool")

			full, err := pax.MapPool(fullPath, smallOpts())
			if err != nil {
				t.Fatal(err)
			}
			delta, err := pax.MapPool(deltaPath, deltaOpts())
			if err != nil {
				t.Fatal(err)
			}
			fm, err := pax.NewMap(full, 0)
			if err != nil {
				t.Fatal(err)
			}
			dm, err := pax.NewMap(delta, 0)
			if err != nil {
				t.Fatal(err)
			}

			// Apply the same op to both pools; they must stay in lockstep.
			both := func(op func(m *pax.Map) error) {
				t.Helper()
				if err := op(fm); err != nil {
					t.Fatal(err)
				}
				if err := op(dm); err != nil {
					t.Fatal(err)
				}
			}

			for round := 0; round < 5; round++ {
				ops := 10 + rng.Intn(40)
				for i := 0; i < ops; i++ {
					k := []byte(fmt.Sprintf("k%03d", rng.Intn(60)))
					if rng.Intn(4) == 0 {
						both(func(m *pax.Map) error { _, err := m.Delete(k); return err })
					} else {
						v := []byte(fmt.Sprintf("v%06d", rng.Intn(1_000_000)))
						both(func(m *pax.Map) error { return m.Put(k, v) })
					}
				}
				if rng.Intn(2) == 0 {
					if _, err := full.Persist(); err != nil {
						t.Fatal(err)
					}
					if _, err := delta.Persist(); err != nil {
						t.Fatal(err)
					}
				}
				if rng.Intn(3) == 0 {
					// Crash both and reopen: the recovered media must be
					// byte-identical, whichever way it was persisted.
					full.Close()
					delta.Close()
					full, err = pax.MapPool(fullPath, smallOpts())
					if err != nil {
						t.Fatal(err)
					}
					delta, err = pax.MapPool(deltaPath, deltaOpts())
					if err != nil {
						t.Fatal(err)
					}
					fimg := full.Internal().PM().Snapshot()
					dimg := delta.Internal().PM().Snapshot()
					if !bytes.Equal(fimg, dimg) {
						off := -1
						for i := range fimg {
							if fimg[i] != dimg[i] {
								off = i
								break
							}
						}
						t.Fatalf("round %d: recovered media diverges at offset %#x (full=%x delta=%x)",
							round, off, fimg[off], dimg[off])
					}
					fm, err = pax.NewMap(full, 0)
					if err != nil {
						t.Fatal(err)
					}
					dm, err = pax.NewMap(delta, 0)
					if err != nil {
						t.Fatal(err)
					}
				}
			}
			full.Close()
			delta.Close()
		})
	}
}

// TestEpochLogTornTailRecoversPreviousCommit cuts the final delta append
// mid-record — the crash the commit marker exists to catch — and verifies
// the pool recovers to the previous committed epoch, not to garbage and not
// to the torn epoch.
func TestEpochLogTornTailRecoversPreviousCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.pool")
	pool, err := pax.CreatePool(path, deltaOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := pax.NewMap(pool, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Committed state: batch A.
	for i := 0; i < 16; i++ {
		if err := m.Put([]byte(fmt.Sprintf("a%02d", i)), []byte("committed")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.Persist(); err != nil {
		t.Fatal(err)
	}
	epochA := pool.DurableEpoch()

	// Batch B commits too — and then its append is torn.
	for i := 0; i < 16; i++ {
		if err := m.Put([]byte(fmt.Sprintf("b%02d", i)), []byte("torn")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := pool.Persist(); err != nil {
		t.Fatal(err)
	}

	torn := filepath.Join(dir, "torn.pool")
	copyPoolState(t, path, torn)
	pool.Close()

	// Cut into the newest segment's trailer: the last record loses its
	// commit marker, exactly as if the crash hit mid-append.
	segs, err := filepath.Glob(filepath.Join(torn+epochlog.DirSuffix, "seg-*.seg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in torn copy: %v", err)
	}
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, fi.Size()-9); err != nil {
		t.Fatal(err)
	}

	re, err := pax.OpenPool(torn, deltaOpts())
	if err != nil {
		t.Fatalf("opening torn pool: %v", err)
	}
	defer re.Close()
	if !re.Internal().PM().ReplayInfo().TornTail {
		t.Fatal("replay did not report the torn tail")
	}
	if got := re.DurableEpoch(); got != epochA {
		t.Fatalf("recovered durable epoch = %d, want %d (previous commit)", got, epochA)
	}
	rm, err := pax.NewMap(re, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		v, ok := rm.Get([]byte(fmt.Sprintf("a%02d", i)))
		if !ok || string(v) != "committed" {
			t.Fatalf("committed key a%02d lost: %q %v", i, v, ok)
		}
		if _, ok := rm.Get([]byte(fmt.Sprintf("b%02d", i))); ok {
			t.Fatalf("torn key b%02d survived the cut append", i)
		}
	}
}
