// blackbox: the paper's "Black-Box Code Reuse" claim, demonstrated. One
// hash-map implementation — written with no knowledge of persistence — runs
// unchanged over five memory backends:
//
//   - DRAM (volatile),
//   - PM direct (fast, NOT crash consistent),
//   - a PMDK-style transactional memory (hand-crafted WAL),
//   - page-fault change tracking,
//   - a PAX vPM region (crash consistent, asynchronous logging).
//
// The example runs the same operation sequence on each backend, checks the
// results are identical, and prints what each mechanism paid for it.
//
//	go run ./examples/blackbox
package main

import (
	"fmt"
	"log"

	"pax/internal/benchkit"
	"pax/internal/workload"
)

func main() {
	cfg := benchkit.TestConfig()
	spec := benchkit.RunSpec{
		Workload:     workload.Fig2bConfig(2000),
		LoadKeys:     2000,
		MeasureOps:   4000,
		PersistEvery: 0,
	}

	fmt.Println("one HashMap implementation, five backends, identical op stream:")
	fmt.Println()
	fmt.Printf("%-14s %12s %12s %12s %10s %10s\n",
		"backend", "sim ns/op", "fences/op", "log B/op", "traps/op", "crash-safe")

	type row struct {
		kind  benchkit.SystemKind
		safe  string
		every int
	}
	rows := []row{
		{benchkit.DRAM, "no (volatile)", 0},
		{benchkit.PMDirect, "NO", 0},
		{benchkit.PMDK, "yes (per op)", 0},
		{benchkit.PageFault, "yes (epochs)", 500},
		{benchkit.PAXCXL, "yes (epochs)", 500},
	}

	var golden map[string]string
	for _, r := range rows {
		f, err := benchkit.Build(r.kind, cfg)
		if err != nil {
			log.Fatal(err)
		}
		s := spec
		s.PersistEvery = r.every
		res := benchkit.RunKV(f, s)

		// Equivalence check: every backend must produce the same map.
		gen := workload.NewGenerator(spec.Workload)
		contents := map[string]string{}
		for i := uint64(0); i < 2000; i++ {
			if v, ok := f.Map.Get(gen.MakeKey(i)); ok {
				contents[string(gen.MakeKey(i))] = string(v)
			}
		}
		if golden == nil {
			golden = contents
		} else if len(contents) != len(golden) {
			log.Fatalf("%s diverged: %d keys vs %d", r.kind, len(contents), len(golden))
		} else {
			for k, v := range golden {
				if contents[k] != v {
					log.Fatalf("%s diverged on key %q", r.kind, k)
				}
			}
		}

		fmt.Printf("%-14s %12.0f %12.2f %12.1f %10.4f %10s\n",
			r.kind, res.NsPerOp, res.FencesPerOp, res.LoggedBytesPerOp, res.TrapsPerOp, r.safe)
	}
	fmt.Println()
	fmt.Println("all five backends hold byte-identical contents — the structure code")
	fmt.Println("never changed; only the allocator's memory did (the paper's §3.1 claim)")
}
