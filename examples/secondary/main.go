// secondary: multi-structure snapshot atomicity. A tiny user store keeps a
// primary hash map (name → record) and a secondary ordered index (uint64
// user-id → record address). Both structures mutate on every insert; because
// one persist() snapshots the whole pool, the pair can never be observed out
// of sync after a crash — there is no window where the map has a user the
// index lacks.
//
// The example inserts users, crashes mid-epoch, recovers, and cross-checks
// the two structures.
//
//	go run ./examples/secondary
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"

	"pax"
)

const poolFile = "secondary.pool"

type store struct {
	pool  *pax.Pool
	byKey *pax.Map   // name → encoded record
	byID  *pax.Index // user id → record marker
}

func open() *store {
	pool, err := pax.MapPool(poolFile, pax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	m, err := pax.NewMap(pool, 0)
	if err != nil {
		log.Fatal(err)
	}
	ix, err := pax.NewIndex(pool, 1)
	if err != nil {
		log.Fatal(err)
	}
	return &store{pool: pool, byKey: m, byID: ix}
}

// insert updates BOTH structures; atomicity comes from the snapshot, not
// from any ordering discipline here.
func (s *store) insert(id uint64, name string) {
	rec := make([]byte, 8+len(name))
	binary.LittleEndian.PutUint64(rec, id)
	copy(rec[8:], name)
	if err := s.byKey.Put([]byte(name), rec); err != nil {
		log.Fatal(err)
	}
	if err := s.byID.Put(id, uint64(len(name))); err != nil {
		log.Fatal(err)
	}
}

// audit verifies the structures agree exactly.
func (s *store) audit() error {
	if s.byKey.Len() != s.byID.Len() {
		return fmt.Errorf("map has %d users, index has %d", s.byKey.Len(), s.byID.Len())
	}
	var err error
	s.byKey.ForEach(func(name, rec []byte) bool {
		id := binary.LittleEndian.Uint64(rec)
		nameLen, ok := s.byID.Get(id)
		if !ok {
			err = fmt.Errorf("user %q (id %d) missing from index", name, id)
			return false
		}
		if nameLen != uint64(len(name)) {
			err = fmt.Errorf("user %q index payload mismatch", name)
			return false
		}
		return true
	})
	return err
}

func main() {
	defer os.Remove(poolFile)

	s := open()
	// Epoch 1: five users, committed.
	for i := uint64(1); i <= 5; i++ {
		s.insert(i, fmt.Sprintf("user-%02d", i))
	}
	s.pool.Persist()
	fmt.Println("committed 5 users")

	// Epoch 2: five more users — crash between the two structure updates of
	// the very last insert, the worst possible moment.
	for i := uint64(6); i <= 9; i++ {
		s.insert(i, fmt.Sprintf("user-%02d", i))
	}
	rec := []byte("\x0a\x00\x00\x00\x00\x00\x00\x00user-10")
	s.byKey.Put([]byte("user-10"), rec) // map updated...
	// ... and CRASH before the index update and before persist.
	s.pool.Close()
	fmt.Println("CRASH mid-insert (map updated, index not)")

	s2 := open()
	defer s2.pool.Close()
	fmt.Printf("recovered to epoch %d (%d lines rolled back)\n",
		s2.pool.Recovery().DurableEpoch, s2.pool.Recovery().LinesRolledBack)
	if err := s2.audit(); err != nil {
		fmt.Println("INCONSISTENT:", err)
		os.Exit(1)
	}
	fmt.Printf("audit OK: map and index agree on %d users (the whole open epoch\n", s2.byKey.Len())
	fmt.Println("rolled back together — no torn multi-structure update is observable)")
}
