// bank: atomic multi-account transfers under snapshot semantics with crash
// injection. A transfer mutates two account balances and an audit counter —
// three separate cache lines. Without crash consistency, dying between the
// debit and the credit destroys money; with PAX, every recovery lands on a
// persist() boundary where the invariant Σbalances = const holds.
//
// The example runs thousands of transfers, "crashes" the process at a random
// point (discarding all volatile state), recovers, and audits the books.
//
//	go run ./examples/bank
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math/rand"
	"os"

	"pax"
)

const (
	poolFile   = "bank.pool"
	accounts   = 64
	initialBal = 1000
	totalMoney = accounts * initialBal
	transfers  = 5000
	perEpoch   = 50 // transfers per persist (group commit)
)

type bank struct {
	pool *pax.Pool
	vec  *pax.Vector // balances, one u64 per account
	log  *pax.Queue  // audit trail of applied transfers
}

func openBank() *bank {
	pool, err := pax.MapPool(poolFile, pax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	vec, err := pax.NewVector(pool, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	q, err := pax.NewQueue(pool, 1)
	if err != nil {
		log.Fatal(err)
	}
	b := &bank{pool: pool, vec: vec, log: q}
	if vec.Len() == 0 { // fresh pool: fund the accounts
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], initialBal)
		for i := 0; i < accounts; i++ {
			if err := vec.Push(buf[:]); err != nil {
				log.Fatal(err)
			}
		}
		pool.Persist()
	}
	return b
}

func (b *bank) balance(i int) uint64 {
	var buf [8]byte
	b.vec.Get(uint64(i), buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (b *bank) setBalance(i int, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.vec.Set(uint64(i), buf[:])
}

// transfer moves amount between two accounts — deliberately NOT atomic at
// the store level; only persist() boundaries are atomic.
func (b *bank) transfer(from, to int, amount uint64) bool {
	bal := b.balance(from)
	if bal < amount {
		return false
	}
	b.setBalance(from, bal-amount)
	b.setBalance(to, b.balance(to)+amount)
	rec := fmt.Sprintf("%d->%d:%d", from, to, amount)
	if err := b.log.Push([]byte(rec)); err != nil {
		log.Fatal(err)
	}
	return true
}

func (b *bank) audit() (sum uint64) {
	for i := 0; i < accounts; i++ {
		sum += b.balance(i)
	}
	return sum
}

func main() {
	defer os.Remove(poolFile)
	rng := rand.New(rand.NewSource(2022))

	// Phase 1: run transfers with group commit, then crash mid-epoch.
	b := openBank()
	crashAt := transfers/2 + rng.Intn(transfers/4)
	applied := 0
	persisted := 0
	crashed := false
	for i := 0; i < transfers; i++ {
		if i == crashAt {
			fmt.Printf("CRASH injected after transfer %d (mid-epoch, %d committed)\n", i, persisted)
			b.pool.Close() // crash: open epoch dies
			crashed = true
			break
		}
		from, to := rng.Intn(accounts), rng.Intn(accounts)
		amount := uint64(1 + rng.Intn(50))
		if b.transfer(from, to, amount) {
			applied++
		}
		if (i+1)%perEpoch == 0 {
			b.pool.Persist()
			persisted = applied
		}
	}
	if !crashed {
		b.pool.Persist()
		b.pool.Close()
	}

	// Phase 2: recover and audit.
	b2 := openBank()
	defer b2.pool.Close()
	rec := b2.pool.Recovery()
	fmt.Printf("recovered: durable epoch %d, %d lines rolled back\n",
		rec.DurableEpoch, rec.LinesRolledBack)

	sum := b2.audit()
	fmt.Printf("audit: Σ balances = %d (expected %d)\n", sum, totalMoney)
	if sum != totalMoney {
		fmt.Println("MONEY WAS DESTROYED — crash consistency violated!")
		os.Exit(1)
	}
	fmt.Printf("audit trail: %d transfers survived (%d were applied before the crash;\n", b2.log.Len(), applied)
	fmt.Println("the difference is the rolled-back open epoch — snapshots are all-or-nothing)")
	fmt.Println("OK: the invariant held across an injected crash")
}
