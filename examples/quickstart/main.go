// Quickstart: the paper's Listing 1 in Go — map a pool, use an unmodified
// hash map as a persistent structure, persist a snapshot, crash, recover.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"pax"
)

func main() {
	const poolFile = "quickstart.pool"
	defer os.Remove(poolFile)

	// Line 1-2 of Listing 1: map the pool, wrap it in an allocator, hand it
	// to an unmodified hash map.
	pool, err := pax.MapPool(poolFile, pax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	ht, err := pax.NewMap(pool, 0)
	if err != nil {
		log.Fatal(err)
	}

	// Lines 3-5: ordinary loads and stores.
	ht.Put([]byte("1"), []byte("100"))
	if v, ok := ht.Get([]byte("1")); ok {
		fmt.Printf("Key 1 = %s\n", v)
	}
	ht.Put([]byte("2"), []byte("200"))

	// Line 6: one call makes everything since the last persist durable as
	// an atomic snapshot.
	st, err := pool.Persist()
	if err != nil {
		log.Fatalf("persist: %v (the snapshot is NOT durable)", err)
	}
	fmt.Printf("persisted epoch %d: %d lines snooped back, %d written to PM, %v simulated latency\n",
		st.Epoch, st.LinesSnooped, st.LinesWritten, st.SimulatedLatency)

	// Write more WITHOUT persisting, then "crash".
	ht.Put([]byte("3"), []byte("300"))
	pool.Close() // like a crash: the open epoch is not committed

	// Recovery: reopening the pool is the same call as creating it.
	pool2, err := pax.MapPool(poolFile, pax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer pool2.Close()
	fmt.Printf("recovered to epoch %d (%d lines rolled back)\n",
		pool2.Recovery().DurableEpoch, pool2.Recovery().LinesRolledBack)

	ht2, err := pax.NewMap(pool2, 0)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range []string{"1", "2", "3"} {
		if v, ok := ht2.Get([]byte(k)); ok {
			fmt.Printf("after recovery: key %s = %s\n", k, v)
		} else {
			fmt.Printf("after recovery: key %s GONE (was never persisted)\n", k)
		}
	}
}
