// kvstore: a small persistent key-value store with a write-ahead-free
// durability model — snapshots via PAX group commit. It demonstrates real
// process restarts: state lives in kvstore.pool and survives separate runs.
//
//	go run ./examples/kvstore set name ada
//	go run ./examples/kvstore set lang go
//	go run ./examples/kvstore get name
//	go run ./examples/kvstore list
//	go run ./examples/kvstore del name
//	go run ./examples/kvstore stats
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"pax"
)

const poolFile = "kvstore.pool"

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  kvstore set <key> <value>   store a pair (durable before exit)
  kvstore get <key>           print a value
  kvstore del <key>           delete a key (durable before exit)
  kvstore list                print all pairs, sorted
  kvstore stats               pool epoch/recovery info`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	pool, err := pax.MapPool(poolFile, pax.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	m, err := pax.NewMap(pool, 0)
	if err != nil {
		log.Fatal(err)
	}

	switch os.Args[1] {
	case "set":
		if len(os.Args) != 4 {
			usage()
		}
		if err := m.Put([]byte(os.Args[2]), []byte(os.Args[3])); err != nil {
			log.Fatal(err)
		}
		st, err := pool.Persist()
		if err != nil {
			log.Fatalf("persist: %v (the write is NOT durable)", err)
		}
		fmt.Printf("ok (epoch %d, %v simulated persist latency)\n", st.Epoch, st.SimulatedLatency)
	case "get":
		if len(os.Args) != 3 {
			usage()
		}
		if v, ok := m.Get([]byte(os.Args[2])); ok {
			fmt.Println(string(v))
		} else {
			fmt.Println("(not found)")
			os.Exit(1)
		}
	case "del":
		if len(os.Args) != 3 {
			usage()
		}
		present, err := m.Delete([]byte(os.Args[2]))
		if err != nil {
			log.Fatal(err)
		}
		pool.Persist()
		fmt.Println("deleted:", present)
	case "list":
		type pair struct{ k, v string }
		var pairs []pair
		m.ForEach(func(k, v []byte) bool {
			pairs = append(pairs, pair{string(k), string(v)})
			return true
		})
		sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
		for _, p := range pairs {
			fmt.Printf("%s = %s\n", p.k, p.v)
		}
		fmt.Printf("(%d keys)\n", len(pairs))
	case "stats":
		rec := pool.Recovery()
		fmt.Printf("pool file:         %s\n", poolFile)
		fmt.Printf("durable epoch:     %d\n", pool.DurableEpoch())
		fmt.Printf("current epoch:     %d\n", pool.Epoch())
		fmt.Printf("keys:              %d\n", m.Len())
		fmt.Printf("last recovery:     epoch %d, %d lines rolled back\n",
			rec.DurableEpoch, rec.LinesRolledBack)
	default:
		usage()
	}
}
