module pax

go 1.22
