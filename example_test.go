package pax_test

import (
	"fmt"
	"os"

	"pax"
)

// ExampleMapPool shows the paper's Listing 1: map a pool, use an unmodified
// hash map persistently, snapshot with one call.
func ExampleMapPool() {
	pool, err := pax.MapPool("", pax.Options{DataSize: 2 << 20, LogSize: 2 << 20})
	if err != nil {
		panic(err)
	}
	defer pool.Close()

	ht, _ := pax.NewMap(pool, 0)
	ht.Put([]byte("1"), []byte("100"))
	if v, ok := ht.Get([]byte("1")); ok {
		fmt.Printf("Key 1 = %s\n", v)
	}
	ht.Put([]byte("2"), []byte("200"))
	st, _ := pool.Persist()
	fmt.Printf("epoch %d durable\n", st.Epoch)
	// Output:
	// Key 1 = 100
	// epoch 2 durable
}

// ExamplePool_Persist demonstrates snapshot semantics: unpersisted changes
// vanish on recovery, persisted ones survive.
func ExamplePool_Persist() {
	path := "example_persist.pool"
	defer os.Remove(path)

	pool, _ := pax.MapPool(path, pax.Options{DataSize: 2 << 20, LogSize: 2 << 20})
	m, _ := pax.NewMap(pool, 0)
	m.Put([]byte("committed"), []byte("yes"))
	pool.Persist()
	m.Put([]byte("volatile"), []byte("no"))
	pool.Close() // crash: open epoch rolls back

	pool2, _ := pax.MapPool(path, pax.Options{DataSize: 2 << 20, LogSize: 2 << 20})
	defer pool2.Close()
	m2, _ := pax.NewMap(pool2, 0)
	_, committed := m2.Get([]byte("committed"))
	_, volatile := m2.Get([]byte("volatile"))
	fmt.Printf("committed=%v volatile=%v\n", committed, volatile)
	// Output:
	// committed=true volatile=false
}

// ExampleNewIndex shows the ordered index with range scans.
func ExampleNewIndex() {
	pool, _ := pax.MapPool("", pax.Options{DataSize: 2 << 20, LogSize: 2 << 20})
	defer pool.Close()

	ix, _ := pax.NewIndex(pool, 0)
	for _, k := range []uint64{30, 10, 20} {
		ix.Put(k, k*100)
	}
	ix.Scan(15, func(k, v uint64) bool {
		fmt.Printf("%d=%d\n", k, v)
		return true
	})
	// Output:
	// 20=2000
	// 30=3000
}

// ExampleNewQueue shows the persistent FIFO.
func ExampleNewQueue() {
	pool, _ := pax.MapPool("", pax.Options{DataSize: 2 << 20, LogSize: 2 << 20})
	defer pool.Close()

	q, _ := pax.NewQueue(pool, 0)
	q.Push([]byte("first"))
	q.Push([]byte("second"))
	msg, _, _ := q.Pop()
	fmt.Println(string(msg))
	// Output:
	// first
}
