package pax_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pax"
)

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name string
		opts pax.Options
		want string // substring of the error
	}{
		{"tiny log", pax.Options{DataSize: 2 << 20, LogSize: 128}, "LogSize"},
		{"sub-entry log", pax.Options{DataSize: 2 << 20, LogSize: 96}, "LogSize"},
		{"negative hbm", pax.Options{DataSize: 2 << 20, LogSize: 2 << 20, HBMSize: -1}, "HBMSize"},
		{"bad profile", pax.Options{DataSize: 2 << 20, LogSize: 2 << 20, Profile: "tpu"}, "profile"},
	}
	for _, tc := range cases {
		_, err := pax.CreatePool("", tc.opts)
		if err == nil {
			t.Errorf("%s: CreatePool accepted %+v", tc.name, tc.opts)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	// Zero sizes still mean "default", not "invalid".
	pool, err := pax.CreatePool("", pax.Options{})
	if err != nil {
		t.Fatalf("defaulted options rejected: %v", err)
	}
	pool.Close()
}

func TestCreatePoolRefusesToClobber(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.pool")
	pool, err := pax.CreatePool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	m, err := pax.NewMap(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	pool.Persist()
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	// A second CreatePool on the same path must refuse...
	if _, err := pax.CreatePool(path, smallOpts()); err == nil || !strings.Contains(err.Error(), "Overwrite") {
		t.Fatalf("CreatePool clobbered an existing pool (err=%v)", err)
	}
	// ...and the original data must survive the attempt.
	pool2, err := pax.OpenPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := pax.NewMap(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("pool damaged by refused CreatePool: %q %v", v, ok)
	}
	if err := pool2.Close(); err != nil {
		t.Fatal(err)
	}

	// With Overwrite set the reformat goes through and the data is gone.
	opts := smallOpts()
	opts.Overwrite = true
	pool3, err := pax.CreatePool(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pool3.Close()
	m3, err := pax.NewMap(pool3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m3.Get([]byte("k")); ok {
		t.Fatal("Overwrite did not reformat the pool")
	}
}

func TestOpenPoolIgnoresGeometryOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "geom.pool")
	pool, err := pax.CreatePool(path, pax.Options{DataSize: 4 << 20, LogSize: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := pax.NewMap(pool, 0)
	_ = m.Put([]byte("k"), []byte("v"))
	pool.Persist()
	pool.Close()

	// Reopen with completely different (default) sizes: geometry must come
	// from the header, like a daemon restarting without its creation flags.
	pool2, err := pax.OpenPool(path, pax.DefaultOptions())
	if err != nil {
		t.Fatalf("reopen with default options: %v", err)
	}
	defer pool2.Close()
	m2, err := pax.NewMap(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := m2.Get([]byte("k")); !ok || string(v) != "v" {
		t.Fatalf("reopened pool lost data: %q %v", v, ok)
	}
}

// A reformat whose os.Remove fails must report it, not silently reopen the
// old image: here "the pool" is a non-empty directory, which Remove refuses.
func TestCreatePoolOverwriteRemoveFailure(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "x.pool")
	if err := os.MkdirAll(filepath.Join(dir, "junk"), 0o755); err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Overwrite = true
	if _, err := pax.CreatePool(dir, opts); err == nil || !strings.Contains(err.Error(), "reformatting") {
		t.Fatalf("CreatePool on an unremovable path: err=%v, want a reformatting error", err)
	}
}
