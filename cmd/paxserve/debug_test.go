package main

import (
	"strings"
	"testing"
)

func TestWritePromText(t *testing.T) {
	in := strings.Join([]string{
		`paxserve_acked_writes 100`,
		`paxserve_commit_ns{q="p50"} 1000`,
		`paxserve_commit_ns{q="p99"} 5000`,
		`paxserve_shards 2`,
	}, "\n") + "\n"

	var b strings.Builder
	writePromText(&b, in)
	out := b.String()

	want := strings.Join([]string{
		`# TYPE paxserve_acked_writes untyped`,
		`paxserve_acked_writes 100`,
		`# TYPE paxserve_commit_ns untyped`,
		`paxserve_commit_ns{q="p50"} 1000`,
		`paxserve_commit_ns{q="p99"} 5000`,
		`# TYPE paxserve_shards untyped`,
		`paxserve_shards 2`,
	}, "\n") + "\n"
	if out != want {
		t.Fatalf("exposition:\n%s\nwant:\n%s", out, want)
	}

	// The compatibility contract: every registry sample line appears
	// byte-identical — greps against the raw registry keep working.
	for _, line := range strings.Split(strings.TrimSuffix(in, "\n"), "\n") {
		if !strings.Contains(out, line+"\n") {
			t.Fatalf("sample line %q mutated in the exposition", line)
		}
	}
}
