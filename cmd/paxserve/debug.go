package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"

	"pax/internal/server"
)

// startDebug serves the observability plane — /metrics, /trace, and the
// net/http/pprof handlers — on its own listener and its own mux, never the
// DefaultServeMux, so no other package can silently export handlers on this
// port. Everything here is unauthenticated and /debug/pprof/ can CPU-profile
// the process on demand, so the address belongs on localhost or an operator
// network, not on the serving interface.
func startDebug(addr string, eng *server.ShardedEngine) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		text, err := eng.StatsText()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(eng.Trace()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(lis, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "paxserve: debug server: %v\n", err)
		}
	}()
	return lis, nil
}
