package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"pax/internal/server"
)

// startDebug serves the observability plane — /metrics, /trace, and the
// net/http/pprof handlers — on its own listener and its own mux, never the
// DefaultServeMux, so no other package can silently export handlers on this
// port. Everything here is unauthenticated and /debug/pprof/ can CPU-profile
// the process on demand, so the address belongs on localhost or an operator
// network, not on the serving interface.
func startDebug(addr string, eng *server.ShardedEngine) (net.Listener, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		text, err := eng.StatsText()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		// The version parameter is what tells a Prometheus scraper this is
		// the text exposition format, not arbitrary plain text.
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePromText(w, text)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(eng.Trace()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(lis, mux); err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "paxserve: debug server: %v\n", err)
		}
	}()
	return lis, nil
}

// writePromText writes the registry's sorted text exposition with `# TYPE`
// metadata lines interleaved: one `untyped` declaration per metric family
// (the registry does not track kinds, and untyped is the honest Prometheus
// type for that). Sample lines pass through byte-identical to the registry's
// own rendering — CI and paxinspect -stats grep them verbatim.
func writePromText(w io.Writer, text string) {
	last := ""
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if name != last {
			fmt.Fprintf(w, "# TYPE %s untyped\n", name)
			last = name
		}
		fmt.Fprintln(w, line)
	}
}
