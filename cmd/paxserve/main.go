// Command paxserve is the PAX KV daemon: it serves a pool file over TCP to
// many concurrent clients, multiplexing them onto the paper's single-writer
// programming model with epoch group commits (one Persist per batch of
// writes, so N clients share one snapshot's cost).
//
// Usage:
//
//	paxserve -pool ./kv.pool                 # create or recover, then serve
//	paxserve -pool ./kv.pool -addr :7421
//	paxserve -pool ./kv.pool -overwrite      # reformat an existing pool
//	paxserve -pool ./kv.pool -shards 4       # partition the keyspace 4 ways
//	paxserve -pool ./kv.pool -debug-addr 127.0.0.1:7422   # HTTP observability
//	paxserve -pool ./kv.pool -ack-policy apply            # acks at apply time
//
// Group commits run through a three-stage pipeline per shard: while sealed
// epochs' media commits are in flight, the writer keeps applying and sealing
// later epochs at host speed, with up to -max-inflight-commits media commits
// overlapping (1 serializes the media — the serial A/B baseline).
// -ack-policy picks the default
// durability contract for clients that do not set one per request on the
// wire: "durable" (the default — every write ack means its epoch reached
// media) or "apply" (acks return as soon as the write is applied and visible
// to GETs; durability trails asynchronously, and a crash may lose writes
// acked under this policy). Per-request wire flags override the daemon
// default either way.
//
// -debug-addr starts an HTTP observability plane on a second listener:
// /metrics renders the merged metrics registry (counters, gauges, and the
// commit/GET latency quantiles) as `name value` text, /trace returns the
// commit flight recorder as JSON, and /debug/pprof/ exposes the standard Go
// profiler. The plane is unauthenticated — keep it on localhost or an
// operator network.
//
// With -shards N > 1 the keyspace is hash-partitioned across N pool files
// (kv.pool.shard-0 … kv.pool.shard-N-1), each with its own writer loop,
// undo log, and device, so N group commits run in parallel; startup opens
// and recovers all shards concurrently. Keys route through a fixed 256-slot
// space with a persisted slot→shard map (kv.pool.slotmap), so the fleet can
// grow live: SIGUSR1 (or the SPLIT wire op) splits the hottest shard —
// a new shard pool comes up, the hot half of the source's slots migrate
// through the normal epoch machinery with acked writes durable throughout,
// and the new assignment publishes atomically. The MERGE wire op runs the
// inverse: the coldest shard's slots drain onto a survivor and the fleet
// shrinks by one, the retired shard file removed crash-safely. On restart
// the shard count is detected from the files present (-shards 0, the
// default), and an explicit -shards that disagrees with the files is
// refused unless -overwrite. A bare single-shard layout cannot split (its
// pool file cannot coexist with shard files); start with -shards 2 to keep
// splitting open.
//
// -autosplit and -merge-idle hand resharding to the built-in autopilot: a
// policy loop samples windowed per-shard load every -autopilot-interval and
// splits the hottest shard when its commit pipeline stays saturated
// (windowed enqueue-wait p99 or pipeline stall, not mere imbalance) for
// several consecutive ticks, or folds the coldest shard back after it idles
// for -merge-idle — with hysteresis and a cooldown so the policy never
// flaps. Its decisions and windowed rates are visible in STATS
// (paxserve_autopilot_*, paxserve_window_*) and TRACE.
//
// GETs do not enter the writer queue: each shard keeps a volatile read
// index (rebuilt from the recovered pool at startup) that the writer
// updates at apply time, so reads are answered immediately even while a
// group commit is in flight. -queued-reads restores the pre-index behavior
// — every GET serialized through the writer loop — for A/B measurement.
//
// The protocol is internal/wire's length-prefixed binary framing; the Go
// client is pax/internal/wire.Client. SIGINT/SIGTERM shut down gracefully:
// stop accepting, drain in-flight requests, and persist the open epoch, so a
// clean shutdown never loses an acked write.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"pax"
	"pax/internal/blackbox"
	"pax/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7421", "TCP listen address")
		poolPath  = flag.String("pool", "", "pool file path (required; created if missing)")
		shards    = flag.Int("shards", 0, "keyspace shards, each its own pool file and commit pipeline (0 = detect from existing files, else 1)")
		dataSize  = flag.Uint64("data", 64<<20, "vPM data region size in bytes, per shard (pool creation only)")
		logSize   = flag.Uint64("log", 8<<20, "undo log region size in bytes, per shard (pool creation only)")
		hbmSize   = flag.Int("hbm", 16<<20, "device HBM cache size in bytes (0 disables)")
		profile   = flag.String("profile", "cxl", "device profile: cxl | enzian")
		overwrite = flag.Bool("overwrite", false, "reformat the pool file even if it already exists")
		epochLog  = flag.Bool("epoch-log", false, "persist commits as delta records in <pool>.epochlog/ (O(dirty) commit cost) instead of republishing the full image; reopening an epoch-log pool requires this flag")
		maxBatch  = flag.Int("max-batch", 128, "max writes acked per group commit")
		maxDelay  = flag.Duration("max-delay", time.Millisecond, "max wait to fill a commit batch")
		commitLat = flag.Duration("commit-latency", 0, "modeled media latency per group commit (0 = simulator speed)")
		queue     = flag.Int("queue", 1024, "request queue depth (backpressure bound)")
		reqTmo    = flag.Duration("req-timeout", 5*time.Second, "per-request enqueue timeout")
		async     = flag.Bool("async", false, "commit batches with the pipelined persist (§6)")
		queued    = flag.Bool("queued-reads", false, "serve GETs through the writer queue instead of the read index (pre-index behavior, for A/B measurement)")
		slot      = flag.Int("root", 0, "pool root slot holding the served map")
		retries   = flag.Int("commit-retries", 3, "persist retries per group commit before the shard seals fail-stop (-1 disables)")
		retryDly  = flag.Duration("commit-retry-delay", 2*time.Millisecond, "wait before the first commit retry, doubling per attempt")
		debugAddr = flag.String("debug-addr", "", "HTTP observability listener serving /metrics, /trace, and /debug/pprof/ (unauthenticated — bind to localhost; empty disables)")
		slowCmt   = flag.Duration("slow-commit", server.DefaultSlowCommit, "pin group commits slower than this in the flight recorder (negative disables pinning)")
		traceN    = flag.Int("trace-depth", server.DefaultTraceDepth, "flight recorder depth in commits, per shard")
		slowN     = flag.Int("slow-depth", server.DefaultSlowDepth, "flight recorder pinned ring depth for failed and slow commits, per shard")
		bbox      = flag.Bool("blackbox", false, "journal lifecycle events and windowed metrics snapshots to <pool>.blackbox/ for crash postmortems (paxinspect -postmortem)")
		bboxTick  = flag.Duration("blackbox-interval", time.Second, "black-box windowed metrics snapshot period")
		inflight  = flag.Int("max-inflight-commits", 0, "modeled media commit concurrency per shard (commit pipeline window; 1 = serial media, 0 = default 2)")
		ackPolicy = flag.String("ack-policy", "durable", "default ack policy for requests without an explicit wire flag: durable (ack when the group commit reaches media) | apply (ack when applied and read-index-visible; durability asynchronous)")
		autosplit = flag.Bool("autosplit", false, "run the reshard autopilot's split policy: split the hottest shard when its commit pipeline stays saturated (requires a sharded layout)")
		mergeIdle = flag.Duration("merge-idle", 0, "run the reshard autopilot's merge policy: fold the coldest shard back after it idles this long (0 disables; requires a sharded layout)")
		apTick    = flag.Duration("autopilot-interval", time.Second, "reshard autopilot policy tick (windowed load sampling period)")
	)
	flag.Parse()
	if *poolPath == "" {
		fmt.Fprintln(os.Stderr, "paxserve: -pool is required")
		flag.Usage()
		os.Exit(2)
	}
	// Catch a missing parent directory here: deeper in the stack it would
	// surface as a media sync failure sealing the shard, which is the wrong
	// diagnosis for a typo'd path.
	if dir := filepath.Dir(*poolPath); dir != "." {
		if _, err := os.Stat(dir); err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: pool directory: %v\n", err)
			os.Exit(2)
		}
	}

	opts := pax.Options{
		DataSize:  *dataSize,
		LogSize:   *logSize,
		HBMSize:   *hbmSize,
		Profile:   pax.DeviceProfile(*profile),
		Overwrite: *overwrite,
		EpochLog:  *epochLog,
	}

	// Resolve the shard count against what is on disk: a restart must reopen
	// the layout the previous run left. Routing follows the persisted slot
	// map, not the raw count, but a count that disagrees with the files is
	// still almost certainly a typo'd path or a stale flag — refuse rather
	// than guess (live growth is SIGUSR1 / the SPLIT wire op, not -shards).
	n := *shards
	discovered, err := server.DiscoverShards(*poolPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: %v\n", err)
		os.Exit(1)
	}
	switch {
	case n < 0:
		fmt.Fprintln(os.Stderr, "paxserve: -shards must be >= 0")
		os.Exit(2)
	case n == 0 && discovered > 0:
		n = discovered
	case n == 0:
		n = 1
	case discovered > 0 && discovered != n && !*overwrite:
		fmt.Fprintf(os.Stderr, "paxserve: %q holds %d shard(s) but -shards %d was requested; reopen with -shards %d (or 0) or reformat with -overwrite\n",
			*poolPath, discovered, n, discovered)
		os.Exit(2)
	}

	var defaultAck server.AckPolicy
	switch *ackPolicy {
	case "durable":
		defaultAck = server.AckDurable
	case "apply":
		defaultAck = server.AckApply
	default:
		fmt.Fprintf(os.Stderr, "paxserve: -ack-policy must be durable or apply, got %q\n", *ackPolicy)
		os.Exit(2)
	}

	eng, err := server.OpenSharded(*poolPath, n, opts, *slot, server.Config{
		MaxBatch:           *maxBatch,
		MaxDelay:           *maxDelay,
		QueueDepth:         *queue,
		EnqueueTimeout:     *reqTmo,
		Async:              *async,
		CommitLatency:      *commitLat,
		QueuedReads:        *queued,
		CommitRetries:      *retries,
		CommitRetryDelay:   *retryDly,
		SlowCommit:         *slowCmt,
		TraceDepth:         *traceN,
		SlowDepth:          *slowN,
		MaxInflightCommits: *inflight,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: %v\n", err)
		os.Exit(1)
	}
	for k, rec := range eng.Recoveries() {
		if rec.LinesRolledBack > 0 {
			fmt.Printf("paxserve: recovered shard %d to epoch %d (%d lines rolled back)\n",
				k, rec.DurableEpoch, rec.LinesRolledBack)
		}
	}

	eng.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	// The black box attaches before the autopilot and the listener so its
	// journal sees every lifecycle event the daemon ever emits, and before
	// serving so the EvOpen records land first.
	var bboxStop func()
	var bboxJournal *blackbox.Journal
	if *bbox {
		j, err := blackbox.Open(blackbox.Config{Dir: *poolPath + blackbox.DirSuffix})
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: blackbox: %v\n", err)
			os.Exit(1)
		}
		bboxJournal = j
		bboxStop = server.AttachBlackbox(eng, j, *bboxTick)
		fmt.Printf("paxserve: black box journaling to %s (snapshot every %v)\n",
			*poolPath+blackbox.DirSuffix, *bboxTick)
	}

	if *autosplit || *mergeIdle > 0 {
		if n < 2 {
			fmt.Fprintln(os.Stderr, "paxserve: -autosplit/-merge-idle require a sharded layout (-shards >= 2)")
			os.Exit(2)
		}
		if _, err := eng.StartAutopilot(server.AutopilotConfig{
			Interval:     *apTick,
			SplitEnabled: *autosplit,
			MergeEnabled: *mergeIdle > 0,
			MergeIdle:    *mergeIdle,
		}); err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: autopilot: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("paxserve: reshard autopilot on (split=%v merge-idle=%v interval=%v)\n",
			*autosplit, *mergeIdle, *apTick)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: listen: %v\n", err)
		os.Exit(1)
	}
	srv := server.NewServer(eng)
	srv.DefaultAckPolicy = defaultAck
	srv.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	if *debugAddr != "" {
		dlis, err := startDebug(*debugAddr, eng)
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: debug listener: %v\n", err)
			os.Exit(1)
		}
		defer dlis.Close()
		fmt.Printf("paxserve: debug plane on http://%s (/metrics /trace /debug/pprof/)\n", dlis.Addr())
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	splits := make(chan os.Signal, 1)
	signal.Notify(splits, syscall.SIGUSR1)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	mode := "full-image"
	if *epochLog {
		mode = "epoch-log"
	}
	fmt.Printf("paxserve: serving %s on %s (%d shard(s), %s commits, durable epoch %d, max batch %d, max delay %v)\n",
		*poolPath, lis.Addr(), eng.NumShards(), mode, eng.DurableEpoch(), *maxBatch, *maxDelay)

	var splitting sync.WaitGroup
serve:
	for {
		select {
		case sig := <-sigs:
			fmt.Printf("paxserve: %v: shutting down\n", sig)
			break serve
		case <-splits:
			// Operator-driven live split (kill -USR1 <pid>): peel the hot half
			// of the busiest shard's slots onto a new shard while serving.
			// Off the signal loop so a long migration never masks a shutdown.
			splitting.Add(1)
			go func() {
				defer splitting.Done()
				rep, err := eng.Split(-1)
				if err != nil {
					fmt.Fprintf(os.Stderr, "paxserve: split: %v\n", err)
					return
				}
				fmt.Printf("paxserve: split shard %d -> %d (%d slots, %d keys moved; %d shard(s), slot map seq %d)\n",
					rep.Source, rep.Dest, len(rep.MovedSlots), rep.MovedKeys, rep.Shards, rep.Seq)
			}()
		case err := <-done:
			if err != nil {
				fmt.Fprintf(os.Stderr, "paxserve: serve: %v\n", err)
			}
			break serve
		}
	}
	splitting.Wait()
	srv.Shutdown()
	if bboxStop != nil {
		// Orderly-exit marker first (so the postmortem can tell a shutdown
		// from a crash), then the final snapshot, then release the journal.
		eng.EmitEvent(blackbox.EvShutdown, nil)
		bboxStop()
		if err := bboxJournal.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: blackbox close: %v\n", err)
		}
	}
	if err := eng.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: close: %v\n", err)
		// Per-shard health so an operator can tell a degraded shutdown (one
		// shard's media failed) from a total one.
		for k, herr := range eng.Health() {
			if herr != nil {
				fmt.Fprintf(os.Stderr, "paxserve: shard %d sealed: %v\n", k, herr)
			}
		}
		os.Exit(1)
	}
	fmt.Printf("paxserve: %d shard(s) sealed at durable epoch %d\n", eng.NumShards(), eng.DurableEpoch())
}
