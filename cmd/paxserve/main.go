// Command paxserve is the PAX KV daemon: it serves a pool file over TCP to
// many concurrent clients, multiplexing them onto the paper's single-writer
// programming model with epoch group commits (one Persist per batch of
// writes, so N clients share one snapshot's cost).
//
// Usage:
//
//	paxserve -pool ./kv.pool                 # create or recover, then serve
//	paxserve -pool ./kv.pool -addr :7421
//	paxserve -pool ./kv.pool -overwrite      # reformat an existing pool
//
// The protocol is internal/wire's length-prefixed binary framing; the Go
// client is pax/internal/wire.Client. SIGINT/SIGTERM shut down gracefully:
// stop accepting, drain in-flight requests, and persist the open epoch, so a
// clean shutdown never loses an acked write.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"pax"
	"pax/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7421", "TCP listen address")
		poolPath  = flag.String("pool", "", "pool file path (required; created if missing)")
		dataSize  = flag.Uint64("data", 64<<20, "vPM data region size in bytes (pool creation only)")
		logSize   = flag.Uint64("log", 8<<20, "undo log region size in bytes (pool creation only)")
		hbmSize   = flag.Int("hbm", 16<<20, "device HBM cache size in bytes (0 disables)")
		profile   = flag.String("profile", "cxl", "device profile: cxl | enzian")
		overwrite = flag.Bool("overwrite", false, "reformat the pool file even if it already exists")
		maxBatch  = flag.Int("max-batch", 128, "max writes acked per group commit")
		maxDelay  = flag.Duration("max-delay", time.Millisecond, "max wait to fill a commit batch")
		queue     = flag.Int("queue", 1024, "request queue depth (backpressure bound)")
		reqTmo    = flag.Duration("req-timeout", 5*time.Second, "per-request enqueue timeout")
		async     = flag.Bool("async", false, "commit batches with the pipelined persist (§6)")
		slot      = flag.Int("root", 0, "pool root slot holding the served map")
	)
	flag.Parse()
	if *poolPath == "" {
		fmt.Fprintln(os.Stderr, "paxserve: -pool is required")
		flag.Usage()
		os.Exit(2)
	}
	// Catch a missing parent directory here: deeper in the stack a media
	// sync failure is (deliberately) fatal, which is the wrong surface for
	// a typo'd path.
	if dir := filepath.Dir(*poolPath); dir != "." {
		if _, err := os.Stat(dir); err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: pool directory: %v\n", err)
			os.Exit(2)
		}
	}

	opts := pax.Options{
		DataSize:  *dataSize,
		LogSize:   *logSize,
		HBMSize:   *hbmSize,
		Profile:   pax.DeviceProfile(*profile),
		Overwrite: *overwrite,
	}
	var pool *pax.Pool
	var err error
	if *overwrite {
		pool, err = pax.CreatePool(*poolPath, opts)
	} else {
		pool, err = pax.MapPool(*poolPath, opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: opening pool: %v\n", err)
		os.Exit(1)
	}
	if rec := pool.Recovery(); rec.LinesRolledBack > 0 {
		fmt.Printf("paxserve: recovered pool to epoch %d (%d lines rolled back)\n",
			rec.DurableEpoch, rec.LinesRolledBack)
	}

	eng, err := server.New(pool, *slot, server.Config{
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		QueueDepth:     *queue,
		EnqueueTimeout: *reqTmo,
		Async:          *async,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: %v\n", err)
		os.Exit(1)
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: listen: %v\n", err)
		os.Exit(1)
	}
	srv := server.NewServer(eng)
	srv.Logf = func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) }

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	fmt.Printf("paxserve: serving %s on %s (durable epoch %d, max batch %d, max delay %v)\n",
		*poolPath, lis.Addr(), pool.DurableEpoch(), *maxBatch, *maxDelay)

	select {
	case sig := <-sigs:
		fmt.Printf("paxserve: %v: shutting down\n", sig)
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxserve: serve: %v\n", err)
		}
	}
	srv.Shutdown()
	if err := eng.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: engine close: %v\n", err)
	}
	if err := pool.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "paxserve: pool close: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("paxserve: pool sealed at durable epoch %d\n", pool.DurableEpoch())
}
