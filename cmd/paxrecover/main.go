// Command paxrecover runs offline recovery on a pool file: it opens the
// pool (which performs the §3.4 rollback of any unpersisted epoch) and
// writes the repaired image back, reporting what was undone.
//
// Usage:
//
//	paxrecover -pool ./ht.pool
//	paxrecover -pool ./ht.pool -dry-run
package main

import (
	"flag"
	"fmt"
	"os"

	"pax/internal/core"
	"pax/internal/pmem"
	"pax/internal/sim"
)

func main() {
	var (
		path   = flag.String("pool", "", "pool file to recover")
		dryRun = flag.Bool("dry-run", false, "report what recovery would do without writing the file")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "paxrecover: -pool is required")
		os.Exit(2)
	}
	img, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}

	pm := pmem.New(pmem.DefaultConfig(len(img)))
	pm.Restore(img)
	// Geometry comes from the header; host/device config is irrelevant for
	// recovery but required to build the runtime.
	opts := core.DefaultOptions()
	opts.Host = sim.SmallHost()
	pool, err := core.Open(pm, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: recovery failed: %v\n", err)
		os.Exit(1)
	}
	rep := pool.Recovery()
	fmt.Printf("pool:             %s\n", *path)
	fmt.Printf("durable epoch:    %d\n", rep.DurableEpoch)
	fmt.Printf("entries scanned:  %d\n", rep.EntriesScanned)
	fmt.Printf("lines rolled back:%d\n", rep.LinesRolledBack)

	if *dryRun {
		fmt.Println("dry run: pool file not modified")
		return
	}
	repaired := pm.Snapshot()
	tmp := *path + ".recovered"
	if err := os.WriteFile(tmp, repaired, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, *path); err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("pool recovered in place")
}
