// Command paxrecover runs offline recovery on a pool file: it opens the
// pool (which performs the §3.4 rollback of any unpersisted epoch) and
// writes the repaired image back, reporting what was undone.
//
// Pools persisted with the epoch store (-epoch-log) are a checkpoint image
// plus delta segments in <pool>.epochlog/. paxrecover reconstructs the
// last committed state by replaying the committed deltas onto the
// checkpoint (a torn tail — an append cut by a crash — is reported and
// discarded, never an error), runs the same §3.4 rollback, and then
// CONVERTS the pool to the plain full-image layout: the repaired image
// replaces the file and the consumed segments are removed. Reopen the
// converted pool with or without -epoch-log; a fresh segment directory is
// started on the next epoch-log commit.
//
// Usage:
//
//	paxrecover -pool ./ht.pool
//	paxrecover -pool ./ht.pool -dry-run
package main

import (
	"flag"
	"fmt"
	"os"

	"pax/internal/core"
	"pax/internal/epochlog"
	"pax/internal/pmem"
	"pax/internal/sim"
)

func main() {
	var (
		path   = flag.String("pool", "", "pool file to recover")
		dryRun = flag.Bool("dry-run", false, "report what recovery would do without writing the file")
	)
	flag.Parse()
	if *path == "" {
		fmt.Fprintln(os.Stderr, "paxrecover: -pool is required")
		os.Exit(2)
	}
	img, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}

	// Epoch-store layout: replay the committed deltas onto the checkpoint
	// image before handing it to core recovery. Read-only open so a dry run
	// leaves even a torn tail untouched on disk.
	logDir := *path + epochlog.DirSuffix
	hasLog, err := epochlog.HasSegments(logDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}
	var logInfo epochlog.Info
	if hasLog {
		store, err := epochlog.Open(epochlog.Config{Dir: logDir, ReadOnly: true})
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxrecover: epoch log: %v\n", err)
			os.Exit(1)
		}
		replayErr := store.Replay(func(rec epochlog.Record) error {
			for _, r := range rec.Ranges {
				end := r.Addr + uint64(len(r.Data))
				if end > uint64(len(img)) {
					return fmt.Errorf("record seq %d writes [%#x,%#x) beyond the %d-byte pool",
						rec.Seq, r.Addr, end, len(img))
				}
				copy(img[r.Addr:end], r.Data)
			}
			return nil
		})
		logInfo = store.Info()
		store.Close()
		if replayErr != nil {
			fmt.Fprintf(os.Stderr, "paxrecover: epoch log replay: %v\n", replayErr)
			os.Exit(1)
		}
	}

	pm := pmem.New(pmem.DefaultConfig(len(img)))
	pm.Restore(img)
	// Geometry comes from the header; host/device config is irrelevant for
	// recovery but required to build the runtime.
	opts := core.DefaultOptions()
	opts.Host = sim.SmallHost()
	pool, err := core.Open(pm, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: recovery failed: %v\n", err)
		os.Exit(1)
	}
	rep := pool.Recovery()
	fmt.Printf("pool:             %s\n", *path)
	if hasLog {
		fmt.Printf("layout:           epoch log (checkpoint + %d segment(s), %d committed delta(s))\n",
			len(logInfo.Segments), logInfo.Records)
		for _, seg := range logInfo.Segments {
			line := fmt.Sprintf("  segment %s: %d record(s), seq [%d,%d], epochs [%d,%d], %d bytes",
				seg.Name, seg.Records, seg.FirstSeq, seg.LastSeq, seg.FirstEpoch, seg.LastEpoch, seg.Bytes)
			if seg.Dropped {
				line += " (checkpoint-covered, skipped)"
			}
			if seg.TornTail {
				line += " (torn tail discarded)"
			}
			fmt.Println(line)
		}
		if logInfo.TornTail {
			fmt.Printf("torn tail:        yes — an append was cut by the crash; recovery uses the last committed delta\n")
		}
	} else {
		fmt.Printf("layout:           full image\n")
	}
	fmt.Printf("durable epoch:    %d\n", rep.DurableEpoch)
	fmt.Printf("entries scanned:  %d\n", rep.EntriesScanned)
	fmt.Printf("lines rolled back:%d\n", rep.LinesRolledBack)

	if *dryRun {
		fmt.Println("dry run: pool file not modified")
		return
	}
	repaired := pm.Snapshot()
	tmp := *path + ".recovered"
	if err := os.WriteFile(tmp, repaired, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}
	if err := os.Rename(tmp, *path); err != nil {
		fmt.Fprintf(os.Stderr, "paxrecover: %v\n", err)
		os.Exit(1)
	}
	if hasLog {
		// The repaired file now holds everything the segments held; removing
		// them AFTER the rename means a crash here at worst leaves segments
		// whose replay is idempotent over the repaired image.
		if err := os.RemoveAll(logDir); err != nil {
			fmt.Fprintf(os.Stderr, "paxrecover: removing consumed segments: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("pool recovered in place (converted to full-image layout; segments removed)")
		return
	}
	fmt.Println("pool recovered in place")
}
