// Command paxbench regenerates every table and figure of the paper's
// evaluation (and this repository's ablations) on the simulator.
//
// Usage:
//
//	paxbench -list
//	paxbench -experiment fig2a            # one experiment, paper scale
//	paxbench -experiment all -scale quick # everything, small and fast
//
// Scales: "paper" uses a hash table far larger than the simulated LLC and
// 100k measured operations per system; "quick" is a seconds-long smoke run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pax/internal/benchkit"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		scale      = flag.String("scale", "paper", "run scale: quick | paper")
		list       = flag.Bool("list", false, "list experiments and exit")
		format     = flag.String("format", "table", "output format: table | csv")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-10s %-12s %s\n", "ID", "PAPER", "DESCRIPTION")
		for _, e := range benchkit.Experiments() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var sz benchkit.Sizes
	switch *scale {
	case "quick":
		sz = benchkit.QuickSizes()
	case "paper":
		sz = benchkit.PaperSizes()
	default:
		fmt.Fprintf(os.Stderr, "paxbench: unknown scale %q (quick|paper)\n", *scale)
		os.Exit(2)
	}
	cfg := benchkit.DefaultConfig()
	if *scale == "quick" {
		cfg = benchkit.TestConfig()
	}

	run := func(e benchkit.Experiment) {
		start := time.Now()
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Paper, e.Desc)
		for _, table := range e.Run(cfg, sz) {
			if *format == "csv" {
				fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
			} else {
				fmt.Println(table.String())
			}
		}
		fmt.Printf("    [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range benchkit.Experiments() {
			run(e)
		}
		return
	}
	e, ok := benchkit.Find(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "paxbench: unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
	run(e)
}
