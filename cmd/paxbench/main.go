// Command paxbench regenerates every table and figure of the paper's
// evaluation (and this repository's ablations) on the simulator.
//
// Usage:
//
//	paxbench -list
//	paxbench -experiment fig2a            # one experiment, paper scale
//	paxbench -experiment all -scale quick # everything, small and fast
//	paxbench -loadgen -clients 64 -ops 200 # serving-layer load generator
//	paxbench -loadgen -shards 1,2,4,8 -format json -out BENCH_loadgen.json
//	paxbench -loadgen -read-ratio 0.9      # GET-heavy mix on the read index
//	paxbench -loadgen -read-ratio 0.9 -queued-reads # same mix, pre-index path
//	paxbench -loadgen -ack-policy both -inflight 1,2,4 # ack policy x pipeline window
//
// Scales: "paper" uses a hash table far larger than the simulated LLC and
// 100k measured operations per system; "quick" is a seconds-long smoke run.
//
// -loadgen drives the paxserve group-commit engine with concurrent clients,
// sweeping the comma-separated -shards counts. By default the run is
// commit-latency-bound: -commit-latency models the real-time cost of an
// epoch commit on the backing medium (an msync-class sync; the in-memory
// simulator would otherwise commit at host-CPU speed), so a single pool has
// one commit in flight at a time and the sweep measures how sharding
// overlaps that latency. -read-ratio mixes GETs into the workload (0.9 models
// a read-heavy serving tier); GETs are served from the engine's volatile read
// index unless -queued-reads routes them through the writer queue, which is
// the pre-index behavior kept as the read-path A/B baseline. -ack-policy
// selects how writes are acked — "durable" (ack when the group commit
// reaches media), "apply" (ack when applied and read-index-visible), or
// "both" to A/B them — and -inflight sweeps the commit-pipeline window
// (sealed epochs in flight per shard; 1 is the serial baseline). The default
// table output
// prints one row per shard count plus the merged metrics registry as
// `name value` lines (the same text the STATS wire request returns);
// -format json emits a machine-readable record array instead, and -out
// additionally writes that JSON to a file (e.g. BENCH_loadgen.json) so the
// perf trajectory is tracked across PRs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pax/internal/benchkit"
	"pax/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		scale      = flag.String("scale", "paper", "run scale: quick | paper")
		list       = flag.Bool("list", false, "list experiments and exit")
		format     = flag.String("format", "table", "output format: table | csv")
		loadgen    = flag.Bool("loadgen", false, "run the serving-layer load generator and exit")
		clients    = flag.Int("clients", 256, "loadgen: concurrent clients")
		ops        = flag.Int("ops", 150, "loadgen: writes per client")
		maxBatch   = flag.Int("max-batch", 16, "loadgen: max writes per group commit")
		maxDelay   = flag.Duration("max-delay", 2*time.Millisecond, "loadgen: max wait to fill a batch")
		commitLat  = flag.Duration("commit-latency", 2*time.Millisecond, "loadgen: modeled media latency per group commit (0 = simulator speed)")
		shards     = flag.String("shards", "1", "loadgen: comma-separated shard counts to sweep (e.g. 1,2,4,8)")
		readRatio  = flag.Float64("read-ratio", 0, "loadgen: fraction of ops issued as GETs against previously written keys (0 = write-heavy with periodic read-backs)")
		queued     = flag.Bool("queued-reads", false, "loadgen: serve GETs through the writer queue (pre-read-index behavior, the read-path A/B baseline)")
		poolDir    = flag.String("pool-dir", "", "loadgen: back the engines with pool files in this directory instead of in-memory devices (required for write-amplification sweeps)")
		dataSizes  = flag.String("data-sizes", "", "loadgen: comma-separated per-shard vPM data sizes in bytes to sweep (e.g. 67108864,134217728; empty = the 32 MiB default)")
		epochLog   = flag.Bool("epoch-log", false, "loadgen: persist commits through the log-structured delta epoch store instead of full-image republish")
		epochLogAB = flag.Bool("epoch-log-ab", false, "loadgen: run every configuration in both persist modes (full-image then delta), overriding -epoch-log")
		ackPol     = flag.String("ack-policy", "durable", "loadgen: ack policy to run: durable | apply | both")
		inflight   = flag.String("inflight", "0", "loadgen: comma-separated commit-pipeline windows to sweep (1 = serial baseline, 0 = engine default)")
		jsonOut    = flag.String("out", "", "loadgen: also write the JSON records to this file")
		keys       = flag.Uint64("keys", 0, "loadgen: shared keyspace size; > 0 switches clients from private keys to a preloaded shared keyspace (required for -dist/-rmw-ratio/-value-dist/-split)")
		dist       = flag.String("dist", "uniform", "loadgen: shared-keyspace key distribution: uniform | zipf")
		zipfS      = flag.Float64("zipf-s", 0, "loadgen: zipf skew exponent s (> 1; 0 = the 1.2 default)")
		rmwRatio   = flag.Float64("rmw-ratio", 0, "loadgen: fraction of ops issued as read-modify-writes (GET then PUT of the same key)")
		valueDist  = flag.String("value-dist", "fixed", "loadgen: value size distribution: fixed | uniform (1..value bytes)")
		seed       = flag.Int64("seed", 1, "loadgen: base RNG seed for shared-keyspace sampling")
		split      = flag.Bool("split", false, "loadgen: run the live-split A/B instead of the shard sweep: measure, split the hottest shard, measure again, then crash and verify no acked write was lost (needs -keys; uses the first -shards count, min 2)")
		autopilot  = flag.Bool("autopilot", false, "loadgen: run the reshard-autopilot A/B instead of the shard sweep: measure, flood until the policy splits on its own, measure again, idle until it merges back, then crash and verify (uses the first -shards count, min 2)")
		bbox       = flag.Bool("blackbox", false, "loadgen: journal lifecycle events and windowed metrics snapshots to <pool-dir>/load.pool.blackbox/ (requires -pool-dir; the A/B against the same run without it bounds journaling overhead)")
		failAfter  = flag.Int("fail-syncs-after", 0, "loadgen: inject a persistent media-sync fault into shard 0 after N successful syncs — the shard seals fail-stop and the run ends in a simulated crash (postmortem smoke harness)")
	)
	flag.Parse()

	if *loadgen {
		cfg := loadgenConfig{
			shardList:  *shards,
			clients:    *clients,
			ops:        *ops,
			maxBatch:   *maxBatch,
			maxDelay:   *maxDelay,
			commitLat:  *commitLat,
			readRatio:  *readRatio,
			queued:     *queued,
			poolDir:    *poolDir,
			dataSizes:  *dataSizes,
			epochLog:   *epochLog,
			epochLogAB: *epochLogAB,
			ackPolicy:  *ackPol,
			inflight:   *inflight,
			format:     *format,
			jsonOut:    *jsonOut,
			keys:       *keys,
			dist:       *dist,
			zipfS:      *zipfS,
			rmwRatio:   *rmwRatio,
			valueDist:  *valueDist,
			seed:       *seed,
			split:      *split,
			autopilot:  *autopilot,
			blackbox:   *bbox,
			failAfter:  *failAfter,
		}
		if err := runLoadgen(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "paxbench: loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Printf("%-10s %-12s %s\n", "ID", "PAPER", "DESCRIPTION")
		for _, e := range benchkit.Experiments() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var sz benchkit.Sizes
	switch *scale {
	case "quick":
		sz = benchkit.QuickSizes()
	case "paper":
		sz = benchkit.PaperSizes()
	default:
		fmt.Fprintf(os.Stderr, "paxbench: unknown scale %q (quick|paper)\n", *scale)
		os.Exit(2)
	}
	cfg := benchkit.DefaultConfig()
	if *scale == "quick" {
		cfg = benchkit.TestConfig()
	}

	run := func(e benchkit.Experiment) {
		start := time.Now()
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Paper, e.Desc)
		for _, table := range e.Run(cfg, sz) {
			if *format == "csv" {
				fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
			} else {
				fmt.Println(table.String())
			}
		}
		fmt.Printf("    [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range benchkit.Experiments() {
			run(e)
		}
		return
	}
	e, ok := benchkit.Find(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "paxbench: unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
	run(e)
}

// loadgenConfig carries the -loadgen flag set.
type loadgenConfig struct {
	shardList  string
	clients    int
	ops        int
	maxBatch   int
	maxDelay   time.Duration
	commitLat  time.Duration
	readRatio  float64
	queued     bool
	poolDir    string
	dataSizes  string
	epochLog   bool
	epochLogAB bool
	ackPolicy  string
	inflight   string
	format     string
	jsonOut    string
	keys       uint64
	dist       string
	zipfS      float64
	rmwRatio   float64
	valueDist  string
	seed       int64
	split      bool
	autopilot  bool
	blackbox   bool
	failAfter  int
}

// runLoadgen sweeps persist mode × data size × shard count and reports each
// run, as a table plus metrics registry or as JSON records. With -split it
// instead runs the live-split A/B (pre-split phase, hot-shard split,
// post-split phase, crash + reopen verification).
func runLoadgen(cfg loadgenConfig) error {
	var counts []int
	for _, f := range strings.Split(cfg.shardList, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return fmt.Errorf("bad -shards value %q (want positive ints like 1,2,4,8)", f)
		}
		counts = append(counts, n)
	}
	if cfg.split {
		return runSplit(cfg, counts[0])
	}
	if cfg.autopilot {
		return runAutopilot(cfg, counts[0])
	}
	sizes := []uint64{0} // 0 = RunLoad's 32 MiB default
	if cfg.dataSizes != "" {
		sizes = nil
		for _, f := range strings.Split(cfg.dataSizes, ",") {
			n, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil || n == 0 {
				return fmt.Errorf("bad -data-sizes value %q (want positive byte counts)", f)
			}
			sizes = append(sizes, n)
		}
	}
	modes := []bool{cfg.epochLog}
	if cfg.epochLogAB {
		modes = []bool{false, true}
	}
	var policies []bool // AckOnApply values to sweep
	switch cfg.ackPolicy {
	case "durable":
		policies = []bool{false}
	case "apply":
		policies = []bool{true}
	case "both":
		policies = []bool{false, true}
	default:
		return fmt.Errorf("bad -ack-policy %q (want durable, apply, or both)", cfg.ackPolicy)
	}
	var windows []int
	for _, f := range strings.Split(cfg.inflight, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 0 {
			return fmt.Errorf("bad -inflight value %q (want non-negative ints like 1,2,4; 0 = engine default)", f)
		}
		windows = append(windows, n)
	}
	var (
		records []benchkit.LoadJSON
		results []benchkit.LoadResult
	)
	for _, epochLog := range modes {
		for _, dataSize := range sizes {
			for _, apply := range policies {
				for _, window := range windows {
					for _, n := range counts {
						spec := benchkit.LoadSpec{
							Clients:            cfg.clients,
							OpsPerClient:       cfg.ops,
							ValueBytes:         64,
							ReadRatio:          cfg.readRatio,
							QueuedReads:        cfg.queued,
							MaxBatch:           cfg.maxBatch,
							MaxDelay:           cfg.maxDelay,
							Shards:             n,
							CommitLatency:      cfg.commitLat,
							PoolDir:            cfg.poolDir,
							DataSize:           dataSize,
							EpochLog:           epochLog,
							MaxInflightCommits: window,
							AckOnApply:         apply,
							Keys:               cfg.keys,
							Dist:               cfg.dist,
							ZipfS:              cfg.zipfS,
							RMWRatio:           cfg.rmwRatio,
							ValueDist:          cfg.valueDist,
							Seed:               cfg.seed,
							Blackbox:           cfg.blackbox,
							FailSyncsAfter:     cfg.failAfter,
						}
						if cfg.readRatio == 0 && cfg.keys == 0 {
							spec.GetEveryN = 4
						}
						res, err := benchkit.RunLoad(spec)
						if err != nil {
							return fmt.Errorf("%d shards (epochLog=%v, data=%d, apply=%v, inflight=%d): %w",
								n, epochLog, dataSize, apply, window, err)
						}
						records = append(records, res.JSON())
						results = append(results, res)
					}
				}
			}
		}
	}

	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.jsonOut != "" {
		if err := os.WriteFile(cfg.jsonOut, blob, 0o644); err != nil {
			return err
		}
	}
	if cfg.format == "json" {
		_, err := os.Stdout.Write(blob)
		return err
	}

	t := stats.NewTable("loadgen", "mode", "ack", "w", "pool MiB", "shards", "clients", "acked writes", "gets", "snapshots", "writes/snapshot", "max batch", "writes/s", "ops/s", "ack p50 ms", "ack p99 ms", "KiB/commit p99", "amp", "imbalance")
	for _, res := range results {
		mode := "full-image"
		if res.EpochLog {
			mode = "delta"
		}
		j := res.JSON()
		t.AddRowf(mode, j.AckPolicy, j.MaxInflightCommits, float64(res.PoolBytes)/(1<<20), j.Shards, res.Spec.Clients, res.AckedWrites, res.Gets, res.GroupCommits,
			res.Amortization, res.BatchMax, res.Throughput, res.OpsThroughput,
			float64(res.AckP50.Microseconds())/1e3, float64(res.AckP99.Microseconds())/1e3,
			res.CommitP99Bytes/1024, res.WriteAmplification, res.ShardImbalance)
	}
	fmt.Println(t.String())
	for _, res := range results {
		if len(res.PerShard) > 1 {
			fmt.Println(perShardTable(res).String())
		}
	}
	for _, res := range results {
		fmt.Printf("## metrics (%d shards)\n", res.JSON().Shards)
		if _, err := res.Metrics.WriteTo(os.Stdout); err != nil {
			return fmt.Errorf("writing metrics: %w", err)
		}
	}
	return nil
}

// perShardTable renders one run's per-shard load so hot-shard skew is
// visible without grepping the metrics registry.
func perShardTable(res benchkit.LoadResult) *stats.Table {
	t := stats.NewTable(fmt.Sprintf("per-shard load (%d shards, imbalance %.2f, hot shard %d)",
		res.Spec.Shards, res.ShardImbalance, res.HotShard),
		"shard", "acked ops", "ack p99 ms", "enqueue wait p99 ms")
	for _, s := range res.PerShard {
		t.AddRowf(s.Shard, s.AckedOps, s.AckP99Micros/1e3, s.EnqueueWaitP99Micros/1e3)
	}
	return t
}

// runSplit drives the live-split A/B: a zipfian-skewed shared keyspace on a
// file-backed sharded engine, split the hottest shard mid-run, and prove
// via crash + reopen that no acked write was lost.
func runSplit(cfg loadgenConfig, shards int) error {
	if shards < 2 {
		shards = 2
	}
	dir := cfg.poolDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "paxbench-split-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	keys := cfg.keys
	if keys == 0 {
		keys = 10_000
	}
	dist := cfg.dist
	if dist == "uniform" {
		dist = "zipf" // the A/B is about skew; an explicit -dist zipf is the expected call
	}
	spec := benchkit.LoadSpec{
		Clients:       cfg.clients,
		OpsPerClient:  cfg.ops,
		ValueBytes:    64,
		ReadRatio:     cfg.readRatio,
		QueuedReads:   cfg.queued,
		MaxBatch:      cfg.maxBatch,
		MaxDelay:      cfg.maxDelay,
		Shards:        shards,
		CommitLatency: cfg.commitLat,
		PoolDir:       dir,
		EpochLog:      cfg.epochLog,
		Keys:          keys,
		Dist:          dist,
		ZipfS:         cfg.zipfS,
		RMWRatio:      cfg.rmwRatio,
		ValueDist:     cfg.valueDist,
		Seed:          cfg.seed,
	}
	res, err := benchkit.RunSplitLoad(spec)
	if err != nil {
		return err
	}
	records := res.JSON()
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.jsonOut != "" {
		if err := os.WriteFile(cfg.jsonOut, blob, 0o644); err != nil {
			return err
		}
	}
	if cfg.format == "json" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	t := stats.NewTable("live split A/B", "phase", "shards", "writes/s", "ops/s", "imbalance", "hot shard", "ack p99 ms", "moved slots", "moved keys", "crash ok", "lost keys")
	t.AddRowf("pre-split", res.Pre.Spec.Shards, res.Pre.Throughput, res.Pre.OpsThroughput, res.Pre.ShardImbalance,
		res.Pre.HotShard, float64(res.Pre.AckP99.Microseconds())/1e3, "-", "-", "-", "-")
	t.AddRowf("post-split", res.Post.Spec.Shards, res.Post.Throughput, res.Post.OpsThroughput, res.Post.ShardImbalance,
		res.Post.HotShard, float64(res.Post.AckP99.Microseconds())/1e3,
		res.Split.MovedSlots, res.Split.MovedKeys, res.Split.CrashVerified, res.Split.LostKeys)
	fmt.Println(t.String())
	fmt.Println(perShardTable(res.Pre).String())
	fmt.Println(perShardTable(res.Post).String())
	fmt.Printf("split: shard %d -> %d (new shard: %v), %d/%d slots moved (%.1f%% of keyspace), %d keys, %.1f ms\n",
		res.Split.Source, res.Split.Dest, res.Split.NewShard,
		res.Split.MovedSlots, 256, res.Split.MovedFrac*100, res.Split.MovedKeys, res.Split.SplitMS)
	return nil
}

// runAutopilot drives the policy-driven reshard A/B: nobody calls Split —
// the autopilot must grow the fleet under the zipf flood and shrink it back
// at idle, with a crash+reopen verification at the end.
func runAutopilot(cfg loadgenConfig, shards int) error {
	if shards < 2 {
		shards = 2
	}
	dir := cfg.poolDir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "paxbench-autopilot-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	}
	keys := cfg.keys
	if keys == 0 {
		keys = 10_000
	}
	dist := cfg.dist
	if dist == "uniform" {
		dist = "zipf" // the A/B is about skew; an explicit -dist zipf is the expected call
	}
	zipfS := cfg.zipfS
	if zipfS == 0 {
		zipfS = 1.5 // skewed enough that the hot shard's pipeline genuinely saturates
	}
	spec := benchkit.LoadSpec{
		Clients:       cfg.clients,
		OpsPerClient:  cfg.ops,
		ValueBytes:    64,
		ReadRatio:     cfg.readRatio,
		QueuedReads:   cfg.queued,
		MaxBatch:      cfg.maxBatch,
		MaxDelay:      cfg.maxDelay,
		Shards:        shards,
		CommitLatency: cfg.commitLat,
		PoolDir:       dir,
		EpochLog:      cfg.epochLog,
		Keys:          keys,
		Dist:          dist,
		ZipfS:         zipfS,
		RMWRatio:      cfg.rmwRatio,
		ValueDist:     cfg.valueDist,
		Seed:          cfg.seed,
	}
	res, err := benchkit.RunAutopilotLoad(spec)
	if err != nil {
		return err
	}
	records := res.JSON()
	blob, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if cfg.jsonOut != "" {
		if err := os.WriteFile(cfg.jsonOut, blob, 0o644); err != nil {
			return err
		}
	}
	if cfg.format == "json" {
		_, err := os.Stdout.Write(blob)
		return err
	}
	t := stats.NewTable("reshard autopilot A/B", "phase", "shards", "writes/s", "ops/s", "imbalance", "ack p99 ms", "policy wait ms")
	t.AddRowf("pre-autosplit", res.Pre.Spec.Shards, res.Pre.Throughput, res.Pre.OpsThroughput, res.Pre.ShardImbalance,
		float64(res.Pre.AckP99.Microseconds())/1e3, "-")
	t.AddRowf("post-autosplit", res.Post.Spec.Shards, res.Post.Throughput, res.Post.OpsThroughput, res.Post.ShardImbalance,
		float64(res.Post.AckP99.Microseconds())/1e3, res.Pilot.SplitWaitMS)
	fmt.Println(t.String())
	fmt.Println(perShardTable(res.Pre).String())
	fmt.Println(perShardTable(res.Post).String())
	fmt.Printf("autopilot: %d -> %d -> %d shards (%d split(s): %s; %d merge(s) %.1f ms after idle: %s); crash verified: %v, lost keys: %d\n",
		res.Pilot.StartShards, res.Pilot.PeakShards, res.Pilot.EndShards,
		res.Pilot.Splits, res.Pilot.SplitReason,
		res.Pilot.Merges, res.Pilot.MergeWaitMS, res.Pilot.MergeReason,
		res.Pilot.CrashVerified, res.Pilot.LostKeys)
	return nil
}
