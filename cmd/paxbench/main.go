// Command paxbench regenerates every table and figure of the paper's
// evaluation (and this repository's ablations) on the simulator.
//
// Usage:
//
//	paxbench -list
//	paxbench -experiment fig2a            # one experiment, paper scale
//	paxbench -experiment all -scale quick # everything, small and fast
//	paxbench -loadgen -clients 64 -ops 200 # serving-layer load generator
//
// Scales: "paper" uses a hash table far larger than the simulated LLC and
// 100k measured operations per system; "quick" is a seconds-long smoke run.
//
// -loadgen drives the paxserve group-commit engine with concurrent clients
// and prints the result table plus the full metrics registry as `name value`
// lines (the same text the STATS wire request returns).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pax/internal/benchkit"
	"pax/internal/stats"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (see -list) or \"all\"")
		scale      = flag.String("scale", "paper", "run scale: quick | paper")
		list       = flag.Bool("list", false, "list experiments and exit")
		format     = flag.String("format", "table", "output format: table | csv")
		loadgen    = flag.Bool("loadgen", false, "run the serving-layer load generator and exit")
		clients    = flag.Int("clients", 64, "loadgen: concurrent clients")
		ops        = flag.Int("ops", 200, "loadgen: writes per client")
		maxBatch   = flag.Int("max-batch", 128, "loadgen: max writes per group commit")
		maxDelay   = flag.Duration("max-delay", 2*time.Millisecond, "loadgen: max wait to fill a batch")
	)
	flag.Parse()

	if *loadgen {
		res, err := benchkit.RunLoad(benchkit.LoadSpec{
			Clients:      *clients,
			OpsPerClient: *ops,
			ValueBytes:   64,
			GetEveryN:    4,
			MaxBatch:     *maxBatch,
			MaxDelay:     *maxDelay,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxbench: loadgen: %v\n", err)
			os.Exit(1)
		}
		t := stats.NewTable("loadgen", "clients", "acked writes", "snapshots", "writes/snapshot", "max batch", "writes/s")
		t.AddRowf(res.Spec.Clients, res.AckedWrites, res.GroupCommits, res.Amortization, res.BatchMax, res.Throughput)
		fmt.Println(t.String())
		fmt.Println("## metrics")
		if _, err := res.Registry.WriteTo(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "paxbench: writing metrics: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		fmt.Printf("%-10s %-12s %s\n", "ID", "PAPER", "DESCRIPTION")
		for _, e := range benchkit.Experiments() {
			fmt.Printf("%-10s %-12s %s\n", e.ID, e.Paper, e.Desc)
		}
		return
	}

	var sz benchkit.Sizes
	switch *scale {
	case "quick":
		sz = benchkit.QuickSizes()
	case "paper":
		sz = benchkit.PaperSizes()
	default:
		fmt.Fprintf(os.Stderr, "paxbench: unknown scale %q (quick|paper)\n", *scale)
		os.Exit(2)
	}
	cfg := benchkit.DefaultConfig()
	if *scale == "quick" {
		cfg = benchkit.TestConfig()
	}

	run := func(e benchkit.Experiment) {
		start := time.Now()
		fmt.Printf("=== %s (%s): %s\n", e.ID, e.Paper, e.Desc)
		for _, table := range e.Run(cfg, sz) {
			if *format == "csv" {
				fmt.Printf("# %s\n%s\n", table.Title, table.CSV())
			} else {
				fmt.Println(table.String())
			}
		}
		fmt.Printf("    [%s completed in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}

	if *experiment == "all" {
		for _, e := range benchkit.Experiments() {
			run(e)
		}
		return
	}
	e, ok := benchkit.Find(*experiment)
	if !ok {
		fmt.Fprintf(os.Stderr, "paxbench: unknown experiment %q (use -list)\n", *experiment)
		os.Exit(2)
	}
	run(e)
}
