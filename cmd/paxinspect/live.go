package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pax/internal/server"
	"pax/internal/wire"
)

// Live mode: instead of reading a pool file's raw bytes, connect to a running
// paxserve and poll its STATS (-stats) or TRACE (-trace) wire commands. With
// -interval > 0 the poll repeats until interrupted; otherwise it runs once.

func runLive(addr string, trace, byShard bool, interval time.Duration) {
	cl, err := wire.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxinspect: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()
	for {
		switch {
		case trace:
			err = printTrace(cl)
		case byShard:
			err = printShardStats(cl)
		default:
			err = printStats(cl)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxinspect: %s: %v\n", addr, err)
			os.Exit(1)
		}
		if interval <= 0 {
			return
		}
		time.Sleep(interval)
		fmt.Println()
	}
}

func printStats(cl *wire.Client) error {
	text, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("-- stats @ %s --\n%s", time.Now().Format(time.RFC3339), text)
	return nil
}

// printShardStats parses the STATS registry text (`name value` lines, with
// per-shard series labeled {shard="K"}) and renders one row per shard: the
// view that makes a hot shard visible at a glance. A single-pool server has
// no {shard=...} series; the summary then covers the one implicit shard 0
// from the unlabeled counters.
func printShardStats(cl *wire.Client) error {
	text, err := cl.Stats()
	if err != nil {
		return err
	}
	m := make(map[string]float64)
	shards := 1
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		m[fields[0]] = v
		if i := strings.Index(fields[0], `{shard="`); i >= 0 {
			rest := fields[0][i+len(`{shard="`):]
			if j := strings.IndexByte(rest, '"'); j > 0 {
				if k, err := strconv.Atoi(rest[:j]); err == nil && k+1 > shards {
					shards = k + 1
				}
			}
		}
	}
	fmt.Printf("-- shards @ %s --\n", time.Now().Format(time.RFC3339))
	if seq, ok := m["paxserve_slotmap_seq"]; ok {
		fmt.Printf("router: %d shard(s), slot map seq %.0f, %.0f split(s), %.0f merge(s), %.0f slot(s) / %.0f key(s) moved, %.0f stale key(s) purged\n",
			shards, seq, m["paxserve_reshard_splits"], m["paxserve_reshard_merges"], m["paxserve_reshard_moved_slots"],
			m["paxserve_reshard_moved_keys"], m["paxserve_reshard_purged_keys"])
	}
	autopilot := m["paxserve_autopilot_enabled"] == 1
	if autopilot {
		line := fmt.Sprintf("autopilot: on, %.0f split(s) / %.0f merge(s) by policy",
			m["paxserve_autopilot_splits"], m["paxserve_autopilot_merges"])
		if code, ok := m["paxserve_autopilot_last_action"]; ok {
			action := "split"
			if code == 2 || code == -2 {
				action = "merge"
			}
			status := ""
			if code < 0 {
				status = " (failed)"
			}
			line += fmt.Sprintf("; last: %s shard %.0f%s at %s",
				action, m["paxserve_autopilot_last_shard"], status,
				time.Unix(0, int64(m["paxserve_autopilot_last_unix_nano"])).Format(time.RFC3339))
		}
		fmt.Println(line)
	}
	get := func(name string, k int) float64 {
		if shards == 1 {
			if v, ok := m[name]; ok {
				return v
			}
		}
		return m[name+`{shard="`+strconv.Itoa(k)+`"}`]
	}
	quant := func(name string, k int) float64 {
		if shards == 1 {
			if v, ok := m[name+`{q="p99"}`]; ok {
				return v
			}
		}
		return m[name+`{q="p99",shard="`+strconv.Itoa(k)+`"}`]
	}
	fmt.Printf("  %5s %14s %12s %12s %10s %16s %15s %13s\n",
		"shard", "acked writes", "on-apply", "gets", "commits", "enqueue p99", "commit p99", "ack p99")
	for k := 0; k < shards; k++ {
		fmt.Printf("  %5d %14.0f %12.0f %12.0f %10.0f %16s %15s %13s\n",
			k,
			get("paxserve_acked_writes", k),
			get("paxserve_acked_on_apply", k),
			get("paxserve_gets", k),
			get("paxserve_group_commits", k),
			fmtNS(int64(quant("paxserve_enqueue_wait_ns", k))),
			fmtNS(int64(quant("paxserve_commit_ns", k))),
			fmtNS(int64(quant("paxserve_commit_ack_ns", k))))
	}
	if autopilot {
		// Windowed rates are what the policy actually looks at; cumulative
		// counters above can't show which shard is hot *now*.
		fmt.Printf("  %5s %14s %16s %10s\n",
			"shard", "win ops/s", "win enq p99", "win stall")
		for k := 0; k < shards; k++ {
			fmt.Printf("  %5d %14.1f %16s %9.1f%%\n",
				k,
				get("paxserve_window_ops_per_sec", k),
				fmtNS(int64(get("paxserve_window_enqueue_p99_ns", k))),
				100*get("paxserve_window_stall_frac", k))
		}
	}
	return nil
}

func printTrace(cl *wire.Client) error {
	body, err := cl.Trace()
	if err != nil {
		return err
	}
	var snap server.TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decoding TRACE reply: %w", err)
	}
	fmt.Printf("-- trace @ %s: %d shard(s), slow threshold %s --\n",
		time.Now().Format(time.RFC3339), snap.Shards, time.Duration(snap.SlowThresholdNS))
	if d := snap.Autopilot; d != nil {
		status := fmt.Sprintf("-> %d shards", d.Shards)
		if d.Err != "" {
			status = "failed: " + d.Err
		}
		fmt.Printf("autopilot last decision @ %s: %s shard %d %s (%s)\n",
			time.Unix(0, d.UnixNano).Format(time.RFC3339), d.Action, d.Shard, status, d.Reason)
	}
	printRecords("recent commits", snap.Recent)
	printRecords("pinned outliers (slow or failed)", snap.Slow)
	return nil
}

func printRecords(title string, recs []server.CommitRecord) {
	fmt.Printf("%s: %d\n", title, len(recs))
	if len(recs) == 0 {
		return
	}
	fmt.Printf("  %5s %5s %6s %5s %7s %10s %10s %10s %10s  %s\n",
		"shard", "seq", "epoch", "batch", "retries", "seal", "persist", "ack", "total", "err")
	for _, r := range recs {
		errText := r.Err
		if errText == "" {
			errText = "-"
		}
		fmt.Printf("  %5d %5d %6d %5d %7d %10s %10s %10s %10s  %s\n",
			r.Shard, r.Seq, r.Epoch, r.Batch, r.Retries,
			fmtNS(r.SealNS), fmtNS(r.PersistNS), fmtNS(r.AckNS), fmtNS(r.TotalNS), errText)
	}
}

// fmtNS renders nanoseconds compactly (fixed units read better than
// Duration's adaptive unit soup in a fixed-width table).
func fmtNS(ns int64) string {
	if ns < 10_000_000 {
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%.1fms", float64(ns)/1e6)
}
