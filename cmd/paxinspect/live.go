package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pax/internal/server"
	"pax/internal/wire"
)

// Live mode: instead of reading a pool file's raw bytes, connect to a running
// paxserve and poll its STATS (-stats) or TRACE (-trace) wire commands. With
// -interval > 0 the poll repeats until interrupted; otherwise it runs once.

func runLive(addr string, trace bool, interval time.Duration) {
	cl, err := wire.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxinspect: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()
	for {
		if trace {
			err = printTrace(cl)
		} else {
			err = printStats(cl)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "paxinspect: %s: %v\n", addr, err)
			os.Exit(1)
		}
		if interval <= 0 {
			return
		}
		time.Sleep(interval)
		fmt.Println()
	}
}

func printStats(cl *wire.Client) error {
	text, err := cl.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("-- stats @ %s --\n%s", time.Now().Format(time.RFC3339), text)
	return nil
}

func printTrace(cl *wire.Client) error {
	body, err := cl.Trace()
	if err != nil {
		return err
	}
	var snap server.TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		return fmt.Errorf("decoding TRACE reply: %w", err)
	}
	fmt.Printf("-- trace @ %s: %d shard(s), slow threshold %s --\n",
		time.Now().Format(time.RFC3339), snap.Shards, time.Duration(snap.SlowThresholdNS))
	printRecords("recent commits", snap.Recent)
	printRecords("pinned outliers (slow or failed)", snap.Slow)
	return nil
}

func printRecords(title string, recs []server.CommitRecord) {
	fmt.Printf("%s: %d\n", title, len(recs))
	if len(recs) == 0 {
		return
	}
	fmt.Printf("  %5s %5s %6s %5s %7s %10s %10s %10s %10s  %s\n",
		"shard", "seq", "epoch", "batch", "retries", "seal", "persist", "ack", "total", "err")
	for _, r := range recs {
		errText := r.Err
		if errText == "" {
			errText = "-"
		}
		fmt.Printf("  %5d %5d %6d %5d %7d %10s %10s %10s %10s  %s\n",
			r.Shard, r.Seq, r.Epoch, r.Batch, r.Retries,
			fmtNS(r.SealNS), fmtNS(r.PersistNS), fmtNS(r.AckNS), fmtNS(r.TotalNS), errText)
	}
}

// fmtNS renders nanoseconds compactly (fixed units read better than
// Duration's adaptive unit soup in a fixed-width table).
func fmtNS(ns int64) string {
	if ns < 10_000_000 {
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	}
	return fmt.Sprintf("%.1fms", float64(ns)/1e6)
}
