// Command paxinspect dumps the on-media state of a pool file: header
// geometry, durable epoch, undo-log contents, allocator frontier, and root
// slots. It opens the media read-only and performs no recovery, so it shows
// exactly what a post-crash observer would find.
//
// For epoch-log pools (paxserve -epoch-log) it first lists the delta
// segments next to the file — per-segment record counts, sequence and epoch
// ranges, and whether the newest segment ends in a torn append — then
// replays the committed deltas in memory and dumps the reconstructed state,
// without touching the bytes on disk.
//
// It also has a live mode against a running paxserve: -stats polls the
// server's STATS wire command (the metrics registry, latency quantiles
// included) and -trace polls TRACE (the commit flight recorder) and renders
// the per-commit stage timings as a table. -stats -shards folds the
// registry's {shard="K"} series into a per-shard summary table (acked ops,
// queue and commit tails, slot-router counters) — the view for spotting a
// hot shard before and after a SPLIT. -interval repeats the poll.
//
// Usage:
//
//	paxinspect -pool ./ht.pool [-entries 20]
//	paxinspect -stats 127.0.0.1:7421 [-interval 2s]
//	paxinspect -stats 127.0.0.1:7421 -shards
//	paxinspect -trace 127.0.0.1:7421 [-interval 2s]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"

	"pax/internal/epochlog"
)

// Media layout constants, mirrored from internal/core and internal/undolog
// (this tool reads raw bytes on purpose: it must work on pools the library
// refuses to open).
const (
	poolMagic       = 0x5041585034f4f4c1
	logMagic        = 0x5041584c4f473031
	arenaMagic      = 0x5041584152454e41
	logHeaderSize   = 64
	logEntrySize    = 96
	rootSlots       = 16
	arenaHeaderSize = 40 + 9*8
)

func u64(b []byte, off uint64) uint64 { return binary.LittleEndian.Uint64(b[off:]) }
func u32(b []byte, off uint64) uint32 { return binary.LittleEndian.Uint32(b[off:]) }

// dumpEpochStore prints the delta segments next to an epoch-log pool, if
// any, and replays the committed records onto img so the dump below shows
// the reconstructed (checkpoint + deltas) state — what opening the pool
// would see. A torn tail is reported, not fatal: it is exactly the artifact
// a post-crash observer is here to look at. The file on disk is never
// modified (read-only open).
func dumpEpochStore(path string, img []byte) {
	dir := path + epochlog.DirSuffix
	has, err := epochlog.HasSegments(dir)
	if err != nil {
		fmt.Printf("  epoch store: %v\n", err)
		return
	}
	if !has {
		return
	}
	ckptEpoch := uint64(0)
	if len(img) >= 64 {
		ckptEpoch = u64(img, 56)
	}
	store, err := epochlog.Open(epochlog.Config{Dir: dir, ReadOnly: true})
	if err != nil {
		fmt.Printf("  epoch store: %s: UNREADABLE: %v\n", dir, err)
		fmt.Printf("  (dump below shows the checkpoint image alone)\n")
		return
	}
	defer store.Close()
	info := store.Info()
	fmt.Printf("  epoch store: %s (checkpoint epoch %d, %d committed delta(s) in %d segment(s), %d bytes)\n",
		dir, ckptEpoch, info.Records, len(info.Segments), info.Bytes)
	for _, seg := range info.Segments {
		line := fmt.Sprintf("    %s: %7d bytes, %d record(s)", seg.Name, seg.Bytes, seg.Records)
		if seg.Records > 0 {
			line += fmt.Sprintf(", seq [%d,%d], epochs [%d,%d]",
				seg.FirstSeq, seg.LastSeq, seg.FirstEpoch, seg.LastEpoch)
		}
		if seg.Dropped {
			line += " DROPPED (covered by checkpoint)"
		}
		if seg.TornTail {
			line += " TORN TAIL (uncommitted append, discarded on replay)"
		}
		fmt.Println(line)
	}
	if info.TornTail {
		fmt.Printf("  NOTE: the newest segment ends in a torn append — the pool crashed\n")
		fmt.Printf("        mid-commit; replay stops at seq %d (epoch %d)\n", info.LastSeq, info.LastEpoch)
	}
	err = store.Replay(func(rec epochlog.Record) error {
		for _, r := range rec.Ranges {
			end := r.Addr + uint64(len(r.Data))
			if end > uint64(len(img)) {
				return fmt.Errorf("record seq %d writes [%#x,%#x) beyond the %d-byte pool",
					rec.Seq, r.Addr, end, len(img))
			}
			copy(img[r.Addr:end], r.Data)
		}
		return nil
	})
	if err != nil {
		fmt.Printf("  epoch store: replay FAILED: %v\n", err)
		fmt.Printf("  (dump below shows the state up to the failing record)\n")
		return
	}
	fmt.Printf("  (dump below shows the reconstructed state: checkpoint + replayed deltas)\n")
}

func main() {
	var (
		path     = flag.String("pool", "", "pool file to inspect")
		entries  = flag.Int("entries", 10, "max undo-log entries to print")
		statsAt  = flag.String("stats", "", "poll a running paxserve's STATS at this address instead of reading a file")
		traceAt  = flag.String("trace", "", "poll a running paxserve's TRACE (commit flight recorder) at this address")
		interval = flag.Duration("interval", 0, "with -stats/-trace: repeat the poll at this period (0 = once)")
		byShard  = flag.Bool("shards", false, "with -stats: render a per-shard summary table (acked ops, queue/commit tails, slot counts) instead of the raw registry")
		postDir  = flag.String("postmortem", "", "reconstruct a crash timeline from a black-box journal directory (<pool>.blackbox/) — works with the server dead")
		asJSON   = flag.Bool("json", false, "with -postmortem: emit the machine-readable timeline instead of the human rendering")
	)
	flag.Parse()
	if *postDir != "" {
		if err := runPostmortem(*postDir, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "paxinspect: postmortem: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *statsAt != "" && *traceAt != "" {
		fmt.Fprintln(os.Stderr, "paxinspect: -stats and -trace are mutually exclusive")
		os.Exit(2)
	}
	if *byShard && *statsAt == "" {
		fmt.Fprintln(os.Stderr, "paxinspect: -shards needs -stats")
		os.Exit(2)
	}
	if addr := *statsAt + *traceAt; addr != "" {
		runLive(addr, *traceAt != "", *byShard, *interval)
		return
	}
	if *path == "" {
		fmt.Fprintln(os.Stderr, "paxinspect: -pool is required (or -stats/-trace for live mode)")
		os.Exit(2)
	}
	img, err := os.ReadFile(*path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "paxinspect: %v\n", err)
		os.Exit(1)
	}
	if len(img) < 4096 {
		fmt.Fprintf(os.Stderr, "paxinspect: %d bytes is too small for a pool\n", len(img))
		os.Exit(1)
	}

	fmt.Printf("pool: %s (%d bytes)\n", *path, len(img))
	dumpEpochStore(*path, img)
	if got := u64(img, 0); got != poolMagic {
		fmt.Printf("  INVALID pool magic %#x\n", got)
		os.Exit(1)
	}
	logOff, logSize := u64(img, 24), u64(img, 32)
	dataOff, dataSize := u64(img, 40), u64(img, 48)
	durable := u64(img, 56)
	fmt.Printf("  version       %d\n", u64(img, 8))
	fmt.Printf("  total size    %d\n", u64(img, 16))
	fmt.Printf("  undo log      [%#x, +%d)\n", logOff, logSize)
	fmt.Printf("  data (vPM)    [%#x, +%d)\n", dataOff, dataSize)
	fmt.Printf("  durable epoch %d\n", durable)

	// Undo log.
	lh := img[logOff:]
	if got := u64(lh, 0); got != logMagic {
		fmt.Printf("  undo log: INVALID magic %#x\n", got)
	} else {
		capacity := u64(lh, 16)
		tail := u64(lh, 24)
		fmt.Printf("  undo log: capacity %d entries, tail at entry %d\n",
			capacity/logEntrySize, tail/logEntrySize)
		printed, live := 0, 0
		for virt := tail; virt-tail < capacity; virt += logEntrySize {
			slot := logOff + logHeaderSize + virt%capacity
			e := img[slot : slot+logEntrySize]
			seq := u64(e, 8)
			if seq != virt/logEntrySize {
				break // validation would need the CRC; seq mismatch ends scan
			}
			live++
			if printed < *entries {
				fmt.Printf("    entry seq=%d epoch=%d addr=%#x old[0:8]=%x\n",
					seq, u64(e, 0), u64(e, 16), e[24:32])
				printed++
			}
		}
		fmt.Printf("  undo log: ~%d live entries (%d shown)\n", live, printed)
		if live > 0 && durable > 0 {
			fmt.Printf("  NOTE: live entries beyond the durable epoch mean the pool crashed\n")
			fmt.Printf("        mid-epoch; opening it (or paxrecover) will roll them back\n")
		}
	}

	// Allocator + roots.
	ah := img[dataOff:]
	if got := u64(ah, 0); got != arenaMagic {
		fmt.Printf("  allocator: INVALID magic %#x (pool never persisted?)\n", got)
		return
	}
	brk := u64(ah, 24)
	fmt.Printf("  allocator: brk %#x (%d heap bytes in use)\n", brk, brk-dataOff-arenaHeaderSize)
	rootBase := dataOff + uint64(arenaHeaderSize+15)/16*16
	fmt.Printf("  roots (table at %#x):\n", rootBase)
	for i := uint64(0); i < rootSlots; i++ {
		if v := u64(img, rootBase+i*8); v != 0 {
			fmt.Printf("    slot %2d → %#x\n", i, v)
		}
	}
	_ = u32 // reserved for future field dumps
}
