package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"pax/internal/blackbox"
)

// Postmortem mode: reconstruct a crash timeline from the black-box journal
// alone (paxserve -blackbox writes it to <pool>.blackbox/). The server is
// dead; everything below comes from replaying the journal's CRC-framed
// records — lifecycle events and windowed metrics snapshots — and pulling
// out what an operator asks first after a crash: was it a crash at all, how
// fast was the store running just before, which commit failed and why, what
// did the autopilot last do, and was a reshard in flight.

// pmEvent mirrors the journaled server.Event frame. Defined locally on
// purpose: the journal is a wire format, and the analyzer must keep decoding
// journals written by older servers.
type pmEvent struct {
	Seq      uint64          `json:"seq"`
	UnixNano int64           `json:"unix_nano"`
	Type     string          `json:"type"`
	Shard    int             `json:"shard"`
	Detail   json.RawMessage `json:"detail,omitempty"`
}

type ratePoint struct {
	UnixNano  int64   `json:"unix_nano"`
	OpsPerSec float64 `json:"ops_per_sec"`
}

type sealInfo struct {
	Shard    int    `json:"shard"`
	UnixNano int64  `json:"unix_nano"`
	Error    string `json:"error"`
}

// timeline is the machine-readable postmortem (-postmortem -json).
type timeline struct {
	Journal       blackbox.Info `json:"journal"`
	FirstUnixNano int64         `json:"first_unix_nano"`
	LastUnixNano  int64         `json:"last_unix_nano"`
	// CleanShutdown is whether the journal ends in an orderly-shutdown
	// marker; false means the process died with the journal open — a crash.
	CleanShutdown bool        `json:"clean_shutdown"`
	Snapshots     int         `json:"snapshots"`
	RateTrend     []ratePoint `json:"rate_trend,omitempty"`
	Seal          *sealInfo   `json:"seal,omitempty"`
	// FailedCommit is the flight-recorder record of the last commit that
	// exhausted its retries (the record that explains the seal);
	// InflightAtCrash is its pipeline depth — how many epochs were in
	// flight toward media when the failure hit.
	FailedCommit      json.RawMessage `json:"failed_commit,omitempty"`
	FailedCommitShard int             `json:"failed_commit_shard,omitempty"`
	InflightAtCrash   int             `json:"inflight_at_crash,omitempty"`
	LastPolicy        json.RawMessage `json:"last_policy,omitempty"`
	// OpenReshard names a split/merge that started but never logged its done
	// event — the process died inside it.
	OpenReshard string    `json:"open_reshard,omitempty"`
	Events      []pmEvent `json:"events"`
}

func runPostmortem(dir string, asJSON bool) error {
	j, err := blackbox.Open(blackbox.Config{Dir: dir, ReadOnly: true})
	if err != nil {
		return err
	}
	defer j.Close()

	tl := &timeline{Journal: j.Info()}
	openSplits, openMerges := 0, 0
	err = j.Replay(func(rec blackbox.Record) error {
		if tl.FirstUnixNano == 0 {
			tl.FirstUnixNano = rec.UnixNano
		}
		tl.LastUnixNano = rec.UnixNano
		if rec.Type == blackbox.EvSnapshot {
			var s blackbox.Snapshot
			if json.Unmarshal(rec.Payload, &s) != nil {
				return nil
			}
			tl.Snapshots++
			tl.RateTrend = append(tl.RateTrend, ratePoint{UnixNano: s.UnixNano, OpsPerSec: s.OpsPerSec})
			return nil
		}
		ev := pmEvent{Shard: -1}
		if json.Unmarshal(rec.Payload, &ev) != nil || ev.Type == "" {
			// Unknown frame from a future writer: keep it on the timeline
			// with what the record header alone says.
			ev = pmEvent{Seq: rec.Seq, UnixNano: rec.UnixNano, Type: rec.Type, Shard: -1}
		}
		tl.Events = append(tl.Events, ev)
		switch ev.Type {
		case blackbox.EvSeal:
			var d struct {
				Error string `json:"error"`
			}
			_ = json.Unmarshal(ev.Detail, &d)
			tl.Seal = &sealInfo{Shard: ev.Shard, UnixNano: ev.UnixNano, Error: d.Error}
		case blackbox.EvCommitFailed:
			tl.FailedCommit = ev.Detail
			tl.FailedCommitShard = ev.Shard
			var d struct {
				Inflight int `json:"inflight"`
			}
			_ = json.Unmarshal(ev.Detail, &d)
			tl.InflightAtCrash = d.Inflight
		case blackbox.EvPolicy:
			tl.LastPolicy = ev.Detail
		case blackbox.EvShutdown:
			tl.CleanShutdown = true
		case blackbox.EvSplitStart:
			openSplits++
		case blackbox.EvSplitDone:
			openSplits--
		case blackbox.EvMergeStart:
			openMerges++
		case blackbox.EvMergeDone:
			openMerges--
		}
		return nil
	})
	if err != nil {
		return err
	}
	// A shutdown marker anywhere but the tail belongs to an earlier life of
	// the journal; only the final event proves this run ended on purpose.
	if n := len(tl.Events); n > 0 && tl.Events[n-1].Type != blackbox.EvShutdown {
		tl.CleanShutdown = false
	}
	if openMerges > 0 {
		tl.OpenReshard = "merge"
	} else if openSplits > 0 {
		tl.OpenReshard = "split"
	}

	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(tl)
	}
	printPostmortem(dir, tl)
	return nil
}

func pmTime(ns int64) string {
	if ns == 0 {
		return "-"
	}
	return time.Unix(0, ns).Format("15:04:05.000")
}

func printPostmortem(dir string, tl *timeline) {
	fmt.Printf("postmortem: %s\n", dir)
	fmt.Printf("  journal: %d segment(s), %d record(s), seq %d..%d\n",
		tl.Journal.Segments, tl.Journal.Records, tl.Journal.FirstSeq, tl.Journal.LastSeq)
	if tl.Journal.TornTail {
		fmt.Printf("  torn tail: %d byte(s) of a partial append discarded (crash mid-journal-write)\n",
			tl.Journal.TornBytes)
	}
	if tl.FirstUnixNano != 0 {
		span := time.Duration(tl.LastUnixNano - tl.FirstUnixNano)
		fmt.Printf("  covers %s .. %s (%v)\n", pmTime(tl.FirstUnixNano), pmTime(tl.LastUnixNano), span.Round(time.Millisecond))
	}
	if tl.CleanShutdown {
		fmt.Printf("  verdict: CLEAN SHUTDOWN (orderly-exit marker is the journal's last event)\n")
	} else {
		fmt.Printf("  verdict: CRASH (journal ends without a shutdown marker)\n")
	}

	if n := len(tl.RateTrend); n > 0 {
		fmt.Printf("\nrate trend (last %d of %d snapshots):\n", min(10, n), tl.Snapshots)
		for _, p := range tl.RateTrend[max(0, n-10):] {
			fmt.Printf("  %s  %10.1f ops/s\n", pmTime(p.UnixNano), p.OpsPerSec)
		}
	}

	if tl.Seal != nil {
		fmt.Printf("\nseal: shard %d at %s\n  error: %s\n", tl.Seal.Shard, pmTime(tl.Seal.UnixNano), tl.Seal.Error)
	}
	if tl.FailedCommit != nil {
		var rec struct {
			Epoch     uint64 `json:"epoch"`
			Batch     int    `json:"batch"`
			Inflight  int    `json:"inflight"`
			Retries   int    `json:"retries"`
			Start     int64  `json:"start_unix_nano"`
			PersistNS int64  `json:"persist_ns"`
			Err       string `json:"err"`
		}
		_ = json.Unmarshal(tl.FailedCommit, &rec)
		fmt.Printf("\nfailing commit (shard %d):\n", tl.FailedCommitShard)
		fmt.Printf("  batch of %d, %d retries, persist phase %v, %d epoch(s) in flight at failure\n",
			rec.Batch, rec.Retries, time.Duration(rec.PersistNS).Round(time.Microsecond), rec.Inflight)
		fmt.Printf("  error: %s\n", rec.Err)
	}
	if tl.LastPolicy != nil {
		var d struct {
			Action string `json:"action"`
			Shard  int    `json:"shard"`
			Reason string `json:"reason"`
			Shards int    `json:"shards"`
			Err    string `json:"error"`
		}
		_ = json.Unmarshal(tl.LastPolicy, &d)
		fmt.Printf("\nlast autopilot decision: %s shard %d (%s)", d.Action, d.Shard, d.Reason)
		if d.Err != "" {
			fmt.Printf(" FAILED: %s", d.Err)
		} else if d.Shards > 0 {
			fmt.Printf(" -> %d shards", d.Shards)
		}
		fmt.Println()
	}
	if tl.OpenReshard != "" {
		fmt.Printf("\nreshard in flight at crash: a %s started but never finished\n", tl.OpenReshard)
	}

	n := len(tl.Events)
	show := tl.Events[max(0, n-20):]
	if len(show) > 0 {
		fmt.Printf("\nlast %d event(s):\n", len(show))
		for _, ev := range show {
			detail := ""
			if len(ev.Detail) > 0 {
				detail = string(ev.Detail)
				if len(detail) > 100 {
					detail = detail[:100] + "..."
				}
			}
			shard := fmt.Sprintf("%d", ev.Shard)
			if ev.Shard < 0 {
				shard = "-"
			}
			fmt.Printf("  %s  shard %-2s %-16s %s\n", pmTime(ev.UnixNano), shard, ev.Type, detail)
		}
	}
}
