package pax_test

// End-to-end tests of the command-line tools: build each binary, run it
// against a real pool file, and check its output — the closest thing to a
// user's shell session.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"pax"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func TestInspectAndRecoverTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	inspect := buildTool(t, dir, "paxinspect")
	recover := buildTool(t, dir, "paxrecover")

	// Build a pool with durable data plus an unpersisted epoch.
	poolPath := filepath.Join(dir, "tool.pool")
	pool, err := pax.MapPool(poolPath, pax.Options{DataSize: 1 << 20, LogSize: 1 << 20, HBMSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	m, _ := pax.NewMap(pool, 0)
	m.Put([]byte("durable"), []byte("yes"))
	pool.Persist()
	m.Put([]byte("open-epoch"), []byte("dies"))
	// Force some open-epoch state onto media, then crash.
	pool.Internal().Hierarchy().FlushAll(0)
	pool.Close()

	// Inspect: must show the pool geometry, the durable epoch, and warn
	// about live log entries.
	out, err := exec.Command(inspect, "-pool", poolPath).CombinedOutput()
	if err != nil {
		t.Fatalf("paxinspect: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"durable epoch", "undo log", "allocator", "roots", "slot  0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("paxinspect output missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "live entries") {
		t.Fatalf("paxinspect did not report log state:\n%s", text)
	}

	// Recover (dry run first: file must not change).
	before, _ := os.ReadFile(poolPath)
	out, err = exec.Command(recover, "-pool", poolPath, "-dry-run").CombinedOutput()
	if err != nil {
		t.Fatalf("paxrecover dry-run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "dry run") {
		t.Fatalf("dry-run output: %s", out)
	}
	after, _ := os.ReadFile(poolPath)
	if string(before) != string(after) {
		t.Fatal("dry run modified the pool")
	}

	// Real recovery rewrites the file; the recovered pool then opens with
	// nothing left to roll back.
	out, err = exec.Command(recover, "-pool", poolPath).CombinedOutput()
	if err != nil {
		t.Fatalf("paxrecover: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "recovered in place") {
		t.Fatalf("recover output: %s", out)
	}
	pool2, err := pax.OpenPool(poolPath, pax.Options{DataSize: 1 << 20, LogSize: 1 << 20, HBMSize: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if pool2.Recovery().LinesRolledBack != 0 {
		t.Fatalf("offline-recovered pool still rolled back %d lines", pool2.Recovery().LinesRolledBack)
	}
	m2, _ := pax.NewMap(pool2, 0)
	if _, ok := m2.Get([]byte("durable")); !ok {
		t.Fatal("durable entry lost")
	}
	if _, ok := m2.Get([]byte("open-epoch")); ok {
		t.Fatal("open-epoch entry survived offline recovery")
	}
}

func TestBenchToolQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "paxbench")

	out, err := exec.Command(bench, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("paxbench -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "fig2a") || !strings.Contains(string(out), "ycsb") {
		t.Fatalf("experiment list incomplete:\n%s", out)
	}

	out, err = exec.Command(bench, "-experiment", "fig2a", "-scale", "quick").CombinedOutput()
	if err != nil {
		t.Fatalf("paxbench fig2a: %v\n%s", err, out)
	}
	for _, want := range []string{"Figure 2a", "PM via Enzian", "amat_ns"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("fig2a output missing %q:\n%s", want, out)
		}
	}

	if out, err := exec.Command(bench, "-experiment", "nope").CombinedOutput(); err == nil {
		t.Fatalf("unknown experiment accepted:\n%s", out)
	}
}
