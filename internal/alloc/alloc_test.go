package alloc

import (
	"errors"
	"testing"
	"testing/quick"

	"pax/internal/memory"
)

func testArena(t *testing.T, size int) *Arena {
	t.Helper()
	mem := memory.NewFlat(size)
	return Create(mem, 0, uint64(size))
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		want int
	}{{1, 0}, {16, 0}, {17, 1}, {32, 1}, {64, 2}, {4096, 8}, {4097, -1}}
	for _, c := range cases {
		if got := classFor(c.size); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.size, got, c.want)
		}
	}
	if classSize(0) != 16 || classSize(8) != 4096 {
		t.Fatal("classSize wrong")
	}
}

func TestAllocAlignmentAndDistinctness(t *testing.T) {
	a := testArena(t, 1<<20)
	seen := map[uint64]bool{}
	for _, size := range []uint64{1, 8, 16, 24, 100, 4096, 5000, 100000} {
		addr, err := a.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if addr%16 != 0 {
			t.Fatalf("Alloc(%d) = %#x not 16-aligned", size, addr)
		}
		if seen[addr] {
			t.Fatalf("address %#x returned twice", addr)
		}
		seen[addr] = true
	}
	if a.AllocCalls != 8 {
		t.Fatalf("AllocCalls = %d", a.AllocCalls)
	}
}

func TestFreeRecyclesSmall(t *testing.T) {
	a := testArena(t, 1<<20)
	addr, _ := a.Alloc(64)
	brk := a.Brk()
	if err := a.Free(addr, 64); err != nil {
		t.Fatal(err)
	}
	addr2, _ := a.Alloc(64)
	if addr2 != addr {
		t.Fatalf("free block not recycled: %#x vs %#x", addr2, addr)
	}
	if a.Brk() != brk {
		t.Fatal("recycling moved brk")
	}
}

func TestFreeRecyclesLargeWithSplit(t *testing.T) {
	a := testArena(t, 1<<20)
	addr, _ := a.Alloc(32768) // 8 pages
	a.Free(addr, 32768)
	// Allocate two pages: first fit should split the 8-page block.
	p1, _ := a.Alloc(8192)
	if p1 != addr {
		t.Fatalf("first fit returned %#x, want %#x", p1, addr)
	}
	p2, _ := a.Alloc(8192)
	if p2 != addr+8192 {
		t.Fatalf("split remainder not reused: %#x", p2)
	}
	_, large := a.FreeListLens()
	if large != 1 {
		t.Fatalf("large list has %d blocks, want 1 (remainder)", large)
	}
}

func TestOutOfMemory(t *testing.T) {
	a := testArena(t, headerSize+8192)
	if _, err := a.Alloc(1 << 20); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v", err)
	}
	// Small allocations still succeed until space runs out.
	n := 0
	for {
		if _, err := a.Alloc(4096); err != nil {
			break
		}
		n++
	}
	if n == 0 || n > 2 {
		t.Fatalf("allocated %d pages from 8 KiB heap", n)
	}
}

func TestZeroSizeAndBadFree(t *testing.T) {
	a := testArena(t, 1<<16)
	if _, err := a.Alloc(0); err == nil {
		t.Fatal("zero alloc accepted")
	}
	if err := a.Free(1<<40, 64); err == nil {
		t.Fatal("out-of-arena free accepted")
	}
}

func TestOpenValidates(t *testing.T) {
	mem := memory.NewFlat(1 << 16)
	Create(mem, 0, 1<<16)
	if _, err := Open(mem, 0, 1<<16); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(mem, 0, 1<<15); err == nil {
		t.Fatal("size mismatch accepted")
	}
	mem.Store(0, []byte{0xFF})
	if _, err := Open(mem, 0, 1<<16); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

func TestOpenPreservesState(t *testing.T) {
	mem := memory.NewFlat(1 << 18)
	a := Create(mem, 0, 1<<18)
	addr1, _ := a.Alloc(64)
	a.Free(addr1, 64)
	brk := a.Brk()

	// Reattach: free lists and brk must survive because they live in the
	// managed memory itself.
	a2, err := Open(mem, 0, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	if a2.Brk() != brk {
		t.Fatal("brk lost on reopen")
	}
	got, _ := a2.Alloc(64)
	if got != addr1 {
		t.Fatal("free list lost on reopen")
	}
}

func TestBaseOffsetArena(t *testing.T) {
	mem := memory.NewFlat(1 << 18)
	a := Create(mem, 4096, 1<<17)
	addr, err := a.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if addr < 4096+headerSize || addr >= 4096+(1<<17) {
		t.Fatalf("allocation %#x outside offset arena", addr)
	}
}

// Property: alloc/free sequences never hand out overlapping live blocks and
// never exceed the arena.
func TestNoOverlapProperty(t *testing.T) {
	type block struct{ addr, size uint64 }
	f := func(ops []uint16) bool {
		a := testArena(t, 1<<20)
		var live []block
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				b := live[0]
				live = live[1:]
				if a.Free(b.addr, b.size) != nil {
					return false
				}
				continue
			}
			size := uint64(op%5000) + 1
			addr, err := a.Alloc(size)
			if err != nil {
				continue // exhaustion is fine
			}
			if addr+size > 1<<20 {
				return false
			}
			for _, b := range live {
				if addr < b.addr+b.size && b.addr < addr+size {
					return false // overlap with a live block
				}
			}
			live = append(live, block{addr, size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
