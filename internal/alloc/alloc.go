// Package alloc implements the pool allocator that libpax wraps around a
// mapped vPM region (§3.1 "PAX Allocator Setup").
//
// Every byte of allocator state — the bump frontier and the free lists —
// lives inside the managed region and is accessed exclusively through the
// region's Memory. That is the load-bearing design point: because the
// allocator's metadata is just more data in vPM, PAX's snapshotting makes
// allocation state crash-consistent for free, and recovery needs no separate
// allocator repair step (§3.4 "it recovers the pool's allocator state" falls
// out of rolling the region back to the last snapshot). The same code also
// runs over plain DRAM for the volatile baselines.
package alloc

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pax/internal/memory"
)

const (
	arenaMagic   = 0x5041584152454e41 // "PAXARENA"
	arenaVersion = 1

	// numClasses size classes: 16, 32, 64, ..., 4096.
	numClasses = 9
	minClass   = 16
	maxClass   = 4096
	pageRound  = 4096

	// Header layout (absolute offsets from arena base).
	offMagic   = 0
	offVersion = 8
	offSize    = 16
	offBrk     = 24
	offLarge   = 32 // head of the large-block free list
	offClasses = 40 // numClasses * 8 bytes of list heads
	headerSize = offClasses + numClasses*8

	// heapAlign is the minimum block alignment.
	heapAlign = 16
)

// ErrOutOfMemory is returned when the arena cannot satisfy an allocation.
var ErrOutOfMemory = errors.New("alloc: arena exhausted")

// Arena is a crash-consistent allocator over a Memory window. It is not safe
// for concurrent use; callers serialize (matching §3.5's contract that
// structure code provides its own thread safety).
type Arena struct {
	mem  memory.Memory
	base uint64
	size uint64

	// In-memory statistics (not persisted; rebuilt as zero on open).
	AllocCalls, FreeCalls uint64
	BytesAllocated        uint64
}

// classFor returns the class index for a small size, or -1 for large sizes.
func classFor(size uint64) int {
	if size > maxClass {
		return -1
	}
	c := 0
	for s := uint64(minClass); s < size; s <<= 1 {
		c++
	}
	return c
}

// classSize returns the block size of class c.
func classSize(c int) uint64 { return minClass << uint(c) }

func roundUp(v, to uint64) uint64 { return (v + to - 1) / to * to }

// Create formats a fresh arena in [base, base+size) of mem. The usable heap
// begins after the header.
func Create(mem memory.Memory, base, size uint64) *Arena {
	if size < headerSize+maxClass {
		panic(fmt.Sprintf("alloc: arena of %d bytes too small", size))
	}
	a := &Arena{mem: mem, base: base, size: size}
	a.writeU64(base+offMagic, arenaMagic)
	a.writeU64(base+offVersion, arenaVersion)
	a.writeU64(base+offSize, size)
	a.writeU64(base+offBrk, roundUp(base+headerSize, heapAlign))
	a.writeU64(base+offLarge, 0)
	for c := 0; c < numClasses; c++ {
		a.writeU64(base+offClasses+uint64(c)*8, 0)
	}
	return a
}

// Open attaches to an existing arena, validating its header. Open performs
// no repair: after a crash the region's contents were already rolled back to
// the last consistent snapshot by the pool's recovery.
func Open(mem memory.Memory, base, size uint64) (*Arena, error) {
	a := &Arena{mem: mem, base: base, size: size}
	if got := a.readU64(base + offMagic); got != arenaMagic {
		return nil, fmt.Errorf("alloc: bad arena magic %#x", got)
	}
	if got := a.readU64(base + offVersion); got != arenaVersion {
		return nil, fmt.Errorf("alloc: unsupported arena version %d", got)
	}
	if got := a.readU64(base + offSize); got != size {
		return nil, fmt.Errorf("alloc: arena size %d, expected %d", got, size)
	}
	brk := a.readU64(base + offBrk)
	if brk < base+headerSize || brk > base+size {
		return nil, fmt.Errorf("alloc: brk %#x outside arena", brk)
	}
	return a, nil
}

func (a *Arena) readU64(addr uint64) uint64 {
	var b [8]byte
	a.mem.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (a *Arena) writeU64(addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	a.mem.Store(addr, b[:])
}

// Mem implements memory.Allocator.
func (a *Arena) Mem() memory.Memory { return a.mem }

// Base reports the arena's base address.
func (a *Arena) Base() uint64 { return a.base }

// HeapStart reports the first usable heap address (after the header); pools
// place their root table here via a fixed-size initial allocation.
func (a *Arena) HeapStart() uint64 { return roundUp(a.base+headerSize, heapAlign) }

// carve advances brk by n bytes, returning the old frontier.
func (a *Arena) carve(n uint64) (uint64, error) {
	brk := a.readU64(a.base + offBrk)
	if brk+n > a.base+a.size || brk+n < brk {
		return 0, fmt.Errorf("%w: need %d bytes, %d remain", ErrOutOfMemory, n, a.base+a.size-brk)
	}
	a.writeU64(a.base+offBrk, brk+n)
	return brk, nil
}

// Alloc returns a block of at least size bytes, 16-byte aligned. Small sizes
// come from per-class free lists, large sizes from a first-fit list of
// page-rounded blocks; both fall back to carving fresh space.
func (a *Arena) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, errors.New("alloc: zero-size allocation")
	}
	a.AllocCalls++
	if c := classFor(size); c >= 0 {
		headAddr := a.base + offClasses + uint64(c)*8
		if head := a.readU64(headAddr); head != 0 {
			next := a.readU64(head) // free block stores next pointer inline
			a.writeU64(headAddr, next)
			a.BytesAllocated += classSize(c)
			return head, nil
		}
		addr, err := a.carve(classSize(c))
		if err != nil {
			return 0, err
		}
		a.BytesAllocated += classSize(c)
		return addr, nil
	}

	// Large allocation: first fit over the large list.
	need := roundUp(size, pageRound)
	prevAddr := a.base + offLarge
	cur := a.readU64(prevAddr)
	for cur != 0 {
		curNext := a.readU64(cur)
		curSize := a.readU64(cur + 8)
		if curSize >= need {
			if rem := curSize - need; rem >= pageRound {
				// Split: the remainder stays on the list in place.
				remAddr := cur + need
				a.writeU64(remAddr, curNext)
				a.writeU64(remAddr+8, rem)
				a.writeU64(prevAddr, remAddr)
			} else {
				a.writeU64(prevAddr, curNext)
			}
			a.BytesAllocated += need
			return cur, nil
		}
		prevAddr = cur
		cur = curNext
	}
	addr, err := a.carve(need)
	if err != nil {
		return 0, err
	}
	a.BytesAllocated += need
	return addr, nil
}

// Free returns a block obtained from Alloc with the same size. Small blocks
// push onto their class list; large blocks onto the large list. Free never
// touches user data beyond the block's first 16 bytes.
func (a *Arena) Free(addr, size uint64) error {
	if addr < a.base+headerSize || addr >= a.base+a.size {
		return fmt.Errorf("alloc: free of %#x outside arena heap", addr)
	}
	a.FreeCalls++
	if c := classFor(size); c >= 0 {
		headAddr := a.base + offClasses + uint64(c)*8
		a.writeU64(addr, a.readU64(headAddr))
		a.writeU64(headAddr, addr)
		return nil
	}
	need := roundUp(size, pageRound)
	headAddr := a.base + offLarge
	a.writeU64(addr, a.readU64(headAddr))
	a.writeU64(addr+8, need)
	a.writeU64(headAddr, addr)
	return nil
}

// Brk reports the current bump frontier (diagnostics and capacity tests).
func (a *Arena) Brk() uint64 { return a.readU64(a.base + offBrk) }

// FreeListLens reports the length of each small-class free list plus the
// large list (diagnostics; also exercised by recovery tests to show that
// allocator state rolls back with the snapshot).
func (a *Arena) FreeListLens() ([numClasses]int, int) {
	var out [numClasses]int
	for c := 0; c < numClasses; c++ {
		n := 0
		for cur := a.readU64(a.base + offClasses + uint64(c)*8); cur != 0; cur = a.readU64(cur) {
			n++
		}
		out[c] = n
	}
	large := 0
	for cur := a.readU64(a.base + offLarge); cur != 0; cur = a.readU64(cur) {
		large++
	}
	return out, large
}
