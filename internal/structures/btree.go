package structures

import (
	"fmt"
	"sort"

	"pax/internal/memory"
)

// BTree is a B+tree over uint64 keys and values — the fixed-width ordered
// index shape most PM-structure papers build (FAST&FAIR, NV-Tree, …),
// written like every other structure here: against Memory/Allocator only,
// with no persistence knowledge.
//
// Node layout (one 256-byte allocation per node, 4 cache lines):
//
//	0:  isLeaf u32 | count u32
//	8:  next u64              (right sibling for leaf scans; 0 otherwise)
//	16: keys  [maxKeys]u64
//	16+8*maxKeys: slots [maxKeys+1]u64   (internal: children; leaf: values)
//
// Inserts use proactive splitting (full children are split on the way down,
// so parents always have room). Deletes remove from the leaf without
// rebalancing — the common PM-tree simplification: underfull leaves remain
// valid for search and scan, and space is reclaimed on reuse.
type BTree struct {
	io    memIO
	alloc memory.Allocator
	head  uint64 // header: root u64 | count u64
}

const (
	btMaxKeys    = 14
	btHeaderSize = 16
	btNodeSize   = 16 + 8*btMaxKeys + 8*(btMaxKeys+1) // 248, class 256

	btOffMeta  = 0
	btOffNext  = 8
	btOffKeys  = 16
	btOffSlots = 16 + 8*btMaxKeys
)

// NewBTree allocates an empty tree.
func NewBTree(alloc memory.Allocator) (*BTree, error) {
	head, err := alloc.Alloc(btHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("structures: btree header: %w", err)
	}
	t := &BTree{io: memIO{alloc.Mem()}, alloc: alloc, head: head}
	root, err := t.newNode(true)
	if err != nil {
		return nil, err
	}
	t.io.storeU64(head+0, root)
	t.io.storeU64(head+8, 0)
	return t, nil
}

// OpenBTree attaches to an existing tree at addr.
func OpenBTree(alloc memory.Allocator, addr uint64) *BTree {
	return &BTree{io: memIO{alloc.Mem()}, alloc: alloc, head: addr}
}

// Addr reports the header address for root storage.
func (t *BTree) Addr() uint64 { return t.head }

// WithMem rebinds the tree to another timed memory view.
func (t *BTree) WithMem(m memory.Memory) *BTree {
	return &BTree{io: memIO{m}, alloc: t.alloc, head: t.head}
}

// Len reports the number of entries.
func (t *BTree) Len() uint64 { return t.io.loadU64(t.head + 8) }

func (t *BTree) newNode(leaf bool) (uint64, error) {
	n, err := t.alloc.Alloc(btNodeSize)
	if err != nil {
		return 0, fmt.Errorf("structures: btree node: %w", err)
	}
	meta := uint32(0)
	if leaf {
		meta = 1
	}
	t.io.storeU32(n+btOffMeta, meta)
	t.io.storeU32(n+btOffMeta+4, 0)
	t.io.storeU64(n+btOffNext, 0)
	return n, nil
}

func (t *BTree) isLeaf(n uint64) bool { return t.io.loadU32(n+btOffMeta) == 1 }
func (t *BTree) count(n uint64) int   { return int(t.io.loadU32(n + btOffMeta + 4)) }
func (t *BTree) setCount(n uint64, c int) {
	t.io.storeU32(n+btOffMeta+4, uint32(c))
}

func (t *BTree) key(n uint64, i int) uint64  { return t.io.loadU64(n + btOffKeys + uint64(i)*8) }
func (t *BTree) slot(n uint64, i int) uint64 { return t.io.loadU64(n + btOffSlots + uint64(i)*8) }
func (t *BTree) setKey(n uint64, i int, v uint64) {
	t.io.storeU64(n+btOffKeys+uint64(i)*8, v)
}
func (t *BTree) setSlot(n uint64, i int, v uint64) {
	t.io.storeU64(n+btOffSlots+uint64(i)*8, v)
}

// search returns the index of the first key ≥ k within node n.
func (t *BTree) search(n uint64, k uint64) int {
	c := t.count(n)
	return sort.Search(c, func(i int) bool { return t.key(n, i) >= k })
}

// childIndex returns which child of internal node n covers key k.
func (t *BTree) childIndex(n uint64, k uint64) int {
	c := t.count(n)
	i := sort.Search(c, func(i int) bool { return k < t.key(n, i) })
	return i
}

// Get returns the value for key k.
func (t *BTree) Get(k uint64) (uint64, bool) {
	n := t.io.loadU64(t.head)
	for !t.isLeaf(n) {
		n = t.slot(n, t.childIndex(n, k))
	}
	i := t.search(n, k)
	if i < t.count(n) && t.key(n, i) == k {
		return t.slot(n, i), true
	}
	return 0, false
}

// splitChild splits the full child at index ci of internal (or new-root)
// parent p. For a leaf child the split key is duplicated into the new right
// leaf (B+tree); for an internal child the middle key moves up.
func (t *BTree) splitChild(p uint64, ci int) error {
	child := t.slot(p, ci)
	leaf := t.isLeaf(child)
	right, err := t.newNode(leaf)
	if err != nil {
		return err
	}
	var promote uint64
	if leaf {
		// Keys [mid..max) move right; promote right's first key.
		mid := btMaxKeys / 2
		rc := 0
		for i := mid; i < btMaxKeys; i++ {
			t.setKey(right, rc, t.key(child, i))
			t.setSlot(right, rc, t.slot(child, i))
			rc++
		}
		t.setCount(right, rc)
		t.setCount(child, mid)
		promote = t.key(right, 0)
		// Link siblings.
		t.io.storeU64(right+btOffNext, t.io.loadU64(child+btOffNext))
		t.io.storeU64(child+btOffNext, right)
	} else {
		// Middle key moves up; keys right of it (and their children) move
		// right.
		mid := btMaxKeys / 2
		promote = t.key(child, mid)
		rc := 0
		for i := mid + 1; i < btMaxKeys; i++ {
			t.setKey(right, rc, t.key(child, i))
			t.setSlot(right, rc, t.slot(child, i))
			rc++
		}
		t.setSlot(right, rc, t.slot(child, btMaxKeys))
		t.setCount(right, rc)
		t.setCount(child, mid)
	}

	// Shift parent entries right of ci and link the new child.
	pc := t.count(p)
	for i := pc; i > ci; i-- {
		t.setKey(p, i, t.key(p, i-1))
		t.setSlot(p, i+1, t.slot(p, i))
	}
	t.setKey(p, ci, promote)
	t.setSlot(p, ci+1, right)
	t.setCount(p, pc+1)
	return nil
}

// Put inserts or replaces key k.
func (t *BTree) Put(k, v uint64) error {
	root := t.io.loadU64(t.head)
	if t.count(root) == btMaxKeys {
		newRoot, err := t.newNode(false)
		if err != nil {
			return err
		}
		t.setSlot(newRoot, 0, root)
		if err := t.splitChild(newRoot, 0); err != nil {
			return err
		}
		t.io.storeU64(t.head, newRoot)
		root = newRoot
	}
	n := root
	for !t.isLeaf(n) {
		ci := t.childIndex(n, k)
		child := t.slot(n, ci)
		if t.count(child) == btMaxKeys {
			if err := t.splitChild(n, ci); err != nil {
				return err
			}
			ci = t.childIndex(n, k)
			child = t.slot(n, ci)
		}
		n = child
	}
	i := t.search(n, k)
	c := t.count(n)
	if i < c && t.key(n, i) == k {
		t.setSlot(n, i, v) // replace
		return nil
	}
	for j := c; j > i; j-- {
		t.setKey(n, j, t.key(n, j-1))
		t.setSlot(n, j, t.slot(n, j-1))
	}
	t.setKey(n, i, k)
	t.setSlot(n, i, v)
	t.setCount(n, c+1)
	t.io.storeU64(t.head+8, t.Len()+1)
	return nil
}

// Delete removes key k from its leaf (no rebalancing), reporting presence.
func (t *BTree) Delete(k uint64) bool {
	n := t.io.loadU64(t.head)
	for !t.isLeaf(n) {
		n = t.slot(n, t.childIndex(n, k))
	}
	i := t.search(n, k)
	c := t.count(n)
	if i >= c || t.key(n, i) != k {
		return false
	}
	for j := i; j < c-1; j++ {
		t.setKey(n, j, t.key(n, j+1))
		t.setSlot(n, j, t.slot(n, j+1))
	}
	t.setCount(n, c-1)
	t.io.storeU64(t.head+8, t.Len()-1)
	return true
}

// Scan visits entries with key ≥ from in ascending order until fn returns
// false, walking the leaf chain.
func (t *BTree) Scan(from uint64, fn func(k, v uint64) bool) {
	n := t.io.loadU64(t.head)
	for !t.isLeaf(n) {
		n = t.slot(n, t.childIndex(n, from))
	}
	for n != 0 {
		c := t.count(n)
		for i := t.search(n, from); i < c; i++ {
			if !fn(t.key(n, i), t.slot(n, i)) {
				return
			}
		}
		n = t.io.loadU64(n + btOffNext)
		from = 0 // subsequent leaves are visited fully
	}
}

// Min returns the smallest key and its value.
func (t *BTree) Min() (k, v uint64, ok bool) {
	n := t.io.loadU64(t.head)
	for !t.isLeaf(n) {
		n = t.slot(n, 0)
	}
	// Skip underfull-empty leaves left behind by deletes.
	for n != 0 && t.count(n) == 0 {
		n = t.io.loadU64(n + btOffNext)
	}
	if n == 0 {
		return 0, 0, false
	}
	return t.key(n, 0), t.slot(n, 0), true
}

// CheckInvariants walks the whole tree verifying ordering and structure;
// property tests call it after mutation bursts.
func (t *BTree) CheckInvariants() error {
	root := t.io.loadU64(t.head)
	var walk func(n uint64, lo, hi uint64, hasLo, hasHi bool) (uint64, error)
	walk = func(n uint64, lo, hi uint64, hasLo, hasHi bool) (uint64, error) {
		c := t.count(n)
		if c > btMaxKeys {
			return 0, fmt.Errorf("btree: node %#x overflow count %d", n, c)
		}
		var total uint64
		prevSet := false
		var prev uint64
		for i := 0; i < c; i++ {
			k := t.key(n, i)
			if prevSet && k <= prev {
				return 0, fmt.Errorf("btree: node %#x keys out of order at %d", n, i)
			}
			if hasLo && k < lo {
				return 0, fmt.Errorf("btree: node %#x key %d below bound %d", n, k, lo)
			}
			if hasHi && k >= hi {
				return 0, fmt.Errorf("btree: node %#x key %d above bound %d", n, k, hi)
			}
			prev, prevSet = k, true
		}
		if t.isLeaf(n) {
			return uint64(c), nil
		}
		for i := 0; i <= c; i++ {
			clo, chi := lo, hi
			cHasLo, cHasHi := hasLo, hasHi
			if i > 0 {
				clo, cHasLo = t.key(n, i-1), true
			}
			if i < c {
				chi, cHasHi = t.key(n, i), true
			}
			sub, err := walk(t.slot(n, i), clo, chi, cHasLo, cHasHi)
			if err != nil {
				return 0, err
			}
			total += sub
		}
		return total, nil
	}
	total, err := walk(root, 0, 0, false, false)
	if err != nil {
		return err
	}
	if total != t.Len() {
		return fmt.Errorf("btree: header count %d but tree holds %d", t.Len(), total)
	}
	return nil
}
