package structures

import (
	"fmt"

	"pax/internal/memory"
)

// Vector is a growable array of fixed-width elements (std::vector).
//
// Layout:
//
//	header (32 B): data u64 | len u64 | cap u64 | elemSize u64
//
// Growth doubles capacity, copying through Memory.
type Vector struct {
	io    memIO
	alloc memory.Allocator
	head  uint64
}

const vecHeaderSize = 32

// NewVector allocates an empty vector of elemSize-byte elements.
func NewVector(alloc memory.Allocator, elemSize uint64, initialCap uint64) (*Vector, error) {
	if elemSize == 0 {
		return nil, fmt.Errorf("structures: vector element size must be positive")
	}
	if initialCap == 0 {
		initialCap = 8
	}
	head, err := alloc.Alloc(vecHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("structures: vector header: %w", err)
	}
	data, err := alloc.Alloc(initialCap * elemSize)
	if err != nil {
		return nil, fmt.Errorf("structures: vector data: %w", err)
	}
	v := &Vector{io: memIO{alloc.Mem()}, alloc: alloc, head: head}
	v.io.storeU64(head+0, data)
	v.io.storeU64(head+8, 0)
	v.io.storeU64(head+16, initialCap)
	v.io.storeU64(head+24, elemSize)
	return v, nil
}

// OpenVector attaches to an existing vector at addr.
func OpenVector(alloc memory.Allocator, addr uint64) *Vector {
	return &Vector{io: memIO{alloc.Mem()}, alloc: alloc, head: addr}
}

// Addr reports the header address for root storage.
func (v *Vector) Addr() uint64 { return v.head }

// WithMem rebinds the vector to another timed memory view.
func (v *Vector) WithMem(m memory.Memory) *Vector {
	return &Vector{io: memIO{m}, alloc: v.alloc, head: v.head}
}

// Len reports the element count.
func (v *Vector) Len() uint64 { return v.io.loadU64(v.head + 8) }

// Cap reports the capacity in elements.
func (v *Vector) Cap() uint64 { return v.io.loadU64(v.head + 16) }

// ElemSize reports the element width in bytes.
func (v *Vector) ElemSize() uint64 { return v.io.loadU64(v.head + 24) }

func (v *Vector) elemAddr(i uint64) uint64 {
	if i >= v.Len() {
		panic(fmt.Sprintf("structures: vector index %d out of range %d", i, v.Len()))
	}
	return v.io.loadU64(v.head) + i*v.ElemSize()
}

// Get copies element i into buf (which must be ElemSize bytes).
func (v *Vector) Get(i uint64, buf []byte) {
	if uint64(len(buf)) != v.ElemSize() {
		panic("structures: vector Get buffer size mismatch")
	}
	v.io.mem.Load(v.elemAddr(i), buf)
}

// Set overwrites element i.
func (v *Vector) Set(i uint64, elem []byte) {
	if uint64(len(elem)) != v.ElemSize() {
		panic("structures: vector Set element size mismatch")
	}
	v.io.storeBytes(v.elemAddr(i), elem)
}

// Push appends an element, growing if needed.
func (v *Vector) Push(elem []byte) error {
	es := v.ElemSize()
	if uint64(len(elem)) != es {
		panic("structures: vector Push element size mismatch")
	}
	length, capacity := v.Len(), v.Cap()
	if length == capacity {
		if err := v.grow(capacity * 2); err != nil {
			return err
		}
	}
	v.io.storeBytes(v.io.loadU64(v.head)+length*es, elem)
	v.io.storeU64(v.head+8, length+1)
	return nil
}

// Pop removes and returns the last element.
func (v *Vector) Pop(buf []byte) bool {
	length := v.Len()
	if length == 0 {
		return false
	}
	v.Get(length-1, buf)
	v.io.storeU64(v.head+8, length-1)
	return true
}

func (v *Vector) grow(newCap uint64) error {
	es := v.ElemSize()
	oldData := v.io.loadU64(v.head)
	oldCap := v.Cap()
	newData, err := v.alloc.Alloc(newCap * es)
	if err != nil {
		return fmt.Errorf("structures: vector grow: %w", err)
	}
	// Copy in line-friendly chunks.
	buf := make([]byte, 1024)
	total := v.Len() * es
	for off := uint64(0); off < total; off += uint64(len(buf)) {
		n := uint64(len(buf))
		if total-off < n {
			n = total - off
		}
		v.io.mem.Load(oldData+off, buf[:n])
		v.io.mem.Store(newData+off, buf[:n])
	}
	v.io.storeU64(v.head+0, newData)
	v.io.storeU64(v.head+16, newCap)
	return v.alloc.Free(oldData, oldCap*es)
}
