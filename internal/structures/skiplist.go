package structures

import (
	"bytes"
	"fmt"

	"pax/internal/memory"
)

// SkipList is an ordered map over byte keys — the repository's stand-in for
// std::map-style structures. Node levels are drawn deterministically from
// the key hash, so the structure's memory layout is identical across runs
// (determinism is a simulator-wide requirement).
//
// Layout:
//
//	header (16 B): headNode u64 | count u64
//	node: klen u32 | vlen u32 | level u32 | pad u32 | forward[level] u64 | key | value
//
// The head node has maxLevel forward pointers and no key.
type SkipList struct {
	io    memIO
	alloc memory.Allocator
	head  uint64 // header address
}

const (
	slMaxLevel   = 16
	slHeaderSize = 16
	slNodeFixed  = 16 // klen, vlen, level, pad
)

func slNodeSize(level int, klen, vlen int) uint64 {
	return slNodeFixed + uint64(level)*8 + uint64(klen) + uint64(vlen)
}

// levelFor draws a deterministic level from the key: count trailing ones of
// the hash (geometric with p=1/2), clamped to [1, slMaxLevel].
func levelFor(key []byte) int {
	h := fnv1a(key)
	lvl := 1
	for h&1 == 1 && lvl < slMaxLevel {
		lvl++
		h >>= 1
	}
	return lvl
}

// NewSkipList allocates an empty list.
func NewSkipList(alloc memory.Allocator) (*SkipList, error) {
	head, err := alloc.Alloc(slHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("structures: skiplist header: %w", err)
	}
	headNode, err := alloc.Alloc(slNodeSize(slMaxLevel, 0, 0))
	if err != nil {
		return nil, fmt.Errorf("structures: skiplist head node: %w", err)
	}
	s := &SkipList{io: memIO{alloc.Mem()}, alloc: alloc, head: head}
	s.io.storeU32(headNode+0, 0)
	s.io.storeU32(headNode+4, 0)
	s.io.storeU32(headNode+8, slMaxLevel)
	s.io.storeU32(headNode+12, 0)
	for i := 0; i < slMaxLevel; i++ {
		s.io.storeU64(headNode+slNodeFixed+uint64(i)*8, 0)
	}
	s.io.storeU64(head+0, headNode)
	s.io.storeU64(head+8, 0)
	return s, nil
}

// OpenSkipList attaches to an existing list at addr.
func OpenSkipList(alloc memory.Allocator, addr uint64) *SkipList {
	return &SkipList{io: memIO{alloc.Mem()}, alloc: alloc, head: addr}
}

// Addr reports the header address for root storage.
func (s *SkipList) Addr() uint64 { return s.head }

// WithMem rebinds the list to another timed memory view.
func (s *SkipList) WithMem(m memory.Memory) *SkipList {
	return &SkipList{io: memIO{m}, alloc: s.alloc, head: s.head}
}

// Len reports the number of entries.
func (s *SkipList) Len() uint64 { return s.io.loadU64(s.head + 8) }

func (s *SkipList) nodeKey(node uint64) []byte {
	klen := s.io.loadU32(node + 0)
	level := s.io.loadU32(node + 8)
	return s.io.loadBytes(node+slNodeFixed+uint64(level)*8, int(klen))
}

func (s *SkipList) nodeValue(node uint64) []byte {
	klen := s.io.loadU32(node + 0)
	vlen := s.io.loadU32(node + 4)
	level := s.io.loadU32(node + 8)
	return s.io.loadBytes(node+slNodeFixed+uint64(level)*8+uint64(klen), int(vlen))
}

func (s *SkipList) forward(node uint64, lvl int) uint64 {
	return s.io.loadU64(node + slNodeFixed + uint64(lvl)*8)
}

func (s *SkipList) setForward(node uint64, lvl int, to uint64) {
	s.io.storeU64(node+slNodeFixed+uint64(lvl)*8, to)
}

// findPredecessors fills update[i] with the rightmost node at level i whose
// key is < key, and returns the candidate node at level 0 (which may equal
// key or be its successor).
func (s *SkipList) findPredecessors(key []byte, update *[slMaxLevel]uint64) uint64 {
	cur := s.io.loadU64(s.head)
	for lvl := slMaxLevel - 1; lvl >= 0; lvl-- {
		for {
			next := s.forward(cur, lvl)
			if next == 0 || bytes.Compare(s.nodeKey(next), key) >= 0 {
				break
			}
			cur = next
		}
		update[lvl] = cur
	}
	return s.forward(cur, 0)
}

// Get returns the value for key, or ok=false.
func (s *SkipList) Get(key []byte) ([]byte, bool) {
	var update [slMaxLevel]uint64
	node := s.findPredecessors(key, &update)
	if node != 0 && bytes.Equal(s.nodeKey(node), key) {
		return s.nodeValue(node), true
	}
	return nil, false
}

// Put inserts or replaces key's value.
func (s *SkipList) Put(key, value []byte) error {
	var update [slMaxLevel]uint64
	node := s.findPredecessors(key, &update)
	if node != 0 && bytes.Equal(s.nodeKey(node), key) {
		vlen := s.io.loadU32(node + 4)
		if int(vlen) == len(value) {
			klen := s.io.loadU32(node + 0)
			level := s.io.loadU32(node + 8)
			s.io.storeBytes(node+slNodeFixed+uint64(level)*8+uint64(klen), value)
			return nil
		}
		if err := s.unlink(node, &update); err != nil {
			return err
		}
	}

	level := levelFor(key)
	addr, err := s.alloc.Alloc(slNodeSize(level, len(key), len(value)))
	if err != nil {
		return fmt.Errorf("structures: skiplist node: %w", err)
	}
	s.io.storeU32(addr+0, uint32(len(key)))
	s.io.storeU32(addr+4, uint32(len(value)))
	s.io.storeU32(addr+8, uint32(level))
	s.io.storeU32(addr+12, 0)
	s.io.storeBytes(addr+slNodeFixed+uint64(level)*8, key)
	s.io.storeBytes(addr+slNodeFixed+uint64(level)*8+uint64(len(key)), value)
	for i := 0; i < level; i++ {
		s.setForward(addr, i, s.forward(update[i], i))
		s.setForward(update[i], i, addr)
	}
	s.io.storeU64(s.head+8, s.Len()+1)
	return nil
}

// unlink removes node given its predecessor set and frees it.
func (s *SkipList) unlink(node uint64, update *[slMaxLevel]uint64) error {
	level := int(s.io.loadU32(node + 8))
	for i := 0; i < level; i++ {
		if s.forward(update[i], i) == node {
			s.setForward(update[i], i, s.forward(node, i))
		}
	}
	klen := s.io.loadU32(node + 0)
	vlen := s.io.loadU32(node + 4)
	s.io.storeU64(s.head+8, s.Len()-1)
	return s.alloc.Free(node, slNodeSize(level, int(klen), int(vlen)))
}

// Delete removes key, reporting whether it was present.
func (s *SkipList) Delete(key []byte) (bool, error) {
	var update [slMaxLevel]uint64
	node := s.findPredecessors(key, &update)
	if node == 0 || !bytes.Equal(s.nodeKey(node), key) {
		return false, nil
	}
	return true, s.unlink(node, &update)
}

// Min returns the smallest key and its value, or ok=false when empty.
func (s *SkipList) Min() (key, value []byte, ok bool) {
	first := s.forward(s.io.loadU64(s.head), 0)
	if first == 0 {
		return nil, nil, false
	}
	return s.nodeKey(first), s.nodeValue(first), true
}

// Scan visits entries with key ≥ from in ascending order until fn returns
// false. A nil from starts at the smallest key.
func (s *SkipList) Scan(from []byte, fn func(key, value []byte) bool) {
	var node uint64
	if from == nil {
		node = s.forward(s.io.loadU64(s.head), 0)
	} else {
		var update [slMaxLevel]uint64
		node = s.findPredecessors(from, &update)
	}
	for node != 0 {
		if !fn(s.nodeKey(node), s.nodeValue(node)) {
			return
		}
		node = s.forward(node, 0)
	}
}
