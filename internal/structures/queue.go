package structures

import (
	"fmt"

	"pax/internal/memory"
)

// Queue is a FIFO of variable-length byte records (a persistent message
// queue in the examples).
//
// Layout:
//
//	header (24 B): headNode u64 | tailNode u64 | count u64
//	node: next u64 | size u32 | pad u32 | payload
type Queue struct {
	io    memIO
	alloc memory.Allocator
	head  uint64
}

const (
	qHeaderSize   = 24
	qNodeOverhead = 16
)

// NewQueue allocates an empty queue.
func NewQueue(alloc memory.Allocator) (*Queue, error) {
	head, err := alloc.Alloc(qHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("structures: queue header: %w", err)
	}
	q := &Queue{io: memIO{alloc.Mem()}, alloc: alloc, head: head}
	q.io.storeU64(head+0, 0)
	q.io.storeU64(head+8, 0)
	q.io.storeU64(head+16, 0)
	return q, nil
}

// OpenQueue attaches to an existing queue at addr.
func OpenQueue(alloc memory.Allocator, addr uint64) *Queue {
	return &Queue{io: memIO{alloc.Mem()}, alloc: alloc, head: addr}
}

// Addr reports the header address for root storage.
func (q *Queue) Addr() uint64 { return q.head }

// WithMem rebinds the queue to another timed memory view.
func (q *Queue) WithMem(m memory.Memory) *Queue {
	return &Queue{io: memIO{m}, alloc: q.alloc, head: q.head}
}

// Len reports the number of queued records.
func (q *Queue) Len() uint64 { return q.io.loadU64(q.head + 16) }

// Push appends a record at the tail.
func (q *Queue) Push(payload []byte) error {
	node, err := q.alloc.Alloc(qNodeOverhead + uint64(len(payload)))
	if err != nil {
		return fmt.Errorf("structures: queue node: %w", err)
	}
	q.io.storeU64(node+0, 0)
	q.io.storeU32(node+8, uint32(len(payload)))
	q.io.storeU32(node+12, 0)
	q.io.storeBytes(node+qNodeOverhead, payload)

	tail := q.io.loadU64(q.head + 8)
	if tail == 0 {
		q.io.storeU64(q.head+0, node)
	} else {
		q.io.storeU64(tail, node)
	}
	q.io.storeU64(q.head+8, node)
	q.io.storeU64(q.head+16, q.Len()+1)
	return nil
}

// Pop removes and returns the head record, or ok=false when empty.
func (q *Queue) Pop() ([]byte, bool, error) {
	node := q.io.loadU64(q.head)
	if node == 0 {
		return nil, false, nil
	}
	next := q.io.loadU64(node)
	size := q.io.loadU32(node + 8)
	payload := q.io.loadBytes(node+qNodeOverhead, int(size))

	q.io.storeU64(q.head+0, next)
	if next == 0 {
		q.io.storeU64(q.head+8, 0)
	}
	q.io.storeU64(q.head+16, q.Len()-1)
	return payload, true, q.alloc.Free(node, qNodeOverhead+uint64(size))
}

// Peek returns the head record without removing it.
func (q *Queue) Peek() ([]byte, bool) {
	node := q.io.loadU64(q.head)
	if node == 0 {
		return nil, false
	}
	size := q.io.loadU32(node + 8)
	return q.io.loadBytes(node+qNodeOverhead, int(size)), true
}

// ForEach visits records head to tail until fn returns false.
func (q *Queue) ForEach(fn func(payload []byte) bool) {
	node := q.io.loadU64(q.head)
	for node != 0 {
		size := q.io.loadU32(node + 8)
		if !fn(q.io.loadBytes(node+qNodeOverhead, int(size))) {
			return
		}
		node = q.io.loadU64(node)
	}
}
