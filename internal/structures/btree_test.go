package structures

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newTestBTree(t *testing.T) *BTree {
	t.Helper()
	bt, err := NewBTree(flatAlloc(1 << 24))
	if err != nil {
		t.Fatal(err)
	}
	return bt
}

func TestBTreeBasics(t *testing.T) {
	bt := newTestBTree(t)
	if _, ok := bt.Get(1); ok {
		t.Fatal("empty tree hit")
	}
	if _, _, ok := bt.Min(); ok {
		t.Fatal("empty tree has min")
	}
	bt.Put(10, 100)
	bt.Put(5, 50)
	bt.Put(20, 200)
	if v, ok := bt.Get(5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d %v", v, ok)
	}
	if bt.Len() != 3 {
		t.Fatalf("len = %d", bt.Len())
	}
	bt.Put(5, 55) // replace
	if v, _ := bt.Get(5); v != 55 {
		t.Fatalf("replace: %d", v)
	}
	if bt.Len() != 3 {
		t.Fatal("replace changed len")
	}
	k, v, ok := bt.Min()
	if !ok || k != 5 || v != 55 {
		t.Fatalf("min = %d/%d", k, v)
	}
	if !bt.Delete(10) {
		t.Fatal("delete missed")
	}
	if bt.Delete(10) {
		t.Fatal("double delete")
	}
	if _, ok := bt.Get(10); ok || bt.Len() != 2 {
		t.Fatal("delete left entry")
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeMultiLevelSplits(t *testing.T) {
	bt := newTestBTree(t)
	const n = 20000 // forces ≥3 levels at 14 keys/node
	for i := 0; i < n; i++ {
		if err := bt.Put(uint64(i*7%n), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Len() != n {
		t.Fatalf("len = %d", bt.Len())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i += 131 {
		if _, ok := bt.Get(uint64(i)); !ok {
			t.Fatalf("key %d missing", i)
		}
	}
	// Full scan must be sorted and complete.
	var prev uint64
	count := 0
	bt.Scan(0, func(k, v uint64) bool {
		if count > 0 && k <= prev {
			t.Fatalf("scan out of order: %d after %d", k, prev)
		}
		prev = k
		count++
		return true
	})
	if count != n {
		t.Fatalf("scan visited %d", count)
	}
}

func TestBTreeScanFrom(t *testing.T) {
	bt := newTestBTree(t)
	for i := 0; i < 1000; i += 2 { // even keys only
		bt.Put(uint64(i), uint64(i))
	}
	var got []uint64
	bt.Scan(501, func(k, v uint64) bool { // from an absent odd key
		got = append(got, k)
		return len(got) < 5
	})
	want := []uint64{502, 504, 506, 508, 510}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan from 501 = %v", got)
		}
	}
	// Early stop works.
	n := 0
	bt.Scan(0, func(k, v uint64) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestBTreeDeleteHeavy(t *testing.T) {
	bt := newTestBTree(t)
	const n = 5000
	for i := 0; i < n; i++ {
		bt.Put(uint64(i), uint64(i))
	}
	for i := 0; i < n; i += 2 {
		if !bt.Delete(uint64(i)) {
			t.Fatalf("delete %d missed", i)
		}
	}
	if bt.Len() != n/2 {
		t.Fatalf("len = %d", bt.Len())
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Scans skip deleted keys; min is the smallest survivor.
	if k, _, ok := bt.Min(); !ok || k != 1 {
		t.Fatalf("min after deletes = %d %v", k, ok)
	}
	count := 0
	bt.Scan(0, func(k, v uint64) bool {
		if k%2 == 0 {
			t.Fatalf("deleted key %d in scan", k)
		}
		count++
		return true
	})
	if count != n/2 {
		t.Fatalf("scan visited %d", count)
	}
}

func TestBTreeMatchesModel(t *testing.T) {
	bt := newTestBTree(t)
	model := map[uint64]uint64{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 30000; i++ {
		k := uint64(rng.Intn(2000))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := rng.Uint64()
			bt.Put(k, v)
			model[k] = v
		case 6, 7:
			got, ok := bt.Get(k)
			want, wok := model[k]
			if ok != wok || (ok && got != want) {
				t.Fatalf("op %d: Get(%d) mismatch", i, k)
			}
		default:
			present := bt.Delete(k)
			_, wok := model[k]
			if present != wok {
				t.Fatalf("op %d: Delete(%d) = %v want %v", i, k, present, wok)
			}
			delete(model, k)
		}
	}
	if bt.Len() != uint64(len(model)) {
		t.Fatalf("len %d vs model %d", bt.Len(), len(model))
	}
	if err := bt.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Sorted full comparison.
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	i := 0
	bt.Scan(0, func(k, v uint64) bool {
		if i >= len(keys) || k != keys[i] || v != model[k] {
			t.Fatalf("scan position %d: got %d", i, k)
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("scan visited %d of %d", i, len(keys))
	}
}

func TestBTreeOpenSharesState(t *testing.T) {
	al := flatAlloc(1 << 20)
	bt, _ := NewBTree(al)
	bt.Put(42, 4242)
	bt2 := OpenBTree(al, bt.Addr())
	if v, ok := bt2.Get(42); !ok || v != 4242 {
		t.Fatal("reopened tree lost entry")
	}
}

// Property: random insert sequences always leave a structurally valid,
// fully ordered tree.
func TestBTreeInvariantProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		bt, err := NewBTree(flatAlloc(1 << 22))
		if err != nil {
			return false
		}
		for _, k := range keys {
			if bt.Put(uint64(k), uint64(k)+1) != nil {
				return false
			}
		}
		return bt.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
