package structures

import (
	"bytes"
	"fmt"

	"pax/internal/memory"
)

// HashMap is a chained hash table over arbitrary byte keys and values — the
// stand-in for std::unordered_map / Rust's HashMap in the paper's examples.
//
// Layout:
//
//	header (32 B):  buckets u64 | nbuckets u64 | count u64 | reserved u64
//	bucket array:   nbuckets × u64 chain heads
//	node:           next u64 | hash u64 | klen u32 | vlen u32 | key | value
//
// The table doubles when the load factor reaches 1.0.
type HashMap struct {
	io    memIO
	alloc memory.Allocator
	head  uint64 // header address
}

const (
	hmHeaderSize   = 32
	hmNodeOverhead = 24
	hmMinBuckets   = 8
)

// NewHashMap allocates an empty map with the given initial bucket count
// (rounded up to a power of two, minimum 8).
func NewHashMap(alloc memory.Allocator, initialBuckets int) (*HashMap, error) {
	n := uint64(hmMinBuckets)
	for n < uint64(initialBuckets) {
		n <<= 1
	}
	head, err := alloc.Alloc(hmHeaderSize)
	if err != nil {
		return nil, fmt.Errorf("structures: hashmap header: %w", err)
	}
	buckets, err := alloc.Alloc(n * 8)
	if err != nil {
		return nil, fmt.Errorf("structures: hashmap buckets: %w", err)
	}
	h := &HashMap{io: memIO{alloc.Mem()}, alloc: alloc, head: head}
	zero := make([]byte, n*8)
	h.io.storeBytes(buckets, zero)
	h.io.storeU64(head+0, buckets)
	h.io.storeU64(head+8, n)
	h.io.storeU64(head+16, 0)
	h.io.storeU64(head+24, 0)
	return h, nil
}

// OpenHashMap attaches to an existing map at addr (e.g. a recovered root).
func OpenHashMap(alloc memory.Allocator, addr uint64) *HashMap {
	return &HashMap{io: memIO{alloc.Mem()}, alloc: alloc, head: addr}
}

// Addr reports the header address, suitable for storing in a pool root slot.
func (h *HashMap) Addr() uint64 { return h.head }

// WithMem returns a view of the same map whose accesses go through m —
// used to drive one shared structure from several simulated hardware
// threads, each with its own timed memory view.
func (h *HashMap) WithMem(m memory.Memory) *HashMap {
	return &HashMap{io: memIO{m}, alloc: h.alloc, head: h.head}
}

// Len reports the number of entries.
func (h *HashMap) Len() uint64 { return h.io.loadU64(h.head + 16) }

func (h *HashMap) geometry() (buckets, nbuckets uint64) {
	return h.io.loadU64(h.head + 0), h.io.loadU64(h.head + 8)
}

// findNode walks the chain for key, returning the node address and the
// address of the pointer that references it (for unlinking).
func (h *HashMap) findNode(key []byte) (node, parentPtr uint64) {
	hash := fnv1a(key)
	buckets, nbuckets := h.geometry()
	slot := buckets + (hash&(nbuckets-1))*8
	ptr := slot
	for {
		node := h.io.loadU64(ptr)
		if node == 0 {
			return 0, 0
		}
		if h.io.loadU64(node+8) == hash {
			klen := h.io.loadU32(node + 16)
			if int(klen) == len(key) && bytes.Equal(h.io.loadBytes(node+hmNodeOverhead, int(klen)), key) {
				return node, ptr
			}
		}
		ptr = node // next pointer is the node's first field
	}
}

// Get returns the value for key, or ok=false.
func (h *HashMap) Get(key []byte) ([]byte, bool) {
	node, _ := h.findNode(key)
	if node == 0 {
		return nil, false
	}
	klen := h.io.loadU32(node + 16)
	vlen := h.io.loadU32(node + 20)
	return h.io.loadBytes(node+hmNodeOverhead+uint64(klen), int(vlen)), true
}

// Put inserts or replaces key's value. Same-length updates are done in
// place; others reallocate the node.
func (h *HashMap) Put(key, value []byte) error {
	if node, parentPtr := h.findNode(key); node != 0 {
		klen := h.io.loadU32(node + 16)
		vlen := h.io.loadU32(node + 20)
		if int(vlen) == len(value) {
			h.io.storeBytes(node+hmNodeOverhead+uint64(klen), value)
			return nil
		}
		// Replace the node: unlink, free, fall through to insert.
		h.io.storeU64(parentPtr, h.io.loadU64(node))
		if err := h.alloc.Free(node, hmNodeOverhead+uint64(klen)+uint64(vlen)); err != nil {
			return err
		}
		h.io.storeU64(h.head+16, h.Len()-1)
	}

	hash := fnv1a(key)
	size := hmNodeOverhead + uint64(len(key)) + uint64(len(value))
	node, err := h.alloc.Alloc(size)
	if err != nil {
		return fmt.Errorf("structures: hashmap node: %w", err)
	}
	buckets, nbuckets := h.geometry()
	slot := buckets + (hash&(nbuckets-1))*8
	h.io.storeU64(node+0, h.io.loadU64(slot))
	h.io.storeU64(node+8, hash)
	h.io.storeU32(node+16, uint32(len(key)))
	h.io.storeU32(node+20, uint32(len(value)))
	h.io.storeBytes(node+hmNodeOverhead, key)
	h.io.storeBytes(node+hmNodeOverhead+uint64(len(key)), value)
	h.io.storeU64(slot, node)

	count := h.Len() + 1
	h.io.storeU64(h.head+16, count)
	if count > nbuckets {
		return h.grow()
	}
	return nil
}

// Delete removes key, reporting whether it was present.
func (h *HashMap) Delete(key []byte) (bool, error) {
	node, parentPtr := h.findNode(key)
	if node == 0 {
		return false, nil
	}
	h.io.storeU64(parentPtr, h.io.loadU64(node))
	klen := h.io.loadU32(node + 16)
	vlen := h.io.loadU32(node + 20)
	if err := h.alloc.Free(node, hmNodeOverhead+uint64(klen)+uint64(vlen)); err != nil {
		return true, err
	}
	h.io.storeU64(h.head+16, h.Len()-1)
	return true, nil
}

// grow doubles the bucket array and rehashes every chain.
func (h *HashMap) grow() error {
	oldBuckets, oldN := h.geometry()
	newN := oldN * 2
	newBuckets, err := h.alloc.Alloc(newN * 8)
	if err != nil {
		return fmt.Errorf("structures: hashmap grow: %w", err)
	}
	zero := make([]byte, newN*8)
	h.io.storeBytes(newBuckets, zero)
	for i := uint64(0); i < oldN; i++ {
		node := h.io.loadU64(oldBuckets + i*8)
		for node != 0 {
			next := h.io.loadU64(node)
			hash := h.io.loadU64(node + 8)
			slot := newBuckets + (hash&(newN-1))*8
			h.io.storeU64(node, h.io.loadU64(slot))
			h.io.storeU64(slot, node)
			node = next
		}
	}
	h.io.storeU64(h.head+0, newBuckets)
	h.io.storeU64(h.head+8, newN)
	return h.alloc.Free(oldBuckets, oldN*8)
}

// ForEach visits every entry in unspecified order. The callback must not
// mutate the map.
func (h *HashMap) ForEach(fn func(key, value []byte) bool) {
	buckets, nbuckets := h.geometry()
	for i := uint64(0); i < nbuckets; i++ {
		node := h.io.loadU64(buckets + i*8)
		for node != 0 {
			klen := h.io.loadU32(node + 16)
			vlen := h.io.loadU32(node + 20)
			key := h.io.loadBytes(node+hmNodeOverhead, int(klen))
			val := h.io.loadBytes(node+hmNodeOverhead+uint64(klen), int(vlen))
			if !fn(key, val) {
				return
			}
			node = h.io.loadU64(node)
		}
	}
}
