package structures

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"pax/internal/memory"
)

func flatAlloc(size int) memory.Allocator {
	mem := memory.NewFlat(size)
	return memory.NewBump(mem, 0, uint64(size))
}

func key(i int) []byte   { return []byte(fmt.Sprintf("key-%06d", i)) }
func value(i int) []byte { return []byte(fmt.Sprintf("value-%08d", i)) }

func TestHashMapBasics(t *testing.T) {
	h, err := NewHashMap(flatAlloc(1<<22), 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Get([]byte("missing")); ok {
		t.Fatal("empty map hit")
	}
	if err := h.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, ok := h.Get([]byte("k"))
	if !ok || string(got) != "v" {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	if h.Len() != 1 {
		t.Fatalf("len = %d", h.Len())
	}
	// Same-length overwrite.
	h.Put([]byte("k"), []byte("w"))
	got, _ = h.Get([]byte("k"))
	if string(got) != "w" || h.Len() != 1 {
		t.Fatalf("overwrite: %q len=%d", got, h.Len())
	}
	// Different-length overwrite.
	h.Put([]byte("k"), []byte("longer value"))
	got, _ = h.Get([]byte("k"))
	if string(got) != "longer value" || h.Len() != 1 {
		t.Fatalf("realloc overwrite: %q len=%d", got, h.Len())
	}
	// Delete.
	present, err := h.Delete([]byte("k"))
	if err != nil || !present {
		t.Fatalf("delete: %v %v", present, err)
	}
	if _, ok := h.Get([]byte("k")); ok || h.Len() != 0 {
		t.Fatal("delete left entry")
	}
	if present, _ := h.Delete([]byte("k")); present {
		t.Fatal("double delete reported present")
	}
}

func TestHashMapGrowth(t *testing.T) {
	h, _ := NewHashMap(flatAlloc(1<<24), 8)
	const n = 5000
	for i := 0; i < n; i++ {
		if err := h.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != n {
		t.Fatalf("len = %d", h.Len())
	}
	_, nbuckets := h.geometry()
	if nbuckets < n {
		t.Fatalf("table did not grow: %d buckets for %d keys", nbuckets, n)
	}
	for i := 0; i < n; i++ {
		got, ok := h.Get(key(i))
		if !ok || !bytes.Equal(got, value(i)) {
			t.Fatalf("key %d: %q %v", i, got, ok)
		}
	}
}

func TestHashMapForEach(t *testing.T) {
	h, _ := NewHashMap(flatAlloc(1<<20), 8)
	for i := 0; i < 100; i++ {
		h.Put(key(i), value(i))
	}
	seen := map[string]string{}
	h.ForEach(func(k, v []byte) bool {
		seen[string(k)] = string(v)
		return true
	})
	if len(seen) != 100 {
		t.Fatalf("visited %d entries", len(seen))
	}
	for i := 0; i < 100; i++ {
		if seen[string(key(i))] != string(value(i)) {
			t.Fatalf("entry %d wrong", i)
		}
	}
	// Early stop.
	n := 0
	h.ForEach(func(k, v []byte) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestHashMapOpenSharesState(t *testing.T) {
	al := flatAlloc(1 << 20)
	h, _ := NewHashMap(al, 8)
	h.Put([]byte("a"), []byte("1"))
	h2 := OpenHashMap(al, h.Addr())
	got, ok := h2.Get([]byte("a"))
	if !ok || string(got) != "1" {
		t.Fatal("reopened map lost entry")
	}
}

// Differential test against Go's map.
func TestHashMapMatchesModel(t *testing.T) {
	h, _ := NewHashMap(flatAlloc(1<<24), 8)
	model := map[string]string{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		k := key(rng.Intn(500))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := value(rng.Intn(100000))
			if err := h.Put(k, v); err != nil {
				t.Fatal(err)
			}
			model[string(k)] = string(v)
		case 6, 7:
			got, ok := h.Get(k)
			want, wok := model[string(k)]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("op %d: Get(%q) = %q,%v want %q,%v", i, k, got, ok, want, wok)
			}
		default:
			present, err := h.Delete(k)
			if err != nil {
				t.Fatal(err)
			}
			_, wok := model[string(k)]
			if present != wok {
				t.Fatalf("op %d: Delete(%q) = %v want %v", i, k, present, wok)
			}
			delete(model, string(k))
		}
		if h.Len() != uint64(len(model)) {
			t.Fatalf("op %d: len %d vs model %d", i, h.Len(), len(model))
		}
	}
}

func TestSkipListOrderedOps(t *testing.T) {
	s, err := NewSkipList(flatAlloc(1 << 22))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := s.Min(); ok {
		t.Fatal("empty list has a min")
	}
	// Insert in reverse order; scan must come out sorted.
	const n = 500
	for i := n - 1; i >= 0; i-- {
		if err := s.Put(key(i), value(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("len = %d", s.Len())
	}
	mk, mv, ok := s.Min()
	if !ok || !bytes.Equal(mk, key(0)) || !bytes.Equal(mv, value(0)) {
		t.Fatalf("min = %q/%q", mk, mv)
	}
	var keys []string
	s.Scan(nil, func(k, v []byte) bool {
		keys = append(keys, string(k))
		return true
	})
	if len(keys) != n || !sort.StringsAreSorted(keys) {
		t.Fatalf("scan returned %d keys, sorted=%v", len(keys), sort.StringsAreSorted(keys))
	}
	// Range scan from the middle.
	var from250 []string
	s.Scan(key(250), func(k, v []byte) bool {
		from250 = append(from250, string(k))
		return len(from250) < 10
	})
	if len(from250) != 10 || from250[0] != string(key(250)) {
		t.Fatalf("range scan start %v", from250[:1])
	}
}

func TestSkipListDeleteAndReplace(t *testing.T) {
	s, _ := NewSkipList(flatAlloc(1 << 22))
	for i := 0; i < 100; i++ {
		s.Put(key(i), value(i))
	}
	// Replace with same and different lengths.
	s.Put(key(10), []byte(string(value(10))))
	s.Put(key(11), []byte("short"))
	got, _ := s.Get(key(11))
	if string(got) != "short" {
		t.Fatalf("replace: %q", got)
	}
	if s.Len() != 100 {
		t.Fatalf("len changed on replace: %d", s.Len())
	}
	for i := 0; i < 100; i += 2 {
		present, err := s.Delete(key(i))
		if err != nil || !present {
			t.Fatalf("delete %d: %v %v", i, present, err)
		}
	}
	if s.Len() != 50 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := s.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Fatalf("key %d present=%v", i, ok)
		}
	}
	if present, _ := s.Delete(key(0)); present {
		t.Fatal("double delete")
	}
}

func TestSkipListMatchesModel(t *testing.T) {
	s, _ := NewSkipList(flatAlloc(1 << 24))
	model := map[string]string{}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10000; i++ {
		k := key(rng.Intn(300))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			v := value(rng.Intn(100000))
			s.Put(k, v)
			model[string(k)] = string(v)
		case 6, 7:
			got, ok := s.Get(k)
			want, wok := model[string(k)]
			if ok != wok || (ok && string(got) != want) {
				t.Fatalf("op %d: Get mismatch", i)
			}
		default:
			present, _ := s.Delete(k)
			_, wok := model[string(k)]
			if present != wok {
				t.Fatalf("op %d: Delete mismatch", i)
			}
			delete(model, string(k))
		}
	}
	// Final scan must be sorted and match the model exactly.
	var got []string
	s.Scan(nil, func(k, v []byte) bool {
		got = append(got, string(k))
		if model[string(k)] != string(v) {
			t.Fatalf("value mismatch for %q", k)
		}
		return true
	})
	if len(got) != len(model) || !sort.StringsAreSorted(got) {
		t.Fatalf("scan %d entries (model %d), sorted=%v", len(got), len(model), sort.StringsAreSorted(got))
	}
}

func TestVectorBasics(t *testing.T) {
	v, err := NewVector(flatAlloc(1<<22), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	elem := make([]byte, 8)
	for i := 0; i < 1000; i++ {
		copy(elem, fmt.Sprintf("%08d", i))
		if err := v.Push(elem); err != nil {
			t.Fatal(err)
		}
	}
	if v.Len() != 1000 || v.Cap() < 1000 {
		t.Fatalf("len=%d cap=%d", v.Len(), v.Cap())
	}
	buf := make([]byte, 8)
	v.Get(500, buf)
	if string(buf) != "00000500" {
		t.Fatalf("Get(500) = %q", buf)
	}
	copy(elem, "REPLACED")
	v.Set(500, elem)
	v.Get(500, buf)
	if string(buf) != "REPLACED" {
		t.Fatalf("Set failed: %q", buf)
	}
	if !v.Pop(buf) || string(buf) != "00000999" || v.Len() != 999 {
		t.Fatalf("Pop = %q len=%d", buf, v.Len())
	}
	for v.Pop(buf) {
	}
	if v.Len() != 0 || v.Pop(buf) {
		t.Fatal("empty vector Pop")
	}
}

func TestVectorValidation(t *testing.T) {
	if _, err := NewVector(flatAlloc(1<<16), 0, 4); err == nil {
		t.Fatal("zero elem size accepted")
	}
	v, _ := NewVector(flatAlloc(1<<16), 8, 4)
	for _, f := range []func(){
		func() { v.Get(0, make([]byte, 8)) },                          // out of range
		func() { v.Set(0, make([]byte, 8)) },                          // out of range
		func() { _ = v.Push(make([]byte, 4)) },                        // wrong width
		func() { v.Push(make([]byte, 8)); v.Get(0, make([]byte, 4)) }, // wrong buffer
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQueueFIFO(t *testing.T) {
	q, err := NewQueue(flatAlloc(1 << 20))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("empty queue peek")
	}
	for i := 0; i < 100; i++ {
		if err := q.Push([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if q.Len() != 100 {
		t.Fatalf("len = %d", q.Len())
	}
	head, ok := q.Peek()
	if !ok || string(head) != "msg-0" {
		t.Fatalf("peek = %q", head)
	}
	for i := 0; i < 100; i++ {
		got, ok, err := q.Pop()
		if err != nil || !ok || string(got) != fmt.Sprintf("msg-%d", i) {
			t.Fatalf("pop %d = %q %v %v", i, got, ok, err)
		}
	}
	if _, ok, _ := q.Pop(); ok || q.Len() != 0 {
		t.Fatal("queue not empty after drain")
	}
	// Interleaved push/pop keeps order.
	q.Push([]byte("a"))
	q.Push([]byte("b"))
	q.Pop()
	q.Push([]byte("c"))
	var order []string
	q.ForEach(func(p []byte) bool {
		order = append(order, string(p))
		return true
	})
	if len(order) != 2 || order[0] != "b" || order[1] != "c" {
		t.Fatalf("order = %v", order)
	}
}

// Property: hash map over simulated memory behaves identically to a Go map
// for arbitrary op sequences.
func TestHashMapQuickProperty(t *testing.T) {
	type op struct {
		K, V uint8
		Del  bool
	}
	f := func(ops []op) bool {
		h, err := NewHashMap(flatAlloc(1<<22), 8)
		if err != nil {
			return false
		}
		model := map[string]string{}
		for _, o := range ops {
			k := []byte{o.K}
			if o.Del {
				present, _ := h.Delete(k)
				_, wok := model[string(k)]
				if present != wok {
					return false
				}
				delete(model, string(k))
			} else {
				v := bytes.Repeat([]byte{o.V}, int(o.V%7)+1)
				if h.Put(k, v) != nil {
					return false
				}
				model[string(k)] = string(v)
			}
		}
		if h.Len() != uint64(len(model)) {
			return false
		}
		for k, v := range model {
			got, ok := h.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLevelForDeterministic(t *testing.T) {
	for i := 0; i < 100; i++ {
		k := key(i)
		l1, l2 := levelFor(k), levelFor(k)
		if l1 != l2 || l1 < 1 || l1 > slMaxLevel {
			t.Fatalf("levelFor(%q) = %d then %d", k, l1, l2)
		}
	}
}
