package structures

import (
	"bytes"
	"testing"
)

// FuzzHashMapOps interprets the fuzz input as an op tape (op, key byte,
// value length) and differentially checks the HashMap against Go's map.
func FuzzHashMapOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 0, 2, 1, 0})
	f.Add(bytes.Repeat([]byte{0, 7, 3}, 50))
	f.Fuzz(func(t *testing.T, tape []byte) {
		h, err := NewHashMap(flatAlloc(1<<22), 8)
		if err != nil {
			t.Fatal(err)
		}
		model := map[string]string{}
		for i := 0; i+2 < len(tape); i += 3 {
			op, kb, vl := tape[i]%3, tape[i+1], int(tape[i+2]%17)+1
			key := []byte{kb}
			switch op {
			case 0: // put
				val := bytes.Repeat([]byte{kb ^ byte(vl)}, vl)
				if err := h.Put(key, val); err != nil {
					t.Fatal(err)
				}
				model[string(key)] = string(val)
			case 1: // get
				got, ok := h.Get(key)
				want, wok := model[string(key)]
				if ok != wok || (ok && string(got) != want) {
					t.Fatalf("get(%d) = %q,%v want %q,%v", kb, got, ok, want, wok)
				}
			case 2: // delete
				present, err := h.Delete(key)
				if err != nil {
					t.Fatal(err)
				}
				if _, wok := model[string(key)]; present != wok {
					t.Fatalf("delete(%d) = %v", kb, present)
				}
				delete(model, string(key))
			}
		}
		if h.Len() != uint64(len(model)) {
			t.Fatalf("len %d vs model %d", h.Len(), len(model))
		}
	})
}

// FuzzBTreeOps drives the B+tree with an op tape and checks invariants.
func FuzzBTreeOps(f *testing.F) {
	f.Add([]byte{0, 5, 0, 9, 2, 5, 1, 9})
	f.Add(bytes.Repeat([]byte{0, 200}, 60))
	f.Fuzz(func(t *testing.T, tape []byte) {
		bt, err := NewBTree(flatAlloc(1 << 22))
		if err != nil {
			t.Fatal(err)
		}
		model := map[uint64]uint64{}
		for i := 0; i+1 < len(tape); i += 2 {
			op, k := tape[i]%3, uint64(tape[i+1])
			switch op {
			case 0:
				if err := bt.Put(k, k+1); err != nil {
					t.Fatal(err)
				}
				model[k] = k + 1
			case 1:
				got, ok := bt.Get(k)
				want, wok := model[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("get(%d) mismatch", k)
				}
			case 2:
				present := bt.Delete(k)
				if _, wok := model[k]; present != wok {
					t.Fatalf("delete(%d) = %v", k, present)
				}
				delete(model, k)
			}
		}
		if err := bt.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if bt.Len() != uint64(len(model)) {
			t.Fatalf("len %d vs model %d", bt.Len(), len(model))
		}
	})
}
