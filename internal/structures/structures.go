// Package structures provides volatile data structures written exclusively
// against the memory.Memory / memory.Allocator contract: a chained hash map,
// a skip list, a growable vector, and a FIFO queue.
//
// None of this code knows anything about persistence. That is the point of
// the paper (§3.1 "Black-Box Code Reuse"): handed an allocator whose memory
// is a PAX vPM region, these exact structures become crash-consistent,
// snapshot-persistent structures with no code changes; handed a DRAM-backed
// allocator they are ordinary volatile structures; handed a logging wrapper
// they become the compiler-instrumented baseline. The blackbox example and
// the equivalence tests run the same structure over every backend.
//
// Concurrency follows §3.5: structures are not internally synchronized;
// callers serialize access, and persist() must not overlap mutations.
package structures

import (
	"encoding/binary"

	"pax/internal/memory"
)

// memIO bundles the little-endian load/store helpers every structure uses.
type memIO struct {
	mem memory.Memory
}

func (io memIO) loadU64(addr uint64) uint64 {
	var b [8]byte
	io.mem.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (io memIO) storeU64(addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	io.mem.Store(addr, b[:])
}

func (io memIO) loadU32(addr uint64) uint32 {
	var b [4]byte
	io.mem.Load(addr, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (io memIO) storeU32(addr uint64, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	io.mem.Store(addr, b[:])
}

func (io memIO) loadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	io.mem.Load(addr, b)
	return b
}

func (io memIO) storeBytes(addr uint64, b []byte) {
	io.mem.Store(addr, b)
}

// fnv1a is the hash used by the hash map and the skip list's deterministic
// level draw. Hand-rolled so structure layout is identical across runs.
func fnv1a(data []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range data {
		h ^= uint64(b)
		h *= prime
	}
	return h
}
