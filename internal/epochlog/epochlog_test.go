package epochlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openT(t *testing.T, cfg Config) *Store {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func appendT(t *testing.T, s *Store, epoch uint64, ranges ...Range) {
	t.Helper()
	if _, err := s.Append(epoch, ranges); err != nil {
		t.Fatalf("Append(epoch=%d): %v", epoch, err)
	}
}

// collect replays the store into (records, payload-bytes-by-seq) with data
// copied out of the scratch buffer.
func collect(t *testing.T, s *Store) []Record {
	t.Helper()
	var out []Record
	err := s.Replay(func(rec Record) error {
		cp := Record{Seq: rec.Seq, Epoch: rec.Epoch}
		for _, r := range rec.Ranges {
			cp.Ranges = append(cp.Ranges, Range{Addr: r.Addr, Data: append([]byte(nil), r.Data...)})
		}
		out = append(out, cp)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.epochlog")
	s := openT(t, Config{Dir: dir})
	appendT(t, s, 1, Range{Addr: 10, Data: []byte("hello")})
	appendT(t, s, 2, Range{Addr: 0, Data: []byte("a")}, Range{Addr: 99, Data: []byte("bcd")})
	appendT(t, s, 3) // empty commit: record with no ranges
	s.Close()

	s2 := openT(t, Config{Dir: dir})
	recs := collect(t, s2)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) || rec.Epoch != uint64(i+1) {
			t.Fatalf("record %d: seq=%d epoch=%d", i, rec.Seq, rec.Epoch)
		}
	}
	if !bytes.Equal(recs[0].Ranges[0].Data, []byte("hello")) {
		t.Fatalf("record 1 data = %q", recs[0].Ranges[0].Data)
	}
	if len(recs[1].Ranges) != 2 || recs[1].Ranges[1].Addr != 99 {
		t.Fatalf("record 2 ranges = %+v", recs[1].Ranges)
	}
	if len(recs[2].Ranges) != 0 {
		t.Fatalf("record 3 should be empty, got %+v", recs[2].Ranges)
	}
	info := s2.Info()
	if info.LastSeq != 3 || info.LastEpoch != 3 || info.TornTail {
		t.Fatalf("info = %+v", info)
	}
}

func TestSegmentRollAndMultiSegmentReplay(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.epochlog")
	// Tiny roll threshold: every record should land in its own segment after
	// the first.
	s := openT(t, Config{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 5; i++ {
		appendT(t, s, uint64(i), Range{Addr: uint64(i * 100), Data: bytes.Repeat([]byte{byte(i)}, 40)})
	}
	segs := s.Segments()
	if len(segs) < 3 {
		t.Fatalf("expected ≥3 segments after rolls, got %d", len(segs))
	}
	s.Close()

	s2 := openT(t, Config{Dir: dir, SegmentBytes: 64})
	recs := collect(t, s2)
	if len(recs) != 5 {
		t.Fatalf("replayed %d records, want 5", len(recs))
	}
	if s2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", s2.LastSeq())
	}
	appendT(t, s2, 6, Range{Addr: 7, Data: []byte("x")})
	if s2.LastSeq() != 6 {
		t.Fatalf("LastSeq after append = %d", s2.LastSeq())
	}
}

// tornVariant truncates or corrupts the newest segment's tail in a specific
// way and returns how many records should survive.
type tornVariant struct {
	name     string
	mutilate func(t *testing.T, segPath string, lastRecStart, fileEnd int64)
}

func TestTornTailVariants(t *testing.T) {
	variants := []tornVariant{
		{"cut-mid-header", func(t *testing.T, p string, start, end int64) {
			truncateTo(t, p, start+recHeaderSize/2)
		}},
		{"cut-mid-payload", func(t *testing.T, p string, start, end int64) {
			truncateTo(t, p, start+(end-start)/2)
		}},
		{"cut-commit-marker", func(t *testing.T, p string, start, end int64) {
			truncateTo(t, p, end-4)
		}},
		{"flip-data-bit", func(t *testing.T, p string, start, end int64) {
			flipByte(t, p, start+recHeaderSize+8)
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "pool.epochlog")
			s := openT(t, Config{Dir: dir})
			appendT(t, s, 1, Range{Addr: 0, Data: []byte("first record")})
			appendT(t, s, 2, Range{Addr: 64, Data: []byte("second record")})
			segs := s.Segments()
			firstEnd := segSizeAfter(t, dir, s, 1)
			s.Close()
			if len(segs) != 1 {
				t.Fatalf("expected 1 segment, got %d", len(segs))
			}
			segPath := filepath.Join(dir, segs[0].Name)
			fi, err := os.Stat(segPath)
			if err != nil {
				t.Fatal(err)
			}
			v.mutilate(t, segPath, firstEnd, fi.Size())

			s2 := openT(t, Config{Dir: dir})
			info := s2.Info()
			if !info.TornTail {
				t.Fatalf("expected torn tail reported, info=%+v", info)
			}
			recs := collect(t, s2)
			if len(recs) != 1 || recs[0].Epoch != 1 {
				t.Fatalf("replay after torn tail = %+v, want only record 1", recs)
			}
			// The torn bytes must be gone: the next append takes seq 2 and a
			// fresh open replays exactly two clean records.
			appendT(t, s2, 5, Range{Addr: 3, Data: []byte("replacement")})
			if s2.LastSeq() != 2 {
				t.Fatalf("LastSeq after re-append = %d, want 2", s2.LastSeq())
			}
			s2.Close()
			s3 := openT(t, Config{Dir: dir})
			recs = collect(t, s3)
			if len(recs) != 2 || recs[1].Epoch != 5 || s3.Info().TornTail {
				t.Fatalf("final replay = %+v (torn=%v)", recs, s3.Info().TornTail)
			}
		})
	}
}

// segSizeAfter returns the segment size after the first n records (computed
// from the live store's bookkeeping before any mutilation).
func segSizeAfter(t *testing.T, dir string, s *Store, n int) int64 {
	t.Helper()
	var size int64 = segHeaderSize
	count := 0
	err := s.Replay(func(rec Record) error {
		if count >= n {
			return nil
		}
		var payload int
		for _, r := range rec.Ranges {
			payload += len(r.Data)
		}
		size += int64(recHeaderSize + 16*len(rec.Ranges) + payload + recTrailerSize)
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return size
}

func truncateTo(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyOpenDoesNotTruncate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.epochlog")
	s := openT(t, Config{Dir: dir})
	appendT(t, s, 1, Range{Addr: 0, Data: []byte("keep")})
	appendT(t, s, 2, Range{Addr: 8, Data: []byte("torn soon")})
	segs := s.Segments()
	s.Close()
	segPath := filepath.Join(dir, segs[0].Name)
	fi, _ := os.Stat(segPath)
	truncateTo(t, segPath, fi.Size()-3)
	tornSize := fi.Size() - 3

	ro := openT(t, Config{Dir: dir, ReadOnly: true})
	if !ro.Info().TornTail {
		t.Fatalf("read-only open should report torn tail")
	}
	if _, err := ro.Append(3, nil); err == nil {
		t.Fatalf("read-only append should fail")
	}
	if err := ro.CompactThrough(1); err == nil {
		t.Fatalf("read-only compact should fail")
	}
	fi2, _ := os.Stat(segPath)
	if fi2.Size() != tornSize {
		t.Fatalf("read-only open truncated the segment: %d → %d", tornSize, fi2.Size())
	}
}

func TestSequenceGapDropsOlderSegments(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.epochlog")
	s := openT(t, Config{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 4; i++ {
		appendT(t, s, uint64(i), Range{Addr: 0, Data: bytes.Repeat([]byte{byte(i)}, 48)})
	}
	segs := s.Segments()
	if len(segs) < 4 {
		t.Fatalf("need ≥4 segments, got %d", len(segs))
	}
	s.Close()
	// Simulate a crash mid-compaction that deleted a middle segment before
	// its older sibling: everything older than the gap must be dropped.
	if err := os.Remove(filepath.Join(dir, segs[1].Name)); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, Config{Dir: dir, SegmentBytes: 64})
	recs := collect(t, s2)
	for _, rec := range recs {
		if rec.Epoch <= 2 {
			t.Fatalf("pre-gap record replayed: %+v", rec)
		}
	}
	var dropped int
	for _, seg := range s2.Info().Segments {
		if seg.Dropped {
			dropped++
		}
	}
	if dropped == 0 {
		t.Fatalf("expected dropped segments, info=%+v", s2.Info())
	}
	// New appends continue the surviving chain.
	appendT(t, s2, 9)
	if s2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", s2.LastSeq())
	}
}

func TestCompactThrough(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.epochlog")
	s := openT(t, Config{Dir: dir, SegmentBytes: 64})
	for i := 1; i <= 6; i++ {
		appendT(t, s, uint64(i), Range{Addr: 0, Data: bytes.Repeat([]byte{byte(i)}, 48)})
	}
	before := s.LiveBytes()
	if err := s.CompactThrough(4); err != nil {
		t.Fatalf("CompactThrough: %v", err)
	}
	if s.LiveBytes() >= before {
		t.Fatalf("compaction did not shrink live bytes: %d → %d", before, s.LiveBytes())
	}
	recs := collect(t, s)
	for _, rec := range recs {
		if rec.Seq <= 4 && seqStillPresent(s, rec.Seq) {
			t.Fatalf("compacted record still replayable: %+v", rec)
		}
	}
	// Records 5, 6 must survive.
	if s.LastSeq() != 6 {
		t.Fatalf("LastSeq = %d", s.LastSeq())
	}
	found := map[uint64]bool{}
	for _, rec := range recs {
		found[rec.Seq] = true
	}
	if !found[5] || !found[6] {
		t.Fatalf("post-compaction replay lost live records: %+v", found)
	}
	// Compacting through everything rolls the active segment and leaves one
	// empty segment; appends still work and sequence numbers keep rising.
	if err := s.CompactThrough(s.LastSeq()); err != nil {
		t.Fatalf("CompactThrough(all): %v", err)
	}
	if got := len(s.Segments()); got != 1 {
		t.Fatalf("expected 1 segment after full compaction, got %d", got)
	}
	appendT(t, s, 7)
	if s.LastSeq() != 7 {
		t.Fatalf("LastSeq after post-compaction append = %d", s.LastSeq())
	}
	s.Close()
	s2 := openT(t, Config{Dir: dir, SegmentBytes: 64})
	if s2.LastSeq() != 7 {
		t.Fatalf("reopened LastSeq = %d, want 7", s2.LastSeq())
	}
}

func seqStillPresent(s *Store, seq uint64) bool {
	for _, seg := range s.Segments() {
		if seg.Records > 0 && seg.FirstSeq <= seq && seq <= seg.LastSeq {
			return true
		}
	}
	return false
}

func TestAppendFaultRewindsAndRetries(t *testing.T) {
	for _, stage := range []Stage{StageAppend, StageAppendSync} {
		t.Run(string(stage), func(t *testing.T) {
			dir := filepath.Join(t.TempDir(), "pool.epochlog")
			fail := 0
			cfg := Config{Dir: dir, Fault: func(st Stage) error {
				if st == stage && fail > 0 {
					fail--
					return fmt.Errorf("injected %s fault", st)
				}
				return nil
			}}
			s := openT(t, cfg)
			appendT(t, s, 1, Range{Addr: 0, Data: []byte("good")})
			fail = 1
			if _, err := s.Append(2, []Range{{Addr: 4, Data: []byte("doomed")}}); err == nil {
				t.Fatalf("append should have failed")
			}
			if s.LastSeq() != 1 {
				t.Fatalf("failed append consumed a sequence number: %d", s.LastSeq())
			}
			// Retry succeeds and lands at seq 2; replay sees exactly the two
			// committed records and no residue from the failed attempt.
			appendT(t, s, 2, Range{Addr: 4, Data: []byte("retried")})
			s.Close()
			s2 := openT(t, Config{Dir: dir})
			recs := collect(t, s2)
			if len(recs) != 2 || !bytes.Equal(recs[1].Ranges[0].Data, []byte("retried")) {
				t.Fatalf("replay after retry = %+v", recs)
			}
		})
	}
}

func TestCompactFaultLeavesRecoverableStore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "pool.epochlog")
	var injected bool
	cfg := Config{Dir: dir, SegmentBytes: 64, Fault: func(st Stage) error {
		if st == StageCompact && !injected {
			injected = true
			return fmt.Errorf("injected compact fault")
		}
		return nil
	}}
	s := openT(t, cfg)
	for i := 1; i <= 4; i++ {
		appendT(t, s, uint64(i), Range{Addr: 0, Data: bytes.Repeat([]byte{byte(i)}, 48)})
	}
	if err := s.CompactThrough(3); err == nil {
		t.Fatalf("compact should have failed")
	}
	// The store stays consistent: replay still yields a contiguous suffix
	// ending at seq 4, and a retried compaction succeeds.
	if s.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d", s.LastSeq())
	}
	if err := s.CompactThrough(3); err != nil {
		t.Fatalf("retried compact: %v", err)
	}
	recs := collect(t, s)
	found := map[uint64]bool{}
	for _, rec := range recs {
		found[rec.Seq] = true
	}
	if !found[4] {
		t.Fatalf("live record lost after compaction retry: %+v", found)
	}
}

func TestHasSegments(t *testing.T) {
	base := t.TempDir()
	dir := filepath.Join(base, "pool.epochlog")
	if ok, err := HasSegments(dir); err != nil || ok {
		t.Fatalf("missing dir: ok=%v err=%v", ok, err)
	}
	s := openT(t, Config{Dir: dir})
	if ok, _ := HasSegments(dir); !ok {
		t.Fatalf("open store created a segment; HasSegments should see it")
	}
	s.Close()
}
