// Package epochlog is the log-structured delta epoch store: an append-only
// sequence of per-commit delta records (dirty byte ranges + data, CRC,
// commit marker) held in rolling segment files next to a full-image
// checkpoint. It is the persistence backend that makes an epoch commit cost
// O(dirty bytes) instead of O(pool bytes): per commit, only the delta record
// is written and fsynced; the full image is republished in the background as
// a checkpoint, after which consumed segments are deleted.
//
// On-disk layout, for a pool file P:
//
//	P               — the checkpoint: a full pool image, atomically
//	                  published (tmp + rename + dir fsync) by the caller
//	P.epochlog/     — the segment directory owned by this package
//	    seg-00000001.seg
//	    seg-00000002.seg
//	    ...
//
// Each segment starts with a 32-byte header and holds consecutive records.
// A record is committed iff it is fully present, its CRC matches, and its
// trailing commit marker is intact; anything else is a torn tail from a
// crash mid-append and is discarded (and truncated away on a writable open,
// so the next append never leaves garbage between records).
//
// Recovery contract (why replay needs no metadata file): records carry
// absolute byte values, records are replayed in sequence order, and the
// checkpoint image always corresponds to the state after some record j with
// every record > j still retained (compaction deletes only segments whose
// records a published checkpoint covers, oldest first). Replaying records
// ≤ j onto the checkpoint rewrites bytes with older values, but every such
// byte is rewritten again by the records ≤ j that follow, so after the full
// ordered replay the image equals the state after the last committed record
// regardless of which checkpoint the crash left behind. A sequence gap
// between segments therefore only ever appears when a crash interrupted
// compaction mid-delete; segments older than the gap are provably covered
// by the published checkpoint and are dropped.
package epochlog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

const (
	// DirSuffix names the segment directory relative to the pool file.
	DirSuffix = ".epochlog"

	segMagic   = 0x5041584550530131 // "PAXEPS" tag + version-ish salt
	segVersion = 1
	// segHeaderSize is the fixed segment preamble: magic, version, first
	// record sequence number, reserved.
	segHeaderSize = 32

	recMagic = 0x44454c54 // "DELT"
	// recCommitMark trails every record; a record without it was torn by a
	// crash mid-append. 8 bytes so the marker itself is a single atomic
	// write unit on the modeled media.
	recCommitMark = 0x5041584350544d4b // "PAXCPTMK"
	// recHeaderSize is magic(4) + nranges(4) + seq(8) + epoch(8) + payload(8).
	recHeaderSize = 32
	// recTrailerSize is crc(4) + commit marker (8).
	recTrailerSize = 12

	// maxRanges bounds a record's range count during decode so a corrupt
	// header cannot drive a giant allocation.
	maxRanges = 1 << 24

	// DefaultSegmentBytes is the roll threshold: a segment past this size is
	// sealed and a fresh one opened before the next append.
	DefaultSegmentBytes = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Stage identifies a durability stage a fault hook can fail (the delta-mode
// analogue of pmem's Sync stages).
type Stage string

// Stages, in execution order.
const (
	// StageAppend fails writing a delta record into the active segment.
	StageAppend Stage = "append"
	// StageAppendSync fails the segment fsync that commits the record.
	StageAppendSync Stage = "append-fsync"
	// StageCompact fails deleting a checkpoint-covered segment.
	StageCompact Stage = "compact"
)

// Config parameterizes a Store.
type Config struct {
	// Dir is the segment directory (conventionally <pool>+DirSuffix).
	Dir string
	// SegmentBytes is the roll threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// Fault, when set, is consulted before each durability stage; a non-nil
	// return fails that stage with the returned error.
	Fault func(Stage) error
	// ReadOnly opens the store for inspection: no directory creation, no
	// torn-tail truncation, no appends. Tools use it on live or damaged
	// stores.
	ReadOnly bool
}

// Range is one dirty byte range of a delta record.
type Range struct {
	Addr uint64
	Data []byte
}

// Record is one committed delta: the epoch cell value after applying it and
// the dirty ranges it persisted.
type Record struct {
	Seq    uint64
	Epoch  uint64
	Ranges []Range
}

// SegmentInfo describes one segment file for tools and tests.
type SegmentInfo struct {
	Name     string `json:"name"`
	Index    uint64 `json:"index"`
	Bytes    int64  `json:"bytes"`
	Records  int    `json:"records"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"` // FirstSeq-1 when the segment is empty
	// FirstEpoch/LastEpoch are the epoch range the records span (0/0 when
	// empty).
	FirstEpoch uint64 `json:"first_epoch"`
	LastEpoch  uint64 `json:"last_epoch"`
	// TornTail reports a partial record at the segment's end — the signature
	// of a crash mid-append. Only legal on the newest segment.
	TornTail bool `json:"torn_tail,omitempty"`
	// Dropped marks a pre-gap segment: compaction deleted a newer segment
	// before this one when a crash interrupted it, which proves a published
	// checkpoint covers every record here. Replay skips it.
	Dropped bool `json:"dropped,omitempty"`
}

// Info summarizes an opened store.
type Info struct {
	Segments []SegmentInfo `json:"segments"`
	// Records and Bytes count the replayable records and their payload bytes
	// (dropped segments excluded).
	Records int   `json:"records"`
	Bytes   int64 `json:"bytes"`
	// LastSeq/LastEpoch identify the newest committed record (0/0 if none).
	LastSeq   uint64 `json:"last_seq"`
	LastEpoch uint64 `json:"last_epoch"`
	// TornTail reports that the newest segment ended in a partial record,
	// which Open discarded (and truncated, unless ReadOnly).
	TornTail bool `json:"torn_tail,omitempty"`
}

// Store is an open epoch store. Append, LastSeq, LiveBytes, and
// CompactThrough are safe for concurrent use with each other; Replay streams
// the state as of Open and must not run concurrently with Append.
type Store struct {
	cfg Config

	mu      sync.Mutex
	segs    []segment // sorted by Index; last one is active
	active  *os.File  // nil when ReadOnly
	offset  int64     // append offset in the active segment
	nextSeq uint64
	info    Info
}

// segment is the in-memory bookkeeping for one segment file.
type segment struct {
	SegmentInfo
	path string
}

func segName(index uint64) string { return fmt.Sprintf("seg-%08d.seg", index) }

func (c Config) fault(st Stage) error {
	if c.Fault == nil {
		return nil
	}
	return c.Fault(st)
}

// Open scans, validates, and (unless ReadOnly) prepares the store for
// appends: the newest segment's torn tail, if any, is truncated away so new
// records always follow the last committed one.
func Open(cfg Config) (*Store, error) {
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if !cfg.ReadOnly {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("epochlog: %w", err)
		}
	}
	s := &Store{cfg: cfg, nextSeq: 1}
	names, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		path := filepath.Join(cfg.Dir, name)
		info, err := scanSegment(path, i == len(names)-1, nil)
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, segment{SegmentInfo: info, path: path})
	}
	s.markDropped()
	for i := range s.segs {
		seg := &s.segs[i]
		s.info.Segments = append(s.info.Segments, seg.SegmentInfo)
		if seg.Dropped {
			continue
		}
		s.info.Records += seg.Records
		s.info.Bytes += seg.Bytes
		if seg.Records > 0 {
			s.info.LastSeq, s.info.LastEpoch = seg.LastSeq, seg.LastEpoch
		}
		s.nextSeq = seg.LastSeq + 1
	}
	if n := len(s.segs); n > 0 && s.segs[n-1].TornTail {
		s.info.TornTail = true
	}
	if cfg.ReadOnly {
		return s, nil
	}
	if len(s.segs) == 0 {
		if err := s.rollLocked(); err != nil {
			return nil, err
		}
		return s, nil
	}
	// Truncate the newest segment past its last committed record and open it
	// for appends.
	last := &s.segs[len(s.segs)-1]
	f, err := os.OpenFile(last.path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	if err := f.Truncate(last.Bytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("epochlog: truncating torn tail of %s: %w", last.Name, err)
	}
	if last.TornTail {
		// The truncation must be durable before new appends land after it,
		// or a crash could resurrect torn bytes between committed records.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("epochlog: %w", err)
		}
		last.TornTail = false
	}
	s.active = f
	s.offset = last.Bytes
	return s, nil
}

// listSegments returns the segment file names in dir, sorted by index.
func listSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("epochlog: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		var idx uint64
		if _, err := fmt.Sscanf(name, "seg-%d.seg", &idx); err != nil || segName(idx) != name {
			continue // not a segment (editor litter, tmp files)
		}
		names = append(names, name)
	}
	sort.Strings(names) // zero-padded indices sort numerically
	return names, nil
}

// markDropped finds the newest contiguous run of segments (by record
// sequence) and marks everything older as Dropped: a gap proves compaction
// deleted a newer segment first, which it only does after a checkpoint
// covering all of them was published.
func (s *Store) markDropped() {
	for i := len(s.segs) - 1; i > 0; i-- {
		newer, older := &s.segs[i], &s.segs[i-1]
		// An empty active segment carries its would-be first sequence in
		// FirstSeq, so the chain check works across it too.
		if older.LastSeq+1 != newer.FirstSeq {
			for j := 0; j < i; j++ {
				s.segs[j].Dropped = true
			}
			return
		}
	}
}

// scanSegment walks one segment file, validating records. A torn record is
// legal only when tailOK (the newest segment); anywhere else it is
// corruption. When fn is non-nil it receives each committed record; range
// data aliases a per-record buffer the callee must not retain.
func scanSegment(path string, tailOK bool, fn func(Record) error) (SegmentInfo, error) {
	info := SegmentInfo{Name: filepath.Base(path)}
	if _, err := fmt.Sscanf(info.Name, "seg-%d.seg", &info.Index); err != nil {
		return info, fmt.Errorf("epochlog: unrecognized segment name %q", info.Name)
	}
	f, err := os.Open(path)
	if err != nil {
		return info, fmt.Errorf("epochlog: %w", err)
	}
	defer f.Close()

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return info, fmt.Errorf("epochlog: %s: short header: %w", info.Name, err)
	}
	if got := binary.LittleEndian.Uint64(hdr[0:]); got != segMagic {
		return info, fmt.Errorf("epochlog: %s: bad segment magic %#x", info.Name, got)
	}
	if got := binary.LittleEndian.Uint64(hdr[8:]); got != segVersion {
		return info, fmt.Errorf("epochlog: %s: unsupported segment version %d", info.Name, got)
	}
	info.FirstSeq = binary.LittleEndian.Uint64(hdr[16:])
	info.LastSeq = info.FirstSeq - 1
	info.Bytes = segHeaderSize

	r := &countingReader{r: f, n: segHeaderSize}
	expect := info.FirstSeq
	for {
		rec, ok, err := readRecord(r, expect)
		if err != nil {
			return info, fmt.Errorf("epochlog: %s: %w", info.Name, err)
		}
		if !ok {
			// Torn or absent: if any bytes follow the last committed record,
			// that is a torn tail.
			if r.sawAny {
				info.TornTail = true
				if !tailOK {
					return info, fmt.Errorf("epochlog: %s: torn record inside a sealed segment (corruption, not a crash tail)", info.Name)
				}
			}
			return info, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return info, err
			}
		}
		if info.Records == 0 {
			info.FirstEpoch = rec.Epoch
		}
		info.Records++
		info.LastSeq, info.LastEpoch = rec.Seq, rec.Epoch
		info.Bytes = r.n
		expect = rec.Seq + 1
	}
}

// countingReader tracks how many bytes of the segment have been consumed and
// whether the current record read saw any bytes at all.
type countingReader struct {
	r      io.Reader
	n      int64
	sawAny bool
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	if n > 0 {
		c.sawAny = true
	}
	return n, err
}

// readRecord decodes one record. ok=false with nil error means the record is
// torn or the segment ended cleanly; the caller distinguishes the two by
// whether any bytes were consumed. expect is the required sequence number —
// a committed record with the wrong sequence is corruption, never a tail.
func readRecord(r *countingReader, expect uint64) (Record, bool, error) {
	r.sawAny = false
	var hdr [recHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Record{}, false, nil // clean EOF or torn header
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != recMagic {
		return Record{}, false, nil // garbage past the tail
	}
	nranges := binary.LittleEndian.Uint32(hdr[4:])
	seq := binary.LittleEndian.Uint64(hdr[8:])
	epoch := binary.LittleEndian.Uint64(hdr[16:])
	payload := binary.LittleEndian.Uint64(hdr[24:])
	if nranges > maxRanges || payload > 1<<40 {
		return Record{}, false, nil // implausible header: torn bytes
	}
	body := make([]byte, int(nranges)*16+int(payload)+recTrailerSize)
	if _, err := io.ReadFull(r, body); err != nil {
		return Record{}, false, nil // torn body
	}
	crcAt := len(body) - recTrailerSize
	crc := crc32.Checksum(hdr[:], crcTable)
	crc = crc32.Update(crc, crcTable, body[:crcAt])
	if crc != binary.LittleEndian.Uint32(body[crcAt:]) {
		return Record{}, false, nil // torn data
	}
	if binary.LittleEndian.Uint64(body[crcAt+4:]) != recCommitMark {
		return Record{}, false, nil // unmarked: crash before the marker
	}
	if seq != expect {
		return Record{}, false, fmt.Errorf("record sequence %d, want %d", seq, expect)
	}
	rec := Record{Seq: seq, Epoch: epoch, Ranges: make([]Range, nranges)}
	data := body[int(nranges)*16 : crcAt]
	var off uint64
	for i := range rec.Ranges {
		addr := binary.LittleEndian.Uint64(body[i*16:])
		n := binary.LittleEndian.Uint64(body[i*16+8:])
		if off+n > uint64(len(data)) {
			return Record{}, false, fmt.Errorf("record %d ranges exceed payload", seq)
		}
		rec.Ranges[i] = Range{Addr: addr, Data: data[off : off+n]}
		off += n
	}
	if off != uint64(len(data)) {
		return Record{}, false, fmt.Errorf("record %d payload/range mismatch", seq)
	}
	return rec, true, nil
}

// Info reports what Open found.
func (s *Store) Info() Info {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := s.info
	out.Segments = append([]SegmentInfo(nil), s.info.Segments...)
	return out
}

// LastSeq reports the newest committed record's sequence number (0 if none).
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.nextSeq == 0 {
		return 0
	}
	return s.nextSeq - 1
}

// LiveBytes reports the total size of retained segments — the caller's
// checkpoint trigger.
func (s *Store) LiveBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for i := range s.segs {
		if !s.segs[i].Dropped {
			n += s.segs[i].Bytes
		}
	}
	return n
}

// Segments reports the current segment set (post-compaction state included).
func (s *Store) Segments() []SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SegmentInfo, len(s.segs))
	for i := range s.segs {
		out[i] = s.segs[i].SegmentInfo
	}
	return out
}

// Replay streams every committed record, in sequence order, to apply.
// Dropped segments are skipped (a published checkpoint covers them). The
// record's range data aliases a scratch buffer: apply must copy what it
// keeps.
func (s *Store) Replay(apply func(Record) error) error {
	s.mu.Lock()
	segs := append([]segment(nil), s.segs...)
	s.mu.Unlock()
	for i := range segs {
		if segs[i].Dropped {
			continue
		}
		last := i == len(segs)-1
		if _, err := scanSegment(segs[i].path, last, apply); err != nil {
			return err
		}
	}
	return nil
}

// Append writes one committed delta record for the given epoch and fsyncs
// it, returning the record's total on-media size. On failure the store
// rewinds to the previous record boundary — the sequence number is not
// consumed and a retry overwrites whatever the failed attempt left — and the
// caller must treat the commit as not durable.
func (s *Store) Append(epoch uint64, ranges []Range) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return 0, fmt.Errorf("epochlog: store is read-only")
	}
	if s.offset >= s.cfg.SegmentBytes {
		if err := s.rollLocked(); err != nil {
			return 0, err
		}
	}
	if err := s.cfg.fault(StageAppend); err != nil {
		return 0, fmt.Errorf("epochlog: append: %w", err)
	}
	buf := encodeRecord(s.nextSeq, epoch, ranges)
	fail := func(err error) (int64, error) {
		// Best effort: clear the partial record so a later crash cannot
		// leave its bytes between committed records. Open's truncation
		// backstops this if the process dies first.
		s.active.Truncate(s.offset)
		return 0, fmt.Errorf("epochlog: append: %w", err)
	}
	if _, err := s.active.WriteAt(buf, s.offset); err != nil {
		return fail(err)
	}
	if err := s.cfg.fault(StageAppendSync); err != nil {
		return fail(err)
	}
	if err := s.active.Sync(); err != nil {
		return fail(err)
	}
	seg := &s.segs[len(s.segs)-1]
	if seg.Records == 0 {
		seg.FirstEpoch = epoch
	}
	seg.Records++
	seg.LastSeq, seg.LastEpoch = s.nextSeq, epoch
	s.offset += int64(len(buf))
	seg.Bytes = s.offset
	s.nextSeq++
	return int64(len(buf)), nil
}

// RecordSize reports the encoded on-media size of a record holding the
// given ranges — what Append would persist. Callers without a backing file
// use it to model the delta cost.
func RecordSize(ranges []Range) int64 {
	var payload int
	for _, r := range ranges {
		payload += len(r.Data)
	}
	return int64(recHeaderSize + 16*len(ranges) + payload + recTrailerSize)
}

func encodeRecord(seq, epoch uint64, ranges []Range) []byte {
	var payload int
	for _, r := range ranges {
		payload += len(r.Data)
	}
	buf := make([]byte, recHeaderSize+len(ranges)*16+payload+recTrailerSize)
	binary.LittleEndian.PutUint32(buf[0:], recMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(ranges)))
	binary.LittleEndian.PutUint64(buf[8:], seq)
	binary.LittleEndian.PutUint64(buf[16:], epoch)
	binary.LittleEndian.PutUint64(buf[24:], uint64(payload))
	off := recHeaderSize
	for _, r := range ranges {
		binary.LittleEndian.PutUint64(buf[off:], r.Addr)
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(len(r.Data)))
		off += 16
	}
	for _, r := range ranges {
		off += copy(buf[off:], r.Data)
	}
	binary.LittleEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], crcTable))
	binary.LittleEndian.PutUint64(buf[off+4:], recCommitMark)
	return buf
}

// rollLocked seals the active segment and starts the next one. The new
// segment file (header included) is fsynced, and so is the directory, before
// any record lands in it: a record's durability must imply its segment's.
func (s *Store) rollLocked() error {
	index := uint64(1)
	if n := len(s.segs); n > 0 {
		index = s.segs[n-1].Index + 1
	}
	path := filepath.Join(s.cfg.Dir, segName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:], segVersion)
	binary.LittleEndian.PutUint64(hdr[16:], s.nextSeq)
	if _, err := f.Write(hdr[:]); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("epochlog: %w", err)
	}
	if err := syncDir(s.cfg.Dir); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if s.active != nil {
		s.active.Close()
	}
	s.active = f
	s.offset = segHeaderSize
	s.segs = append(s.segs, segment{
		SegmentInfo: SegmentInfo{
			Name:     segName(index),
			Index:    index,
			Bytes:    segHeaderSize,
			FirstSeq: s.nextSeq,
			LastSeq:  s.nextSeq - 1,
		},
		path: path,
	})
	return nil
}

// CompactThrough deletes segments whose records are all ≤ seq — covered by a
// checkpoint the caller has already durably published. Deletion runs oldest
// first, so a crash mid-compaction leaves at worst a sequence gap whose
// older side is provably covered (see markDropped). If the active segment
// itself is fully covered it is rolled first, then deleted, so a quiet store
// compacts down to one empty segment.
func (s *Store) CompactThrough(seq uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return fmt.Errorf("epochlog: store is read-only")
	}
	if n := len(s.segs); n > 0 {
		last := &s.segs[n-1]
		if last.Records > 0 && last.LastSeq <= seq {
			if err := s.rollLocked(); err != nil {
				return err
			}
		}
	}
	removed := 0
	for _, seg := range s.segs[:len(s.segs)-1] {
		if seg.LastSeq > seq && !seg.Dropped {
			break
		}
		if err := s.cfg.fault(StageCompact); err != nil {
			s.segs = s.segs[removed:]
			return fmt.Errorf("epochlog: compact: %w", err)
		}
		if err := os.Remove(seg.path); err != nil {
			s.segs = s.segs[removed:]
			return fmt.Errorf("epochlog: compact: %w", err)
		}
		removed++
	}
	s.segs = s.segs[removed:]
	if removed > 0 {
		return syncDir(s.cfg.Dir)
	}
	return nil
}

// Close releases the active segment file handle. Appends after Close fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active == nil {
		return nil
	}
	err := s.active.Close()
	s.active = nil
	return err
}

// HasSegments reports whether dir holds any segment files — the signal that
// a pool was last written in epoch-log mode and a full-image open would
// silently lose the deltas.
func HasSegments(dir string) (bool, error) {
	names, err := listSegments(dir)
	if err != nil {
		return false, err
	}
	return len(names) > 0, nil
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("epochlog: %w", err)
	}
	return nil
}
