// Package amat implements the paper's Figure 2a methodology: combine demand
// miss rates measured on the simulated cache hierarchy with per-medium
// service latencies to estimate average memory access time for DRAM, raw PM,
// PM behind a CXL-class PAX, and PM behind an Enzian-class PAX.
//
//	AMAT = L1 + m1·(L2 + m2·(LLC + m3·memService))
//
// where mᵢ are the per-level demand miss rates. The memService term is what
// distinguishes configurations; for PAX configurations it includes the link
// round trip, the device pipeline, and the HBM-vs-PM mix.
package amat

import (
	"fmt"

	"pax/internal/sim"
)

// MissRates holds the measured demand miss rates of each cache level.
type MissRates struct {
	L1, L2, LLC float64
}

// Validate reports whether every rate is a probability.
func (m MissRates) Validate() error {
	for _, r := range []float64{m.L1, m.L2, m.LLC} {
		if r < 0 || r > 1 {
			return fmt.Errorf("amat: miss rate %g outside [0,1]", r)
		}
	}
	return nil
}

// AMAT computes the average memory access time for the given miss rates and
// the service time of an LLC miss.
func AMAT(m MissRates, memService sim.Time) sim.Time {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	llcTerm := float64(sim.LLCLatency) + m.LLC*float64(memService)
	l2Term := float64(sim.L2Latency) + m.L2*llcTerm
	return sim.L1Latency + sim.Time(m.L1*(l2Term))
}

// MemServiceDRAM is the LLC-miss service time for local DRAM.
func MemServiceDRAM() sim.Time { return sim.DRAMLatency }

// MemServicePM is the LLC-miss service time for CPU-attached Optane (not
// crash consistent).
func MemServicePM() sim.Time { return sim.PMReadLatency }

// MemServicePAX is the LLC-miss service time through a PAX device on the
// given link: request + response link latency, the device message pipeline,
// and the expected media time given the device's HBM hit rate.
func MemServicePAX(link sim.LinkProfile, hbmHitRate float64) sim.Time {
	if hbmHitRate < 0 || hbmHitRate > 1 {
		panic(fmt.Sprintf("amat: hbm hit rate %g outside [0,1]", hbmHitRate))
	}
	pipe := sim.Time(float64(link.PipelineDepth) * float64(sim.Second) / link.DeviceHz)
	media := hbmHitRate*float64(sim.HBMLatency) + (1-hbmHitRate)*float64(sim.PMReadLatency)
	return link.RoundTrip() + pipe + sim.Time(media)
}

// Row is one Figure 2a bar.
type Row struct {
	Config     string
	MemService sim.Time
	AMAT       sim.Time
	// OverPM is this configuration's AMAT relative to raw PM (the paper's
	// "~25% over PM" claim for CXL).
	OverPM float64
}

// Figure2a produces the four paper configurations for the given measured
// miss rates and the HBM hit rate observed on the device.
func Figure2a(m MissRates, hbmHitRate float64) []Row {
	configs := []struct {
		name    string
		service sim.Time
	}{
		{"DRAM", MemServiceDRAM()},
		{"PM", MemServicePM()},
		{"PM via CXL", MemServicePAX(sim.CXLLink, hbmHitRate)},
		{"PM via Enzian", MemServicePAX(sim.EnzianLink, hbmHitRate)},
	}
	pmAMAT := AMAT(m, MemServicePM())
	rows := make([]Row, len(configs))
	for i, c := range configs {
		a := AMAT(m, c.service)
		rows[i] = Row{
			Config:     c.name,
			MemService: c.service,
			AMAT:       a,
			OverPM:     float64(a) / float64(pmAMAT),
		}
	}
	return rows
}
