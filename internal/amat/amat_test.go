package amat

import (
	"testing"

	"pax/internal/sim"
)

func TestAMATFormula(t *testing.T) {
	// All hits: AMAT = L1 latency.
	if got := AMAT(MissRates{}, sim.PMReadLatency); got != sim.L1Latency {
		t.Fatalf("all-hit AMAT = %v", got)
	}
	// All misses: L1 + L2 + LLC + mem.
	want := sim.L1Latency + sim.L2Latency + sim.LLCLatency + sim.PMReadLatency
	if got := AMAT(MissRates{1, 1, 1}, sim.PMReadLatency); got != want {
		t.Fatalf("all-miss AMAT = %v, want %v", got, want)
	}
	// Partial: hand-computed.
	m := MissRates{L1: 0.1, L2: 0.5, LLC: 0.6}
	got := AMAT(m, sim.NS(300))
	manual := float64(sim.L1Latency) + 0.1*(float64(sim.L2Latency)+0.5*(float64(sim.LLCLatency)+0.6*float64(sim.NS(300))))
	if got != sim.Time(manual) {
		t.Fatalf("AMAT = %v, want %v", got, sim.Time(manual))
	}
}

func TestAMATValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AMAT(MissRates{L1: 1.5}, 0)
}

func TestMemServiceOrdering(t *testing.T) {
	if MemServiceDRAM() >= MemServicePM() {
		t.Fatal("DRAM must be faster than PM")
	}
	cxl := MemServicePAX(sim.CXLLink, 0)
	if cxl <= MemServicePM() {
		t.Fatal("PAX adds latency over raw PM")
	}
	enzian := MemServicePAX(sim.EnzianLink, 0)
	if enzian <= cxl {
		t.Fatal("Enzian must be slower than CXL")
	}
	// HBM hits reduce service time.
	if MemServicePAX(sim.CXLLink, 0.9) >= MemServicePAX(sim.CXLLink, 0.1) {
		t.Fatal("HBM hit rate must lower service time")
	}
}

func TestMemServicePAXValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MemServicePAX(sim.CXLLink, 1.5)
}

func TestFigure2aShape(t *testing.T) {
	// Representative miss rates from a large uniform-random hash workload.
	// HBM hit rate 0: a uniform workload over a table far larger than the
	// device cache — the conservative regime Figure 2a plots.
	m := MissRates{L1: 0.15, L2: 0.6, LLC: 0.7}
	rows := Figure2a(m, 0)
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byName := map[string]Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	dram, pm := byName["DRAM"], byName["PM"]
	cxl, enzian := byName["PM via CXL"], byName["PM via Enzian"]

	// The paper's qualitative claims:
	if !(dram.AMAT < pm.AMAT && pm.AMAT < cxl.AMAT && cxl.AMAT < enzian.AMAT) {
		t.Fatalf("ordering violated: %v %v %v %v", dram.AMAT, pm.AMAT, cxl.AMAT, enzian.AMAT)
	}
	// CXL-PAX adds modest overhead over raw PM (paper: ~25%; accept < 60%).
	if cxl.OverPM < 1.0 || cxl.OverPM > 1.6 {
		t.Fatalf("CXL over PM = %.2fx", cxl.OverPM)
	}
	// Enzian ≈ 2× the CXL PAX (paper claim); accept 1.5–3×.
	ratio := float64(enzian.AMAT) / float64(cxl.AMAT)
	if ratio < 1.5 || ratio > 3 {
		t.Fatalf("Enzian/CXL = %.2fx", ratio)
	}
	if pm.OverPM != 1.0 {
		t.Fatalf("PM over itself = %g", pm.OverPM)
	}
}

func TestHBMCanBeatRawPM(t *testing.T) {
	// §5's optimism: with a hot working set largely resident in device HBM,
	// a CXL PAX can serve misses faster than raw Optane.
	m := MissRates{L1: 0.15, L2: 0.6, LLC: 0.7}
	rows := Figure2a(m, 0.9)
	var pm, cxl Row
	for _, r := range rows {
		switch r.Config {
		case "PM":
			pm = r
		case "PM via CXL":
			cxl = r
		}
	}
	if cxl.AMAT >= pm.AMAT {
		t.Fatalf("90%% HBM hits: CXL %v not faster than PM %v", cxl.AMAT, pm.AMAT)
	}
}
