package blackbox

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, cfg Config) *Journal {
	t.Helper()
	j, err := Open(cfg)
	if err != nil {
		t.Fatalf("open %s: %v", cfg.Dir, err)
	}
	return j
}

func collect(t *testing.T, j *Journal) []Record {
	t.Helper()
	var recs []Record
	if err := j.Replay(func(rec Record) error {
		recs = append(recs, rec)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 10; i++ {
		if err := j.Append("ev", []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	recs := collect(t, j)
	if len(recs) != 10 {
		t.Fatalf("replayed %d records, want 10", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, rec.Seq, i+1)
		}
		if rec.Type != "ev" || string(rec.Payload) != fmt.Sprintf("payload-%d", i) {
			t.Fatalf("record %d = %q %q", i, rec.Type, rec.Payload)
		}
		if rec.UnixNano == 0 {
			t.Fatalf("record %d has no timestamp", i)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A read-only reopen sees the same records.
	ro := mustOpen(t, Config{Dir: dir, ReadOnly: true})
	defer ro.Close()
	if got := collect(t, ro); len(got) != 10 {
		t.Fatalf("read-only replay %d records, want 10", len(got))
	}
	info := ro.Info()
	if info.FirstSeq != 1 || info.LastSeq != 10 || info.TornTail {
		t.Fatalf("info = %+v", info)
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 5; i++ {
		if err := j.Append("a", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j = mustOpen(t, Config{Dir: dir})
	defer j.Close()
	for i := 0; i < 5; i++ {
		if err := j.Append("b", []byte("y")); err != nil {
			t.Fatal(err)
		}
	}
	recs := collect(t, j)
	if len(recs) != 10 || recs[9].Seq != 10 || recs[9].Type != "b" {
		t.Fatalf("after reopen: %d records, tail %+v", len(recs), recs[len(recs)-1])
	}
}

func TestRotationPrunesOldest(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir, SegmentBytes: 256, MaxSegments: 2})
	defer j.Close()
	for i := 0; i < 60; i++ {
		if err := j.Append("ev", bytes.Repeat([]byte("p"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	info := j.Info()
	if info.Segments > 2 {
		t.Fatalf("%d segments survive a MaxSegments=2 journal", info.Segments)
	}
	if info.FirstSeq <= 1 {
		t.Fatalf("firstSeq = %d; rotation should have pruned the oldest records", info.FirstSeq)
	}
	recs := collect(t, j)
	if len(recs) == 0 {
		t.Fatal("no records after rotation")
	}
	for i, rec := range recs {
		if want := info.FirstSeq + uint64(i); rec.Seq != want {
			t.Fatalf("record %d seq = %d, want %d (gap inside retained window)", i, rec.Seq, want)
		}
	}
	if recs[len(recs)-1].Seq != 60 {
		t.Fatalf("last seq = %d, want 60", recs[len(recs)-1].Seq)
	}

	// Reopen adopts the pruned window: the oldest surviving segment's header
	// says where the sequence now starts.
	j.Close()
	re := mustOpen(t, Config{Dir: dir, SegmentBytes: 256, MaxSegments: 2})
	defer re.Close()
	if got := re.Info(); got.FirstSeq != info.FirstSeq || got.LastSeq != 60 {
		t.Fatalf("reopened info = %+v, want firstSeq %d lastSeq 60", got, info.FirstSeq)
	}
}

// activeSegPath returns the newest segment's path.
func activeSegPath(t *testing.T, dir string) string {
	t.Helper()
	indices, err := listSegments(dir)
	if err != nil || len(indices) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(indices))
	}
	return filepath.Join(dir, segName(indices[len(indices)-1]))
}

func TestTornTailTruncatedOnWritableReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir})
	for i := 0; i < 3; i++ {
		if err := j.Append("ev", []byte("keep")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Simulate an append the crash interrupted: garbage after the last
	// committed record.
	path := activeSegPath(t, dir)
	clean, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial-append-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Read-only: torn tail reported, file untouched.
	ro := mustOpen(t, Config{Dir: dir, ReadOnly: true})
	if info := ro.Info(); !info.TornTail || info.TornBytes == 0 {
		t.Fatalf("read-only info = %+v, want torn tail", info)
	}
	if got := collect(t, ro); len(got) != 3 {
		t.Fatalf("read-only replay through torn tail: %d records, want 3", len(got))
	}
	ro.Close()
	if fi, _ := os.Stat(path); fi.Size() == clean.Size() {
		t.Fatal("read-only open truncated the file")
	}

	// Writable: torn tail truncated away, appends land cleanly after.
	j = mustOpen(t, Config{Dir: dir})
	defer j.Close()
	if info := j.Info(); !info.TornTail {
		t.Fatalf("writable info = %+v, want torn tail reported", info)
	}
	if fi, _ := os.Stat(path); fi.Size() != clean.Size() {
		t.Fatalf("repair left %d bytes, want %d", fi.Size(), clean.Size())
	}
	if err := j.Append("ev", []byte("after-repair")); err != nil {
		t.Fatal(err)
	}
	recs := collect(t, j)
	if len(recs) != 4 || recs[3].Seq != 4 || string(recs[3].Payload) != "after-repair" {
		t.Fatalf("after repair: %+v", recs)
	}
}

func TestCorruptCRCIsATornTail(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir})
	j.Append("ev", []byte("one"))
	j.Append("ev", []byte("two-to-be-torn"))
	j.Close()

	// Flip a payload byte of the last record: the frame is complete but the
	// CRC no longer matches — the record never fully committed.
	path := activeSegPath(t, dir)
	img, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	img[len(img)-recTrailerSize-2] ^= 0xff
	if err := os.WriteFile(path, img, 0o644); err != nil {
		t.Fatal(err)
	}

	j = mustOpen(t, Config{Dir: dir})
	defer j.Close()
	if info := j.Info(); !info.TornTail {
		t.Fatalf("info = %+v, want torn tail on CRC mismatch", info)
	}
	if recs := collect(t, j); len(recs) != 1 || string(recs[0].Payload) != "one" {
		t.Fatalf("replay = %+v, want the one intact record", recs)
	}
}

func TestTornMiddleSegmentIsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir, SegmentBytes: 256, MaxSegments: 8})
	for i := 0; i < 20; i++ {
		if err := j.Append("ev", bytes.Repeat([]byte("p"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Info().Segments < 3 {
		t.Fatalf("test needs >= 3 segments, got %d", j.Info().Segments)
	}
	j.Close()

	indices, _ := listSegments(dir)
	middle := filepath.Join(dir, segName(indices[1]))
	fi, _ := os.Stat(middle)
	if err := os.Truncate(middle, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, ReadOnly: true}); err == nil ||
		!strings.Contains(err.Error(), "non-newest") {
		t.Fatalf("open over a torn middle segment: %v, want non-newest-segment corruption", err)
	}
}

func TestMissingSegmentIsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir, SegmentBytes: 256, MaxSegments: 8})
	for i := 0; i < 20; i++ {
		if err := j.Append("ev", bytes.Repeat([]byte("p"), 40)); err != nil {
			t.Fatal(err)
		}
	}
	if j.Info().Segments < 3 {
		t.Fatalf("test needs >= 3 segments, got %d", j.Info().Segments)
	}
	j.Close()
	indices, _ := listSegments(dir)
	if err := os.Remove(filepath.Join(dir, segName(indices[1]))); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Config{Dir: dir, ReadOnly: true}); err == nil ||
		!strings.Contains(err.Error(), "missing") {
		t.Fatalf("open with a deleted middle segment: %v, want missing-records error", err)
	}
}

// TestCrashReplayProperty is the seeded crash-replay property test: cut the
// newest segment at an arbitrary byte offset (every byte a crash could have
// stopped at) and assert that open recovers exactly the records whose frames
// were fully durable before the cut — every acked append before the crash,
// no phantoms after it.
func TestCrashReplayProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const trials = 8

	for trial := 0; trial < trials; trial++ {
		dir := filepath.Join(t.TempDir(), "bb")
		j := mustOpen(t, Config{Dir: dir, SegmentBytes: 512, MaxSegments: 64})
		type appended struct {
			payload []byte
			size    int64
		}
		var log []appended
		n := 10 + rng.Intn(30)
		for i := 0; i < n; i++ {
			payload := make([]byte, rng.Intn(120))
			rng.Read(payload)
			if err := j.Append("ev", payload); err != nil {
				t.Fatal(err)
			}
			log = append(log, appended{payload, int64(recHeaderSize + len("ev") + len(payload) + recTrailerSize)})
		}
		j.Close()

		// Frame boundaries inside the newest segment, and how many records
		// live in the older (complete) segments.
		indices, _ := listSegments(dir)
		tail := filepath.Join(dir, segName(indices[len(indices)-1]))
		tailSize, err := os.Stat(tail)
		if err != nil {
			t.Fatal(err)
		}
		// Walk the append log backwards to find which records the tail holds.
		inTail := 0
		for sum := int64(segHeaderSize); inTail < len(log); inTail++ {
			sum += log[len(log)-1-inTail].size
			if sum > tailSize.Size() {
				break
			}
			if sum == tailSize.Size() {
				inTail++
				break
			}
		}
		boundaries := []int64{segHeaderSize}
		for i := len(log) - inTail; i < len(log); i++ {
			boundaries = append(boundaries, boundaries[len(boundaries)-1]+log[i].size)
		}
		if boundaries[len(boundaries)-1] != tailSize.Size() {
			t.Fatalf("trial %d: reconstructed tail layout %v != file size %d", trial, boundaries, tailSize.Size())
		}

		// Crash at an arbitrary offset within the tail segment.
		cut := segHeaderSize + rng.Int63n(tailSize.Size()-segHeaderSize+1)
		if err := os.Truncate(tail, cut); err != nil {
			t.Fatal(err)
		}
		survivors := len(log) - inTail
		for _, b := range boundaries[1:] {
			if b <= cut {
				survivors++
			}
		}

		re, err := Open(Config{Dir: dir, ReadOnly: true})
		if err != nil {
			t.Fatalf("trial %d: reopen after cut at %d: %v", trial, cut, err)
		}
		recs := collect(t, re)
		re.Close()
		if len(recs) != survivors {
			t.Fatalf("trial %d: cut at %d recovered %d records, want %d", trial, cut, len(recs), survivors)
		}
		for i, rec := range recs {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("trial %d: record %d seq = %d (phantom or gap)", trial, i, rec.Seq)
			}
			if !bytes.Equal(rec.Payload, log[i].payload) {
				t.Fatalf("trial %d: record %d payload mismatch", trial, i)
			}
		}
	}
}
