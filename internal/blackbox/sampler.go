package blackbox

import (
	"strings"
	"sync"
	"time"

	"pax/internal/stats"
)

// Record types the serving stack journals. The journal itself is agnostic —
// any type string works — but sharing the vocabulary here keeps the
// emitters (internal/server), the sampler, and the postmortem analyzer
// (paxinspect) agreeing on names.
const (
	// EvOpen is emitted once per shard at startup: recovery info and, on an
	// epoch-log pool, the replay report including any torn-tail truncation.
	EvOpen = "open"
	// EvSeal is the fail-stop transition: the shard sealed with a
	// durability error and will serve no more writes.
	EvSeal = "seal"
	// EvCommitFailed carries the flight-recorder record of a group commit
	// that exhausted its retries — the record that explains the seal.
	EvCommitFailed = "commit_failed"
	// EvCommitSlow carries the flight-recorder record of a commit over the
	// slow threshold.
	EvCommitSlow = "commit_slow"
	// EvStall marks pipeline-stall onset: the sealer blocked on the commit
	// pipeline's run-ahead bound (media backlog), rate-limited per shard.
	EvStall = "pipeline_stall"
	// Reshard lifecycle: split start/finish and the merge stages matching
	// merge.go's crash windows (drained, published, done).
	EvSplitStart     = "split_start"
	EvSplitDone      = "split_done"
	EvMergeStart     = "merge_start"
	EvMergeDrained   = "merge_drained"
	EvMergePublished = "merge_published"
	EvMergeDone      = "merge_done"
	// EvPolicy is one executed autopilot decision (server.PolicyDecision).
	EvPolicy = "policy_decision"
	// EvSnapshot is the sampler's periodic windowed metrics snapshot.
	EvSnapshot = "snapshot"
	// EvShutdown marks an orderly shutdown: a postmortem that finds it knows
	// the process did not crash.
	EvShutdown = "shutdown"
)

// Snapshot is one windowed metrics sample: per-second rates of the counter
// deltas over the window plus the current histogram quantiles, built with
// stats.Summary.Diff/Rate — the same helpers the reshard autopilot's load
// tracker uses.
type Snapshot struct {
	UnixNano   int64   `json:"unix_nano"`
	DurSeconds float64 `json:"dur_seconds"`
	// OpsPerSec is the serving rate over the window: acked writes (durable +
	// on-apply) plus served GETs per second.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Rates holds the nonzero per-second counter rates over the window;
	// Quantiles the current values of the `{q="..."}` latency series.
	Rates     stats.Summary `json:"rates,omitempty"`
	Quantiles stats.Summary `json:"quantiles,omitempty"`
}

// opsRate sums the serving-rate counters out of a rate summary.
func opsRate(rates stats.Summary) float64 {
	return rates["paxserve_acked_writes"] + rates["paxserve_acked_on_apply"] + rates["paxserve_gets"]
}

// MakeSnapshot windows cur against prev: counter deltas become per-second
// rates (zeros dropped), quantile series are carried at their current value.
func MakeSnapshot(prev, cur stats.Summary, dt time.Duration) Snapshot {
	rates := cur.Diff(prev).Rate(dt)
	for k, v := range rates {
		if v == 0 {
			delete(rates, k)
		}
	}
	quantiles := make(stats.Summary)
	for k, v := range cur {
		if isQuantileKey(k) {
			quantiles[k] = v
		}
	}
	return Snapshot{
		UnixNano:   time.Now().UnixNano(),
		DurSeconds: dt.Seconds(),
		OpsPerSec:  opsRate(rates),
		Rates:      rates,
		Quantiles:  quantiles,
	}
}

// isQuantileKey reports whether a metrics key names a quantile series
// (carries a `q="..."` label).
func isQuantileKey(key string) bool {
	return strings.Contains(key, `{q="`) || strings.Contains(key, `,q="`)
}

// SampleFunc returns the current merged metrics summary.
type SampleFunc func() (stats.Summary, error)

// Sampler periodically journals windowed metrics snapshots. Start one with
// StartSampler; Stop flushes a final snapshot and waits for the goroutine.
type Sampler struct {
	j        *Journal
	sample   SampleFunc
	interval time.Duration

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// StartSampler baselines the counters and starts the snapshot loop. A nil
// sample or non-positive interval is the caller's bug and panics early.
func StartSampler(j *Journal, sample SampleFunc, interval time.Duration) *Sampler {
	if sample == nil || interval <= 0 {
		panic("blackbox: StartSampler needs a sample func and a positive interval")
	}
	s := &Sampler{
		j:        j,
		sample:   sample,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

func (s *Sampler) run() {
	defer close(s.done)
	prev, err := s.sample()
	if err != nil {
		prev = stats.Summary{}
	}
	last := time.Now()
	tick := time.NewTicker(s.interval)
	defer tick.Stop()
	for {
		final := false
		select {
		case <-s.stop:
			final = true
		case <-tick.C:
		}
		now := time.Now()
		cur, err := s.sample()
		if err == nil {
			// Journal-append errors are deliberately dropped here: the
			// sampler must never take down serving, and a dead journal
			// shows up as a gap in the postmortem timeline anyway.
			_ = s.j.AppendJSON(EvSnapshot, MakeSnapshot(prev, cur, now.Sub(last)))
			prev, last = cur, now
		}
		if final {
			return
		}
	}
}

// Stop journals one final snapshot covering the tail window and waits for
// the loop to exit. Idempotent.
func (s *Sampler) Stop() {
	s.stopOnce.Do(func() { close(s.stop) })
	<-s.done
}
