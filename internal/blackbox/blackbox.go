// Package blackbox implements the crash black box: an append-only,
// CRC-framed telemetry journal that survives the process it describes.
//
// The serving stack's observability plane (/metrics, the TRACE flight
// recorder) is volatile — when an engine seals fail-stop or the process is
// killed, the records that explain why die with it. The black box closes
// that gap: lifecycle events (seals, failed commits, reshard transitions,
// policy decisions), periodic windowed metrics snapshots, and the flight
// recorder's failed/slow commit records are appended to a size-bounded
// journal in `<pool>.blackbox/seg-*.bb`, each record fsynced, so a
// postmortem (`paxinspect -postmortem`) can reconstruct the last moments
// from the files alone.
//
// Framing borrows internal/epochlog's discipline, with the journal's own
// magic numbers:
//
//	segment: [segMagic u64 | segVersion u64 | firstSeq u64 | reserved u64]
//	record:  [recMagic u32 | typeLen u32 | seq u64 | unixNano u64 | payloadLen u64]
//	         [type bytes | payload bytes]
//	         [crc32c u32 (header+body) | recCommitMark u64]
//
// Torn-tail rules match the epoch log: a partial, CRC-failing, or unmarked
// record is legal only at the tail of the newest segment (the append the
// crash interrupted) and is truncated away on writable open; anywhere else
// it is corruption. Sequence numbers are contiguous across the surviving
// segments — rotation deletes whole oldest segments, never records — so a
// reader can prove it lost nothing inside the retained window.
package blackbox

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

const (
	// DirSuffix names the journal directory next to a pool file:
	// `<pool>.blackbox/`. One journal serves the whole fleet (events carry
	// their shard), so it sits at the pool path, not per shard file.
	DirSuffix = ".blackbox"

	segMagic      uint64 = 0x5041584242423031 // "PAXBBB01"
	segVersion    uint64 = 1
	segHeaderSize        = 32

	recMagic       uint32 = 0x42424556         // "BBEV"
	recCommitMark  uint64 = 0x5041584243415054 // "PAXBCAPT"
	recHeaderSize         = 32
	recTrailerSize        = 12

	// DefaultSegmentBytes bounds one segment; DefaultMaxSegments bounds the
	// journal (oldest segment deleted on rotation past the cap), so the
	// black box holds the most recent ~8 MiB of telemetry by default.
	DefaultSegmentBytes int64 = 1 << 20
	DefaultMaxSegments        = 8

	// maxTypeLen/maxPayloadLen reject implausible lengths before allocating:
	// a header whose lengths exceed them is torn-tail garbage, not a record.
	maxTypeLen    = 256
	maxPayloadLen = 4 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// segName renders a segment file name; zero-padding keeps lexical order
// numeric.
func segName(index uint64) string { return fmt.Sprintf("seg-%08d.bb", index) }

// Record is one committed journal entry.
type Record struct {
	Seq      uint64
	UnixNano int64
	Type     string
	Payload  []byte
}

// Config parameterizes Open.
type Config struct {
	// Dir is the journal directory (conventionally `<pool>` + DirSuffix).
	Dir string
	// SegmentBytes caps one segment (default DefaultSegmentBytes); the
	// journal rolls to a new segment when an append would exceed it.
	SegmentBytes int64
	// MaxSegments caps the journal (default DefaultMaxSegments, min 2): on
	// rotation the oldest segments beyond the cap are deleted.
	MaxSegments int
	// ReadOnly opens for postmortem analysis: no truncation, no appends,
	// torn tails reported rather than repaired.
	ReadOnly bool
}

// Info summarizes what Open found.
type Info struct {
	Dir      string `json:"dir"`
	Segments int    `json:"segments"`
	Records  int    `json:"records"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	// TornTail reports whether the newest segment ended in an interrupted
	// append (truncated away on writable open); TornBytes is its length.
	TornTail  bool  `json:"torn_tail"`
	TornBytes int64 `json:"torn_bytes"`
}

// segMeta tracks one live segment.
type segMeta struct {
	index    uint64
	firstSeq uint64
	records  int
}

// Journal is an open black box.
type Journal struct {
	dir string
	cfg Config

	mu         sync.Mutex
	f          *os.File // active segment, nil when read-only
	activeSize int64
	segs       []segMeta
	nextSeq    uint64
	firstSeq   uint64
	lastSeq    uint64
	torn       bool
	tornBytes  int64
	closed     bool
}

// Open scans (and, when writable, repairs) the journal at cfg.Dir. A
// writable open creates the directory and first segment as needed and
// truncates a torn tail off the newest segment; a read-only open requires
// the directory to exist and leaves the files untouched.
func Open(cfg Config) (*Journal, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("blackbox: Config.Dir is required")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.SegmentBytes < segHeaderSize+recHeaderSize+recTrailerSize {
		return nil, fmt.Errorf("blackbox: segment size %d too small to hold a record", cfg.SegmentBytes)
	}
	if cfg.MaxSegments <= 0 {
		cfg.MaxSegments = DefaultMaxSegments
	}
	if cfg.MaxSegments < 2 {
		cfg.MaxSegments = 2
	}
	if cfg.ReadOnly {
		if fi, err := os.Stat(cfg.Dir); err != nil {
			return nil, fmt.Errorf("blackbox: %w", err)
		} else if !fi.IsDir() {
			return nil, fmt.Errorf("blackbox: %s is not a directory", cfg.Dir)
		}
	} else if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("blackbox: %w", err)
	}

	indices, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{dir: cfg.Dir, cfg: cfg, nextSeq: 1}
	for i, idx := range indices {
		tailOK := i == len(indices)-1
		path := filepath.Join(cfg.Dir, segName(idx))
		expect := uint64(0) // adopt the oldest segment's header
		if i > 0 {
			expect = j.nextSeq
		}
		meta := segMeta{index: idx}
		next, good, torn, err := scanSegment(path, expect, tailOK, func(rec Record) error {
			if j.firstSeq == 0 {
				j.firstSeq = rec.Seq
			}
			j.lastSeq = rec.Seq
			meta.records++
			return nil
		})
		if err != nil {
			return nil, err
		}
		meta.firstSeq = next - uint64(meta.records)
		j.nextSeq = next
		j.segs = append(j.segs, meta)
		if torn {
			j.torn = true
			if fi, statErr := os.Stat(path); statErr == nil {
				j.tornBytes = fi.Size() - good
			}
			if !cfg.ReadOnly {
				// Repair: drop the interrupted append so the next record
				// lands on a clean boundary, and make the repair durable.
				f, err := os.OpenFile(path, os.O_RDWR, 0o644)
				if err != nil {
					return nil, fmt.Errorf("blackbox: repairing %s: %w", path, err)
				}
				if err := f.Truncate(good); err == nil {
					err = f.Sync()
				}
				if cerr := f.Close(); cerr != nil && err == nil {
					err = cerr
				}
				if err != nil {
					return nil, fmt.Errorf("blackbox: repairing %s: %w", path, err)
				}
			}
		}
		if tailOK {
			j.activeSize = good
		}
	}

	if cfg.ReadOnly {
		return j, nil
	}
	if len(j.segs) == 0 {
		if err := j.newSegmentLocked(1); err != nil {
			return nil, err
		}
		return j, nil
	}
	active := filepath.Join(cfg.Dir, segName(j.segs[len(j.segs)-1].index))
	f, err := os.OpenFile(active, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("blackbox: %w", err)
	}
	j.f = f
	return j, nil
}

// listSegments returns the segment indices present in dir, ascending. A file
// that looks like a segment but does not round-trip through segName is
// rejected rather than silently skipped.
func listSegments(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("blackbox: %w", err)
	}
	var indices []uint64
	for _, e := range entries {
		name := e.Name()
		var idx uint64
		if n, _ := fmt.Sscanf(name, "seg-%d.bb", &idx); n != 1 {
			continue
		}
		if segName(idx) != name {
			return nil, fmt.Errorf("blackbox: malformed segment name %q in %s", name, dir)
		}
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, k int) bool { return indices[i] < indices[k] })
	return indices, nil
}

// scanSegment walks one segment's committed records, calling fn for each.
// expect is the sequence number the first record must carry (0 adopts the
// segment header's firstSeq — used for the oldest surviving segment, whose
// predecessors rotation deleted). It returns the next expected sequence
// number, the byte offset where the committed prefix ends, and whether a
// torn tail follows it. A torn tail is only legal when tailOK (the newest
// segment); anywhere else it is corruption.
func scanSegment(path string, expect uint64, tailOK bool, fn func(Record) error) (next uint64, good int64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("blackbox: %w", err)
	}
	defer f.Close()

	var hdr [segHeaderSize]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, 0, false, fmt.Errorf("blackbox: %s: segment header: %w", path, err)
	}
	if m := binary.LittleEndian.Uint64(hdr[0:8]); m != segMagic {
		return 0, 0, false, fmt.Errorf("blackbox: %s: bad segment magic %#x", path, m)
	}
	if v := binary.LittleEndian.Uint64(hdr[8:16]); v != segVersion {
		return 0, 0, false, fmt.Errorf("blackbox: %s: unsupported segment version %d", path, v)
	}
	firstSeq := binary.LittleEndian.Uint64(hdr[16:24])
	if expect == 0 {
		expect = firstSeq
		if expect == 0 {
			return 0, 0, false, fmt.Errorf("blackbox: %s: segment header firstSeq 0", path)
		}
	} else if firstSeq != expect {
		return 0, 0, false, fmt.Errorf("blackbox: %s: segment starts at seq %d, want %d (records missing between segments)", path, firstSeq, expect)
	}

	good = segHeaderSize
	for {
		var rh [recHeaderSize]byte
		_, err := io.ReadFull(f, rh[:])
		if err == io.EOF {
			return expect, good, false, nil // clean record boundary
		}
		if err == io.ErrUnexpectedEOF || (err == nil && binary.LittleEndian.Uint32(rh[0:4]) != recMagic) {
			break // torn: partial header or garbage where a header should be
		}
		if err != nil {
			return 0, 0, false, fmt.Errorf("blackbox: %s: %w", path, err)
		}
		typeLen := binary.LittleEndian.Uint32(rh[4:8])
		seq := binary.LittleEndian.Uint64(rh[8:16])
		unixNano := int64(binary.LittleEndian.Uint64(rh[16:24]))
		payloadLen := binary.LittleEndian.Uint64(rh[24:32])
		if typeLen == 0 || typeLen > maxTypeLen || payloadLen > maxPayloadLen {
			break // torn: implausible lengths are interrupted-write garbage
		}
		body := make([]byte, int(typeLen)+int(payloadLen)+recTrailerSize)
		if _, err := io.ReadFull(f, body); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break // torn: record cut off mid-body
			}
			return 0, 0, false, fmt.Errorf("blackbox: %s: %w", path, err)
		}
		trailer := body[len(body)-recTrailerSize:]
		crc := crc32.Checksum(rh[:], crcTable)
		crc = crc32.Update(crc, crcTable, body[:len(body)-recTrailerSize])
		if binary.LittleEndian.Uint32(trailer[0:4]) != crc ||
			binary.LittleEndian.Uint64(trailer[4:12]) != recCommitMark {
			break // torn: record present but never fully committed
		}
		// The record is committed; a wrong sequence number here is not a
		// tail the crash tore — it is corruption.
		if seq != expect {
			return 0, 0, false, fmt.Errorf("blackbox: %s: record seq %d, want %d", path, seq, expect)
		}
		rec := Record{
			Seq:      seq,
			UnixNano: unixNano,
			Type:     string(body[:typeLen]),
			Payload:  body[typeLen : uint64(typeLen)+payloadLen],
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return 0, 0, false, err
			}
		}
		expect++
		good += recHeaderSize + int64(len(body))
	}
	if !tailOK {
		return 0, 0, false, fmt.Errorf("blackbox: %s: torn record inside a non-newest segment (corruption, not a crash tail)", path)
	}
	return expect, good, true, nil
}

// Append journals one record durably: framed, CRC'd, marked, fsynced. It
// rolls to a new segment (pruning the oldest past MaxSegments) when the
// active one is full. Safe for concurrent use.
func (j *Journal) Append(typ string, payload []byte) error {
	if typ == "" || len(typ) > maxTypeLen {
		return fmt.Errorf("blackbox: record type %q out of range", typ)
	}
	if len(payload) > maxPayloadLen {
		return fmt.Errorf("blackbox: payload %d bytes exceeds %d", len(payload), maxPayloadLen)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("blackbox: journal closed")
	}
	if j.f == nil {
		return fmt.Errorf("blackbox: journal is read-only")
	}
	size := int64(recHeaderSize + len(typ) + len(payload) + recTrailerSize)
	if j.activeSize+size > j.cfg.SegmentBytes && j.activeSize > segHeaderSize {
		if err := j.rollLocked(); err != nil {
			return err
		}
	}

	buf := make([]byte, size)
	binary.LittleEndian.PutUint32(buf[0:4], recMagic)
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(typ)))
	binary.LittleEndian.PutUint64(buf[8:16], j.nextSeq)
	binary.LittleEndian.PutUint64(buf[16:24], uint64(time.Now().UnixNano()))
	binary.LittleEndian.PutUint64(buf[24:32], uint64(len(payload)))
	copy(buf[recHeaderSize:], typ)
	copy(buf[recHeaderSize+len(typ):], payload)
	crc := crc32.Checksum(buf[:recHeaderSize+len(typ)+len(payload)], crcTable)
	trailer := buf[len(buf)-recTrailerSize:]
	binary.LittleEndian.PutUint32(trailer[0:4], crc)
	binary.LittleEndian.PutUint64(trailer[4:12], recCommitMark)

	if _, err := j.f.WriteAt(buf, j.activeSize); err != nil {
		// Rewind so a partial write does not sit between committed records.
		_ = j.f.Truncate(j.activeSize)
		return fmt.Errorf("blackbox: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		_ = j.f.Truncate(j.activeSize)
		return fmt.Errorf("blackbox: append sync: %w", err)
	}
	if j.firstSeq == 0 {
		j.firstSeq = j.nextSeq
	}
	j.lastSeq = j.nextSeq
	j.nextSeq++
	j.activeSize += size
	j.segs[len(j.segs)-1].records++
	return nil
}

// AppendJSON marshals v and journals it under typ.
func (j *Journal) AppendJSON(typ string, v any) error {
	blob, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("blackbox: encoding %s record: %w", typ, err)
	}
	return j.Append(typ, blob)
}

// rollLocked closes the active segment, starts the next, and prunes the
// oldest segments beyond MaxSegments. Caller holds j.mu.
func (j *Journal) rollLocked() error {
	next := j.segs[len(j.segs)-1].index + 1
	old := j.f
	j.f = nil
	if err := old.Close(); err != nil {
		return fmt.Errorf("blackbox: closing full segment: %w", err)
	}
	if err := j.newSegmentLocked(next); err != nil {
		return err
	}
	for len(j.segs) > j.cfg.MaxSegments {
		victim := j.segs[0]
		if err := os.Remove(filepath.Join(j.dir, segName(victim.index))); err != nil {
			return fmt.Errorf("blackbox: pruning segment %d: %w", victim.index, err)
		}
		j.segs = j.segs[1:]
		j.firstSeq = j.segs[0].firstSeq
	}
	return syncDir(j.dir)
}

// newSegmentLocked creates segment index with a durable header and makes it
// the active one. Caller holds j.mu.
func (j *Journal) newSegmentLocked(index uint64) error {
	path := filepath.Join(j.dir, segName(index))
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	var hdr [segHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], segMagic)
	binary.LittleEndian.PutUint64(hdr[8:16], segVersion)
	binary.LittleEndian.PutUint64(hdr[16:24], j.nextSeq)
	if _, err := f.WriteAt(hdr[:], 0); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("blackbox: new segment: %w", err)
	}
	if err := syncDir(j.dir); err != nil {
		f.Close()
		return err
	}
	j.f = f
	j.activeSize = segHeaderSize
	j.segs = append(j.segs, segMeta{index: index, firstSeq: j.nextSeq})
	return nil
}

// Replay streams every committed record, oldest first. On a read-only
// journal the newest segment's torn tail (if any) is skipped, exactly as a
// writable open would have truncated it.
func (j *Journal) Replay(fn func(Record) error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	expect := uint64(0)
	for i, seg := range j.segs {
		path := filepath.Join(j.dir, segName(seg.index))
		next, _, _, err := scanSegment(path, expect, i == len(j.segs)-1, fn)
		if err != nil {
			return err
		}
		expect = next
	}
	return nil
}

// Info reports the journal's shape as of the last append (or, read-only, as
// of Open).
func (j *Journal) Info() Info {
	j.mu.Lock()
	defer j.mu.Unlock()
	records := 0
	for _, seg := range j.segs {
		records += seg.records
	}
	return Info{
		Dir:       j.dir,
		Segments:  len(j.segs),
		Records:   records,
		FirstSeq:  j.firstSeq,
		LastSeq:   j.lastSeq,
		TornTail:  j.torn,
		TornBytes: j.tornBytes,
	}
}

// Close releases the active segment. Appended records are already durable —
// every Append fsyncs — so Close adds nothing a crash would miss.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f != nil {
		err := j.f.Close()
		j.f = nil
		return err
	}
	return nil
}

// syncDir fsyncs a directory so renames/creates/removes in it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("blackbox: %w", err)
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return fmt.Errorf("blackbox: dir sync: %w", err)
	}
	return d.Close()
}
