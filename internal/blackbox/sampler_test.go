package blackbox

import (
	"path/filepath"
	"testing"
	"time"

	"pax/internal/stats"
)

func TestMakeSnapshot(t *testing.T) {
	prev := stats.Summary{
		"paxserve_acked_writes": 1000,
		"paxserve_gets":         200,
		"paxserve_splits":       1,
	}
	cur := stats.Summary{
		"paxserve_acked_writes":       1600,
		"paxserve_gets":               400,
		"paxserve_splits":             1, // unchanged: zero rate must be dropped
		`paxserve_commit_ns{q="p99"}`: 123456,
	}
	s := MakeSnapshot(prev, cur, 2*time.Second)
	if s.UnixNano == 0 || s.DurSeconds != 2 {
		t.Fatalf("snapshot header = %+v", s)
	}
	if s.OpsPerSec != 400 { // (600 writes + 200 gets) / 2s
		t.Fatalf("OpsPerSec = %v, want 400", s.OpsPerSec)
	}
	if s.Rates["paxserve_acked_writes"] != 300 || s.Rates["paxserve_gets"] != 100 {
		t.Fatalf("rates = %v", s.Rates)
	}
	if _, ok := s.Rates["paxserve_splits"]; ok {
		t.Fatalf("flat counter produced a rate entry: %v", s.Rates)
	}
	if s.Quantiles[`paxserve_commit_ns{q="p99"}`] != 123456 {
		t.Fatalf("quantiles = %v", s.Quantiles)
	}
}

func TestSamplerWritesSnapshots(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "bb")
	j := mustOpen(t, Config{Dir: dir})
	defer j.Close()

	calls := 0
	sample := func() (stats.Summary, error) {
		calls++
		return stats.Summary{"paxserve_acked_writes": float64(calls) * 100}, nil
	}
	s := StartSampler(j, sample, 10*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	s.Stop()
	s.Stop() // idempotent

	snaps := 0
	err := j.Replay(func(rec Record) error {
		if rec.Type == EvSnapshot {
			snaps++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// At least one periodic tick plus the Stop flush.
	if snaps < 2 {
		t.Fatalf("sampler wrote %d snapshots in 60ms at 10ms interval", snaps)
	}
}
