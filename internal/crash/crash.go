// Package crash implements exhaustive crash-point exploration for PAX pools.
//
// The harness records every media write a scenario performs (ADR means the
// media is exactly the durable state), so any prefix of the write sequence
// is a legal post-crash image. For each explored crash point it rebuilds
// that image, runs pool recovery on it, and checks the §3.3 guarantee: the
// recovered data region is byte-identical to the snapshot taken by the last
// persist() whose epoch-commit write landed before the crash. A torn-write
// variant additionally truncates the final write to an 8-byte-aligned
// prefix, exercising checksum rejection of partially persisted records.
package crash

import (
	"bytes"
	"fmt"

	"pax/internal/core"
	"pax/internal/pmem"
)

type writeRec struct {
	addr uint64
	data []byte
}

// Harness wraps a pool whose media writes are recorded for crash replay.
type Harness struct {
	Opts core.Options
	PM   *pmem.Device
	Pool *core.Pool

	size    int
	dataOff uint64

	writes []writeRec
	// persistMarks[i] is the write count at the moment persist i completed.
	persistMarks []int
}

// NewHarness creates a recorded pool. The pool's Create-time writes are part
// of the recorded history (epoch 1 is the first recoverable snapshot).
func NewHarness(opts core.Options) (*Harness, error) {
	size := int(core.HeaderSize + opts.LogSize + opts.DataSize)
	pm := pmem.New(pmem.DefaultConfig(size))
	h := &Harness{
		Opts:    opts,
		PM:      pm,
		size:    size,
		dataOff: core.HeaderSize + opts.LogSize,
	}
	pm.SetWriteHook(func(addr uint64, data []byte) {
		h.writes = append(h.writes, writeRec{addr: addr, data: append([]byte(nil), data...)})
		// The snapshot boundary is the epoch-cell write itself: a crash
		// any time after it recovers to the new epoch, even though the
		// persist call has more (log-truncation) writes to issue.
		if addr == core.EpochCellOffset && len(data) == 8 {
			h.persistMarks = append(h.persistMarks, len(h.writes))
		}
	})
	pool, err := core.Create(pm, opts)
	if err != nil {
		return nil, err
	}
	h.Pool = pool
	return h, nil
}

// Persist commits an epoch; the write hook records the snapshot boundary at
// the exact epoch-cell write.
func (h *Harness) Persist() {
	h.Pool.Persist()
}

// CrashPoints reports the number of distinct post-crash images (one per
// recorded write, crashing immediately after it).
func (h *Harness) CrashPoints() int { return len(h.writes) }

// imageAt reconstructs the media image after the first k writes; if
// tearLast, the k-th write lands only up to an 8-byte-aligned prefix (the
// remaining atomic units keep their prior contents).
func (h *Harness) imageAt(k int, tearLast bool) []byte {
	img := make([]byte, h.size)
	for i := 0; i < k; i++ {
		w := h.writes[i]
		if tearLast && i == k-1 {
			// PM tears at 8-byte units: units that did not land keep their
			// OLD contents (already in img), they do not turn to garbage.
			keep := (len(w.data) / 2) &^ 7
			copy(img[w.addr:], w.data[:keep])
			continue
		}
		copy(img[w.addr:], w.data)
	}
	return img
}

// goldenFor reports the data-region snapshot expected after recovering from
// a crash at write k: the data region as of the last persist completed at or
// before k. ok=false when no persist has completed (the pool was never
// created durably — recovery is allowed to fail).
func (h *Harness) goldenFor(k int) ([]byte, bool) {
	last := -1
	for _, m := range h.persistMarks {
		if m <= k {
			last = m
		}
	}
	if last < 0 {
		return nil, false
	}
	img := h.imageAt(last, false)
	return img[h.dataOff : h.dataOff+uint64(h.Opts.DataSize)], true
}

// VerifyPoint checks one crash point: build the image, recover, compare.
func (h *Harness) VerifyPoint(k int, tearLast bool) error {
	golden, ok := h.goldenFor(k)
	img := h.imageAt(k, tearLast)
	if tearLast && len(h.writes[k-1].data) == 8 {
		// An 8-byte write is atomic: the torn variant removes it entirely,
		// so the expectation is the state at k-1 (which matters exactly
		// when write k is an epoch-cell commit).
		golden, ok = h.goldenFor(k - 1)
	}
	pm := pmem.New(pmem.DefaultConfig(h.size))
	pm.Restore(img)
	pool, err := core.Open(pm, h.Opts)
	if !ok {
		if err == nil {
			return fmt.Errorf("crash at write %d: pool with no durable snapshot opened successfully", k)
		}
		return nil
	}
	if err != nil {
		return fmt.Errorf("crash at write %d (tear=%v): recovery failed: %v", k, tearLast, err)
	}
	_ = pool
	got := pm.Snapshot()[h.dataOff : h.dataOff+uint64(h.Opts.DataSize)]
	if !bytes.Equal(got, golden) {
		for i := range got {
			if got[i] != golden[i] {
				return fmt.Errorf("crash at write %d (tear=%v): data diverges from last snapshot at offset %d: got %#x want %#x",
					k, tearLast, i, got[i], golden[i])
			}
		}
	}
	return nil
}

// VerifyAll explores crash points k = 1..CrashPoints() with the given stride
// (1 = exhaustive), each in both clean and torn-final-write variants, and
// returns the first violation.
func (h *Harness) VerifyAll(stride int) error {
	if stride < 1 {
		stride = 1
	}
	n := h.CrashPoints()
	for k := 1; k <= n; k += stride {
		if err := h.VerifyPoint(k, false); err != nil {
			return err
		}
		if err := h.VerifyPoint(k, true); err != nil {
			return err
		}
	}
	// Always check the final state exactly.
	return h.VerifyPoint(n, false)
}
