package crash

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"pax/internal/structures"
)

// TestPipelinedPersistCrashProperty drives the §6 non-blocking persist
// through crash exploration: with overlapping epochs, every crash point must
// still recover to the most recent epoch whose commit-cell write landed.
// The harness marks snapshot boundaries at the epoch-cell write itself, so
// pipelined commits are handled with no special cases.
func TestPipelinedPersistCrashProperty(t *testing.T) {
	h, err := NewHarness(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := h.Pool.Allocator().Alloc(4096)
	m := h.Pool.Mem(0)
	for epoch := 0; epoch < 6; epoch++ {
		for i := uint64(0); i < 24; i++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(epoch)<<32|i)
			m.Store(addr+i*64, b[:])
		}
		h.Pool.PersistPipelined()
	}
	h.Pool.Persist() // final barrier
	if err := h.VerifyAll(1); err != nil {
		t.Fatal(err)
	}
}

// TestRandomWorkloadCrashProperty is the repository's strongest correctness
// statement: for several random workloads (random structure ops, random
// persist cadence), EVERY sampled crash point — clean or torn — recovers to
// exactly the last committed snapshot.
func TestRandomWorkloadCrashProperty(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			h, err := NewHarness(testOptions())
			if err != nil {
				t.Fatal(err)
			}
			hm, err := structures.NewHashMap(h.Pool.Arena(), 16)
			if err != nil {
				t.Fatal(err)
			}
			vec, err := structures.NewVector(h.Pool.Arena(), 8, 8)
			if err != nil {
				t.Fatal(err)
			}
			h.Pool.SetRoot(0, hm.Addr())
			h.Pool.SetRoot(1, vec.Addr())

			key := func(i int) []byte {
				b := make([]byte, 8)
				binary.LittleEndian.PutUint64(b, uint64(i))
				return b
			}
			ops := 60 + rng.Intn(60)
			sincePersist := 0
			for i := 0; i < ops; i++ {
				switch rng.Intn(6) {
				case 0, 1, 2:
					if err := hm.Put(key(rng.Intn(40)), key(rng.Intn(1000))); err != nil {
						t.Fatal(err)
					}
				case 3:
					hm.Delete(key(rng.Intn(40)))
				case 4:
					var b [8]byte
					binary.LittleEndian.PutUint64(b[:], rng.Uint64())
					if err := vec.Push(b[:]); err != nil {
						t.Fatal(err)
					}
				case 5:
					var b [8]byte
					vec.Pop(b[:])
				}
				sincePersist++
				if sincePersist >= 5+rng.Intn(20) {
					h.Persist()
					sincePersist = 0
				}
			}
			h.Persist()
			if err := h.VerifyAll(7); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		})
	}
}
