package crash

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"pax/internal/core"
	"pax/internal/device"
	"pax/internal/hbm"
	"pax/internal/pmem"
	"pax/internal/sim"
	"pax/internal/structures"
)

func newRestoredDevice(h *Harness, img []byte) *pmem.Device {
	pm := pmem.New(pmem.DefaultConfig(h.size))
	pm.Restore(img)
	return pm
}

func testOptions() core.Options {
	return core.Options{
		DataSize: 256 << 10,
		LogSize:  256 << 10,
		Device:   device.Config{Link: sim.CXLLink, HBMSize: 16 << 10, HBMWays: 4, Policy: hbm.PreferDurable},
		Host:     sim.SmallHost(),
	}
}

func TestExhaustiveCrashPointsSimpleWrites(t *testing.T) {
	h, err := NewHarness(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := h.Pool.Allocator().Alloc(1024)
	m := h.Pool.Mem(0)
	for epoch := 0; epoch < 3; epoch++ {
		for i := uint64(0); i < 16; i++ {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(epoch)*1000+i)
			m.Store(addr+i*64, b[:])
		}
		h.Persist()
	}
	if h.CrashPoints() == 0 {
		t.Fatal("no writes recorded")
	}
	// Exhaustive: every crash point, clean and torn.
	if err := h.VerifyAll(1); err != nil {
		t.Fatal(err)
	}
}

func TestCrashPointsWithHashMap(t *testing.T) {
	h, err := NewHarness(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	hm, err := structures.NewHashMap(h.Pool.Arena(), 16)
	if err != nil {
		t.Fatal(err)
	}
	h.Pool.SetRoot(0, hm.Addr())
	rng := rand.New(rand.NewSource(5))
	key := func(i int) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(i))
		return b
	}
	for epoch := 0; epoch < 4; epoch++ {
		for op := 0; op < 12; op++ {
			k := rng.Intn(30)
			switch rng.Intn(3) {
			case 0, 1:
				if err := hm.Put(key(k), key(k+1000)); err != nil {
					t.Fatal(err)
				}
			case 2:
				hm.Delete(key(k))
			}
		}
		h.Persist()
	}
	// Structural mutations generate hundreds of media writes; verify every
	// 3rd point exhaustively in both variants plus the endpoints.
	if err := h.VerifyAll(3); err != nil {
		t.Fatal(err)
	}
}

func TestCrashDuringEvictionPressure(t *testing.T) {
	// HBM is 16 KiB; touch 128 KiB per epoch so mid-epoch write-backs hit
	// the media continuously — the §3.3 "no working set limit" path.
	h, err := NewHarness(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := h.Pool.Allocator().Alloc(128 << 10)
	m := h.Pool.Mem(0)
	for epoch := 0; epoch < 2; epoch++ {
		for off := uint64(0); off < 128<<10; off += 64 {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(epoch)<<32|off)
			m.Store(addr+off, b[:])
		}
		h.Persist()
	}
	if err := h.VerifyAll(17); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveredPoolIsUsable(t *testing.T) {
	h, err := NewHarness(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	hm, _ := structures.NewHashMap(h.Pool.Arena(), 16)
	h.Pool.SetRoot(0, hm.Addr())
	hm.Put([]byte("durable!"), []byte("yes"))
	h.Persist()
	hm.Put([]byte("volatile"), []byte("gone"))

	// Crash at the final write, recover, and keep using the pool.
	img := h.imageAt(h.CrashPoints(), false)
	pm2 := newRestoredDevice(h, img)
	pool2, err := core.Open(pm2, h.Opts)
	if err != nil {
		t.Fatal(err)
	}
	hm2 := structures.OpenHashMap(pool2.Arena(), pool2.Root(0))
	if v, ok := hm2.Get([]byte("durable!")); !ok || string(v) != "yes" {
		t.Fatalf("durable entry lost: %q %v", v, ok)
	}
	if _, ok := hm2.Get([]byte("volatile")); ok {
		t.Fatal("unpersisted entry survived")
	}
	// The recovered pool accepts new work and persists again.
	if err := hm2.Put([]byte("after"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	pool2.Persist()
	if v, ok := hm2.Get([]byte("after")); !ok || string(v) != "crash" {
		t.Fatal("post-recovery put lost")
	}
}

func TestCheckerDetectsMisplacedSnapshotBoundary(t *testing.T) {
	// The checker itself must be sensitive: if a snapshot boundary is
	// misplaced to before the epoch's write-backs completed, the golden
	// image diverges from what recovery actually produces and VerifyAll
	// must fail.
	h, err := NewHarness(testOptions())
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := h.Pool.Allocator().Alloc(1024)
	m := h.Pool.Mem(0)
	for i := uint64(0); i < 16; i++ {
		m.Store(addr+i*64, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	}
	h.Persist()
	for i := uint64(0); i < 16; i++ {
		m.Store(addr+i*64, []byte{2, 2, 2, 2, 2, 2, 2, 2})
	}
	h.Persist()

	if err := h.VerifyAll(1); err != nil {
		t.Fatalf("sanity: untampered history must verify: %v", err)
	}
	// Misplace the final boundary into the middle of its epoch's
	// write-back phase.
	last := len(h.persistMarks) - 1
	h.persistMarks[last] -= 10
	if err := h.VerifyAll(1); err == nil {
		t.Fatal("checker accepted a misplaced snapshot boundary")
	}
}
