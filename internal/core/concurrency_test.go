package core

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"

	"pax/internal/structures"
)

// §3.5: PAX supports concurrent threads as long as the data structure code
// is thread safe and persist() runs with no mutators in flight. These tests
// drive real goroutines over per-core memory views.

func TestConcurrentDisjointWriters(t *testing.T) {
	pm, p := newTestPool(t)
	cores := p.Hierarchy().NumCores()
	const perThread = 4096 // bytes per thread

	addrs := make([]uint64, cores)
	for i := range addrs {
		a, err := p.Allocator().Alloc(perThread)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
	}

	var wg sync.WaitGroup
	for i := 0; i < cores; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := p.Mem(id)
			for off := uint64(0); off < perThread; off += 8 {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(id)<<32|off)
				m.Store(addrs[id]+off, b[:])
			}
		}(i)
	}
	wg.Wait()

	// Quiescent point: persist, crash, recover, verify everything.
	for i, a := range addrs {
		p.SetRoot(i, a)
	}
	p.Persist()
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := p2.Mem(0)
	for id := 0; id < cores; id++ {
		base := p2.Root(id)
		for off := uint64(0); off < perThread; off += 512 {
			if got := loadU64(m, base+off); got != uint64(id)<<32|off {
				t.Fatalf("thread %d offset %d: %#x", id, off, got)
			}
		}
	}
}

func TestConcurrentSharedStructure(t *testing.T) {
	pm, p := newTestPool(t)
	hm, err := structures.NewHashMap(p.Arena(), 64)
	if err != nil {
		t.Fatal(err)
	}
	p.SetRoot(0, hm.Addr())

	// Thread-safe usage per §3.5: callers serialize; each thread drives the
	// SAME structure through its own timed memory view.
	var mu sync.Mutex
	var wg sync.WaitGroup
	cores := p.Hierarchy().NumCores()
	const perThread = 200
	for i := 0; i < cores; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			view := hm.WithMem(p.Mem(id))
			for j := 0; j < perThread; j++ {
				k := []byte(fmt.Sprintf("t%d-k%03d", id, j))
				v := []byte(fmt.Sprintf("t%d-v%03d", id, j))
				mu.Lock()
				err := view.Put(k, v)
				mu.Unlock()
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	if hm.Len() != uint64(cores*perThread) {
		t.Fatalf("len = %d, want %d", hm.Len(), cores*perThread)
	}
	p.Persist()

	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	hm2 := structures.OpenHashMap(p2.Arena(), p2.Root(0))
	if hm2.Len() != uint64(cores*perThread) {
		t.Fatalf("recovered len = %d", hm2.Len())
	}
	for id := 0; id < cores; id++ {
		for j := 0; j < perThread; j += 37 {
			k := []byte(fmt.Sprintf("t%d-k%03d", id, j))
			want := fmt.Sprintf("t%d-v%03d", id, j)
			if got, ok := hm2.Get(k); !ok || string(got) != want {
				t.Fatalf("key %s = %q %v", k, got, ok)
			}
		}
	}
}

func TestConcurrentReadersDuringWrites(t *testing.T) {
	_, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(64)
	storeU64(p.Mem(0), addr, 42)

	// One writer on core 0, readers on the others; readers must always see
	// a monotonically advancing value the writer actually wrote (coherence,
	// no torn 8-byte reads).
	stop := make(chan struct{})
	var writerWg, readerWg sync.WaitGroup
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		m := p.Mem(0)
		for v := uint64(42); ; v++ {
			select {
			case <-stop:
				return
			default:
			}
			storeU64(m, addr, v)
		}
	}()
	for i := 1; i < p.Hierarchy().NumCores(); i++ {
		readerWg.Add(1)
		go func(id int) {
			defer readerWg.Done()
			m := p.Mem(id)
			var prev uint64
			for n := 0; n < 500; n++ {
				got := loadU64(m, addr)
				if got < 42 {
					t.Errorf("reader %d saw impossible value %d", id, got)
					return
				}
				if got < prev {
					t.Errorf("reader %d saw time travel: %d after %d", id, got, prev)
					return
				}
				prev = got
			}
		}(i)
	}
	readerWg.Wait()
	close(stop)
	writerWg.Wait()
}
