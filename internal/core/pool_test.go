package core

import (
	"encoding/binary"
	"testing"

	"pax/internal/device"
	"pax/internal/hbm"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
)

// testOptions returns a small, fast pool configuration.
func testOptions() Options {
	return Options{
		DataSize: 1 << 20,
		LogSize:  1 << 20,
		Device:   device.Config{Link: sim.CXLLink, HBMSize: 64 << 10, HBMWays: 4, Policy: hbm.PreferDurable},
		Host:     sim.SmallHost(),
	}
}

func newTestPool(t *testing.T) (*pmem.Device, *Pool) {
	t.Helper()
	opts := testOptions()
	pm := pmem.New(pmem.DefaultConfig(int(HeaderSize + opts.LogSize + opts.DataSize)))
	p, err := Create(pm, opts)
	if err != nil {
		t.Fatal(err)
	}
	return pm, p
}

func storeU64(m memory.Memory, addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	m.Store(addr, b[:])
}

func loadU64(m memory.Memory, addr uint64) uint64 {
	var b [8]byte
	m.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func TestCreateProducesDurableEmptyPool(t *testing.T) {
	pm, p := newTestPool(t)
	if p.DurableEpoch() != 1 {
		t.Fatalf("durable epoch after create = %d, want 1", p.DurableEpoch())
	}
	if p.Epoch() != 2 {
		t.Fatalf("current epoch = %d, want 2", p.Epoch())
	}
	// Immediate crash + reopen must find a valid empty pool.
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < RootSlots; i++ {
		if p2.Root(i) != 0 {
			t.Fatalf("root %d = %#x, want 0", i, p2.Root(i))
		}
	}
}

func TestPersistThenRecoverKeepsData(t *testing.T) {
	pm, p := newTestPool(t)
	addr, err := p.Allocator().Alloc(256)
	if err != nil {
		t.Fatal(err)
	}
	m := p.Mem(0)
	for i := uint64(0); i < 32; i++ {
		storeU64(m, addr+i*8, 1000+i)
	}
	p.SetRoot(0, addr)
	p.Persist()

	// Crash: all volatile state (caches, device buffers) is dropped.
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	root := p2.Root(0)
	if root != addr {
		t.Fatalf("root = %#x, want %#x", root, addr)
	}
	m2 := p2.Mem(0)
	for i := uint64(0); i < 32; i++ {
		if got := loadU64(m2, root+i*8); got != 1000+i {
			t.Fatalf("word %d = %d, want %d", i, got, 1000+i)
		}
	}
}

func TestUnpersistedEpochRollsBack(t *testing.T) {
	pm, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(64)
	m := p.Mem(0)
	storeU64(m, addr, 111)
	p.SetRoot(0, addr)
	p.Persist() // snapshot: value 111

	storeU64(m, addr, 222) // modified but never persisted
	// Force the dirty line through to media to prove rollback works even
	// when unpersisted data reached PM: flush host caches so the device
	// receives the write-back, then persist nothing.
	p.Hierarchy().FlushAll(0)

	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := loadU64(p2.Mem(0), addr); got != 111 {
		t.Fatalf("recovered value %d, want 111 (rollback)", got)
	}
	if p2.Recovery().LinesRolledBack == 0 {
		t.Fatal("recovery reported no rolled-back lines")
	}
}

func TestSnapshotIsAtomicAcrossLines(t *testing.T) {
	pm, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(4096) // spans many lines
	m := p.Mem(0)
	for i := uint64(0); i < 512; i++ {
		storeU64(m, addr+i*8, 1)
	}
	p.SetRoot(0, addr)
	p.Persist() // snapshot A: all ones

	for i := uint64(0); i < 512; i++ {
		storeU64(m, addr+i*8, 2)
	}
	// Crash mid-epoch (some lines may be written back by eviction pressure).
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	m2 := p2.Mem(0)
	for i := uint64(0); i < 512; i++ {
		if got := loadU64(m2, addr+i*8); got != 1 {
			t.Fatalf("word %d = %d, want 1: snapshot not atomic", i, got)
		}
	}
}

func TestSuccessiveEpochs(t *testing.T) {
	pm, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(64)
	p.SetRoot(0, addr)
	m := p.Mem(0)
	for v := uint64(1); v <= 5; v++ {
		storeU64(m, addr, v)
		rep, err := p.Persist()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Epoch != v+1 { // epoch 1 was the create snapshot
			t.Fatalf("persist %d ran in epoch %d", v, rep.Epoch)
		}
	}
	if p.DurableEpoch() != 6 {
		t.Fatalf("durable epoch = %d", p.DurableEpoch())
	}
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := loadU64(p2.Mem(0), addr); got != 5 {
		t.Fatalf("recovered %d, want 5", got)
	}
	if p2.Epoch() != 7 {
		t.Fatalf("resumed epoch = %d, want 7", p2.Epoch())
	}
}

func TestAllocatorStateRollsBackWithSnapshot(t *testing.T) {
	pm, p := newTestPool(t)
	a1, _ := p.Allocator().Alloc(64)
	p.SetRoot(0, a1)
	p.Persist()
	brkAt1 := p.Arena().Brk()

	// Unpersisted allocations must vanish on recovery.
	p.Allocator().Alloc(64)
	p.Allocator().Alloc(64)
	if p.Arena().Brk() == brkAt1 {
		t.Fatal("allocations did not move brk")
	}
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Arena().Brk(); got != brkAt1 {
		t.Fatalf("recovered brk %#x, want %#x (allocator rollback)", got, brkAt1)
	}
	// The next allocation reuses the rolled-back space.
	a2, _ := p2.Allocator().Alloc(64)
	if a2 >= p.Arena().Brk() && a2 != 0 {
		t.Fatalf("post-recovery allocation %#x beyond rolled-back brk", a2)
	}
}

func TestRootsRollBack(t *testing.T) {
	pm, p := newTestPool(t)
	a1, _ := p.Allocator().Alloc(64)
	p.SetRoot(3, a1)
	p.Persist()
	a2, _ := p.Allocator().Alloc(64)
	p.SetRoot(3, a2) // unpersisted root update
	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := p2.Root(3); got != a1 {
		t.Fatalf("root = %#x, want rolled-back %#x", got, a1)
	}
}

func TestRootSlotValidation(t *testing.T) {
	_, p := newTestPool(t)
	for _, f := range []func(){
		func() { p.SetRoot(-1, 0) },
		func() { p.SetRoot(RootSlots, 0) },
		func() { p.Root(99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	pm := pmem.New(pmem.DefaultConfig(1 << 20))
	if _, err := Open(pm, testOptions()); err == nil {
		t.Fatal("opened an unformatted device")
	}
	// Corrupt header CRC on a real pool.
	pm2, p := newTestPool(t)
	_ = p
	pm2.Write(offTotalSize, []byte{1, 2, 3}, 0)
	if _, err := Open(pm2, testOptions()); err == nil {
		t.Fatal("opened pool with corrupt header")
	}
}

func TestCreateValidation(t *testing.T) {
	pm := pmem.New(pmem.DefaultConfig(1 << 20))
	opts := testOptions()
	opts.DataSize = 0
	if _, err := Create(pm, opts); err == nil {
		t.Fatal("zero data size accepted")
	}
	opts = testOptions()
	opts.DataSize = 1 << 30 // larger than device
	if _, err := Create(pm, opts); err == nil {
		t.Fatal("oversized pool accepted")
	}
}

func TestPersistReportCounts(t *testing.T) {
	_, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(1024)
	m := p.Mem(0)
	for i := uint64(0); i < 16; i++ { // touch 2 lines per iteration boundary
		storeU64(m, addr+i*64, i)
	}
	rep, err := p.Persist()
	if err != nil {
		t.Fatal(err)
	}
	if rep.LinesSnooped < 16 {
		t.Fatalf("snooped %d lines, want ≥16", rep.LinesSnooped)
	}
	if rep.LinesWritten == 0 && rep.LinesDirty == 0 {
		t.Fatal("persist wrote nothing")
	}
	if rep.Done <= 0 {
		t.Fatal("no completion time")
	}
}

func TestWorkingSetLargerThanHBM(t *testing.T) {
	// The §3.3 claim: per-epoch working sets are not limited by device
	// buffer capacity. HBM here is 64 KiB; modify 512 KiB in one epoch.
	pm, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(512 << 10)
	p.SetRoot(0, addr)
	m := p.Mem(0)
	lines := (512 << 10) / 64
	for i := 0; i < lines; i++ {
		storeU64(m, addr+uint64(i*64), uint64(i)+7)
	}
	p.Persist()

	p2, err := Open(pm, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	m2 := p2.Mem(0)
	for i := 0; i < lines; i += 97 { // spot check
		if got := loadU64(m2, addr+uint64(i*64)); got != uint64(i)+7 {
			t.Fatalf("line %d = %d, want %d", i, got, uint64(i)+7)
		}
	}
}

func TestMultiThreadViews(t *testing.T) {
	_, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(64)
	m0, m1 := p.Mem(0), p.Mem(1)
	storeU64(m0, addr, 42)
	if got := loadU64(m1, addr); got != 42 {
		t.Fatalf("core 1 sees %d, want 42 (coherence)", got)
	}
}
