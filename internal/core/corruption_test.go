package core

import (
	"math/rand"
	"testing"

	"pax/internal/pmem"
	"pax/internal/undolog"
)

// Recovery must never scribble outside the data region, even when handed a
// log whose (checksummed) entries point elsewhere.
func TestRecoveryRejectsOutOfRangeUndoEntry(t *testing.T) {
	pm, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(64)
	storeU64(p.Mem(0), addr, 1)
	p.Persist()

	// Forge a valid-looking undo entry aimed at the pool header.
	log, err := undolog.Open(pm, HeaderSize, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	var evil [64]byte
	if _, _, err := log.Append(p.Epoch(), 0 /* header! */, evil, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pm, testOptions()); err == nil {
		t.Fatal("recovery accepted an out-of-range undo entry")
	}
}

// Random corruption of a pool image must never panic: Open either succeeds
// (the corruption hit dead space) or returns an error.
func TestOpenSurvivesRandomCorruption(t *testing.T) {
	pm, p := newTestPool(t)
	addr, _ := p.Allocator().Alloc(4096)
	m := p.Mem(0)
	for i := uint64(0); i < 64; i++ {
		storeU64(m, addr+i*64, i)
	}
	p.SetRoot(0, addr)
	p.Persist()
	clean := pm.Snapshot()

	rng := rand.New(rand.NewSource(31337))
	for trial := 0; trial < 200; trial++ {
		img := append([]byte(nil), clean...)
		// Flip 1-16 random bytes anywhere in the image.
		for n := 0; n < 1+rng.Intn(16); n++ {
			img[rng.Intn(len(img))] ^= byte(1 + rng.Intn(255))
		}
		pm2 := clonePM(t, img)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("trial %d: Open panicked: %v", trial, r)
				}
			}()
			pool, err := Open(pm2, testOptions())
			if err != nil {
				return // rejected: fine
			}
			// Opened: basic reads must not panic either.
			var b [8]byte
			pool.Mem(0).Load(pool.DataBase(), b[:])
		}()
	}
}

func clonePM(t *testing.T, img []byte) *pmem.Device {
	t.Helper()
	pm := pmem.New(pmem.DefaultConfig(len(img)))
	pm.Restore(img)
	return pm
}
