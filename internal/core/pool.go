// Package core implements libpax (§3 of the paper): pool layout, the
// programming model that turns a mapped vPM region plus a PAX device into
// crash-consistent snapshots of arbitrary data structures, the persist()
// orchestration, and the §3.4 recovery procedure.
//
// Pool media layout:
//
//	[ header 4 KiB | undo log | data region (vPM) ]
//
// The vPM region is mapped into the host address space at an address equal
// to its media offset (identity mapping), so pointers stored inside the
// region remain valid across restarts. The data region holds the pool
// allocator's metadata and a 16-slot root-object table as ordinary vPM data,
// which makes allocator state and roots crash-consistent with no special
// handling: they roll back with the snapshot like everything else.
package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"time"

	"pax/internal/alloc"
	"pax/internal/cache"
	"pax/internal/device"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
	"pax/internal/stats"
	"pax/internal/undolog"
	"pax/internal/vpm"
)

const (
	// HeaderSize is the pool header region size.
	HeaderSize = 4096
	// RootSlots is the number of named root-object slots.
	RootSlots = 16
	// EpochCellOffset is the media offset of the 8-byte durable-epoch cell;
	// crash-exploration tooling watches writes to it to find snapshot
	// boundaries.
	EpochCellOffset = 56

	poolMagic   = 0x5041585034f4f4c1 // "PAXP…" tag
	poolVersion = 1

	offMagic        = 0
	offVersion      = 8
	offTotalSize    = 16
	offLogOff       = 24
	offLogSize      = 32
	offDataOff      = 40
	offDataSize     = 48
	offDurableEpoch = 56
	offHeaderCRC    = 64
	// headerCRCSpan covers the immutable geometry fields only; the
	// durable-epoch cell at offset 56 changes on every persist and is
	// protected by its own atomicity (single 8-byte store), not the CRC.
	headerCRCSpan = 56
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options parameterize pool creation and opening.
type Options struct {
	// DataSize is the vPM data region size; LogSize the undo log region
	// size. Only Create uses them; Open reads geometry from the header.
	DataSize, LogSize uint64
	// Device configures the PAX accelerator.
	Device device.Config
	// Host configures the simulated host cache hierarchy.
	Host sim.HostProfile
}

// DefaultOptions returns a 64 MiB pool with an 8 MiB undo log on a
// CXL-class device and the c6420-class host.
func DefaultOptions() Options {
	return Options{
		DataSize: 64 << 20,
		LogSize:  8 << 20,
		Device:   device.DefaultConfig(),
		Host:     sim.DefaultHost(),
	}
}

// RecoveryReport describes what Open had to repair.
type RecoveryReport struct {
	DurableEpoch    uint64
	EntriesScanned  int
	LinesRolledBack int
}

// Pool is an open PAX pool: media, device, host hierarchy, allocator, roots.
type Pool struct {
	pm   *pmem.Device
	hier *cache.Hierarchy
	dev  *device.Device
	aren *alloc.Arena

	logOff, logSize   uint64
	dataOff, dataSize uint64
	rootTable         uint64

	recovered RecoveryReport
	timings   PersistTimings
}

// PersistTimings are per-stage persist latencies, recorded on every Persist /
// PersistPipelined call. DeviceNS and SyncNS are wall-clock nanoseconds — the
// real time the serving host spends in each stage, which is what a latency
// budget for the group-commit engine is made of. LogWaitPS is the *simulated*
// picoseconds the device stalled waiting for undo-log durability (the §3.3
// asynchronous-logging claim: this should stay near zero when logging keeps
// up with the mutation rate). Histograms are lock-free and safe to sample
// concurrently with a persist in flight.
type PersistTimings struct {
	DeviceNS  stats.LatencyHistogram // snoop + log wait + write-back (device side)
	SyncNS    stats.LatencyHistogram // media commit (pmem.Sync, all stages)
	LogWaitPS stats.LatencyHistogram // simulated undo-durability stall
	// SyncBytes is not a latency at all but rides the same lock-free
	// histogram machinery: bytes persisted per media commit. Full-image mode
	// pins it at the pool size; epoch-log mode makes it O(dirty), which is
	// the whole point — the quantiles read out the write amplification.
	SyncBytes stats.LatencyHistogram
}

func headerField(pm *pmem.Device, off uint64) uint64 {
	var b [8]byte
	pm.Read(off, b[:], 0)
	return binary.LittleEndian.Uint64(b[:])
}

// Create formats a fresh pool on pm and returns it ready for use. pm must be
// at least HeaderSize + LogSize + DataSize bytes; existing contents are
// overwritten.
func Create(pm *pmem.Device, opts Options) (*Pool, error) {
	if opts.DataSize == 0 || opts.LogSize == 0 {
		return nil, fmt.Errorf("core: zero region size (data %d, log %d)", opts.DataSize, opts.LogSize)
	}
	if opts.DataSize%cache.LineSize != 0 || opts.LogSize%cache.LineSize != 0 {
		return nil, fmt.Errorf("core: region sizes must be line-aligned")
	}
	need := HeaderSize + opts.LogSize + opts.DataSize
	if uint64(pm.Size()) < need {
		return nil, fmt.Errorf("core: device of %d bytes < pool of %d", pm.Size(), need)
	}

	logOff := uint64(HeaderSize)
	dataOff := logOff + opts.LogSize

	// Header.
	var hdr [HeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[offMagic:], poolMagic)
	binary.LittleEndian.PutUint64(hdr[offVersion:], poolVersion)
	binary.LittleEndian.PutUint64(hdr[offTotalSize:], need)
	binary.LittleEndian.PutUint64(hdr[offLogOff:], logOff)
	binary.LittleEndian.PutUint64(hdr[offLogSize:], opts.LogSize)
	binary.LittleEndian.PutUint64(hdr[offDataOff:], dataOff)
	binary.LittleEndian.PutUint64(hdr[offDataSize:], opts.DataSize)
	binary.LittleEndian.PutUint64(hdr[offDurableEpoch:], 0)
	binary.LittleEndian.PutUint32(hdr[offHeaderCRC:], crc32.Checksum(hdr[:headerCRCSpan], crcTable))
	pm.Write(0, hdr[:], 0)

	// Zero the data region so a reused device starts clean.
	zero := make([]byte, 64<<10)
	for off := dataOff; off < dataOff+opts.DataSize; off += uint64(len(zero)) {
		n := uint64(len(zero))
		if dataOff+opts.DataSize-off < n {
			n = dataOff + opts.DataSize - off
		}
		pm.Write(off, zero[:n], 0)
	}

	log := undolog.Create(pm, logOff, opts.LogSize)

	// Formatting wrote megabytes at virtual time zero; clear the media
	// channel queues so the pool's first epoch does not inherit a formatting
	// backlog (formatting is offline work, not measured time).
	pm.ResetStats()

	p := &Pool{
		pm:      pm,
		logOff:  logOff,
		logSize: opts.LogSize,
		dataOff: dataOff, dataSize: opts.DataSize,
	}
	p.buildRuntime(opts, log, 1)

	// Format the allocator and the root table inside vPM.
	p.aren = alloc.Create(p.Mem(0), dataOff, opts.DataSize)
	rootAddr, err := p.aren.Alloc(RootSlots * 8)
	if err != nil {
		return nil, fmt.Errorf("core: allocating root table: %w", err)
	}
	p.rootTable = rootAddr
	zeroRoots := make([]byte, RootSlots*8)
	p.Mem(0).Store(rootAddr, zeroRoots)

	// Commit the formatted (empty) pool as the first durable snapshot, so a
	// crash right after Create recovers an empty pool instead of failing to
	// find the allocator.
	if _, err := p.Persist(); err != nil {
		return nil, fmt.Errorf("core: committing formatted pool: %w", err)
	}
	return p, nil
}

// Open attaches to an existing pool on pm, performing §3.4 recovery first:
// read the durable epoch, undo every logged line from any newer epoch, then
// initialize the device and allocator as usual. Opening a cleanly persisted
// pool and recovering a crashed one are the same code path.
func Open(pm *pmem.Device, opts Options) (*Pool, error) {
	var hdr [HeaderSize]byte
	pm.Read(0, hdr[:], 0)
	if got := binary.LittleEndian.Uint64(hdr[offMagic:]); got != poolMagic {
		return nil, fmt.Errorf("core: bad pool magic %#x", got)
	}
	if got := binary.LittleEndian.Uint64(hdr[offVersion:]); got != poolVersion {
		return nil, fmt.Errorf("core: unsupported pool version %d", got)
	}
	if got := crc32.Checksum(hdr[:headerCRCSpan], crcTable); got != binary.LittleEndian.Uint32(hdr[offHeaderCRC:]) {
		return nil, fmt.Errorf("core: pool header checksum mismatch")
	}
	p := &Pool{
		pm:       pm,
		logOff:   binary.LittleEndian.Uint64(hdr[offLogOff:]),
		logSize:  binary.LittleEndian.Uint64(hdr[offLogSize:]),
		dataOff:  binary.LittleEndian.Uint64(hdr[offDataOff:]),
		dataSize: binary.LittleEndian.Uint64(hdr[offDataSize:]),
	}
	if total := binary.LittleEndian.Uint64(hdr[offTotalSize:]); uint64(pm.Size()) < total {
		return nil, fmt.Errorf("core: device of %d bytes < pool of %d", pm.Size(), total)
	}

	durable := binary.LittleEndian.Uint64(hdr[offDurableEpoch:])
	log, err := undolog.Open(pm, p.logOff, p.logSize)
	if err != nil {
		return nil, fmt.Errorf("core: opening undo log: %w", err)
	}

	// Roll back: for each line, the entry from the smallest epoch >
	// durable holds the value as of the last durable snapshot (the device
	// logs each line once per epoch, on first modification).
	p.recovered.DurableEpoch = durable
	applied := make(map[uint64]bool)
	entries := log.EntriesAfterEpoch(durable)
	p.recovered.EntriesScanned = log.Live()
	for _, e := range entries {
		if e.Addr < p.dataOff || e.Addr+uint64(len(e.Old)) > p.dataOff+p.dataSize {
			// A checksummed entry pointing outside the data region means
			// the log was written by something else entirely; refuse to
			// scribble on arbitrary media.
			return nil, fmt.Errorf("core: undo entry for %#x outside data region [%#x,+%#x)",
				e.Addr, p.dataOff, p.dataSize)
		}
		if applied[e.Addr] {
			continue
		}
		applied[e.Addr] = true
		pm.Write(e.Addr, e.Old[:], 0)
		p.recovered.LinesRolledBack++
	}
	// Every live entry is now dead: entries ≤ durable were already
	// superseded by their epoch's committed write-back, newer ones were
	// just undone.
	log.Truncate(log.Head(), 0)

	p.buildRuntime(opts, log, durable+1)
	p.aren, err = alloc.Open(p.Mem(0), p.dataOff, p.dataSize)
	if err != nil {
		return nil, fmt.Errorf("core: opening allocator: %w", err)
	}
	p.rootTable = p.aren.HeapStart()
	return p, nil
}

// buildRuntime constructs the volatile machinery: host hierarchy, PAX
// device, vPM mapping.
func (p *Pool) buildRuntime(opts Options, log *undolog.Log, startEpoch uint64) {
	p.hier = cache.NewHierarchy(opts.Host)
	p.dev = device.New(opts.Device, p.pm, p.dataOff, p.dataOff, p.dataSize, log, offDurableEpoch, startEpoch)
	p.dev.AttachHost(p.hier)
	p.hier.AddRange(p.dataOff, p.dataSize, p.dev)
}

// Mem returns the vPM view of hardware thread i (bounds-checked, routed
// through core i's caches). Each simulated thread must use its own view.
func (p *Pool) Mem(i int) memory.Memory {
	return vpm.New(p.hier.Core(i), p.dataOff, p.dataSize)
}

// Allocator returns the pool allocator (bound to thread 0's memory view).
func (p *Pool) Allocator() memory.Allocator { return p.aren }

// Arena exposes the concrete allocator for diagnostics.
func (p *Pool) Arena() *alloc.Arena { return p.aren }

// Hierarchy exposes the host cache hierarchy (experiments, stats).
func (p *Pool) Hierarchy() *cache.Hierarchy { return p.hier }

// Device exposes the PAX device (experiments, stats).
func (p *Pool) Device() *device.Device { return p.dev }

// PM exposes the underlying media device.
func (p *Pool) PM() *pmem.Device { return p.pm }

// DataBase reports the vPM base address; DataSize its length.
func (p *Pool) DataBase() uint64 { return p.dataOff }

// DataSize reports the vPM region length.
func (p *Pool) DataSize() uint64 { return p.dataSize }

// Recovery reports what Open repaired (zero-valued after Create).
func (p *Pool) Recovery() RecoveryReport { return p.recovered }

// Timings exposes the persist-stage latency histograms.
func (p *Pool) Timings() *PersistTimings { return &p.timings }

// Epoch reports the current (not yet durable) epoch.
func (p *Pool) Epoch() uint64 { return p.dev.Epoch() }

// DurableEpoch reads the committed epoch from media.
func (p *Pool) DurableEpoch() uint64 { return headerField(p.pm, offDurableEpoch) }

// SetRoot stores a vPM address in root slot i. Roots live in vPM, so they
// become durable at the next Persist like any other data.
func (p *Pool) SetRoot(slot int, addr uint64) {
	if slot < 0 || slot >= RootSlots {
		panic(fmt.Sprintf("core: root slot %d outside [0,%d)", slot, RootSlots))
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], addr)
	p.Mem(0).Store(p.rootTable+uint64(slot)*8, b[:])
}

// Root reads root slot i (0 means unset).
func (p *Pool) Root(slot int) uint64 {
	if slot < 0 || slot >= RootSlots {
		panic(fmt.Sprintf("core: root slot %d outside [0,%d)", slot, RootSlots))
	}
	var b [8]byte
	p.Mem(0).Load(p.rootTable+uint64(slot)*8, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Persist runs the §3.3 protocol: snoop back the epoch's modified lines,
// wait for undo durability, write everything back, and atomically commit the
// epoch. The calling thread (core 0) stalls until the device reports
// completion. The caller must ensure no other thread is mutating vPM (§3.5).
//
// A non-nil error means the backing medium refused the image (an msync-class
// failure: EIO, ENOSPC): the epoch is NOT durable across a process restart
// and the caller must not ack anything from it. The device-side state has
// still advanced, so retrying Persist is legal — a later successful call
// makes everything up to it durable. The report is returned either way for
// its timing fields.
func (p *Pool) Persist() (device.PersistReport, error) {
	devStart := time.Now()
	core0 := p.hier.Core(0)
	rep := p.dev.Persist(core0.Now())
	core0.Clock().AdvanceTo(rep.Done)
	p.timings.DeviceNS.Since(devStart)
	p.timings.LogWaitPS.Observe(int64(rep.LogWaited))
	syncStart := time.Now()
	if err := p.pm.Sync(); err != nil {
		return rep, fmt.Errorf("core: committing epoch %d: %w", rep.Epoch, err)
	}
	p.timings.SyncNS.Since(syncStart)
	p.timings.SyncBytes.Observe(p.pm.LastSyncBytes())
	return rep, nil
}

// PersistPipelined is the §6 non-blocking persist: the calling thread pays
// only the command-issue latency while the device commits the epoch in the
// background, overlapping the next epoch. The returned report's Done is the
// device-side commit time. As with Persist, no thread may be mutating vPM at
// the call (the snapshot point is the call itself), and a non-nil error
// means the epoch is not durable on media (see Persist).
func (p *Pool) PersistPipelined() (device.PersistReport, error) {
	devStart := time.Now()
	core0 := p.hier.Core(0)
	rep, release := p.dev.PersistPipelined(core0.Now())
	core0.Clock().AdvanceTo(release)
	p.timings.DeviceNS.Since(devStart)
	p.timings.LogWaitPS.Observe(int64(rep.LogWaited))
	syncStart := time.Now()
	if err := p.pm.Sync(); err != nil {
		return rep, fmt.Errorf("core: committing epoch %d: %w", rep.Epoch, err)
	}
	p.timings.SyncNS.Since(syncStart)
	p.timings.SyncBytes.Observe(p.pm.LastSyncBytes())
	return rep, nil
}

// Close syncs the media image (for file-backed pools) without persisting the
// current epoch: like a crash, any unpersisted epoch is rolled back on the
// next Open. Callers that want the latest state durable call Persist first.
// The media device is then shut down (background checkpoints drained, epoch
// log file handles released); the sync error, if any, wins.
func (p *Pool) Close() error {
	err := p.pm.Sync()
	if cerr := p.pm.Close(); err == nil {
		err = cerr
	}
	return err
}
