package memory

import (
	"bytes"
	"testing"

	"pax/internal/coherence"
	"pax/internal/pmem"
	"pax/internal/sim"
)

func TestFlatRoundTrip(t *testing.T) {
	f := NewFlat(1024)
	f.Store(100, []byte("flat memory"))
	buf := make([]byte, 11)
	f.Load(100, buf)
	if string(buf) != "flat memory" {
		t.Fatalf("got %q", buf)
	}
	if f.Size() != 1024 || len(f.Bytes()) != 1024 {
		t.Fatal("size accessors wrong")
	}
}

func TestFlatBoundsPanics(t *testing.T) {
	f := NewFlat(64)
	for _, fn := range []func(){
		func() { f.Load(64, make([]byte, 1)) },
		func() { f.Store(60, make([]byte, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestControllerHomeTranslation(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(1 << 16))
	// Host range [4096, +8192) maps to device [0, +8192).
	h := NewControllerHome(dev, 4096, 0, 8192)

	line := bytes.Repeat([]byte{0x5A}, coherence.LineSize)
	h.WriteBackLine(4096+128, line, 0)
	var check [1]byte
	dev.Read(128, check[:], 0)
	if check[0] != 0x5A {
		t.Fatal("write-back not translated")
	}

	buf := make([]byte, coherence.LineSize)
	res := h.FetchLine(4096+128, false, buf, 0)
	if res.State != coherence.Exclusive {
		t.Fatalf("controller granted %v, want Exclusive", res.State)
	}
	if buf[0] != 0x5A {
		t.Fatal("fetch returned wrong data")
	}
	if got := h.UpgradeLine(4096, sim.NS(5)); got != sim.NS(5) {
		t.Fatal("controller upgrade must be free")
	}
}

func TestControllerHomeRangePanics(t *testing.T) {
	dev := pmem.New(pmem.DefaultConfig(1 << 16))
	h := NewControllerHome(dev, 0, 0, 4096)
	for _, fn := range []func(){
		func() { h.FetchLine(4096, false, make([]byte, 64), 0) },
		func() { NewControllerHome(dev, 3, 0, 4096) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestBumpAllocator(t *testing.T) {
	f := NewFlat(1 << 16)
	b := NewBump(f, 256, 1024)
	a1, err := b.Alloc(10)
	if err != nil {
		t.Fatal(err)
	}
	if a1 < 256 || a1%16 != 0 {
		t.Fatalf("a1 = %d", a1)
	}
	a2, _ := b.Alloc(10)
	if a2 <= a1 {
		t.Fatal("bump did not advance")
	}
	if err := b.Free(a1, 10); err != nil {
		t.Fatal(err)
	}
	if b.Mem() != Memory(f) {
		t.Fatal("Mem accessor wrong")
	}
	// Exhaustion.
	if _, err := b.Alloc(10000); err == nil {
		t.Fatal("overallocation accepted")
	}
	if b.Used() == 0 {
		t.Fatal("Used not tracked")
	}
}
