// Package memory defines the load/store contract every data structure in
// this repository is written against, plus the plain (non-accelerated)
// backing implementations: a flat model memory and a memory-controller home
// that places a pmem.Device (DRAM- or Optane-configured) behind the host
// cache hierarchy.
//
// The Memory interface is the Go equivalent of the paper's interposition
// boundary: in the authors' Pin prototype, dynamic binary translation
// rewrites loads and stores targeting the vPM region into calls that drive a
// simulated cache and CXL link. Here the rewrite happens at the source level —
// structures perform every access through Memory, so the same unmodified
// structure code runs over DRAM, direct PM, PAX vPM, or any logging wrapper.
package memory

import (
	"fmt"

	"pax/internal/coherence"
	"pax/internal/pmem"
	"pax/internal/sim"
)

// Memory is a byte-addressable address space. Implementations advance their
// own notion of simulated time and return the access completion time;
// functional-only callers ignore it.
type Memory interface {
	Load(addr uint64, buf []byte) sim.Time
	Store(addr uint64, data []byte) sim.Time
}

// Persister is implemented by memories that support explicit persistence
// primitives (CLWB/SFENCE); the WAL baselines require it.
type Persister interface {
	FlushLines(addr uint64, n int) sim.Time
	Fence() sim.Time
}

// Allocator hands out addresses within a Memory. Structures receive one at
// construction, which is the "custom allocator" hook the paper leans on for
// black-box reuse (§3.1).
type Allocator interface {
	Alloc(size uint64) (uint64, error)
	Free(addr, size uint64) error
	Mem() Memory
}

// Flat is a plain in-process byte array with zero access latency. It is the
// reference model for differential tests and the fastest functional backend.
type Flat struct {
	buf []byte
}

// NewFlat returns a zeroed flat memory of the given size.
func NewFlat(size int) *Flat { return &Flat{buf: make([]byte, size)} }

func (f *Flat) check(addr uint64, n int) {
	if addr > uint64(len(f.buf)) || uint64(n) > uint64(len(f.buf))-addr {
		panic(fmt.Sprintf("memory: flat access [%d,+%d) outside %d bytes", addr, n, len(f.buf)))
	}
}

// Load copies bytes out of the flat array.
func (f *Flat) Load(addr uint64, buf []byte) sim.Time {
	f.check(addr, len(buf))
	copy(buf, f.buf[addr:])
	return 0
}

// Store copies bytes into the flat array.
func (f *Flat) Store(addr uint64, data []byte) sim.Time {
	f.check(addr, len(data))
	copy(f.buf[addr:], data)
	return 0
}

// Size reports the array length.
func (f *Flat) Size() int { return len(f.buf) }

// Bytes exposes the underlying array for test comparisons.
func (f *Flat) Bytes() []byte { return f.buf }

// ControllerHome is the coherence.Home for a CPU-attached memory range
// (DRAM or PM DIMMs behind the host memory controller). Unlike the PAX
// device it has no interposition role: reads are granted Exclusive (the LLC
// directory arbitrates intra-host sharing), upgrades are free, write-backs
// land directly on the media.
type ControllerHome struct {
	dev      *pmem.Device
	hostBase uint64
	devBase  uint64
	size     uint64
}

// NewControllerHome maps [hostBase, hostBase+size) of the host address space
// onto [devBase, devBase+size) of dev.
func NewControllerHome(dev *pmem.Device, hostBase, devBase, size uint64) *ControllerHome {
	if hostBase%coherence.LineSize != 0 || devBase%coherence.LineSize != 0 || size%coherence.LineSize != 0 {
		panic("memory: controller range must be line-aligned")
	}
	return &ControllerHome{dev: dev, hostBase: hostBase, devBase: devBase, size: size}
}

func (c *ControllerHome) translate(hostAddr uint64) uint64 {
	if hostAddr < c.hostBase || hostAddr >= c.hostBase+c.size {
		panic(fmt.Sprintf("memory: address %#x outside controller range [%#x,+%#x)", hostAddr, c.hostBase, c.size))
	}
	return hostAddr - c.hostBase + c.devBase
}

// FetchLine implements coherence.Home.
func (c *ControllerHome) FetchLine(addr uint64, excl bool, buf []byte, at sim.Time) coherence.FillResult {
	done := c.dev.Read(c.translate(addr), buf, at)
	return coherence.FillResult{State: coherence.Exclusive, Done: done}
}

// UpgradeLine implements coherence.Home; ownership upgrades are resolved by
// the on-chip directory at no extra cost.
func (c *ControllerHome) UpgradeLine(addr uint64, at sim.Time) sim.Time { return at }

// WriteBackLine implements coherence.Home.
func (c *ControllerHome) WriteBackLine(addr uint64, data []byte, at sim.Time) sim.Time {
	return c.dev.Write(c.translate(addr), data, at)
}

// Bump is the simplest Allocator: a monotone pointer over a Memory window.
// It backs volatile experiments and tests; the recoverable pool allocator
// lives in package alloc.
type Bump struct {
	mem        Memory
	next, end  uint64
	allocCount uint64
}

// NewBump allocates from [base, base+size) of mem.
func NewBump(mem Memory, base, size uint64) *Bump {
	return &Bump{mem: mem, next: base, end: base + size}
}

// Alloc returns a 16-byte-aligned block of the given size.
func (b *Bump) Alloc(size uint64) (uint64, error) {
	const align = 16
	start := (b.next + align - 1) &^ uint64(align-1)
	if size > b.end || start > b.end-size {
		return 0, fmt.Errorf("memory: bump allocator exhausted (%d of %d bytes used)", b.next, b.end)
	}
	b.next = start + size
	b.allocCount++
	return start, nil
}

// Free is a no-op; bump allocators never reclaim.
func (b *Bump) Free(addr, size uint64) error { return nil }

// Mem returns the backing memory.
func (b *Bump) Mem() Memory { return b.mem }

// Used reports bytes consumed so far.
func (b *Bump) Used() uint64 { return b.next }
