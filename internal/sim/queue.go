package sim

import "fmt"

// ServiceQueue models a single-server FIFO resource: a device pipeline stage,
// a memory controller, a link serializer. A request arriving at time a with
// service time s begins at max(a, nextFree) and completes at begin+s.
//
// This is the classic "next free slot" queueing model: it captures queueing
// delay under contention without event-driven simulation, and it is exact for
// FIFO single-server stations, which is what every modeled resource is.
type ServiceQueue struct {
	name     string
	nextFree Time

	// Stats.
	served    uint64
	busy      Time // total busy (service) time
	queued    Time // total time requests spent waiting before service
	lastStart Time
}

// NewServiceQueue returns an idle queue.
func NewServiceQueue(name string) *ServiceQueue { return &ServiceQueue{name: name} }

// Serve schedules one request arriving at arrive with the given service time
// and returns its completion time.
func (q *ServiceQueue) Serve(arrive, service Time) Time {
	if service < 0 {
		panic(fmt.Sprintf("sim: %s: negative service time %v", q.name, service))
	}
	start := MaxTime(arrive, q.nextFree)
	done := start + service
	q.nextFree = done
	q.served++
	q.busy += service
	q.queued += start - arrive
	q.lastStart = start
	return done
}

// NextFree reports when the server becomes idle for the next request.
func (q *ServiceQueue) NextFree() Time { return q.nextFree }

// Served reports the number of requests processed.
func (q *ServiceQueue) Served() uint64 { return q.served }

// BusyTime reports cumulative service time.
func (q *ServiceQueue) BusyTime() Time { return q.busy }

// QueuedTime reports cumulative time requests spent waiting.
func (q *ServiceQueue) QueuedTime() Time { return q.queued }

// Utilization reports busy time as a fraction of the horizon [0, end].
func (q *ServiceQueue) Utilization(end Time) float64 {
	if end <= 0 {
		return 0
	}
	return float64(q.busy) / float64(end)
}

// Reset returns the queue to its initial idle state, clearing statistics.
func (q *ServiceQueue) Reset() { *q = ServiceQueue{name: q.name} }

// Pipeline models a fixed-rate, fully pipelined server: one request may begin
// per cycle, and each takes depth cycles to complete. This matches the paper's
// description of the FPGA coherence-message pipeline ("respond to coherence
// messages on nearly every clock cycle").
type Pipeline struct {
	name      string
	cycle     Time // duration of one clock cycle
	depth     int  // pipeline depth in cycles
	nextIssue Time
	served    uint64
}

// NewPipeline builds a pipeline clocked at hz with the given depth in cycles.
func NewPipeline(name string, hz float64, depth int) *Pipeline {
	if hz <= 0 {
		panic("sim: pipeline clock must be positive")
	}
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{
		name:  name,
		cycle: Time(float64(Second) / hz),
		depth: depth,
	}
}

// CycleTime reports the duration of one clock cycle.
func (p *Pipeline) CycleTime() Time { return p.cycle }

// Serve schedules a request arriving at arrive and returns its completion
// time: it issues at the first free cycle at-or-after arrive and completes
// depth cycles later.
func (p *Pipeline) Serve(arrive Time) Time {
	issue := MaxTime(arrive, p.nextIssue)
	p.nextIssue = issue + p.cycle
	p.served++
	return issue + Time(p.depth)*p.cycle
}

// Served reports the number of requests issued into the pipeline.
func (p *Pipeline) Served() uint64 { return p.served }

// Rate reports the pipeline's peak message rate in messages/second.
func (p *Pipeline) Rate() float64 { return float64(Second) / float64(p.cycle) }

// Reset returns the pipeline to idle, clearing statistics.
func (p *Pipeline) Reset() { p.nextIssue = 0; p.served = 0 }
