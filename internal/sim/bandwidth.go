package sim

import "fmt"

// BandwidthMeter models a shared bandwidth-limited channel (a PM DIMM's write
// path, a CXL link, a DRAM bus). Transfers serialize at the channel's byte
// rate; a transfer arriving while the channel is busy queues behind earlier
// transfers, exactly like ServiceQueue but with byte-proportional service.
type BandwidthMeter struct {
	name        string
	bytesPerSec float64
	nextFree    Time
	bytes       uint64
	transfers   uint64
	busy        Time
}

// NewBandwidthMeter builds a meter for a channel with the given peak rate in
// bytes per second.
func NewBandwidthMeter(name string, bytesPerSec float64) *BandwidthMeter {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: %s: bandwidth must be positive, got %g", name, bytesPerSec))
	}
	return &BandwidthMeter{name: name, bytesPerSec: bytesPerSec}
}

// TransferTime reports how long moving n bytes takes at the channel's peak
// rate, ignoring queueing.
func (b *BandwidthMeter) TransferTime(n int) Time {
	if n <= 0 {
		return 0
	}
	return Time(float64(n) / b.bytesPerSec * float64(Second))
}

// Transfer schedules an n-byte transfer arriving at arrive and returns its
// completion time, including queueing behind earlier transfers.
func (b *BandwidthMeter) Transfer(arrive Time, n int) Time {
	if n < 0 {
		panic(fmt.Sprintf("sim: %s: negative transfer size %d", b.name, n))
	}
	service := b.TransferTime(n)
	start := MaxTime(arrive, b.nextFree)
	done := start + service
	b.nextFree = done
	b.bytes += uint64(n)
	b.transfers++
	b.busy += service
	return done
}

// Bytes reports the total bytes transferred.
func (b *BandwidthMeter) Bytes() uint64 { return b.bytes }

// Transfers reports the number of transfers.
func (b *BandwidthMeter) Transfers() uint64 { return b.transfers }

// BytesPerSec reports the configured peak rate.
func (b *BandwidthMeter) BytesPerSec() float64 { return b.bytesPerSec }

// Utilization reports busy time as a fraction of the horizon [0, end].
func (b *BandwidthMeter) Utilization(end Time) float64 {
	if end <= 0 {
		return 0
	}
	return float64(b.busy) / float64(end)
}

// DemandedRate reports the average offered load in bytes/second over [0, end].
func (b *BandwidthMeter) DemandedRate(end Time) float64 {
	if end <= 0 {
		return 0
	}
	return float64(b.bytes) / end.Seconds()
}

// Reset clears state and statistics, keeping the configured rate.
func (b *BandwidthMeter) Reset() {
	b.nextFree, b.bytes, b.transfers, b.busy = 0, 0, 0, 0
}

// GBs converts gigabytes-per-second (decimal GB) to bytes-per-second, the
// unit every meter is configured in. Published PM/CXL bandwidth figures use
// decimal GB/s.
func GBs(gb float64) float64 { return gb * 1e9 }
