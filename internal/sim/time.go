// Package sim provides the deterministic virtual-time machinery used by every
// simulated hardware component in the repository: picosecond-resolution
// clocks, FIFO service queues, and bandwidth meters.
//
// All performance experiments in the paper reproduction run on virtual time.
// Nothing in this package reads wall-clock time; two runs with the same seed
// and the same parameters produce identical timings.
package sim

import (
	"fmt"
	"time"
)

// Time is a point (or span) of simulated time measured in integer picoseconds.
//
// Picoseconds keep sub-nanosecond latencies (an L1 hit is ~1.5 ns) exact while
// still allowing ~106 days of simulated time in an int64, far beyond any
// experiment in this repository.
type Time int64

// Common spans.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// NS converts a (possibly fractional) nanosecond count to a Time.
func NS(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// US converts a (possibly fractional) microsecond count to a Time.
func US(us float64) Time { return Time(us * float64(Microsecond)) }

// Nanoseconds reports t as float nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Seconds reports t as float seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Duration converts t to a time.Duration (nanosecond resolution, rounded down).
func (t Time) Duration() time.Duration { return time.Duration(t / Nanosecond) }

// String formats the time with an adaptive unit, e.g. "305ns" or "1.20us".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.2fns", t.Nanoseconds())
	case t < Millisecond:
		return fmt.Sprintf("%.2fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", t.Seconds())
	}
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Clock is a per-context virtual clock. Each simulated hardware thread (and
// each device pipeline) owns one Clock; components charge latency to the
// clock of the context performing the access.
//
// Clock is not safe for concurrent use; each simulated context is
// single-threaded by construction.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at start.
func NewClock(start Time) *Clock { return &Clock{now: start} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative d panics: simulated causality
// violations are always implementation bugs and must not be absorbed silently.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += d
	return c.now
}

// AdvanceTo moves the clock forward to t if t is later than now; it never
// moves backward. It reports the resulting time.
func (c *Clock) AdvanceTo(t Time) Time {
	if t > c.now {
		c.now = t
	}
	return c.now
}

// Reset rewinds the clock to zero. Only test and harness setup code calls it.
func (c *Clock) Reset() { c.now = 0 }
