package sim

// This file holds the latency and bandwidth constants behind every experiment.
// Sources, as cited in the paper and DESIGN.md:
//
//   - CPU cache levels: Cloudlab c6420 (Xeon Gold 6142)-class parts.
//   - Optane DC PMM: Yang et al., "An Empirical Guide to the Behavior and Use
//     of Scalable Persistent Memory", FAST'20 — 305 ns random reads, ~94 ns
//     ADR write-queue stores, ~40 GB/s read and ~14 GB/s write per socket.
//   - CXL: CXL 2.0 expectations — tens of ns added latency per direction,
//     PCIe 5.0 x16 ≈ 63 GB/s full duplex.
//   - Enzian: Cock et al., ASPLOS'22 — CPU↔FPGA coherence-message latencies
//     several times higher than CXL expectations; 300 MHz FPGA clock.
//   - Page-fault trap cost: >1 µs on modern x86 (paper §1).

// Cache line and page geometry used throughout.
const (
	CacheLineSize = 64
	PageSize      = 4096
)

// Host cache latencies (hit service times).
var (
	L1Latency  = NS(1.5)
	L2Latency  = NS(5)
	LLCLatency = NS(20)
)

// Memory media latencies.
var (
	DRAMLatency    = NS(85)  // load-to-use on a local socket
	PMReadLatency  = NS(305) // Optane random 64 B read (Yang et al.)
	PMWriteLatency = NS(94)  // store accepted into the ADR write-pending queue
	HBMLatency     = NS(60)  // on-device HBM cache hit
)

// Bandwidths (bytes/second).
var (
	DRAMBandwidth    = GBs(100)
	PMReadBandwidth  = GBs(40)
	PMWriteBandwidth = GBs(14)
	CXLBandwidth     = GBs(63) // PCIe 5.0 x16, per direction
	EnzianBandwidth  = GBs(30) // 24 x 10 Gb/s lanes
)

// Software overheads.
var (
	PageFaultTrap = US(1.2) // write-protection trap, kernel round trip
	SFenceDrain   = NS(100) // store-buffer drain on SFENCE
	CLWBCost      = NS(20)  // issuing a CLWB (latency hidden until fence)
	SyscallCost   = NS(400) // mprotect-style protection change, per call
	LogAppendCPU  = NS(12)  // CPU instructions to format a software WAL entry
)

// LinkProfile describes the host↔accelerator transport: per-direction message
// latency, payload bandwidth, and the device's message-processing pipeline.
type LinkProfile struct {
	Name string
	// Latency is the one-way message latency (request or response header).
	Latency Time
	// Bandwidth is the per-direction payload bandwidth in bytes/second.
	Bandwidth float64
	// DeviceHz is the device's message-pipeline clock; one coherence message
	// can issue per cycle.
	DeviceHz float64
	// PipelineDepth is the device pipeline depth in cycles for one message.
	PipelineDepth int
}

// RoundTrip reports the two-way header latency of the link.
func (lp LinkProfile) RoundTrip() Time { return 2 * lp.Latency }

// Predefined link profiles for the transports the paper discusses.
var (
	// CXLLink models a CXL 2.0 cache-coherent accelerator: tens of ns per
	// direction and an ASIC-class 1 GHz message pipeline.
	CXLLink = LinkProfile{
		Name:          "cxl",
		Latency:       NS(25),
		Bandwidth:     CXLBandwidth,
		DeviceHz:      1e9,
		PipelineDepth: 8,
	}

	// EnzianLink models the ThunderX-1↔CVU9P coherence path: higher message
	// latency and a 300 MHz FPGA pipeline (paper §4, §5.1).
	EnzianLink = LinkProfile{
		Name:          "enzian",
		Latency:       NS(250),
		Bandwidth:     EnzianBandwidth,
		DeviceHz:      300e6,
		PipelineDepth: 6,
	}
)

// CacheGeometry describes one cache level of the simulated host hierarchy.
type CacheGeometry struct {
	SizeBytes int
	Ways      int
	Latency   Time
}

// HostProfile bundles the host-side hierarchy geometry used by experiments;
// the defaults model a Cloudlab c6420 socket (Xeon Gold 6142: 32 KiB L1d,
// 1 MiB L2, 22 MiB shared LLC).
type HostProfile struct {
	L1, L2, LLC CacheGeometry
	Cores       int
}

// DefaultHost returns the c6420-class host profile.
func DefaultHost() HostProfile {
	return HostProfile{
		L1:    CacheGeometry{SizeBytes: 32 << 10, Ways: 8, Latency: L1Latency},
		L2:    CacheGeometry{SizeBytes: 1 << 20, Ways: 16, Latency: L2Latency},
		LLC:   CacheGeometry{SizeBytes: 22 << 20, Ways: 11, Latency: LLCLatency},
		Cores: 32,
	}
}

// SmallHost returns a scaled-down hierarchy for fast unit tests: same
// structure, tiny capacities, identical latencies.
func SmallHost() HostProfile {
	return HostProfile{
		L1:    CacheGeometry{SizeBytes: 1 << 10, Ways: 2, Latency: L1Latency},
		L2:    CacheGeometry{SizeBytes: 4 << 10, Ways: 4, Latency: L2Latency},
		LLC:   CacheGeometry{SizeBytes: 16 << 10, Ways: 4, Latency: LLCLatency},
		Cores: 4,
	}
}
