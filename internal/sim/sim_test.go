package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	if NS(1) != Nanosecond {
		t.Fatalf("NS(1) = %d, want %d", NS(1), Nanosecond)
	}
	if NS(1.5) != 1500*Picosecond {
		t.Fatalf("NS(1.5) = %d, want 1500", NS(1.5))
	}
	if US(1.2) != 1200*Nanosecond {
		t.Fatalf("US(1.2) = %d, want %d", US(1.2), 1200*Nanosecond)
	}
	if got := (305 * Nanosecond).Nanoseconds(); got != 305 {
		t.Fatalf("Nanoseconds = %g, want 305", got)
	}
	if got := Second.Seconds(); got != 1 {
		t.Fatalf("Seconds = %g, want 1", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{305 * Nanosecond, "305.00ns"},
		{1200 * Nanosecond, "1.20us"},
		{3 * Millisecond, "3.00ms"},
		{2 * Second, "2.000s"},
		{-305 * Nanosecond, "-305.00ns"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0)
	if c.Now() != 0 {
		t.Fatalf("new clock at %v", c.Now())
	}
	c.Advance(NS(10))
	c.Advance(NS(5))
	if c.Now() != NS(15) {
		t.Fatalf("clock = %v, want 15ns", c.Now())
	}
	c.AdvanceTo(NS(12)) // earlier: no-op
	if c.Now() != NS(15) {
		t.Fatalf("AdvanceTo moved clock backward to %v", c.Now())
	}
	c.AdvanceTo(NS(20))
	if c.Now() != NS(20) {
		t.Fatalf("AdvanceTo = %v, want 20ns", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset left clock at %v", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative advance")
		}
	}()
	NewClock(0).Advance(-1)
}

func TestServiceQueueFIFO(t *testing.T) {
	q := NewServiceQueue("test")
	// Idle server: starts immediately.
	if done := q.Serve(NS(10), NS(5)); done != NS(15) {
		t.Fatalf("first done = %v, want 15ns", done)
	}
	// Arrives while busy: queues.
	if done := q.Serve(NS(11), NS(5)); done != NS(20) {
		t.Fatalf("second done = %v, want 20ns", done)
	}
	// Arrives after idle: starts at arrival.
	if done := q.Serve(NS(100), NS(1)); done != NS(101) {
		t.Fatalf("third done = %v, want 101ns", done)
	}
	if q.Served() != 3 {
		t.Fatalf("served = %d, want 3", q.Served())
	}
	if q.BusyTime() != NS(11) {
		t.Fatalf("busy = %v, want 11ns", q.BusyTime())
	}
	if q.QueuedTime() != NS(4) {
		t.Fatalf("queued = %v, want 4ns", q.QueuedTime())
	}
}

func TestServiceQueueUtilization(t *testing.T) {
	q := NewServiceQueue("u")
	q.Serve(0, NS(50))
	if got := q.Utilization(NS(100)); got != 0.5 {
		t.Fatalf("utilization = %g, want 0.5", got)
	}
	if got := q.Utilization(0); got != 0 {
		t.Fatalf("utilization at zero horizon = %g", got)
	}
	q.Reset()
	if q.Served() != 0 || q.NextFree() != 0 {
		t.Fatal("Reset did not clear queue")
	}
}

// Completion times from a service queue are monotone in arrival order —
// FIFO can never reorder.
func TestServiceQueueMonotoneProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint16) bool {
		q := NewServiceQueue("prop")
		var arrive, prevDone Time
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		for i := 0; i < n; i++ {
			arrive += Time(arrivals[i]) // non-decreasing arrivals
			done := q.Serve(arrive, Time(services[i]))
			if done < prevDone || done < arrive {
				return false
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineRateAndDepth(t *testing.T) {
	p := NewPipeline("fpga", 300e6, 6) // 300 MHz: 3333ps cycle
	cycle := p.CycleTime()
	hz := 300e6
	if cycle != Time(float64(Second)/hz) {
		t.Fatalf("cycle = %v", cycle)
	}
	// Back-to-back arrivals issue one per cycle, complete depth cycles later.
	d0 := p.Serve(0)
	d1 := p.Serve(0)
	if d0 != 6*cycle {
		t.Fatalf("d0 = %v, want %v", d0, 6*cycle)
	}
	if d1 != 7*cycle {
		t.Fatalf("d1 = %v, want %v", d1, 7*cycle)
	}
	if got, want := p.Rate(), 300e6; got < want*0.999 || got > want*1.001 {
		t.Fatalf("rate = %g, want ~%g", got, want)
	}
	p.Reset()
	if p.Served() != 0 {
		t.Fatal("Reset did not clear pipeline")
	}
}

func TestPipelineValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive clock")
		}
	}()
	NewPipeline("bad", 0, 1)
}

func TestBandwidthMeterSerialization(t *testing.T) {
	b := NewBandwidthMeter("pm-write", GBs(14))
	// 64 bytes at 14 GB/s = 64/14e9 s ≈ 4571 ps.
	tt := b.TransferTime(64)
	want := Time(float64(64) / GBs(14) * float64(Second))
	if tt != want {
		t.Fatalf("TransferTime = %v, want %v", tt, want)
	}
	d0 := b.Transfer(0, 64)
	d1 := b.Transfer(0, 64)
	if d1 != 2*d0 {
		t.Fatalf("second transfer = %v, want %v (serialized)", d1, 2*d0)
	}
	if b.Bytes() != 128 || b.Transfers() != 2 {
		t.Fatalf("stats: bytes=%d transfers=%d", b.Bytes(), b.Transfers())
	}
	if got := b.Transfer(Second, 0); got != Second {
		t.Fatalf("zero-byte transfer took time: %v", got)
	}
}

func TestBandwidthMeterDemandedRate(t *testing.T) {
	b := NewBandwidthMeter("x", GBs(1))
	b.Transfer(0, 1000)
	rate := b.DemandedRate(Microsecond)
	if rate != 1e9 { // 1000 B / 1 us = 1 GB/s
		t.Fatalf("demanded = %g, want 1e9", rate)
	}
	b.Reset()
	if b.Bytes() != 0 {
		t.Fatal("Reset did not clear meter")
	}
}

func TestLinkProfiles(t *testing.T) {
	if CXLLink.RoundTrip() != NS(50) {
		t.Fatalf("CXL round trip = %v", CXLLink.RoundTrip())
	}
	if EnzianLink.RoundTrip() <= CXLLink.RoundTrip() {
		t.Fatal("Enzian must be slower than CXL")
	}
	if EnzianLink.DeviceHz >= CXLLink.DeviceHz {
		t.Fatal("Enzian FPGA clock must be below ASIC-class clock")
	}
}

func TestHostProfiles(t *testing.T) {
	h := DefaultHost()
	if h.L1.SizeBytes != 32<<10 || h.LLC.SizeBytes != 22<<20 || h.Cores != 32 {
		t.Fatalf("unexpected default host: %+v", h)
	}
	s := SmallHost()
	if s.L1.SizeBytes >= h.L1.SizeBytes {
		t.Fatal("SmallHost not smaller than DefaultHost")
	}
	for _, g := range []CacheGeometry{s.L1, s.L2, s.LLC} {
		if g.SizeBytes%(g.Ways*CacheLineSize) != 0 {
			t.Fatalf("geometry %+v not divisible into sets", g)
		}
	}
}

func TestMinMaxTime(t *testing.T) {
	if MaxTime(1, 2) != 2 || MaxTime(2, 1) != 2 {
		t.Fatal("MaxTime wrong")
	}
	if MinTime(1, 2) != 1 || MinTime(2, 1) != 1 {
		t.Fatal("MinTime wrong")
	}
}
