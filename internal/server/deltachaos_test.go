package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pax"
	"pax/internal/epochlog"
	"pax/internal/pmem"
)

// This file is the chaos harness for the epoch-log persistence mode: the
// same acked-write contract as chaos_test.go, but over file-backed pools
// whose commits are delta appends into <pool>.epochlog/ instead of
// full-image republishes. Crashes are simulated by copying the on-disk
// state (checkpoint + segments) mid-run and reopening the copy — exactly
// what a post-crash recovery sees.

func deltaOpts() pax.Options {
	o := smallOpts()
	o.EpochLog = true
	return o
}

// crashCopy clones a pool's durable state — the checkpoint file and, if
// present, its epoch-log segment directory — to dst. The clone is what
// survives a crash at this instant.
func crashCopy(t *testing.T, src, dst string) {
	t.Helper()
	img, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, img, 0o644); err != nil {
		t.Fatal(err)
	}
	srcDir := src + epochlog.DirSuffix
	entries, err := os.ReadDir(srcDir)
	if errors.Is(err, os.ErrNotExist) {
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	dstDir := dst + epochlog.DirSuffix
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dstDir, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeltaEngineAckedWritesSurviveCrash: every write the engine acks in
// epoch-log mode is on disk as a committed delta, so a crash copy taken at
// any point after the acks recovers all of them.
func TestDeltaEngineAckedWritesSurviveCrash(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.pool")
	pool, err := pax.CreatePool(path, deltaOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if !pool.EpochLogEnabled() {
		t.Fatal("pool opened without the epoch store")
	}
	eng, err := New(pool, 0, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const keys = 32
	for i := 0; i < keys; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	// Quiesce any background checkpoint so the copy is not taken mid-publish.
	device(pool).WaitCheckpoint()

	crash := filepath.Join(dir, "crash.pool")
	crashCopy(t, path, crash)
	if has, err := epochlog.HasSegments(crash + epochlog.DirSuffix); err != nil || !has {
		t.Fatalf("crash copy has no delta segments (has=%v err=%v)", has, err)
	}

	re, err := pax.OpenPool(crash, deltaOpts())
	if err != nil {
		t.Fatalf("reopening crash copy: %v", err)
	}
	defer re.Close()
	reng, err := New(re, 0, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer reng.Close()
	for i := 0; i < keys; i++ {
		v, ok, err := reng.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("acked write lost after crash: key-%d = %q (ok=%v err=%v)", i, v, ok, err)
		}
	}
}

// TestDeltaTransientFaultRetriesAndAcks: the FailSyncs schedule means the
// same thing in delta mode — the append fsync fails, the dirty ranges stay
// dirty, and the retry re-appends them — so a transient fault inside the
// retry budget is invisible to the client.
func TestDeltaTransientFaultRetriesAndAcks(t *testing.T) {
	dir := t.TempDir()
	pool, err := pax.CreatePool(filepath.Join(dir, "kv.pool"), deltaOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	eng, err := New(pool, 0, Config{MaxBatch: 4, MaxDelay: time.Millisecond, CommitRetryDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	device(pool).SetFaultFn(pmem.FailSyncs(2, errInjected))
	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put through transient delta fault: %v", err)
	}
	if got := eng.Stats().CommitRetries.Load(); got != 2 {
		t.Fatalf("commit retries = %d, want 2", got)
	}
	if err := eng.SealErr(); err != nil {
		t.Fatalf("engine sealed by a transient fault: %v", err)
	}
	if v, ok, err := eng.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("get after retried commit: %q %v %v", v, ok, err)
	}
}

// TestDeltaPersistentFaultSealsEngine: FailSyncsAfter seals an epoch-log
// engine fail-stop exactly as it does a full-image one.
func TestDeltaPersistentFaultSealsEngine(t *testing.T) {
	dir := t.TempDir()
	pool, err := pax.CreatePool(filepath.Join(dir, "kv.pool"), deltaOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	eng, err := New(pool, 0, Config{MaxBatch: 4, MaxDelay: time.Millisecond, CommitRetries: -1})
	if err != nil {
		t.Fatal(err)
	}

	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	if _, err := eng.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrSealed) {
		t.Fatalf("put on failing delta media: %v, want ErrSealed", err)
	}
	if _, _, err := eng.Get([]byte("k")); !errors.Is(err, ErrSealed) {
		t.Fatalf("get after seal: %v", err)
	}
	if err := eng.Close(); !errors.Is(err, ErrSealed) {
		t.Fatalf("close of sealed engine = %v, want its seal error", err)
	}
}

// TestShardedEpochLogDiscoveryAndOverwrite: a sharded epoch-log layout has a
// .epochlog directory next to every shard file. Discovery must count only
// the shard files, reopening must recover every shard from its deltas, and
// -overwrite must clear the segment directories along with the shard files
// (stale segments must never replay onto a reformatted pool).
func TestShardedEpochLogDiscoveryAndOverwrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.pool")
	cfg := Config{MaxBatch: 8, MaxDelay: time.Millisecond}
	opts := deltaOpts()
	opts.Overwrite = true
	s, err := OpenSharded(path, 4, opts, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 32
	for i := 0; i < keys; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte("v1")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		segDir := ShardPath(path, 4, k) + epochlog.DirSuffix
		if has, err := epochlog.HasSegments(segDir); err != nil || !has {
			t.Fatalf("shard %d has no segment directory (has=%v err=%v)", k, has, err)
		}
	}

	// The .epochlog directories match the kv.pool.shard-* glob; discovery
	// must not count them as shards.
	n, err := DiscoverShards(path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("DiscoverShards = %d, want 4 (epoch-log dirs miscounted?)", n)
	}

	// Reopen: every shard recovers from checkpoint + deltas.
	reopenOpts := deltaOpts()
	s2, err := OpenSharded(path, 4, reopenOpts, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		v, ok, err := s2.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || !ok || string(v) != "v1" {
			t.Fatalf("key-%d lost across sharded reopen: %q %v %v", i, v, ok, err)
		}
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Overwrite reformats: the old keys and the old segments are both gone.
	s3, err := OpenSharded(path, 4, opts, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	for i := 0; i < keys; i++ {
		if _, ok, err := s3.Get([]byte(fmt.Sprintf("key-%d", i))); err != nil || ok {
			t.Fatalf("key-%d survived -overwrite (ok=%v err=%v)", i, ok, err)
		}
	}
}
