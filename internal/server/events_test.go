package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pax/internal/blackbox"
	"pax/internal/pmem"
	"pax/internal/wire"
)

func TestEventHubRingWrap(t *testing.T) {
	h := &eventHub{}
	for i := 0; i < eventRingDepth+44; i++ {
		h.emit("ev", i, nil)
	}
	events := h.snapshot()
	if len(events) != eventRingDepth {
		t.Fatalf("ring holds %d events, want %d", len(events), eventRingDepth)
	}
	for i, ev := range events {
		if want := uint64(45 + i); ev.Seq != want {
			t.Fatalf("event %d seq = %d, want %d (oldest-first, oldest overwritten)", i, ev.Seq, want)
		}
	}
}

func TestEventHubSink(t *testing.T) {
	h := &eventHub{}
	h.emit("before-sink", 0, nil)
	var got []Event
	h.setSink(func(ev Event) { got = append(got, ev) })
	h.emit("after-sink", 1, errDetail{Error: "boom"})
	h.setSink(nil)
	h.emit("after-detach", 2, nil)
	if len(got) != 1 || got[0].Type != "after-sink" || got[0].Shard != 1 {
		t.Fatalf("sink saw %+v", got)
	}
	if !strings.Contains(string(got[0].Detail), "boom") {
		t.Fatalf("detail = %s", got[0].Detail)
	}
}

// A persistent media fault must leave a causal pair in the event ring: the
// commit_failed record that explains the failure, then the seal transition —
// and exactly one seal event no matter how many writes bounce afterwards.
func TestEngineSealEmitsEvents(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 4, MaxDelay: time.Millisecond,
		CommitRetries: -1,
	})
	defer pool.Close()

	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	if _, err := eng.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrSealed) {
		t.Fatalf("put on failing media: %v, want ErrSealed", err)
	}
	if _, err := eng.Put([]byte("k2"), []byte("v2")); !errors.Is(err, ErrSealed) {
		t.Fatalf("put after seal: %v", err)
	}
	eng.Close()

	var failed, sealed int
	var sealDetail string
	for _, ev := range eng.Events().Events {
		switch ev.Type {
		case blackbox.EvCommitFailed:
			failed++
			if sealed > 0 {
				t.Fatal("commit_failed after seal: causal order inverted")
			}
		case blackbox.EvSeal:
			sealed++
			sealDetail = string(ev.Detail)
		}
	}
	if failed != 1 || sealed != 1 {
		t.Fatalf("events: %d commit_failed, %d seal; want exactly 1 each", failed, sealed)
	}
	if !strings.Contains(sealDetail, "injected EIO") {
		t.Fatalf("seal detail %q does not carry the media error", sealDetail)
	}
}

// The EVENTS wire op is answered inline, so a sealed engine still serves its
// event ring — the same contract TRACE and STATS have.
func TestEventsWireOpOnSealedEngine(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 4, MaxDelay: time.Millisecond,
		CommitRetries: -1,
	})
	t.Cleanup(func() { pool.Close() })
	srv := NewServer(eng)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		<-done
	})

	cl, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("healthy put: %v", err)
	}
	body, err := cl.Events()
	if err != nil {
		t.Fatalf("EVENTS on healthy engine: %v", err)
	}
	var snap EventsSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("EVENTS body: %v\n%s", err, body)
	}

	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	if _, err := cl.Put([]byte("k2"), []byte("v2")); err == nil {
		t.Fatal("put on failing media succeeded")
	}
	body, err = cl.Events()
	if err != nil {
		t.Fatalf("EVENTS on sealed engine: %v", err)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	types := make(map[string]int)
	for _, ev := range snap.Events {
		types[ev.Type]++
	}
	if types[blackbox.EvSeal] != 1 || types[blackbox.EvCommitFailed] != 1 {
		t.Fatalf("sealed engine's EVENTS = %v, want one seal and one commit_failed", types)
	}
}

// replayJournal replays a black-box journal into (events by type, snapshots).
func replayJournal(t *testing.T, dir string) (map[string][]Event, int) {
	t.Helper()
	j, err := blackbox.Open(blackbox.Config{Dir: dir, ReadOnly: true})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer j.Close()
	byType := make(map[string][]Event)
	snaps := 0
	err = j.Replay(func(rec blackbox.Record) error {
		if rec.Type == blackbox.EvSnapshot {
			snaps++
			return nil
		}
		var ev Event
		if err := json.Unmarshal(rec.Payload, &ev); err != nil {
			return fmt.Errorf("record %d (%s): %v", rec.Seq, rec.Type, err)
		}
		byType[ev.Type] = append(byType[ev.Type], ev)
		return nil
	})
	if err != nil {
		t.Fatalf("replay journal: %v", err)
	}
	return byType, snaps
}

// The tentpole chaos scenario: a fleet with the black box attached suffers a
// persistent media fault on one shard. With the process "dead" (journal
// replayed cold), the journal alone must name the cause: the open events,
// the failing commit record, and the seal with the injected error.
func TestBlackboxCapturesInjectedSeal(t *testing.T) {
	eng := newSharded(t, "", 2, Config{
		MaxBatch: 4, MaxDelay: time.Millisecond,
		CommitRetries: -1,
	})
	dir := filepath.Join(t.TempDir(), "bb")
	j, err := blackbox.Open(blackbox.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stop := AttachBlackbox(eng, j, 20*time.Millisecond)

	pools := eng.ShardPools()
	if len(pools) != 2 {
		t.Fatalf("ShardPools = %d, want 2", len(pools))
	}
	pools[0].Internal().PM().SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	pools[1].Internal().PM().SetFaultFn(pmem.FailSyncsAfter(0, errInjected))

	var sawErr bool
	for i := 0; i < 64 && !sawErr; i++ {
		_, err := eng.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
		sawErr = err != nil
	}
	if !sawErr {
		t.Fatal("no put failed on failing media")
	}
	// Simulated kill: no shutdown marker, just detach and close the journal.
	stop()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()

	byType, snaps := replayJournal(t, dir)
	if got := len(byType[blackbox.EvOpen]); got != 2 {
		t.Fatalf("journal has %d open events, want one per shard", got)
	}
	if len(byType[blackbox.EvCommitFailed]) == 0 {
		t.Fatal("journal lost the failing commit record")
	}
	seals := byType[blackbox.EvSeal]
	if len(seals) == 0 {
		t.Fatal("journal lost the seal event")
	}
	if d := string(seals[0].Detail); !strings.Contains(d, "injected EIO") {
		t.Fatalf("seal detail %q does not carry the media error", d)
	}
	if seals[0].Shard != 0 && seals[0].Shard != 1 {
		t.Fatalf("seal event shard = %d, want a real shard index", seals[0].Shard)
	}
	if snaps < 1 {
		t.Fatal("journal has no metrics snapshot (stop must flush the tail window)")
	}
	if len(byType[blackbox.EvShutdown]) != 0 {
		t.Fatal("simulated crash journaled a shutdown marker")
	}
}

// A crash mid-merge must leave the stage trail in the journal: merge_start
// and merge_drained present, merge_published absent (the crash hit between
// them) — exactly the breadcrumbs the postmortem's open-reshard detection
// reads.
func TestBlackboxCapturesCrashMidMerge(t *testing.T) {
	pool := filepath.Join(t.TempDir(), "kv.pool")
	eng := newShardedDelta(t, pool, 3, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	plantDirect(t, eng, 64)

	dir := filepath.Join(t.TempDir(), "bb")
	j, err := blackbox.Open(blackbox.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stop := AttachBlackbox(eng, j, time.Hour)

	errBoom := errors.New("injected crash")
	eng.mergeHook = func(stage mergeStage) error {
		if stage == mergeStageDrained {
			return errBoom
		}
		return nil
	}
	if _, err := eng.Merge(2); !errors.Is(err, errBoom) {
		t.Fatalf("merge returned %v, want the injected crash", err)
	}
	stop()
	j.Close()
	eng.Crash()

	byType, _ := replayJournal(t, dir)
	if len(byType[blackbox.EvMergeStart]) != 1 || len(byType[blackbox.EvMergeDrained]) != 1 {
		t.Fatalf("journal stages: start=%d drained=%d, want 1 each",
			len(byType[blackbox.EvMergeStart]), len(byType[blackbox.EvMergeDrained]))
	}
	if len(byType[blackbox.EvMergePublished]) != 0 {
		t.Fatal("merge_published journaled though the crash hit before publish")
	}
	// The abort itself is journaled: a done event carrying the error. A real
	// kill -9 would leave no done event at all; either way the postmortem
	// sees an unfinished (or failed) merge.
	done := byType[blackbox.EvMergeDone]
	if len(done) != 1 || !strings.Contains(string(done[0].Detail), "injected crash") {
		t.Fatalf("merge_done = %+v, want one event carrying the abort error", done)
	}
}

// Split emits its start/done pair through the fleet hub, and an engine added
// by the split is wired into the hub (its later events carry the new shard's
// index).
func TestBlackboxSplitEvents(t *testing.T) {
	pool := filepath.Join(t.TempDir(), "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()
	plantDirect(t, eng, 64)

	dir := filepath.Join(t.TempDir(), "bb")
	j, err := blackbox.Open(blackbox.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	stop := AttachBlackbox(eng, j, time.Hour)

	if _, err := eng.Split(0); err != nil {
		t.Fatal(err)
	}
	stop()
	j.Close()

	byType, _ := replayJournal(t, dir)
	if len(byType[blackbox.EvSplitStart]) != 1 || len(byType[blackbox.EvSplitDone]) != 1 {
		t.Fatalf("split events: start=%d done=%d, want 1 each",
			len(byType[blackbox.EvSplitStart]), len(byType[blackbox.EvSplitDone]))
	}
	done := byType[blackbox.EvSplitDone][0]
	var d struct {
		Report *SplitReport `json:"report"`
		Error  string       `json:"error"`
	}
	if err := json.Unmarshal(done.Detail, &d); err != nil || d.Report == nil {
		t.Fatalf("split_done detail %s: %v", done.Detail, err)
	}
	if d.Error != "" || len(d.Report.MovedSlots) == 0 {
		t.Fatalf("split_done report = %+v error=%q", d.Report, d.Error)
	}
}
