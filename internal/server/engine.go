// Package server is the paxserve subsystem: a single-writer commit engine
// that multiplexes many concurrent client goroutines onto one PAX pool, plus
// a TCP front end speaking the wire protocol.
//
// The paper's programming model is single-threaded: no goroutine may mutate
// the pool while Persist runs (§3.5). Instead of pushing that burden onto
// every caller, the engine funnels all operations through one writer
// goroutine and turns Persist into a *group commit*: mutations are applied
// in arrival order, and one snapshot per batch — bounded by MaxBatch and
// MaxDelay — makes the whole batch durable before its callers are acked. N
// concurrent writers therefore share one snapshot's cost, the same
// amortization that makes PAX epochs (and Snapshot's msync batching) fast.
//
// Reads do not take that path: §3.5 constrains mutation, not observation, so
// the writer maintains a volatile read index (readindex.go) it updates at
// apply time, and Get serves from it directly — a GET never enters the
// request queue and never waits behind a commit in flight.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pax"
	"pax/internal/stats"
)

// Engine errors.
var (
	// ErrClosed is returned for requests after Close (or a crash).
	ErrClosed = errors.New("server: engine closed")
	// ErrBusy is returned when the request queue stays full past the
	// enqueue timeout — the backpressure signal.
	ErrBusy = errors.New("server: request queue full")
)

// Config tunes the engine.
type Config struct {
	// MaxBatch is the most acked mutations per group commit (default 128).
	MaxBatch int
	// MaxDelay bounds how long the first mutation of a batch waits for
	// company before the commit is forced (default 1ms).
	MaxDelay time.Duration
	// QueueDepth bounds the request queue; a full queue pushes back on
	// clients (default 1024).
	QueueDepth int
	// EnqueueTimeout is how long a request waits for queue space before
	// failing with ErrBusy (default 5s).
	EnqueueTimeout time.Duration
	// Async commits batches with PersistAsync (§6 pipelined persist): the
	// snapshot point is unchanged but the writer loop overlaps the device's
	// commit with the next batch. Acks then mean "snapshot taken", not
	// "snapshot fully on media".
	Async bool
	// CommitLatency models the real-time cost of making an epoch durable on
	// the backing medium (an msync-class sync, an Optane flush): the writer
	// blocks this long per group commit, after Persist and before acking the
	// batch. The in-memory simulator otherwise commits at host-CPU speed,
	// which hides the serialization the engine actually has on real media —
	// one commit in flight per pool. Sharded engines overlap this latency
	// across shards, which is exactly what the loadgen shard sweep measures.
	// Zero (the default) commits at simulator speed.
	CommitLatency time.Duration
	// QueuedReads routes GETs through the writer queue instead of the read
	// index — the engine's pre-index behavior, kept so the read-path win
	// stays measurable (`paxbench -loadgen -queued-reads`) and so a queued
	// read remains available as a consistency oracle in tests. A queued GET
	// serializes behind every request ahead of it, including commits in
	// flight.
	QueuedReads bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = 5 * time.Second
	}
	return c
}

type opKind byte

const (
	opGet opKind = iota
	opPut
	opDelete
	opPersist
	opStats
	opSnapshot
)

type result struct {
	value []byte
	found bool
	epoch uint64
	text  string
	snap  stats.Summary
	err   error
}

type request struct {
	op         opKind
	key, value []byte
	found      bool        // Delete: key was present (carried to the ack)
	done       chan result // buffered(1); exactly one result per request
}

// requestPool recycles request structs together with their done channels:
// a request's lifecycle is strictly get → begin → one result received →
// release, so the buffered(1) channel is always empty again at release time.
var requestPool = sync.Pool{
	New: func() any { return &request{done: make(chan result, 1)} },
}

// newRequest takes a pooled request. The caller must either fail to begin it
// (and release it) or receive exactly one result from done (and release it).
func newRequest(op opKind, key, value []byte) *request {
	r := requestPool.Get().(*request)
	r.op, r.key, r.value, r.found = op, key, value, false
	return r
}

// release returns a request to the pool. Only call once the engine cannot
// touch it anymore: after its result was received, or after begin failed.
func (r *request) release() {
	r.key, r.value = nil, nil
	requestPool.Put(r)
}

// EngineStats are the engine's own counters (the pool's live underneath).
type EngineStats struct {
	AckedWrites  stats.Counter // mutations acked durable
	Gets         stats.Counter // reads served (index + queued)
	GroupCommits stats.Counter // snapshots taken by the writer loop
	BatchMax     stats.Counter // largest batch committed (gauge-as-counter)
	Rejects      stats.Counter // requests dropped by backpressure

	// Read-index counters: hits/misses for index-served GETs, and the entry
	// count rebuilt from the recovered pool at startup.
	ReadIndexHits    stats.Counter
	ReadIndexMisses  stats.Counter
	ReadIndexRebuilt stats.Counter
}

// Engine is the concurrent serving engine over one pool. All methods are
// safe for concurrent use; internally a single writer goroutine owns the
// pool, so the §3.5 single-mutator rule holds by construction. Reads are
// served off the writer loop from the volatile read index (see readindex.go
// for the consistency contract).
type Engine struct {
	pool *pax.Pool
	kv   *pax.Map
	cfg  Config
	idx  *readIndex

	reqs chan *request
	stop chan struct{} // closed by Crash: abandon uncommitted work

	// mu guards closed. It is never held across a blocking enqueue — begin
	// registers with inflight under the read lock and releases before
	// waiting for queue space — so Close/Crash acquire the write lock
	// immediately even when the queue is full.
	mu       sync.RWMutex
	closed   bool
	inflight sync.WaitGroup // begins past the closed check, not yet enqueued or failed

	wg    sync.WaitGroup
	stats EngineStats
	reg   *stats.Registry
}

// New builds an engine serving the map rooted at slot of pool and starts its
// writer loop. The engine becomes the pool's only legal mutator: direct pool
// use while the engine runs violates the single-writer model. The read index
// is rebuilt here from the pool's recovered contents — recovery has already
// rolled back any uncommitted epoch, so nothing rolled back can be indexed.
func New(pool *pax.Pool, slot int, cfg Config) (*Engine, error) {
	kv, err := pax.NewMap(pool, slot)
	if err != nil {
		return nil, fmt.Errorf("server: binding map root: %w", err)
	}
	e := &Engine{
		pool: pool,
		kv:   kv,
		cfg:  cfg.withDefaults(),
		idx:  newReadIndex(),
		stop: make(chan struct{}),
	}
	kv.ForEach(func(key, value []byte) bool {
		// ForEach hands out fresh copies, so the index can keep them.
		s := e.idx.stripe(key)
		s.m[string(key)] = value
		return true
	})
	e.stats.ReadIndexRebuilt.Add(uint64(e.idx.len()))
	e.reqs = make(chan *request, e.cfg.QueueDepth)
	e.reg = pool.StatsRegistry()
	e.reg.RegisterCounter("paxserve_acked_writes", &e.stats.AckedWrites)
	e.reg.RegisterCounter("paxserve_gets", &e.stats.Gets)
	e.reg.RegisterCounter("paxserve_group_commits", &e.stats.GroupCommits)
	e.reg.RegisterCounter("paxserve_batch_max", &e.stats.BatchMax)
	e.reg.RegisterCounter("paxserve_queue_rejects", &e.stats.Rejects)
	e.reg.RegisterCounter("paxserve_read_index_hits", &e.stats.ReadIndexHits)
	e.reg.RegisterCounter("paxserve_read_index_misses", &e.stats.ReadIndexMisses)
	e.reg.RegisterCounter("paxserve_read_index_rebuilt", &e.stats.ReadIndexRebuilt)
	e.wg.Add(1)
	go e.loop()
	return e, nil
}

// Stats exposes the engine counters.
func (e *Engine) Stats() *EngineStats { return &e.stats }

// Registry is the merged engine + pool metrics registry. The pool gauges
// read simulator state, so sample it either via the STATS request (which
// runs on the writer loop) or after Close — not concurrently with traffic.
func (e *Engine) Registry() *stats.Registry { return e.reg }

func (r *request) finish(res result) { r.done <- res }

// begin enqueues a request without waiting for its result. On nil the
// engine owns the request and will deliver exactly one result on req.done;
// the caller must read it. Callers that enqueue from a single goroutine get
// their requests applied in call order — that is what lets the TCP server
// pipeline a connection's writes without reordering them.
//
// GETs (unless Config.QueuedReads) never reach the queue: begin answers them
// inline from the read index, which is what lets the TCP server resolve a
// pipelined GET without serializing it behind the connection's PUT acks.
func (e *Engine) begin(req *request) error {
	if req.op == opGet && !e.cfg.QueuedReads {
		v, ok, err := e.Get(req.key)
		if err != nil {
			return err
		}
		req.finish(result{value: v, found: ok})
		return nil
	}
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	// Register as in flight while still under the lock: markClosed's write
	// lock then happens-after this Add, so Close waits for us before closing
	// the queue channel — without us holding any lock across the wait.
	e.inflight.Add(1)
	e.mu.RUnlock()
	defer e.inflight.Done()
	// Fast path: the queue usually has room, and a timer allocation per
	// request is measurable on the PUT hot loop. Only the contended path
	// pays for one.
	select {
	case e.reqs <- req:
		return nil
	default:
	}
	timer := time.NewTimer(e.cfg.EnqueueTimeout)
	defer timer.Stop()
	select {
	case e.reqs <- req:
		return nil
	case <-timer.C:
		e.stats.Rejects.Inc()
		return ErrBusy
	case <-e.stop:
		return ErrClosed
	}
}

// do runs one request to completion through the queue, recycling the
// request struct on every path.
func (e *Engine) do(op opKind, key, value []byte) result {
	req := newRequest(op, key, value)
	if err := e.begin(req); err != nil {
		req.release()
		return result{err: err}
	}
	res := <-req.done
	req.release()
	return res
}

// Get returns the current value for key, served from the volatile read
// index: applied order, not necessarily durable yet — read-your-writes with
// respect to acked mutations, exactly the guarantee queued reads gave. Get
// never blocks behind the request queue or a commit in flight. The returned
// slice is the caller's to keep.
//
// With Config.QueuedReads the read takes the writer queue instead.
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	if e.cfg.QueuedReads {
		res := e.do(opGet, key, nil)
		return res.value, res.found, res.err
	}
	e.mu.RLock()
	closed := e.closed
	e.mu.RUnlock()
	if closed {
		return nil, false, ErrClosed
	}
	v, ok := e.idx.get(key)
	e.stats.Gets.Inc()
	if ok {
		e.stats.ReadIndexHits.Inc()
	} else {
		e.stats.ReadIndexMisses.Inc()
	}
	return v, ok, nil
}

// Put stores key=value and blocks until the write's group commit makes it
// durable; the returned epoch is the snapshot containing it.
func (e *Engine) Put(key, value []byte) (uint64, error) {
	res := e.do(opPut, key, value)
	return res.epoch, res.err
}

// Delete removes key, blocking like Put; found reports prior presence.
func (e *Engine) Delete(key []byte) (bool, uint64, error) {
	res := e.do(opDelete, key, nil)
	return res.found, res.epoch, res.err
}

// Persist forces a group commit and returns the durable epoch.
func (e *Engine) Persist() (uint64, error) {
	res := e.do(opPersist, nil, nil)
	return res.epoch, res.err
}

// StatsText renders the metrics registry on the writer loop (so sampling
// never races the mutator) and returns the `name value` lines.
func (e *Engine) StatsText() (string, error) {
	res := e.do(opStats, nil, nil)
	return res.text, res.err
}

// Snapshot samples the metrics registry on the writer loop and returns the
// raw summary — the structured form of StatsText, for callers (the sharded
// router) that merge several engines' metrics before rendering.
func (e *Engine) Snapshot() (stats.Summary, error) {
	res := e.do(opSnapshot, nil, nil)
	return res.snap, res.err
}

// markClosed flips the closed flag once; reports whether this call did it.
func (e *Engine) markClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.closed = true
	return true
}

// Close drains the queue, commits every remaining mutation plus the open
// epoch, and stops the writer loop. Requests arriving after Close fail with
// ErrClosed. Close does not close the pool — the owner does.
func (e *Engine) Close() error {
	if e.markClosed() {
		// Every begin that passed the closed check is registered in
		// inflight; the writer loop is still consuming, so those blocked
		// sends drain promptly (bounded by EnqueueTimeout). Only then is it
		// safe to close the channel.
		e.inflight.Wait()
		close(e.reqs)
	}
	e.wg.Wait()
	return nil
}

// Crash is the test hook for failure injection: it stops the writer loop
// without committing, abandoning applied-but-unacked mutations exactly as a
// machine crash would. Queued and in-flight requests fail with ErrClosed.
func (e *Engine) Crash() {
	if !e.markClosed() {
		// Already closed (gracefully or by an earlier Crash): nothing to
		// abandon, just wait the loop out.
		e.wg.Wait()
		return
	}
	close(e.stop)
	e.wg.Wait()
	// Senders blocked on a full queue saw e.stop (or completed their send);
	// once inflight drains, nothing can enter the queue anymore — new
	// begins see closed — so this drain is exhaustive.
	e.inflight.Wait()
	for {
		select {
		case req := <-e.reqs:
			req.finish(result{err: ErrClosed})
		default:
			return
		}
	}
}

// apply executes one request against the pool. Mutations and persists are
// returned as waiters to be acked at the batch commit; reads and stats are
// answered immediately. Applied mutations are mirrored into the read index
// before anything else can observe them as acked.
func (e *Engine) apply(req *request) (waiter *request) {
	switch req.op {
	case opGet:
		// Only Config.QueuedReads sends GETs here; the index answers the
		// rest in begin.
		v, ok := e.kv.Get(req.key)
		e.stats.Gets.Inc()
		req.finish(result{value: v, found: ok})
		return nil
	case opPut:
		if err := e.kv.Put(req.key, req.value); err != nil {
			req.finish(result{err: err})
			return nil
		}
		e.idx.put(req.key, req.value)
		return req
	case opDelete:
		found, err := e.kv.Delete(req.key)
		if err != nil {
			req.finish(result{err: err})
			return nil
		}
		e.idx.delete(req.key)
		req.found = found
		return req
	case opPersist:
		return req
	case opStats:
		req.finish(result{text: e.reg.Text()})
		return nil
	case opSnapshot:
		req.finish(result{snap: e.reg.Snapshot()})
		return nil
	}
	req.finish(result{err: fmt.Errorf("server: unknown op %d", req.op)})
	return nil
}

// commit snapshots the pool and acks every waiter with the durable epoch.
func (e *Engine) commit(waiters []*request) {
	if len(waiters) == 0 {
		return
	}
	var st pax.PersistStats
	if e.cfg.Async {
		st = e.pool.PersistAsync()
	} else {
		st = e.pool.Persist()
	}
	if e.cfg.CommitLatency > 0 {
		// The medium is busy committing; the acks must wait for it. Other
		// shards' writer loops keep running — this sleep is per pool — and
		// index reads proceed throughout: the commit holds no index locks.
		time.Sleep(e.cfg.CommitLatency)
	}
	e.stats.GroupCommits.Inc()
	e.stats.BatchMax.StoreMax(uint64(len(waiters)))
	for _, w := range waiters {
		if w.op != opPersist {
			e.stats.AckedWrites.Inc()
		}
		w.finish(result{found: w.found, epoch: st.Epoch})
	}
}

func failAll(waiters []*request, err error) {
	for _, w := range waiters {
		w.finish(result{err: err})
	}
}

// loop is the writer goroutine: it owns the pool and runs batches to
// completion. Queued reads inside a batch are answered as they are applied;
// the batch commits when it is full, when MaxDelay expires, on an explicit
// persist, or when the engine drains for shutdown.
func (e *Engine) loop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case req, ok := <-e.reqs:
			if !ok {
				// Graceful shutdown: every prior batch committed before
				// this point, so one empty persist seals the open epoch.
				e.pool.Persist()
				return
			}
			if !e.runBatch(req) {
				return
			}
		}
	}
}

// runBatch applies first and keeps collecting until a commit condition
// fires, then commits. It reports false when the engine crashed mid-batch.
func (e *Engine) runBatch(first *request) bool {
	var waiters []*request
	force := first.op == opPersist
	if w := e.apply(first); w != nil {
		waiters = append(waiters, w)
	}
	if len(waiters) == 0 {
		return true // pure reads/stats: nothing to commit
	}
	timer := time.NewTimer(e.cfg.MaxDelay)
	defer timer.Stop()
	for !force && len(waiters) < e.cfg.MaxBatch {
		select {
		case <-e.stop:
			failAll(waiters, ErrClosed)
			return false
		case <-timer.C:
			force = true
		case req, ok := <-e.reqs:
			if !ok {
				// Closing: commit what we have; loop sees !ok next and
				// seals the epoch.
				force = true
				continue
			}
			if req.op == opPersist {
				force = true
			}
			if w := e.apply(req); w != nil {
				waiters = append(waiters, w)
			}
		}
	}
	e.commit(waiters)
	return true
}
