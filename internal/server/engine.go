// Package server is the paxserve subsystem: a single-writer commit engine
// that multiplexes many concurrent client goroutines onto one PAX pool, plus
// a TCP front end speaking the wire protocol.
//
// The paper's programming model is single-threaded: no goroutine may mutate
// the pool while Persist runs (§3.5). Instead of pushing that burden onto
// every caller, the engine funnels all operations through one writer
// goroutine and turns Persist into a *group commit*: mutations are applied
// in arrival order, and one snapshot per batch — bounded by MaxBatch and
// MaxDelay — makes the whole batch durable before its callers are acked. N
// concurrent writers therefore share one snapshot's cost, the same
// amortization that makes PAX epochs (and Snapshot's msync batching) fast.
package server

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"pax"
	"pax/internal/stats"
)

// Engine errors.
var (
	// ErrClosed is returned for requests after Close (or a crash).
	ErrClosed = errors.New("server: engine closed")
	// ErrBusy is returned when the request queue stays full past the
	// enqueue timeout — the backpressure signal.
	ErrBusy = errors.New("server: request queue full")
)

// Config tunes the engine.
type Config struct {
	// MaxBatch is the most acked mutations per group commit (default 128).
	MaxBatch int
	// MaxDelay bounds how long the first mutation of a batch waits for
	// company before the commit is forced (default 1ms).
	MaxDelay time.Duration
	// QueueDepth bounds the request queue; a full queue pushes back on
	// clients (default 1024).
	QueueDepth int
	// EnqueueTimeout is how long a request waits for queue space before
	// failing with ErrBusy (default 5s).
	EnqueueTimeout time.Duration
	// Async commits batches with PersistAsync (§6 pipelined persist): the
	// snapshot point is unchanged but the writer loop overlaps the device's
	// commit with the next batch. Acks then mean "snapshot taken", not
	// "snapshot fully on media".
	Async bool
	// CommitLatency models the real-time cost of making an epoch durable on
	// the backing medium (an msync-class sync, an Optane flush): the writer
	// blocks this long per group commit, after Persist and before acking the
	// batch. The in-memory simulator otherwise commits at host-CPU speed,
	// which hides the serialization the engine actually has on real media —
	// one commit in flight per pool. Sharded engines overlap this latency
	// across shards, which is exactly what the loadgen shard sweep measures.
	// Zero (the default) commits at simulator speed.
	CommitLatency time.Duration
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = 5 * time.Second
	}
	return c
}

type opKind byte

const (
	opGet opKind = iota
	opPut
	opDelete
	opPersist
	opStats
	opSnapshot
)

type result struct {
	value []byte
	found bool
	epoch uint64
	text  string
	snap  stats.Summary
	err   error
}

type request struct {
	op         opKind
	key, value []byte
	found      bool        // Delete: key was present (carried to the ack)
	done       chan result // buffered(1); exactly one result per request
}

// EngineStats are the engine's own counters (the pool's live underneath).
type EngineStats struct {
	AckedWrites  stats.Counter // mutations acked durable
	Gets         stats.Counter // reads served
	GroupCommits stats.Counter // snapshots taken by the writer loop
	BatchMax     stats.Counter // largest batch committed (gauge-as-counter)
	Rejects      stats.Counter // requests dropped by backpressure
}

// Engine is the concurrent serving engine over one pool. All methods are
// safe for concurrent use; internally a single writer goroutine owns the
// pool, so the §3.5 single-mutator rule holds by construction.
type Engine struct {
	pool *pax.Pool
	kv   *pax.Map
	cfg  Config

	reqs chan *request
	stop chan struct{} // closed by Crash: abandon uncommitted work

	mu     sync.RWMutex // guards closed against concurrent submit/Close
	closed bool

	wg    sync.WaitGroup
	stats EngineStats
	reg   *stats.Registry
}

// New builds an engine serving the map rooted at slot of pool and starts its
// writer loop. The engine becomes the pool's only legal mutator: direct pool
// use while the engine runs violates the single-writer model.
func New(pool *pax.Pool, slot int, cfg Config) (*Engine, error) {
	kv, err := pax.NewMap(pool, slot)
	if err != nil {
		return nil, fmt.Errorf("server: binding map root: %w", err)
	}
	e := &Engine{
		pool: pool,
		kv:   kv,
		cfg:  cfg.withDefaults(),
		stop: make(chan struct{}),
	}
	e.reqs = make(chan *request, e.cfg.QueueDepth)
	e.reg = pool.StatsRegistry()
	e.reg.RegisterCounter("paxserve_acked_writes", &e.stats.AckedWrites)
	e.reg.RegisterCounter("paxserve_gets", &e.stats.Gets)
	e.reg.RegisterCounter("paxserve_group_commits", &e.stats.GroupCommits)
	e.reg.RegisterCounter("paxserve_batch_max", &e.stats.BatchMax)
	e.reg.RegisterCounter("paxserve_queue_rejects", &e.stats.Rejects)
	e.wg.Add(1)
	go e.loop()
	return e, nil
}

// Stats exposes the engine counters.
func (e *Engine) Stats() *EngineStats { return &e.stats }

// Registry is the merged engine + pool metrics registry. The pool gauges
// read simulator state, so sample it either via the STATS request (which
// runs on the writer loop) or after Close — not concurrently with traffic.
func (e *Engine) Registry() *stats.Registry { return e.reg }

func (r *request) finish(res result) { r.done <- res }

// begin enqueues a request without waiting for its result. On nil the
// engine owns the request and will deliver exactly one result on req.done;
// the caller must read it. Callers that enqueue from a single goroutine get
// their requests applied in call order — that is what lets the TCP server
// pipeline a connection's requests without reordering its writes.
func (e *Engine) begin(req *request) error {
	e.mu.RLock()
	if e.closed {
		e.mu.RUnlock()
		return ErrClosed
	}
	// Fast path: the queue usually has room, and a timer allocation per
	// request is measurable on the PUT/GET hot loop. Only the contended
	// path pays for one.
	select {
	case e.reqs <- req:
		e.mu.RUnlock()
		return nil
	default:
	}
	timer := time.NewTimer(e.cfg.EnqueueTimeout)
	defer timer.Stop()
	select {
	case e.reqs <- req:
		e.mu.RUnlock()
		return nil
	case <-timer.C:
		e.mu.RUnlock()
		e.stats.Rejects.Inc()
		return ErrBusy
	case <-e.stop:
		e.mu.RUnlock()
		return ErrClosed
	}
}

func (e *Engine) submit(req *request) result {
	if err := e.begin(req); err != nil {
		return result{err: err}
	}
	return <-req.done
}

// Get returns the current value for key (applied order, not necessarily
// durable yet — the engine's reads are read-your-writes).
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	res := e.submit(&request{op: opGet, key: key, done: make(chan result, 1)})
	return res.value, res.found, res.err
}

// Put stores key=value and blocks until the write's group commit makes it
// durable; the returned epoch is the snapshot containing it.
func (e *Engine) Put(key, value []byte) (uint64, error) {
	res := e.submit(&request{op: opPut, key: key, value: value, done: make(chan result, 1)})
	return res.epoch, res.err
}

// Delete removes key, blocking like Put; found reports prior presence.
func (e *Engine) Delete(key []byte) (bool, uint64, error) {
	res := e.submit(&request{op: opDelete, key: key, done: make(chan result, 1)})
	return res.found, res.epoch, res.err
}

// Persist forces a group commit and returns the durable epoch.
func (e *Engine) Persist() (uint64, error) {
	res := e.submit(&request{op: opPersist, done: make(chan result, 1)})
	return res.epoch, res.err
}

// StatsText renders the metrics registry on the writer loop (so sampling
// never races the mutator) and returns the `name value` lines.
func (e *Engine) StatsText() (string, error) {
	res := e.submit(&request{op: opStats, done: make(chan result, 1)})
	return res.text, res.err
}

// Snapshot samples the metrics registry on the writer loop and returns the
// raw summary — the structured form of StatsText, for callers (the sharded
// router) that merge several engines' metrics before rendering.
func (e *Engine) Snapshot() (stats.Summary, error) {
	res := e.submit(&request{op: opSnapshot, done: make(chan result, 1)})
	return res.snap, res.err
}

// markClosed flips the closed flag once; reports whether this call did it.
func (e *Engine) markClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.closed = true
	return true
}

// Close drains the queue, commits every remaining mutation plus the open
// epoch, and stops the writer loop. Requests arriving after Close fail with
// ErrClosed. Close does not close the pool — the owner does.
func (e *Engine) Close() error {
	if e.markClosed() {
		close(e.reqs)
	}
	e.wg.Wait()
	return nil
}

// Crash is the test hook for failure injection: it stops the writer loop
// without committing, abandoning applied-but-unacked mutations exactly as a
// machine crash would. Queued and in-flight requests fail with ErrClosed.
func (e *Engine) Crash() {
	if !e.markClosed() {
		// Already closed (gracefully or by an earlier Crash): nothing to
		// abandon, just wait the loop out.
		e.wg.Wait()
		return
	}
	close(e.stop)
	e.wg.Wait()
	// The loop is gone; fail whatever is still sitting in the queue.
	for {
		select {
		case req := <-e.reqs:
			req.finish(result{err: ErrClosed})
		default:
			return
		}
	}
}

// apply executes one request against the pool. Mutations and persists are
// returned as waiters to be acked at the batch commit; reads and stats are
// answered immediately.
func (e *Engine) apply(req *request) (waiter *request) {
	switch req.op {
	case opGet:
		v, ok := e.kv.Get(req.key)
		e.stats.Gets.Inc()
		req.finish(result{value: v, found: ok})
		return nil
	case opPut:
		if err := e.kv.Put(req.key, req.value); err != nil {
			req.finish(result{err: err})
			return nil
		}
		return req
	case opDelete:
		found, err := e.kv.Delete(req.key)
		if err != nil {
			req.finish(result{err: err})
			return nil
		}
		req.found = found
		return req
	case opPersist:
		return req
	case opStats:
		req.finish(result{text: e.reg.Text()})
		return nil
	case opSnapshot:
		req.finish(result{snap: e.reg.Snapshot()})
		return nil
	}
	req.finish(result{err: fmt.Errorf("server: unknown op %d", req.op)})
	return nil
}

// commit snapshots the pool and acks every waiter with the durable epoch.
func (e *Engine) commit(waiters []*request) {
	if len(waiters) == 0 {
		return
	}
	var st pax.PersistStats
	if e.cfg.Async {
		st = e.pool.PersistAsync()
	} else {
		st = e.pool.Persist()
	}
	if e.cfg.CommitLatency > 0 {
		// The medium is busy committing; the acks must wait for it. Other
		// shards' writer loops keep running — this sleep is per pool.
		time.Sleep(e.cfg.CommitLatency)
	}
	e.stats.GroupCommits.Inc()
	e.stats.BatchMax.StoreMax(uint64(len(waiters)))
	for _, w := range waiters {
		if w.op != opPersist {
			e.stats.AckedWrites.Inc()
		}
		w.finish(result{found: w.found, epoch: st.Epoch})
	}
}

func failAll(waiters []*request, err error) {
	for _, w := range waiters {
		w.finish(result{err: err})
	}
}

// loop is the writer goroutine: it owns the pool and runs batches to
// completion. Reads inside a batch are answered as they are applied; the
// batch commits when it is full, when MaxDelay expires, on an explicit
// persist, or when the engine drains for shutdown.
func (e *Engine) loop() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case req, ok := <-e.reqs:
			if !ok {
				// Graceful shutdown: every prior batch committed before
				// this point, so one empty persist seals the open epoch.
				e.pool.Persist()
				return
			}
			if !e.runBatch(req) {
				return
			}
		}
	}
}

// runBatch applies first and keeps collecting until a commit condition
// fires, then commits. It reports false when the engine crashed mid-batch.
func (e *Engine) runBatch(first *request) bool {
	var waiters []*request
	force := first.op == opPersist
	if w := e.apply(first); w != nil {
		waiters = append(waiters, w)
	}
	if len(waiters) == 0 {
		return true // pure reads: nothing to commit
	}
	timer := time.NewTimer(e.cfg.MaxDelay)
	defer timer.Stop()
	for !force && len(waiters) < e.cfg.MaxBatch {
		select {
		case <-e.stop:
			failAll(waiters, ErrClosed)
			return false
		case <-timer.C:
			force = true
		case req, ok := <-e.reqs:
			if !ok {
				// Closing: commit what we have; loop sees !ok next and
				// seals the epoch.
				force = true
				continue
			}
			if req.op == opPersist {
				force = true
			}
			if w := e.apply(req); w != nil {
				waiters = append(waiters, w)
			}
		}
	}
	e.commit(waiters)
	return true
}
