// Package server is the paxserve subsystem: a single-writer commit engine
// that multiplexes many concurrent client goroutines onto one PAX pool, plus
// a TCP front end speaking the wire protocol.
//
// The paper's programming model is single-threaded: no goroutine may mutate
// the pool while Persist runs (§3.5). Instead of pushing that burden onto
// every caller, the engine funnels all operations through one writer
// goroutine and turns Persist into a *group commit*: mutations are applied
// in arrival order, and one snapshot per batch — bounded by MaxBatch and
// MaxDelay — makes the whole batch durable before its callers are acked. N
// concurrent writers therefore share one snapshot's cost, the same
// amortization that makes PAX epochs (and Snapshot's msync batching) fast.
//
// Group commits run as a three-stage pipeline, the serving-path analogue of
// the paper's epoch pipelining (§6: overlap epoch N's writeback with epoch
// N+1's execution) and of NearPM's split between ordering at the host and
// ordering at the device:
//
//	sealer    — the writer goroutine: applies requests, collects a batch,
//	            seals it, and hands it to the persister. The sealer runs at
//	            host speed: it never waits for modeled media, only for the
//	            previous batch's snapshot point and — when the pipeline's
//	            run-ahead buffer is full — for the persister to drain
//	            (paxserve_pipeline_stall_ns).
//	persister — issues the snapshot for each sealed batch, in seal order.
//	            Snapshot points stay serialized (§3.5: a mutex excludes
//	            applies during the persist call), but the modeled media time
//	            is not spent here, so snapshots too run at host speed.
//	acker     — releases each epoch's ack-on-durable waiters, in epoch
//	            order, once its modeled media commit completes. The acker
//	            models the device as MaxInflightCommits commit slots, each
//	            busy for CommitLatency per epoch: commit N's media work
//	            starts at its persist or when slot N mod W frees, whichever
//	            is later — so up to W media commits overlap instead of
//	            serializing.
//
// MaxInflightCommits=1 serializes the modeled media — one commit on the
// device at a time, ack-on-durable pacing identical to the pre-pipeline
// serial engine — and is the A/B baseline the ackpipe experiment measures
// against. A failed persist of epoch N fails N's waiters, seals the engine,
// and fails every later sealed-but-unpersisted batch — an unacked in-flight
// epoch is legal to abandon (§3.4 recovery rolls it back), but it must never
// ack. Epochs persisted before N still ack: their syncs already succeeded.
//
// Reads do not take that path: §3.5 constrains mutation, not observation, so
// the writer maintains a volatile read index (readindex.go) it updates at
// apply time, and Get serves from it directly — a GET never enters the
// request queue and never waits behind a commit in flight.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pax"
	"pax/internal/blackbox"
	"pax/internal/stats"
)

// Engine errors.
var (
	// ErrClosed is returned for requests after Close (or a crash).
	ErrClosed = errors.New("server: engine closed")
	// ErrBusy is returned when the request queue stays full past the
	// enqueue timeout — the backpressure signal. The wire layer maps it to
	// StatusBusy so clients can retry it, distinct from fatal errors.
	ErrBusy = errors.New("server: request queue full")
	// ErrSealed is wrapped by every error an engine returns after a
	// durability failure sealed it fail-stop: a group commit could not
	// reach media even after retries, so the engine stops accepting work
	// rather than acking writes it cannot make durable. Previously acked
	// writes are unaffected (they synced with their own commits). Detect
	// with errors.Is(err, ErrSealed).
	ErrSealed = errors.New("server: engine sealed by durability failure")
)

// Config tunes the engine.
type Config struct {
	// MaxBatch is the most acked mutations per group commit (default 128).
	MaxBatch int
	// MaxDelay bounds how long the first mutation of a batch waits for
	// company before the commit is forced (default 1ms).
	MaxDelay time.Duration
	// QueueDepth bounds the request queue; a full queue pushes back on
	// clients (default 1024).
	QueueDepth int
	// EnqueueTimeout is how long a request waits for queue space before
	// failing with ErrBusy (default 5s).
	EnqueueTimeout time.Duration
	// Async commits batches with PersistAsync (§6 pipelined persist): the
	// snapshot point is unchanged but the writer loop overlaps the device's
	// commit with the next batch. Acks then mean "snapshot taken", not
	// "snapshot fully on media".
	Async bool
	// CommitLatency models the real-time cost of making an epoch durable on
	// the backing medium (an msync-class sync, an Optane flush): the writer
	// blocks this long per group commit, after Persist and before acking the
	// batch. The in-memory simulator otherwise commits at host-CPU speed,
	// which hides the serialization the engine actually has on real media —
	// one commit in flight per pool. Sharded engines overlap this latency
	// across shards, which is exactly what the loadgen shard sweep measures.
	// Zero (the default) commits at simulator speed.
	CommitLatency time.Duration
	// QueuedReads routes GETs through the writer queue instead of the read
	// index — the engine's pre-index behavior, kept so the read-path win
	// stays measurable (`paxbench -loadgen -queued-reads`) and so a queued
	// read remains available as a consistency oracle in tests. A queued GET
	// serializes behind every request ahead of it, including commits in
	// flight.
	QueuedReads bool
	// CommitRetries is how many extra persist attempts a group commit whose
	// media sync failed gets before the engine gives up and seals
	// (default 3; negative disables retries). A fault that clears within
	// the retry budget is transient — the batch still acks, no client sees
	// it. One that does not is treated as persistent media failure.
	CommitRetries int
	// CommitRetryDelay is the wait before the first commit retry, doubling
	// per attempt (default 2ms).
	CommitRetryDelay time.Duration
	// SlowCommit is the flight-recorder pin threshold: a group commit slower
	// than this end to end (or one that failed) is copied to the pinned
	// outlier ring so it survives after the recent ring wraps (default 10ms;
	// negative disables pinning — failed commits are still pinned).
	SlowCommit time.Duration
	// TraceDepth is the flight recorder's recent-ring size in commits
	// (default 256); SlowDepth sizes the pinned outlier ring that holds
	// failed and over-threshold commits (default 64). A postmortem wants
	// deeper rings than live debugging does.
	TraceDepth int
	SlowDepth  int
	// MaxInflightCommits is the modeled media commit concurrency: how many
	// epochs' CommitLatency may overlap on the device at once (default 2).
	// While epoch N's media commit is outstanding the sealer keeps applying
	// and sealing later epochs at host speed, and up to W of their modeled
	// media commits proceed concurrently. 1 serializes the media — the
	// ack-on-durable pacing of the pre-pipeline serial engine, and the A/B
	// baseline the ackpipe experiment measures against. The window does not
	// gate the sealer: applying and snapshotting run ahead of the modeled
	// media (bounded by the pipeline's run-ahead buffer), which is what
	// keeps ack-on-apply latency at host speed under load.
	MaxInflightCommits int
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 128
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.EnqueueTimeout <= 0 {
		c.EnqueueTimeout = 5 * time.Second
	}
	switch {
	case c.CommitRetries == 0:
		c.CommitRetries = 3
	case c.CommitRetries < 0:
		c.CommitRetries = 0
	}
	if c.CommitRetryDelay <= 0 {
		c.CommitRetryDelay = 2 * time.Millisecond
	}
	switch {
	case c.SlowCommit == 0:
		c.SlowCommit = DefaultSlowCommit
	case c.SlowCommit < 0:
		c.SlowCommit = 0
	}
	if c.TraceDepth <= 0 {
		c.TraceDepth = DefaultTraceDepth
	}
	if c.SlowDepth <= 0 {
		c.SlowDepth = DefaultSlowDepth
	}
	if c.MaxInflightCommits <= 0 {
		c.MaxInflightCommits = 2
	}
	return c
}

// AckPolicy selects when a mutation is acknowledged to its caller.
type AckPolicy uint8

const (
	// AckDurable acks a mutation only after its group commit reached media:
	// every ack means durable — the engine's original contract, and the
	// default.
	AckDurable AckPolicy = iota
	// AckApply acks a mutation as soon as it is applied and visible in the
	// read index, with durability asynchronous (NearPM's at-the-host
	// ordering split). The ack reports the open epoch the write will commit
	// in; if the engine crashes before that epoch persists, the acked write
	// rolls back. Readers were never exposed to the rollback as durable
	// state — the read index is rebuilt from the recovered pool.
	AckApply
)

type opKind byte

const (
	opGet opKind = iota
	opPut
	opDelete
	opPersist
	opStats
	opSnapshot
	opTrace
	// opSplit asks the sharded router to split a shard live (migrate.go); a
	// plain Engine has no shards and rejects it at begin.
	opSplit
	// opMerge is the inverse: drain the coldest shard and shrink the fleet
	// (merge.go). Like opSplit it only makes sense on the sharded router.
	opMerge
	// opBarrier is a queue flush: it applies as a no-op and acks at apply
	// time, so its return means every previously enqueued request has been
	// applied — without forcing a commit the way opPersist does. Migration
	// uses it as the drain fence before copying a slot.
	opBarrier
	// opEvents returns the recent structured lifecycle events (events.go).
	// Like opTrace it is answered inline, so a sealed engine still serves
	// the events that explain the seal.
	opEvents
)

type result struct {
	value []byte
	found bool
	epoch uint64
	text  string
	snap  stats.Summary
	err   error
}

type request struct {
	op         opKind
	key, value []byte
	found      bool        // Delete: key was present (carried to the ack)
	ackOnApply bool        // AckApply: finish at apply time, durability async
	shard      int         // Split: source to split; Merge: victim to drain; -1 = auto-pick
	done       chan result // buffered(1); exactly one result per request
}

// requestPool recycles request structs together with their done channels:
// a request's lifecycle is strictly get → begin → one result received →
// release, so the buffered(1) channel is always empty again at release time.
var requestPool = sync.Pool{
	New: func() any { return &request{done: make(chan result, 1)} },
}

// newRequest takes a pooled request. The caller must either fail to begin it
// (and release it) or receive exactly one result from done (and release it).
func newRequest(op opKind, key, value []byte) *request {
	r := requestPool.Get().(*request)
	r.op, r.key, r.value, r.found, r.ackOnApply, r.shard = op, key, value, false, false, 0
	return r
}

// release returns a request to the pool. Only call once the engine cannot
// touch it anymore: after its result was received, or after begin failed.
func (r *request) release() {
	r.key, r.value = nil, nil
	requestPool.Put(r)
}

// sealedBatch is one group commit handed from the sealer to the persister:
// the batch's ack-on-durable waiters, how many mutations it carries
// (ack-on-apply mutations have no waiter but still need the commit), and
// how the batch was sealed.
type sealedBatch struct {
	waiters   []*request
	mutations int
	start     time.Time
	sealNS    int64
	inflight  int // pipeline depth at seal time, this batch included

	// snapped is closed by the persister once this batch's snapshot point
	// has settled (persist issued, or the batch abandoned). The sealer
	// waits for it before applying the next batch's first mutation, so a
	// batch's mutations land in exactly its own epoch — the overlap is
	// media time only, never snapshot points — and the crash contract
	// stays exact: an unacked ack-on-durable write is never in a durable
	// epoch, so it always rolls back.
	snapped chan struct{}
}

// issuedCommit is a persisted-but-not-yet-acked epoch traveling from the
// persister to the acker: the snapshot is taken (really synced, in
// file-backed mode), but the modeled media commit has not completed. The
// acker assigns it a device slot and sleeps out CommitLatency from
// max(persisted, slot free), so the media time of successive epochs
// overlaps up to MaxInflightCommits deep.
type issuedCommit struct {
	b         *sealedBatch
	st        pax.PersistStats
	rec       CommitRecord
	issued    time.Time // persist start, for the persist-stage accounting
	persisted time.Time // persist return: ready for its device slot
}

// EngineStats are the engine's own counters (the pool's live underneath).
type EngineStats struct {
	AckedWrites  stats.Counter // mutations acked durable (at commit)
	AckedOnApply stats.Counter // mutations acked at apply time (AckApply), durability pending
	Gets         stats.Counter // reads served (index + queued)
	GroupCommits stats.Counter // snapshots taken by the writer loop
	BatchMax     stats.Counter // largest batch committed (gauge-as-counter)
	Rejects      stats.Counter // requests dropped by backpressure

	// Read-index counters: hits/misses for index-served GETs, and the entry
	// count rebuilt from the recovered pool at startup.
	ReadIndexHits    stats.Counter
	ReadIndexMisses  stats.Counter
	ReadIndexRebuilt stats.Counter

	// Durability-failure counters: persist attempts retried after a media
	// fault, and group commits that failed permanently (each one seals the
	// engine, so CommitFailures is effectively 0 or 1).
	CommitRetries  stats.Counter
	CommitFailures stats.Counter

	// Commit-pipeline latency histograms (wall-clock nanoseconds), one per
	// stage of a group commit: how long an enqueue waited for queue space
	// (0 on the uncontended fast path), how long the batch stayed open
	// collecting company, the persist itself (retries and modeled media
	// latency included), the ack fan-out, and the whole batch end to end.
	EnqueueWaitNS stats.LatencyHistogram
	BatchSealNS   stats.LatencyHistogram
	PersistNS     stats.LatencyHistogram
	AckNS         stats.LatencyHistogram
	CommitNS      stats.LatencyHistogram

	// PipelineStallNS is how long the sealer waited to hand a sealed batch
	// to the pipeline — 0 when the run-ahead buffer had room, so the count
	// matches seals and the p99 reflects how often the media backlog
	// actually pushed back on applying.
	PipelineStallNS stats.LatencyHistogram

	// DeltaBytes is bytes persisted per group commit (a size histogram on
	// the latency machinery): the delta record in epoch-log mode, the full
	// image otherwise. Its mean over the pool size is the engine's write
	// amplification, exported as paxserve_epoch_amplification.
	DeltaBytes stats.LatencyHistogram

	// GET service time, split by read-index hit/miss (queued reads land in
	// the same pair, classified by whether the key was found).
	GetHitNS  stats.LatencyHistogram
	GetMissNS stats.LatencyHistogram
}

// Engine is the concurrent serving engine over one pool. All methods are
// safe for concurrent use; internally a single writer goroutine owns the
// pool, so the §3.5 single-mutator rule holds by construction. Reads are
// served off the writer loop from the volatile read index (see readindex.go
// for the consistency contract).
type Engine struct {
	pool *pax.Pool
	kv   *pax.Map
	cfg  Config
	idx  *readIndex

	reqs chan *request
	stop chan struct{} // closed by Crash/seal: abandon uncommitted work

	// Pipeline plumbing. poolMu is the §3.5 guard under concurrency: the
	// sealer holds it per apply, the persister per persist attempt, so no
	// mutation ever overlaps a snapshot point. sealedq carries sealed
	// batches sealer→persister and ackq persisted epochs persister→acker.
	// ackq's capacity is the pipeline's run-ahead buffer: how many
	// snapshotted epochs may await their modeled media completion before
	// the sealer is pushed back on (paxserve_pipeline_stall_ns) — the
	// memory bound on how far applying runs ahead of durability.
	poolMu  sync.Mutex
	sealedq chan *sealedBatch
	ackq    chan *issuedCommit
	depth   atomic.Int64 // epochs persisting or awaiting modeled media: the inflight-commits gauge

	// lastSealed is the batch whose snapshot point the sealer must wait out
	// before opening the next batch. Sealer-goroutine-only; no locking.
	lastSealed *sealedBatch

	// mu guards closed and sealErr. It is never held across a blocking
	// enqueue — begin registers with inflight under the read lock and
	// releases before waiting for queue space — so Close/Crash acquire the
	// write lock immediately even when the queue is full.
	mu       sync.RWMutex
	closed   bool
	sealErr  error          // non-nil once a durability failure sealed the engine
	stopOnce sync.Once      // close(stop) can race between Crash and seal
	inflight sync.WaitGroup // begins past the closed check, not yet enqueued or failed

	wg    sync.WaitGroup
	stats EngineStats
	reg   *stats.Registry
	rec   *flightRecorder

	// events is the recent-lifecycle-events ring (events.go); the sharded
	// router installs itself as its sink so fleet-level consumers (EVENTS,
	// the black-box journal) see every shard's events. lastStallEvent
	// rate-limits pipeline-stall onset events (unix nanos of the last one).
	events         eventHub
	lastStallEvent atomic.Int64
}

// New builds an engine serving the map rooted at slot of pool and starts its
// writer loop. The engine becomes the pool's only legal mutator: direct pool
// use while the engine runs violates the single-writer model. The read index
// is rebuilt here from the pool's recovered contents — recovery has already
// rolled back any uncommitted epoch, so nothing rolled back can be indexed.
func New(pool *pax.Pool, slot int, cfg Config) (*Engine, error) {
	kv, err := pax.NewMap(pool, slot)
	if err != nil {
		return nil, fmt.Errorf("server: binding map root: %w", err)
	}
	e := &Engine{
		pool: pool,
		kv:   kv,
		cfg:  cfg.withDefaults(),
		idx:  newReadIndex(),
		stop: make(chan struct{}),
	}
	e.rec = newFlightRecorder(e.cfg.TraceDepth, e.cfg.SlowDepth, e.cfg.SlowCommit)
	kv.ForEach(func(key, value []byte) bool {
		// ForEach hands out fresh copies, so the index can keep them.
		s := e.idx.stripe(key)
		s.m[string(key)] = value
		return true
	})
	e.stats.ReadIndexRebuilt.Add(uint64(e.idx.len()))
	e.reqs = make(chan *request, e.cfg.QueueDepth)
	e.sealedq = make(chan *sealedBatch, e.cfg.MaxInflightCommits)
	e.ackq = make(chan *issuedCommit, max(e.cfg.MaxInflightCommits, runAheadCommits))
	e.reg = pool.StatsRegistry()
	e.reg.RegisterCounter("paxserve_acked_writes", &e.stats.AckedWrites)
	e.reg.RegisterCounter("paxserve_acked_on_apply", &e.stats.AckedOnApply)
	e.reg.RegisterCounter("paxserve_gets", &e.stats.Gets)
	e.reg.RegisterCounter("paxserve_group_commits", &e.stats.GroupCommits)
	e.reg.RegisterCounter("paxserve_batch_max", &e.stats.BatchMax)
	e.reg.RegisterCounter("paxserve_queue_rejects", &e.stats.Rejects)
	e.reg.RegisterCounter("paxserve_read_index_hits", &e.stats.ReadIndexHits)
	e.reg.RegisterCounter("paxserve_read_index_misses", &e.stats.ReadIndexMisses)
	e.reg.RegisterCounter("paxserve_read_index_rebuilt", &e.stats.ReadIndexRebuilt)
	e.reg.RegisterCounter("paxserve_commit_retries", &e.stats.CommitRetries)
	e.reg.RegisterCounter("paxserve_commit_failures", &e.stats.CommitFailures)
	e.reg.RegisterLatencyHistogram("paxserve_enqueue_wait_ns", &e.stats.EnqueueWaitNS)
	e.reg.RegisterLatencyHistogram("paxserve_batch_seal_ns", &e.stats.BatchSealNS)
	e.reg.RegisterLatencyHistogram("paxserve_commit_persist_ns", &e.stats.PersistNS)
	e.reg.RegisterLatencyHistogram("paxserve_commit_ack_ns", &e.stats.AckNS)
	e.reg.RegisterLatencyHistogram("paxserve_commit_ns", &e.stats.CommitNS)
	e.reg.RegisterLatencyHistogram("paxserve_pipeline_stall_ns", &e.stats.PipelineStallNS)
	e.reg.RegisterLatencyHistogram("paxserve_get_hit_ns", &e.stats.GetHitNS)
	e.reg.RegisterLatencyHistogram("paxserve_get_miss_ns", &e.stats.GetMissNS)
	e.reg.RegisterLatencyHistogram("paxserve_epoch_delta_bytes", &e.stats.DeltaBytes)
	e.reg.Register("paxserve_inflight_commits", func() float64 {
		return float64(e.depth.Load())
	})
	e.reg.Register("paxserve_max_inflight_commits", func() float64 {
		return float64(e.cfg.MaxInflightCommits)
	})
	e.reg.Register("paxserve_epoch_amplification", func() float64 {
		// Mean bytes persisted per commit over the pool size: ≈1.0 in
		// full-image mode, ≪1 under the delta epoch store.
		n := e.stats.DeltaBytes.Count()
		if n == 0 {
			return 0
		}
		return float64(e.stats.DeltaBytes.Sum()) / float64(n) / float64(e.pool.MediaSize())
	})
	e.reg.Register("paxserve_sealed", func() float64 {
		if e.SealErr() != nil {
			return 1
		}
		return 0
	})
	e.wg.Add(3)
	go e.loop()
	go e.persister()
	go e.acker()
	return e, nil
}

// Stats exposes the engine counters.
func (e *Engine) Stats() *EngineStats { return &e.stats }

// Registry is the merged engine + pool metrics registry. The pool gauges
// read simulator state, so sample it either via the STATS request (which
// runs on the writer loop) or after Close — not concurrently with traffic.
func (e *Engine) Registry() *stats.Registry { return e.reg }

func (r *request) finish(res result) { r.done <- res }

// begin enqueues a request without waiting for its result. On nil the
// engine owns the request and will deliver exactly one result on req.done;
// the caller must read it. Callers that enqueue from a single goroutine get
// their requests applied in call order — that is what lets the TCP server
// pipeline a connection's writes without reordering them.
//
// GETs (unless Config.QueuedReads) never reach the queue: begin answers them
// inline from the read index, which is what lets the TCP server resolve a
// pipelined GET without serializing it behind the connection's PUT acks.
func (e *Engine) begin(req *request) error {
	if req.op == opSplit || req.op == opMerge {
		name := "SPLIT"
		if req.op == opMerge {
			name = "MERGE"
		}
		return fmt.Errorf("server: %s requires a sharded server (-shards >= 2)", name)
	}
	if req.op == opTrace {
		// Answered inline from the recorder's own mutex — never through the
		// queue — so a sealed or crashed engine still serves its trace, which
		// is exactly when the trace matters most.
		buf, err := json.Marshal(e.rec.snapshot())
		if err != nil {
			req.finish(result{err: err})
			return nil
		}
		req.finish(result{value: buf})
		return nil
	}
	if req.op == opEvents {
		// Inline for the same reason as TRACE: the events that explain a seal
		// must be readable from the sealed engine.
		buf, err := json.Marshal(e.Events())
		if err != nil {
			req.finish(result{err: err})
			return nil
		}
		req.finish(result{value: buf})
		return nil
	}
	if req.op == opGet && !e.cfg.QueuedReads {
		v, ok, err := e.Get(req.key)
		if err != nil {
			return err
		}
		req.finish(result{value: v, found: ok})
		return nil
	}
	e.mu.RLock()
	if e.closed {
		err := ErrClosed
		if e.sealErr != nil {
			err = e.sealErr
		}
		e.mu.RUnlock()
		return err
	}
	// Register as in flight while still under the lock: markClosed's write
	// lock then happens-after this Add, so Close waits for us before closing
	// the queue channel — without us holding any lock across the wait.
	e.inflight.Add(1)
	e.mu.RUnlock()
	defer e.inflight.Done()
	// Fast path: the queue usually has room, and a timer allocation per
	// request is measurable on the PUT hot loop. Only the contended path
	// pays for one.
	select {
	case e.reqs <- req:
		// Observing an exact 0 keeps the fast path timer-free while the
		// histogram's count still matches enqueues, so the p99 reflects how
		// often the queue actually pushed back.
		e.stats.EnqueueWaitNS.Observe(0)
		return nil
	default:
	}
	waitStart := time.Now()
	timer := time.NewTimer(e.cfg.EnqueueTimeout)
	defer timer.Stop()
	select {
	case e.reqs <- req:
		e.stats.EnqueueWaitNS.Since(waitStart)
		return nil
	case <-timer.C:
		e.stats.Rejects.Inc()
		return ErrBusy
	case <-e.stop:
		return e.failErr()
	}
}

// do runs one request to completion through the queue, recycling the
// request struct on every path.
func (e *Engine) do(op opKind, key, value []byte) result {
	return e.doPolicy(op, key, value, AckDurable)
}

// doPolicy is do with an explicit ack policy for mutations.
func (e *Engine) doPolicy(op opKind, key, value []byte, policy AckPolicy) result {
	req := newRequest(op, key, value)
	req.ackOnApply = policy == AckApply
	if err := e.begin(req); err != nil {
		req.release()
		return result{err: err}
	}
	res := <-req.done
	req.release()
	return res
}

// applyBarrier blocks until every request enqueued before it has been
// applied (index-visible). Unlike Persist it forces no commit — durability
// of the drained requests stays with their own acks — so it is cheap even
// on a full-image pool where every forced commit republishes the image.
func (e *Engine) applyBarrier() error {
	return e.do(opBarrier, nil, nil).err
}

// Get returns the current value for key, served from the volatile read
// index: applied order, not necessarily durable yet — read-your-writes with
// respect to acked mutations, exactly the guarantee queued reads gave. Get
// never blocks behind the request queue or a commit in flight. The returned
// slice is the caller's to keep.
//
// With Config.QueuedReads the read takes the writer queue instead.
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	if e.cfg.QueuedReads {
		res := e.do(opGet, key, nil)
		return res.value, res.found, res.err
	}
	e.mu.RLock()
	closed, sealErr := e.closed, e.sealErr
	e.mu.RUnlock()
	if closed {
		// A sealed engine fails reads too: the index may hold applied
		// mutations the media never accepted, which will roll back on
		// recovery — serving them would fabricate acked state.
		if sealErr != nil {
			return nil, false, sealErr
		}
		return nil, false, ErrClosed
	}
	t0 := time.Now()
	v, ok := e.idx.get(key)
	e.stats.Gets.Inc()
	if ok {
		e.stats.ReadIndexHits.Inc()
		e.stats.GetHitNS.Since(t0)
	} else {
		e.stats.ReadIndexMisses.Inc()
		e.stats.GetMissNS.Since(t0)
	}
	return v, ok, nil
}

// Put stores key=value and blocks until the write's group commit makes it
// durable; the returned epoch is the snapshot containing it.
func (e *Engine) Put(key, value []byte) (uint64, error) {
	res := e.do(opPut, key, value)
	return res.epoch, res.err
}

// PutPolicy is Put under an explicit ack policy: AckDurable blocks until
// the group commit (the Put contract); AckApply returns as soon as the
// mutation is applied and read-index-visible, reporting the open epoch it
// will commit in — durability is asynchronous and the write may roll back
// if the engine crashes before that epoch persists.
func (e *Engine) PutPolicy(key, value []byte, policy AckPolicy) (uint64, error) {
	res := e.doPolicy(opPut, key, value, policy)
	return res.epoch, res.err
}

// Delete removes key, blocking like Put; found reports prior presence.
func (e *Engine) Delete(key []byte) (bool, uint64, error) {
	res := e.do(opDelete, key, nil)
	return res.found, res.epoch, res.err
}

// DeletePolicy is Delete under an explicit ack policy (see PutPolicy).
func (e *Engine) DeletePolicy(key []byte, policy AckPolicy) (bool, uint64, error) {
	res := e.doPolicy(opDelete, key, nil, policy)
	return res.found, res.epoch, res.err
}

// Persist forces a group commit and returns the durable epoch.
func (e *Engine) Persist() (uint64, error) {
	res := e.do(opPersist, nil, nil)
	return res.epoch, res.err
}

// PersistPolicy is Persist under an explicit ack policy: AckApply schedules
// the forced commit but returns immediately with the still-open epoch
// instead of waiting for media.
func (e *Engine) PersistPolicy(policy AckPolicy) (uint64, error) {
	res := e.doPolicy(opPersist, nil, nil, policy)
	return res.epoch, res.err
}

// StatsText renders the metrics registry on the writer loop (so sampling
// never races the mutator) and returns the `name value` lines. A sealed
// engine still renders: health must stay observable after a failure, and
// with the writer loop gone direct sampling cannot race a mutator.
func (e *Engine) StatsText() (string, error) {
	res := e.do(opStats, nil, nil)
	if res.err != nil && errors.Is(res.err, ErrSealed) {
		e.wg.Wait()
		return e.reg.Text(), nil
	}
	return res.text, res.err
}

// Snapshot samples the metrics registry on the writer loop and returns the
// raw summary — the structured form of StatsText, for callers (the sharded
// router) that merge several engines' metrics before rendering. Like
// StatsText it keeps working on a sealed engine, so a sharded STATS can
// report per-shard health with one shard down.
func (e *Engine) Snapshot() (stats.Summary, error) {
	res := e.do(opSnapshot, nil, nil)
	if res.err != nil && errors.Is(res.err, ErrSealed) {
		e.wg.Wait()
		return e.reg.Snapshot(), nil
	}
	return res.snap, res.err
}

// SealErr reports the durability failure that sealed the engine fail-stop
// (nil while healthy). A sealed engine rejects every request with this
// error; previously acked writes are unaffected.
func (e *Engine) SealErr() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sealErr
}

// markClosed flips the closed flag once; reports whether this call did it.
func (e *Engine) markClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return false
	}
	e.closed = true
	return true
}

// failErr is the error requests receive when the loop is gone: the seal
// error after a durability failure, plain ErrClosed otherwise.
func (e *Engine) failErr() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.sealErr != nil {
		return e.sealErr
	}
	return ErrClosed
}

// seal marks the engine failed-stop after cause: every subsequent request —
// and everything still queued — fails with the seal error. Unlike Close it
// never attempts a final persist; the medium already refused one.
func (e *Engine) seal(cause error) {
	e.mu.Lock()
	first := e.sealErr == nil
	if first {
		e.sealErr = fmt.Errorf("%w: %v", ErrSealed, cause)
	}
	e.closed = true
	e.mu.Unlock()
	if first {
		e.events.emit(blackbox.EvSeal, 0, errDetail{Error: cause.Error()})
	}
	e.stopOnce.Do(func() { close(e.stop) })
}

// drainQueue fails every queued request with failErr. Callers must ensure
// nothing can still enter the queue (stop closed and inflight drained, or
// the channel closed).
func (e *Engine) drainQueue() {
	for {
		select {
		case req, ok := <-e.reqs:
			if !ok {
				return // Close raced us and closed the channel
			}
			req.finish(result{err: e.failErr()})
		default:
			return
		}
	}
}

// Close drains the queue, commits every remaining mutation plus the open
// epoch, and stops the writer loop. Requests arriving after Close fail with
// ErrClosed. Close does not close the pool — the owner does. If the engine
// sealed — before Close, or while Close's final commit ran — the sealing
// durability error is returned: callers must not treat a sealed shard's
// shutdown as clean.
func (e *Engine) Close() error {
	if e.markClosed() {
		// Every begin that passed the closed check is registered in
		// inflight; the writer loop is still consuming, so those blocked
		// sends drain promptly (bounded by EnqueueTimeout). Only then is it
		// safe to close the channel. If the loop died sealing mid-drain, its
		// own drain (which tolerates the channel closing) empties the queue.
		e.inflight.Wait()
		close(e.reqs)
	}
	e.wg.Wait()
	return e.SealErr()
}

// Crash is the test hook for failure injection: it stops the writer loop
// without committing, abandoning applied-but-unacked mutations exactly as a
// machine crash would. Queued and in-flight requests fail with ErrClosed (or
// the seal error, if a durability failure got there first).
func (e *Engine) Crash() {
	if !e.markClosed() {
		// Already closed (gracefully or by an earlier Crash): nothing to
		// abandon, just wait the loop out.
		e.wg.Wait()
		return
	}
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
	// Senders blocked on a full queue saw e.stop (or completed their send);
	// once inflight drains, nothing can enter the queue anymore — new
	// begins see closed — so this drain is exhaustive.
	e.inflight.Wait()
	e.drainQueue()
}

// apply executes one request against the pool, under poolMu so no mutation
// (or registry sample of live pool state) overlaps a snapshot point in the
// persister. Ack-on-durable mutations and persists are returned as waiters
// to be acked at the batch commit; reads and stats are answered
// immediately, and ack-on-apply mutations are acked right here — after the
// read-index mirror, so an acked-on-apply write is read-your-writes
// visible — with mutated reporting that the batch still needs a commit.
func (e *Engine) apply(req *request) (waiter *request, mutated bool) {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	switch req.op {
	case opGet:
		// Only Config.QueuedReads sends GETs here; the index answers the
		// rest in begin. The timing covers the pool lookup only — the queue
		// wait a queued read pays shows up as commit latency, not here.
		t0 := time.Now()
		v, ok := e.kv.Get(req.key)
		e.stats.Gets.Inc()
		if ok {
			e.stats.GetHitNS.Since(t0)
		} else {
			e.stats.GetMissNS.Since(t0)
		}
		req.finish(result{value: v, found: ok})
		return nil, false
	case opPut:
		if err := e.kv.Put(req.key, req.value); err != nil {
			req.finish(result{err: err})
			return nil, false
		}
		e.idx.put(req.key, req.value)
		if req.ackOnApply {
			e.stats.AckedOnApply.Inc()
			req.finish(result{epoch: e.pool.Epoch()})
			return nil, true
		}
		return req, true
	case opDelete:
		found, err := e.kv.Delete(req.key)
		if err != nil {
			req.finish(result{err: err})
			return nil, false
		}
		e.idx.delete(req.key)
		req.found = found
		if req.ackOnApply {
			e.stats.AckedOnApply.Inc()
			req.finish(result{found: found, epoch: e.pool.Epoch()})
			return nil, true
		}
		return req, true
	case opPersist:
		if req.ackOnApply {
			// The forced commit is scheduled (the batch seals force), but
			// the caller does not wait for media: it learns the still-open
			// epoch that the commit will make durable.
			req.finish(result{epoch: e.pool.Epoch()})
			return nil, true
		}
		return req, true
	case opBarrier:
		req.finish(result{epoch: e.pool.Epoch()})
		return nil, false
	case opStats:
		req.finish(result{text: e.reg.Text()})
		return nil, false
	case opSnapshot:
		req.finish(result{snap: e.reg.Snapshot()})
		return nil, false
	}
	req.finish(result{err: fmt.Errorf("server: unknown op %d", req.op)})
	return nil, false
}

// persistLocked runs one persist attempt in the configured commit mode,
// under poolMu: the snapshot point must not overlap a sealer apply (§3.5).
func (e *Engine) persistLocked() (pax.PersistStats, error) {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.cfg.Async {
		return e.pool.PersistAsync()
	}
	return e.pool.Persist()
}

// maxRetryDoublings caps the commit-retry backoff at 6 doublings (64× the
// base delay): past that, longer waits model nothing — and an unclamped
// `delay << attempt` would overflow time.Duration near attempt 40, turning
// a large CommitRetries budget into effectively-infinite (or negative)
// sleeps.
const maxRetryDoublings = 6

// retryDelay is the backoff before retry attempt (0-based): the base delay
// doubled per attempt, clamped at maxRetryDoublings.
func retryDelay(base time.Duration, attempt int) time.Duration {
	if attempt > maxRetryDoublings {
		attempt = maxRetryDoublings
	}
	return base << attempt
}

// persistSealed issues the snapshot for one sealed batch. A persist whose
// media sync fails is retried up to CommitRetries times with doubling
// (clamped) backoff — retrying is legal because a failed Sync never
// publishes a partial image, and nothing is acked until one attempt fully
// succeeds; the backoff sleeps run outside poolMu so the sealer keeps
// applying between attempts. On success the commit is handed to the acker
// with its media deadline; on exhaustion the batch's waiters are failed
// (never acked), the failed CommitRecord is pinned, and the error returns
// for the persister to seal the engine.
func (e *Engine) persistSealed(b *sealedBatch) (*issuedCommit, error) {
	rec := CommitRecord{
		Batch:    b.mutations,
		Inflight: b.inflight,
		Start:    b.start.UnixNano(),
		SealNS:   b.sealNS,
	}
	persistStart := time.Now()
	st, err := e.persistLocked()
	for attempt := 0; err != nil && attempt < e.cfg.CommitRetries; attempt++ {
		e.stats.CommitRetries.Inc()
		rec.Retries++
		time.Sleep(retryDelay(e.cfg.CommitRetryDelay, attempt))
		st, err = e.persistLocked()
	}
	// The snapshot point has settled either way — taken, or abandoned for
	// good — so the sealer may open the next batch.
	close(b.snapped)
	if err != nil {
		e.stats.CommitFailures.Inc()
		rec.PersistNS = int64(time.Since(persistStart))
		rec.TotalNS = b.sealNS + rec.PersistNS
		rec.Err = err.Error()
		rec = e.rec.record(rec)
		e.events.emit(blackbox.EvCommitFailed, 0, rec)
		failAll(b.waiters, fmt.Errorf("%w: %v", ErrSealed, err))
		return nil, err
	}
	return &issuedCommit{
		b:         b,
		st:        st,
		rec:       rec,
		issued:    persistStart,
		persisted: time.Now(),
	}, nil
}

// finishCommit acks one durable epoch and books its accounting: called by
// the acker once the commit's media deadline has passed.
func (e *Engine) finishCommit(ic *issuedCommit) {
	b, st, rec := ic.b, ic.st, ic.rec
	// The modeled media latency counts as persist time: it is the commit
	// being on the medium, which is what the persist stage means.
	rec.PersistNS = int64(time.Since(ic.issued))
	rec.Epoch = st.Epoch
	rec.DeltaBytes = st.PersistedBytes
	rec.PoolBytes = int64(e.pool.MediaSize())
	e.stats.DeltaBytes.Observe(st.PersistedBytes)
	e.stats.GroupCommits.Inc()
	if b.mutations > 0 {
		e.stats.BatchMax.StoreMax(uint64(b.mutations))
	}
	ackStart := time.Now()
	for _, w := range b.waiters {
		if w.op != opPersist {
			e.stats.AckedWrites.Inc()
		}
		w.finish(result{found: w.found, epoch: st.Epoch})
	}
	rec.AckNS = int64(time.Since(ackStart))
	rec.TotalNS = rec.SealNS + rec.PersistNS + rec.AckNS
	e.stats.BatchSealNS.Observe(rec.SealNS)
	e.stats.PersistNS.Observe(rec.PersistNS)
	e.stats.AckNS.Observe(rec.AckNS)
	e.stats.CommitNS.Observe(rec.TotalNS)
	rec = e.rec.record(rec)
	if thr := e.cfg.SlowCommit; thr > 0 && rec.TotalNS >= int64(thr) {
		e.events.emit(blackbox.EvCommitSlow, 0, rec)
	}
}

// Trace returns the flight recorder's current contents. Safe on a sealed,
// crashed, or closed engine — the recorder outlives the writer loop.
func (e *Engine) Trace() TraceSnapshot { return e.rec.snapshot() }

// Events returns the engine's recent lifecycle events, oldest first. Like
// Trace it is safe on a sealed or crashed engine.
func (e *Engine) Events() EventsSnapshot { return EventsSnapshot{Events: e.events.snapshot()} }

// SetEventSink forwards every subsequent lifecycle event to fn (nil clears).
// The sharded router uses it to merge per-shard events into its fleet hub.
func (e *Engine) SetEventSink(fn func(Event)) { e.events.setSink(fn) }

func failAll(waiters []*request, err error) {
	for _, w := range waiters {
		w.finish(result{err: err})
	}
}

// stopped reports whether stop has been closed (crash or seal).
func (e *Engine) stopped() bool {
	select {
	case <-e.stop:
		return true
	default:
		return false
	}
}

// runAheadCommits is the pipeline's run-ahead buffer (ackq capacity, unless
// MaxInflightCommits is larger): how many snapshotted epochs may sit awaiting
// their modeled media completion before the sealer is pushed back on. It is
// the memory bound on applying ahead of durability — an issuedCommit is a
// few pointers plus its ack-on-durable waiters, so a deep buffer is cheap,
// and it is what lets ack-on-apply latency stay at host speed while a media
// backlog drains: only a backlog of seconds of modeled media time (4096
// epochs × CommitLatency / window) pushes back on the host.
const runAheadCommits = 4096

// sealToPipeline hands a sealed batch to the persister, charging blocked
// time — the run-ahead buffer full, media backlog pushing back — to
// PipelineStallNS. It reports false when the engine stopped first.
func (e *Engine) sealToPipeline(b *sealedBatch) bool {
	select {
	case e.sealedq <- b:
		// Observing an exact 0 keeps the unblocked path timer-free while
		// the histogram's count still matches seals.
		e.stats.PipelineStallNS.Observe(0)
	default:
		stallStart := time.Now()
		// Stall *onset* is a lifecycle event (rate-limited to one per
		// second — a saturated pipeline stalls every seal): the black box
		// wants "backlog began here", not one record per blocked epoch.
		if last := e.lastStallEvent.Load(); stallStart.UnixNano()-last >= int64(time.Second) &&
			e.lastStallEvent.CompareAndSwap(last, stallStart.UnixNano()) {
			e.events.emit(blackbox.EvStall, 0, stallDetail{
				Depth: int64(len(e.sealedq)),
				Epoch: e.pool.Epoch() + 1,
			})
		}
		select {
		case e.sealedq <- b:
			e.stats.PipelineStallNS.Since(stallStart)
		case <-e.stop:
			return false
		}
	}
	return true
}

// loop is the sealer: the writer goroutine that owns request admission and
// applies batches. Queued reads inside a batch are answered as they are
// applied; a batch seals when it is full, when MaxDelay expires, on an
// explicit persist, or when the engine drains for shutdown. Closing sealedq
// on every exit path is what winds down the persister (and, through it, the
// acker).
func (e *Engine) loop() {
	defer e.wg.Done()
	defer close(e.sealedq)
	for {
		select {
		case <-e.stop:
			return
		case req, ok := <-e.reqs:
			if !ok {
				// Graceful shutdown: every prior batch is already sealed, so
				// one empty batch seals the open epoch — through the normal
				// pipeline, so the final persist gets the same retry budget,
				// latency model, and accounting as any group commit. If even
				// that fails, the persister seals the engine and Close
				// surfaces the error.
				e.sealToPipeline(&sealedBatch{
					start:    time.Now(),
					inflight: int(e.depth.Load()) + 1,
					snapped:  make(chan struct{}),
				})
				return
			}
			if !e.runBatch(req) {
				return
			}
		}
	}
}

// runBatch opens a batch with first and keeps applying until a seal
// condition fires, then hands the sealed batch to the persister. It reports
// false when the engine crashed or sealed mid-batch.
func (e *Engine) runBatch(first *request) bool {
	if last := e.lastSealed; last != nil {
		// The previous batch's snapshot point must settle before this batch
		// applies anything: only media time overlaps, so no mutation can be
		// absorbed into an earlier epoch's snapshot. The wait is host-speed
		// (the snapshot itself, not the modeled media latency) and the
		// applies would have serialized against it on poolMu anyway.
		select {
		case <-last.snapped:
		case <-e.stop:
			first.finish(result{err: e.failErr()})
			return false
		}
		e.lastSealed = nil
	}
	b := &sealedBatch{start: time.Now(), snapped: make(chan struct{})}
	force := first.op == opPersist
	e.applyInto(b, first)
	if b.mutations == 0 {
		return true // pure reads/stats: nothing to commit
	}
	timer := time.NewTimer(e.cfg.MaxDelay)
	defer timer.Stop()
	for !force && b.mutations < e.cfg.MaxBatch {
		select {
		case <-e.stop:
			failAll(b.waiters, e.failErr())
			return false
		case <-timer.C:
			force = true
		case req, ok := <-e.reqs:
			if !ok {
				// Closing: seal what we have; loop sees !ok next and seals
				// the open epoch.
				force = true
				continue
			}
			if req.op == opPersist {
				force = true
			}
			e.applyInto(b, req)
		}
	}
	b.sealNS = int64(time.Since(b.start))
	b.inflight = int(e.depth.Load()) + 1 // this batch included
	if !e.sealToPipeline(b) {
		failAll(b.waiters, e.failErr())
		return false
	}
	e.lastSealed = b
	return true
}

// applyInto applies one request as part of batch b, collecting its waiter
// and mutation count.
func (e *Engine) applyInto(b *sealedBatch, req *request) {
	w, mutated := e.apply(req)
	if w != nil {
		b.waiters = append(b.waiters, w)
	}
	if mutated {
		b.mutations++
	}
}

// persister is the second pipeline stage: it turns sealed batches into
// issued commits, in seal order. When a persist fails after retries the
// batch's waiters were already failed inside persistSealed; the persister
// then seals the engine and fails every later sealed-but-unpersisted batch
// — an unacked in-flight epoch is legal to abandon, but it must never ack.
// Epochs already handed to the acker persisted successfully and still ack.
// After a seal (or crash) it also drains the request queue, once nothing
// can enter it anymore.
func (e *Engine) persister() {
	defer e.wg.Done()
	defer close(e.ackq)
	failed := false
	for b := range e.sealedq {
		if failed || e.stopped() {
			// Sealed behind a failure (or a crash): the commit never
			// happened, so the waiters must fail, never ack.
			close(b.snapped)
			failAll(b.waiters, e.failErr())
			continue
		}
		e.depth.Add(1)
		ic, err := e.persistSealed(b)
		if err != nil {
			e.seal(err)
			failed = true
			e.depth.Add(-1)
			continue
		}
		e.ackq <- ic
	}
	if failed {
		// Seal closed stop, so in-flight begins unwind; once they do,
		// nothing can enter the queue anymore — new begins see closed — so
		// this drain is exhaustive and no queued request is left waiting on
		// a dead pipeline.
		e.inflight.Wait()
		e.drainQueue()
	}
}

// acker is the third pipeline stage: it releases each commit's waiters in
// epoch order (ackq is FIFO from the persister) once the commit's modeled
// media work completes. It models the device as MaxInflightCommits commit
// slots, each busy for CommitLatency per epoch: commit i's media work starts
// at max(its persist, slot i mod W freeing), so back-to-back commits overlap
// W deep while W=1 serializes them — the serial A/B baseline. After a crash
// or seal the remaining modeled waits are skipped: everything in ackq really
// persisted, so its acks are correct and shutdown should not sleep them out.
func (e *Engine) acker() {
	defer e.wg.Done()
	slots := make([]time.Time, e.cfg.MaxInflightCommits)
	next := 0
	for ic := range e.ackq {
		deadline := ic.persisted
		if slots[next].After(deadline) {
			deadline = slots[next]
		}
		deadline = deadline.Add(e.cfg.CommitLatency)
		slots[next] = deadline
		next = (next + 1) % len(slots)
		if d := time.Until(deadline); d > 0 && !e.stopped() {
			// The wait must abort the moment the engine stops: with a deep
			// ackq backlog an uninterruptible sleep would hold Close/Crash
			// hostage for up to backlog×CommitLatency of modeled media time,
			// all of it spent acking commits that already persisted.
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-e.stop:
				t.Stop()
			}
		}
		e.finishCommit(ic)
		e.depth.Add(-1)
	}
}
