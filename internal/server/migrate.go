package server

import (
	"fmt"
	"sort"
	"sync"

	"pax"
	"pax/internal/blackbox"
)

// This file is live resharding: moving slots between shards while the router
// keeps serving. The unit of movement is one slot (1/NumSlots of the
// keyspace); per-slot cutover means a migration stalls only the slot in
// flight, never the other 255.
//
// # Crash-safety contract (documented in DESIGN.md)
//
// A slot cutover is committed by exactly one event: the atomic publish of
// the slot map carrying the new assignment (SlotMap.Save — temp file, fsync,
// rename, dir fsync). Everything around it is arranged so a crash on either
// side of that event loses nothing:
//
//   - Before copying, the slot's gate is write-locked. Every request holds
//     the gate's read side across route-lookup + dispatch, so after the
//     write lock is held no request can still be routing this slot to the
//     old owner; an apply barrier through the source's queue then ensures
//     every already-enqueued write is applied and index-visible before the
//     copy reads the source index (their durable acks ride the source's own
//     commit pipeline — the copy below is durable on the destination either
//     way).
//   - The copy lands on the destination via the normal epoch machinery and
//     is made durable (one forced group commit) BEFORE the map publishes.
//     Crash before publish: the map still names the source, which has every
//     key — the destination's orphan copies are purged at next open.
//   - The map publishes, the in-memory route swaps, the gate unlocks. Only
//     then is the source's copy deleted (ack-on-apply; it is garbage, not
//     state). Crash before cleanup finishes: the map names the destination,
//     which has every key — the source's stale copies are purged at next
//     open.
//
// Open-time purge (openRoute case 1) makes both windows idempotent: every
// shard deletes keys the authoritative map assigns elsewhere, so repeated
// crashes mid-migration converge to the published assignment with every
// acked write intact.

// SplitReport describes one completed Split: where load moved and how much.
type SplitReport struct {
	// Source is the shard that gave slots away; Dest received them.
	Source int `json:"source"`
	Dest   int `json:"dest"`
	// NewShard is whether Dest was created for this split (false when an
	// existing zero-slot shard — e.g. a crash leftover — was adopted).
	NewShard bool `json:"new_shard"`
	// Shards is the fleet size after the split.
	Shards int `json:"shards"`
	// MovedSlots lists the slots that cut over; MovedKeys counts the keys
	// copied. The moved keyspace fraction is len(MovedSlots)/NumSlots.
	MovedSlots []int `json:"moved_slots"`
	MovedKeys  int   `json:"moved_keys"`
	// Seq is the slot map sequence number after the last cutover.
	Seq uint64 `json:"slotmap_seq"`
}

// Split carves the hot half of one shard's slots onto another shard, live.
// src names the shard to split, or -1 to pick the shard with the most
// per-slot traffic since open. The destination is an existing shard that
// owns zero slots if one exists (adopting, e.g., the leftover of a split
// that crashed between creating a shard file and publishing a cutover), else
// a newly created shard pool with the same geometry. The moving set is
// chosen by per-slot op counts — slots greedily balanced so roughly half the
// measured load leaves — and migrated one slot at a time: acked writes stay
// durable throughout, and only the slot in flight ever stalls.
//
// A bare single-shard file layout cannot split: its pool file is <path>
// itself, which cannot coexist with <path>.shard-* files. Start file-backed
// deployments with -shards >= 2 to keep splitting open; in-memory engines
// split from any count.
func (s *ShardedEngine) Split(src int) (*SplitReport, error) {
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()

	m := s.route.Load()
	shards := *s.shards.Load()
	if s.path != "" && len(shards) == 1 {
		return nil, fmt.Errorf("server: cannot split a bare single-shard file layout (start with -shards >= 2)")
	}
	if src < 0 {
		src = s.hottestShard(m)
	}
	if src < 0 || src >= len(shards) {
		return nil, fmt.Errorf("server: split source %d out of range (%d shards)", src, len(shards))
	}
	owned := m.slotsOf(src)
	if len(owned) < 2 {
		return nil, fmt.Errorf("server: shard %d owns %d slot(s); nothing to split", src, len(owned))
	}

	rep := &SplitReport{Source: src, Dest: -1}
	// Prefer an existing shard that owns nothing: either the caller grew the
	// fleet out of band or a previous split crashed after creating the shard
	// file but before its first cutover published. Reusing it self-heals
	// that window instead of leaking a file per crash.
	for k := range shards {
		if k != src && len(m.slotsOf(k)) == 0 {
			rep.Dest = k
			break
		}
	}
	if rep.Dest < 0 {
		dst, err := s.addShard()
		if err != nil {
			return nil, err
		}
		rep.Dest, rep.NewShard = dst, true
	}

	// Divide src's slots by measured load: heaviest first, each slot to the
	// lighter side, source keeps the first (heaviest) slot so both sides end
	// non-empty.
	sort.Slice(owned, func(i, j int) bool {
		return s.slotLoad(owned[i]) > s.slotLoad(owned[j])
	})
	var stayLoad, moveLoad uint64
	var moving []int
	for i, slot := range owned {
		load := s.slotLoad(slot)
		if i == 0 || stayLoad <= moveLoad {
			stayLoad += load
		} else {
			moveLoad += load
			moving = append(moving, slot)
		}
	}
	if len(moving) == 0 {
		// All-zero load: stayLoad <= moveLoad holds on every iteration, so
		// the greedy pass moves nothing — and a zero-slot "split" would still
		// have created (and leaked) the destination shard above. Fall back to
		// a count-based even halving: the trailing ⌈N/2⌉ slots move, the
		// source keeps the rest (≥ 1, since it owned ≥ 2).
		moving = append(moving, owned[len(owned)/2:]...)
	}
	sort.Ints(moving)

	moves := make(map[int]int, len(moving))
	for _, slot := range moving {
		moves[slot] = rep.Dest
	}
	s.events.emit(blackbox.EvSplitStart, -1, splitDetail{Report: rep})
	moved, err := s.migrateSlots(moves)
	rep.MovedSlots = moving[:len(moved)]
	rep.MovedKeys = 0
	for _, n := range moved {
		rep.MovedKeys += n
	}
	rep.Seq = s.route.Load().Seq
	rep.Shards = len(*s.shards.Load())
	if err != nil {
		s.events.emit(blackbox.EvSplitDone, -1, splitDetail{Report: rep, Error: err.Error()})
		return rep, err
	}
	s.reshard.splits.Add(1)
	s.events.emit(blackbox.EvSplitDone, -1, splitDetail{Report: rep})
	return rep, nil
}

// Rebalance migrates the live assignment to an explicit target: assign[s]
// names the shard that should own slot s. Slots already in place are
// untouched; the rest cut over one at a time under the same crash contract
// as Split. Targets may only reference existing shards — grow the fleet
// with Split first.
func (s *ShardedEngine) Rebalance(assign []int) error {
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()
	if len(assign) != NumSlots {
		return fmt.Errorf("server: rebalance wants %d slot assignments, got %d", NumSlots, len(assign))
	}
	n := len(*s.shards.Load())
	m := s.route.Load()
	moves := make(map[int]int)
	for slot, dst := range assign {
		if dst < 0 || dst >= n {
			return fmt.Errorf("server: rebalance assigns slot %d to shard %d of %d", slot, dst, n)
		}
		if int(m.Assign[slot]) != dst {
			moves[slot] = dst
		}
	}
	_, err := s.migrateSlots(moves)
	return err
}

// shardLoads sums the per-slot load signal by owning shard.
func (s *ShardedEngine) shardLoads(m *SlotMap) []uint64 {
	n := len(*s.shards.Load())
	loads := make([]uint64, n)
	for slot := range m.Assign {
		if k := int(m.Assign[slot]); k < n {
			loads[k] += s.slotLoad(slot)
		}
	}
	return loads
}

// hottestShard returns the busiest shard by the per-slot load signal (ties to
// the lowest index).
func (s *ShardedEngine) hottestShard(m *SlotMap) int {
	loads := s.shardLoads(m)
	best := 0
	for k := 1; k < len(loads); k++ {
		if loads[k] > loads[best] {
			best = k
		}
	}
	return best
}

// addShard grows the fleet by one empty shard (pool + engine) with the same
// geometry as the rest, publishing the new shard slice before returning —
// the slice must be visible before any slot map references the new index.
// Caller holds migrateMu. The new pool is created Overwrite: no published
// assignment can reference it yet, so anything at its path is garbage.
func (s *ShardedEngine) addShard() (int, error) {
	shards := *s.shards.Load()
	k := len(shards)
	if k >= NumSlots {
		return 0, fmt.Errorf("server: shard count %d already saturates the %d-slot routing space", k, NumSlots)
	}
	opts := s.opts
	opts.Overwrite = true
	sp := ShardPath(s.path, k+1, k)
	pool, err := pax.CreatePool(sp, opts)
	if err != nil {
		return 0, fmt.Errorf("server: shard %d: %w", k, err)
	}
	eng, err := New(pool, s.accSlot, s.cfg)
	if err != nil {
		pool.Close()
		return 0, fmt.Errorf("server: shard %d: %w", k, err)
	}
	s.forwardEvents(eng)
	next := make([]shard, k+1)
	copy(next, shards)
	next[k] = shard{pool: pool, eng: eng}
	s.shards.Store(&next)
	return k, nil
}

// migrateSlots cuts the given slots over to their destinations, one slot at
// a time (see the crash-safety contract at the top of this file). It returns
// the per-completed-slot moved-key counts in the iteration order of the
// sorted slot list; on error, slots already cut over stay cut over — the map
// on disk is always a consistent assignment.
func (s *ShardedEngine) migrateSlots(moves map[int]int) ([]int, error) {
	slots := make([]int, 0, len(moves))
	for slot := range moves {
		slots = append(slots, slot)
	}
	sort.Ints(slots)
	var counts []int
	for _, slot := range slots {
		n, err := s.migrateSlot(slot, moves[slot])
		if err != nil {
			return counts, fmt.Errorf("server: migrating slot %d: %w", slot, err)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// migrateSlot moves one slot's keys to dst and publishes the cutover.
// Caller holds migrateMu.
func (s *ShardedEngine) migrateSlot(slot, dst int) (moved int, err error) {
	m := s.route.Load()
	src := int(m.Assign[slot])
	if src == dst {
		return 0, nil
	}
	shards := *s.shards.Load()
	if dst < 0 || dst >= len(shards) {
		return 0, fmt.Errorf("destination shard %d out of range (%d shards)", dst, len(shards))
	}
	srcEng, dstEng := shards[src].eng, shards[dst].eng

	g := &s.gates[slot]
	g.Lock()
	defer g.Unlock()

	// Drain barrier: requests hold the gate read side across enqueue, so
	// everything racing us is already in src's FIFO queue; a barrier behind
	// them returns once they are applied, i.e. index-visible to the copy
	// below. Their durability is src's own commit pipeline's business — the
	// copy carries their data to dst either way, and their durable acks are
	// not blocked by the migration.
	if err := srcEng.applyBarrier(); err != nil {
		return 0, fmt.Errorf("draining source shard %d: %w", src, err)
	}

	// Resurrection guard: dst may hold stale copies of this slot from a
	// migration that failed before publishing (in-process error paths; crash
	// leftovers are purged at open). If they survived they could shadow a
	// later state of the slot — delete before copying.
	stale := dstEng.idx.collect(func(key []byte) bool { return SlotFor(key) == slot })
	for _, e := range stale {
		if _, _, err := dstEng.DeletePolicy(e.key, AckApply); err != nil {
			return 0, fmt.Errorf("clearing destination shard %d: %w", dst, err)
		}
	}

	// Copy through the normal epoch machinery: ack-on-apply puts (issued
	// concurrently so they share group commits) then one forced commit, so
	// the whole slot's copy is durable on dst before the cutover publishes.
	pairs := srcEng.idx.collect(func(key []byte) bool { return SlotFor(key) == slot })
	const copyFanout = 64
	sem := make(chan struct{}, copyFanout)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var copyErr error
	for _, e := range pairs {
		wg.Add(1)
		sem <- struct{}{}
		go func(key, value []byte) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := dstEng.PutPolicy(key, value, AckApply); err != nil {
				mu.Lock()
				if copyErr == nil {
					copyErr = err
				}
				mu.Unlock()
			}
		}(e.key, e.value)
	}
	wg.Wait()
	if copyErr != nil {
		return 0, fmt.Errorf("copying to shard %d: %w", dst, copyErr)
	}
	// The copy (and any preclear deletes) must be durable on dst before the
	// cutover publishes; an empty slot with a clean dst has nothing to commit
	// and skips the persist entirely — common when splitting a sparse shard.
	if len(pairs) > 0 || len(stale) > 0 {
		if _, err := dstEng.Persist(); err != nil {
			return 0, fmt.Errorf("committing copy on shard %d: %w", dst, err)
		}
	}

	// Cutover: persist the new assignment (the commit point), then swap the
	// in-memory route. Readers load route before shards, so the new owner is
	// visible atomically with the map.
	next := m.clone()
	next.Assign[slot] = uint16(dst)
	next.Seq++
	if next.Shards < dst+1 {
		next.Shards = dst + 1
	}
	if s.persistMap {
		if err := next.Save(s.path); err != nil {
			return 0, fmt.Errorf("publishing slot map: %w", err)
		}
	}
	s.route.Store(next)
	s.reshard.movedSlots.Add(1)
	s.reshard.movedKeys.Add(uint64(len(pairs)))

	// Cleanup: the source's copies are garbage now — no route reaches them.
	// Ack-on-apply is enough; if we crash before these deletes commit, the
	// open-time purge removes them (the published map never names src).
	for _, e := range pairs {
		if _, _, err := srcEng.DeletePolicy(e.key, AckApply); err != nil {
			// The cutover already published; a cleanup failure degrades to
			// the crash case (stale copies purged at next open), so the
			// migration still reports success — but it must not be silent,
			// or the deferred purge is invisible until someone wonders where
			// the space went.
			s.reshard.cleanupFailures.Add(1)
			s.logf("server: slot %d: source shard %d cleanup failed, stale copies deferred to next open: %v", slot, src, err)
			break
		}
	}
	return len(pairs), nil
}
