package server

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"pax/internal/wire"
)

func startTCP(t *testing.T) (*Server, *Engine, string) {
	t.Helper()
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 32, MaxDelay: time.Millisecond})
	t.Cleanup(func() { pool.Close() })
	srv := NewServer(eng)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return srv, eng, lis.Addr().String()
}

func TestTCPEndToEnd(t *testing.T) {
	_, _, addr := startTCP(t)

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := wire.Dial(addr)
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			defer cl.Close()
			for op := 0; op < 10; op++ {
				key := []byte(fmt.Sprintf("c%d-%d", c, op))
				val := bytes.Repeat(key, 3)
				ep, err := cl.Put(key, val)
				if err != nil || ep == 0 {
					t.Errorf("put %s: epoch=%d err=%v", key, ep, err)
					return
				}
				got, ok, err := cl.Get(key)
				if err != nil || !ok || !bytes.Equal(got, val) {
					t.Errorf("get %s: %q ok=%v err=%v", key, got, ok, err)
					return
				}
			}
			// Delete one key; a second delete reports absent.
			key := []byte(fmt.Sprintf("c%d-0", c))
			if found, _, err := cl.Delete(key); err != nil || !found {
				t.Errorf("delete: found=%v err=%v", found, err)
			}
			if found, _, err := cl.Delete(key); err != nil || found {
				t.Errorf("re-delete: found=%v err=%v", found, err)
			}
			if _, ok, err := cl.Get(key); err != nil || ok {
				t.Errorf("get deleted: ok=%v err=%v", ok, err)
			}
		}(c)
	}
	wg.Wait()

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if ep, err := cl.Persist(); err != nil || ep == 0 {
		t.Fatalf("persist: epoch=%d err=%v", ep, err)
	}
	text, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{"paxserve_acked_writes", "paxserve_group_commits", "pax_device_persists", "pax_log_capacity_entries"} {
		if !strings.Contains(text, metric) {
			t.Fatalf("stats reply missing %s:\n%s", metric, text)
		}
	}
}

// Concurrent callers multiplexed onto ONE pipelined connection must still
// share group commits — the server dispatches a connection's requests
// concurrently, in wire order.
func TestTCPPipelinedConnectionSharesEpoch(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 64, MaxDelay: 500 * time.Millisecond})
	t.Cleanup(func() { pool.Close() })
	srv := NewServer(eng)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	cl, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const writers = 32
	epochs := make([]uint64, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := cl.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
			if err != nil {
				t.Errorf("put %d: %v", i, err)
				return
			}
			epochs[i] = ep
		}(i)
	}
	wg.Wait()
	for i := 1; i < writers; i++ {
		if epochs[i] != epochs[0] {
			t.Fatalf("pipelined puts split across epochs: %v", epochs)
		}
	}
	if got := eng.Stats().GroupCommits.Load(); got != 1 {
		t.Fatalf("expected one group commit for one pipelined burst, got %d", got)
	}
}

func TestTCPShutdownClosesClients(t *testing.T) {
	srv, eng, addr := startTCP(t)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	eng.Close()
	if _, err := cl.Put([]byte("k2"), []byte("v")); err == nil {
		t.Fatal("put succeeded after server shutdown")
	}
	// Serve after Shutdown refuses to run.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(lis); err == nil {
		t.Fatal("Serve after Shutdown returned nil")
	}
}
