package server

import (
	"bytes"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pax/internal/wire"
)

func newSharded(t *testing.T, path string, shards int, cfg Config) *ShardedEngine {
	t.Helper()
	eng, err := OpenSharded(path, shards, smallOpts(), 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestShardPathLayout(t *testing.T) {
	if got := ShardPath("/d/kv.pool", 1, 0); got != "/d/kv.pool" {
		t.Fatalf("1-shard path = %q, want the bare path", got)
	}
	if got := ShardPath("/d/kv.pool", 4, 2); got != "/d/kv.pool.shard-2" {
		t.Fatalf("shard path = %q", got)
	}
	if got := ShardPath("", 4, 2); got != "" {
		t.Fatalf("in-memory shard path = %q, want empty", got)
	}
}

func TestDiscoverShards(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	touch := func(p string) {
		t.Helper()
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	if n, err := DiscoverShards(pool); n != 0 || err != nil {
		t.Fatalf("empty dir: %d %v", n, err)
	}
	touch(pool + ".shard-0")
	touch(pool + ".shard-1")
	touch(pool + ".shard-2")
	if n, err := DiscoverShards(pool); n != 3 || err != nil {
		t.Fatalf("3 shard files: %d %v", n, err)
	}
	// A gap in the sequence is refused, not guessed at.
	if err := os.Remove(pool + ".shard-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverShards(pool); err == nil {
		t.Fatal("gap in shard files not detected")
	}
	touch(pool + ".shard-1")
	// Both layouts at once is corruption.
	touch(pool)
	if _, err := DiscoverShards(pool); err == nil {
		t.Fatal("bare file alongside shard files not detected")
	}
	for k := 0; k < 3; k++ {
		if err := os.Remove(fmt.Sprintf("%s.shard-%d", pool, k)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := DiscoverShards(pool); n != 1 || err != nil {
		t.Fatalf("bare file: %d %v", n, err)
	}
}

// A crash mid-Sync leaves <shard>.tmp staging files behind; discovery must
// count shards past them instead of refusing the layout as unrecognized.
func TestDiscoverShardsIgnoresStaleTemps(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	touch := func(p string) {
		t.Helper()
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	touch(pool + ".shard-0")
	touch(pool + ".shard-1")
	touch(pool + ".shard-0.tmp")
	if n, err := DiscoverShards(pool); n != 2 || err != nil {
		t.Fatalf("2 shards + stale temp: %d %v", n, err)
	}
	// Only litter, no shards: nothing to discover.
	if err := os.Remove(pool + ".shard-0"); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(pool + ".shard-1"); err != nil {
		t.Fatal(err)
	}
	if n, err := DiscoverShards(pool); n != 0 || err != nil {
		t.Fatalf("temp only: %d %v", n, err)
	}
}

func TestShardedBasicOpsAndMergedStats(t *testing.T) {
	eng := newSharded(t, "", 4, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer eng.Close()

	const keys = 64
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		if _, err := eng.Put(key, append([]byte("val-"), key...)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		v, ok, err := eng.Get(key)
		if err != nil || !ok || !bytes.Equal(v, append([]byte("val-"), key...)) {
			t.Fatalf("get %s: %q ok=%v err=%v", key, v, ok, err)
		}
	}
	if found, _, err := eng.Delete([]byte("key-000")); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := eng.Get([]byte("key-000")); ok {
		t.Fatal("deleted key still visible")
	}
	if ep, err := eng.Persist(); err != nil || ep == 0 {
		t.Fatalf("persist: %d %v", ep, err)
	}

	// Uniform keys should touch every shard.
	agg := eng.AggregateStats()
	if agg.AckedWrites != keys+1 {
		t.Fatalf("acked writes = %d, want %d", agg.AckedWrites, keys+1)
	}
	text, err := eng.StatsText()
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		label := fmt.Sprintf("paxserve_acked_writes{shard=%q}", fmt.Sprint(k))
		if !strings.Contains(text, label) {
			t.Fatalf("stats missing per-shard metric %s:\n%s", label, text)
		}
	}
	for _, name := range []string{"paxserve_shards 4", "paxserve_acked_writes 65"} {
		if !strings.Contains(text, name) {
			t.Fatalf("stats missing aggregate %q:\n%s", name, text)
		}
	}
}

// TestShardedCrashRecovery is the acceptance-criteria test: kill the engine
// mid-load with N>1 shards, reopen the same files, and check both directions
// of the durability contract — every acked write survives, every write that
// failed with the crash rolled back.
func TestShardedCrashRecovery(t *testing.T) {
	const shards = 3
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newSharded(t, pool, shards, Config{MaxBatch: 4, MaxDelay: 100 * time.Microsecond})

	var (
		mu    sync.Mutex
		acked = map[string]string{}
		lost  = map[string]bool{}
	)
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; op++ {
				key := fmt.Sprintf("c%d-%04d", c, op)
				val := fmt.Sprintf("v%d-%04d", c, op)
				_, err := eng.Put([]byte(key), []byte(val))
				mu.Lock()
				if err != nil {
					lost[key] = true
				} else {
					acked[key] = val
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(c)
	}
	// Let every shard commit a few batches, then pull the plug mid-load.
	for eng.AggregateStats().GroupCommits < 3*shards {
		time.Sleep(time.Millisecond)
	}
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(acked) == 0 || len(lost) == 0 {
		t.Fatalf("crash timing degenerate: %d acked, %d lost", len(acked), len(lost))
	}

	reopened := newSharded(t, pool, shards, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer reopened.Close()
	for key, want := range acked {
		v, ok, err := reopened.Get([]byte(key))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("acked write %s lost by crash: %q ok=%v err=%v (shard %d)",
				key, v, ok, err, reopened.ShardFor([]byte(key)))
		}
	}
	for key := range lost {
		if _, ok, _ := reopened.Get([]byte(key)); ok {
			t.Fatalf("unacked write %s survived the crash (shard %d)",
				key, reopened.ShardFor([]byte(key)))
		}
	}
	t.Logf("crash at %d acked / %d in-flight across %d shards; all semantics held",
		len(acked), len(lost), shards)
}

// Router stability: the key→shard mapping must be a pure function of key and
// shard count, or a restart would look for keys in the wrong pool.
func TestShardedRouterStableAcrossRestart(t *testing.T) {
	const shards = 4
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")

	eng := newSharded(t, pool, shards, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	route := map[string]int{}
	for i := 0; i < 48; i++ {
		key := fmt.Sprintf("stable-%03d", i)
		route[key] = eng.ShardFor([]byte(key))
		if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The files on disk describe the layout; discovery must agree.
	if n, err := DiscoverShards(pool); n != shards || err != nil {
		t.Fatalf("discover after close: %d %v", n, err)
	}
	reopened := newSharded(t, pool, shards, Config{})
	defer reopened.Close()
	for key, shard := range route {
		if got := reopened.ShardFor([]byte(key)); got != shard {
			t.Fatalf("key %s moved shard %d -> %d across restart", key, shard, got)
		}
		v, ok, err := reopened.Get([]byte(key))
		if err != nil || !ok || string(v) != key {
			t.Fatalf("key %s unreadable after restart: %q ok=%v err=%v", key, v, ok, err)
		}
	}
}

// The TCP server must work identically over a ShardedEngine backend,
// including the fan-out ops (PERSIST, STATS).
func TestShardedTCPServer(t *testing.T) {
	eng := newSharded(t, "", 2, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	srv := NewServer(eng)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	cl, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("wire-%02d", i))
		if _, err := cl.Put(key, key); err != nil {
			t.Fatal(err)
		}
		if v, ok, err := cl.Get(key); err != nil || !ok || !bytes.Equal(v, key) {
			t.Fatalf("get over wire: %q ok=%v err=%v", v, ok, err)
		}
	}
	if ep, err := cl.Persist(); err != nil || ep == 0 {
		t.Fatalf("persist over wire: %d %v", ep, err)
	}
	text, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	for _, metric := range []string{`paxserve_acked_writes{shard="0"}`, `paxserve_acked_writes{shard="1"}`, "paxserve_shards 2"} {
		if !strings.Contains(text, metric) {
			t.Fatalf("sharded stats reply missing %s:\n%s", metric, text)
		}
	}
}

// An Overwrite reformat must clear whichever layout was there before, so a
// shard-count change cannot strand stale files for discovery to trip over.
func TestOpenShardedOverwriteReplacesLayout(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")

	eng := newSharded(t, pool, 1, Config{})
	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	opts := smallOpts()
	opts.Overwrite = true
	eng2, err := OpenSharded(pool, 3, opts, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	if _, ok, _ := eng2.Get([]byte("k")); ok {
		t.Fatal("reformat kept old data")
	}
	if n, err := DiscoverShards(pool); n != 3 || err != nil {
		t.Fatalf("discover after reformat: %d %v", n, err)
	}
}

func TestOpenShardedFirstErrorWins(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	// Pre-plant a directory where shard 1's file should go: that shard's
	// open fails, and the whole OpenSharded must fail and clean up.
	if err := os.Mkdir(pool+".shard-1", 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(pool, 3, smallOpts(), 0, Config{}); err == nil {
		t.Fatal("OpenSharded succeeded over an unopenable shard")
	}
}
