package server

import "sync"

// readIndex is the volatile lookaside index in front of the persistent map:
// a striped in-memory shadow of every (key, value) the writer loop has
// applied. GETs read it directly — no queue, no simulator, no waiting behind
// a commit in flight — which is legal because the paper's §3.5 single-mutator
// rule constrains who may *mutate* the pool during Persist, not who may
// observe already-applied state.
//
// Consistency contract (tested in readindex_test.go):
//
//   - Read-your-writes with respect to applied mutations: the writer updates
//     the index at apply time, before the mutation's ack, so any GET issued
//     after a PUT/DELETE ack sees it.
//   - Reads may observe applied-but-not-yet-durable data — the same window
//     queued reads always had, since apply also precedes commit.
//   - The index is volatile by design: it dies with the engine and is rebuilt
//     from the *recovered* pool at startup, so a value rolled back by crash
//     recovery is never served.
//
// The stripes bound contention: the single writer touches one stripe per
// mutation while readers fan out across all of them, so a commit in flight
// (which holds no index locks at all) never stalls a read.
const indexStripes = 64

type indexStripe struct {
	mu sync.RWMutex
	m  map[string][]byte
}

type readIndex struct {
	stripes [indexStripes]indexStripe
}

func newReadIndex() *readIndex {
	ix := &readIndex{}
	for i := range ix.stripes {
		ix.stripes[i].m = make(map[string][]byte)
	}
	return ix
}

// stripe picks the key's stripe by FNV-1a, the same family of hash the
// sharded router uses — cheap, allocation-free, and well spread for the
// short keys a KV workload carries.
func (ix *readIndex) stripe(key []byte) *indexStripe {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return &ix.stripes[h%indexStripes]
}

// get returns a copy of the indexed value, preserving Engine.Get's contract
// that callers own the returned slice (the persistent map's Get copies too).
func (ix *readIndex) get(key []byte) ([]byte, bool) {
	s := ix.stripe(key)
	s.mu.RLock()
	v, ok := s.m[string(key)] // no alloc: compiler-recognized map lookup
	if !ok {
		s.mu.RUnlock()
		return nil, false
	}
	out := append([]byte(nil), v...)
	s.mu.RUnlock()
	return out, true
}

// put records an applied mutation. The value is copied: callers (the wire
// layer, benchmark drivers) reuse their buffers, and index entries outlive
// the request that wrote them.
func (ix *readIndex) put(key, value []byte) {
	v := append([]byte(nil), value...)
	s := ix.stripe(key)
	s.mu.Lock()
	s.m[string(key)] = v
	s.mu.Unlock()
}

// delete removes an applied deletion's key.
func (ix *readIndex) delete(key []byte) {
	s := ix.stripe(key)
	s.mu.Lock()
	delete(s.m, string(key))
	s.mu.Unlock()
}

// indexEntry is one collected (key, value) pair; both slices are copies the
// caller owns.
type indexEntry struct {
	key, value []byte
}

// collect returns a copy of every entry whose key satisfies keep. Each
// stripe is read under its own RLock, so collection never blocks the writer
// for longer than one stripe — but the result is a per-stripe-consistent
// sample, not a global snapshot. Callers that need a stable view (slot
// migration, the open-time purge) quiesce the mutator first: migration
// write-locks the slot gate and drains the queue, the purge runs before
// serving starts. The caller must not mutate the index from inside a
// hypothetical callback — which is why this collects into a slice instead of
// exposing iteration: deleting collected keys afterwards cannot deadlock on
// a stripe lock.
func (ix *readIndex) collect(keep func(key []byte) bool) []indexEntry {
	var out []indexEntry
	for i := range ix.stripes {
		s := &ix.stripes[i]
		s.mu.RLock()
		for k, v := range s.m {
			if keep([]byte(k)) {
				out = append(out, indexEntry{
					key:   []byte(k),
					value: append([]byte(nil), v...),
				})
			}
		}
		s.mu.RUnlock()
	}
	return out
}

// len reports the indexed entry count (for the rebuild counter and tests).
func (ix *readIndex) len() int {
	n := 0
	for i := range ix.stripes {
		s := &ix.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}
