package server

import (
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pax/internal/blackbox"
	"pax/internal/stats"
)

// This file is the reshard autopilot: a policy loop that watches windowed
// per-shard load and decides, on its own, when the mechanism in migrate.go
// and merge.go should run. Three pieces:
//
//   - loadTracker turns the cumulative since-open counters into windowed
//     rates. The router's slotOps counters and the engines' latency
//     histograms only ever grow, so a policy reading them raw would see a
//     shard that was hot an hour ago as hot forever; the tracker samples
//     them on the policy tick and keeps an EWMA of per-slot op rates plus
//     per-shard windowed histogram views (snapshot subtraction).
//   - decide applies the thresholds with hysteresis: a split needs the hot
//     shard's commit pipeline to be the measured bottleneck — windowed
//     enqueue-wait p99 or pipeline stall, not mere imbalance (EXPERIMENTS.md
//     reshard: a split under a CPU-bound or uniform load buys nothing) — for
//     several consecutive ticks; a merge needs the coldest shard idle for a
//     configured stretch; and a cooldown separates any two actions so the
//     loop never flaps split/merge against its own migration noise.
//   - run ties them to a ticker and executes decisions via Split/Merge,
//     recording every decision for STATS/TRACE.

// ShardWindow is one shard's windowed load signals at the latest policy tick.
type ShardWindow struct {
	Shard int `json:"shard"`
	// OpsPerSec is the EWMA of per-slot op rates summed over the slots the
	// shard currently owns.
	OpsPerSec float64 `json:"ops_per_sec"`
	// EnqueueP99NS is the enqueue-wait p99 within the window — how long
	// writers waited for queue space, the head-of-line saturation signal.
	EnqueueP99NS int64 `json:"enqueue_p99_ns"`
	// StallFrac is the fraction of the window the sealer spent stalled on
	// the commit pipeline's run-ahead bound — the media-backlog signal.
	StallFrac float64 `json:"stall_frac"`
}

// loadTracker maintains windowed views over the cumulative load counters.
// tick is called from the policy loop; rate and lastWindows from anywhere.
type loadTracker struct {
	window time.Duration

	mu       sync.Mutex
	lastTick time.Time
	// lastSlot holds the previous tick's cumulative per-slot op counts as a
	// stats.Summary (keyed by slotKey) so the windowed delta→rate step is
	// Summary.Diff + Summary.Rate — the same helpers the black-box sampler
	// windows the full registry with — rather than hand-rolled subtraction.
	lastSlot  stats.Summary
	slotRate  [NumSlots]float64
	prevEnq   map[*Engine]*stats.LatencySnapshot
	prevStall map[*Engine]*stats.LatencySnapshot
	windows   []ShardWindow
}

// slotKey names a slot's op-count series inside the tracker's summaries.
func slotKey(slot int) string { return "slot_" + strconv.Itoa(slot) }

func newLoadTracker(window time.Duration) *loadTracker {
	return &loadTracker{
		window:    window,
		prevEnq:   make(map[*Engine]*stats.LatencySnapshot),
		prevStall: make(map[*Engine]*stats.LatencySnapshot),
	}
}

// tick samples the counters, folds the interval's deltas into the windowed
// rates, and returns the per-shard windows. The first call only baselines.
func (t *loadTracker) tick(s *ShardedEngine) []ShardWindow {
	now := time.Now()
	m := s.route.Load()
	shards := *s.shards.Load()

	t.mu.Lock()
	defer t.mu.Unlock()
	dt := now.Sub(t.lastTick)
	first := t.lastTick.IsZero()
	t.lastTick = now

	// EWMA weight for this interval: a sample covering the whole window
	// replaces the average outright; shorter intervals blend in
	// proportionally, so the rate decays toward zero over ~window once a
	// slot goes quiet regardless of tick jitter.
	alpha := 1.0
	if t.window > 0 && dt < t.window {
		alpha = float64(dt) / float64(t.window)
	}

	wins := make([]ShardWindow, len(shards))
	for k := range wins {
		wins[k].Shard = k
	}
	cur := make(stats.Summary, NumSlots)
	for slot := 0; slot < NumSlots; slot++ {
		cur[slotKey(slot)] = float64(s.slotOps[slot].Load())
	}
	rates := cur.Diff(t.lastSlot).Rate(dt)
	t.lastSlot = cur
	if !first && dt > 0 {
		for slot := 0; slot < NumSlots; slot++ {
			t.slotRate[slot] += alpha * (rates[slotKey(slot)] - t.slotRate[slot])
			if k := int(m.Assign[slot]); k < len(wins) {
				wins[k].OpsPerSec += t.slotRate[slot]
			}
		}
	}

	live := make(map[*Engine]bool, len(shards))
	for k, sh := range shards {
		live[sh.eng] = true
		st := sh.eng.Stats()
		enq := st.EnqueueWaitNS.Snapshot()
		stall := st.PipelineStallNS.Snapshot()
		if prev, ok := t.prevEnq[sh.eng]; ok {
			w := enq.Sub(prev)
			wins[k].EnqueueP99NS = w.Quantile(0.99)
		}
		if prev, ok := t.prevStall[sh.eng]; ok && dt > 0 {
			w := stall.Sub(prev)
			wins[k].StallFrac = float64(w.Sum) / float64(dt.Nanoseconds())
		}
		t.prevEnq[sh.eng] = &enq
		t.prevStall[sh.eng] = &stall
	}
	// Engines retired by Merge stop existing; drop their baselines.
	for eng := range t.prevEnq {
		if !live[eng] {
			delete(t.prevEnq, eng)
			delete(t.prevStall, eng)
		}
	}
	t.windows = wins
	return wins
}

// rate reports one slot's windowed ops/sec.
func (t *loadTracker) rate(slot int) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slotRate[slot]
}

// lastWindows returns a copy of the most recent tick's per-shard windows.
func (t *loadTracker) lastWindows() []ShardWindow {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]ShardWindow, len(t.windows))
	copy(out, t.windows)
	return out
}

// AutopilotConfig tunes the policy loop. The zero value enables nothing;
// unset thresholds take the listed defaults.
type AutopilotConfig struct {
	// Interval is the policy tick (default 1s); Window is the rate-smoothing
	// EWMA span (default 10×Interval).
	Interval time.Duration
	Window   time.Duration

	// SplitEnabled turns on hot-shard splits, up to MaxShards (default 8).
	// A split fires only when, for SplitHotTicks consecutive ticks (default
	// 3), the hottest shard carries at least SplitMinOpsPerSec (default 100)
	// windowed ops/s AND at least SplitImbalance (default 1.5) times the
	// fleet mean AND shows a pipeline signal: windowed enqueue-wait p99 over
	// SplitEnqueueP99 (default 1ms) or a pipeline-stall fraction over
	// SplitStallFrac (default 0.05). Load alone never splits — the split
	// only pays when the hot shard's commit pipeline is the bottleneck.
	SplitEnabled      bool
	MaxShards         int
	SplitMinOpsPerSec float64
	SplitImbalance    float64
	SplitEnqueueP99   time.Duration
	SplitStallFrac    float64
	SplitHotTicks     int

	// MergeEnabled turns on cold-shard merges, down to MinShards (default
	// 2). A merge fires when the coldest shard stays under
	// MergeIdleOpsPerSec (default 1) windowed ops/s for MergeIdle (default
	// 30s) while no split condition is pending.
	MergeEnabled       bool
	MinShards          int
	MergeIdleOpsPerSec float64
	MergeIdle          time.Duration

	// Cooldown is the minimum gap between any two policy actions (default
	// 10×Interval): the hysteresis that keeps a migration's own disruption
	// from triggering the next action.
	Cooldown time.Duration
}

func (c AutopilotConfig) withDefaults() AutopilotConfig {
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.Window <= 0 {
		c.Window = 10 * c.Interval
	}
	if c.MaxShards <= 0 {
		c.MaxShards = 8
	}
	if c.MaxShards > NumSlots {
		c.MaxShards = NumSlots
	}
	if c.SplitMinOpsPerSec <= 0 {
		c.SplitMinOpsPerSec = 100
	}
	if c.SplitImbalance <= 0 {
		c.SplitImbalance = 1.5
	}
	if c.SplitEnqueueP99 <= 0 {
		c.SplitEnqueueP99 = time.Millisecond
	}
	if c.SplitStallFrac <= 0 {
		c.SplitStallFrac = 0.05
	}
	if c.SplitHotTicks <= 0 {
		c.SplitHotTicks = 3
	}
	if c.MinShards < 2 {
		c.MinShards = 2
	}
	if c.MergeIdleOpsPerSec <= 0 {
		c.MergeIdleOpsPerSec = 1
	}
	if c.MergeIdle <= 0 {
		c.MergeIdle = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 10 * c.Interval
	}
	return c
}

// PolicyDecision is one executed autopilot action, recorded for STATS and
// TRACE: what fired, on which shard, why, and how it went.
type PolicyDecision struct {
	UnixNano int64  `json:"unix_nano"`
	Action   string `json:"action"` // "split" or "merge"
	Shard    int    `json:"shard"`
	Reason   string `json:"reason"`
	// Shards is the fleet size after the action (unchanged when Err is set).
	Shards int    `json:"shards"`
	Err    string `json:"error,omitempty"`
}

// Autopilot is a running policy loop over one ShardedEngine. Start it with
// StartAutopilot; it stops with the engine (Close/Crash) or via Stop.
type Autopilot struct {
	s       *ShardedEngine
	cfg     AutopilotConfig
	tracker *loadTracker

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	splits atomic.Uint64
	merges atomic.Uint64
	last   atomic.Pointer[PolicyDecision]

	// Hysteresis state, touched only by the policy goroutine (and
	// single-threaded tests driving decide directly).
	hotStreak  int
	idleStreak int
	idleTicks  int
	lastAction time.Time
}

// StartAutopilot starts the reshard policy loop. At most one runs per
// engine; it is stopped automatically by Close/Crash. While it runs, the
// per-slot load signal used by Split/Merge/auto-pick is the tracker's
// windowed rate.
func (s *ShardedEngine) StartAutopilot(cfg AutopilotConfig) (*Autopilot, error) {
	cfg = cfg.withDefaults()
	a := &Autopilot{
		s:       s,
		cfg:     cfg,
		tracker: newLoadTracker(cfg.Window),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	a.idleTicks = int((cfg.MergeIdle + cfg.Interval - 1) / cfg.Interval)
	if a.idleTicks < 1 {
		a.idleTicks = 1
	}
	if !s.autopilot.CompareAndSwap(nil, a) {
		return nil, fmt.Errorf("server: autopilot already running")
	}
	a.tracker.tick(s) // baseline, so the first real tick measures one full interval
	go a.run()
	return a, nil
}

// stopAutopilot stops the policy loop if one is running; called by
// Close/Crash before the shards go down so a mid-flight migration finishes
// against live engines.
func (s *ShardedEngine) stopAutopilot() {
	if a := s.autopilot.Load(); a != nil {
		a.Stop()
	}
}

// Stop halts the policy loop and waits for it (including any migration it
// is mid-way through). Idempotent.
func (a *Autopilot) Stop() {
	a.stopOnce.Do(func() { close(a.stop) })
	<-a.done
}

// Windows returns the per-shard windowed signals from the latest tick.
func (a *Autopilot) Windows() []ShardWindow { return a.tracker.lastWindows() }

// LastDecision returns the most recent executed decision, nil if none yet.
func (a *Autopilot) LastDecision() *PolicyDecision { return a.last.Load() }

func (a *Autopilot) run() {
	defer close(a.done)
	tick := time.NewTicker(a.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-tick.C:
		}
		wins := a.tracker.tick(a.s)
		if dec := a.decide(wins, time.Now()); dec != nil {
			a.apply(dec)
		}
	}
}

// decide evaluates one tick's windows against the thresholds, advancing the
// hysteresis streaks, and returns a decision when one fires. It is a method
// rather than a pure function only for the streak state; tests drive it
// directly with synthetic windows.
func (a *Autopilot) decide(wins []ShardWindow, now time.Time) *PolicyDecision {
	n := len(wins)
	if n == 0 {
		return nil
	}
	var total float64
	hot, cold := 0, 0
	for k, w := range wins {
		total += w.OpsPerSec
		if w.OpsPerSec > wins[hot].OpsPerSec {
			hot = k
		}
		if w.OpsPerSec < wins[cold].OpsPerSec {
			cold = k
		}
	}
	mean := total / float64(n)

	cfg := a.cfg
	pipelineHot := time.Duration(wins[hot].EnqueueP99NS) >= cfg.SplitEnqueueP99 ||
		wins[hot].StallFrac >= cfg.SplitStallFrac
	splitReady := cfg.SplitEnabled && n < cfg.MaxShards &&
		wins[hot].OpsPerSec >= cfg.SplitMinOpsPerSec &&
		(n == 1 || wins[hot].OpsPerSec >= cfg.SplitImbalance*mean) &&
		pipelineHot
	if splitReady {
		a.hotStreak++
	} else {
		a.hotStreak = 0
	}

	// An idle streak only accumulates while no split is brewing: a skewed
	// fleet can show one starved shard next to a saturated one, and merging
	// into that would fight the split the next ticks will ask for.
	mergeReady := cfg.MergeEnabled && n > cfg.MinShards &&
		wins[cold].OpsPerSec <= cfg.MergeIdleOpsPerSec && a.hotStreak == 0
	if mergeReady {
		a.idleStreak++
	} else {
		a.idleStreak = 0
	}

	if !a.lastAction.IsZero() && now.Sub(a.lastAction) < cfg.Cooldown {
		// Cooldown: keep the streaks warm but do not act — the previous
		// action's migration noise must wash out of the window first.
		return nil
	}
	if a.hotStreak >= cfg.SplitHotTicks {
		a.hotStreak = 0
		imb := 0.0
		if mean > 0 {
			imb = wins[hot].OpsPerSec / mean
		}
		return &PolicyDecision{
			UnixNano: now.UnixNano(),
			Action:   "split",
			Shard:    hot,
			Shards:   n,
			Reason: fmt.Sprintf("shard %d: %.0f windowed ops/s (%.1fx mean), enqueue p99 %v, stall %.0f%%: commit pipeline saturated",
				hot, wins[hot].OpsPerSec, imb, time.Duration(wins[hot].EnqueueP99NS), wins[hot].StallFrac*100),
		}
	}
	if a.idleStreak >= a.idleTicks {
		a.idleStreak = 0
		return &PolicyDecision{
			UnixNano: now.UnixNano(),
			Action:   "merge",
			Shard:    cold,
			Shards:   n,
			Reason: fmt.Sprintf("shard %d: %.1f windowed ops/s for %v: idle, folding back",
				cold, wins[cold].OpsPerSec, cfg.MergeIdle),
		}
	}
	return nil
}

// apply executes a decision and records it. The action's own duration counts
// against the cooldown (lastAction is stamped after it returns), so a slow
// migration pushes the next decision out rather than stacking on top.
func (a *Autopilot) apply(d *PolicyDecision) {
	switch d.Action {
	case "split":
		rep, err := a.s.Split(d.Shard)
		if err != nil {
			d.Err = err.Error()
		} else {
			a.splits.Add(1)
			d.Shards = rep.Shards
		}
	case "merge":
		rep, err := a.s.Merge(d.Shard)
		if err != nil {
			d.Err = err.Error()
		} else {
			a.merges.Add(1)
			d.Shards = rep.Shards
		}
	}
	a.lastAction = time.Now()
	a.last.Store(d)
	a.s.events.emit(blackbox.EvPolicy, -1, d)
	if d.Err != "" {
		a.s.logf("server: autopilot: %s shard %d failed: %s (%s)", d.Action, d.Shard, d.Err, d.Reason)
	} else {
		a.s.logf("server: autopilot: %s shard %d -> %d shards (%s)", d.Action, d.Shard, d.Shards, d.Reason)
	}
}

// publish adds the autopilot's wire-visible status to a merged metrics
// summary: windowed per-shard rates and the last decision, so STATS (and
// paxinspect -stats -shards) shows what the policy sees and last did.
func (a *Autopilot) publish(m stats.Summary) {
	m["paxserve_autopilot_enabled"] = 1
	m["paxserve_autopilot_splits"] = float64(a.splits.Load())
	m["paxserve_autopilot_merges"] = float64(a.merges.Load())
	for _, w := range a.tracker.lastWindows() {
		label := fmt.Sprintf("{shard=%q}", strconv.Itoa(w.Shard))
		m["paxserve_window_ops_per_sec"+label] = w.OpsPerSec
		m["paxserve_window_enqueue_p99_ns"+label] = float64(w.EnqueueP99NS)
		m["paxserve_window_stall_frac"+label] = w.StallFrac
		m["paxserve_window_ops_per_sec"] += w.OpsPerSec
	}
	if d := a.last.Load(); d != nil {
		action := 1.0
		if d.Action == "merge" {
			action = 2
		}
		if d.Err != "" {
			action = -action
		}
		m["paxserve_autopilot_last_action"] = action
		m["paxserve_autopilot_last_shard"] = float64(d.Shard)
		m["paxserve_autopilot_last_unix_nano"] = float64(d.UnixNano)
	}
}
