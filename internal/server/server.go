package server

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"pax/internal/wire"
)

// Backend is what the TCP front end serves: the single-pool Engine or the
// ShardedEngine router. begin enqueues a request without waiting; on nil
// the backend owns the request and delivers exactly one result on req.done.
type Backend interface {
	begin(req *request) error
}

// Server is the TCP front end: it speaks the wire protocol and forwards
// requests to a Backend. Each connection gets a reader goroutine that
// enqueues requests on the backend in wire order and a writer goroutine
// that sends the responses back in that same order — so pipelined requests
// are in flight concurrently and even a single connection's writes land in
// shared group commits.
type Server struct {
	backend Backend
	// DefaultAckPolicy is what a request without an explicit ack-policy flag
	// gets — every pre-flags client, and every new client sending
	// FlagAckDefault. The zero value is AckDurable, the protocol's original
	// contract; paxserve -ack-policy overrides it.
	DefaultAckPolicy AckPolicy
	// WriteTimeout bounds each response write (default 30s).
	WriteTimeout time.Duration
	// Logf, when set, receives connection-level errors (default: drop them;
	// a malformed client is not a server event worth crashing over).
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	shutdown bool
	wg       sync.WaitGroup
}

// NewServer wraps a backend (an Engine or a ShardedEngine).
func NewServer(b Backend) *Server {
	return &Server{backend: b, WriteTimeout: 30 * time.Second, conns: make(map[net.Conn]struct{})}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// Serve accepts connections on lis until Shutdown. It returns nil after a
// clean shutdown and the accept error otherwise.
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.shutdown {
		s.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	s.listener = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			s.mu.Lock()
			done := s.shutdown
			s.mu.Unlock()
			if done {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Shutdown stops accepting, closes every live connection, and waits for the
// handlers to drain. It does not close the engine — the daemon does, after
// the last response is on the wire.
func (s *Server) Shutdown() {
	s.mu.Lock()
	s.shutdown = true
	if s.listener != nil {
		s.listener.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// maxInflight bounds how many pipelined requests one connection may have
// dispatched at once; past it the reader stops reading and TCP pushes back.
const maxInflight = 256

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)

	// Responses must leave in request order, but a response is not ready
	// until its group commit — so the reader enqueues each request on the
	// engine immediately (one goroutine, so the engine applies them in wire
	// order) and pushes its wait function onto pending; the writer drains
	// pending in order. Between the two, a connection's pipelined writes
	// fill batches instead of paying one commit each.
	pending := make(chan func() wire.Response, maxInflight)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		broken := false
		for wait := range pending {
			resp := wait() // must consume even after a write error
			if broken {
				continue
			}
			if s.WriteTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
			}
			err := wire.WriteResponse(bw, resp)
			if err == nil {
				err = bw.Flush()
			}
			if err != nil {
				s.logf("paxserve: %s: write: %v", conn.RemoteAddr(), err)
				broken = true
				conn.Close() // unblock the reader
			}
		}
	}()
	for {
		req, err := wire.ReadRequest(br)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("paxserve: %s: read: %v", conn.RemoteAddr(), err)
			}
			break
		}
		pending <- s.beginDispatch(req)
	}
	close(pending)
	<-writerDone
}

// beginDispatch starts req on the engine and returns a function that blocks
// for its result and renders the wire response. Enqueue failures (closed,
// backpressure) resolve immediately, and so do GETs: the engine answers them
// inline from the read index inside begin, so a pipelined GET's value is
// fixed at dispatch time — it does not serialize behind the connection's
// unacked PUTs (the response still leaves the wire in request order).
func (s *Server) beginDispatch(req wire.Request) func() wire.Response {
	var op opKind
	switch req.Op {
	case wire.OpGet:
		op = opGet
	case wire.OpPut:
		op = opPut
	case wire.OpDelete:
		op = opDelete
	case wire.OpPersist:
		op = opPersist
	case wire.OpStats:
		op = opStats
	case wire.OpTrace:
		op = opTrace
	case wire.OpSplit:
		op = opSplit
	case wire.OpMerge:
		op = opMerge
	case wire.OpEvents:
		op = opEvents
	default:
		resp := wire.Response{Status: wire.StatusError, Body: []byte("unknown opcode " + wire.OpName(req.Op))}
		return func() wire.Response { return resp }
	}
	ereq := newRequest(op, req.Key, req.Value)
	if op == opSplit || op == opMerge {
		// SplitAuto/MergeAuto (all ones) means "server picks"; the engine
		// side uses -1.
		if req.Shard == wire.SplitAuto {
			ereq.shard = -1
		} else {
			ereq.shard = int(req.Shard)
		}
	}
	switch req.Flags {
	case wire.FlagAckDefault:
		ereq.ackOnApply = s.DefaultAckPolicy == AckApply && (op == opPut || op == opDelete || op == opPersist)
	case wire.FlagAckDurable:
		ereq.ackOnApply = false
	case wire.FlagAckApply:
		ereq.ackOnApply = true
	}
	if err := s.backend.begin(ereq); err != nil {
		ereq.release()
		resp := errResponse(err)
		return func() wire.Response { return resp }
	}
	wireOp := req.Op
	return func() wire.Response {
		res := <-ereq.done
		ereq.release()
		return renderResponse(wireOp, res)
	}
}

func renderResponse(op byte, res result) wire.Response {
	if res.err != nil {
		return errResponse(res.err)
	}
	switch op {
	case wire.OpGet:
		if !res.found {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Body: res.value}
	case wire.OpPut, wire.OpPersist:
		return wire.Response{Status: wire.StatusOK, Body: wire.EpochBody(res.epoch)}
	case wire.OpDelete:
		st := wire.StatusOK
		if !res.found {
			st = wire.StatusNotFound
		}
		return wire.Response{Status: st, Body: wire.EpochBody(res.epoch)}
	case wire.OpStats:
		return wire.Response{Status: wire.StatusOK, Body: []byte(res.text)}
	case wire.OpTrace, wire.OpEvents, wire.OpSplit, wire.OpMerge:
		return wire.Response{Status: wire.StatusOK, Body: res.value}
	}
	return wire.Response{Status: wire.StatusError, Body: []byte("unknown opcode " + wire.OpName(op))}
}

// errResponse maps engine errors onto wire statuses: backpressure (ErrBusy)
// becomes StatusBusy so clients retry by status byte; everything else —
// including a sealed shard's durability error — is StatusError, which a
// client must not blindly retry.
func errResponse(err error) wire.Response {
	status := wire.StatusError
	if errors.Is(err, ErrBusy) {
		status = wire.StatusBusy
	}
	return wire.Response{Status: status, Body: []byte(err.Error())}
}
