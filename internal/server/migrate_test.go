package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pax/internal/wire"
)

// newShardedDelta opens a file-backed sharded engine on the delta epoch
// store: migration tests force plenty of commits (per-slot copy commits and
// durable put streams), and O(dirty) commit cost keeps them honest about
// what the migration itself costs rather than measuring full-image
// republish IO.
func newShardedDelta(t *testing.T, path string, shards int, cfg Config) *ShardedEngine {
	t.Helper()
	opts := smallOpts()
	opts.EpochLog = true
	eng, err := OpenSharded(path, shards, opts, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// Splitting must move exactly the keys whose slots the report lists — every
// key in a moved slot reroutes to the destination, every other key keeps its
// owner — and the new route must survive a reopen.
func TestSplitMovesOnlyMovedSlotKeys(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})

	const keys = 400
	before := make(map[string]int)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("prop-%04d", i)
		before[key] = eng.ShardFor([]byte(key))
		if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := eng.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != 0 || rep.Dest != 2 || !rep.NewShard || rep.Shards != 3 {
		t.Fatalf("unexpected report %+v", rep)
	}
	movedSlot := make(map[int]bool, len(rep.MovedSlots))
	for _, s := range rep.MovedSlots {
		movedSlot[s] = true
	}
	if len(rep.MovedSlots) == 0 || len(rep.MovedSlots) >= NumSlots/2 {
		t.Fatalf("split of one of two shards moved %d slots, want within (0, %d)", len(rep.MovedSlots), NumSlots/2)
	}

	moved := 0
	for key, owner := range before {
		got := eng.ShardFor([]byte(key))
		if movedSlot[SlotFor([]byte(key))] {
			if got != rep.Dest {
				t.Fatalf("key %s in a moved slot routes to %d, want dest %d", key, got, rep.Dest)
			}
			moved++
		} else if got != owner {
			t.Fatalf("key %s in an unmoved slot rerouted %d -> %d", key, owner, got)
		}
		if v, ok, err := eng.Get([]byte(key)); err != nil || !ok || string(v) != key {
			t.Fatalf("key %s unreadable after split: %q ok=%v err=%v", key, v, ok, err)
		}
	}
	if moved != rep.MovedKeys {
		t.Fatalf("report says %d moved keys, routing says %d", rep.MovedKeys, moved)
	}
	// The moved fraction tracks the moved-slot fraction: a uniform keyspace
	// cannot move much more of the data than of the slot space.
	frac := float64(moved) / keys
	bound := 2*float64(len(rep.MovedSlots))/NumSlots + 0.05
	if frac > bound {
		t.Fatalf("moved %.2f of the keys for %d/%d slots (bound %.2f)", frac, len(rep.MovedSlots), NumSlots, bound)
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := DiscoverShards(pool)
	if err != nil || n != 3 {
		t.Fatalf("discover after split: %d %v", n, err)
	}
	re := newShardedDelta(t, pool, n, Config{})
	defer re.Close()
	for key := range before {
		want := rep.Dest
		if !movedSlot[SlotFor([]byte(key))] {
			want = before[key]
		}
		if got := re.ShardFor([]byte(key)); got != want {
			t.Fatalf("key %s routes to %d after reopen, want %d", key, got, want)
		}
		if v, ok, err := re.Get([]byte(key)); err != nil || !ok || string(v) != key {
			t.Fatalf("key %s unreadable after reopen: %q ok=%v err=%v", key, v, ok, err)
		}
	}
}

// A split must be transparent to live traffic: writers keep acking durably
// throughout, and after a crash immediately post-split every acked write is
// still there.
func TestSplitUnderConcurrentWritersNoAckedLoss(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})

	const writers = 8
	var (
		mu    sync.Mutex
		acked = make(map[string]string)
		wg    sync.WaitGroup
	)
	stop := make(chan struct{})
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-%05d", w, i)
				val := fmt.Sprintf("v%d-%05d", w, i)
				if _, err := eng.Put([]byte(key), []byte(val)); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				mu.Lock()
				acked[key] = val
				mu.Unlock()
			}
		}(w)
	}

	time.Sleep(20 * time.Millisecond) // let some writes land pre-split
	rep, err := eng.Split(-1)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // and some post-split
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}

	n, err := DiscoverShards(pool)
	if err != nil || n != 3 {
		t.Fatalf("discover after crash: %d %v", n, err)
	}
	re := newShardedDelta(t, pool, n, Config{})
	defer re.Close()
	for key, val := range acked {
		v, ok, err := re.Get([]byte(key))
		if err != nil || !ok || string(v) != val {
			t.Fatalf("acked key %s lost across split+crash: %q ok=%v err=%v (split %+v)", key, v, ok, err, rep)
		}
	}
	t.Logf("split %d -> %d moved %d slots / %d keys with %d concurrent acked writes intact",
		rep.Source, rep.Dest, len(rep.MovedSlots), rep.MovedKeys, len(acked))
}

// Auto-pick must choose the shard that served the most slot traffic.
func TestSplitAutoPicksHottestShard(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()

	// Find a key on shard 1 and hammer it so shard 1 is unambiguously hot.
	var hot []byte
	for i := 0; ; i++ {
		key := []byte(fmt.Sprintf("hot-%d", i))
		if eng.ShardFor(key) == 1 {
			hot = key
			break
		}
	}
	for i := 0; i < 300; i++ {
		if _, err := eng.Put(hot, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := eng.Split(-1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Source != 1 {
		t.Fatalf("auto split chose shard %d, want the hot shard 1", rep.Source)
	}
}

// A shard left with zero slots is reusable capacity: the next split must
// target it instead of growing the fleet.
func TestSplitReusesIdleShard(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 3, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()

	for i := 0; i < 100; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("idle-%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Drain shard 2: every slot it owns goes to shard 0.
	m := eng.Route()
	assign := make([]int, NumSlots)
	for s, owner := range m.Assign {
		assign[s] = int(owner)
		if owner == 2 {
			assign[s] = 0
		}
	}
	if err := eng.Rebalance(assign); err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dest != 2 || rep.NewShard || rep.Shards != 3 {
		t.Fatalf("split did not reuse the idle shard: %+v", rep)
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("idle-%04d", i))
		if v, ok, err := eng.Get(key); err != nil || !ok || !bytes.Equal(v, []byte("v")) {
			t.Fatalf("key %s unreadable after rebalance+split: ok=%v err=%v", key, ok, err)
		}
	}
}

// Bare single-file layouts have no slot map on disk and cannot grow.
func TestSplitBareLayoutRefused(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newSharded(t, pool, 1, Config{})
	defer eng.Close()
	if _, err := eng.Split(-1); err == nil {
		t.Fatal("split of a bare single-shard layout succeeded")
	}
}

// Crash window simulation: a crash mid-copy leaves orphan copies on the
// destination with the slot map still pointing at the source. The orphans
// must be purged at open, not resurrected.
func TestReopenPurgesOrphanCopies(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newSharded(t, pool, 2, Config{MaxBatch: 8, MaxDelay: 0})

	key := []byte("purge-victim")
	owner := eng.ShardFor(key)
	other := 1 - owner
	if _, err := eng.Put(key, []byte("authoritative")); err != nil {
		t.Fatal(err)
	}
	// Plant the orphan exactly where a crashed migration would leave it: on
	// the non-owner, durable, with the slot map unchanged.
	if _, err := (*eng.shards.Load())[other].eng.PutPolicy(key, []byte("stale-copy"), AckDurable); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := newSharded(t, pool, 2, Config{})
	defer re.Close()
	if v, ok, err := re.Get(key); err != nil || !ok || string(v) != "authoritative" {
		t.Fatalf("owner copy wrong after reopen: %q ok=%v err=%v", v, ok, err)
	}
	if _, ok, _ := (*re.shards.Load())[other].eng.Get(key); ok {
		t.Fatal("orphan copy survived reopen")
	}
	metrics, err := re.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if metrics["paxserve_reshard_purged_keys"] < 1 {
		t.Fatalf("purge not counted: %v", metrics["paxserve_reshard_purged_keys"])
	}
}

// Router metrics must reflect a split: seq advances, counters accumulate.
func TestSplitMetrics(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{MaxBatch: 8, MaxDelay: 0})
	defer eng.Close()
	for i := 0; i < 64; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("m-%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := eng.Split(-1)
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := eng.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := metrics["paxserve_reshard_splits"]; got != 1 {
		t.Fatalf("paxserve_reshard_splits = %v, want 1", got)
	}
	if got := metrics["paxserve_reshard_moved_slots"]; got != float64(len(rep.MovedSlots)) {
		t.Fatalf("paxserve_reshard_moved_slots = %v, want %d", got, len(rep.MovedSlots))
	}
	if got := metrics["paxserve_slotmap_seq"]; got != float64(rep.Seq) {
		t.Fatalf("paxserve_slotmap_seq = %v, want %d", got, rep.Seq)
	}
}

// SPLIT over the wire: a sharded backend runs the migration and replies with
// the report JSON; a single-pool backend refuses at dispatch.
func TestSplitOverTCP(t *testing.T) {
	eng := newSharded(t, "", 2, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	srv := NewServer(eng)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	cl, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("tcp-%03d", i))
		if _, err := cl.Put(key, key); err != nil {
			t.Fatal(err)
		}
	}
	body, err := cl.Split(-1)
	if err != nil {
		t.Fatal(err)
	}
	var rep SplitReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("decoding split report %q: %v", body, err)
	}
	if rep.Shards != 3 || len(rep.MovedSlots) == 0 {
		t.Fatalf("unexpected wire split report %+v", rep)
	}
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("tcp-%03d", i))
		if v, ok, err := cl.Get(key); err != nil || !ok || !bytes.Equal(v, key) {
			t.Fatalf("key %s unreadable after wire split: ok=%v err=%v", key, ok, err)
		}
	}
	// Splitting an explicit out-of-range shard is an error reply, not a hang.
	if _, err := cl.Split(9); err == nil {
		t.Fatal("split of shard 9 of 3 succeeded")
	}
}

// A single-pool (non-sharded) server must refuse SPLIT with a clean error.
func TestSplitSingleEngineRefused(t *testing.T) {
	_, eng := newTestEngine(t, "", Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	srv := NewServer(eng)
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		<-done
	})
	cl, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Split(-1); err == nil {
		t.Fatal("SPLIT on a single-pool server succeeded")
	}
}
