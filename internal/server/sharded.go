package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"pax"
	"pax/internal/epochlog"
	"pax/internal/stats"
)

// This file is the sharded serving layer: a router that partitions the
// keyspace across N independent (pool, engine) shards so N group commits
// proceed in parallel. Each shard is a separate pool file with its own
// writer goroutine, undo log, and simulated device — the paper's §6
// multi-device scaling, where every accelerator owns a vPM region and
// epochs commit independently. The §3.5 single-mutator rule holds per pool
// by construction: a key deterministically owns one shard, so per-key
// operations stay totally ordered (and read-your-writes) even though
// different keys commit concurrently. Durability ordering is per key, not
// cross-shard: two acked writes to different shards may land in either
// order after a crash, but every individually acked write is durable.

// shard pairs one pool with the engine that is its only legal mutator.
type shard struct {
	pool *pax.Pool
	eng  *Engine
}

// ShardedEngine routes requests across N single-writer engines. All methods
// are safe for concurrent use. It implements the same Backend contract as
// Engine, so the TCP server works over either.
type ShardedEngine struct {
	shards []shard

	closeOnce sync.Once
	closeErr  error

	mu    sync.Mutex
	final stats.Summary // metrics frozen at teardown; guarded by mu
}

// ShardPath returns shard k's pool file path. A single-shard engine uses
// path itself — so 1-shard serving stays file-compatible with the unsharded
// daemon — and an in-memory engine (path "") has no files.
func ShardPath(path string, shards, k int) string {
	if path == "" || shards == 1 {
		return path
	}
	return fmt.Sprintf("%s.shard-%d", path, k)
}

// DiscoverShards inspects the files at path and reports how many shards a
// previous run left behind: 1 for a bare pool file, N for a contiguous
// <path>.shard-0..N-1 set, 0 for nothing. A gap in the shard sequence or a
// bare file alongside shard files is corruption worth refusing to guess at.
func DiscoverShards(path string) (int, error) {
	if path == "" {
		return 0, nil
	}
	bare := false
	if _, err := os.Stat(path); err == nil {
		bare = true
	}
	matches, err := filepath.Glob(path + ".shard-*")
	if err != nil {
		return 0, err
	}
	if bare && len(matches) > 0 {
		return 0, fmt.Errorf("server: both %q and %d shard files exist; remove one layout", path, len(matches))
	}
	if bare {
		return 1, nil
	}
	if len(matches) == 0 {
		return 0, nil
	}
	seen := make(map[int]bool)
	count := 0
	for _, m := range matches {
		if strings.HasSuffix(m, ".tmp") {
			// Staging litter from a crash mid-Sync (pmem writes <file>.tmp
			// then renames). Open cleans it per shard; it is not a shard.
			continue
		}
		if strings.HasSuffix(m, epochlog.DirSuffix) {
			// A shard's delta-epoch-store segment directory
			// (<shard>.epochlog), not a shard of its own.
			continue
		}
		k, err := strconv.Atoi(strings.TrimPrefix(m, path+".shard-"))
		if err != nil {
			return 0, fmt.Errorf("server: unrecognized shard file %q", m)
		}
		seen[k] = true
		count++
	}
	if count == 0 {
		return 0, nil
	}
	for k := 0; k < count; k++ {
		if !seen[k] {
			return 0, fmt.Errorf("server: shard files are not contiguous: missing %s", ShardPath(path, count+1, k))
		}
	}
	return count, nil
}

// OpenSharded opens (creating or recovering as needed) shards pool files
// rooted at path and starts an engine per shard. Opening and recovery run
// concurrently across shards — recovery cost is paid once per shard, in
// parallel, not summed — and the first error wins: on any failure every
// already-opened shard is closed and the error is returned. opts sizes each
// shard individually (DataSize is per shard, not divided). With
// opts.Overwrite set, any existing files of either layout are removed first
// so a reformat never leaves stale higher-numbered shards behind.
func OpenSharded(path string, shards int, opts pax.Options, slot int, cfg Config) (*ShardedEngine, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("server: shard count %d must be positive", shards)
	}
	if opts.Overwrite && path != "" {
		if err := removeShardFiles(path); err != nil {
			return nil, err
		}
	}
	s := &ShardedEngine{shards: make([]shard, shards)}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sp := ShardPath(path, shards, k)
			var pool *pax.Pool
			var err error
			if opts.Overwrite {
				pool, err = pax.CreatePool(sp, opts)
			} else {
				pool, err = pax.MapPool(sp, opts)
			}
			if err != nil {
				fail(fmt.Errorf("server: shard %d: %w", k, err))
				return
			}
			eng, err := New(pool, slot, cfg)
			if err != nil {
				pool.Close()
				fail(fmt.Errorf("server: shard %d: %w", k, err))
				return
			}
			s.shards[k] = shard{pool: pool, eng: eng}
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		for _, sh := range s.shards {
			if sh.eng != nil {
				sh.eng.Close()
			}
			if sh.pool != nil {
				sh.pool.Close()
			}
		}
		return nil, firstErr
	}
	return s, nil
}

// removeShardFiles clears both layouts (bare file and shard files) so an
// Overwrite reformat never leaves a stale layout for DiscoverShards to trip
// over.
func removeShardFiles(path string) error {
	matches, err := filepath.Glob(path + ".shard-*")
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		matches = append(matches, path)
	}
	for _, m := range matches {
		// Each pool file may have an epoch-log segment directory next to it
		// (which the glob also matches directly); a reformat must take it
		// too, or stale deltas would replay onto the fresh pool.
		if strings.HasSuffix(m, epochlog.DirSuffix) {
			if err := os.RemoveAll(m); err != nil {
				return fmt.Errorf("server: reformatting: %w", err)
			}
			continue
		}
		if err := os.RemoveAll(m + epochlog.DirSuffix); err != nil {
			return fmt.Errorf("server: reformatting: %w", err)
		}
		if err := os.Remove(m); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: reformatting: %w", err)
		}
	}
	return nil
}

// NumShards reports the shard count.
func (s *ShardedEngine) NumShards() int { return len(s.shards) }

// MediaSize reports the per-shard pool media size in bytes (every shard is
// created with the same geometry).
func (s *ShardedEngine) MediaSize() int { return s.shards[0].pool.MediaSize() }

// EpochLogEnabled reports whether the shards persist through the
// log-structured delta epoch store rather than full-image publishes.
func (s *ShardedEngine) EpochLogEnabled() bool { return s.shards[0].pool.EpochLogEnabled() }

// ShardFor reports which shard owns key. The mapping is a pure function of
// the key bytes and the shard count — FNV-1a mod N — so it is stable across
// restarts: reopening the same shard files routes every key back to the
// pool that holds it.
func (s *ShardedEngine) ShardFor(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

// begin implements Backend: per-key operations route to the owning shard's
// queue (FIFO per shard, so a connection's same-key operations keep their
// wire order); persist and stats fan out across every shard and deliver one
// merged result.
func (s *ShardedEngine) begin(req *request) error {
	switch req.op {
	case opGet, opPut, opDelete:
		return s.shards[s.ShardFor(req.key)].eng.begin(req)
	case opPersist:
		go func() {
			epoch, err := s.Persist()
			req.finish(result{epoch: epoch, err: err})
		}()
		return nil
	case opStats:
		go func() {
			text, err := s.StatsText()
			req.finish(result{text: text, err: err})
		}()
		return nil
	case opTrace:
		// Recorder snapshots never touch the writer loops (each recorder has
		// its own mutex), so this is answered inline — and keeps working with
		// shards sealed or crashed.
		buf, err := json.Marshal(s.Trace())
		req.finish(result{value: buf, err: err})
		return nil
	}
	return fmt.Errorf("server: unknown op %d", req.op)
}

// Trace merges every shard's flight recorder into one snapshot: records are
// stamped with their shard index and interleaved oldest-first by batch start
// time. Sequence numbers stay per-shard — (shard, seq) identifies a commit.
func (s *ShardedEngine) Trace() TraceSnapshot {
	out := TraceSnapshot{Shards: len(s.shards)}
	for k, sh := range s.shards {
		snap := sh.eng.Trace()
		if snap.SlowThresholdNS > out.SlowThresholdNS {
			out.SlowThresholdNS = snap.SlowThresholdNS
		}
		for i := range snap.Recent {
			snap.Recent[i].Shard = k
		}
		for i := range snap.Slow {
			snap.Slow[i].Shard = k
		}
		out.Recent = append(out.Recent, snap.Recent...)
		out.Slow = append(out.Slow, snap.Slow...)
	}
	byStart := func(recs []CommitRecord) func(i, j int) bool {
		return func(i, j int) bool { return recs[i].Start < recs[j].Start }
	}
	sort.SliceStable(out.Recent, byStart(out.Recent))
	sort.SliceStable(out.Slow, byStart(out.Slow))
	return out
}

// Get routes to the key's shard and serves from that shard's read index —
// no queue, no waiting behind the shard's commit in flight (read-your-writes
// with respect to acked mutations, like Engine.Get).
func (s *ShardedEngine) Get(key []byte) ([]byte, bool, error) {
	return s.shards[s.ShardFor(key)].eng.Get(key)
}

// Put routes to the key's shard and blocks until that shard's group commit
// makes the write durable.
func (s *ShardedEngine) Put(key, value []byte) (uint64, error) {
	return s.shards[s.ShardFor(key)].eng.Put(key, value)
}

// PutPolicy routes to the key's shard under an explicit ack policy (see
// Engine.PutPolicy); the policy is per request, so one router serves
// durable and apply-acked writers side by side.
func (s *ShardedEngine) PutPolicy(key, value []byte, policy AckPolicy) (uint64, error) {
	return s.shards[s.ShardFor(key)].eng.PutPolicy(key, value, policy)
}

// Delete routes to the key's shard, blocking like Put.
func (s *ShardedEngine) Delete(key []byte) (bool, uint64, error) {
	return s.shards[s.ShardFor(key)].eng.Delete(key)
}

// DeletePolicy routes to the key's shard under an explicit ack policy.
func (s *ShardedEngine) DeletePolicy(key []byte, policy AckPolicy) (bool, uint64, error) {
	return s.shards[s.ShardFor(key)].eng.DeletePolicy(key, policy)
}

// Persist forces a group commit on every shard in parallel and joins. The
// returned epoch is the maximum shard epoch — shards number their epochs
// independently, so it is a watermark, not a global ordering point.
func (s *ShardedEngine) Persist() (uint64, error) {
	epochs := make([]uint64, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for k := range s.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			epochs[k], errs[k] = s.shards[k].eng.Persist()
		}(k)
	}
	wg.Wait()
	var max uint64
	for k := range s.shards {
		if errs[k] != nil {
			return 0, fmt.Errorf("server: shard %d: %w", k, errs[k])
		}
		if epochs[k] > max {
			max = epochs[k]
		}
	}
	return max, nil
}

// Metrics samples every shard's registry on its writer loop (in parallel)
// and merges them: each metric appears once per shard with a `{shard="K"}`
// suffix and once as the plain-named sum across shards, plus a
// paxserve_shards count. After Close or Crash it returns the final snapshot
// frozen at teardown.
func (s *ShardedEngine) Metrics() (stats.Summary, error) {
	s.mu.Lock()
	final := s.final
	s.mu.Unlock()
	if final != nil {
		return final, nil
	}
	snaps := make([]stats.Summary, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for k := range s.shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			snaps[k], errs[k] = s.shards[k].eng.Snapshot()
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", k, err)
		}
	}
	return mergeSummaries(snaps), nil
}

// StatsText renders Metrics as `name value` lines — the sharded STATS reply.
func (s *ShardedEngine) StatsText() (string, error) {
	m, err := s.Metrics()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func mergeSummaries(snaps []stats.Summary) stats.Summary {
	merged := make(stats.Summary)
	seenQuantile := make(map[string]bool)
	for k, snap := range snaps {
		label := fmt.Sprintf("{shard=%q}", strconv.Itoa(k))
		for name, v := range snap {
			if strings.Contains(name, `{q="`) {
				// Histogram quantile line, e.g. name{q="p99"}: the shard tag
				// joins the existing label set instead of forming a second
				// brace group, and the plain name takes the max across shards
				// — the worst shard's tail — because quantiles do not sum.
				withShard := name[:len(name)-1] + `,shard=` + strconv.Quote(strconv.Itoa(k)) + `}`
				merged[withShard] = v
				if !seenQuantile[name] || v > merged[name] {
					merged[name] = v
				}
				seenQuantile[name] = true
				continue
			}
			merged[name+label] = v
			merged[name] += v
		}
	}
	merged["paxserve_shards"] = float64(len(snaps))
	return merged
}

// AggregateStats is the cross-shard rollup of the per-engine counters.
type AggregateStats struct {
	AckedWrites     uint64
	AckedOnApply    uint64
	Gets            uint64
	GroupCommits    uint64
	BatchMax        uint64 // largest single-shard batch
	Rejects         uint64
	ReadIndexHits   uint64
	ReadIndexMisses uint64
}

// AggregateStats sums the engine counters across shards (BatchMax is the
// max). Counters are atomic, so this is safe at any time.
func (s *ShardedEngine) AggregateStats() AggregateStats {
	var a AggregateStats
	for _, sh := range s.shards {
		st := sh.eng.Stats()
		a.AckedWrites += st.AckedWrites.Load()
		a.AckedOnApply += st.AckedOnApply.Load()
		a.Gets += st.Gets.Load()
		a.GroupCommits += st.GroupCommits.Load()
		a.Rejects += st.Rejects.Load()
		a.ReadIndexHits += st.ReadIndexHits.Load()
		a.ReadIndexMisses += st.ReadIndexMisses.Load()
		if b := st.BatchMax.Load(); b > a.BatchMax {
			a.BatchMax = b
		}
	}
	return a
}

// Health reports each shard's seal error, indexed by shard: nil for a shard
// that is serving, the wrapped ErrSealed durability failure for one that
// sealed fail-stop. A sealed shard takes down only its own keyspace — the
// router keeps serving the others — so callers use Health to decide whether
// "some errors" means degraded (a subset sealed) or down (all sealed).
func (s *ShardedEngine) Health() []error {
	errs := make([]error, len(s.shards))
	for k, sh := range s.shards {
		errs[k] = sh.eng.SealErr()
	}
	return errs
}

// Recoveries reports what opening each shard repaired, indexed by shard.
func (s *ShardedEngine) Recoveries() []pax.RecoveryInfo {
	recs := make([]pax.RecoveryInfo, len(s.shards))
	for k, sh := range s.shards {
		recs[k] = sh.pool.Recovery()
	}
	return recs
}

// DurableEpoch reports the highest committed epoch across shards.
func (s *ShardedEngine) DurableEpoch() uint64 {
	var max uint64
	for _, sh := range s.shards {
		if e := sh.pool.DurableEpoch(); e > max {
			max = e
		}
	}
	return max
}

// Close drains and seals every shard in parallel (each engine commits its
// remaining mutations plus the open epoch), freezes a final metrics
// snapshot, and closes the backing pools. Unlike Engine.Close it owns the
// pools, because it opened them. Every shard is closed regardless of
// individual failures; the first durability error (by shard index) is
// returned so a degraded shutdown is never reported clean.
func (s *ShardedEngine) Close() error {
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for k, sh := range s.shards {
		wg.Add(1)
		go func(k int, e *Engine) {
			defer wg.Done()
			errs[k] = e.Close()
		}(k, sh.eng)
	}
	wg.Wait()
	var firstErr error
	for k, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("server: shard %d: %w", k, err)
			break
		}
	}
	if err := s.teardown(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Crash stops every shard's writer loop without committing — the multi-
// device analogue of the machine dying — then closes the pools crash-like
// (no final persist; unacked mutations roll back on reopen).
func (s *ShardedEngine) Crash() error {
	var wg sync.WaitGroup
	for _, sh := range s.shards {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Crash()
		}(sh.eng)
	}
	wg.Wait()
	return s.teardown()
}

// teardown runs once: freeze the merged metrics (the loops are gone, so
// sampling the registries directly cannot race a mutator) and close pools.
func (s *ShardedEngine) teardown() error {
	s.closeOnce.Do(func() {
		snaps := make([]stats.Summary, len(s.shards))
		for k, sh := range s.shards {
			snaps[k] = sh.eng.reg.Snapshot()
		}
		s.mu.Lock()
		s.final = mergeSummaries(snaps)
		s.mu.Unlock()
		for k, sh := range s.shards {
			if err := sh.pool.Close(); err != nil && s.closeErr == nil {
				s.closeErr = fmt.Errorf("server: shard %d: %w", k, err)
			}
		}
	})
	return s.closeErr
}
