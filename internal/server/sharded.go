package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"pax"
	"pax/internal/epochlog"
	"pax/internal/stats"
)

// This file is the sharded serving layer: a router that partitions the
// keyspace across N independent (pool, engine) shards so N group commits
// proceed in parallel. Each shard is a separate pool file with its own
// writer goroutine, undo log, and simulated device — the paper's §6
// multi-device scaling, where every accelerator owns a vPM region and
// epochs commit independently. The §3.5 single-mutator rule holds per pool
// by construction: a key deterministically owns one shard, so per-key
// operations stay totally ordered (and read-your-writes) even though
// different keys commit concurrently. Durability ordering is per key, not
// cross-shard: two acked writes to different shards may land in either
// order after a crash, but every individually acked write is durable.
//
// Routing is slot-based (slotmap.go): a key hashes to one of NumSlots fixed
// slots and a published SlotMap assigns slots to shards, so the shard count
// can change live — Split/Rebalance (migrate.go) move individual slots while
// unaffected slots never stall. Each slot has a gate (RWMutex): requests
// take the read side around route-lookup + dispatch, migration takes the
// write side to fence a slot while its keys move.

// shard pairs one pool with the engine that is its only legal mutator.
type shard struct {
	pool *pax.Pool
	eng  *Engine
}

// ShardedEngine routes requests across N single-writer engines. All methods
// are safe for concurrent use. It implements the same Backend contract as
// Engine, so the TCP server works over either.
type ShardedEngine struct {
	// shards is the live shard slice, replaced wholesale (copy-on-write)
	// when Split grows the fleet. Loaded once per operation; the slice and
	// its elements are immutable once published.
	shards atomic.Pointer[[]shard]
	// route is the live slot→shard assignment, replaced wholesale per
	// cutover. Publication order matters: a new shards slice is stored
	// before any map referencing the new shard, so a reader that observes
	// the map always observes the shard too.
	route atomic.Pointer[SlotMap]
	// gates fence slots during migration: per-key requests hold the read
	// side across route-lookup + dispatch, so once migration holds the
	// write side no request can still be routing to the slot's old owner.
	gates [NumSlots]sync.RWMutex
	// slotOps counts per-key operations per slot — the load signal Split
	// uses to pick the hottest shard and divide its slots.
	slotOps [NumSlots]atomic.Uint64

	// Logf, when set (before serving starts), receives router-level events:
	// deferred cleanup failures, autopilot decisions. Default: dropped.
	Logf func(format string, args ...any)

	// migrateMu serializes Split/Rebalance/Merge (and the shard-slice growth
	// or shrink they do); routing never takes it.
	migrateMu sync.Mutex
	reshard   reshardCounters

	// autopilot is the policy loop when StartAutopilot is running (autopilot.go).
	// When set, the per-slot load signal is its tracker's windowed rate, not
	// the cumulative counters.
	autopilot atomic.Pointer[Autopilot]

	// mergeHook, when set (tests only), runs between Merge's stages; a
	// non-nil error aborts the merge at that stage, simulating a crash
	// window (merge.go).
	mergeHook func(stage mergeStage) error

	// Creation-time parameters, kept so Split can open new shard pools with
	// the same geometry and persist the map next to the same path.
	path    string
	opts    pax.Options
	accSlot int
	cfg     Config
	// persistMap is whether cutovers write the slot-map sidecar: file-backed
	// multi-shard layouts only. A bare single-shard file stays byte-for-byte
	// compatible with the unsharded daemon (and cannot grow — see Split);
	// in-memory engines have nothing to persist to.
	persistMap bool

	closeOnce sync.Once
	closeErr  error

	// events is the fleet-level lifecycle-event hub: per-engine events are
	// forwarded here (stamped with their shard index at forward time, so
	// relabeling across merges stays correct), and the router emits its own
	// split/merge/policy events directly. AttachBlackbox hangs the journal
	// off this hub's sink.
	events eventHub

	mu    sync.Mutex
	final stats.Summary // metrics frozen at teardown; guarded by mu
}

// reshardCounters are the router's own metrics (the engines know nothing of
// slots): published alongside the merged per-shard metrics.
type reshardCounters struct {
	splits          atomic.Uint64 // completed Split calls
	merges          atomic.Uint64 // completed Merge calls
	movedSlots      atomic.Uint64 // slot cutovers published
	movedKeys       atomic.Uint64 // keys copied to a new owner
	purgedKeys      atomic.Uint64 // misrouted keys removed at open (crash leftovers)
	cleanupFailures atomic.Uint64 // post-cutover source cleanups deferred to next open
}

// logf reports a router-level event to Logf when one is configured.
func (s *ShardedEngine) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// slotLoad is the per-slot load signal Split, Merge, and the shard pickers
// partition by: the autopilot tracker's windowed rate (fixed-point
// milli-ops/sec) when the policy loop is running — a slot that was hot an
// hour ago must not still look hot — else the cumulative since-open counter.
func (s *ShardedEngine) slotLoad(slot int) uint64 {
	if a := s.autopilot.Load(); a != nil {
		return uint64(a.tracker.rate(slot) * 1000)
	}
	return s.slotOps[slot].Load()
}

// ShardPath returns shard k's pool file path. A single-shard engine uses
// path itself — so 1-shard serving stays file-compatible with the unsharded
// daemon — and an in-memory engine (path "") has no files.
func ShardPath(path string, shards, k int) string {
	if path == "" || shards == 1 {
		return path
	}
	return fmt.Sprintf("%s.shard-%d", path, k)
}

// DiscoverShards inspects the files at path and reports how many shards a
// previous run left behind: 1 for a bare pool file, N for a contiguous
// <path>.shard-0..N-1 set, 0 for nothing. A gap in the shard sequence or a
// bare file alongside shard files is corruption worth refusing to guess at,
// and so is a slot map that references more shards than there are files —
// those slots' keys would have nowhere to live. A slot map referencing
// *fewer* shards is fine: a crash between Split creating a shard file and
// the first cutover publishing it leaves exactly that, and the extra shard
// simply owns zero slots until the next split adopts it.
func DiscoverShards(path string) (int, error) {
	if path == "" {
		return 0, nil
	}
	bare := false
	if _, err := os.Stat(path); err == nil {
		bare = true
	}
	matches, err := filepath.Glob(path + ".shard-*")
	if err != nil {
		return 0, err
	}
	if bare && len(matches) > 0 {
		return 0, fmt.Errorf("server: both %q and %d shard files exist; remove one layout", path, len(matches))
	}
	count := 0
	if bare {
		count = 1
	} else if len(matches) > 0 {
		seen := make(map[int]bool)
		for _, m := range matches {
			if strings.HasSuffix(m, ".tmp") {
				// Staging litter from a crash mid-Sync (pmem writes <file>.tmp
				// then renames). Open cleans it per shard; it is not a shard.
				continue
			}
			if strings.HasSuffix(m, epochlog.DirSuffix) {
				// A shard's delta-epoch-store segment directory
				// (<shard>.epochlog), not a shard of its own.
				continue
			}
			k, err := strconv.Atoi(strings.TrimPrefix(m, path+".shard-"))
			if err != nil {
				return 0, fmt.Errorf("server: unrecognized shard file %q", m)
			}
			seen[k] = true
			count++
		}
		for k := 0; k < count; k++ {
			if !seen[k] {
				return 0, fmt.Errorf("server: shard files are not contiguous: missing %s", ShardPath(path, count+1, k))
			}
		}
	}
	m, err := LoadSlotMap(path)
	if err != nil {
		return 0, err
	}
	if m != nil && m.Shards > count {
		return 0, fmt.Errorf("server: slot map references %d shards but only %d shard files exist", m.Shards, count)
	}
	return count, nil
}

// OpenSharded opens (creating or recovering as needed) shards pool files
// rooted at path and starts an engine per shard. Opening and recovery run
// concurrently across shards — recovery cost is paid once per shard, in
// parallel, not summed — and the first error wins: on any failure every
// already-opened shard is closed and the error is returned. opts sizes each
// shard individually (DataSize is per shard, not divided). With
// opts.Overwrite set, any existing files of either layout (and the slot-map
// sidecar) are removed first so a reformat never leaves stale higher-numbered
// shards behind.
//
// Routing state comes up in one of three ways: a persisted slot map is
// loaded and its routing reconciled (crash leftovers from an interrupted
// migration are purged — see openRoute); a fresh or overwritten layout gets
// the default round-robin map; and a pre-slot-map multi-shard layout is
// adopted in place, moving any key whose slot-map owner differs from its
// legacy FNV-mod-N owner before serving starts.
func OpenSharded(path string, shards int, opts pax.Options, slot int, cfg Config) (*ShardedEngine, error) {
	if shards <= 0 {
		return nil, fmt.Errorf("server: shard count %d must be positive", shards)
	}
	if shards > NumSlots {
		return nil, fmt.Errorf("server: shard count %d exceeds the %d-slot routing space", shards, NumSlots)
	}
	if opts.Overwrite && path != "" {
		if err := removeShardFiles(path); err != nil {
			return nil, err
		}
	}
	var persisted *SlotMap
	if path != "" && !opts.Overwrite {
		m, err := LoadSlotMap(path)
		if err != nil {
			return nil, err
		}
		if m != nil && m.Shards > shards {
			return nil, fmt.Errorf("server: slot map references %d shards, opening only %d", m.Shards, shards)
		}
		persisted = m
	}
	s := &ShardedEngine{path: path, opts: opts, accSlot: slot, cfg: cfg}
	s.persistMap = path != "" && shards > 1
	list := make([]shard, shards)
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sp := ShardPath(path, shards, k)
			var pool *pax.Pool
			var err error
			if opts.Overwrite {
				pool, err = pax.CreatePool(sp, opts)
			} else {
				pool, err = pax.MapPool(sp, opts)
			}
			if err != nil {
				fail(fmt.Errorf("server: shard %d: %w", k, err))
				return
			}
			eng, err := New(pool, slot, cfg)
			if err != nil {
				pool.Close()
				fail(fmt.Errorf("server: shard %d: %w", k, err))
				return
			}
			list[k] = shard{pool: pool, eng: eng}
		}(k)
	}
	wg.Wait()
	if firstErr != nil {
		for _, sh := range list {
			if sh.eng != nil {
				sh.eng.Close()
			}
			if sh.pool != nil {
				sh.pool.Close()
			}
		}
		return nil, firstErr
	}
	for _, sh := range list {
		s.forwardEvents(sh.eng)
	}
	s.shards.Store(&list)
	if err := s.openRoute(persisted, opts.Overwrite); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// forwardEvents installs the fleet hub as eng's event sink. The shard index
// is stamped at forward time — engines keep their slice position for life,
// but resolving late keeps the stamp correct for engines forwarded before
// their slice is published (open, addShard).
func (s *ShardedEngine) forwardEvents(eng *Engine) {
	eng.SetEventSink(func(ev Event) {
		ev.Shard = s.shardIndexOf(eng)
		s.events.publish(ev)
	})
}

// shardIndexOf resolves an engine's index in the live shard slice, -1 when
// it is not (yet, or no longer) published. O(shards), and lifecycle events
// are rare.
func (s *ShardedEngine) shardIndexOf(eng *Engine) int {
	if sp := s.shards.Load(); sp != nil {
		for i, sh := range *sp {
			if sh.eng == eng {
				return i
			}
		}
	}
	return -1
}

// Events returns the fleet's recent lifecycle events, oldest first: every
// shard's events plus the router's own split/merge/policy events. Safe on a
// sealed or closed fleet.
func (s *ShardedEngine) Events() EventsSnapshot {
	return EventsSnapshot{Events: s.events.snapshot()}
}

// SetEventSink forwards every subsequent fleet-level event to fn (nil
// clears). AttachBlackbox uses it to journal events persistently.
func (s *ShardedEngine) SetEventSink(fn func(Event)) { s.events.setSink(fn) }

// ShardPools returns the live shards' pools, in shard order. Test and
// benchmark harnesses use it to reach the fault-injection hooks on the
// backing devices; the pools stay owned by the engine.
func (s *ShardedEngine) ShardPools() []*pax.Pool {
	sp := s.shards.Load()
	if sp == nil {
		return nil
	}
	out := make([]*pax.Pool, len(*sp))
	for i, sh := range *sp {
		out[i] = sh.pool
	}
	return out
}

// openRoute installs the routing table at open time and reconciles the
// shards' contents with it. Three cases:
//
//  1. A persisted map exists: install it, then purge — every shard deletes
//     the keys the map assigns elsewhere. A crash during migration leaves
//     either orphan copies on the destination (cutover not published: the
//     source is still authoritative) or stale copies on the source (cutover
//     published, cleanup unfinished: the destination is authoritative);
//     owner-wins deletion erases both kinds, and because it runs before
//     serving starts it is idempotent across repeated crashes.
//  2. No map, fresh/overwritten or single-shard layout: install the default
//     map (persisting it for file-backed multi-shard layouts).
//  3. No map, existing multi-shard layout (pre-slot-map files): adopt — any
//     key whose default-map owner differs from the shard that holds it is
//     copied to its owner, deleted from the holder, and the map persisted
//     last. For power-of-two shard counts the default map reproduces legacy
//     FNV-mod-N routing exactly and nothing moves.
func (s *ShardedEngine) openRoute(persisted *SlotMap, fresh bool) error {
	shards := *s.shards.Load()
	n := len(shards)
	if persisted != nil {
		m := persisted.clone()
		if m.Shards < n {
			// Extra shard files beyond the map (interrupted Split): they own
			// zero slots; record the true fleet size so the next split may
			// reuse them.
			m.Shards = n
		}
		s.route.Store(m)
		return s.purgeMisrouted()
	}
	m := DefaultSlotMap(n)
	s.route.Store(m)
	if !s.persistMap {
		return nil
	}
	if !fresh && n > 1 {
		// Adoption: the files predate slot routing (MapPool on an existing
		// layout with no sidecar). Move misplaced keys before serving.
		if err := s.adoptLegacyLayout(); err != nil {
			return err
		}
	}
	return m.Save(s.path)
}

// purgeMisrouted deletes, on every shard, the keys the routing table assigns
// to a different shard. Runs at open, before serving.
func (s *ShardedEngine) purgeMisrouted() error {
	shards := *s.shards.Load()
	m := s.route.Load()
	for k := range shards {
		self := k
		stale := shards[k].eng.idx.collect(func(key []byte) bool {
			return int(m.Assign[SlotFor(key)]) != self
		})
		for _, e := range stale {
			if _, _, err := shards[k].eng.Delete(e.key); err != nil {
				return fmt.Errorf("server: shard %d: purging misrouted key: %w", k, err)
			}
			s.reshard.purgedKeys.Add(1)
		}
	}
	return nil
}

// adoptLegacyLayout moves every key from the shard the legacy FNV-mod-N
// router stored it on to the shard the slot map assigns. Copy-all then
// delete-all, each durable, with the map saved only after — so a crash at
// any point re-runs adoption on next open, and re-copying an already-moved
// key rewrites the same value (no writes happen before serving starts).
func (s *ShardedEngine) adoptLegacyLayout() error {
	shards := *s.shards.Load()
	m := s.route.Load()
	for k := range shards {
		self := k
		moving := shards[k].eng.idx.collect(func(key []byte) bool {
			return int(m.Assign[SlotFor(key)]) != self
		})
		if len(moving) == 0 {
			continue
		}
		for _, e := range moving {
			owner := int(m.Assign[SlotFor(e.key)])
			if _, err := shards[owner].eng.PutPolicy(e.key, e.value, AckApply); err != nil {
				return fmt.Errorf("server: adopting layout: shard %d: %w", owner, err)
			}
		}
		// One durable barrier per destination beats one commit per key.
		for owner := range shards {
			if owner == self {
				continue
			}
			if _, err := shards[owner].eng.Persist(); err != nil {
				return fmt.Errorf("server: adopting layout: shard %d: %w", owner, err)
			}
		}
		for _, e := range moving {
			if _, _, err := shards[self].eng.Delete(e.key); err != nil {
				return fmt.Errorf("server: adopting layout: shard %d: %w", self, err)
			}
		}
	}
	return nil
}

// removeShardFiles clears both layouts (bare file and shard files) plus the
// slot-map sidecar so an Overwrite reformat never leaves a stale layout for
// DiscoverShards to trip over.
func removeShardFiles(path string) error {
	matches, err := filepath.Glob(path + ".shard-*")
	if err != nil {
		return err
	}
	if _, err := os.Stat(path); err == nil {
		matches = append(matches, path)
	}
	matches = append(matches, SlotMapPath(path))
	for _, m := range matches {
		// Each pool file may have an epoch-log segment directory next to it
		// (which the glob also matches directly); a reformat must take it
		// too, or stale deltas would replay onto the fresh pool.
		if strings.HasSuffix(m, epochlog.DirSuffix) {
			if err := os.RemoveAll(m); err != nil {
				return fmt.Errorf("server: reformatting: %w", err)
			}
			continue
		}
		if err := os.RemoveAll(m + epochlog.DirSuffix); err != nil {
			return fmt.Errorf("server: reformatting: %w", err)
		}
		if err := os.Remove(m); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("server: reformatting: %w", err)
		}
	}
	return nil
}

// NumShards reports the current shard count (it grows under Split).
func (s *ShardedEngine) NumShards() int { return len(*s.shards.Load()) }

// MediaSize reports the per-shard pool media size in bytes (every shard is
// created with the same geometry).
func (s *ShardedEngine) MediaSize() int { return (*s.shards.Load())[0].pool.MediaSize() }

// EpochLogEnabled reports whether the shards persist through the
// log-structured delta epoch store rather than full-image publishes.
func (s *ShardedEngine) EpochLogEnabled() bool { return (*s.shards.Load())[0].pool.EpochLogEnabled() }

// Route returns a copy of the live slot→shard assignment.
func (s *ShardedEngine) Route() SlotMap { return *s.route.Load() }

// ShardFor reports which shard currently owns key: the key's slot (a pure
// function of the key bytes, stable forever) looked up in the live
// assignment. With an unchanged assignment the answer is stable across
// restarts — reopening the same shard files routes every key back to the
// pool that holds it; after a Split only keys in the moved slots answer
// differently.
func (s *ShardedEngine) ShardFor(key []byte) int {
	return int(s.route.Load().Assign[SlotFor(key)])
}

// engineForSlot resolves a slot to its owning engine. The route is loaded
// before the shard slice: new slices are published before any map that
// references them, so observing the map implies observing the shard.
func (s *ShardedEngine) engineForSlot(slot int) *Engine {
	m := s.route.Load()
	shards := *s.shards.Load()
	return shards[m.Assign[slot]].eng
}

// begin implements Backend: per-key operations route to the owning shard's
// queue (FIFO per shard, so a connection's same-key operations keep their
// wire order) under the slot's gate; persist and stats fan out across every
// shard and deliver one merged result; split runs the migration off the
// dispatch goroutine.
func (s *ShardedEngine) begin(req *request) error {
	switch req.op {
	case opGet, opPut, opDelete:
		slot := SlotFor(req.key)
		s.slotOps[slot].Add(1)
		g := &s.gates[slot]
		// The gate read side brackets route-lookup + dispatch: for writes
		// that is the enqueue (FIFO order then guarantees a later drain
		// barrier on the old owner sees them), for index reads the whole
		// lookup (so a read never lands on a shard whose slot already cut
		// over). Migration's write side therefore fences the slot exactly.
		g.RLock()
		err := s.engineForSlot(slot).begin(req)
		g.RUnlock()
		return err
	case opPersist:
		go func() {
			epoch, err := s.Persist()
			req.finish(result{epoch: epoch, err: err})
		}()
		return nil
	case opStats:
		go func() {
			text, err := s.StatsText()
			req.finish(result{text: text, err: err})
		}()
		return nil
	case opSplit:
		// Migration blocks on drain barriers and bulk copies — never on the
		// dispatch goroutine.
		go func() {
			rep, err := s.Split(req.shard)
			if err != nil {
				req.finish(result{err: err})
				return
			}
			buf, err := json.Marshal(rep)
			req.finish(result{value: buf, err: err})
		}()
		return nil
	case opMerge:
		go func() {
			rep, err := s.Merge(req.shard)
			if err != nil {
				req.finish(result{err: err})
				return
			}
			buf, err := json.Marshal(rep)
			req.finish(result{value: buf, err: err})
		}()
		return nil
	case opTrace:
		// Recorder snapshots never touch the writer loops (each recorder has
		// its own mutex), so this is answered inline — and keeps working with
		// shards sealed or crashed.
		buf, err := json.Marshal(s.Trace())
		req.finish(result{value: buf, err: err})
		return nil
	case opEvents:
		// Same inline contract as TRACE: the hub has its own mutex, so a
		// sealed fleet still serves the events that explain the seal.
		buf, err := json.Marshal(s.Events())
		req.finish(result{value: buf, err: err})
		return nil
	}
	return fmt.Errorf("server: unknown op %d", req.op)
}

// doKey runs one per-key request through begin (slot gate, route, shard
// queue) to completion, recycling the request struct on every path.
func (s *ShardedEngine) doKey(op opKind, key, value []byte, policy AckPolicy) result {
	req := newRequest(op, key, value)
	req.ackOnApply = policy == AckApply
	if err := s.begin(req); err != nil {
		req.release()
		return result{err: err}
	}
	res := <-req.done
	req.release()
	return res
}

// Trace merges every shard's flight recorder into one snapshot: records are
// stamped with their shard index and interleaved oldest-first by batch start
// time. Sequence numbers stay per-shard — (shard, seq) identifies a commit.
func (s *ShardedEngine) Trace() TraceSnapshot {
	shards := *s.shards.Load()
	out := TraceSnapshot{Shards: len(shards)}
	for k, sh := range shards {
		snap := sh.eng.Trace()
		if snap.SlowThresholdNS > out.SlowThresholdNS {
			out.SlowThresholdNS = snap.SlowThresholdNS
		}
		for i := range snap.Recent {
			snap.Recent[i].Shard = k
		}
		for i := range snap.Slow {
			snap.Slow[i].Shard = k
		}
		out.Recent = append(out.Recent, snap.Recent...)
		out.Slow = append(out.Slow, snap.Slow...)
	}
	byStart := func(recs []CommitRecord) func(i, j int) bool {
		return func(i, j int) bool { return recs[i].Start < recs[j].Start }
	}
	sort.SliceStable(out.Recent, byStart(out.Recent))
	sort.SliceStable(out.Slow, byStart(out.Slow))
	if a := s.autopilot.Load(); a != nil {
		out.Autopilot = a.last.Load()
	}
	return out
}

// Get routes to the key's shard and serves from that shard's read index —
// no queue, no waiting behind the shard's commit in flight (read-your-writes
// with respect to acked mutations, like Engine.Get).
func (s *ShardedEngine) Get(key []byte) ([]byte, bool, error) {
	res := s.doKey(opGet, key, nil, AckDurable)
	return res.value, res.found, res.err
}

// Put routes to the key's shard and blocks until that shard's group commit
// makes the write durable.
func (s *ShardedEngine) Put(key, value []byte) (uint64, error) {
	res := s.doKey(opPut, key, value, AckDurable)
	return res.epoch, res.err
}

// PutPolicy routes to the key's shard under an explicit ack policy (see
// Engine.PutPolicy); the policy is per request, so one router serves
// durable and apply-acked writers side by side.
func (s *ShardedEngine) PutPolicy(key, value []byte, policy AckPolicy) (uint64, error) {
	res := s.doKey(opPut, key, value, policy)
	return res.epoch, res.err
}

// Delete routes to the key's shard, blocking like Put.
func (s *ShardedEngine) Delete(key []byte) (bool, uint64, error) {
	res := s.doKey(opDelete, key, nil, AckDurable)
	return res.found, res.epoch, res.err
}

// DeletePolicy routes to the key's shard under an explicit ack policy.
func (s *ShardedEngine) DeletePolicy(key []byte, policy AckPolicy) (bool, uint64, error) {
	res := s.doKey(opDelete, key, nil, policy)
	return res.found, res.epoch, res.err
}

// Persist forces a group commit on every shard in parallel and joins. The
// returned epoch is the maximum shard epoch — shards number their epochs
// independently, so it is a watermark, not a global ordering point.
func (s *ShardedEngine) Persist() (uint64, error) {
	shards := *s.shards.Load()
	epochs := make([]uint64, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k := range shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			epochs[k], errs[k] = shards[k].eng.Persist()
		}(k)
	}
	wg.Wait()
	var max uint64
	for k := range shards {
		if errs[k] != nil {
			return 0, fmt.Errorf("server: shard %d: %w", k, errs[k])
		}
		if epochs[k] > max {
			max = epochs[k]
		}
	}
	return max, nil
}

// Metrics samples every shard's registry on its writer loop (in parallel)
// and merges them: each metric appears once per shard with a `{shard="K"}`
// suffix and once as the plain-named sum across shards, plus a
// paxserve_shards count and the router's own slot/reshard gauges. After
// Close or Crash it returns the final snapshot frozen at teardown.
func (s *ShardedEngine) Metrics() (stats.Summary, error) {
	s.mu.Lock()
	final := s.final
	s.mu.Unlock()
	if final != nil {
		return final, nil
	}
	shards := *s.shards.Load()
	snaps := make([]stats.Summary, len(shards))
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k := range shards {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			snaps[k], errs[k] = shards[k].eng.Snapshot()
		}(k)
	}
	wg.Wait()
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("server: shard %d: %w", k, err)
		}
	}
	m := mergeSummaries(snaps)
	s.addRouterMetrics(m)
	return m, nil
}

// addRouterMetrics publishes the routing layer's own state into a merged
// summary: the live assignment's sequence number and the reshard counters.
func (s *ShardedEngine) addRouterMetrics(m stats.Summary) {
	m["paxserve_slotmap_seq"] = float64(s.route.Load().Seq)
	m["paxserve_reshard_splits"] = float64(s.reshard.splits.Load())
	m["paxserve_reshard_merges"] = float64(s.reshard.merges.Load())
	m["paxserve_reshard_moved_slots"] = float64(s.reshard.movedSlots.Load())
	m["paxserve_reshard_moved_keys"] = float64(s.reshard.movedKeys.Load())
	m["paxserve_reshard_purged_keys"] = float64(s.reshard.purgedKeys.Load())
	m["paxserve_reshard_cleanup_failures"] = float64(s.reshard.cleanupFailures.Load())
	if a := s.autopilot.Load(); a != nil {
		a.publish(m)
	}
}

// StatsText renders Metrics as `name value` lines — the sharded STATS reply.
func (s *ShardedEngine) StatsText() (string, error) {
	m, err := s.Metrics()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	if _, err := m.WriteTo(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}

func mergeSummaries(snaps []stats.Summary) stats.Summary {
	merged := make(stats.Summary)
	seenQuantile := make(map[string]bool)
	for k, snap := range snaps {
		label := fmt.Sprintf("{shard=%q}", strconv.Itoa(k))
		for name, v := range snap {
			if strings.Contains(name, `{q="`) {
				// Histogram quantile line, e.g. name{q="p99"}: the shard tag
				// joins the existing label set instead of forming a second
				// brace group, and the plain name takes the max across shards
				// — the worst shard's tail — because quantiles do not sum.
				withShard := name[:len(name)-1] + `,shard=` + strconv.Quote(strconv.Itoa(k)) + `}`
				merged[withShard] = v
				if !seenQuantile[name] || v > merged[name] {
					merged[name] = v
				}
				seenQuantile[name] = true
				continue
			}
			merged[name+label] = v
			merged[name] += v
		}
	}
	merged["paxserve_shards"] = float64(len(snaps))
	return merged
}

// AggregateStats is the cross-shard rollup of the per-engine counters.
type AggregateStats struct {
	AckedWrites     uint64
	AckedOnApply    uint64
	Gets            uint64
	GroupCommits    uint64
	BatchMax        uint64 // largest single-shard batch
	Rejects         uint64
	ReadIndexHits   uint64
	ReadIndexMisses uint64
}

// AggregateStats sums the engine counters across shards (BatchMax is the
// max). Counters are atomic, so this is safe at any time.
func (s *ShardedEngine) AggregateStats() AggregateStats {
	var a AggregateStats
	for _, sh := range *s.shards.Load() {
		st := sh.eng.Stats()
		a.AckedWrites += st.AckedWrites.Load()
		a.AckedOnApply += st.AckedOnApply.Load()
		a.Gets += st.Gets.Load()
		a.GroupCommits += st.GroupCommits.Load()
		a.Rejects += st.Rejects.Load()
		a.ReadIndexHits += st.ReadIndexHits.Load()
		a.ReadIndexMisses += st.ReadIndexMisses.Load()
		if b := st.BatchMax.Load(); b > a.BatchMax {
			a.BatchMax = b
		}
	}
	return a
}

// ShardAckedWrites samples each shard's acked-writes counter (durable +
// on-apply acks), indexed by shard — the imbalance signal the loadgen
// reports as max/mean. Counters are atomic, so this is safe under traffic.
func (s *ShardedEngine) ShardAckedWrites() []uint64 {
	shards := *s.shards.Load()
	out := make([]uint64, len(shards))
	for k, sh := range shards {
		st := sh.eng.Stats()
		out[k] = st.AckedWrites.Load() + st.AckedOnApply.Load()
	}
	return out
}

// Health reports each shard's seal error, indexed by shard: nil for a shard
// that is serving, the wrapped ErrSealed durability failure for one that
// sealed fail-stop. A sealed shard takes down only its own keyspace — the
// router keeps serving the others — so callers use Health to decide whether
// "some errors" means degraded (a subset sealed) or down (all sealed).
func (s *ShardedEngine) Health() []error {
	shards := *s.shards.Load()
	errs := make([]error, len(shards))
	for k, sh := range shards {
		errs[k] = sh.eng.SealErr()
	}
	return errs
}

// Recoveries reports what opening each shard repaired, indexed by shard.
func (s *ShardedEngine) Recoveries() []pax.RecoveryInfo {
	shards := *s.shards.Load()
	recs := make([]pax.RecoveryInfo, len(shards))
	for k, sh := range shards {
		recs[k] = sh.pool.Recovery()
	}
	return recs
}

// DurableEpoch reports the highest committed epoch across shards.
func (s *ShardedEngine) DurableEpoch() uint64 {
	var max uint64
	for _, sh := range *s.shards.Load() {
		if e := sh.pool.DurableEpoch(); e > max {
			max = e
		}
	}
	return max
}

// Close drains and seals every shard in parallel (each engine commits its
// remaining mutations plus the open epoch), freezes a final metrics
// snapshot, and closes the backing pools. Unlike Engine.Close it owns the
// pools, because it opened them. Every shard is closed regardless of
// individual failures; the first durability error (by shard index) is
// returned so a degraded shutdown is never reported clean.
func (s *ShardedEngine) Close() error {
	s.stopAutopilot()
	shards := *s.shards.Load()
	errs := make([]error, len(shards))
	var wg sync.WaitGroup
	for k, sh := range shards {
		wg.Add(1)
		go func(k int, e *Engine) {
			defer wg.Done()
			errs[k] = e.Close()
		}(k, sh.eng)
	}
	wg.Wait()
	var firstErr error
	for k, err := range errs {
		if err != nil {
			firstErr = fmt.Errorf("server: shard %d: %w", k, err)
			break
		}
	}
	if err := s.teardown(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Crash stops every shard's writer loop without committing — the multi-
// device analogue of the machine dying — then closes the pools crash-like
// (no final persist; unacked mutations roll back on reopen).
func (s *ShardedEngine) Crash() error {
	s.stopAutopilot()
	var wg sync.WaitGroup
	for _, sh := range *s.shards.Load() {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.Crash()
		}(sh.eng)
	}
	wg.Wait()
	return s.teardown()
}

// teardown runs once: freeze the merged metrics (the loops are gone, so
// sampling the registries directly cannot race a mutator) and close pools.
func (s *ShardedEngine) teardown() error {
	s.closeOnce.Do(func() {
		shards := *s.shards.Load()
		snaps := make([]stats.Summary, len(shards))
		for k, sh := range shards {
			snaps[k] = sh.eng.reg.Snapshot()
		}
		final := mergeSummaries(snaps)
		s.addRouterMetrics(final)
		s.mu.Lock()
		s.final = final
		s.mu.Unlock()
		for k, sh := range shards {
			if err := sh.pool.Close(); err != nil && s.closeErr == nil {
				s.closeErr = fmt.Errorf("server: shard %d: %w", k, err)
			}
		}
	})
	return s.closeErr
}
