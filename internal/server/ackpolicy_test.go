package server

import (
	"net"
	"testing"
	"time"

	"pax/internal/wire"
)

// startTCPWith is startTCP with an engine config and a server default ack
// policy — the harness for the wire-level policy tests.
func startTCPWith(t *testing.T, cfg Config, policy AckPolicy) (*Engine, string) {
	t.Helper()
	pool, eng := newTestEngine(t, "", cfg)
	t.Cleanup(func() { pool.Close() })
	srv := NewServer(eng)
	srv.DefaultAckPolicy = policy
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return eng, lis.Addr().String()
}

// TestTCPAckPolicyFlags drives every wire-flag × server-default combination
// and checks which ack path each write took: the per-request flag always
// wins, and a flagless request — the old-client encoding — takes the
// server's default.
func TestTCPAckPolicyFlags(t *testing.T) {
	cfg := Config{MaxBatch: 4, MaxDelay: time.Millisecond}
	for _, tc := range []struct {
		name       string
		serverPol  AckPolicy
		flags      byte
		wantApply  uint64 // expected AckedOnApply delta for one PUT
		wantDurble uint64 // expected AckedWrites delta for one PUT
	}{
		{"default server, no flag (old client)", AckDurable, wire.FlagAckDefault, 0, 1},
		{"default server, explicit durable", AckDurable, wire.FlagAckDurable, 0, 1},
		{"default server, explicit apply", AckDurable, wire.FlagAckApply, 1, 0},
		{"apply-default server, no flag", AckApply, wire.FlagAckDefault, 1, 0},
		{"apply-default server, explicit durable", AckApply, wire.FlagAckDurable, 0, 1},
		{"apply-default server, explicit apply", AckApply, wire.FlagAckApply, 1, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			eng, addr := startTCPWith(t, cfg, tc.serverPol)
			cl, err := wire.Dial(addr)
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			if _, err := cl.PutFlags([]byte("k"), []byte("v"), tc.flags); err != nil {
				t.Fatalf("put: %v", err)
			}
			// An apply-acked PUT returns before its commit; the counters are
			// bumped at apply either way, so they are stable here.
			if got := eng.Stats().AckedOnApply.Load(); got != tc.wantApply {
				t.Fatalf("acked-on-apply = %d, want %d", got, tc.wantApply)
			}
			// The durable ack (and its counter) lands by the time the client
			// response arrives only on the durable path; wait out the commit
			// for the apply path before asserting it stayed zero.
			if tc.wantDurble == 0 {
				waitForCommits(t, eng, 1)
			}
			if got := eng.Stats().AckedWrites.Load(); got != tc.wantDurble {
				t.Fatalf("acked-durable = %d, want %d", got, tc.wantDurble)
			}
			// Read-your-writes holds under both policies.
			if v, ok, err := cl.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
				t.Fatalf("get: %q ok=%v err=%v", v, ok, err)
			}
		})
	}
}

// waitForCommits blocks until the engine has taken at least n group commits.
func waitForCommits(t *testing.T, eng *Engine, n uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().GroupCommits.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("engine never reached %d group commits", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTCPAckApplyDelete: the flags byte works on DELETE and PERSIST too, and
// an apply-acked DELETE still reports prior presence.
func TestTCPAckApplyDelete(t *testing.T) {
	eng, addr := startTCPWith(t, Config{MaxBatch: 4, MaxDelay: time.Millisecond}, AckDurable)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	found, _, err := cl.DeleteFlags([]byte("k"), wire.FlagAckApply)
	if err != nil || !found {
		t.Fatalf("apply-acked delete: found=%v err=%v", found, err)
	}
	if _, ok, err := cl.Get([]byte("k")); err != nil || ok {
		t.Fatalf("get after apply-acked delete: ok=%v err=%v", ok, err)
	}
	if _, err := cl.PersistFlags(wire.FlagAckApply); err != nil {
		t.Fatalf("apply-acked persist: %v", err)
	}
	waitForCommits(t, eng, 2) // the delete's commit and the forced one
}
