package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pax/internal/wire"
)

// shardFilesOnDisk counts real shard pool files at path (excluding staging
// litter, epoch-log directories, and the slot-map sidecar).
func shardFilesOnDisk(t *testing.T, path string) int {
	t.Helper()
	matches, err := filepath.Glob(path + ".shard-*")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, m := range matches {
		if strings.HasSuffix(m, ".tmp") || strings.HasSuffix(m, ".epochlog") {
			continue
		}
		n++
	}
	return n
}

// plantDirect writes keys straight onto their owning shard engines,
// bypassing the router — so the per-slot op counters stay at zero, exactly
// like a fleet that was just reopened.
func plantDirect(t *testing.T, eng *ShardedEngine, keys int) []string {
	t.Helper()
	shards := *eng.shards.Load()
	out := make([]string, 0, keys)
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("cold-%04d", i)
		k := eng.ShardFor([]byte(key))
		if _, err := shards[k].eng.PutPolicy([]byte(key), []byte(key), AckApply); err != nil {
			t.Fatal(err)
		}
		out = append(out, key)
	}
	if _, err := eng.Persist(); err != nil {
		t.Fatal(err)
	}
	return out
}

func verifyKeys(t *testing.T, eng *ShardedEngine, keys []string) {
	t.Helper()
	lost := 0
	for _, key := range keys {
		v, ok, err := eng.Get([]byte(key))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || string(v) != key {
			lost++
		}
	}
	if lost > 0 {
		t.Fatalf("%d of %d keys lost", lost, len(keys))
	}
}

// Regression for the greedy-partition bug: with untouched per-slot counters
// (all zero), stayLoad <= moveLoad holds on every iteration and the old code
// moved zero slots — creating and leaking the destination shard while still
// counting a "split". A zero-load split must fall back to an even halving:
// ⌈N/2⌉ slots move, and no shard file is leaked as a zero-slot orphan.
func TestSplitZeroCountersMovesHalf(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()

	keys := plantDirect(t, eng, 200)

	route := eng.Route()
	owned := route.slotsOf(0)
	want := (len(owned) + 1) / 2

	rep, err := eng.Split(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MovedSlots) == 0 {
		t.Fatalf("zero-counter split moved no slots (leaked shard %d): %+v", rep.Dest, rep)
	}
	if len(rep.MovedSlots) != want {
		t.Fatalf("zero-counter split moved %d slots, want even halving %d of %d", len(rep.MovedSlots), want, len(owned))
	}
	after := eng.Route()
	if got := len(after.slotsOf(rep.Dest)); got != want {
		t.Fatalf("dest owns %d slots, want %d", got, want)
	}
	if files := shardFilesOnDisk(t, pool); files != rep.Shards {
		t.Fatalf("%d shard files on disk, %d shards published — a file leaked", files, rep.Shards)
	}
	verifyKeys(t, eng, keys)
}

// A deep ackq backlog models minutes of media time; Crash must not sleep it
// out. Every commit in the backlog really persisted, so releasing the acks
// immediately on shutdown is correct — the acker's modeled wait has to abort
// on the stop channel.
func TestCrashInterruptsAckerBacklog(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch:           1,
		MaxDelay:           50 * time.Microsecond,
		CommitLatency:      300 * time.Millisecond,
		MaxInflightCommits: 1,
	})
	defer pool.Close()

	// Ack-on-apply writes return immediately but each lands in its own
	// commit; the modeled media would serialize the backlog at 300ms per
	// epoch — 2.4s for these 8.
	for i := 0; i < 8; i++ {
		if _, err := eng.PutPolicy([]byte(fmt.Sprintf("k%d", i)), []byte("v"), AckApply); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond) // let the pipeline issue some commits
	start := time.Now()
	eng.Crash()
	if d := time.Since(start); d > 1500*time.Millisecond {
		t.Fatalf("Crash took %v; the acker slept out the modeled backlog", d)
	}
}

func TestMergeDrainsAndRetiresTopShard(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 3, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})

	keys := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("m-%04d", i)
		if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}
	route := eng.Route()
	victimSlots := len(route.slotsOf(2))

	rep, err := eng.Merge(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Victim != 2 || rep.Retired != 2 || rep.Shards != 2 {
		t.Fatalf("unexpected report %+v", rep)
	}
	if rep.MovedSlots != victimSlots {
		t.Fatalf("moved %d slots, victim owned %d", rep.MovedSlots, victimSlots)
	}
	if eng.NumShards() != 2 {
		t.Fatalf("fleet is %d shards, want 2", eng.NumShards())
	}
	after := eng.Route()
	if after.Shards != 2 {
		t.Fatalf("published map counts %d shards, want 2", after.Shards)
	}
	if files := shardFilesOnDisk(t, pool); files != 2 {
		t.Fatalf("%d shard files on disk, want 2 (retired file not removed)", files)
	}
	verifyKeys(t, eng, keys)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// The shrunk layout must reopen cleanly and still hold every key.
	n, err := DiscoverShards(pool)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("DiscoverShards found %d, want 2", n)
	}
	re := newShardedDelta(t, pool, 2, Config{})
	defer re.Close()
	verifyKeys(t, re, keys)
}

// Merging a victim that is not the highest-numbered shard must still retire
// the top file (the only one removable while the set stays contiguous): the
// victim drains to the coldest survivor, then the top shard's slots relocate
// onto the emptied victim index.
func TestMergeVictimNotTop(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 3, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()

	keys := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("vnt-%04d", i)
		if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}

	rep, err := eng.Merge(0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Victim != 0 || rep.Dest != 1 || rep.Retired != 2 || rep.Shards != 2 {
		t.Fatalf("unexpected report %+v", rep)
	}
	route := eng.Route()
	for slot, owner := range route.Assign {
		if int(owner) >= 2 {
			t.Fatalf("slot %d still routed to retired shard %d", slot, owner)
		}
	}
	if files := shardFilesOnDisk(t, pool); files != 2 {
		t.Fatalf("%d shard files on disk, want 2", files)
	}
	verifyKeys(t, eng, keys)
}

func TestMergeAutoPicksColdest(t *testing.T) {
	eng := newShardedDelta(t, "", 3, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()

	// Drive traffic only at keys shard 1 does NOT own, so its cumulative
	// per-slot load stays zero and auto-pick must choose it.
	var keys []string
	for i := 0; len(keys) < 150; i++ {
		key := fmt.Sprintf("auto-%04d", i)
		if eng.ShardFor([]byte(key)) == 1 {
			continue
		}
		if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}

	rep, err := eng.Merge(-1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Victim != 1 {
		t.Fatalf("auto-pick chose shard %d, want coldest shard 1 (report %+v)", rep.Victim, rep)
	}
	if eng.NumShards() != 2 {
		t.Fatalf("fleet is %d shards, want 2", eng.NumShards())
	}
	verifyKeys(t, eng, keys)
}

func TestMergeRefusesBelowTwoFileBacked(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 2, Config{})
	defer eng.Close()
	if _, err := eng.Merge(-1); err == nil {
		t.Fatal("merging a 2-shard file-backed fleet must refuse (shard-0 files cannot become the bare layout)")
	}
}

// The merge crash contract: a crash at every stage reopens with every acked
// write intact, and the retired shard is either fully gone or a zero-slot
// leftover the next Split adopts.
func TestMergeCrashStages(t *testing.T) {
	errBoom := errors.New("simulated crash window")

	open := func(t *testing.T, pool string, shards int) (*ShardedEngine, []string) {
		eng := newShardedDelta(t, pool, shards, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
		keys := make([]string, 0, 240)
		for i := 0; i < 240; i++ {
			key := fmt.Sprintf("crash-%04d", i)
			if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, key)
		}
		return eng, keys
	}

	t.Run("mid-cutover", func(t *testing.T) {
		pool := filepath.Join(t.TempDir(), "kv.pool")
		eng, keys := open(t, pool, 3)
		// A merge drains the victim slot by slot through the ordinary
		// cutover; crashing mid-drain leaves some slots moved and the map
		// still counting 3 shards. Reproduce that state exactly: cut half of
		// shard 2's slots over, then die.
		route := eng.Route()
		assign := make([]int, NumSlots)
		for slot, owner := range route.Assign {
			assign[slot] = int(owner)
		}
		victim := route.slotsOf(2)
		for _, slot := range victim[:len(victim)/2] {
			assign[slot] = 0
		}
		if err := eng.Rebalance(assign); err != nil {
			t.Fatal(err)
		}
		eng.Crash()

		n, err := DiscoverShards(pool)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("DiscoverShards found %d, want 3", n)
		}
		re := newShardedDelta(t, pool, n, Config{})
		defer re.Close()
		verifyKeys(t, re, keys)
	})

	t.Run("drained-before-publish", func(t *testing.T) {
		pool := filepath.Join(t.TempDir(), "kv.pool")
		eng, keys := open(t, pool, 3)
		eng.mergeHook = func(stage mergeStage) error {
			if stage == mergeStageDrained {
				return errBoom
			}
			return nil
		}
		if _, err := eng.Merge(2); !errors.Is(err, errBoom) {
			t.Fatalf("merge returned %v, want the injected crash", err)
		}
		eng.Crash()

		// All slots left shard 2 but the shrink never published: reopen
		// finds 3 files, shard 2 owns zero slots, and the next Split adopts
		// it instead of creating a fourth shard.
		n, err := DiscoverShards(pool)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("DiscoverShards found %d, want 3", n)
		}
		re := newShardedDelta(t, pool, n, Config{})
		defer re.Close()
		verifyKeys(t, re, keys)
		route := re.Route()
		if got := len(route.slotsOf(2)); got != 0 {
			t.Fatalf("shard 2 owns %d slots after reopen, want 0", got)
		}
		rep, err := re.Split(0)
		if err != nil {
			t.Fatal(err)
		}
		if rep.NewShard || rep.Dest != 2 {
			t.Fatalf("split did not adopt the leftover shard: %+v", rep)
		}
		verifyKeys(t, re, keys)
	})

	t.Run("published-before-removal", func(t *testing.T) {
		pool := filepath.Join(t.TempDir(), "kv.pool")
		eng, keys := open(t, pool, 3)
		eng.mergeHook = func(stage mergeStage) error {
			if stage == mergeStagePublished {
				return errBoom
			}
			return nil
		}
		if _, err := eng.Merge(2); !errors.Is(err, errBoom) {
			t.Fatalf("merge returned %v, want the injected crash", err)
		}
		eng.Crash()

		// The shrunk map published but the file survived: a map counting
		// fewer shards than there are files is the legal adoptable-leftover
		// state, and a clean merge afterwards converges it fully.
		n, err := DiscoverShards(pool)
		if err != nil {
			t.Fatal(err)
		}
		if n != 3 {
			t.Fatalf("DiscoverShards found %d files, want 3 (file removal never ran)", n)
		}
		re := newShardedDelta(t, pool, n, Config{})
		verifyKeys(t, re, keys)
		rep, err := re.Merge(2)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Shards != 2 {
			t.Fatalf("converging merge left %d shards, want 2", rep.Shards)
		}
		verifyKeys(t, re, keys)
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		if files := shardFilesOnDisk(t, pool); files != 2 {
			t.Fatalf("%d shard files on disk after converging merge, want 2", files)
		}
		n, err = DiscoverShards(pool)
		if err != nil {
			t.Fatal(err)
		}
		re2 := newShardedDelta(t, pool, n, Config{})
		defer re2.Close()
		verifyKeys(t, re2, keys)
	})
}

func TestMergeOverTCP(t *testing.T) {
	eng := newShardedDelta(t, "", 3, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	srv := NewServer(eng)
	srv.Logf = t.Logf
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		srv.Shutdown()
		eng.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})

	cl, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("tcp-%03d", i))
		if _, err := cl.Put(key, key); err != nil {
			t.Fatal(err)
		}
	}
	buf, err := cl.Merge(-1)
	if err != nil {
		t.Fatal(err)
	}
	var rep MergeReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("merge reply %q: %v", buf, err)
	}
	if rep.Shards != 2 {
		t.Fatalf("merge over TCP left %d shards, want 2: %+v", rep.Shards, rep)
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("tcp-%03d", i))
		v, ok, err := cl.Get(key)
		if err != nil || !ok || string(v) != string(key) {
			t.Fatalf("get %s after merge: %q ok=%v err=%v", key, v, ok, err)
		}
	}
}
