package server

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pax/internal/wire"
)

// TestGetServedDuringCommitInFlight is the tentpole claim: a commit in
// flight (Persist + the modeled media latency) no longer blanks out reads.
// The writer sits in a 400ms commit while GETs complete against the index.
func TestGetServedDuringCommitInFlight(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 1, MaxDelay: time.Millisecond, CommitLatency: 400 * time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	// Seed a key whose commit is already over.
	if _, err := eng.Put([]byte("warm"), []byte("v0")); err != nil {
		t.Fatal(err)
	}

	putDone := make(chan struct{})
	go func() {
		defer close(putDone)
		if _, err := eng.Put([]byte("hot"), []byte("v1")); err != nil {
			t.Errorf("put: %v", err)
		}
	}()

	// Wait until the write is applied (visible in the index) — which happens
	// before its commit finishes, so the ack is still at least ~400ms away.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, err := eng.Get([]byte("hot")); err != nil {
			t.Fatal(err)
		} else if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("applied write never became visible")
		}
		time.Sleep(time.Millisecond)
	}

	// The commit is now in flight. Reads must keep completing.
	const reads = 200
	start := time.Now()
	for i := 0; i < reads; i++ {
		if v, ok, err := eng.Get([]byte("warm")); err != nil || !ok || string(v) != "v0" {
			t.Fatalf("get during commit: %q %v %v", v, ok, err)
		}
	}
	elapsed := time.Since(start)
	select {
	case <-putDone:
		t.Fatalf("commit finished before the reads ran — test raced, raise CommitLatency")
	default:
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("%d reads took %v during a commit; reads are stalling behind the writer", reads, elapsed)
	}
	<-putDone
	if hits := eng.Stats().ReadIndexHits.Load(); hits < reads {
		t.Fatalf("read index served %d hits, want >= %d", hits, reads)
	}
}

// TestReadYourWritesAfterAck pins the consistency contract: once a mutation
// is acked, every subsequent Get observes it — and the applied-but-unacked
// window (reads may see a write whose commit is still in flight) behaves as
// documented.
func TestReadYourWritesAfterAck(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	const clients = 8
	const ops = 50
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := []byte(fmt.Sprintf("c%d-k%03d", c, i))
				val := []byte(fmt.Sprintf("v%d-%d", c, i))
				if _, err := eng.Put(key, val); err != nil {
					t.Errorf("put: %v", err)
					return
				}
				if v, ok, err := eng.Get(key); err != nil || !ok || string(v) != string(val) {
					t.Errorf("read-your-write %s: got %q ok=%v err=%v", key, v, ok, err)
					return
				}
				if i%10 == 9 {
					if _, _, err := eng.Delete(key); err != nil {
						t.Errorf("delete: %v", err)
						return
					}
					if _, ok, err := eng.Get(key); err != nil || ok {
						t.Errorf("read-your-delete %s: still present (err=%v)", key, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestGetObservesAppliedBeforeDurable documents (and pins) the weaker half
// of the contract: a read may observe an applied write whose group commit is
// still in flight — the same window queued reads always had.
func TestGetObservesAppliedBeforeDurable(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 1, MaxDelay: time.Millisecond, CommitLatency: 300 * time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	putDone := make(chan struct{})
	go func() {
		defer close(putDone)
		eng.Put([]byte("k"), []byte("v"))
	}()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, _ := eng.Get([]byte("k")); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("write never became visible")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-putDone:
		t.Log("commit already finished; the pre-durable window was not observed this run")
	default:
		// The expected case: visible while the ack is still pending.
	}
	<-putDone
}

// TestCrashRebuildNeverServesRolledBackValue crashes a sharded engine under
// concurrent write load, reopens it, and checks the index rebuild per shard:
// every acked write is served, no rolled-back (unacked) write is, and the
// rebuilt-entry counters account for exactly the recovered keys.
func TestCrashRebuildNeverServesRolledBackValue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rebuild.pool")
	const shards = 3
	eng, err := OpenSharded(path, shards, smallOpts(), 0, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 12
	type oplog struct {
		acked, errored []string
	}
	logs := make([]oplog, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; op++ {
				key := fmt.Sprintf("c%02d-op%04d", c, op)
				_, err := eng.Put([]byte(key), []byte("val-"+key))
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBusy) {
						t.Errorf("client %d: unexpected error %v", c, err)
					}
					logs[c].errored = append(logs[c].errored, key)
					return
				}
				logs[c].acked = append(logs[c].acked, key)
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond)
	if err := eng.Crash(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	eng2, err := OpenSharded(path, shards, smallOpts(), 0, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()

	var totalAcked int
	for c := range logs {
		totalAcked += len(logs[c].acked)
		for _, key := range logs[c].acked {
			v, ok, err := eng2.Get([]byte(key))
			if err != nil || !ok {
				t.Fatalf("acked write %s not served after rebuild (ok=%v err=%v)", key, ok, err)
			}
			if string(v) != "val-"+key {
				t.Fatalf("acked write %s served with value %q after rebuild", key, v)
			}
		}
		for _, key := range logs[c].errored {
			if _, ok, err := eng2.Get([]byte(key)); err != nil {
				t.Fatal(err)
			} else if ok {
				t.Fatalf("rolled-back write %s is served by the rebuilt index", key)
			}
		}
	}
	if totalAcked == 0 {
		t.Fatal("test crashed before any write was acked; raise the sleep")
	}
	// The rebuilt counters must account for exactly the recovered keys.
	m, err := eng2.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := int(m["paxserve_read_index_rebuilt"]); got != totalAcked {
		t.Fatalf("rebuilt %d index entries across shards, want the %d acked keys", got, totalAcked)
	}
	t.Logf("crash after %d acked writes across %d shards; rebuild indexed all of them and none of the %d rolled back",
		totalAcked, shards, func() (n int) {
			for c := range logs {
				n += len(logs[c].errored)
			}
			return
		}())
}

// TestCrashNotStalledByFullQueue is the Close/Crash stall regression test:
// with the queue full and writers parked in the contended enqueue path,
// Crash must not wait out their EnqueueTimeout (begin used to hold the
// engine's read lock across the whole wait, blocking markClosed).
func TestCrashNotStalledByFullQueue(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 1, MaxDelay: time.Millisecond,
		QueueDepth: 1, EnqueueTimeout: 30 * time.Second,
		CommitLatency: 100 * time.Millisecond,
	})
	defer pool.Close()

	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := eng.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
			if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBusy) {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	time.Sleep(150 * time.Millisecond) // let the queue fill and senders park
	start := time.Now()
	eng.Crash()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Crash took %v behind a full queue; the stall is back", d)
	}
	wg.Wait() // every parked writer must have been failed out
}

// TestTCPGetsNotSerializedBehindCommit drives the contract end to end: a
// GET on one connection completes while another connection's PUT commit is
// in flight on the same shard.
func TestTCPGetsNotSerializedBehindCommit(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 1, MaxDelay: time.Millisecond, CommitLatency: 500 * time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng)
	go srv.Serve(lis)
	defer srv.Shutdown()

	writer, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	reader, err := wire.Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()

	if _, err := writer.Put([]byte("warm"), []byte("v0")); err != nil {
		t.Fatal(err)
	}

	putDone := make(chan struct{})
	go func() {
		defer close(putDone)
		if _, err := writer.Put([]byte("hot"), []byte("v1")); err != nil {
			t.Errorf("put: %v", err)
		}
	}()
	// Wait for the PUT to be applied, then read through the other
	// connection while its commit sleeps.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok, err := reader.Get([]byte("hot")); err != nil {
			t.Fatal(err)
		} else if ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("applied write never became visible over TCP")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	for i := 0; i < 50; i++ {
		if v, ok, err := reader.Get([]byte("warm")); err != nil || !ok || string(v) != "v0" {
			t.Fatalf("get during commit: %q %v %v", v, ok, err)
		}
	}
	elapsed := time.Since(start)
	select {
	case <-putDone:
		t.Fatal("commit finished before the reads ran — raise CommitLatency")
	default:
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("50 TCP gets took %v during a commit", elapsed)
	}
	<-putDone
}

func TestQueuedReadsConfigStillServes(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 4, MaxDelay: time.Millisecond, QueuedReads: true})
	defer pool.Close()
	defer eng.Close()
	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := eng.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("queued get: %q %v %v", v, ok, err)
	}
	if eng.Stats().ReadIndexHits.Load() != 0 {
		t.Fatal("queued reads must not touch the read index counters")
	}
}
