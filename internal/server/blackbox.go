package server

import (
	"time"

	"pax/internal/blackbox"
	"pax/internal/epochlog"
)

// This file hangs the persistent crash black box (internal/blackbox) off the
// fleet's event hub: lifecycle events are journaled as they happen, and a
// sampler journals windowed metrics snapshots. paxserve (-blackbox) and the
// loadgen harness both attach through here.

// openDetail is EvOpen's payload: what recovery found when a shard's pool
// opened. Replay is set only on epoch-log pools — it carries the replay
// report, including any torn-tail truncation.
type openDetail struct {
	Epoch  uint64         `json:"epoch"`
	Replay *epochlog.Info `json:"replay,omitempty"`
}

// AttachBlackbox wires a fleet onto a black-box journal: every lifecycle
// event is appended as it happens (journal failures never propagate into
// serving — a dead journal reads as a gap in the postmortem timeline), one
// EvOpen per shard records what recovery found, and a sampler appends a
// windowed metrics snapshot every interval. The returned stop func detaches
// the sink and stops the sampler, flushing a final tail-window snapshot; it
// does not close the journal — the caller owns that.
func AttachBlackbox(s *ShardedEngine, j *blackbox.Journal, interval time.Duration) (stop func()) {
	s.SetEventSink(func(ev Event) {
		_ = j.AppendJSON(ev.Type, ev)
	})
	for k, pool := range s.ShardPools() {
		d := openDetail{Epoch: pool.Epoch()}
		if pool.EpochLogEnabled() {
			info := pool.Internal().PM().ReplayInfo()
			d.Replay = &info
		}
		s.events.emit(blackbox.EvOpen, k, d)
	}
	sampler := blackbox.StartSampler(j, s.Metrics, interval)
	return func() {
		sampler.Stop()
		s.SetEventSink(nil)
	}
}

// EmitEvent publishes a fleet-level lifecycle event with a JSON-marshalable
// detail. The daemon uses it for EvShutdown — the marker whose presence
// tells a postmortem the process ended on purpose.
func (s *ShardedEngine) EmitEvent(typ string, detail any) {
	s.events.emit(typ, -1, detail)
}
