package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"pax/internal/pmem"
	"pax/internal/stats"
	"pax/internal/wire"
)

func TestFlightRecorderRingWraparound(t *testing.T) {
	const depth = 8
	f := newFlightRecorder(depth, 4, 0)
	for i := 0; i < depth*3+5; i++ {
		f.record(CommitRecord{Batch: i})
	}
	snap := f.snapshot()
	if len(snap.Recent) != depth {
		t.Fatalf("recent ring holds %d records, want %d", len(snap.Recent), depth)
	}
	// Oldest-first, contiguous sequence numbers ending at the last commit.
	total := uint64(depth*3 + 5)
	for i, rec := range snap.Recent {
		wantSeq := total - uint64(depth) + uint64(i) + 1
		if rec.Seq != wantSeq {
			t.Fatalf("recent[%d].Seq = %d, want %d", i, rec.Seq, wantSeq)
		}
		if rec.Batch != int(wantSeq)-1 {
			t.Fatalf("recent[%d] is commit %d's record, want %d", i, rec.Batch, wantSeq-1)
		}
	}
	if len(snap.Slow) != 0 {
		t.Fatalf("pinning disabled but %d records pinned", len(snap.Slow))
	}
}

func TestFlightRecorderPartialRing(t *testing.T) {
	f := newFlightRecorder(16, 4, 0)
	f.record(CommitRecord{})
	f.record(CommitRecord{})
	snap := f.snapshot()
	if len(snap.Recent) != 2 || snap.Recent[0].Seq != 1 || snap.Recent[1].Seq != 2 {
		t.Fatalf("partial ring = %+v", snap.Recent)
	}
}

func TestFlightRecorderPinsSlowAndFailed(t *testing.T) {
	f := newFlightRecorder(4, 2, 10*time.Millisecond)
	f.record(CommitRecord{TotalNS: int64(time.Millisecond)})      // fast: not pinned
	f.record(CommitRecord{TotalNS: int64(50 * time.Millisecond)}) // slow: pinned
	f.record(CommitRecord{TotalNS: 1, Err: "injected"})           // failed: pinned
	// Five more fast commits wrap the recent ring past both outliers.
	for i := 0; i < 5; i++ {
		f.record(CommitRecord{TotalNS: 2})
	}
	snap := f.snapshot()
	if snap.SlowThresholdNS != int64(10*time.Millisecond) {
		t.Fatalf("threshold = %d", snap.SlowThresholdNS)
	}
	if len(snap.Slow) != 2 {
		t.Fatalf("pinned %d records, want 2: %+v", len(snap.Slow), snap.Slow)
	}
	if snap.Slow[0].Seq != 2 || snap.Slow[1].Seq != 3 || snap.Slow[1].Err != "injected" {
		t.Fatalf("pinned ring = %+v", snap.Slow)
	}
	for _, rec := range snap.Recent {
		if rec.Seq <= 3 {
			t.Fatalf("recent ring did not wrap past the outliers: %+v", snap.Recent)
		}
	}
	// Errors pin even with the threshold disabled.
	g := newFlightRecorder(4, 2, 0)
	g.record(CommitRecord{TotalNS: int64(time.Hour)})
	g.record(CommitRecord{Err: "boom"})
	if snap := g.snapshot(); len(snap.Slow) != 1 || snap.Slow[0].Err != "boom" {
		t.Fatalf("disabled-threshold pinning = %+v", snap.Slow)
	}
}

func TestEngineTraceRecordsCommits(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	for i := 0; i < 5; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	snap := eng.Trace()
	if snap.Shards != 1 || len(snap.Recent) == 0 {
		t.Fatalf("trace = %+v", snap)
	}
	var batches int
	for _, rec := range snap.Recent {
		batches += rec.Batch
		if rec.Err != "" {
			t.Fatalf("healthy commit recorded error: %+v", rec)
		}
		if rec.Epoch == 0 || rec.Start == 0 {
			t.Fatalf("commit record missing epoch/start: %+v", rec)
		}
		if rec.TotalNS < rec.PersistNS || rec.PersistNS <= 0 {
			t.Fatalf("stage timings inconsistent: %+v", rec)
		}
	}
	if batches != 5 {
		t.Fatalf("trace accounts for %d acked writes, want 5", batches)
	}
}

// A sealed engine must still answer TRACE — the record explaining the seal is
// pinned, and reading it is the whole point of the recorder.
func TestEngineTraceSurvivesSeal(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 4, MaxDelay: time.Millisecond,
		CommitRetries: -1, SlowCommit: -1,
	})
	defer pool.Close()
	defer eng.Close()

	if _, err := eng.Put([]byte("ok"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	if _, err := eng.Put([]byte("doomed"), []byte("v")); !errors.Is(err, ErrSealed) {
		t.Fatalf("put on faulted media: %v", err)
	}
	res := eng.do(opTrace, nil, nil)
	if res.err != nil {
		t.Fatalf("TRACE on sealed engine: %v", res.err)
	}
	var snap TraceSnapshot
	if err := json.Unmarshal(res.value, &snap); err != nil {
		t.Fatalf("TRACE body: %v", err)
	}
	if len(snap.Slow) == 0 {
		t.Fatal("failed commit was not pinned")
	}
	last := snap.Slow[len(snap.Slow)-1]
	if last.Err == "" || !strings.Contains(last.Err, "injected") {
		t.Fatalf("pinned record err = %q, want the injected fault", last.Err)
	}
	if last.Epoch != 0 {
		t.Fatalf("failed commit claims durable epoch %d", last.Epoch)
	}
}

func TestStatsTextHasLatencyQuantiles(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Get([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.Get([]byte("missing")); err != nil {
		t.Fatal(err)
	}
	text, err := eng.StatsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`paxserve_commit_ns{q="p99"} `,
		`paxserve_commit_persist_ns{q="p50"} `,
		`paxserve_batch_seal_ns{q="p999"} `,
		`paxserve_enqueue_wait_ns{q="p99"} `,
		`paxserve_get_hit_ns{q="p99"} `,
		`paxserve_get_miss_ns{q="p99"} `,
		"paxserve_commit_ns_count 1",
		"pax_persist_device_ns_count",
		"pax_sync_ns_count",
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("stats text missing %q:\n%s", line, text)
		}
	}
	// Pre-existing plain counter lines must be untouched by the histogram
	// registration — exact `name value` form, no labels.
	for _, line := range []string{"paxserve_acked_writes 1\n", "paxserve_group_commits 1\n"} {
		if !strings.Contains(text, line) {
			t.Fatalf("plain counter line %q changed:\n%s", line, text)
		}
	}
}

func TestTCPTrace(t *testing.T) {
	_, _, addr := startTCP(t)
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 3; i++ {
		if _, err := cl.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	body, err := cl.Trace()
	if err != nil {
		t.Fatal(err)
	}
	var snap TraceSnapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("TRACE body is not a TraceSnapshot: %v\n%s", err, body)
	}
	if snap.Shards != 1 || len(snap.Recent) == 0 {
		t.Fatalf("trace over TCP = %+v", snap)
	}
	var acked int
	for _, rec := range snap.Recent {
		acked += rec.Batch
	}
	if acked != 3 {
		t.Fatalf("trace accounts for %d acked writes, want 3", acked)
	}
}

func TestShardedTraceMergesAndStampsShards(t *testing.T) {
	const shards = 4
	s := newSharded(t, "", shards, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer s.Close()

	seen := make(map[int]bool)
	for i := 0; i < 32; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		if _, err := s.Put(key, []byte("v")); err != nil {
			t.Fatal(err)
		}
		seen[s.ShardFor(key)] = true
	}
	if len(seen) < 2 {
		t.Skip("keys all hashed to one shard; nothing to merge")
	}
	snap := s.Trace()
	if snap.Shards != shards {
		t.Fatalf("Shards = %d, want %d", snap.Shards, shards)
	}
	got := make(map[int]bool)
	for i, rec := range snap.Recent {
		got[rec.Shard] = true
		if rec.Shard < 0 || rec.Shard >= shards {
			t.Fatalf("record stamped with shard %d", rec.Shard)
		}
		if i > 0 && snap.Recent[i-1].Start > rec.Start {
			t.Fatalf("merged trace not sorted by start: %d then %d", snap.Recent[i-1].Start, rec.Start)
		}
	}
	for k := range seen {
		if !got[k] {
			t.Fatalf("shard %d committed but has no trace records", k)
		}
	}
}

func TestMergeSummariesQuantileSemantics(t *testing.T) {
	snaps := []stats.Summary{
		{`lat{q="p99"}`: 100, "lat_count": 10, "ops": 5},
		{`lat{q="p99"}`: 300, "lat_count": 20, "ops": 7},
	}
	m := mergeSummaries(snaps)
	// Quantiles: per-shard label joins the existing set, plain name is the
	// max across shards.
	if got := m[`lat{q="p99",shard="0"}`]; got != 100 {
		t.Fatalf(`shard 0 quantile = %v`, got)
	}
	if got := m[`lat{q="p99",shard="1"}`]; got != 300 {
		t.Fatalf(`shard 1 quantile = %v`, got)
	}
	if got := m[`lat{q="p99"}`]; got != 300 {
		t.Fatalf(`merged quantile = %v, want the max (300)`, got)
	}
	if _, ok := m[`lat{q="p99"}{shard="0"}`]; ok {
		t.Fatal("quantile line got a second brace group")
	}
	// Counters still sum, with the plain shard suffix.
	if got := m["lat_count"]; got != 30 {
		t.Fatalf("summed count = %v", got)
	}
	if got := m[`ops{shard="1"}`]; got != 7 {
		t.Fatalf(`per-shard counter = %v`, got)
	}
	if got := m["paxserve_shards"]; got != 2 {
		t.Fatalf("paxserve_shards = %v", got)
	}
}

func TestShardedStatsTextQuantiles(t *testing.T) {
	s := newSharded(t, "", 2, Config{MaxBatch: 8, MaxDelay: time.Millisecond})
	defer s.Close()
	for i := 0; i < 8; i++ {
		if _, err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	text, err := s.StatsText()
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`paxserve_commit_ns{q="p99"} `,
		`paxserve_commit_ns{q="p99",shard="0"} `,
		`paxserve_commit_ns{q="p99",shard="1"} `,
		"paxserve_shards 2",
	} {
		if !strings.Contains(text, line) {
			t.Fatalf("sharded stats missing %q:\n%s", line, text)
		}
	}
	// Every line must stay strictly two-field `name value`.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed stats line %q", line)
		}
	}
}
