package server

import (
	"fmt"
	"testing"
	"time"
)

// newDecider builds an Autopilot with only the state decide() consumes, so
// policy tests can drive synthetic windows through the real threshold and
// hysteresis logic without an engine or a ticker.
func newDecider(cfg AutopilotConfig) *Autopilot {
	cfg = cfg.withDefaults()
	a := &Autopilot{cfg: cfg}
	a.idleTicks = int((cfg.MergeIdle + cfg.Interval - 1) / cfg.Interval)
	if a.idleTicks < 1 {
		a.idleTicks = 1
	}
	return a
}

func hotWindows(p99 int64, stall float64) []ShardWindow {
	return []ShardWindow{
		{Shard: 0, OpsPerSec: 900, EnqueueP99NS: p99, StallFrac: stall},
		{Shard: 1, OpsPerSec: 50},
	}
}

// Imbalance alone must never split: without a pipeline signal on the hot
// shard (enqueue-wait p99 or stall), the hot shard is not commit-bound and a
// split buys nothing.
func TestDecideRequiresPipelineSignal(t *testing.T) {
	a := newDecider(AutopilotConfig{
		SplitEnabled:      true,
		Interval:          time.Second,
		SplitMinOpsPerSec: 100,
		SplitImbalance:    1.5,
		SplitHotTicks:     2,
	})
	now := time.Unix(1000, 0)
	for i := 0; i < 20; i++ {
		if d := a.decide(hotWindows(0, 0), now.Add(time.Duration(i)*time.Second)); d != nil {
			t.Fatalf("tick %d: split fired on load imbalance alone: %+v", i, d)
		}
	}
	if a.hotStreak != 0 {
		t.Fatalf("hot streak %d accumulated without a pipeline signal", a.hotStreak)
	}
}

// A split needs the hot condition to hold for SplitHotTicks consecutive
// ticks; one cold tick resets the streak.
func TestDecideHysteresis(t *testing.T) {
	a := newDecider(AutopilotConfig{
		SplitEnabled:      true,
		Interval:          time.Second,
		SplitMinOpsPerSec: 100,
		SplitImbalance:    1.5,
		SplitEnqueueP99:   time.Millisecond,
		SplitHotTicks:     3,
	})
	now := time.Unix(1000, 0)
	hot := hotWindows(int64(5*time.Millisecond), 0)

	if d := a.decide(hot, now); d != nil {
		t.Fatalf("split fired on the first hot tick: %+v", d)
	}
	if d := a.decide(hot, now.Add(time.Second)); d != nil {
		t.Fatalf("split fired on the second hot tick: %+v", d)
	}
	// A cold tick resets the streak...
	if d := a.decide(hotWindows(0, 0), now.Add(2*time.Second)); d != nil {
		t.Fatalf("split fired on a cold tick: %+v", d)
	}
	// ...so two more hot ticks still do not fire; the third does.
	for i := 0; i < 2; i++ {
		if d := a.decide(hot, now.Add(time.Duration(3+i)*time.Second)); d != nil {
			t.Fatalf("split fired %d ticks after the reset: %+v", i+1, d)
		}
	}
	d := a.decide(hot, now.Add(5*time.Second))
	if d == nil || d.Action != "split" || d.Shard != 0 {
		t.Fatalf("want split of shard 0 after 3 consecutive hot ticks, got %+v", d)
	}
}

// The stall fraction is an alternative pipeline signal to enqueue-wait p99.
func TestDecideSplitsOnStallSignal(t *testing.T) {
	a := newDecider(AutopilotConfig{
		SplitEnabled:   true,
		Interval:       time.Second,
		SplitStallFrac: 0.05,
		SplitHotTicks:  1,
	})
	d := a.decide(hotWindows(0, 0.5), time.Unix(1000, 0))
	if d == nil || d.Action != "split" {
		t.Fatalf("want split on stall signal, got %+v", d)
	}
}

// No split past MaxShards, regardless of the signals.
func TestDecideRespectsMaxShards(t *testing.T) {
	a := newDecider(AutopilotConfig{
		SplitEnabled:    true,
		Interval:        time.Second,
		MaxShards:       2,
		SplitEnqueueP99: time.Millisecond,
		SplitHotTicks:   1,
	})
	for i := 0; i < 5; i++ {
		if d := a.decide(hotWindows(int64(5*time.Millisecond), 1), time.Unix(int64(1000+i), 0)); d != nil {
			t.Fatalf("split fired at the MaxShards cap: %+v", d)
		}
	}
}

// Cooldown: a recent action suppresses the next decision until the gap
// passes, but the streak keeps accumulating so the decision fires promptly
// once the cooldown expires.
func TestDecideCooldown(t *testing.T) {
	a := newDecider(AutopilotConfig{
		SplitEnabled:    true,
		Interval:        time.Second,
		SplitEnqueueP99: time.Millisecond,
		SplitHotTicks:   1,
		Cooldown:        10 * time.Second,
	})
	now := time.Unix(1000, 0)
	a.lastAction = now
	hot := hotWindows(int64(5*time.Millisecond), 0)
	for i := 1; i < 10; i++ {
		if d := a.decide(hot, now.Add(time.Duration(i)*time.Second)); d != nil {
			t.Fatalf("decision fired %ds into a 10s cooldown: %+v", i, d)
		}
	}
	if d := a.decide(hot, now.Add(10*time.Second)); d == nil || d.Action != "split" {
		t.Fatalf("want split once the cooldown expired, got %+v", d)
	}
}

// A merge fires only after the coldest shard stays idle for the full
// MergeIdle stretch, never below MinShards, and never while a split
// condition is brewing on another shard.
func TestDecideMerge(t *testing.T) {
	cfg := AutopilotConfig{
		MergeEnabled:       true,
		Interval:           time.Second,
		MinShards:          2,
		MergeIdleOpsPerSec: 1,
		MergeIdle:          3 * time.Second,
	}
	a := newDecider(cfg)
	now := time.Unix(1000, 0)
	idle := []ShardWindow{
		{Shard: 0, OpsPerSec: 40},
		{Shard: 1, OpsPerSec: 30},
		{Shard: 2, OpsPerSec: 0.2},
	}
	for i := 0; i < 2; i++ {
		if d := a.decide(idle, now.Add(time.Duration(i)*time.Second)); d != nil {
			t.Fatalf("merge fired after %d idle ticks, want %d: %+v", i+1, a.idleTicks, d)
		}
	}
	d := a.decide(idle, now.Add(2*time.Second))
	if d == nil || d.Action != "merge" || d.Shard != 2 {
		t.Fatalf("want merge of shard 2 after %d idle ticks, got %+v", a.idleTicks, d)
	}

	// At MinShards the idle shard stays: no merge no matter how long.
	a = newDecider(cfg)
	atFloor := idle[:2]
	for i := 0; i < 10; i++ {
		if d := a.decide(atFloor, now.Add(time.Duration(i)*time.Second)); d != nil {
			t.Fatalf("merge fired at the MinShards floor: %+v", d)
		}
	}

	// A brewing split (hot streak on another shard) suppresses the idle
	// streak: merging into a fleet the next ticks will split is flapping.
	cfg.SplitEnabled = true
	cfg.SplitMinOpsPerSec = 100
	cfg.SplitImbalance = 1.2
	cfg.SplitEnqueueP99 = time.Millisecond
	cfg.SplitHotTicks = 100 // never actually fires in this test
	a = newDecider(cfg)
	skewed := []ShardWindow{
		{Shard: 0, OpsPerSec: 900, EnqueueP99NS: int64(5 * time.Millisecond)},
		{Shard: 1, OpsPerSec: 30},
		{Shard: 2, OpsPerSec: 0},
	}
	for i := 0; i < 10; i++ {
		if d := a.decide(skewed, now.Add(time.Duration(i)*time.Second)); d != nil {
			t.Fatalf("merge fired while a split was brewing: %+v", d)
		}
		if a.idleStreak != 0 {
			t.Fatalf("idle streak %d accumulated under a hot streak", a.idleStreak)
		}
	}
}

// The tracker must turn cumulative slot counters into rates that rise under
// traffic and decay once it stops — the property the cumulative counters
// themselves lack.
func TestTrackerWindowedRatesDecay(t *testing.T) {
	eng := newShardedDelta(t, "", 2, Config{MaxBatch: 16, MaxDelay: 100 * time.Microsecond})
	defer eng.Close()

	tr := newLoadTracker(50 * time.Millisecond)
	if wins := tr.tick(eng); wins != nil {
		for _, w := range wins {
			if w.OpsPerSec != 0 {
				t.Fatalf("baseline tick reported a rate: %+v", wins)
			}
		}
	}

	for i := 0; i < 400; i++ {
		if _, err := eng.PutPolicy([]byte(fmt.Sprintf("rate-%04d", i)), []byte("v"), AckApply); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	wins := tr.tick(eng)
	var peak float64
	for _, w := range wins {
		peak += w.OpsPerSec
	}
	if peak <= 0 {
		t.Fatalf("no rate after 400 ops: %+v", wins)
	}

	// One quiet interval longer than the window replaces the EWMA outright:
	// the rate must collapse to zero, not linger at the hour-old average.
	time.Sleep(60 * time.Millisecond)
	wins = tr.tick(eng)
	var after float64
	for _, w := range wins {
		after += w.OpsPerSec
	}
	if after != 0 {
		t.Fatalf("rate %.1f ops/s survived a full quiet window (peak %.1f): %+v", after, peak, wins)
	}
}

// End to end: under sustained single-shard pressure the autopilot splits on
// its own; once the load stops it merges back down — and the windowed
// metrics and last-decision records show up in STATS.
func TestAutopilotSplitsThenMerges(t *testing.T) {
	// QueueDepth 1 with per-request batches keeps the hot shard's enqueue
	// path genuinely contended, so the windowed p99 crosses the (1ns)
	// threshold whenever the flood runs — the pipeline signal without
	// needing a 4096-commit media backlog.
	eng := newShardedDelta(t, "", 2, Config{MaxBatch: 1, MaxDelay: 0, QueueDepth: 1})
	defer eng.Close()

	ap, err := eng.StartAutopilot(AutopilotConfig{
		Interval:           20 * time.Millisecond,
		Window:             80 * time.Millisecond,
		SplitEnabled:       true,
		MaxShards:          3,
		SplitMinOpsPerSec:  50,
		SplitImbalance:     1.2,
		SplitEnqueueP99:    1, // any measured wait counts
		SplitHotTicks:      2,
		MergeEnabled:       true,
		MinShards:          2,
		MergeIdleOpsPerSec: 5,
		MergeIdle:          100 * time.Millisecond,
		Cooldown:           150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.StartAutopilot(AutopilotConfig{}); err == nil {
		t.Fatal("second StartAutopilot succeeded")
	}

	// Hot keys all landing on shard 0 (they span its 128 slots, so a split
	// has something to move).
	var hotKeys [][]byte
	for i := 0; len(hotKeys) < 64; i++ {
		key := []byte(fmt.Sprintf("hot-%05d", i))
		if eng.ShardFor(key) == 0 {
			hotKeys = append(hotKeys, key)
		}
	}
	stop := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := hotKeys[(w+i)%len(hotKeys)]
				if _, err := eng.PutPolicy(key, []byte("v"), AckApply); err != nil {
					return // engine closing under us ends the flood
				}
			}
		}(w)
	}

	waitFor := func(what string, deadline time.Duration, ok func() bool) {
		t.Helper()
		end := time.Now().Add(deadline)
		for !ok() {
			if time.Now().After(end) {
				t.Fatalf("%s did not happen within %v; windows %+v, last %+v",
					what, deadline, ap.Windows(), ap.LastDecision())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	// The decision record publishes just after the fleet change itself, so
	// wait on both.
	waitFor("autopilot split", 15*time.Second, func() bool {
		d := ap.LastDecision()
		return eng.NumShards() == 3 && d != nil && d.Action == "split"
	})
	if d := ap.LastDecision(); d.Err != "" {
		t.Fatalf("last decision after split: %+v", d)
	}

	close(stop)
	waitFor("autopilot merge", 15*time.Second, func() bool {
		d := ap.LastDecision()
		return eng.NumShards() == 2 && d != nil && d.Action == "merge"
	})
	if d := ap.LastDecision(); d.Err != "" {
		t.Fatalf("last decision after merge: %+v", d)
	}

	metrics, err := eng.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if metrics["paxserve_autopilot_enabled"] != 1 {
		t.Fatal("paxserve_autopilot_enabled missing from STATS")
	}
	if metrics["paxserve_autopilot_splits"] < 1 || metrics["paxserve_autopilot_merges"] < 1 {
		t.Fatalf("autopilot counters: splits=%v merges=%v",
			metrics["paxserve_autopilot_splits"], metrics["paxserve_autopilot_merges"])
	}
	if _, ok := metrics[`paxserve_window_ops_per_sec{shard="0"}`]; !ok {
		t.Fatal("windowed per-shard rate missing from STATS")
	}
	if metrics["paxserve_autopilot_last_action"] != 2 {
		t.Fatalf("paxserve_autopilot_last_action = %v, want 2 (merge)", metrics["paxserve_autopilot_last_action"])
	}

	// The trace carries the last decision too.
	trace := eng.Trace()
	if trace.Autopilot == nil || trace.Autopilot.Action != "merge" {
		t.Fatalf("trace autopilot record: %+v", trace.Autopilot)
	}

	ap.Stop()
	ap.Stop() // idempotent
}
