package server

import (
	"fmt"
	"testing"
	"time"

	"pax"
)

// The serving-layer microbenchmarks: per-op cost and allocations on the
// engine hot paths. Run with -benchmem; the request-pooling and read-index
// work is judged by these numbers (before/after in the PR description).

func benchEngine(b *testing.B, cfg Config) *Engine {
	b.Helper()
	pool, err := pax.MapPool("", smallOpts())
	if err != nil {
		b.Fatal(err)
	}
	eng, err := New(pool, 0, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		eng.Close()
		pool.Close()
	})
	return eng
}

// BenchmarkEnginePut measures the acked-durable write path. MaxBatch 1 with
// zero commit latency keeps the group-commit machinery in the loop without
// making the benchmark wait on batching timers.
func BenchmarkEnginePut(b *testing.B) {
	eng := benchEngine(b, Config{MaxBatch: 1, MaxDelay: 10 * time.Millisecond})
	key := []byte("bench-key")
	val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineGet measures the read path against a warm store.
func BenchmarkEngineGet(b *testing.B) {
	eng := benchEngine(b, Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	const keys = 1024
	val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	for i := 0; i < keys; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("k%06d", i)), val); err != nil {
			b.Fatal(err)
		}
	}
	key := []byte("k000123")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := eng.Get(key); err != nil || !ok {
			b.Fatalf("get: ok=%v err=%v", ok, err)
		}
	}
}

// BenchmarkEngineGetParallel is the concurrent read path — the case the
// read index exists for: many reader goroutines against one engine.
func BenchmarkEngineGetParallel(b *testing.B) {
	eng := benchEngine(b, Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	val := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	if _, err := eng.Put([]byte("hot"), val); err != nil {
		b.Fatal(err)
	}
	key := []byte("hot")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok, err := eng.Get(key); err != nil || !ok {
				b.Fatalf("get: ok=%v err=%v", ok, err)
			}
		}
	})
}
