package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"pax/internal/pmem"
)

// This file is the slot routing layer under ShardedEngine: instead of hashing
// keys straight to a shard (FNV mod N, which reshuffles nearly every key when
// N changes), keys hash into a fixed space of NumSlots slots and a small
// persisted table assigns each slot to a shard. Changing the fleet's shape is
// then a table edit, not a rehash: splitting a hot shard moves only the slots
// it gives away — ~moved/NumSlots of the keyspace — while every other slot's
// keys keep their owner, their files, and their in-flight traffic.

// NumSlots is the fixed size of the routing space. 256 slots bounds the
// assignment table at one cache line per shard worth of metadata while still
// slicing the keyspace finely enough that a split can peel load off in
// ~0.4% increments.
const NumSlots = 256

// slotMapVersion is the on-disk format version of the slot-assignment map.
const slotMapVersion = 1

// slotMapSuffix names the sidecar file holding the persisted assignment:
// <path>.slotmap next to the shard pool files.
const slotMapSuffix = ".slotmap"

// SlotMapPath returns the sidecar file path holding path's slot assignment.
func SlotMapPath(path string) string { return path + slotMapSuffix }

// SlotFor hashes a key into its slot: FNV-1a over the key bytes, mod
// NumSlots. The mapping is a pure function of the key — stable across
// restarts, shard counts, and assignment changes — so only the slot→shard
// table ever moves a key.
func SlotFor(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % NumSlots)
}

// SlotMap is one immutable slot→shard assignment. The router publishes a new
// map (never edits one in place) on every cutover, so readers can use a
// loaded map without locks. Seq increases by one per published change; on
// disk the highest Seq is authoritative, and the atomic-publish protocol
// (see Save) guarantees a reader never observes a torn mix of two maps.
type SlotMap struct {
	// Version is the on-disk format version (slotMapVersion).
	Version int `json:"version"`
	// Seq numbers the assignment: 0 for the initial map, +1 per cutover.
	Seq uint64 `json:"seq"`
	// Shards is how many shards the assignment may reference; every entry of
	// Assign is < Shards. Opening a layout with fewer shard files than this
	// is refused — those slots' keys would have nowhere to live.
	Shards int `json:"shards"`
	// Assign maps slot → owning shard.
	Assign [NumSlots]uint16 `json:"assign"`
}

// DefaultSlotMap spreads the slots round-robin across n shards: slot s →
// s mod n. For shard counts that divide NumSlots (every power of two up to
// 256) this reproduces the legacy FNV-mod-N routing exactly — (h mod 256)
// mod n == h mod n when n divides 256 — so adopting a pre-slot-map layout
// moves no keys at all in the common power-of-two case.
func DefaultSlotMap(n int) *SlotMap {
	m := &SlotMap{Version: slotMapVersion, Shards: n}
	for s := 0; s < NumSlots; s++ {
		m.Assign[s] = uint16(s % n)
	}
	return m
}

// clone returns a mutable copy with the same assignment; the caller edits it
// and publishes it as the next map.
func (m *SlotMap) clone() *SlotMap {
	c := *m
	return &c
}

// validate checks internal consistency: a sane shard count and every slot
// assigned to a shard the map admits to having.
func (m *SlotMap) validate() error {
	if m.Version != slotMapVersion {
		return fmt.Errorf("server: slot map version %d (want %d)", m.Version, slotMapVersion)
	}
	if m.Shards <= 0 || m.Shards > NumSlots {
		return fmt.Errorf("server: slot map shard count %d out of range [1,%d]", m.Shards, NumSlots)
	}
	for s, k := range m.Assign {
		if int(k) >= m.Shards {
			return fmt.Errorf("server: slot %d assigned to shard %d of %d", s, k, m.Shards)
		}
	}
	return nil
}

// slotsOf returns the slots shard k owns, in slot order.
func (m *SlotMap) slotsOf(k int) []int {
	var out []int
	for s, owner := range m.Assign {
		if int(owner) == k {
			out = append(out, s)
		}
	}
	return out
}

// maxShard returns the highest shard index any slot references, or -1 for an
// (impossible) empty assignment.
func (m *SlotMap) maxShard() int {
	max := -1
	for _, k := range m.Assign {
		if int(k) > max {
			max = int(k)
		}
	}
	return max
}

// LoadSlotMap reads and validates the slot map persisted for the layout at
// path. A missing file returns (nil, nil): the layout predates slot routing
// (or is a bare single-shard pool, which never writes one) and the caller
// falls back to the default assignment.
func LoadSlotMap(path string) (*SlotMap, error) {
	data, err := os.ReadFile(SlotMapPath(path))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("server: slot map: %w", err)
	}
	m := &SlotMap{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("server: slot map %s: %w", SlotMapPath(path), err)
	}
	if err := m.validate(); err != nil {
		return nil, fmt.Errorf("server: slot map %s: %w", SlotMapPath(path), err)
	}
	return m, nil
}

// Save atomically publishes the map as path's slot-map sidecar: staged to a
// temp file, fsynced, renamed over the old map, directory fsynced (the pmem
// Sync staging protocol). A crash at any point leaves either the previous
// assignment or this one intact — which is the cutover's durability point:
// a slot migration is committed exactly when the map carrying it survives
// power loss.
func (m *SlotMap) Save(path string) error {
	if err := m.validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "\t")
	if err != nil {
		return err
	}
	return pmem.PublishFile(SlotMapPath(path), append(data, '\n'))
}
