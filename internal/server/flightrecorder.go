package server

import (
	"sync"
	"time"
)

// This file is the commit flight recorder: a fixed-size ring of structured
// per-commit records the writer loop appends to on every group commit. Where
// the metrics registry answers "what is the p99", the recorder answers "what
// did commit #4711 actually do" — batch size, per-stage nanoseconds, retries,
// and the error if the medium refused the epoch. Commits slower than a
// threshold (and every failed commit) are additionally copied to a pinned
// ring, so an outlier from hours ago survives long after the recent ring has
// wrapped past it.
//
// The recorder is deliberately cheap: one mutex-guarded ring append per group
// commit (not per operation — the engine already amortizes N writes into one
// commit, and the recorder rides that amortization). Snapshots copy the rings
// under the same mutex, so a TRACE never blocks a commit for more than two
// slice copies.

// Flight-recorder defaults: the recent ring keeps the last DefaultTraceDepth
// commits, the pinned ring the last DefaultSlowDepth outliers, and a commit
// counts as an outlier past DefaultSlowCommit (or on any error).
const (
	DefaultTraceDepth = 256
	DefaultSlowDepth  = 64
	DefaultSlowCommit = 10 * time.Millisecond
)

// CommitRecord describes one group commit end to end. All *NS fields are
// wall-clock nanoseconds.
type CommitRecord struct {
	// Seq numbers commits per engine, from 1; gaps in a trace mean the
	// recent ring wrapped. Shard is which shard committed (0 on an unsharded
	// engine; the router stamps it on merged traces).
	Seq   uint64 `json:"seq"`
	Shard int    `json:"shard"`
	// Epoch is the pool epoch the commit made durable (0 if it failed).
	Epoch uint64 `json:"epoch"`
	// Batch is how many applied mutations (plus explicit persists,
	// ack-on-apply included) shared this commit; 0 is the shutdown seal of
	// an open epoch.
	Batch int `json:"batch"`
	// Inflight is the pipeline depth when this batch sealed: how many
	// commits (this one included) were in flight toward media. 1 on a
	// serial engine (MaxInflightCommits=1); up to MaxInflightCommits when
	// the pipeline is keeping the medium busy.
	Inflight int `json:"inflight"`
	// Retries is how many extra persist attempts the commit needed.
	Retries int `json:"retries"`
	// Start is the wall-clock time the batch opened (first request applied),
	// Unix nanoseconds.
	Start int64 `json:"start_unix_nano"`
	// SealNS is batch open → commit start (the group-commit window: how long
	// the first writer waited for company). PersistNS is the persist call
	// including retries, backoff, and the modeled media latency. AckNS is the
	// ack fan-out to the batch's waiters. TotalNS covers all three.
	SealNS    int64 `json:"seal_ns"`
	PersistNS int64 `json:"persist_ns"`
	AckNS     int64 `json:"ack_ns"`
	TotalNS   int64 `json:"total_ns"`
	// DeltaBytes is how many bytes the commit's media sync persisted (the
	// delta record under the epoch store, the full image otherwise);
	// PoolBytes is the pool's media size. Their ratio is this commit's write
	// amplification.
	DeltaBytes int64 `json:"delta_bytes"`
	PoolBytes  int64 `json:"pool_bytes"`
	// Err is the durability error for a failed commit ("" on success). A
	// failed commit seals the engine, so it is always the last record.
	Err string `json:"err,omitempty"`
}

// TraceSnapshot is what TRACE returns: the recent ring and the pinned
// outliers, each oldest-first.
type TraceSnapshot struct {
	// Shards is how many engines contributed (1 for an unsharded trace).
	Shards int `json:"shards"`
	// SlowThresholdNS is the pin threshold in force (0 = pinning disabled).
	SlowThresholdNS int64          `json:"slow_threshold_ns"`
	Recent          []CommitRecord `json:"recent"`
	Slow            []CommitRecord `json:"slow"`
	// Autopilot is the reshard policy's last decision, when a policy loop is
	// running on the sharded router (autopilot.go); nil otherwise.
	Autopilot *PolicyDecision `json:"autopilot,omitempty"`
}

// flightRecorder is the per-engine recorder. record is called by the writer
// loop only; snapshot by any goroutine.
type flightRecorder struct {
	mu        sync.Mutex
	seq       uint64
	threshold time.Duration // ≤ 0: pinning disabled
	recent    ring
	slow      ring
}

// ring is a fixed-capacity overwrite-oldest record buffer.
type ring struct {
	buf  []CommitRecord
	next int  // slot the next record lands in
	full bool // buf has wrapped at least once
}

func (r *ring) push(rec CommitRecord) {
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
}

// ordered returns the ring's records oldest-first in a fresh slice.
func (r *ring) ordered() []CommitRecord {
	if !r.full {
		return append([]CommitRecord(nil), r.buf[:r.next]...)
	}
	out := make([]CommitRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

func newFlightRecorder(depth, slowDepth int, threshold time.Duration) *flightRecorder {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	if slowDepth <= 0 {
		slowDepth = DefaultSlowDepth
	}
	return &flightRecorder{
		threshold: threshold,
		recent:    ring{buf: make([]CommitRecord, depth)},
		slow:      ring{buf: make([]CommitRecord, slowDepth)},
	}
}

// record assigns the next sequence number and appends; failed or
// over-threshold commits are copied to the pinned ring too. It returns the
// stamped record so event emitters journal the same seq TRACE shows —
// a postmortem's failing-commit record cross-references the flight recorder.
func (f *flightRecorder) record(rec CommitRecord) CommitRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	rec.Seq = f.seq
	f.recent.push(rec)
	if rec.Err != "" || (f.threshold > 0 && rec.TotalNS >= int64(f.threshold)) {
		f.slow.push(rec)
	}
	return rec
}

// snapshot copies both rings.
func (f *flightRecorder) snapshot() TraceSnapshot {
	f.mu.Lock()
	defer f.mu.Unlock()
	return TraceSnapshot{
		Shards:          1,
		SlowThresholdNS: int64(f.threshold),
		Recent:          f.recent.ordered(),
		Slow:            f.slow.ordered(),
	}
}
