package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pax"
	"pax/internal/pmem"
)

// This file tests the commit pipeline (sealer → persister → acker) and the
// per-request ack policies: media-latency overlap, the failure cascade
// across in-flight epochs, crash exactness with the pipeline full, and the
// documented weaker contract of ack-on-apply.

func TestRetryDelayClamp(t *testing.T) {
	base := 2 * time.Millisecond
	for attempt, want := range []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
		16 * time.Millisecond, 32 * time.Millisecond, 64 * time.Millisecond,
		128 * time.Millisecond,
	} {
		if got := retryDelay(base, attempt); got != want {
			t.Fatalf("retryDelay(%v, %d) = %v, want %v", base, attempt, got, want)
		}
	}
	// Past the clamp the delay stops doubling; in particular a huge attempt
	// number must not overflow into a negative (or absurd) Duration, which an
	// unclamped base<<attempt does near attempt 40.
	max := retryDelay(base, maxRetryDoublings)
	for _, attempt := range []int{maxRetryDoublings + 1, 40, 64, 1 << 20} {
		if got := retryDelay(base, attempt); got != max {
			t.Fatalf("retryDelay(%v, %d) = %v, want clamped %v", base, attempt, got, max)
		}
	}
}

// TestPipelineOverlapsCommitLatency is the tentpole's A/B: with MaxBatch=1
// and four concurrent single-write batches, a serial engine (window 1) pays
// 4x the modeled media latency end to end, while a window that admits all
// four overlaps their media time and finishes in little more than one
// latency. Bounds are deliberately loose — the assertion is the overlap, not
// a precise speedup.
func TestPipelineOverlapsCommitLatency(t *testing.T) {
	const lat = 40 * time.Millisecond
	run := func(window int) time.Duration {
		pool, eng := newTestEngine(t, "", Config{
			MaxBatch: 1, MaxDelay: time.Millisecond,
			CommitLatency:      lat,
			MaxInflightCommits: window,
		})
		defer pool.Close()
		defer eng.Close()
		var wg sync.WaitGroup
		start := time.Now()
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := eng.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
					t.Errorf("put %d: %v", i, err)
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	serial := run(1)
	pipelined := run(4)
	if serial < 4*lat-lat/8 {
		t.Fatalf("serial window finished in %v, want >= ~%v (4 batches x %v media latency)", serial, 4*lat, lat)
	}
	if pipelined >= 3*lat {
		t.Fatalf("window 4 finished in %v, want well under the serial %v (media time should overlap)", pipelined, serial)
	}
	t.Logf("4 single-write batches at %v media latency: serial %v, window-4 %v", lat, serial, pipelined)
}

// TestPipelineFailureFailsAllSealedEpochs is the failure cascade: epoch N's
// persist fails after retries while epoch N+1 is already sealed behind it.
// Both batches' waiters must fail — N because its media refused, N+1 because
// acking it would reorder durability past a hole — and the engine seals.
func TestPipelineFailureFailsAllSealedEpochs(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 1, MaxDelay: time.Millisecond,
		CommitRetries: 2, CommitRetryDelay: 25 * time.Millisecond,
		MaxInflightCommits: 2,
	})
	defer pool.Close()

	// Every sync fails: batch 1's persist retries for ~75ms before sealing,
	// which is the window batch 2 seals into the pipeline behind it.
	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))

	errs := make(chan error, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := eng.Put([]byte("k1"), []byte("v"))
		errs <- err
	}()
	time.Sleep(15 * time.Millisecond) // batch 1 sealed, persist retrying
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := eng.Put([]byte("k2"), []byte("v"))
		errs <- err
	}()
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-errs; !errors.Is(err, ErrSealed) {
			t.Fatalf("write %d on failing media: %v, want ErrSealed", i, err)
		}
	}
	if got := eng.Stats().AckedWrites.Load(); got != 0 {
		t.Fatalf("%d writes acked across a failed pipeline, want 0", got)
	}
	if got := eng.Stats().CommitFailures.Load(); got != 1 {
		t.Fatalf("commit failures = %d, want 1 (only epoch N's persist ran)", got)
	}
	if err := eng.SealErr(); !errors.Is(err, ErrSealed) {
		t.Fatalf("engine not sealed after pipeline failure: %v", err)
	}
	if err := eng.Close(); !errors.Is(err, ErrSealed) {
		t.Fatalf("close of sealed engine = %v, want seal error", err)
	}
}

// TestPipelineCrashRecoversExactlyAckedWrites re-runs the crash-exactness
// contract with the pipeline actually deep: small batches, modeled media
// latency, and a window of 4, so the crash lands with several epochs in
// flight (sealed, persisting, and awaiting ack). Acked ack-on-durable writes
// must all survive, unacked ones must all roll back — same contract as the
// serial engine, window notwithstanding.
func TestPipelineCrashRecoversExactlyAckedWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pipecrash.pool")
	pool, eng := newTestEngine(t, path, Config{
		MaxBatch: 4, MaxDelay: 500 * time.Microsecond,
		CommitLatency:      2 * time.Millisecond,
		MaxInflightCommits: 4,
	})

	const clients = 16
	type oplog struct {
		acked, errored []string
	}
	logs := make([]oplog, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; op++ {
				key := fmt.Sprintf("c%02d-op%04d", c, op)
				_, err := eng.Put([]byte(key), []byte("val-"+key))
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBusy) {
						t.Errorf("client %d: unexpected error %v", c, err)
					}
					logs[c].errored = append(logs[c].errored, key)
					return
				}
				logs[c].acked = append(logs[c].acked, key)
			}
		}(c)
	}
	time.Sleep(60 * time.Millisecond)
	eng.Crash()
	wg.Wait()
	if err := pool.Close(); err != nil { // crash-like close: no final persist
		t.Fatal(err)
	}

	pool2, err := pax.OpenPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	kv, err := pax.NewMap(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var totalAcked int
	for c := range logs {
		totalAcked += len(logs[c].acked)
		for _, key := range logs[c].acked {
			if _, ok := kv.Get([]byte(key)); !ok {
				t.Fatalf("acked write %s lost in a mid-pipeline crash", key)
			}
		}
		for _, key := range logs[c].errored {
			if _, ok := kv.Get([]byte(key)); ok {
				t.Fatalf("unacked write %s survived the crash", key)
			}
		}
	}
	if totalAcked == 0 {
		t.Fatal("crashed before any write was acked; raise the sleep")
	}
	if got := int(kv.Len()); got != totalAcked {
		t.Fatalf("recovered %d keys, want exactly the %d acked", got, totalAcked)
	}
	t.Logf("mid-pipeline crash after %d acked writes; all recovered", totalAcked)
}

// TestAckApplyRollbackIsTheDocumentedContract pins ack-on-apply's weaker
// guarantee: the ack arrives before durability, the write is immediately
// read-your-writes visible, and a crash before its epoch commits rolls it
// back — acked or not. That rollback is the documented trade, not a bug.
func TestAckApplyRollbackIsTheDocumentedContract(t *testing.T) {
	path := filepath.Join(t.TempDir(), "applyroll.pool")
	// A batch that never seals: MaxDelay far beyond the test, MaxBatch high.
	pool, eng := newTestEngine(t, path, Config{MaxBatch: 128, MaxDelay: time.Minute})

	if _, err := eng.PutPolicy([]byte("k"), []byte("v"), AckApply); err != nil {
		t.Fatalf("ack-on-apply put: %v", err)
	}
	// Acked and visible (read-your-writes) while its epoch is still open.
	if v, ok, err := eng.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("get after apply-ack: %q %v %v", v, ok, err)
	}
	if got := eng.Stats().AckedOnApply.Load(); got != 1 {
		t.Fatalf("acked-on-apply counter = %d, want 1", got)
	}
	if got := eng.Stats().AckedWrites.Load(); got != 0 {
		t.Fatalf("durable-acked counter = %d, want 0 (nothing committed)", got)
	}

	eng.Crash()
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	pool2, err := pax.OpenPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	kv, err := pax.NewMap(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := kv.Get([]byte("k")); ok {
		t.Fatal("apply-acked write survived a crash before its commit — the weaker contract should have rolled it back")
	}
}

// TestAckApplyDecouplesAckFromMedia: with a large modeled media latency, an
// ack-on-apply write returns without waiting for it while an ack-on-durable
// write must sit out the full commit.
func TestAckApplyDecouplesAckFromMedia(t *testing.T) {
	const lat = 50 * time.Millisecond
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 4, MaxDelay: 5 * time.Millisecond, CommitLatency: lat,
	})
	defer pool.Close()
	defer eng.Close()

	t0 := time.Now()
	if _, err := eng.PutPolicy([]byte("fast"), []byte("v"), AckApply); err != nil {
		t.Fatal(err)
	}
	applyAck := time.Since(t0)

	t0 = time.Now()
	if _, err := eng.PutPolicy([]byte("slow"), []byte("v"), AckDurable); err != nil {
		t.Fatal(err)
	}
	durableAck := time.Since(t0)

	if applyAck >= lat/2 {
		t.Fatalf("apply-ack took %v, want well under the %v media latency", applyAck, lat)
	}
	if durableAck < lat {
		t.Fatalf("durable ack returned in %v, before the %v media latency elapsed", durableAck, lat)
	}
	// Both writes commit regardless of how they were acked: a later durable
	// persist flushes the apply-acked mutation too.
	if ep, err := eng.Persist(); err != nil || ep == 0 {
		t.Fatalf("persist: %d %v", ep, err)
	}
}

// TestAckApplyPersistPolicy: an ack-on-apply PERSIST schedules the forced
// commit but reports the still-open epoch immediately; the commit itself
// still happens.
func TestAckApplyPersistPolicy(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 128, MaxDelay: time.Minute})
	defer pool.Close()

	if _, err := eng.PutPolicy([]byte("k"), []byte("v"), AckApply); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats().GroupCommits.Load()
	if _, err := eng.PersistPolicy(AckApply); err != nil {
		t.Fatalf("apply-acked persist: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Stats().GroupCommits.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("forced commit never ran after an apply-acked PERSIST")
		}
		time.Sleep(time.Millisecond)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}
