package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pax"
)

func smallOpts() pax.Options {
	return pax.Options{DataSize: 8 << 20, LogSize: 4 << 20, HBMSize: 256 << 10}
}

func newTestEngine(t *testing.T, path string, cfg Config) (*pax.Pool, *Engine) {
	t.Helper()
	pool, err := pax.MapPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(pool, 0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pool, eng
}

func TestEngineBasicOps(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	if _, err := eng.Put([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := eng.Get([]byte("k1"))
	if err != nil || !ok || string(v) != "v1" {
		t.Fatalf("get: %q %v %v", v, ok, err)
	}
	if _, _, err := eng.Get([]byte("missing")); err != nil {
		t.Fatal(err)
	}
	found, _, err := eng.Delete([]byte("k1"))
	if err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	found, _, err = eng.Delete([]byte("k1"))
	if err != nil || found {
		t.Fatalf("re-delete: %v %v", found, err)
	}
	epoch, err := eng.Persist()
	if err != nil || epoch == 0 {
		t.Fatalf("persist: %d %v", epoch, err)
	}
	text, err := eng.StatsText()
	if err != nil || !strings.Contains(text, "paxserve_acked_writes") || !strings.Contains(text, "pax_device_persists") {
		t.Fatalf("stats text: %v\n%s", err, text)
	}
}

// TestConcurrentPutsShareEpoch is the group-commit core claim: concurrent
// PUTs from many goroutines land in the same epoch and are acked by one
// snapshot.
func TestConcurrentPutsShareEpoch(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 64, MaxDelay: 500 * time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	const writers = 32
	epochs := make([]uint64, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ep, err := eng.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v"))
			if err != nil {
				t.Errorf("put %d: %v", i, err)
			}
			epochs[i] = ep
		}(i)
	}
	wg.Wait()
	for i := 1; i < writers; i++ {
		if epochs[i] != epochs[0] {
			t.Fatalf("writer %d committed in epoch %d, writer 0 in %d", i, epochs[i], epochs[0])
		}
	}
	if got := eng.Stats().GroupCommits.Load(); got != 1 {
		t.Fatalf("32 concurrent puts took %d group commits, want 1", got)
	}
	if got := eng.Stats().AckedWrites.Load(); got != writers {
		t.Fatalf("acked %d writes, want %d", got, writers)
	}
}

// TestCrashRecoversExactlyAckedWrites drives concurrent clients, crashes the
// engine mid-traffic (stop without persist, like the machine dying), and
// checks the §3.4 recovery contract at the serving layer: every acked write
// is present after reopening, every errored write is rolled back, nothing
// else exists.
func TestCrashRecoversExactlyAckedWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crash.pool")
	pool, eng := newTestEngine(t, path, Config{MaxBatch: 8, MaxDelay: time.Millisecond})

	const clients = 16
	type oplog struct {
		acked, errored []string
	}
	logs := make([]oplog, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; ; op++ {
				key := fmt.Sprintf("c%02d-op%04d", c, op)
				_, err := eng.Put([]byte(key), []byte("val-"+key))
				if err != nil {
					if !errors.Is(err, ErrClosed) && !errors.Is(err, ErrBusy) {
						t.Errorf("client %d: unexpected error %v", c, err)
					}
					logs[c].errored = append(logs[c].errored, key)
					return
				}
				logs[c].acked = append(logs[c].acked, key)
			}
		}(c)
	}
	time.Sleep(50 * time.Millisecond)
	eng.Crash()
	wg.Wait()
	if err := pool.Close(); err != nil { // crash-like close: no final persist
		t.Fatal(err)
	}

	pool2, err := pax.OpenPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	kv, err := pax.NewMap(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var totalAcked int
	for c := range logs {
		totalAcked += len(logs[c].acked)
		for _, key := range logs[c].acked {
			v, ok := kv.Get([]byte(key))
			if !ok {
				t.Fatalf("acked write %s lost after crash recovery", key)
			}
			if string(v) != "val-"+key {
				t.Fatalf("acked write %s recovered with value %q", key, v)
			}
		}
		for _, key := range logs[c].errored {
			if _, ok := kv.Get([]byte(key)); ok {
				t.Fatalf("unacked write %s survived the crash", key)
			}
		}
	}
	if totalAcked == 0 {
		t.Fatal("test crashed before any write was acked; raise the sleep")
	}
	if got := int(kv.Len()); got != totalAcked {
		t.Fatalf("recovered %d keys, want exactly the %d acked", got, totalAcked)
	}
	t.Logf("crash after %d acked writes; recovery kept all of them and dropped %d in-flight",
		totalAcked, func() (n int) {
			for c := range logs {
				n += len(logs[c].errored)
			}
			return
		}())
}

func TestEngineClosedAndBackpressureErrors(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 2, MaxDelay: time.Millisecond,
		QueueDepth: 2, EnqueueTimeout: time.Nanosecond,
	})
	defer pool.Close()

	const writers = 64
	var wg sync.WaitGroup
	var mu sync.Mutex
	busy := 0
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := eng.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
			if errors.Is(err, ErrBusy) {
				mu.Lock()
				busy++
				mu.Unlock()
			} else if err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	// Backpressure accounting must balance: every request either acked or
	// counted as a reject.
	acked := eng.Stats().AckedWrites.Load()
	rejects := eng.Stats().Rejects.Load()
	if acked+uint64(busy) != writers || rejects != uint64(busy) {
		t.Fatalf("acked %d + busy %d != %d (rejects counter %d)", acked, busy, writers, rejects)
	}

	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Put([]byte("late"), []byte("v")); !errors.Is(err, ErrClosed) {
		t.Fatalf("put after close: %v", err)
	}
	if _, _, err := eng.Get([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("get after close: %v", err)
	}
	// Close is idempotent, and Crash after Close is a no-op.
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	eng.Crash()
}

// TestCloseSealsOpenEpoch: graceful shutdown persists everything, so a
// reopen recovers the full final state with no rollback.
func TestCloseSealsOpenEpoch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seal.pool")
	pool, eng := newTestEngine(t, path, Config{MaxBatch: 64, MaxDelay: time.Millisecond})
	for i := 0; i < 20; i++ {
		if _, err := eng.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	pool2, err := pax.OpenPool(path, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer pool2.Close()
	if rb := pool2.Recovery().LinesRolledBack; rb != 0 {
		t.Fatalf("clean shutdown still rolled back %d lines", rb)
	}
	kv, err := pax.NewMap(pool2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if kv.Len() != 20 {
		t.Fatalf("recovered %d keys, want 20", kv.Len())
	}
}
