package server

import (
	"fmt"
	"os"

	"pax/internal/blackbox"
	"pax/internal/epochlog"
)

// This file is the inverse of Split: Merge drains one shard and shrinks the
// fleet by one, live. It reuses the per-slot cutover contract from migrate.go
// wholesale — every slot leaves the retiring shard under the same
// gate/barrier/copy/publish sequence a split uses — and adds exactly one new
// commit point: the publish of a slot map whose Shards count shrank.
//
// # Why the highest-numbered shard file is the one retired
//
// DiscoverShards requires <path>.shard-0..N-1 to be contiguous, so the only
// shard file that can be removed without breaking reopen is the top one.
// Merge therefore always retires shard N-1's file. When the chosen victim is
// not N-1, its slots first drain onto the destination, then shard N-1's
// slots relocate onto the now-empty victim index — each slot still moves
// under one ordinary cutover, and the file that disappears is the top one.
//
// # Crash windows (the merge crash contract, DESIGN.md)
//
//   - Crash mid-cutover: identical to a crashed split — the per-slot publish
//     is the commit point, open-time purge erases whichever side lost.
//   - Crash after the slots drained but before the shrunk map publishes: the
//     map still counts N shards; reopen finds N files, the top shard owns
//     zero slots, and the next Split adopts it (the documented
//     crashed-split leftover state).
//   - Crash after the shrunk map publishes but before the file is removed:
//     reopen finds N files and a map naming N-1 — legal, "fewer is fine" —
//     and openRoute records the extra zero-slot shard as adoptable. A later
//     Merge (or Split) converges it.
//   - Crash after the file is removed: a clean N-1 layout.
//
// Every acked write is on a routed shard in all four windows.

// mergeStage names the points where a test hook can abort a Merge to
// simulate a crash window.
type mergeStage int

const (
	// mergeStageDrained: every slot has left the retiring shard, the shrunk
	// map has not published.
	mergeStageDrained mergeStage = iota
	// mergeStagePublished: the shrunk map is on disk, the shard file is not
	// yet removed.
	mergeStagePublished
)

// MergeReport describes one completed Merge: which shard drained where, and
// what was retired.
type MergeReport struct {
	// Victim is the shard whose load was merged away; Dest received its
	// slots.
	Victim int `json:"victim"`
	Dest   int `json:"dest"`
	// Retired is the shard index whose file was removed — always the highest
	// index, the only one removable while the on-disk set stays contiguous.
	// When Victim != Retired, the retired shard's slots relocated onto the
	// drained victim index.
	Retired int `json:"retired"`
	// Shards is the fleet size after the merge.
	Shards int `json:"shards"`
	// MovedSlots counts the slot cutovers published (victim drain plus any
	// top-shard relocation); MovedKeys counts the keys copied.
	MovedSlots int `json:"moved_slots"`
	MovedKeys  int `json:"moved_keys"`
	// Seq is the slot map sequence number after the shrink published.
	Seq uint64 `json:"slotmap_seq"`
}

// Merge drains one shard and shrinks the fleet by one, live. victim names
// the shard to drain, or -1 to pick the shard with the least per-slot load
// (windowed when the autopilot runs, cumulative otherwise). Its slots cut
// over to the coldest surviving shard one at a time under the Split crash
// contract; the shrunk assignment then publishes (the commit point for the
// fleet shrink), the in-memory fleet shrinks, and the top shard's engine is
// closed and its file removed. A crash anywhere in between converges at next
// open — see the crash-window taxonomy at the top of this file.
//
// File-backed layouts cannot merge below 2 shards: a lone <path>.shard-0
// file is not the bare single-file layout, so a 1-shard reopen would look in
// the wrong place. In-memory fleets may merge down to 1.
//
// Concurrent per-key traffic is safe throughout (slots stall only while
// their own cutover runs). A concurrent fleet-wide Persist/Stats that
// sampled the old shard slice may race the retiring engine's close and
// report an error for it; per-key requests never can, because no published
// route references the retired shard by then.
func (s *ShardedEngine) Merge(victim int) (rep *MergeReport, err error) {
	s.migrateMu.Lock()
	defer s.migrateMu.Unlock()

	m := s.route.Load()
	shards := *s.shards.Load()
	n := len(shards)
	if n < 2 {
		return nil, fmt.Errorf("server: %d shard(s); nothing to merge", n)
	}
	if s.persistMap && n <= 2 {
		return nil, fmt.Errorf("server: cannot merge below 2 shards in a file-backed layout")
	}
	if victim < 0 {
		victim = s.coldestShard(m)
	}
	if victim >= n {
		return nil, fmt.Errorf("server: merge victim %d out of range (%d shards)", victim, n)
	}

	top := n - 1
	rep = &MergeReport{Victim: victim, Retired: top, Dest: -1, Shards: n}

	// The destination takes the victim's slots: the coldest shard that is
	// neither the victim nor the retiring top index (which must end empty).
	loads := s.shardLoads(m)
	for k := 0; k < n; k++ {
		if k == victim || (k == top && victim != top) {
			continue
		}
		if rep.Dest < 0 || loads[k] < loads[rep.Dest] {
			rep.Dest = k
		}
	}
	// Every exit after this point — success, abort, simulated crash — closes
	// the timeline with a done event; a journal holding merge_start with no
	// merge_done means the process died inside the merge, and the last stage
	// event names the crash window.
	s.events.emit(blackbox.EvMergeStart, -1, mergeDetail{Report: rep})
	defer func() {
		d := mergeDetail{Report: rep}
		if err != nil {
			d.Error = err.Error()
		}
		s.events.emit(blackbox.EvMergeDone, -1, d)
	}()

	drain := func(from, to int) error {
		moves := make(map[int]int)
		for _, slot := range s.route.Load().slotsOf(from) {
			moves[slot] = to
		}
		counts, err := s.migrateSlots(moves)
		rep.MovedSlots += len(counts)
		for _, c := range counts {
			rep.MovedKeys += c
		}
		return err
	}
	if err := drain(victim, rep.Dest); err != nil {
		rep.Seq = s.route.Load().Seq
		return rep, err
	}
	if victim != top {
		// Relocate the top shard's slots onto the drained victim index so the
		// top file — the only removable one — ends empty.
		if err := drain(top, victim); err != nil {
			rep.Seq = s.route.Load().Seq
			return rep, err
		}
	}
	// Stage event first, then the test hook: a simulated crash "after drain"
	// must still find the drained event in the journal.
	s.events.emit(blackbox.EvMergeDrained, -1, mergeDetail{Report: rep})
	if s.mergeHook != nil {
		if err := s.mergeHook(mergeStageDrained); err != nil {
			rep.Seq = s.route.Load().Seq
			return rep, err
		}
	}

	// Commit point for the shrink: publish an assignment that counts one
	// shard fewer. Nothing references the top index anymore, so the map
	// validates; once this rename lands, reopen treats any surviving top
	// shard file as an adoptable zero-slot leftover.
	next := s.route.Load().clone()
	next.Seq++
	next.Shards = top
	if s.persistMap {
		if err := next.Save(s.path); err != nil {
			rep.Seq = s.route.Load().Seq
			return rep, fmt.Errorf("server: publishing shrunk slot map: %w", err)
		}
	}
	s.route.Store(next)
	rep.Seq = next.Seq
	s.events.emit(blackbox.EvMergePublished, -1, mergeDetail{Report: rep})
	if s.mergeHook != nil {
		if err := s.mergeHook(mergeStagePublished); err != nil {
			return rep, err
		}
	}

	// Shrink the published fleet before touching the retiring engine: new
	// fan-outs (Persist/Stats/Metrics) load the short slice and never see it.
	rest := make([]shard, top)
	copy(rest, shards)
	s.shards.Store(&rest)
	rep.Shards = top

	// Retire: the engine holds no routed keys (only ack-on-apply cleanup
	// garbage), so a close failure here cannot lose acked state — log it and
	// keep going; the file removal is what reclaims the space either way.
	retired := shards[top]
	if err := retired.eng.Close(); err != nil {
		s.logf("server: merge: closing retired shard %d: %v", top, err)
	}
	if err := retired.pool.Close(); err != nil {
		s.logf("server: merge: closing retired shard %d pool: %v", top, err)
	}
	if s.path != "" {
		sp := ShardPath(s.path, n, top)
		if err := os.RemoveAll(sp + epochlog.DirSuffix); err != nil {
			s.logf("server: merge: removing retired shard %d epoch log: %v", top, err)
		}
		if err := os.Remove(sp); err != nil && !os.IsNotExist(err) {
			s.logf("server: merge: removing retired shard %d file: %v", top, err)
		}
		_ = os.Remove(sp + ".tmp")
	}
	s.reshard.merges.Add(1)
	s.logf("server: merge: shard %d drained to %d, shard %d retired (%d shards, %d slots, %d keys moved)",
		victim, rep.Dest, top, rep.Shards, rep.MovedSlots, rep.MovedKeys)
	return rep, nil
}

// coldestShard returns the least-loaded shard by the per-slot load signal
// (ties to the lowest index).
func (s *ShardedEngine) coldestShard(m *SlotMap) int {
	loads := s.shardLoads(m)
	best := 0
	for k := 1; k < len(loads); k++ {
		if loads[k] < loads[best] {
			best = k
		}
	}
	return best
}
