package server

import (
	"encoding/json"
	"sync"
	"time"
)

// This file is the structured-lifecycle-event plumbing for the crash black
// box (internal/blackbox): every interesting transition — seal, failed or
// slow commit, pipeline-stall onset, split/merge stages, autopilot decision
// — is emitted as an Event. Events land in a bounded in-memory ring (served
// inline by the EVENTS wire op, like TRACE, so a sealed engine still
// answers) and, when a sink is attached (AttachBlackbox), in the persistent
// journal.

// Event is one structured lifecycle event.
type Event struct {
	// Seq orders events within this process (assigned by the hub that
	// first saw the event); UnixNano is wall-clock time at emission.
	Seq      uint64 `json:"seq"`
	UnixNano int64  `json:"unix_nano"`
	// Type is one of the blackbox.Ev* record types.
	Type string `json:"type"`
	// Shard is the shard the event concerns; -1 for fleet-level events
	// (policy decisions, merges spanning shards).
	Shard int `json:"shard"`
	// Detail is the event's typed payload, JSON-encoded: the seal error,
	// the failed CommitRecord, the PolicyDecision, the split report.
	Detail json.RawMessage `json:"detail,omitempty"`
}

// EventsSnapshot is the EVENTS wire op's reply body.
type EventsSnapshot struct {
	// Events holds the most recent events, oldest first.
	Events []Event `json:"events"`
}

// eventRingDepth bounds the in-memory recent-events ring. Lifecycle events
// are rare; 256 comfortably spans an incident.
const eventRingDepth = 256

// eventHub is a bounded recent-events ring plus an optional forwarding sink.
// Engines own one each; the ShardedEngine owns the merged one and installs
// itself as each engine's sink (stamping the shard index), so the sharded
// hub sees every event in the fleet and the black-box journal hangs off it.
type eventHub struct {
	mu    sync.Mutex
	ring  []Event
	next  int
	count int
	seq   uint64
	sink  func(Event)
}

// emit builds an event (marshaling detail, which must not fail for the
// types we pass — a marshal error drops the detail, never the event) and
// publishes it to the ring and the sink.
func (h *eventHub) emit(typ string, shard int, detail any) {
	var blob json.RawMessage
	if detail != nil {
		if b, err := json.Marshal(detail); err == nil {
			blob = b
		}
	}
	h.publish(Event{
		UnixNano: time.Now().UnixNano(),
		Type:     typ,
		Shard:    shard,
		Detail:   blob,
	})
}

// publish stores a pre-built event (assigning its seq) and forwards it.
func (h *eventHub) publish(ev Event) {
	h.mu.Lock()
	h.seq++
	ev.Seq = h.seq
	if h.ring == nil {
		h.ring = make([]Event, eventRingDepth)
	}
	h.ring[h.next] = ev
	h.next = (h.next + 1) % len(h.ring)
	if h.count < len(h.ring) {
		h.count++
	}
	sink := h.sink
	h.mu.Unlock()
	if sink != nil {
		sink(ev)
	}
}

// setSink installs (or clears, with nil) the forwarding sink. Events emitted
// before the sink was installed stay in the ring only.
func (h *eventHub) setSink(fn func(Event)) {
	h.mu.Lock()
	h.sink = fn
	h.mu.Unlock()
}

// snapshot returns the ring's events, oldest first.
func (h *eventHub) snapshot() []Event {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Event, 0, h.count)
	start := h.next - h.count
	if start < 0 {
		start += len(h.ring)
	}
	for i := 0; i < h.count; i++ {
		out = append(out, h.ring[(start+i)%len(h.ring)])
	}
	return out
}

// errDetail is the generic {"error": ...} payload for failure events.
type errDetail struct {
	Error string `json:"error"`
}

// splitDetail / mergeDetail wrap the reshard reports for event payloads.
// Report is marshaled at emit time, so a start event carries the plan so
// far and a done event the final tally; Error is the abort cause when the
// operation failed partway.
type splitDetail struct {
	Report *SplitReport `json:"report"`
	Error  string       `json:"error,omitempty"`
}

type mergeDetail struct {
	Report *MergeReport `json:"report"`
	Error  string       `json:"error,omitempty"`
}

// stallDetail describes a pipeline-stall onset.
type stallDetail struct {
	// Depth is the number of sealed epochs in flight when the sealer hit
	// the run-ahead bound; Epoch is the epoch that had to wait.
	Depth int64  `json:"depth"`
	Epoch uint64 `json:"epoch"`
}
