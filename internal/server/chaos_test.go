package server

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pax"
	"pax/internal/pmem"
)

// This file is the durability-fault chaos harness: it sweeps injected media
// fault schedules (transient, persistent, mid-shutdown) over single and
// sharded engines and asserts the crash-consistency contract under failure:
// no acked write is ever lost, no panic escapes the persist path, a sealed
// shard takes down only its own keyspace, and health stays observable.

var errInjected = errors.New("injected EIO")

// device reaches the simulated media under an engine's pool.
func device(p *pax.Pool) *pmem.Device { return p.Internal().PM() }

func TestChaosTransientFaultRetriesAndAcks(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 4, MaxDelay: time.Millisecond, CommitRetryDelay: time.Millisecond})
	defer pool.Close()
	defer eng.Close()

	// The first two sync attempts fail, the third succeeds: inside the
	// default retry budget of 3, so the client must never see the fault.
	device(pool).SetFaultFn(pmem.FailSyncs(2, errInjected))
	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put through transient fault: %v", err)
	}
	if got := eng.Stats().CommitRetries.Load(); got != 2 {
		t.Fatalf("commit retries = %d, want 2", got)
	}
	if got := eng.Stats().CommitFailures.Load(); got != 0 {
		t.Fatalf("commit failures = %d, want 0", got)
	}
	if err := eng.SealErr(); err != nil {
		t.Fatalf("engine sealed by a transient fault: %v", err)
	}
	if v, ok, err := eng.Get([]byte("k")); err != nil || !ok || string(v) != "v" {
		t.Fatalf("get after retried commit: %q %v %v", v, ok, err)
	}
}

func TestChaosPersistentFaultSealsEngine(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 4, MaxDelay: time.Millisecond,
		CommitRetries: -1, // no retries: every fault is immediately persistent
	})
	defer pool.Close()

	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	_, err := eng.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrSealed) {
		t.Fatalf("put on failing media: %v, want ErrSealed", err)
	}
	// The engine is fail-stop now: reads and writes both refuse.
	if _, err := eng.Put([]byte("k2"), []byte("v2")); !errors.Is(err, ErrSealed) {
		t.Fatalf("put after seal: %v", err)
	}
	if _, _, err := eng.Get([]byte("k")); !errors.Is(err, ErrSealed) {
		t.Fatalf("get after seal: %v", err)
	}
	if got := eng.Stats().CommitFailures.Load(); got != 1 {
		t.Fatalf("commit failures = %d, want 1", got)
	}
	// Health stays observable: STATS works on a sealed engine.
	text, err := eng.StatsText()
	if err != nil {
		t.Fatalf("stats on sealed engine: %v", err)
	}
	if !strings.Contains(text, "paxserve_sealed 1") || !strings.Contains(text, "paxserve_commit_failures 1") {
		t.Fatalf("sealed stats missing failure gauges:\n%s", text)
	}
	if err := eng.Close(); !errors.Is(err, ErrSealed) {
		t.Fatalf("close of sealed engine = %v, want its seal error", err)
	}
}

// TestChaosShardIsolation is the headline failure-isolation scenario:
// persistent EIO on one shard of four must seal that shard only — the other
// three keep serving — and after a reopen every acked write is present.
func TestChaosShardIsolation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.pool")
	cfg := Config{MaxBatch: 8, MaxDelay: time.Millisecond, CommitRetries: -1}
	s := newSharded(t, path, 4, cfg)

	const keys = 64
	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%d", i)) }
	acked := make(map[string]string)

	// Phase 1: healthy writes across every shard; all must ack.
	for i := 0; i < keys; i++ {
		if _, err := s.Put(key(i), []byte("v1")); err != nil {
			t.Fatalf("healthy put %d: %v", i, err)
		}
		acked[string(key(i))] = "v1"
	}

	// Inject a persistent fault into shard 0's media only.
	const sick = 0
	device((*s.shards.Load())[sick].pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))

	// Phase 2: the sick shard's keyspace fails (never acks); every other
	// shard keeps acking.
	for i := 0; i < keys; i++ {
		_, err := s.Put(key(i), []byte("v2"))
		if owner := s.ShardFor(key(i)); owner == sick {
			if !errors.Is(err, ErrSealed) {
				t.Fatalf("put %d on sick shard: %v, want ErrSealed", i, err)
			}
			continue // not acked: v1 remains the durable truth for this key
		} else if err != nil {
			t.Fatalf("put %d on healthy shard %d failed: %v", i, owner, err)
		}
		acked[string(key(i))] = "v2"
	}

	// Healthy shards still serve reads; the sick shard refuses with its seal
	// error rather than serving possibly-rolled-back state.
	for i := 0; i < keys; i++ {
		v, ok, err := s.Get(key(i))
		if s.ShardFor(key(i)) == sick {
			if !errors.Is(err, ErrSealed) {
				t.Fatalf("get %d on sick shard: %v", i, err)
			}
			continue
		}
		if err != nil || !ok || string(v) != acked[string(key(i))] {
			t.Fatalf("get %d on healthy shard: %q %v %v", i, v, ok, err)
		}
	}

	// Exactly one shard reports sick in Health and in the merged metrics.
	health := s.Health()
	for k, err := range health {
		if k == sick && !errors.Is(err, ErrSealed) {
			t.Fatalf("health[%d] = %v, want ErrSealed", k, err)
		}
		if k != sick && err != nil {
			t.Fatalf("health[%d] = %v, want healthy", k, err)
		}
	}
	m, err := s.Metrics()
	if err != nil {
		t.Fatalf("metrics with a sealed shard: %v", err)
	}
	if m["paxserve_sealed"] != 1 {
		t.Fatalf("paxserve_sealed sum = %v, want 1", m["paxserve_sealed"])
	}
	if m[fmt.Sprintf("paxserve_sealed{shard=%q}", fmt.Sprint(sick))] != 1 {
		t.Fatalf("sick shard gauge missing in %v", m)
	}

	// A degraded shutdown is not clean.
	if err := s.Close(); !errors.Is(err, ErrSealed) {
		t.Fatalf("close of degraded sharded engine = %v, want ErrSealed", err)
	}

	// Reopen (the media fault does not survive the "repair"): every acked
	// write must be there, including the sick shard's phase-1 acks.
	reopened := newSharded(t, path, 4, cfg)
	defer reopened.Close()
	for i := 0; i < keys; i++ {
		v, ok, err := reopened.Get(key(i))
		want := acked[string(key(i))]
		if err != nil || !ok || string(v) != want {
			t.Fatalf("acked write lost: key %d = %q (ok=%v err=%v), want %q", i, v, ok, err, want)
		}
	}
}

// TestChaosCloseRacesFailingCommit drives concurrent writers into an engine
// whose media is failing while Close runs: nothing may panic or deadlock,
// no write may ack, and Close must surface the seal.
func TestChaosCloseRacesFailingCommit(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{
		MaxBatch: 4, MaxDelay: 100 * time.Microsecond,
		CommitRetries: -1,
	})
	defer pool.Close()

	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := eng.Put([]byte(fmt.Sprintf("w%d-%d", w, i)), []byte("v")); err == nil {
					t.Errorf("writer %d: put %d acked on failing media", w, i)
					return
				}
			}
		}(w)
	}
	time.Sleep(time.Millisecond) // let writers collide with the seal
	if err := eng.Close(); !errors.Is(err, ErrSealed) {
		t.Errorf("close racing failing commits = %v, want ErrSealed", err)
	}
	wg.Wait()
}

// TestChaosCloseSurfacesFinalCommitFailure injects the fault after the last
// ack: the shutdown epoch-seal itself fails, and Close must say so instead
// of reporting a clean shutdown.
func TestChaosCloseSurfacesFinalCommitFailure(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 4, MaxDelay: time.Millisecond, CommitRetries: -1})
	defer pool.Close()

	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	device(pool).SetFaultFn(pmem.FailSyncsAfter(0, errInjected))
	if err := eng.Close(); !errors.Is(err, ErrSealed) {
		t.Fatalf("close with failing final commit = %v, want ErrSealed", err)
	}
}

// TestShutdownCommitAccounting: the graceful-shutdown epoch seal runs through
// the normal commit path, so it shows up in the group-commit counters instead
// of bypassing them.
func TestShutdownCommitAccounting(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	defer pool.Close()

	if _, err := eng.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := eng.Stats().GroupCommits.Load()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if got := eng.Stats().GroupCommits.Load(); got != before+1 {
		t.Fatalf("group commits after shutdown = %d, want %d (shutdown seal counted)", got, before+1)
	}
}

// TestOpenShardedPartialFailure: when one shard cannot open, OpenSharded
// fails as a whole, already-opened shards are torn down, and a later open
// succeeds once the obstruction is gone.
func TestOpenShardedPartialFailure(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.pool")
	// A directory where shard 2's pool file must go makes that one shard
	// unopenable.
	if err := os.Mkdir(ShardPath(path, 4, 2), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSharded(path, 4, smallOpts(), 0, Config{}); err == nil {
		t.Fatal("partial open succeeded with an unopenable shard")
	}
	if err := os.Remove(ShardPath(path, 4, 2)); err != nil {
		t.Fatal(err)
	}
	s := newSharded(t, path, 4, Config{MaxBatch: 4, MaxDelay: time.Millisecond})
	if _, err := s.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("put after recovered open: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
