package server

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"testing"
)

func TestSlotForRangeAndDeterminism(t *testing.T) {
	seen := make(map[int]int)
	for i := 0; i < 20_000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		s := SlotFor(key)
		if s < 0 || s >= NumSlots {
			t.Fatalf("SlotFor(%q) = %d, out of [0,%d)", key, s, NumSlots)
		}
		if again := SlotFor(key); again != s {
			t.Fatalf("SlotFor(%q) not deterministic: %d then %d", key, s, again)
		}
		seen[s]++
	}
	// FNV over a realistic keyspace should touch every slot; an unhit slot
	// means the hash or the modulus is wrong.
	if len(seen) != NumSlots {
		t.Fatalf("20k keys hit only %d/%d slots", len(seen), NumSlots)
	}
}

// The slot hash must be FNV-1a — the same hash the pre-slot-map router used —
// so DefaultSlotMap(n) with n dividing NumSlots reproduces the legacy
// FNV-mod-n routing exactly and power-of-two layouts adopt with zero
// movement.
func TestSlotForMatchesLegacyFNVRouting(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		m := DefaultSlotMap(n)
		for i := 0; i < 2_000; i++ {
			key := []byte(fmt.Sprintf("legacy-%d", i))
			h := fnv.New64a()
			h.Write(key)
			legacy := int(h.Sum64() % uint64(n))
			if got := int(m.Assign[SlotFor(key)]); got != legacy {
				t.Fatalf("n=%d key %q: slot route %d, legacy FNV-mod route %d", n, key, got, legacy)
			}
		}
	}
}

func TestSlotMapSaveLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.pool")

	m := DefaultSlotMap(3)
	m.Seq = 17
	m.Assign[9] = 2
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSlotMap(path)
	if err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("LoadSlotMap returned nil for a saved map")
	}
	if got.Seq != 17 || got.Shards != 3 || got.Assign != m.Assign {
		t.Fatalf("roundtrip mismatch: %+v", got)
	}

	// No file is not an error — it is the legacy layout.
	if m2, err := LoadSlotMap(filepath.Join(dir, "absent.pool")); m2 != nil || err != nil {
		t.Fatalf("missing slot map: %+v %v", m2, err)
	}

	// Corruption and invalid contents are refused, not guessed at.
	if err := os.WriteFile(SlotMapPath(path), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSlotMap(path); err == nil {
		t.Fatal("corrupt slot map accepted")
	}
	bad := DefaultSlotMap(2)
	bad.Assign[0] = 7 // points past Shards
	if err := bad.Save(path); err == nil {
		t.Fatal("Save accepted an assignment past the shard count")
	}
}

// A saved slot map must survive a process restart bit-for-bit: the key→shard
// route is a pure function of the persisted assignment, never of the open
// order or shard-count flag.
func TestSlotMapRouteStableAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	pool := filepath.Join(dir, "kv.pool")
	eng := newShardedDelta(t, pool, 3, Config{MaxBatch: 8, MaxDelay: 0})

	route := make(map[string]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("stable-%04d", i)
		route[key] = eng.ShardFor([]byte(key))
		if _, err := eng.Put([]byte(key), []byte(key)); err != nil {
			t.Fatal(err)
		}
	}
	seq := eng.Route().Seq
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	re := newShardedDelta(t, pool, 3, Config{})
	defer re.Close()
	if got := re.Route().Seq; got != seq {
		t.Fatalf("slot map seq changed across reopen: %d -> %d", seq, got)
	}
	for key, shard := range route {
		if got := re.ShardFor([]byte(key)); got != shard {
			t.Fatalf("key %s rerouted %d -> %d across reopen", key, shard, got)
		}
	}
}
