package server

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestLoadgenAmortization is the acceptance bar for the serving subsystem:
// ≥64 concurrent clients drive the engine and the group-commit layer turns
// their individually-acked durable writes into far fewer snapshots.
func TestLoadgenAmortization(t *testing.T) {
	pool, eng := newTestEngine(t, "", Config{MaxBatch: 64, MaxDelay: 2 * time.Millisecond})
	defer pool.Close()

	const (
		clients      = 64
		opsPerClient = 20
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; op < opsPerClient; op++ {
				key := []byte(fmt.Sprintf("c%02d-%04d", c, op))
				if _, err := eng.Put(key, key); err != nil {
					t.Errorf("client %d op %d: %v", c, op, err)
					return
				}
				if op%4 == 3 { // mixed traffic: reads ride the same queue
					if _, ok, err := eng.Get(key); err != nil || !ok {
						t.Errorf("client %d read-back %s: ok=%v err=%v", c, key, ok, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	acked := eng.Stats().AckedWrites.Load()
	commits := eng.Stats().GroupCommits.Load()
	if acked != clients*opsPerClient {
		t.Fatalf("acked %d writes, want %d", acked, clients*opsPerClient)
	}
	if commits == 0 {
		t.Fatal("no group commits recorded")
	}
	// The whole point: persist count « acked-write count. Even with hostile
	// scheduling, 64 always-pending clients must average well above 4
	// writes per snapshot.
	if amort := float64(acked) / float64(commits); amort < 4 {
		t.Fatalf("amortization %.1f writes/commit (acked %d, commits %d): group commit is not batching",
			amort, acked, commits)
	} else {
		t.Logf("%d clients: %d acked writes over %d group commits = %.1f writes/snapshot (max batch %d)",
			clients, acked, commits, amort, eng.Stats().BatchMax.Load())
	}
}
