package cxl

import "fmt"

// This file implements the paper's "adapter" layer (§4): the Enzian
// prototype observes ThunderX-1 native coherence messages, which are lower
// level and microarchitecture-specific; an adapter at the FPGA filters and
// translates them into CXL.cache semantics so the PAX device logic is
// portable to commodity CXL hardware unchanged. The software prototype (Pin)
// uses the same adapter so both paths exercise identical device code.

// NativeOp is a ThunderX/ECI-style native coherence message kind — a
// deliberately lower-level vocabulary than CXL.cache, including messages CXL
// never exposes (which the adapter must filter out).
type NativeOp uint8

const (
	// NativeInvalid is the zero value.
	NativeInvalid NativeOp = iota
	// NativeLoadShared: a core's read miss reached the coherence bus.
	NativeLoadShared
	// NativeLoadExclusive: a core's write miss (read line + ownership).
	NativeLoadExclusive
	// NativeUpgrade: a core upgrades a Shared line for writing.
	NativeUpgrade
	// NativeVictimClean: clean line victimized from the host hierarchy.
	NativeVictimClean
	// NativeVictimDirty: dirty line victimized, payload attached.
	NativeVictimDirty
	// NativeSnoopShared: home requests downgrade-to-Shared with data.
	NativeSnoopShared
	// NativeSnoopInvalidate: home requests invalidation.
	NativeSnoopInvalidate
	// NativePrefetchHint: microarchitectural prefetch probe. CXL.cache has
	// no equivalent; the adapter filters it.
	NativePrefetchHint
	// NativeBarrier: interconnect ordering token, host-internal only;
	// filtered.
	NativeBarrier
)

var nativeNames = map[NativeOp]string{
	NativeInvalid:         "NativeInvalid",
	NativeLoadShared:      "LoadShared",
	NativeLoadExclusive:   "LoadExclusive",
	NativeUpgrade:         "Upgrade",
	NativeVictimClean:     "VictimClean",
	NativeVictimDirty:     "VictimDirty",
	NativeSnoopShared:     "SnoopShared",
	NativeSnoopInvalidate: "SnoopInvalidate",
	NativePrefetchHint:    "PrefetchHint",
	NativeBarrier:         "Barrier",
}

// String names the native op.
func (o NativeOp) String() string {
	if s, ok := nativeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("NativeOp(%d)", uint8(o))
}

// NativeMessage is one message as observed on the native coherence bus.
type NativeMessage struct {
	Op   NativeOp
	Addr uint64
	Data []byte
}

// Adapter translates native coherence messages into CXL.cache messages. It
// is stateless: translation is a pure per-message mapping plus filtering,
// which is what makes the device logic portable.
type Adapter struct {
	// Filtered counts native messages with no CXL equivalent that were
	// dropped rather than forwarded.
	Filtered uint64
	// Translated counts successfully translated messages.
	Translated uint64
}

// ErrFiltered is returned (wrapped) for native messages that have no CXL
// equivalent and must not reach the device.
var ErrFiltered = fmt.Errorf("cxl: native message filtered (no CXL equivalent)")

// Translate maps a native message to its CXL.cache equivalent. Messages with
// no equivalent return ErrFiltered; malformed messages return a detailed
// error.
func (a *Adapter) Translate(n NativeMessage) (Message, error) {
	if n.Addr%DataBytes != 0 {
		return Message{}, fmt.Errorf("cxl: native %v address %#x not line-aligned", n.Op, n.Addr)
	}
	var op Opcode
	switch n.Op {
	case NativeLoadShared:
		op = RdShared
	case NativeLoadExclusive:
		op = RdOwn
	case NativeUpgrade:
		op = ItoMWr
	case NativeVictimClean:
		op = CleanEvict
	case NativeVictimDirty:
		op = DirtyEvict
	case NativeSnoopShared:
		op = SnpData
	case NativeSnoopInvalidate:
		op = SnpInv
	case NativePrefetchHint, NativeBarrier:
		a.Filtered++
		return Message{}, fmt.Errorf("%w: %v", ErrFiltered, n.Op)
	default:
		return Message{}, fmt.Errorf("cxl: unknown native op %v", n.Op)
	}
	m := Message{Op: op, Addr: n.Addr}
	if op.CarriesData() {
		if len(n.Data) != DataBytes {
			return Message{}, fmt.Errorf("cxl: native %v carries %d bytes, want %d", n.Op, len(n.Data), DataBytes)
		}
		m.Data = n.Data
	} else if len(n.Data) != 0 {
		// Native protocols attach speculative payloads in places CXL does
		// not; the adapter strips them.
		m.Data = nil
	}
	if err := m.Validate(); err != nil {
		return Message{}, err
	}
	a.Translated++
	return m, nil
}

// TranslateBatch translates a native message stream, silently dropping
// filtered messages and stopping at the first malformed one.
func (a *Adapter) TranslateBatch(ns []NativeMessage) ([]Message, error) {
	out := make([]Message, 0, len(ns))
	for _, n := range ns {
		m, err := a.Translate(n)
		switch {
		case err == nil:
			out = append(out, m)
		case isFiltered(err):
			continue
		default:
			return out, err
		}
	}
	return out, nil
}

func isFiltered(err error) bool {
	for err != nil {
		if err == ErrFiltered {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
