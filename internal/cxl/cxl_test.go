package cxl

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"pax/internal/sim"
)

func TestOpcodeDirections(t *testing.T) {
	h2d := []Opcode{RdShared, RdOwn, ItoMWr, CleanEvict, DirtyEvict, RspData, RspMiss}
	d2h := []Opcode{SnpData, SnpInv, GO}
	for _, o := range h2d {
		if !o.IsH2D() || o.IsD2H() {
			t.Errorf("%v direction wrong", o)
		}
	}
	for _, o := range d2h {
		if !o.IsD2H() || o.IsH2D() {
			t.Errorf("%v direction wrong", o)
		}
	}
	if OpInvalid.IsH2D() || OpInvalid.IsD2H() {
		t.Error("OpInvalid has a direction")
	}
}

func TestOpcodePayloads(t *testing.T) {
	withData := []Opcode{DirtyEvict, RspData, GO}
	for _, o := range withData {
		if !o.CarriesData() {
			t.Errorf("%v must carry data", o)
		}
	}
	for _, o := range []Opcode{RdShared, RdOwn, ItoMWr, CleanEvict, SnpData, SnpInv, RspMiss} {
		if o.CarriesData() {
			t.Errorf("%v must not carry data", o)
		}
	}
}

func TestMessageValidateAndWireBytes(t *testing.T) {
	ok := Message{Op: RdOwn, Addr: 128}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	if ok.WireBytes() != HeaderBytes {
		t.Fatalf("WireBytes = %d", ok.WireBytes())
	}
	data := Message{Op: DirtyEvict, Addr: 64, Data: make([]byte, 64)}
	if err := data.Validate(); err != nil {
		t.Fatal(err)
	}
	if data.WireBytes() != HeaderBytes+DataBytes {
		t.Fatalf("WireBytes = %d", data.WireBytes())
	}
	bad := []Message{
		{Op: RdOwn, Addr: 3},                             // misaligned
		{Op: DirtyEvict, Addr: 0, Data: make([]byte, 8)}, // short payload
		{Op: RdShared, Addr: 0, Data: make([]byte, 64)},  // unexpected payload
		{Op: OpInvalid, Addr: 0},                         // no direction
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("message %v validated", m)
		}
	}
	if !strings.Contains(data.String(), "DirtyEvict") {
		t.Fatalf("String() = %q", data.String())
	}
}

func TestLinkLatencyAndSerialization(t *testing.T) {
	l := NewLink(sim.CXLLink)
	m := Message{Op: RdOwn, Addr: 0}
	arrive := l.ToDevice(m, 0)
	// Header transfer at 63 GB/s is sub-ns; latency dominates.
	if arrive < sim.CXLLink.Latency || arrive > sim.CXLLink.Latency+sim.NS(2) {
		t.Fatalf("arrival %v, want ~%v", arrive, sim.CXLLink.Latency)
	}
	if l.Messages.Load() != 1 || l.H2DMessages.Load() != 1 {
		t.Fatal("message counters wrong")
	}
	resp := Message{Op: GO, Addr: 0, Data: make([]byte, 64)}
	back := l.ToHost(resp, arrive)
	if back <= arrive {
		t.Fatal("response arrived before request")
	}
	if l.H2DMessages.Load() != 1 {
		t.Fatal("D2H message counted as H2D")
	}
}

func TestLinkPipelineBottleneck(t *testing.T) {
	l := NewLink(sim.EnzianLink)
	// Saturate the 300 MHz pipeline: messages arriving faster than one per
	// cycle must queue.
	var last sim.Time
	for i := 0; i < 1000; i++ {
		last = l.DeviceProcess(0)
	}
	cycle := sim.Time(float64(sim.Second) / sim.EnzianLink.DeviceHz)
	wantMin := 999 * cycle
	if last < wantMin {
		t.Fatalf("1000 msgs done at %v, want ≥ %v", last, wantMin)
	}
	if l.PipelineServed() != 1000 {
		t.Fatalf("pipeline served %d", l.PipelineServed())
	}
	// An ASIC-class CXL pipeline must be much faster.
	fast := NewLink(sim.CXLLink)
	var fastLast sim.Time
	for i := 0; i < 1000; i++ {
		fastLast = fast.DeviceProcess(0)
	}
	if fastLast >= last {
		t.Fatal("CXL pipeline not faster than Enzian pipeline")
	}
}

func TestRequestResponseRoundTrip(t *testing.T) {
	l := NewLink(sim.CXLLink)
	done := l.RequestResponse(Message{Op: RdOwn, Addr: 0}, 0, true)
	if done < sim.CXLLink.RoundTrip() {
		t.Fatalf("round trip %v < link RTT %v", done, sim.CXLLink.RoundTrip())
	}
	l.ResetStats()
	if l.Messages.Load() != 0 || l.PipelineServed() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestAdapterTranslations(t *testing.T) {
	var a Adapter
	cases := []struct {
		in   NativeOp
		want Opcode
		data bool
	}{
		{NativeLoadShared, RdShared, false},
		{NativeLoadExclusive, RdOwn, false},
		{NativeUpgrade, ItoMWr, false},
		{NativeVictimClean, CleanEvict, false},
		{NativeVictimDirty, DirtyEvict, true},
		{NativeSnoopShared, SnpData, false},
		{NativeSnoopInvalidate, SnpInv, false},
	}
	for _, c := range cases {
		n := NativeMessage{Op: c.in, Addr: 192}
		if c.data {
			n.Data = make([]byte, 64)
		}
		m, err := a.Translate(n)
		if err != nil {
			t.Fatalf("%v: %v", c.in, err)
		}
		if m.Op != c.want {
			t.Errorf("%v → %v, want %v", c.in, m.Op, c.want)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%v: translated message invalid: %v", c.in, err)
		}
	}
	if a.Translated != uint64(len(cases)) {
		t.Fatalf("translated = %d", a.Translated)
	}
}

func TestAdapterFiltersMicroarchMessages(t *testing.T) {
	var a Adapter
	for _, op := range []NativeOp{NativePrefetchHint, NativeBarrier} {
		_, err := a.Translate(NativeMessage{Op: op, Addr: 0})
		if !errors.Is(err, ErrFiltered) {
			t.Errorf("%v: err = %v, want ErrFiltered", op, err)
		}
	}
	if a.Filtered != 2 {
		t.Fatalf("filtered = %d", a.Filtered)
	}
}

func TestAdapterRejectsMalformed(t *testing.T) {
	var a Adapter
	if _, err := a.Translate(NativeMessage{Op: NativeLoadShared, Addr: 7}); err == nil {
		t.Error("misaligned address accepted")
	}
	if _, err := a.Translate(NativeMessage{Op: NativeVictimDirty, Addr: 0, Data: make([]byte, 8)}); err == nil {
		t.Error("short payload accepted")
	}
	if _, err := a.Translate(NativeMessage{Op: NativeOp(99), Addr: 0}); err == nil {
		t.Error("unknown op accepted")
	}
	// Stray payloads on non-data messages are stripped, not rejected.
	m, err := a.Translate(NativeMessage{Op: NativeLoadShared, Addr: 0, Data: make([]byte, 64)})
	if err != nil || m.Data != nil {
		t.Errorf("stray payload not stripped: %v %v", m, err)
	}
}

func TestAdapterBatch(t *testing.T) {
	var a Adapter
	msgs := []NativeMessage{
		{Op: NativeLoadShared, Addr: 0},
		{Op: NativePrefetchHint, Addr: 64}, // filtered
		{Op: NativeUpgrade, Addr: 128},
	}
	out, err := a.TranslateBatch(msgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Op != RdShared || out[1].Op != ItoMWr {
		t.Fatalf("batch = %v", out)
	}
	// A malformed message stops the batch with an error.
	msgs = append(msgs, NativeMessage{Op: NativeLoadShared, Addr: 5})
	if _, err := a.TranslateBatch(msgs); err == nil {
		t.Fatal("malformed message accepted in batch")
	}
}

// Property: every translated message validates, and translation never
// produces a D2H opcode from a host-originated native request.
func TestAdapterProperty(t *testing.T) {
	hostOps := []NativeOp{NativeLoadShared, NativeLoadExclusive, NativeUpgrade, NativeVictimClean, NativeVictimDirty}
	f := func(opIdx uint8, lineIdx uint16) bool {
		var a Adapter
		op := hostOps[int(opIdx)%len(hostOps)]
		n := NativeMessage{Op: op, Addr: uint64(lineIdx) * 64}
		if op == NativeVictimDirty {
			n.Data = make([]byte, 64)
		}
		m, err := a.Translate(n)
		if err != nil {
			return false
		}
		return m.Validate() == nil && m.Op.IsH2D()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
