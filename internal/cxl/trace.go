package cxl

import (
	"fmt"
	"strings"

	"pax/internal/sim"
)

// Direction labels which way a traced message traveled.
type Direction uint8

// Message directions.
const (
	H2D Direction = iota // host → device
	D2H                  // device → host
)

// String names the direction.
func (d Direction) String() string {
	if d == H2D {
		return "H2D"
	}
	return "D2H"
}

// TraceEvent is one recorded message.
type TraceEvent struct {
	Seq int64 // global sequence number, starts at 0
	Dir Direction
	Msg Message
	At  sim.Time // send time
}

// String renders one event, e.g. "#42 12.5us H2D RdOwn{addr=0x1040}".
func (e TraceEvent) String() string {
	return fmt.Sprintf("#%d %v %v %v", e.Seq, e.At, e.Dir, e.Msg)
}

// Tracer is a bounded ring of recent link messages, attachable to a Link for
// debugging and protocol tests. Data payloads are not retained (only sizes
// matter for tracing), keeping the ring cheap.
type Tracer struct {
	ring  []TraceEvent
	next  int
	total int64
}

// NewTracer builds a tracer retaining the most recent capacity messages.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("cxl: tracer capacity must be positive")
	}
	return &Tracer{ring: make([]TraceEvent, 0, capacity)}
}

func (t *Tracer) record(dir Direction, m Message, at sim.Time) {
	// Drop the payload; keep the shape.
	ev := TraceEvent{Seq: t.total, Dir: dir, Msg: Message{Op: m.Op, Addr: m.Addr}, At: at}
	t.total++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % cap(t.ring)
}

// Total reports how many messages were ever recorded.
func (t *Tracer) Total() int64 { return t.total }

// Events returns the retained messages, oldest first.
func (t *Tracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(t.ring))
	if len(t.ring) < cap(t.ring) {
		return append(out, t.ring...)
	}
	out = append(out, t.ring[t.next:]...)
	return append(out, t.ring[:t.next]...)
}

// Dump renders the retained messages one per line.
func (t *Tracer) Dump() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CountByOp tallies retained messages per opcode — protocol tests assert on
// these (e.g. "one ItoMWr per first store per epoch").
func (t *Tracer) CountByOp() map[Opcode]int {
	out := make(map[Opcode]int)
	for _, e := range t.Events() {
		out[e.Msg.Op]++
	}
	return out
}

// AttachTracer installs tr on the link; pass nil to detach.
func (l *Link) AttachTracer(tr *Tracer) { l.tracer = tr }

// Tracer returns the attached tracer, if any.
func (l *Link) Tracer() *Tracer { return l.tracer }
