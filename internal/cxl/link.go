package cxl

import (
	"pax/internal/sim"
	"pax/internal/stats"
)

// Link models the host↔device transport: a fixed per-direction message
// latency, per-direction payload bandwidth, and the device-side message
// pipeline that the paper identifies as the Enzian prototype's bottleneck
// (§5.1: a 300 MHz FPGA must respond to a coherence message on nearly every
// cycle to keep up with host LLC miss rates).
type Link struct {
	prof sim.LinkProfile

	h2d      *sim.BandwidthMeter
	d2h      *sim.BandwidthMeter
	pipeline *sim.Pipeline
	tracer   *Tracer

	// Messages counts every message carried in either direction.
	Messages stats.Counter
	// H2DMessages counts host-to-device traffic only (the device's inbound
	// message rate, which the pipeline must sustain).
	H2DMessages stats.Counter
}

// NewLink builds a link from a profile.
func NewLink(prof sim.LinkProfile) *Link {
	return &Link{
		prof:     prof,
		h2d:      sim.NewBandwidthMeter(prof.Name+"-h2d", prof.Bandwidth),
		d2h:      sim.NewBandwidthMeter(prof.Name+"-d2h", prof.Bandwidth),
		pipeline: sim.NewPipeline(prof.Name+"-pipe", prof.DeviceHz, prof.PipelineDepth),
	}
}

// Profile reports the link's configuration.
func (l *Link) Profile() sim.LinkProfile { return l.prof }

// ToDevice carries a host→device message sent at `at` and returns its arrival
// time at the device, after link latency and payload serialization.
func (l *Link) ToDevice(m Message, at sim.Time) sim.Time {
	l.Messages.Inc()
	l.H2DMessages.Inc()
	if l.tracer != nil {
		l.tracer.record(H2D, m, at)
	}
	return l.h2d.Transfer(at, m.WireBytes()) + l.prof.Latency
}

// ToHost carries a device→host message sent at `at` and returns its arrival
// time at the host.
func (l *Link) ToHost(m Message, at sim.Time) sim.Time {
	l.Messages.Inc()
	if l.tracer != nil {
		l.tracer.record(D2H, m, at)
	}
	return l.d2h.Transfer(at, m.WireBytes()) + l.prof.Latency
}

// DeviceProcess runs one message through the device's coherence pipeline,
// returning when the device has produced its response or side effect.
func (l *Link) DeviceProcess(arrive sim.Time) sim.Time {
	return l.pipeline.Serve(arrive)
}

// RequestResponse is the common full round trip for a host request: send the
// request, process it at the device, return the response. respPayload sets
// whether the response carries line data.
func (l *Link) RequestResponse(req Message, at sim.Time, respPayload bool) sim.Time {
	arrive := l.ToDevice(req, at)
	done := l.DeviceProcess(arrive)
	resp := Message{Op: GO, Addr: req.Addr}
	if respPayload {
		resp.Data = make([]byte, DataBytes)
	}
	return l.ToHost(resp, done)
}

// PipelineRate reports the device's peak message rate (messages/second).
func (l *Link) PipelineRate() float64 { return l.pipeline.Rate() }

// PipelineServed reports how many messages entered the device pipeline.
func (l *Link) PipelineServed() uint64 { return l.pipeline.Served() }

// H2DBandwidth exposes the host→device payload channel for utilization
// reporting in the bandwidth experiments.
func (l *Link) H2DBandwidth() *sim.BandwidthMeter { return l.h2d }

// D2HBandwidth exposes the device→host payload channel.
func (l *Link) D2HBandwidth() *sim.BandwidthMeter { return l.d2h }

// ResetStats clears counters and channel state.
func (l *Link) ResetStats() {
	l.Messages.Reset()
	l.H2DMessages.Reset()
	l.h2d.Reset()
	l.d2h.Reset()
	l.pipeline.Reset()
}
