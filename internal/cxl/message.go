// Package cxl models the transport between the host CPU and a cache-coherent
// accelerator: a CXL.cache-style message vocabulary, a latency/bandwidth link
// model with a device-side message pipeline, and the adapter layer the paper
// (§4) describes for translating a native coherence protocol (Enzian's
// ThunderX-1 messages) into CXL semantics.
package cxl

import "fmt"

// Opcode is a CXL.cache message opcode. The set is the practical subset PAX
// needs: host-to-device (H2D) requests for line ownership and eviction, and
// device-to-host (D2H) snoops, plus the response opcodes.
type Opcode uint8

const (
	// OpInvalid is the zero value; sending it is a bug.
	OpInvalid Opcode = iota

	// H2D requests (the host CPU's cache home agent → device home).

	// RdShared requests a line for reading; the device may grant Shared.
	RdShared
	// RdOwn requests a line for modification (read-for-ownership); granting
	// it tells the device the host will produce a new value (the undo-log
	// trigger).
	RdOwn
	// ItoMWr requests ownership of a line the host already holds Shared
	// (upgrade without data transfer); also an undo-log trigger.
	ItoMWr
	// CleanEvict notifies the device that the host dropped a clean line.
	CleanEvict
	// DirtyEvict writes a modified line back to the device.
	DirtyEvict

	// D2H requests (device → host CPU).

	// SnpData asks the host to downgrade a line to Shared and forward the
	// current value (issued for every epoch-modified line at persist()).
	SnpData
	// SnpInv asks the host to drop a line entirely.
	SnpInv

	// Responses.

	// GO grants ownership or data to the host (device → host response).
	GO
	// RspData carries line data from host to device after a snoop.
	RspData
	// RspMiss reports the host no longer holds a snooped line.
	RspMiss

	// CfgWr is an MMIO doorbell write (CXL.io): the host posting a command
	// (e.g. "persist epoch now") to a device register. Not a coherence
	// message; carried here because it shares the physical link.
	CfgWr
)

var opcodeNames = map[Opcode]string{
	OpInvalid:  "OpInvalid",
	RdShared:   "RdShared",
	RdOwn:      "RdOwn",
	ItoMWr:     "ItoMWr",
	CleanEvict: "CleanEvict",
	DirtyEvict: "DirtyEvict",
	SnpData:    "SnpData",
	SnpInv:     "SnpInv",
	GO:         "GO",
	RspData:    "RspData",
	RspMiss:    "RspMiss",
	CfgWr:      "CfgWr",
}

// String returns the CXL spelling of the opcode.
func (o Opcode) String() string {
	if s, ok := opcodeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", uint8(o))
}

// IsH2D reports whether the opcode travels host→device.
func (o Opcode) IsH2D() bool {
	switch o {
	case RdShared, RdOwn, ItoMWr, CleanEvict, DirtyEvict, RspData, RspMiss, CfgWr:
		return true
	}
	return false
}

// IsD2H reports whether the opcode travels device→host.
func (o Opcode) IsD2H() bool {
	switch o {
	case SnpData, SnpInv, GO:
		return true
	}
	return false
}

// CarriesData reports whether the message includes a 64-byte line payload.
func (o Opcode) CarriesData() bool {
	switch o {
	case DirtyEvict, RspData, GO:
		return true
	}
	return false
}

// Message sizes on the wire, used for bandwidth accounting: CXL.cache slots
// are 16-byte granules; a header is one slot, a data payload is a full line.
const (
	HeaderBytes = 16
	DataBytes   = 64
)

// Message is one CXL.cache message.
type Message struct {
	Op   Opcode
	Addr uint64 // line-aligned
	Data []byte // present iff Op.CarriesData()
}

// WireBytes reports the message's size on the link.
func (m Message) WireBytes() int {
	n := HeaderBytes
	if m.Op.CarriesData() {
		n += DataBytes
	}
	return n
}

// Validate reports whether the message is well-formed: a known direction,
// line-aligned address, and a payload exactly when the opcode carries one.
func (m Message) Validate() error {
	if !m.Op.IsH2D() && !m.Op.IsD2H() {
		return fmt.Errorf("cxl: opcode %v has no direction", m.Op)
	}
	if m.Addr%DataBytes != 0 {
		return fmt.Errorf("cxl: %v address %#x not line-aligned", m.Op, m.Addr)
	}
	if m.Op.CarriesData() && len(m.Data) != DataBytes {
		return fmt.Errorf("cxl: %v carries %d payload bytes, want %d", m.Op, len(m.Data), DataBytes)
	}
	if !m.Op.CarriesData() && len(m.Data) != 0 {
		return fmt.Errorf("cxl: %v must not carry data", m.Op)
	}
	return nil
}

func (m Message) String() string {
	if m.Op.CarriesData() {
		return fmt.Sprintf("%v{addr=%#x, %dB}", m.Op, m.Addr, len(m.Data))
	}
	return fmt.Sprintf("%v{addr=%#x}", m.Op, m.Addr)
}
