package cxl

import (
	"strings"
	"testing"

	"pax/internal/sim"
)

func TestTracerRecordsBothDirections(t *testing.T) {
	l := NewLink(sim.CXLLink)
	tr := NewTracer(16)
	l.AttachTracer(tr)

	l.ToDevice(Message{Op: RdOwn, Addr: 64}, sim.NS(10))
	l.ToHost(Message{Op: GO, Addr: 64, Data: make([]byte, 64)}, sim.NS(20))

	evs := tr.Events()
	if len(evs) != 2 || tr.Total() != 2 {
		t.Fatalf("events %d total %d", len(evs), tr.Total())
	}
	if evs[0].Dir != H2D || evs[0].Msg.Op != RdOwn || evs[0].Seq != 0 {
		t.Fatalf("first event %+v", evs[0])
	}
	if evs[1].Dir != D2H || evs[1].Msg.Op != GO {
		t.Fatalf("second event %+v", evs[1])
	}
	if evs[1].Msg.Data != nil {
		t.Fatal("tracer retained payload")
	}
	if l.Tracer() != tr {
		t.Fatal("Tracer accessor wrong")
	}
}

func TestTracerRingWraps(t *testing.T) {
	l := NewLink(sim.CXLLink)
	tr := NewTracer(4)
	l.AttachTracer(tr)
	for i := 0; i < 10; i++ {
		l.ToDevice(Message{Op: RdShared, Addr: uint64(i) * 64}, 0)
	}
	evs := tr.Events()
	if len(evs) != 4 || tr.Total() != 10 {
		t.Fatalf("retained %d, total %d", len(evs), tr.Total())
	}
	// Oldest-first: sequences 6,7,8,9.
	for i, e := range evs {
		if e.Seq != int64(6+i) {
			t.Fatalf("event %d seq %d", i, e.Seq)
		}
	}
}

func TestTracerDumpAndCounts(t *testing.T) {
	l := NewLink(sim.CXLLink)
	tr := NewTracer(8)
	l.AttachTracer(tr)
	l.ToDevice(Message{Op: RdOwn, Addr: 0}, 0)
	l.ToDevice(Message{Op: ItoMWr, Addr: 64}, 0)
	l.ToDevice(Message{Op: ItoMWr, Addr: 128}, 0)

	counts := tr.CountByOp()
	if counts[RdOwn] != 1 || counts[ItoMWr] != 2 {
		t.Fatalf("counts %v", counts)
	}
	dump := tr.Dump()
	if !strings.Contains(dump, "ItoMWr") || !strings.Contains(dump, "#0") {
		t.Fatalf("dump:\n%s", dump)
	}
	if strings.Count(dump, "\n") != 3 {
		t.Fatalf("dump lines:\n%s", dump)
	}
}

func TestTracerDetach(t *testing.T) {
	l := NewLink(sim.CXLLink)
	tr := NewTracer(4)
	l.AttachTracer(tr)
	l.ToDevice(Message{Op: RdShared, Addr: 0}, 0)
	l.AttachTracer(nil)
	l.ToDevice(Message{Op: RdShared, Addr: 64}, 0)
	if tr.Total() != 1 {
		t.Fatalf("detached tracer recorded %d", tr.Total())
	}
}

func TestTracerValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTracer(0)
}
