package undolog

import (
	"testing"

	"pax/internal/pmem"
)

// FuzzOpen feeds arbitrary bytes as a log region image: Open must never
// panic — it either recovers a consistent (possibly empty) log or errors.
func FuzzOpen(f *testing.F) {
	// Seed with a valid formatted log containing two entries.
	dev := pmem.New(pmem.DefaultConfig(8 << 10))
	l := Create(dev, 0, 8<<10)
	l.Append(1, 64, [64]byte{1}, 0)
	l.Append(1, 128, [64]byte{2}, 0)
	f.Add(dev.Snapshot())
	// And a truncated/garbage variant.
	garbage := make([]byte, 8<<10)
	for i := range garbage {
		garbage[i] = byte(i * 31)
	}
	f.Add(garbage)

	f.Fuzz(func(t *testing.T, img []byte) {
		if len(img) < 256 {
			return
		}
		size := uint64(len(img))
		dev := pmem.New(pmem.DefaultConfig(len(img)))
		dev.Restore(img)
		l, err := Open(dev, 0, size)
		if err != nil {
			return
		}
		// A log that opened must behave: invariants hold, entries readable.
		if l.Head() < l.Tail() {
			t.Fatalf("head %d < tail %d", l.Head(), l.Tail())
		}
		if l.Live() < 0 || l.Live() > l.CapacityEntries() {
			t.Fatalf("live %d outside [0,%d]", l.Live(), l.CapacityEntries())
		}
		_ = l.Entries()
		// Appending and truncating still work.
		if _, _, err := l.Append(99, 0, [64]byte{}, 0); err == nil {
			l.Truncate(l.Head(), 0)
		}
	})
}
