// Package undolog implements the PAX device's persistent undo log (§3.2-3.4
// of the paper): a ring of fixed-size, checksummed, epoch-tagged entries in a
// PM region. Each entry records the pre-modification value of one cache line.
//
// The log's durable frontier advances monotonically (virtual byte offsets
// never wrap, only their physical placement does), which is the property the
// device's write-back coordinator relies on: a buffered dirty line may be
// written back to PM data space exactly when the virtual offset of its undo
// entry is at or below the durable frontier.
//
// On-media layout:
//
//	[ header (64 B) | entry slots ... ]
//
// The header persists the tail (oldest live entry) as a virtual offset; the
// head is recovered by scanning forward from the tail until checksum or
// sequence validation fails — exactly the state a post-crash observer can
// reconstruct.
package undolog

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"pax/internal/coherence"
	"pax/internal/pmem"
	"pax/internal/sim"
)

const (
	// headerSize is the on-media log header size.
	headerSize = 64
	// EntrySize is the fixed on-media entry size: epoch(8) + seq(8) +
	// addr(8) + old line(64) + crc(4) + pad(4) = 96 bytes.
	EntrySize = 96
	// MinRegionSize is the smallest log region that holds at least one
	// entry; smaller regions cannot log a single modified line.
	MinRegionSize = headerSize + EntrySize

	logMagic   = 0x5041584c4f473031 // "PAXLOG01"
	logVersion = 1
)

// Entry is one undo record: the pre-image of cache line Addr as of the first
// time the host modified it during Epoch.
type Entry struct {
	Epoch uint64
	Seq   uint64 // dense entry index == virtual offset / EntrySize
	Addr  uint64 // line-aligned vPM address
	Old   [coherence.LineSize]byte
}

// ErrFull is returned when appending would overwrite live (untruncated)
// entries. The device reacts by forcing log truncation via persist or by
// stalling (§3.3 discusses why this replaces working-set limits).
var ErrFull = errors.New("undolog: log full (live entries fill capacity)")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Log is the undo log manager. It is not safe for concurrent use; the PAX
// device serializes access (a hardware log writer is a single pipeline).
type Log struct {
	dev  *pmem.Device
	base uint64
	size uint64

	capacity uint64 // usable entry bytes (multiple of EntrySize)
	head     uint64 // virtual offset of next append
	tail     uint64 // virtual offset of oldest live entry

	// Appends counts entries ever appended; Truncations counts tail bumps;
	// PeakLive is the maximum number of live entries ever outstanding (the
	// pool's real log footprint).
	Appends     uint64
	Truncations uint64
	PeakLive    int
}

func usableCapacity(size uint64) uint64 {
	if size < headerSize+EntrySize {
		panic(fmt.Sprintf("undolog: region of %d bytes too small", size))
	}
	return (size - headerSize) / EntrySize * EntrySize
}

// Create formats a fresh, empty log in [base, base+size) of dev.
func Create(dev *pmem.Device, base, size uint64) *Log {
	l := &Log{dev: dev, base: base, size: size, capacity: usableCapacity(size)}
	l.writeHeader(0)
	return l
}

// Open recovers a log from media: it validates the header, then scans forward
// from the persisted tail to find the head. This is the recovery-time view —
// entries whose append was interrupted fail validation and mark the end.
func Open(dev *pmem.Device, base, size uint64) (*Log, error) {
	l := &Log{dev: dev, base: base, size: size, capacity: usableCapacity(size)}
	var hdr [headerSize]byte
	dev.Read(base, hdr[:], 0)
	if got := binary.LittleEndian.Uint64(hdr[0:]); got != logMagic {
		return nil, fmt.Errorf("undolog: bad magic %#x", got)
	}
	if got := binary.LittleEndian.Uint32(hdr[8:]); got != logVersion {
		return nil, fmt.Errorf("undolog: unsupported version %d", got)
	}
	if got := binary.LittleEndian.Uint64(hdr[16:]); got != l.capacity {
		return nil, fmt.Errorf("undolog: header capacity %d, geometry implies %d", got, l.capacity)
	}
	l.tail = binary.LittleEndian.Uint64(hdr[24:])
	if l.tail%EntrySize != 0 {
		return nil, fmt.Errorf("undolog: tail %d not entry-aligned", l.tail)
	}

	// Scan forward: the head is the first slot that fails validation.
	l.head = l.tail
	for l.head-l.tail < l.capacity {
		if _, ok := l.readEntry(l.head); !ok {
			break
		}
		l.head += EntrySize
	}
	return l, nil
}

func (l *Log) writeHeader(tail uint64) {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[0:], logMagic)
	binary.LittleEndian.PutUint32(hdr[8:], logVersion)
	binary.LittleEndian.PutUint64(hdr[16:], l.capacity)
	binary.LittleEndian.PutUint64(hdr[24:], tail)
	l.dev.Write(l.base, hdr[:], 0)
}

// slotAddr maps a virtual offset to its media address.
func (l *Log) slotAddr(virt uint64) uint64 {
	return l.base + headerSize + virt%l.capacity
}

func encodeEntry(e Entry) [EntrySize]byte {
	var buf [EntrySize]byte
	binary.LittleEndian.PutUint64(buf[0:], e.Epoch)
	binary.LittleEndian.PutUint64(buf[8:], e.Seq)
	binary.LittleEndian.PutUint64(buf[16:], e.Addr)
	copy(buf[24:88], e.Old[:])
	crc := crc32.Checksum(buf[:88], crcTable)
	binary.LittleEndian.PutUint32(buf[88:], crc)
	return buf
}

// readEntry reads and validates the entry at virtual offset virt. Validation
// requires an intact checksum and the dense sequence number implied by the
// offset, which rejects both torn appends and stale entries from a previous
// lap of the ring.
func (l *Log) readEntry(virt uint64) (Entry, bool) {
	var buf [EntrySize]byte
	l.dev.Read(l.slotAddr(virt), buf[:], 0)
	crc := crc32.Checksum(buf[:88], crcTable)
	if crc != binary.LittleEndian.Uint32(buf[88:]) {
		return Entry{}, false
	}
	e := Entry{
		Epoch: binary.LittleEndian.Uint64(buf[0:]),
		Seq:   binary.LittleEndian.Uint64(buf[8:]),
		Addr:  binary.LittleEndian.Uint64(buf[16:]),
	}
	copy(e.Old[:], buf[24:88])
	if e.Seq != virt/EntrySize {
		return Entry{}, false
	}
	return e, true
}

// Append writes one entry at the head. It returns the entry's virtual offset
// and the simulated time at which the entry is durable on PM, for a write
// issued at `at`. The caller provides Epoch, Addr, and Old; Seq is assigned.
func (l *Log) Append(epoch uint64, addr uint64, old [coherence.LineSize]byte, at sim.Time) (uint64, sim.Time, error) {
	if l.head-l.tail+EntrySize > l.capacity {
		return 0, 0, ErrFull
	}
	e := Entry{Epoch: epoch, Seq: l.head / EntrySize, Addr: addr, Old: old}
	buf := encodeEntry(e)
	done := l.dev.Write(l.slotAddr(l.head), buf[:], at)
	off := l.head
	l.head += EntrySize
	l.Appends++
	if live := l.Live(); live > l.PeakLive {
		l.PeakLive = live
	}
	return off, done, nil
}

// Truncate discards all entries below virtual offset upTo by bumping the
// persistent tail. The tail update is a single 8-byte atomic store, so a
// crash leaves either the old or the new tail — both yield a valid log.
func (l *Log) Truncate(upTo uint64, at sim.Time) sim.Time {
	if upTo < l.tail || upTo > l.head || upTo%EntrySize != 0 {
		panic(fmt.Sprintf("undolog: truncate to %d outside [%d,%d]", upTo, l.tail, l.head))
	}
	if upTo == l.tail {
		return at
	}
	l.tail = upTo
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], upTo)
	done := l.dev.WriteAtomic(l.base+24, b[:], at)
	l.Truncations++
	return done
}

// Head reports the virtual offset of the next append.
func (l *Log) Head() uint64 { return l.head }

// Tail reports the virtual offset of the oldest live entry.
func (l *Log) Tail() uint64 { return l.tail }

// Live reports the number of live (untruncated) entries.
func (l *Log) Live() int { return int((l.head - l.tail) / EntrySize) }

// CapacityEntries reports how many entries the ring can hold.
func (l *Log) CapacityEntries() int { return int(l.capacity / EntrySize) }

// Entries returns all live entries in append order. Recovery and tests use
// it; the device itself tracks entries it has in flight.
func (l *Log) Entries() []Entry {
	out := make([]Entry, 0, l.Live())
	for off := l.tail; off < l.head; off += EntrySize {
		e, ok := l.readEntry(off)
		if !ok {
			// The scan in Open defines the head as the first invalid entry,
			// so an invalid entry below the head means media corruption
			// after open; surface it by stopping early.
			break
		}
		out = append(out, e)
	}
	return out
}

// EntriesAfterEpoch returns live entries with Epoch > epoch, in append order —
// exactly the set recovery must undo (§3.4).
func (l *Log) EntriesAfterEpoch(epoch uint64) []Entry {
	var out []Entry
	for _, e := range l.Entries() {
		if e.Epoch > epoch {
			out = append(out, e)
		}
	}
	return out
}
