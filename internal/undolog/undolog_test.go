package undolog

import (
	"errors"
	"testing"
	"testing/quick"

	"pax/internal/coherence"
	"pax/internal/pmem"
)

func testDev(size int) *pmem.Device { return pmem.New(pmem.DefaultConfig(size)) }

func line(b byte) (out [coherence.LineSize]byte) {
	for i := range out {
		out[i] = b
	}
	return out
}

func TestAppendAndScan(t *testing.T) {
	dev := testDev(64 << 10)
	l := Create(dev, 0, 64<<10)
	for i := 0; i < 10; i++ {
		off, done, err := l.Append(1, uint64(i*64), line(byte(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i*EntrySize) {
			t.Fatalf("entry %d at offset %d", i, off)
		}
		if done <= 0 {
			t.Fatal("append reported zero durability time")
		}
	}
	es := l.Entries()
	if len(es) != 10 {
		t.Fatalf("got %d entries", len(es))
	}
	for i, e := range es {
		if e.Epoch != 1 || e.Addr != uint64(i*64) || e.Old[0] != byte(i) || e.Seq != uint64(i) {
			t.Fatalf("entry %d = %+v", i, e)
		}
	}
	if l.Live() != 10 {
		t.Fatalf("live = %d", l.Live())
	}
}

func TestOpenRecoversHeadAndTail(t *testing.T) {
	dev := testDev(64 << 10)
	l := Create(dev, 0, 64<<10)
	for i := 0; i < 7; i++ {
		l.Append(3, uint64(i*64), line(0xAB), 0)
	}
	l.Truncate(2*EntrySize, 0)

	l2, err := Open(dev, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Tail() != 2*EntrySize || l2.Head() != 7*EntrySize {
		t.Fatalf("recovered tail=%d head=%d", l2.Tail(), l2.Head())
	}
	if l2.Live() != 5 {
		t.Fatalf("live = %d", l2.Live())
	}
}

func TestTornEntryRejectedOnRecovery(t *testing.T) {
	dev := testDev(64 << 10)
	l := Create(dev, 0, 64<<10)
	for i := 0; i < 5; i++ {
		l.Append(1, uint64(i*64), line(1), 0)
	}
	// Tear the last entry: only 16 of its 96 bytes persisted.
	lastSlot := l.slotAddr(4 * EntrySize)
	dev.InjectTear(lastSlot, EntrySize, 16)

	l2, err := Open(dev, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Live() != 4 {
		t.Fatalf("torn entry not rejected: live = %d", l2.Live())
	}
}

func TestEntriesAfterEpoch(t *testing.T) {
	dev := testDev(64 << 10)
	l := Create(dev, 0, 64<<10)
	for e := uint64(1); e <= 3; e++ {
		for i := 0; i < 3; i++ {
			l.Append(e, uint64(i*64), line(byte(e)), 0)
		}
	}
	after := l.EntriesAfterEpoch(2)
	if len(after) != 3 {
		t.Fatalf("entries after epoch 2: %d", len(after))
	}
	for _, e := range after {
		if e.Epoch != 3 {
			t.Fatalf("entry %+v leaked", e)
		}
	}
	if n := len(l.EntriesAfterEpoch(0)); n != 9 {
		t.Fatalf("after epoch 0: %d", n)
	}
	if n := len(l.EntriesAfterEpoch(3)); n != 0 {
		t.Fatalf("after epoch 3: %d", n)
	}
}

func TestRingWraparound(t *testing.T) {
	// Region sized for exactly 8 entries.
	size := uint64(headerSize + 8*EntrySize)
	dev := testDev(int(size))
	l := Create(dev, 0, size)

	// Fill, truncate half, refill across the wrap point — several laps.
	seq := uint64(0)
	for lap := 0; lap < 5; lap++ {
		for l.Live() < 8 {
			if _, _, err := l.Append(uint64(lap+1), seq*64, line(byte(seq)), 0); err != nil {
				t.Fatal(err)
			}
			seq++
		}
		l.Truncate(l.Tail()+4*EntrySize, 0)
		es := l.Entries()
		if len(es) != 4 {
			t.Fatalf("lap %d: live = %d", lap, len(es))
		}
		// Reopen mid-lap and verify identical state.
		l2, err := Open(dev, 0, size)
		if err != nil {
			t.Fatal(err)
		}
		if l2.Head() != l.Head() || l2.Tail() != l.Tail() {
			t.Fatalf("lap %d: reopen head/tail %d/%d want %d/%d", lap, l2.Head(), l2.Tail(), l.Head(), l.Tail())
		}
	}
}

func TestErrFull(t *testing.T) {
	size := uint64(headerSize + 4*EntrySize)
	l := Create(testDev(int(size)), 0, size)
	for i := 0; i < 4; i++ {
		if _, _, err := l.Append(1, uint64(i*64), line(0), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := l.Append(1, 0, line(0), 0); !errors.Is(err, ErrFull) {
		t.Fatalf("err = %v, want ErrFull", err)
	}
	// Truncation frees space.
	l.Truncate(l.Tail()+EntrySize, 0)
	if _, _, err := l.Append(1, 0, line(0), 0); err != nil {
		t.Fatal(err)
	}
}

func TestStaleLapEntriesRejected(t *testing.T) {
	// After wraparound, a slot holds an old entry with a smaller seq; if the
	// tail were corrupted backwards, validation must reject the stale entry.
	size := uint64(headerSize + 4*EntrySize)
	dev := testDev(int(size))
	l := Create(dev, 0, size)
	for i := 0; i < 4; i++ {
		l.Append(1, uint64(i*64), line(1), 0)
	}
	l.Truncate(4*EntrySize, 0)
	for i := 0; i < 2; i++ {
		l.Append(2, uint64(i*64), line(2), 0)
	}
	// Live entries are seq 4,5 at physical slots 0,1; slots 2,3 hold stale
	// lap-1 entries (seq 2,3). A fresh Open must find head exactly at seq 6.
	l2, err := Open(dev, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Head() != 6*EntrySize {
		t.Fatalf("head = %d entries, want 6", l2.Head()/EntrySize)
	}
	if l2.Live() != 2 {
		t.Fatalf("live = %d", l2.Live())
	}
}

func TestTruncateValidation(t *testing.T) {
	l := Create(testDev(64<<10), 0, 64<<10)
	l.Append(1, 0, line(0), 0)
	for _, bad := range []uint64{EntrySize * 2, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("truncate to %d did not panic", bad)
				}
			}()
			l.Truncate(bad, 0)
		}()
	}
	// No-op truncate is fine.
	l.Truncate(l.Tail(), 0)
}

func TestOpenRejectsCorruptHeader(t *testing.T) {
	dev := testDev(64 << 10)
	Create(dev, 0, 64<<10)
	dev.Write(0, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, 0)
	if _, err := Open(dev, 0, 64<<10); err == nil {
		t.Fatal("corrupt magic accepted")
	}
}

func TestTooSmallRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Create(testDev(128), 0, 128)
}

// Property: append/truncate/reopen in any interleaving preserves the exact
// live entry sequence.
func TestLogMatchesModelProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		size := uint64(headerSize + 16*EntrySize)
		dev := testDev(int(size))
		l := Create(dev, 0, size)
		var model []Entry
		nextSeq := uint64(0)
		for _, op := range ops {
			switch op % 4 {
			case 0, 1: // append
				addr := uint64(op) * 64
				if _, _, err := l.Append(uint64(op), addr, line(op), 0); err == nil {
					model = append(model, Entry{Epoch: uint64(op), Seq: nextSeq, Addr: addr, Old: line(op)})
					nextSeq++
				}
			case 2: // truncate one
				if len(model) > 0 {
					l.Truncate(l.Tail()+EntrySize, 0)
					model = model[1:]
				}
			case 3: // reopen
				var err error
				l, err = Open(dev, 0, size)
				if err != nil {
					return false
				}
			}
		}
		got := l.Entries()
		if len(got) != len(model) {
			return false
		}
		for i := range got {
			if got[i] != model[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
