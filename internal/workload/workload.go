// Package workload generates the key streams and operation mixes behind the
// paper's benchmarks: uniform and zipfian key distributions over fixed-size
// keyspaces, read/write mixes, and the specific workloads Figure 2 uses
// (single-thread uniform gets with 8 B keys/values; write-only puts).
//
// Generators are deterministic per seed, which the simulator requires for
// reproducible timings.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// OpKind is a workload operation type.
type OpKind uint8

const (
	// Get reads a key.
	Get OpKind = iota
	// Put writes a key/value pair.
	Put
	// Delete removes a key.
	Delete
)

// String names the op.
func (k OpKind) String() string {
	switch k {
	case Get:
		return "get"
	case Put:
		return "put"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte // nil unless Kind == Put
}

// KeyDist draws key indexes in [0, n).
type KeyDist interface {
	Next() uint64
	N() uint64
}

// Uniform draws keys uniformly at random.
type Uniform struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform builds a uniform distribution over [0, n).
func NewUniform(n uint64, seed int64) *Uniform {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	return &Uniform{n: n, rng: rand.New(rand.NewSource(seed))}
}

// Next draws a key index.
func (u *Uniform) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }

// N reports the keyspace size.
func (u *Uniform) N() uint64 { return u.n }

// Zipf draws keys with a zipfian popularity skew (s > 1), the standard
// hot-set model for cache-friendliness experiments (the hbmsize ablation).
type Zipf struct {
	n uint64
	z *rand.Zipf
}

// NewZipf builds a zipfian distribution over [0, n) with parameter s.
func NewZipf(n uint64, s float64, seed int64) *Zipf {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	if s <= 1 {
		panic("workload: zipf s must exceed 1")
	}
	rng := rand.New(rand.NewSource(seed))
	return &Zipf{n: n, z: rand.NewZipf(rng, s, 1, n-1)}
}

// Next draws a key index.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }

// N reports the keyspace size.
func (z *Zipf) N() uint64 { return z.n }

// Sequential walks the keyspace in order (the wamp experiment's dense
// pattern).
type Sequential struct {
	n, next uint64
}

// NewSequential builds a sequential walker over [0, n).
func NewSequential(n uint64) *Sequential {
	if n == 0 {
		panic("workload: empty keyspace")
	}
	return &Sequential{n: n}
}

// Next returns the next index, wrapping at n.
func (s *Sequential) Next() uint64 {
	v := s.next
	s.next = (s.next + 1) % s.n
	return v
}

// N reports the keyspace size.
func (s *Sequential) N() uint64 { return s.n }

// Config describes a generated workload.
type Config struct {
	// Keys is the keyspace size.
	Keys uint64
	// KeySize and ValueSize are payload sizes in bytes (8 B each in the
	// paper's Figure 2 benchmarks).
	KeySize, ValueSize int
	// ReadFraction in [0,1]: fraction of operations that are Gets; the rest
	// are Puts (Figure 2b uses 0 — write-only).
	ReadFraction float64
	// DeleteFraction in [0,1]: fraction of operations that are Deletes,
	// carved out of the Put share (ReadFraction + DeleteFraction ≤ 1).
	DeleteFraction float64
	// Dist selects the key distribution: "uniform", "zipf", "sequential".
	Dist string
	// ZipfS is the zipf parameter when Dist == "zipf".
	ZipfS float64
	// Seed drives all randomness.
	Seed int64
}

// Fig2aConfig is the paper's AMAT workload: single-threaded uniform random
// gets, 8 B keys and values, table much larger than the LLC.
func Fig2aConfig(keys uint64) Config {
	return Config{Keys: keys, KeySize: 8, ValueSize: 8, ReadFraction: 1.0, Dist: "uniform", Seed: 42}
}

// Fig2bConfig is the paper's throughput workload: write-only puts, 8 B keys
// and values, uniform.
func Fig2bConfig(keys uint64) Config {
	return Config{Keys: keys, KeySize: 8, ValueSize: 8, ReadFraction: 0.0, Dist: "uniform", Seed: 42}
}

// Generator produces a deterministic op stream from a Config.
type Generator struct {
	cfg  Config
	dist KeyDist
	rng  *rand.Rand
}

// NewGenerator builds a generator; invalid configs panic (harness bugs, not
// runtime conditions).
func NewGenerator(cfg Config) *Generator {
	if cfg.KeySize < 8 {
		panic("workload: key size must be ≥ 8 (holds the key index)")
	}
	if cfg.ReadFraction < 0 || cfg.ReadFraction > 1 {
		panic("workload: read fraction outside [0,1]")
	}
	if cfg.DeleteFraction < 0 || cfg.ReadFraction+cfg.DeleteFraction > 1 {
		panic("workload: read+delete fractions exceed 1")
	}
	var dist KeyDist
	switch cfg.Dist {
	case "uniform", "":
		dist = NewUniform(cfg.Keys, cfg.Seed)
	case "zipf":
		s := cfg.ZipfS
		if s == 0 {
			s = 1.2
		}
		dist = NewZipf(cfg.Keys, s, cfg.Seed)
	case "sequential":
		dist = NewSequential(cfg.Keys)
	default:
		panic(fmt.Sprintf("workload: unknown distribution %q", cfg.Dist))
	}
	return &Generator{cfg: cfg, dist: dist, rng: rand.New(rand.NewSource(cfg.Seed ^ 0x1E3779B97F4A7C15))}
}

// MakeKey encodes key index i as a cfg.KeySize-byte key.
func (g *Generator) MakeKey(i uint64) []byte {
	k := make([]byte, g.cfg.KeySize)
	binary.LittleEndian.PutUint64(k, i)
	return k
}

// MakeValue builds a deterministic cfg.ValueSize-byte value for key i.
func (g *Generator) MakeValue(i uint64) []byte {
	v := make([]byte, g.cfg.ValueSize)
	for off := 0; off < len(v); off += 8 {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], i^math.Float64bits(float64(off+1)))
		copy(v[off:], b[:])
	}
	return v
}

// Next produces the next operation.
func (g *Generator) Next() Op {
	i := g.dist.Next()
	r := g.rng.Float64()
	switch {
	case r < g.cfg.ReadFraction:
		return Op{Kind: Get, Key: g.MakeKey(i)}
	case r < g.cfg.ReadFraction+g.cfg.DeleteFraction:
		return Op{Kind: Delete, Key: g.MakeKey(i)}
	default:
		return Op{Kind: Put, Key: g.MakeKey(i), Value: g.MakeValue(i)}
	}
}

// Ops produces the next n operations.
func (g *Generator) Ops(n int) []Op {
	out := make([]Op, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Config reports the generator's configuration.
func (g *Generator) Config() Config { return g.cfg }
