package workload

import (
	"encoding/binary"
	"testing"
)

func TestUniformCoversKeyspace(t *testing.T) {
	u := NewUniform(16, 1)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		k := u.Next()
		if k >= 16 {
			t.Fatalf("key %d outside keyspace", k)
		}
		seen[k] = true
	}
	if len(seen) != 16 {
		t.Fatalf("uniform covered %d/16 keys in 1000 draws", len(seen))
	}
	if u.N() != 16 {
		t.Fatal("N wrong")
	}
}

func TestZipfSkew(t *testing.T) {
	z := NewZipf(1000, 1.5, 1)
	counts := map[uint64]int{}
	for i := 0; i < 20000; i++ {
		k := z.Next()
		if k >= 1000 {
			t.Fatalf("key %d outside keyspace", k)
		}
		counts[k]++
	}
	// Key 0 must be far more popular than the median key.
	if counts[0] < 20*counts[500]+20 {
		t.Fatalf("no zipf skew: counts[0]=%d counts[500]=%d", counts[0], counts[500])
	}
}

func TestSequentialWraps(t *testing.T) {
	s := NewSequential(3)
	got := []uint64{s.Next(), s.Next(), s.Next(), s.Next()}
	want := []uint64{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v", got)
		}
	}
}

func TestDistributionValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewUniform(0, 1) },
		func() { NewZipf(0, 1.5, 1) },
		func() { NewZipf(10, 1.0, 1) },
		func() { NewSequential(0) },
		func() { NewGenerator(Config{Keys: 10, KeySize: 4, ValueSize: 8}) },
		func() { NewGenerator(Config{Keys: 10, KeySize: 8, ValueSize: 8, ReadFraction: 2}) },
		func() { NewGenerator(Config{Keys: 10, KeySize: 8, ValueSize: 8, Dist: "bogus"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := NewGenerator(Fig2bConfig(100))
	g2 := NewGenerator(Fig2bConfig(100))
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a.Kind != b.Kind || string(a.Key) != string(b.Key) || string(a.Value) != string(b.Value) {
			t.Fatalf("op %d diverged", i)
		}
	}
}

func TestFig2Configs(t *testing.T) {
	ga := NewGenerator(Fig2aConfig(1000))
	for _, op := range ga.Ops(100) {
		if op.Kind != Get {
			t.Fatal("fig2a must be read-only")
		}
		if len(op.Key) != 8 {
			t.Fatalf("key size %d", len(op.Key))
		}
	}
	gb := NewGenerator(Fig2bConfig(1000))
	for _, op := range gb.Ops(100) {
		if op.Kind != Put {
			t.Fatal("fig2b must be write-only")
		}
		if len(op.Value) != 8 {
			t.Fatalf("value size %d", len(op.Value))
		}
	}
}

func TestMakeKeyValueShape(t *testing.T) {
	g := NewGenerator(Config{Keys: 10, KeySize: 16, ValueSize: 24, Seed: 3})
	k := g.MakeKey(7)
	if len(k) != 16 || binary.LittleEndian.Uint64(k) != 7 {
		t.Fatalf("key %v", k)
	}
	v1, v2 := g.MakeValue(7), g.MakeValue(7)
	if len(v1) != 24 || string(v1) != string(v2) {
		t.Fatal("values not deterministic")
	}
	if string(g.MakeValue(8)) == string(v1) {
		t.Fatal("distinct keys share a value")
	}
}

func TestMixedReadFraction(t *testing.T) {
	g := NewGenerator(Config{Keys: 100, KeySize: 8, ValueSize: 8, ReadFraction: 0.5, Seed: 9})
	gets := 0
	for _, op := range g.Ops(2000) {
		if op.Kind == Get {
			gets++
		}
	}
	if gets < 800 || gets > 1200 {
		t.Fatalf("gets = %d of 2000 at 50%% read fraction", gets)
	}
}

func TestOpKindString(t *testing.T) {
	if Get.String() != "get" || Put.String() != "put" || Delete.String() != "delete" {
		t.Fatal("op names wrong")
	}
	if OpKind(9).String() != "OpKind(9)" {
		t.Fatal("fallback wrong")
	}
}

func TestDeleteFraction(t *testing.T) {
	g := NewGenerator(Config{Keys: 100, KeySize: 8, ValueSize: 8, ReadFraction: 0.5, DeleteFraction: 0.25, Seed: 4})
	var gets, dels, puts int
	for _, op := range g.Ops(4000) {
		switch op.Kind {
		case Get:
			gets++
		case Delete:
			dels++
		case Put:
			puts++
		}
	}
	if gets < 1700 || gets > 2300 || dels < 800 || dels > 1200 || puts < 800 || puts > 1200 {
		t.Fatalf("mix gets=%d dels=%d puts=%d", gets, dels, puts)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewGenerator(Config{Keys: 10, KeySize: 8, ValueSize: 8, ReadFraction: 0.8, DeleteFraction: 0.3})
	}()
}
