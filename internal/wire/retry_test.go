package wire

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// scriptServer answers every request on conn via reply, which receives the
// 0-based request index. It stops on the first transport error.
func scriptServer(conn net.Conn, reply func(i int, req Request) Response) {
	br := bufio.NewReader(conn)
	for i := 0; ; i++ {
		req, err := ReadRequest(br)
		if err != nil {
			return
		}
		if err := WriteResponse(conn, reply(i, req)); err != nil {
			return
		}
	}
}

func fastPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
}

func TestServerErrorBusyMatching(t *testing.T) {
	busy := &ServerError{Status: StatusBusy, Msg: "queue full"}
	if !errors.Is(busy, ErrServerBusy) {
		t.Fatal("StatusBusy ServerError must match ErrServerBusy")
	}
	fatal := &ServerError{Status: StatusError, Msg: "sealed"}
	if errors.Is(fatal, ErrServerBusy) {
		t.Fatal("StatusError ServerError must not match ErrServerBusy")
	}
}

func TestRetryClientRetriesBusy(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	go scriptServer(srvConn, func(i int, req Request) Response {
		if i < 2 {
			return Response{Status: StatusBusy, Body: []byte("queue full")}
		}
		return Response{Status: StatusOK, Body: EpochBody(9)}
	})
	rc := NewRetryClient(NewClient(cliConn), fastPolicy(), nil)
	defer rc.Close()

	ep, err := rc.Put([]byte("k"), []byte("v"))
	if err != nil {
		t.Fatalf("put through busy spell: %v", err)
	}
	if ep != 9 {
		t.Fatalf("epoch = %d, want 9", ep)
	}
}

func TestRetryClientExhaustsBusyBudget(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	var served atomic.Int64
	go scriptServer(srvConn, func(i int, req Request) Response {
		served.Add(1)
		return Response{Status: StatusBusy, Body: []byte("queue full")}
	})
	rc := NewRetryClient(NewClient(cliConn), fastPolicy(), nil)
	defer rc.Close()

	_, err := rc.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy after exhausted budget, got %v", err)
	}
	if got := served.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want MaxAttempts=4", got)
	}
}

func TestRetryClientFailsFastOnStatusError(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	var served atomic.Int64
	go scriptServer(srvConn, func(i int, req Request) Response {
		served.Add(1)
		return Response{Status: StatusError, Body: []byte("engine sealed by durability failure")}
	})
	rc := NewRetryClient(NewClient(cliConn), fastPolicy(), nil)
	defer rc.Close()

	_, err := rc.Put([]byte("k"), []byte("v"))
	var se *ServerError
	if !errors.As(err, &se) || se.Status != StatusError {
		t.Fatalf("want StatusError ServerError, got %v", err)
	}
	if errors.Is(err, ErrServerBusy) {
		t.Fatalf("sealed error must not look retryable: %v", err)
	}
	if got := served.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retry on StatusError)", got)
	}
}

func TestRetryClientReconnects(t *testing.T) {
	// First connection: the server hangs up after reading one request —
	// a mid-flight transport failure.
	cliConn, srvConn := net.Pipe()
	go func() {
		br := bufio.NewReader(srvConn)
		_, _ = ReadRequest(br)
		_ = srvConn.Close()
	}()

	// The dialer hands out a fresh connection to a healthy server.
	var dials atomic.Int64
	dial := func(addr string) (*Client, error) {
		dials.Add(1)
		c2, s2 := net.Pipe()
		go scriptServer(s2, func(i int, req Request) Response {
			return Response{Status: StatusOK, Body: req.Key}
		})
		return NewClient(c2), nil
	}
	rc := NewRetryClient(NewClient(cliConn), fastPolicy(), dial)
	defer rc.Close()

	v, ok, err := rc.Get([]byte("k"))
	if err != nil || !ok || !bytes.Equal(v, []byte("k")) {
		t.Fatalf("get after reconnect: v=%q ok=%v err=%v", v, ok, err)
	}
	if dials.Load() != 1 {
		t.Fatalf("dialed %d times, want 1", dials.Load())
	}
}

func TestRetryClientClosed(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	go scriptServer(srvConn, func(i int, req Request) Response {
		return Response{Status: StatusOK, Body: req.Key}
	})
	rc := NewRetryClient(NewClient(cliConn), fastPolicy(), nil)
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rc.Get([]byte("k")); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("call on closed retry client: %v", err)
	}
}
