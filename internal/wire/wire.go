// Package wire is paxserve's client/server protocol: a small length-prefixed
// binary framing for KV requests over a net.Conn.
//
// Every message is one frame:
//
//	frame    := length:u32be payload
//	request  := op:u8 body
//	response := status:u8 blen:u32be body
//
// Request bodies by opcode:
//
//	GET(1):             klen:u32be key
//	DELETE(3):          klen:u32be key [flags:u8]
//	PUT(2):             klen:u32be key vlen:u32be value [flags:u8]
//	PERSIST(4):         [flags:u8]
//	STATS(5), TRACE(6): empty
//	SPLIT(7):           shard:u32be (SplitAuto = pick the hottest shard)
//	MERGE(8):           shard:u32be (MergeAuto = pick the coldest shard)
//
// The optional trailing flags byte on mutations selects the ack policy:
// FlagAckDurable (ack only once the group commit is on media) or
// FlagAckApply (ack when applied and read-index-visible, durability
// asynchronous). It was introduced after the base protocol, so both sides
// are version-tolerant: an encoder omits the byte for FlagAckDefault —
// making the default encoding byte-identical to the old one — and a decoder
// treats an absent byte as FlagAckDefault, which the server resolves to its
// configured default (ack-on-durable unless overridden). Old clients
// against a new server, and new clients against an old server, therefore
// keep today's every-ack-means-durable contract.
//
// Response bodies: the value for GET, the durable epoch (u64le) for PUT /
// DELETE / PERSIST, the registry text for STATS, the flight-recorder
// snapshot as JSON for TRACE, the split report as JSON for SPLIT, the merge
// report as JSON for MERGE, an error
// message for StatusError, empty otherwise. The protocol is strictly in-order
// request/response per connection, which is what lets clients pipeline:
// the k-th response on a connection always answers the k-th request.
//
// # Ordering contract
//
// Responses are in request order, but *evaluation* order differs by opcode:
//
//   - PUT/DELETE/PERSIST are applied in wire order per connection and acked
//     only once durable, so a connection's mutations of a key are totally
//     ordered and an acked write is never lost.
//   - GET is evaluated at dispatch time against the server's volatile read
//     index — it does not serialize behind the connection's unacked
//     mutations. A GET pipelined behind a PUT of the same key, without
//     waiting for the PUT's response, may therefore observe the pre-PUT
//     value (its response still arrives in order). Reads are
//     read-your-writes with respect to acked mutations: wait for the PUT
//     response before the GET and the new value is guaranteed. GETs may
//     also observe applied-but-not-yet-durable data; after a crash the
//     server rebuilds its index from recovered state, so a rolled-back
//     value is never served.
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Opcodes.
const (
	OpGet     byte = 1
	OpPut     byte = 2
	OpDelete  byte = 3
	OpPersist byte = 4
	OpStats   byte = 5
	OpTrace   byte = 6
	OpSplit   byte = 7
	OpMerge   byte = 8
	OpEvents  byte = 9
)

// SplitAuto is the SPLIT shard operand meaning "pick the hottest shard":
// the server chooses the split source from its per-slot load counters.
const SplitAuto = ^uint32(0)

// MergeAuto is the MERGE shard operand meaning "pick the coldest shard":
// the server chooses the merge victim from its per-slot load signal.
const MergeAuto = ^uint32(0)

// Response statuses. StatusBusy is the retryable subset of failure: the
// server's request queue stayed full past its enqueue timeout (backpressure),
// so the same request may well succeed in a moment. StatusError is
// non-retryable from the protocol's point of view — bad request, or a server
// whose shard sealed after a durability failure. Clients key retry decisions
// off the status byte, never off the error message text.
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusError    byte = 2
	StatusBusy     byte = 3
)

// Ack-policy flags, carried in the optional trailing flags byte of
// PUT/DELETE/PERSIST. FlagAckDefault is never put on the wire — it encodes
// as the byte's absence, so a default-policy request is byte-identical to
// the pre-flags protocol.
const (
	// FlagAckDefault defers to the server's configured default policy.
	FlagAckDefault byte = 0
	// FlagAckDurable requests ack-on-durable explicitly: the response is
	// sent only once the mutation's group commit reached media.
	FlagAckDurable byte = 1
	// FlagAckApply requests ack-on-apply: the response is sent as soon as
	// the mutation is applied and read-index-visible; durability is
	// asynchronous and the write may roll back if the server crashes before
	// its epoch commits.
	FlagAckApply byte = 2
)

// MaxFrame is the largest frame either side accepts. It bounds per-request
// memory on both ends; a frame header announcing more is a protocol error.
const MaxFrame = 16 << 20

// Request is one decoded client request.
type Request struct {
	Op    byte
	Key   []byte
	Value []byte
	// Flags is the ack-policy byte on PUT/DELETE/PERSIST (FlagAck*);
	// FlagAckDefault encodes as no byte at all.
	Flags byte
	// Shard is SPLIT's / MERGE's operand: the shard to split (or drain), or
	// SplitAuto / MergeAuto to let the server pick.
	Shard uint32
}

// Response is one decoded server reply.
type Response struct {
	Status byte
	Body   []byte
}

// OpName returns the mnemonic for an opcode (for errors and logs).
func OpName(op byte) string {
	switch op {
	case OpGet:
		return "GET"
	case OpPut:
		return "PUT"
	case OpDelete:
		return "DELETE"
	case OpPersist:
		return "PERSIST"
	case OpStats:
		return "STATS"
	case OpTrace:
		return "TRACE"
	case OpSplit:
		return "SPLIT"
	case OpMerge:
		return "MERGE"
	case OpEvents:
		return "EVENTS"
	}
	return fmt.Sprintf("op%d", op)
}

func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds max %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("wire: frame of %d bytes exceeds max %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

func takeBytes(payload []byte) (field, rest []byte, err error) {
	if len(payload) < 4 {
		return nil, nil, fmt.Errorf("wire: truncated length prefix")
	}
	n := binary.BigEndian.Uint32(payload)
	payload = payload[4:]
	if uint32(len(payload)) < n {
		return nil, nil, fmt.Errorf("wire: field of %d bytes in %d-byte remainder", n, len(payload))
	}
	return payload[:n], payload[n:], nil
}

// EncodeRequest renders a request payload (without the frame header).
func EncodeRequest(req Request) ([]byte, error) {
	if req.Flags != FlagAckDefault {
		if req.Flags > FlagAckApply {
			return nil, fmt.Errorf("wire: unknown ack flag %d", req.Flags)
		}
		if req.Op != OpPut && req.Op != OpDelete && req.Op != OpPersist {
			return nil, fmt.Errorf("wire: ack flags not valid on %s", OpName(req.Op))
		}
	}
	buf := []byte{req.Op}
	switch req.Op {
	case OpGet, OpDelete:
		buf = appendBytes(buf, req.Key)
	case OpPut:
		buf = appendBytes(buf, req.Key)
		buf = appendBytes(buf, req.Value)
	case OpPersist, OpStats, OpTrace, OpEvents:
		// No body.
	case OpSplit, OpMerge:
		buf = binary.BigEndian.AppendUint32(buf, req.Shard)
	default:
		return nil, fmt.Errorf("wire: unknown opcode %d", req.Op)
	}
	if req.Flags != FlagAckDefault {
		buf = append(buf, req.Flags)
	}
	return buf, nil
}

// WriteRequest frames and writes one request.
func WriteRequest(w io.Writer, req Request) error {
	payload, err := EncodeRequest(req)
	if err != nil {
		return err
	}
	return writeFrame(w, payload)
}

// ReadRequest reads and decodes one request frame. Key and Value alias a
// fresh per-frame buffer, so callers may retain them.
func ReadRequest(r *bufio.Reader) (Request, error) {
	payload, err := readFrame(r)
	if err != nil {
		return Request{}, err
	}
	if len(payload) < 1 {
		return Request{}, fmt.Errorf("wire: empty request payload")
	}
	req := Request{Op: payload[0]}
	rest := payload[1:]
	switch req.Op {
	case OpGet, OpDelete:
		if req.Key, rest, err = takeBytes(rest); err != nil {
			return Request{}, fmt.Errorf("wire: %s key: %w", OpName(req.Op), err)
		}
	case OpPut:
		if req.Key, rest, err = takeBytes(rest); err != nil {
			return Request{}, fmt.Errorf("wire: PUT key: %w", err)
		}
		if req.Value, rest, err = takeBytes(rest); err != nil {
			return Request{}, fmt.Errorf("wire: PUT value: %w", err)
		}
	case OpPersist, OpStats, OpTrace, OpEvents:
		// No body.
	case OpSplit, OpMerge:
		if len(rest) < 4 {
			return Request{}, fmt.Errorf("wire: truncated %s shard operand", OpName(req.Op))
		}
		req.Shard = binary.BigEndian.Uint32(rest)
		rest = rest[4:]
	default:
		return Request{}, fmt.Errorf("wire: unknown opcode %d", req.Op)
	}
	if len(rest) == 1 && (req.Op == OpPut || req.Op == OpDelete || req.Op == OpPersist) {
		// Optional ack-policy byte: absent on pre-flags encoders, which
		// means FlagAckDefault.
		req.Flags = rest[0]
		if req.Flags > FlagAckApply {
			return Request{}, fmt.Errorf("wire: unknown ack flag %d on %s", req.Flags, OpName(req.Op))
		}
		rest = rest[1:]
	}
	if len(rest) != 0 {
		return Request{}, fmt.Errorf("wire: %d trailing bytes after %s", len(rest), OpName(req.Op))
	}
	return req, nil
}

// WriteResponse frames and writes one response.
func WriteResponse(w io.Writer, resp Response) error {
	payload := make([]byte, 0, 5+len(resp.Body))
	payload = append(payload, resp.Status)
	payload = appendBytes(payload, resp.Body)
	return writeFrame(w, payload)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r *bufio.Reader) (Response, error) {
	payload, err := readFrame(r)
	if err != nil {
		return Response{}, err
	}
	if len(payload) < 1 {
		return Response{}, fmt.Errorf("wire: empty response payload")
	}
	resp := Response{Status: payload[0]}
	body, rest, err := takeBytes(payload[1:])
	if err != nil {
		return Response{}, fmt.Errorf("wire: response body: %w", err)
	}
	if len(rest) != 0 {
		return Response{}, fmt.Errorf("wire: %d trailing bytes after response", len(rest))
	}
	resp.Body = body
	return resp, nil
}

// EpochBody encodes a durable epoch as a response body.
func EpochBody(epoch uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], epoch)
	return b[:]
}

// DecodeEpoch decodes an EpochBody; zero for malformed bodies.
func DecodeEpoch(body []byte) uint64 {
	if len(body) != 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(body)
}
