package wire

import (
	"errors"
	"sync"
	"time"
)

// This file is the resilient client: a Client wrapper that retries the
// retryable failures — StatusBusy backpressure replies and transport errors
// (with a reconnect) — under a bounded exponential backoff, and fails fast on
// everything else. Retrying is safe for this protocol because every request
// is idempotent: GET/STATS/PERSIST read or force state, and re-sending the
// same PUT or DELETE converges to the same durable outcome. A StatusError
// reply is never retried: it means the request itself is bad or the owning
// shard sealed after a durability failure, and hammering a sealed shard
// cannot bring it back.

// RetryPolicy bounds the retry loop.
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, first included
	// (default 4).
	MaxAttempts int
	// Backoff is the wait before the first retry, doubling per retry
	// (default 5ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 250ms).
	MaxBackoff time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Backoff <= 0 {
		p.Backoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// RetryClient is a Client with retry, backoff, and reconnect. It is safe for
// concurrent use; callers share one underlying pipelined connection, which is
// replaced (once) when a transport error invalidates it.
type RetryClient struct {
	addr   string
	policy RetryPolicy
	dial   func(addr string) (*Client, error)
	// closing is closed by Close so a backoff sleep inside do aborts
	// immediately instead of finishing the retry schedule against a client
	// the caller already gave up on.
	closing chan struct{}

	mu     sync.Mutex
	c      *Client // nil between a transport failure and the next reconnect
	closed bool
}

// DialRetry connects to a paxserve at addr with retry semantics. The initial
// dial is eager so configuration errors surface immediately.
func DialRetry(addr string, policy RetryPolicy) (*RetryClient, error) {
	r := &RetryClient{addr: addr, policy: policy.withDefaults(), dial: Dial, closing: make(chan struct{})}
	c, err := r.dial(addr)
	if err != nil {
		return nil, err
	}
	r.c = c
	return r, nil
}

// NewRetryClient wraps an already-built Client (tests use net.Pipe pairs).
// With a nil dialer the client cannot reconnect: a transport error fails the
// operation after exhausting in-place retries.
func NewRetryClient(c *Client, policy RetryPolicy, dial func(addr string) (*Client, error)) *RetryClient {
	return &RetryClient{policy: policy.withDefaults(), dial: dial, c: c, closing: make(chan struct{})}
}

// client returns the live connection, reconnecting if the previous one was
// invalidated by a transport error.
func (r *RetryClient) client() (*Client, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClientClosed
	}
	if r.c != nil {
		return r.c, nil
	}
	if r.dial == nil {
		return nil, errors.New("wire: connection lost and no dialer configured")
	}
	c, err := r.dial(r.addr)
	if err != nil {
		return nil, err
	}
	r.c = c
	return c, nil
}

// invalidate drops failed so the next attempt reconnects. Another caller may
// have reconnected already; only the connection that actually failed is
// dropped.
func (r *RetryClient) invalidate(failed *Client) {
	r.mu.Lock()
	if r.c == failed {
		r.c = nil
	}
	r.mu.Unlock()
	_ = failed.Close()
}

// Close tears down the underlying connection; subsequent calls fail with
// ErrClientClosed.
func (r *RetryClient) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.closing) // wake any do() out of its backoff sleep
	c := r.c
	r.c = nil
	r.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// do runs one request through the retry loop.
func (r *RetryClient) do(req Request) (Response, error) {
	backoff := r.policy.Backoff
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Interruptible backoff: a Close during the sleep fails the call
			// now — finishing the schedule could hold the caller for the sum
			// of the remaining backoffs against a connection that is gone.
			t := time.NewTimer(backoff)
			select {
			case <-t.C:
			case <-r.closing:
				t.Stop()
				return Response{}, ErrClientClosed
			}
			if backoff *= 2; backoff > r.policy.MaxBackoff {
				backoff = r.policy.MaxBackoff
			}
		}
		c, err := r.client()
		if err != nil {
			if errors.Is(err, ErrClientClosed) {
				return Response{}, err
			}
			lastErr = err // dial failure: retryable, the server may be back
			continue
		}
		resp, err := c.roundTrip(req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var se *ServerError
		if errors.As(err, &se) {
			if se.Status != StatusBusy {
				return Response{}, err // bad request or sealed shard: final
			}
			continue // busy: the connection is healthy, just back off
		}
		// Transport error (or our conn was closed under us): reconnect.
		r.invalidate(c)
	}
	return Response{}, lastErr
}

// Get is Client.Get with retry.
func (r *RetryClient) Get(key []byte) (value []byte, ok bool, err error) {
	resp, err := r.do(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	if resp.Status == StatusNotFound {
		return nil, false, nil
	}
	return resp.Body, true, nil
}

// Put is Client.Put with retry. Re-sending the same key=value after an
// ambiguous transport failure is idempotent, so a retried PUT that was in
// fact already applied just re-acks.
func (r *RetryClient) Put(key, value []byte) (epoch uint64, err error) {
	return r.PutFlags(key, value, FlagAckDefault)
}

// PutFlags is Client.PutFlags with retry: the ack-policy flag rides along
// on every attempt, so a reconnect-and-resend keeps the caller's policy.
func (r *RetryClient) PutFlags(key, value []byte, flags byte) (epoch uint64, err error) {
	resp, err := r.do(Request{Op: OpPut, Key: key, Value: value, Flags: flags})
	if err != nil {
		return 0, err
	}
	return DecodeEpoch(resp.Body), nil
}

// Delete is Client.Delete with retry. After an ambiguous failure the retried
// DELETE may observe found=false because the first send already removed the
// key; the end state is identical.
func (r *RetryClient) Delete(key []byte) (found bool, epoch uint64, err error) {
	return r.DeleteFlags(key, FlagAckDefault)
}

// DeleteFlags is Client.DeleteFlags with retry.
func (r *RetryClient) DeleteFlags(key []byte, flags byte) (found bool, epoch uint64, err error) {
	resp, err := r.do(Request{Op: OpDelete, Key: key, Flags: flags})
	if err != nil {
		return false, 0, err
	}
	return resp.Status != StatusNotFound, DecodeEpoch(resp.Body), nil
}

// Persist is Client.Persist with retry.
func (r *RetryClient) Persist() (epoch uint64, err error) {
	return r.PersistFlags(FlagAckDefault)
}

// PersistFlags is Client.PersistFlags with retry.
func (r *RetryClient) PersistFlags(flags byte) (epoch uint64, err error) {
	resp, err := r.do(Request{Op: OpPersist, Flags: flags})
	if err != nil {
		return 0, err
	}
	return DecodeEpoch(resp.Body), nil
}

// Stats is Client.Stats with retry.
func (r *RetryClient) Stats() (string, error) {
	resp, err := r.do(Request{Op: OpStats})
	if err != nil {
		return "", err
	}
	return string(resp.Body), nil
}

// Trace is Client.Trace with retry.
func (r *RetryClient) Trace() ([]byte, error) {
	resp, err := r.do(Request{Op: OpTrace})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}
