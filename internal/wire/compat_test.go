package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// This file pins the cross-version wire contract around the ack-policy flags
// byte: a pre-flags encoder's frames (no trailing byte) must decode on a new
// server as FlagAckDefault, and a new encoder's default-policy frames must be
// byte-identical to the old encoding so an old server parses them unchanged.

// oldEncodeRequest is the pre-flags encoder, reconstructed verbatim: opcode,
// then length-prefixed key (and value for PUT), never a trailing byte. It
// stands in for an old client/server binary in both compat directions.
func oldEncodeRequest(req Request) []byte {
	appendField := func(buf, b []byte) []byte {
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
		return append(buf, b...)
	}
	buf := []byte{req.Op}
	switch req.Op {
	case OpGet, OpDelete:
		buf = appendField(buf, req.Key)
	case OpPut:
		buf = appendField(buf, req.Key)
		buf = appendField(buf, req.Value)
	}
	return buf
}

func frame(payload []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	return append(hdr[:], payload...)
}

// TestOldClientDecodesAsDefaultPolicy: frames from a pre-flags encoder carry
// no flags byte, and the new decoder must read them as FlagAckDefault — which
// the server resolves to ack-on-durable unless configured otherwise, so an
// old client keeps the every-ack-means-durable contract it was written
// against.
func TestOldClientDecodesAsDefaultPolicy(t *testing.T) {
	for _, req := range []Request{
		{Op: OpPut, Key: []byte("k"), Value: []byte("v")},
		{Op: OpDelete, Key: []byte("k")},
		{Op: OpPersist},
		{Op: OpGet, Key: []byte("k")},
		{Op: OpStats},
		{Op: OpTrace},
	} {
		old := oldEncodeRequest(req)
		got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame(old))))
		if err != nil {
			t.Fatalf("%s: new decoder rejects old encoding: %v", OpName(req.Op), err)
		}
		if got.Flags != FlagAckDefault {
			t.Fatalf("%s: old encoding decoded with flags %d, want FlagAckDefault", OpName(req.Op), got.Flags)
		}
		if got.Op != req.Op || !bytes.Equal(got.Key, req.Key) || !bytes.Equal(got.Value, req.Value) {
			t.Fatalf("%s: old encoding decoded as %+v, want %+v", OpName(req.Op), got, req)
		}
	}
}

// TestDefaultPolicyEncodingIsByteIdenticalToOld: a new client that does not
// set a policy must emit exactly the old bytes, so an old server — which
// would reject trailing bytes — parses the frame unchanged.
func TestDefaultPolicyEncodingIsByteIdenticalToOld(t *testing.T) {
	for _, req := range []Request{
		{Op: OpPut, Key: []byte("key"), Value: []byte("value")},
		{Op: OpDelete, Key: []byte("key")},
		{Op: OpPersist},
		{Op: OpGet, Key: []byte("key")},
		{Op: OpStats},
		{Op: OpTrace},
	} {
		got, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("%s: %v", OpName(req.Op), err)
		}
		if want := oldEncodeRequest(req); !bytes.Equal(got, want) {
			t.Fatalf("%s: default-policy encoding % x differs from old encoding % x — an old server would reject it",
				OpName(req.Op), got, want)
		}
	}
}

// TestExplicitFlagsRoundTrip: explicit policies ride as exactly one trailing
// byte and decode back unchanged.
func TestExplicitFlagsRoundTrip(t *testing.T) {
	for _, flags := range []byte{FlagAckDurable, FlagAckApply} {
		for _, req := range []Request{
			{Op: OpPut, Key: []byte("k"), Value: []byte("v"), Flags: flags},
			{Op: OpDelete, Key: []byte("k"), Flags: flags},
			{Op: OpPersist, Flags: flags},
		} {
			payload, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("%s flags %d: %v", OpName(req.Op), flags, err)
			}
			if want := append(oldEncodeRequest(Request{Op: req.Op, Key: req.Key, Value: req.Value}), flags); !bytes.Equal(payload, want) {
				t.Fatalf("%s flags %d: encoding % x, want old bytes plus one flags byte % x",
					OpName(req.Op), flags, payload, want)
			}
			got, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame(payload))))
			if err != nil {
				t.Fatalf("%s flags %d: decode: %v", OpName(req.Op), flags, err)
			}
			if got.Flags != flags {
				t.Fatalf("%s: flags %d decoded as %d", OpName(req.Op), flags, got.Flags)
			}
		}
	}
}

// TestFlagValidation: unknown flag values and flags on non-mutations are
// protocol errors on both sides, not silently-misread bytes.
func TestFlagValidation(t *testing.T) {
	if _, err := EncodeRequest(Request{Op: OpPut, Key: []byte("k"), Value: []byte("v"), Flags: FlagAckApply + 1}); err == nil {
		t.Fatal("encoder accepted an unknown ack flag")
	}
	for _, op := range []byte{OpGet, OpStats, OpTrace} {
		if _, err := EncodeRequest(Request{Op: op, Key: []byte("k"), Flags: FlagAckApply}); err == nil {
			t.Fatalf("encoder accepted ack flags on %s", OpName(op))
		}
	}
	// A decoder must reject an out-of-range flags byte rather than ack under
	// a policy it does not know.
	bad := append(oldEncodeRequest(Request{Op: OpPersist}), FlagAckApply+1)
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame(bad)))); err == nil {
		t.Fatal("decoder accepted an unknown ack flag")
	}
	// A trailing byte on GET is trailing garbage, not a policy.
	badGet := append(oldEncodeRequest(Request{Op: OpGet, Key: []byte("k")}), FlagAckApply)
	if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(frame(badGet)))); err == nil {
		t.Fatal("decoder accepted a flags byte on GET")
	}
}
