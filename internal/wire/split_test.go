package wire

import (
	"bufio"
	"bytes"
	"testing"
)

func TestSplitRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpSplit, Shard: 3},
		{Op: OpSplit, Shard: 0},
		{Op: OpSplit, Shard: SplitAuto},
	}
	var buf bytes.Buffer
	for _, req := range reqs {
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range reqs {
		got, err := ReadRequest(br)
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != OpSplit || got.Shard != want.Shard {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestSplitRequestTruncatedOperand(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRequest(&buf, Request{Op: OpSplit, Shard: 1}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < 4; cut++ {
		truncated := full[:len(full)-cut]
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(truncated))); err == nil {
			t.Fatalf("truncated SPLIT frame (cut %d bytes) accepted", cut)
		}
	}
}
