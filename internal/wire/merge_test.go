package wire

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
	"time"
)

func TestMergeRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpMerge, Shard: 2},
		{Op: OpMerge, Shard: 0},
		{Op: OpMerge, Shard: MergeAuto},
	}
	var buf bytes.Buffer
	for _, req := range reqs {
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range reqs {
		got, err := ReadRequest(br)
		if err != nil {
			t.Fatal(err)
		}
		if got.Op != OpMerge || got.Shard != want.Shard {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

// Close during a backoff sleep must fail the in-flight call with
// ErrClientClosed immediately — not after the rest of the retry schedule.
func TestRetryClientCloseInterruptsBackoff(t *testing.T) {
	dialErr := errors.New("server down")
	r := NewRetryClient(nil, RetryPolicy{
		MaxAttempts: 4,
		Backoff:     5 * time.Second,
		MaxBackoff:  5 * time.Second,
	}, func(string) (*Client, error) { return nil, dialErr })
	r.addr = "test"

	done := make(chan error, 1)
	go func() {
		_, _, err := r.Get([]byte("k"))
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the first attempt fail into the backoff sleep
	start := time.Now()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrClientClosed) {
			t.Fatalf("interrupted call returned %v, want ErrClientClosed", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("call returned %v after Close; backoff was not interrupted", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call still sleeping its backoff after Close")
	}
}
