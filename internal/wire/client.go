package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("wire: client closed")

// ErrServerBusy matches (via errors.Is) a ServerError carrying StatusBusy:
// the server shed the request under backpressure and the caller may retry.
var ErrServerBusy = errors.New("wire: server busy")

// ServerError is a failure reply (StatusError or StatusBusy) decoded into a
// Go error. Status preserves the wire status so callers branch on it — not
// on the message text, which is advisory.
type ServerError struct {
	Status byte
	Msg    string
}

func (e *ServerError) Error() string {
	if e.Status == StatusBusy {
		return "paxserve: busy: " + e.Msg
	}
	return "paxserve: " + e.Msg
}

// Is reports errors.Is(err, ErrServerBusy) for busy replies, so callers can
// test retryability without unwrapping to the concrete type.
func (e *ServerError) Is(target error) bool {
	return target == ErrServerBusy && e.Status == StatusBusy
}

// Client is a paxserve connection. It is safe for concurrent use and
// pipelines: each caller writes its frame and queues a reply slot, then
// blocks on its own slot while a single reader goroutine matches in-order
// responses to slots. Under N concurrent callers the connection carries up
// to N outstanding requests, which is what lets the server batch them into
// one group commit.
type Client struct {
	conn net.Conn
	bw   *bufio.Writer

	wmu    sync.Mutex // serializes frame writes and pending pushes
	err    error      // sticky; set on first transport failure or Close
	closed bool

	pending chan chan result
	done    chan struct{} // closed when the reader goroutine exits
}

type result struct {
	resp Response
	err  error
}

// maxPipeline bounds outstanding requests per connection; a caller past the
// bound blocks in roundTrip until replies drain.
const maxPipeline = 256

// Dial connects to a paxserve at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (any net.Conn, so tests can use
// net.Pipe). The client owns conn and closes it on Close.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:    conn,
		bw:      bufio.NewWriter(conn),
		pending: make(chan chan result, maxPipeline),
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c
}

func (c *Client) readLoop() {
	defer close(c.done)
	br := bufio.NewReader(c.conn)
	for slot := range c.pending {
		resp, err := ReadResponse(br)
		if err != nil {
			c.fail(fmt.Errorf("wire: reading response: %w", err))
			slot <- result{err: c.callErr()}
			continue // keep draining: every queued slot gets the sticky error
		}
		slot <- result{resp: resp}
	}
}

// fail records the first transport error and tears the connection down so
// in-flight writers unblock.
func (c *Client) fail(err error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.err == nil {
		c.err = err
		_ = c.conn.Close()
	}
}

func (c *Client) callErr() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.err
}

// Close tears down the connection. Outstanding calls fail with
// ErrClientClosed (or the read error that raced with it).
func (c *Client) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		<-c.done
		return nil
	}
	c.closed = true
	if c.err == nil {
		c.err = ErrClientClosed
	}
	err := c.conn.Close()
	close(c.pending)
	c.wmu.Unlock()
	<-c.done
	return err
}

func (c *Client) roundTrip(req Request) (Response, error) {
	slot := make(chan result, 1)
	c.wmu.Lock()
	if c.err != nil {
		err := c.err
		c.wmu.Unlock()
		return Response{}, err
	}
	if err := WriteRequest(c.bw, req); err == nil {
		err = c.bw.Flush()
		if err != nil {
			c.wmu.Unlock()
			c.fail(err)
			return Response{}, err
		}
	} else {
		c.wmu.Unlock()
		return Response{}, err
	}
	// Push under wmu so pending order always matches write order.
	c.pending <- slot
	c.wmu.Unlock()

	r := <-slot
	if r.err != nil {
		return Response{}, r.err
	}
	if r.resp.Status == StatusError || r.resp.Status == StatusBusy {
		return Response{}, &ServerError{Status: r.resp.Status, Msg: string(r.resp.Body)}
	}
	return r.resp, nil
}

// Get fetches key; ok reports presence. A GET is evaluated at server
// dispatch time against the read index — pipelined concurrent callers
// should note it does not wait for this connection's unacked mutations
// (see the package ordering contract).
func (c *Client) Get(key []byte) (value []byte, ok bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	if resp.Status == StatusNotFound {
		return nil, false, nil
	}
	return resp.Body, true, nil
}

// Put stores key=value, returning once the write is acked under the
// server's default policy — durable, unless the server was started with an
// ack-on-apply default. The returned epoch is the snapshot that contains
// (or, acked-on-apply, will contain) it.
func (c *Client) Put(key, value []byte) (epoch uint64, err error) {
	return c.PutFlags(key, value, FlagAckDefault)
}

// PutFlags is Put with an explicit ack-policy flag: FlagAckDurable acks
// only once the group commit reached media; FlagAckApply acks when the
// write is applied and read-index-visible, with durability asynchronous —
// such a write can roll back if the server crashes before its epoch
// commits. FlagAckDefault defers to the server and encodes exactly like the
// pre-flags protocol.
func (c *Client) PutFlags(key, value []byte, flags byte) (epoch uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpPut, Key: key, Value: value, Flags: flags})
	if err != nil {
		return 0, err
	}
	return DecodeEpoch(resp.Body), nil
}

// Delete removes key, reporting whether it was present; like Put it acks
// under the server's default policy.
func (c *Client) Delete(key []byte) (found bool, epoch uint64, err error) {
	return c.DeleteFlags(key, FlagAckDefault)
}

// DeleteFlags is Delete with an explicit ack-policy flag (see PutFlags).
func (c *Client) DeleteFlags(key []byte, flags byte) (found bool, epoch uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpDelete, Key: key, Flags: flags})
	if err != nil {
		return false, 0, err
	}
	return resp.Status != StatusNotFound, DecodeEpoch(resp.Body), nil
}

// Persist forces a group commit of everything applied so far.
func (c *Client) Persist() (epoch uint64, err error) {
	return c.PersistFlags(FlagAckDefault)
}

// PersistFlags is Persist with an explicit ack-policy flag: FlagAckApply
// schedules the forced commit but returns immediately with the still-open
// epoch instead of waiting for media.
func (c *Client) PersistFlags(flags byte) (epoch uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpPersist, Flags: flags})
	if err != nil {
		return 0, err
	}
	return DecodeEpoch(resp.Body), nil
}

// Stats fetches the server's metrics registry as `name value` text lines.
func (c *Client) Stats() (string, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return "", err
	}
	return string(resp.Body), nil
}

// Trace fetches the server's commit flight recorder as raw JSON (a
// TraceSnapshot; the wire layer does not decode it — paxinspect and the
// debug HTTP plane pass it through, tooling unmarshals it).
func (c *Client) Trace() ([]byte, error) {
	resp, err := c.roundTrip(Request{Op: OpTrace})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Events fetches the server's recent structured lifecycle events as raw JSON
// (a server.EventsSnapshot). Like TRACE it is answered inline, so a sealed
// server still reports the events that explain its seal.
func (c *Client) Events() ([]byte, error) {
	resp, err := c.roundTrip(Request{Op: OpEvents})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Split asks a sharded server to split one shard live: shard >= 0 names the
// split source, shard < 0 sends SplitAuto and the server picks its hottest
// shard. The reply is the server's split report as raw JSON (a SplitReport;
// like Trace, the wire layer passes it through undecoded). The call blocks
// until the migration completes — every moved slot is copied, durable on
// its new owner, and the new assignment is published.
func (c *Client) Split(shard int) ([]byte, error) {
	operand := SplitAuto
	if shard >= 0 {
		operand = uint32(shard)
	}
	resp, err := c.roundTrip(Request{Op: OpSplit, Shard: operand})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Merge asks a sharded server to shrink its fleet by one shard: shard >= 0
// names the victim to drain, shard < 0 sends MergeAuto and the server picks
// its coldest shard. The reply is the server's merge report as raw JSON (a
// MergeReport, passed through undecoded like Split). The call blocks until
// every slot has left the retired shard, the shrunk assignment is published,
// and the shard file is removed.
func (c *Client) Merge(shard int) ([]byte, error) {
	operand := MergeAuto
	if shard >= 0 {
		operand = uint32(shard)
	}
	resp, err := c.roundTrip(Request{Op: OpMerge, Shard: operand})
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}
