package wire

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Key: []byte("k")},
		{Op: OpPut, Key: []byte("key"), Value: []byte("value")},
		{Op: OpPut, Key: []byte(""), Value: []byte("")},
		{Op: OpDelete, Key: []byte("gone")},
		{Op: OpPersist},
		{Op: OpStats},
		{Op: OpTrace},
	}
	var buf bytes.Buffer
	for _, req := range reqs {
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("write %s: %v", OpName(req.Op), err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range reqs {
		got, err := ReadRequest(br)
		if err != nil {
			t.Fatalf("read %s: %v", OpName(want.Op), err)
		}
		if got.Op != want.Op || !bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Fatalf("round trip %s: got %+v want %+v", OpName(want.Op), got, want)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resps := []Response{
		{Status: StatusOK, Body: []byte("v")},
		{Status: StatusNotFound},
		{Status: StatusError, Body: []byte("boom")},
		{Status: StatusOK, Body: EpochBody(712)},
	}
	var buf bytes.Buffer
	for _, r := range resps {
		if err := WriteResponse(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for _, want := range resps {
		got, err := ReadResponse(br)
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status || !bytes.Equal(got.Body, want.Body) {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
	if DecodeEpoch(EpochBody(712)) != 712 {
		t.Fatal("epoch body round trip")
	}
}

func TestReadRequestRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty payload":  {0, 0, 0, 0},
		"unknown opcode": {0, 0, 0, 1, 99},
		"truncated key":  {0, 0, 0, 3, OpGet, 0, 0},
		"huge frame":     {0xff, 0xff, 0xff, 0xff},
		"trailing bytes": {0, 0, 0, 7, OpGet, 0, 0, 0, 1, 'k', 'x'},
	}
	for name, raw := range cases {
		if _, err := ReadRequest(bufio.NewReader(bytes.NewReader(raw))); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}

// echoServer answers GETs with the key as value and PUTs with epoch 7,
// reading and writing frames strictly in order.
func echoServer(t *testing.T, conn net.Conn) {
	t.Helper()
	br := bufio.NewReader(conn)
	for {
		req, err := ReadRequest(br)
		if err != nil {
			return
		}
		var resp Response
		switch req.Op {
		case OpGet:
			resp = Response{Status: StatusOK, Body: req.Key}
		case OpPut:
			resp = Response{Status: StatusOK, Body: EpochBody(7)}
		case OpStats:
			resp = Response{Status: StatusOK, Body: []byte("x 1\n")}
		default:
			resp = Response{Status: StatusError, Body: []byte("nope")}
		}
		if err := WriteResponse(conn, resp); err != nil {
			return
		}
	}
}

func TestClientPipelinesConcurrentCallers(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	go echoServer(t, srvConn)
	c := NewClient(cliConn)
	defer c.Close()

	const callers = 32
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("key-%d", i))
			v, ok, err := c.Get(key)
			if err != nil || !ok || !bytes.Equal(v, key) {
				errs <- fmt.Errorf("get %s: v=%q ok=%v err=%v", key, v, ok, err)
				return
			}
			if ep, err := c.Put(key, key); err != nil || ep != 7 {
				errs <- fmt.Errorf("put %s: epoch=%d err=%v", key, ep, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientServerError(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	go echoServer(t, srvConn)
	c := NewClient(cliConn)
	defer c.Close()

	_, err := c.Persist()
	var se *ServerError
	if !errors.As(err, &se) || !strings.Contains(se.Msg, "nope") {
		t.Fatalf("want ServerError(nope), got %v", err)
	}
	// The connection survives a server-level error.
	if _, ok, err := c.Get([]byte("k")); err != nil || !ok {
		t.Fatalf("get after error: ok=%v err=%v", ok, err)
	}
}

func TestClientCloseFailsOutstanding(t *testing.T) {
	cliConn, srvConn := net.Pipe()
	c := NewClient(cliConn)
	// Server reads the request but never answers.
	seen := make(chan struct{})
	go func() {
		br := bufio.NewReader(srvConn)
		_, _ = ReadRequest(br)
		close(seen)
	}()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Get([]byte("k"))
		done <- err
	}()
	// Wait until the request is on the wire, then close underneath it.
	<-seen
	_ = c.Close()
	if err := <-done; err == nil {
		t.Fatal("outstanding call survived Close")
	}
	if _, _, err := c.Get([]byte("k")); err == nil {
		t.Fatal("call on closed client succeeded")
	}
}
