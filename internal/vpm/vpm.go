// Package vpm provides the process-side view of a PAX device's exposed
// memory: a bounds-checked window over the host address space whose accesses
// flow through the simulated cache hierarchy to the device (§3.1 of the
// paper: "a process maps a physical address range exposed by a cache-coherent
// persistence accelerator into its address space").
package vpm

import (
	"fmt"

	"pax/internal/memory"
	"pax/internal/sim"
	"pax/internal/stats"
)

// Region is one mapped vPM window. It implements memory.Memory. A Region is
// bound to one hardware thread's view (a cache.Core); use Pool.Region per
// simulated thread.
type Region struct {
	mem        memory.Memory
	base, size uint64

	// Loads and Stores count region accesses; LoadBytes/StoreBytes their
	// volume. The write-amplification experiment compares StoreBytes against
	// the bytes the crash-consistency mechanism wrote.
	Loads, Stores         stats.Counter
	LoadBytes, StoreBytes stats.Counter
}

// New maps [base, base+size) of mem as a vPM region.
func New(mem memory.Memory, base, size uint64) *Region {
	if size == 0 {
		panic("vpm: empty region")
	}
	return &Region{mem: mem, base: base, size: size}
}

// Base reports the region's first host address.
func (r *Region) Base() uint64 { return r.base }

// Size reports the region length in bytes.
func (r *Region) Size() uint64 { return r.size }

func (r *Region) check(addr uint64, n int) {
	if addr < r.base || addr+uint64(n) > r.base+r.size || addr+uint64(n) < addr {
		panic(fmt.Sprintf("vpm: access [%#x,+%d) outside region [%#x,+%d)", addr, n, r.base, r.size))
	}
}

// Load implements memory.Memory with bounds checking.
func (r *Region) Load(addr uint64, buf []byte) sim.Time {
	r.check(addr, len(buf))
	r.Loads.Inc()
	r.LoadBytes.Add(uint64(len(buf)))
	return r.mem.Load(addr, buf)
}

// Store implements memory.Memory with bounds checking.
func (r *Region) Store(addr uint64, data []byte) sim.Time {
	r.check(addr, len(data))
	r.Stores.Inc()
	r.StoreBytes.Add(uint64(len(data)))
	return r.mem.Store(addr, data)
}

// ResetStats clears the access counters.
func (r *Region) ResetStats() {
	r.Loads.Reset()
	r.Stores.Reset()
	r.LoadBytes.Reset()
	r.StoreBytes.Reset()
}
