package vpm

import (
	"testing"

	"pax/internal/memory"
)

func TestRegionWindow(t *testing.T) {
	flat := memory.NewFlat(1 << 16)
	r := New(flat, 4096, 8192)
	if r.Base() != 4096 || r.Size() != 8192 {
		t.Fatal("geometry accessors wrong")
	}
	r.Store(5000, []byte("inside"))
	buf := make([]byte, 6)
	r.Load(5000, buf)
	if string(buf) != "inside" {
		t.Fatalf("got %q", buf)
	}
	if r.Loads.Load() != 1 || r.Stores.Load() != 1 {
		t.Fatal("op counters wrong")
	}
	if r.LoadBytes.Load() != 6 || r.StoreBytes.Load() != 6 {
		t.Fatal("byte counters wrong")
	}
	r.ResetStats()
	if r.Loads.Load() != 0 || r.StoreBytes.Load() != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestRegionBounds(t *testing.T) {
	flat := memory.NewFlat(1 << 16)
	r := New(flat, 4096, 8192)
	for _, fn := range []func(){
		func() { r.Load(0, make([]byte, 1)) },            // below
		func() { r.Load(4096+8192, make([]byte, 1)) },    // above
		func() { r.Store(4096+8190, make([]byte, 4)) },   // straddles end
		func() { r.Load(^uint64(0)-1, make([]byte, 8)) }, // overflow
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	// Boundary accesses are legal.
	r.Store(4096, []byte{1})
	r.Store(4096+8191, []byte{1})
}

func TestEmptyRegionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(memory.NewFlat(64), 0, 0)
}
