package wal

import (
	"bytes"
	"testing"

	"pax/internal/cache"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
)

// fixture builds a PM device fronted by a fresh host hierarchy; "crashing"
// means building a new hierarchy over the same media (volatile caches die,
// flushed data survives).
func fixture(t *testing.T, size int) (*pmem.Device, *cache.Core) {
	t.Helper()
	pm := pmem.New(pmem.DefaultConfig(size))
	return pm, attach(pm, size)
}

func attach(pm *pmem.Device, size int) *cache.Core {
	h := cache.NewHierarchy(sim.SmallHost())
	h.AddRange(0, uint64(size), memory.NewControllerHome(pm, 0, 0, uint64(size)))
	return h.Core(0)
}

func TestAppendCommitCycle(t *testing.T) {
	_, core := fixture(t, 1<<20)
	l := Create(core, 0, 64<<10)
	l.Begin()
	if done := l.Append(100000, []byte{1, 2, 3, 4, 5, 6, 7, 8}); done <= 0 {
		t.Fatal("append reported no time")
	}
	if l.ActiveBytes() == 0 {
		t.Fatal("no active bytes after append")
	}
	recs := l.Records()
	if len(recs) != 1 || recs[0].Addr != 100000 || !bytes.Equal(recs[0].Old, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatalf("records = %+v", recs)
	}
	l.Commit()
	if l.ActiveBytes() != 0 || len(l.Records()) != 0 {
		t.Fatal("commit did not clear log")
	}
	if l.Appends.Load() != 1 || l.Fences.Load() != 2 {
		t.Fatalf("appends=%d fences=%d", l.Appends.Load(), l.Fences.Load())
	}
}

func TestRecoverAppliesReverseOrder(t *testing.T) {
	pm, core := fixture(t, 1<<20)
	l := Create(core, 0, 64<<10)
	dataAddr := uint64(512 << 10)

	// Initial durable value.
	core.Store(dataAddr, []byte{0xAA})
	core.FlushLines(dataAddr, 1)
	core.Fence()

	// Open tx: two updates to the SAME address, logging pre-images.
	l.Begin()
	var old [1]byte
	core.Load(dataAddr, old[:])
	l.Append(dataAddr, old[:]) // pre-image 0xAA
	core.Store(dataAddr, []byte{0xBB})
	core.Load(dataAddr, old[:])
	l.Append(dataAddr, old[:]) // pre-image 0xBB
	core.Store(dataAddr, []byte{0xCC})
	core.FlushLines(dataAddr, 1)
	core.Fence()
	// Crash without commit.

	core2 := attach(pm, 1<<20)
	l2, err := Open(core2, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n := l2.Recover(); n != 2 {
		t.Fatalf("recovered %d records", n)
	}
	var got [1]byte
	core2.Load(dataAddr, got[:])
	// Reverse application: 0xBB restored first, then 0xAA — final 0xAA.
	if got[0] != 0xAA {
		t.Fatalf("recovered value %#x, want 0xAA", got[0])
	}
	if l2.ActiveBytes() != 0 {
		t.Fatal("recover did not clear log")
	}
}

func TestCommittedTxNotRolledBack(t *testing.T) {
	pm, core := fixture(t, 1<<20)
	l := Create(core, 0, 64<<10)
	dataAddr := uint64(512 << 10)

	l.Begin()
	var old [8]byte
	core.Load(dataAddr, old[:])
	l.Append(dataAddr, old[:])
	core.Store(dataAddr, []byte("COMMITTD"))
	core.FlushLines(dataAddr, 8)
	core.Fence()
	l.Commit()

	core2 := attach(pm, 1<<20)
	l2, err := Open(core2, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	if n := l2.Recover(); n != 0 {
		t.Fatalf("committed tx rolled back (%d records)", n)
	}
	var got [8]byte
	core2.Load(dataAddr, got[:])
	if string(got[:]) != "COMMITTD" {
		t.Fatalf("committed data lost: %q", got)
	}
}

func TestTornRecordStopsScan(t *testing.T) {
	pm, core := fixture(t, 1<<20)
	l := Create(core, 0, 64<<10)
	l.Begin()
	l.Append(100000, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	l.Append(200000, []byte{2, 2, 2, 2, 2, 2, 2, 2})
	// Tear the second record's payload on media.
	secondRec := uint64(headerSize + recordFixed + 8 + recordFixed)
	pm.InjectTear(secondRec, 8, 0)

	core2 := attach(pm, 1<<20)
	l2, err := Open(core2, 0, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	recs := l2.Records()
	if len(recs) != 1 || recs[0].Addr != 100000 {
		t.Fatalf("torn record not rejected: %+v", recs)
	}
}

func TestOpenValidation(t *testing.T) {
	_, core := fixture(t, 1<<20)
	if _, err := Open(core, 0, 64<<10); err == nil {
		t.Fatal("opened unformatted log")
	}
	Create(core, 0, 64<<10)
	if _, err := Open(core, 0, 32<<10); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestLogFullPanics(t *testing.T) {
	_, core := fixture(t, 1<<20)
	l := Create(core, 0, headerSize+recordFixed+8)
	l.Begin()
	l.Append(0, make([]byte, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on full log")
		}
	}()
	l.Append(0, make([]byte, 8))
}

func TestDoubleBeginPanics(t *testing.T) {
	_, core := fixture(t, 1<<20)
	l := Create(core, 0, 64<<10)
	l.Begin()
	l.Append(0, make([]byte, 8))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Begin()
}
