// Package wal implements the software write-ahead undo log shared by the
// PMDK-style and compiler-pass baselines: variable-length undo records in a
// PM region, made durable with CLWB+SFENCE before the data they protect is
// modified, and rolled back in reverse order on recovery.
//
// This is the §2 mechanism the paper contrasts PAX against: every append
// costs a PM write plus flush, and the ordering rule ("log entry durable
// before the store") forces the fence stalls that PAX eliminates by logging
// asynchronously on the device.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"pax/internal/memory"
	"pax/internal/sim"
	"pax/internal/stats"
)

const (
	headerSize    = 64
	recordFixed   = 24                 // addr u64 | len u32 | crc u32 | seq u64
	walMagic      = 0x5041585357414c31 // "PAXSWAL1"
	offMagic      = 0
	offActive     = 8 // activeBytes: length of live undo data; 0 = no open tx
	offRegionSize = 16
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// staller is implemented by cache.Core; the log charges record-formatting
// CPU time through it.
type staller interface {
	Stall(d sim.Time) sim.Time
}

// Record is one undo record: the pre-image of [Addr, Addr+len(Old)).
type Record struct {
	Addr uint64
	Old  []byte
}

// Log is a software undo log in [base, base+size) of a persistent Memory.
// The caller's Memory must also implement memory.Persister (flush/fence);
// the log charges those costs exactly where real WAL code incurs them.
type Log struct {
	mem  memory.Memory
	per  memory.Persister
	base uint64
	size uint64

	active uint64 // in-memory mirror of the activeBytes field
	seq    uint64

	// Appends counts records; AppendedBytes counts undo payload volume
	// (write-amplification accounting); Fences counts ordering stalls
	// issued by the log itself.
	Appends       stats.Counter
	AppendedBytes stats.Counter
	Fences        stats.Counter
}

// Create formats an empty log. mem must implement memory.Persister.
func Create(mem memory.Memory, base, size uint64) *Log {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("wal: memory must implement Persister")
	}
	if size < headerSize+recordFixed {
		panic(fmt.Sprintf("wal: region of %d bytes too small", size))
	}
	l := &Log{mem: mem, per: per, base: base, size: size}
	l.putU64(base+offMagic, walMagic)
	l.putU64(base+offActive, 0)
	l.putU64(base+offRegionSize, size)
	per.FlushLines(base, headerSize)
	per.Fence()
	return l
}

// Open attaches to an existing log without recovery (call Recover to roll
// back an interrupted transaction first).
func Open(mem memory.Memory, base, size uint64) (*Log, error) {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("wal: memory must implement Persister")
	}
	l := &Log{mem: mem, per: per, base: base, size: size}
	if got := l.getU64(base + offMagic); got != walMagic {
		return nil, fmt.Errorf("wal: bad magic %#x", got)
	}
	if got := l.getU64(base + offRegionSize); got != size {
		return nil, fmt.Errorf("wal: region size %d, expected %d", got, size)
	}
	l.active = l.getU64(base + offActive)
	return l, nil
}

func (l *Log) putU64(addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	l.mem.Store(addr, b[:])
}

func (l *Log) getU64(addr uint64) uint64 {
	var b [8]byte
	l.mem.Load(addr, b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Begin opens a transaction. Nested transactions are not supported; the
// baselines run one transaction per structure operation.
func (l *Log) Begin() {
	if l.active != 0 {
		panic("wal: transaction already open")
	}
}

// Append durably records the pre-image `old` of addr before the caller
// overwrites it. On return the record and the active-length field are
// durable (CLWB + SFENCE), which is the ordering stall WAL cannot avoid.
func (l *Log) Append(addr uint64, old []byte) sim.Time {
	need := uint64(recordFixed + len(old))
	if headerSize+l.active+need > l.size {
		panic(fmt.Sprintf("wal: log full (%d of %d bytes live)", l.active, l.size-headerSize))
	}
	// CPU cost of formatting the record (the instrumentation instructions a
	// compiler pass or PMDK macro injects).
	if s, ok := l.mem.(staller); ok {
		s.Stall(sim.LogAppendCPU)
	}
	rec := l.base + headerSize + l.active
	var fixed [recordFixed]byte
	binary.LittleEndian.PutUint64(fixed[0:], addr)
	binary.LittleEndian.PutUint32(fixed[8:], uint32(len(old)))
	crc := crc32.Checksum(old, crcTable)
	binary.LittleEndian.PutUint32(fixed[12:], crc)
	binary.LittleEndian.PutUint64(fixed[16:], l.seq)
	l.seq++
	l.mem.Store(rec, fixed[:])
	l.mem.Store(rec+recordFixed, old)
	l.active += need
	l.putU64(l.base+offActive, l.active)

	// Durability order: record plus header must be persistent before the
	// caller's store proceeds.
	l.per.FlushLines(rec, int(need))
	l.per.FlushLines(l.base+offActive, 8)
	done := l.per.Fence()
	l.Appends.Inc()
	l.AppendedBytes.Add(uint64(len(old)))
	l.Fences.Inc()
	return done
}

// Commit ends the transaction: the caller has already flushed its data
// stores; the log drops its records by zeroing the active length, durably.
func (l *Log) Commit() sim.Time {
	l.active = 0
	l.putU64(l.base+offActive, 0)
	l.per.FlushLines(l.base+offActive, 8)
	done := l.per.Fence()
	l.Fences.Inc()
	return done
}

// ActiveBytes reports the live undo payload (0 between transactions).
func (l *Log) ActiveBytes() uint64 { return l.active }

// Records returns the live undo records in append order. Recovery applies
// them in reverse.
func (l *Log) Records() []Record {
	var out []Record
	off := uint64(0)
	for off < l.active {
		rec := l.base + headerSize + off
		var fixed [recordFixed]byte
		l.mem.Load(rec, fixed[:])
		addr := binary.LittleEndian.Uint64(fixed[0:])
		n := binary.LittleEndian.Uint32(fixed[8:])
		crc := binary.LittleEndian.Uint32(fixed[12:])
		old := make([]byte, n)
		l.mem.Load(rec+recordFixed, old)
		if crc32.Checksum(old, crcTable) != crc {
			// A torn record means the crash hit mid-append; the data store
			// it guards never happened, so stopping here is safe.
			break
		}
		out = append(out, Record{Addr: addr, Old: old})
		off += recordFixed + uint64(n)
	}
	return out
}

// Recover rolls back an interrupted transaction: live records are applied
// in reverse order, then the log is cleared. It reports how many records
// were undone.
func (l *Log) Recover() int {
	recs := l.Records()
	for i := len(recs) - 1; i >= 0; i-- {
		l.mem.Store(recs[i].Addr, recs[i].Old)
		l.per.FlushLines(recs[i].Addr, len(recs[i].Old))
	}
	l.per.Fence()
	l.active = 0
	l.putU64(l.base+offActive, 0)
	l.per.FlushLines(l.base+offActive, 8)
	l.per.Fence()
	return len(recs)
}
