// Package pagefault implements the page-protection change-tracking baseline
// (NVthreads, libpm, Kelly's "conventional hardware" approach): persistent
// pages are mapped read-only at the start of each epoch; the first store to
// a page takes a write-protection trap (>1 µs on modern x86, §1), undo-logs
// the entire 4 KiB page, and remaps it writable. Subsequent stores to the
// page are free until the next epoch.
//
// The paper's two criticisms are both measurable here: the trap cost per
// first touch (`traps` experiment) and the 4 KiB-granularity write
// amplification against PAX's 64 B cache-line logging (`wamp` experiment).
package pagefault

import (
	"pax/internal/baselines/wal"
	"pax/internal/memory"
	"pax/internal/sim"
	"pax/internal/stats"
)

// PageSize is the protection granularity.
const PageSize = sim.PageSize

// staller lets the tracker charge trap time to the accessing context's
// clock; cache.Core implements it.
type staller interface {
	Stall(d sim.Time) sim.Time
}

// Tracker wraps a persistent Memory with page-granular dirty tracking and
// epoch snapshots. It implements memory.Memory.
type Tracker struct {
	mem memory.Memory
	per memory.Persister
	log *wal.Log

	// writable holds pages already faulted (and logged) this epoch.
	writable map[uint64]struct{}
	epoch    uint64

	// Stats.
	Traps       stats.Counter // write-protection faults taken
	PagesLogged stats.Counter
	BytesLogged stats.Counter
	Stores      stats.Counter
	StoreBytes  stats.Counter
}

// New builds a tracker over mem (which must implement memory.Persister)
// with its page undo log in [logBase, logBase+logSize). The log must hold
// the epoch's page working set: size it at PageSize+64 bytes per dirty page.
func New(mem memory.Memory, logBase, logSize uint64) *Tracker {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("pagefault: memory must implement Persister")
	}
	return &Tracker{
		mem:      mem,
		per:      per,
		log:      wal.Create(mem, logBase, logSize),
		writable: make(map[uint64]struct{}),
	}
}

// Log exposes the undo log.
func (t *Tracker) Log() *wal.Log { return t.log }

// Load implements memory.Memory; loads never fault (pages are readable).
func (t *Tracker) Load(addr uint64, buf []byte) sim.Time {
	return t.mem.Load(addr, buf)
}

// Store implements memory.Memory. The first store to each page per epoch
// traps: the kernel round trip, an mprotect to remap the page writable, and
// an undo log append of the full page.
func (t *Tracker) Store(addr uint64, data []byte) sim.Time {
	first := addr &^ uint64(PageSize-1)
	last := (addr + uint64(len(data)) - 1) &^ uint64(PageSize-1)
	for page := first; page <= last; page += PageSize {
		if _, ok := t.writable[page]; ok {
			continue
		}
		// Write-protection trap: kernel entry, page undo logging, mprotect.
		if s, ok := t.mem.(staller); ok {
			s.Stall(sim.PageFaultTrap + sim.SyscallCost)
		}
		t.Traps.Inc()
		old := make([]byte, PageSize)
		t.mem.Load(page, old)
		t.log.Append(page, old)
		t.PagesLogged.Inc()
		t.BytesLogged.Add(PageSize)
		t.writable[page] = struct{}{}
	}
	done := t.mem.Store(addr, data)
	t.Stores.Inc()
	t.StoreBytes.Add(uint64(len(data)))
	return done
}

// Persist ends the epoch: flush every dirty page's data, fence, durably
// drop the undo log, and re-protect all pages for the next epoch. It returns
// the completion time and the number of pages that were dirty.
func (t *Tracker) Persist() (sim.Time, int) {
	for page := range t.writable {
		t.per.FlushLines(page, PageSize)
	}
	t.per.Fence()
	done := t.log.Commit()
	n := len(t.writable)
	// mprotect back to read-only (one ranged call, charged once).
	if s, ok := t.mem.(staller); ok {
		s.Stall(sim.SyscallCost)
	}
	t.writable = make(map[uint64]struct{})
	t.epoch++
	return done, n
}

// Epoch reports completed epochs.
func (t *Tracker) Epoch() uint64 { return t.epoch }

// DirtyPages reports pages faulted in the current epoch.
func (t *Tracker) DirtyPages() int { return len(t.writable) }

// WriteAmplification reports bytes logged per byte stored since creation —
// the §5.1 comparison metric (PAX logs 64 B per dirty line instead).
func (t *Tracker) WriteAmplification() float64 {
	if t.StoreBytes.Load() == 0 {
		return 0
	}
	return float64(t.BytesLogged.Load()) / float64(t.StoreBytes.Load())
}
