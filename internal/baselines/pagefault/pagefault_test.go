package pagefault

import (
	"testing"

	"pax/internal/baselines/wal"
	"pax/internal/cache"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
)

const (
	logBase = 0
	logSize = 4 << 20
	dataPos = 8 << 20
	pmSize  = 16 << 20
)

func fixture(t *testing.T) (*pmem.Device, *cache.Core) {
	t.Helper()
	pm := pmem.New(pmem.DefaultConfig(pmSize))
	return pm, attach(pm)
}

func attach(pm *pmem.Device) *cache.Core {
	h := cache.NewHierarchy(sim.SmallHost())
	h.AddRange(0, pmSize, memory.NewControllerHome(pm, 0, 0, pmSize))
	return h.Core(0)
}

func TestTrapOncePerPagePerEpoch(t *testing.T) {
	_, core := fixture(t)
	tr := New(core, logBase, logSize)
	tr.Store(dataPos, []byte{1})
	tr.Store(dataPos+8, []byte{2})    // same page: no trap
	tr.Store(dataPos+4000, []byte{3}) // same page
	if tr.Traps.Load() != 1 {
		t.Fatalf("traps = %d, want 1", tr.Traps.Load())
	}
	tr.Store(dataPos+PageSize, []byte{4}) // next page
	if tr.Traps.Load() != 2 {
		t.Fatalf("traps = %d, want 2", tr.Traps.Load())
	}
	if tr.DirtyPages() != 2 {
		t.Fatalf("dirty pages = %d", tr.DirtyPages())
	}

	tr.Persist()
	if tr.DirtyPages() != 0 || tr.Epoch() != 1 {
		t.Fatal("persist did not reset epoch state")
	}
	// Pages re-protected: first store traps again.
	tr.Store(dataPos, []byte{5})
	if tr.Traps.Load() != 3 {
		t.Fatalf("traps = %d, want 3 after new epoch", tr.Traps.Load())
	}
}

func TestTrapChargesTime(t *testing.T) {
	_, core := fixture(t)
	tr := New(core, logBase, logSize)
	before := core.Now()
	tr.Store(dataPos, []byte{1})
	if core.Now()-before < sim.PageFaultTrap {
		t.Fatalf("first-touch store took %v, want ≥ trap cost %v", core.Now()-before, sim.PageFaultTrap)
	}
	before = core.Now()
	tr.Store(dataPos+8, []byte{1})
	if core.Now()-before >= sim.PageFaultTrap {
		t.Fatal("warm store paid the trap cost")
	}
}

func TestWriteAmplification(t *testing.T) {
	_, core := fixture(t)
	tr := New(core, logBase, logSize)
	// One 8-byte store per page across 16 pages: amplification = 4096/8.
	for i := 0; i < 16; i++ {
		tr.Store(dataPos+uint64(i)*PageSize, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}
	if got, want := tr.WriteAmplification(), float64(PageSize)/8; got != want {
		t.Fatalf("write amplification = %g, want %g", got, want)
	}
	if tr.PagesLogged.Load() != 16 || tr.BytesLogged.Load() != 16*PageSize {
		t.Fatalf("pages=%d bytes=%d", tr.PagesLogged.Load(), tr.BytesLogged.Load())
	}
}

func TestStoreSpanningPages(t *testing.T) {
	_, core := fixture(t)
	tr := New(core, logBase, logSize)
	// A store crossing a page boundary traps both pages.
	tr.Store(dataPos+PageSize-4, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	if tr.Traps.Load() != 2 {
		t.Fatalf("traps = %d, want 2", tr.Traps.Load())
	}
}

func TestEpochRollbackOnCrash(t *testing.T) {
	pm, core := fixture(t)
	tr := New(core, logBase, logSize)

	tr.Store(dataPos, []byte("epoch-one-value!"))
	tr.Persist() // durable snapshot

	tr.Store(dataPos, []byte("epoch-two-UNDONE"))
	core.FlushLines(dataPos, 16) // damage reaches media
	core.Fence()
	// Crash without Persist.

	core2 := attach(pm)
	log2, err := wal.Open(core2, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if n := log2.Recover(); n != 1 {
		t.Fatalf("recovered %d page records", n)
	}
	buf := make([]byte, 16)
	core2.Load(dataPos, buf)
	if string(buf) != "epoch-one-value!" {
		t.Fatalf("recovered %q", buf)
	}
}

func TestLoadsNeverTrap(t *testing.T) {
	_, core := fixture(t)
	tr := New(core, logBase, logSize)
	buf := make([]byte, 64)
	tr.Load(dataPos, buf)
	tr.Load(dataPos+PageSize, buf)
	if tr.Traps.Load() != 0 {
		t.Fatal("loads trapped")
	}
}
