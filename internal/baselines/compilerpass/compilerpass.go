// Package compilerpass implements the compiler-instrumented WAL baseline
// (Atlas, iDO): a Memory wrapper that behaves like a compiler pass which
// injects undo logging around *every* store to persistent memory. Unlike the
// hand-crafted PMDK baseline it cannot deduplicate pre-images within an
// operation or batch fences — the pass has no structural knowledge — so each
// store pays a log append plus fence.
//
// The `stalls` experiment compares its per-op fence count against PMDK's and
// against PAX (which stalls only at persist()).
package compilerpass

import (
	"fmt"

	"pax/internal/baselines/wal"
	"pax/internal/memory"
	"pax/internal/sim"
	"pax/internal/stats"
)

// Instrumented wraps a persistent Memory the way a crash-consistency
// compiler pass transforms code: every Store is preceded by a durable undo
// record of the bytes it overwrites.
type Instrumented struct {
	mem memory.Memory
	per memory.Persister
	log *wal.Log

	inOp bool

	// Stats.
	Ops        stats.Counter
	Stores     stats.Counter
	StoreBytes stats.Counter
}

// New builds an instrumented memory over mem (which must implement
// memory.Persister) with its undo log in [logBase, logBase+logSize).
func New(mem memory.Memory, logBase, logSize uint64) *Instrumented {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("compilerpass: memory must implement Persister")
	}
	return &Instrumented{mem: mem, per: per, log: wal.Create(mem, logBase, logSize)}
}

// Attach builds an Instrumented over an existing log (post-recovery reopen).
func Attach(mem memory.Memory, log *wal.Log) *Instrumented {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("compilerpass: memory must implement Persister")
	}
	return &Instrumented{mem: mem, per: per, log: log}
}

// Log exposes the undo log.
func (in *Instrumented) Log() *wal.Log { return in.log }

// BeginOp marks a failure-atomic region boundary (the pass instruments
// outermost function entry; Atlas uses lock acquisition).
func (in *Instrumented) BeginOp() {
	if in.inOp {
		panic("compilerpass: nested op")
	}
	in.log.Begin()
	in.inOp = true
	in.Ops.Inc()
}

// EndOp closes the region: flush pending data (the pass conservatively
// fences) and durably drop the undo records.
func (in *Instrumented) EndOp() sim.Time {
	if !in.inOp {
		panic("compilerpass: EndOp outside op")
	}
	in.per.Fence()
	done := in.log.Commit()
	in.inOp = false
	return done
}

// Load implements memory.Memory; loads are not instrumented.
func (in *Instrumented) Load(addr uint64, buf []byte) sim.Time {
	return in.mem.Load(addr, buf)
}

// Store implements memory.Memory: log the exact overwritten bytes, fence,
// then store, then flush the store (the conservative ordering an automatic
// pass emits: it cannot prove batching safe).
func (in *Instrumented) Store(addr uint64, data []byte) sim.Time {
	if !in.inOp {
		panic(fmt.Sprintf("compilerpass: store to %#x outside op", addr))
	}
	old := make([]byte, len(data))
	in.mem.Load(addr, old)
	in.log.Append(addr, old) // flush + fence inside
	done := in.mem.Store(addr, data)
	in.per.FlushLines(addr, len(data))
	in.Stores.Inc()
	in.StoreBytes.Add(uint64(len(data)))
	return done
}
