package compilerpass

import (
	"testing"

	"pax/internal/baselines/wal"
	"pax/internal/cache"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
)

const (
	logBase = 0
	logSize = 1 << 20
	dataPos = 2 << 20
	pmSize  = 4 << 20
)

func fixture(t *testing.T) (*pmem.Device, *cache.Core) {
	t.Helper()
	pm := pmem.New(pmem.DefaultConfig(pmSize))
	return pm, attach(pm)
}

func attach(pm *pmem.Device) *cache.Core {
	h := cache.NewHierarchy(sim.SmallHost())
	h.AddRange(0, pmSize, memory.NewControllerHome(pm, 0, 0, pmSize))
	return h.Core(0)
}

func TestEveryStoreLogged(t *testing.T) {
	_, core := fixture(t)
	in := New(core, logBase, logSize)
	in.BeginOp()
	in.Store(dataPos, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	in.Store(dataPos, []byte{9, 9, 9, 9, 9, 9, 9, 9}) // same location: logged again
	in.Store(dataPos, []byte{5, 5, 5, 5, 5, 5, 5, 5})
	in.EndOp()
	if got := in.Log().Appends.Load(); got != 3 {
		t.Fatalf("appends = %d, want 3 (no dedup in a compiler pass)", got)
	}
}

func TestRollbackRestoresPreOpState(t *testing.T) {
	pm, core := fixture(t)
	core.Store(dataPos, []byte("stable!!"))
	core.FlushLines(dataPos, 8)
	core.Fence()

	in := New(core, logBase, logSize)
	in.BeginOp()
	in.Store(dataPos, []byte("wrecked1"))
	in.Store(dataPos, []byte("wrecked2"))
	// Crash without EndOp; instrumented stores were individually flushed,
	// so the damage is on media.
	core2 := attach(pm)
	log2, err := wal.Open(core2, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if n := log2.Recover(); n != 2 {
		t.Fatalf("recovered %d", n)
	}
	buf := make([]byte, 8)
	core2.Load(dataPos, buf)
	if string(buf) != "stable!!" {
		t.Fatalf("recovered %q", buf)
	}
}

func TestMoreFencesThanPMDKShape(t *testing.T) {
	// The pass fences per store; for an op with N same-chunk stores it pays
	// N fences where the hand-crafted baseline pays 1.
	_, core := fixture(t)
	in := New(core, logBase, logSize)
	in.BeginOp()
	for i := 0; i < 10; i++ {
		in.Store(dataPos, []byte{byte(i), 0, 0, 0, 0, 0, 0, 0})
	}
	in.EndOp()
	if got := in.Log().Fences.Load(); got < 11 { // 10 appends + commit
		t.Fatalf("fences = %d, want ≥ 11", got)
	}
}

func TestOpDisciplinePanics(t *testing.T) {
	_, core := fixture(t)
	in := New(core, logBase, logSize)
	for _, f := range []func(){
		func() { in.Store(dataPos, []byte{1}) }, // store outside op
		func() { in.EndOp() },                   // end without begin
		func() { in.BeginOp(); in.BeginOp() },   // nested
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestLoadsNotInstrumented(t *testing.T) {
	_, core := fixture(t)
	in := New(core, logBase, logSize)
	buf := make([]byte, 8)
	in.Load(dataPos, buf) // outside any op: fine
	if in.Log().Appends.Load() != 0 {
		t.Fatal("load appended to log")
	}
}
