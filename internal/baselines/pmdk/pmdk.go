// Package pmdk implements the hand-crafted WAL baseline: a transactional
// memory in the style of Intel PMDK's libpmemobj, where each structure
// operation runs as an undo-logged transaction. Pre-images are logged once
// per 8-byte-aligned chunk per transaction (the hand-tuned granularity an
// expert would declare with pmemobj_tx_add_range), each first-touch log
// append is fenced before the guarded store proceeds, and commit flushes the
// data stores and durably closes the transaction.
//
// This reproduces the cost structure Figure 2b's "PMDK" series measures:
// synchronous log writes and multiple SFENCE stalls per operation.
package pmdk

import (
	"fmt"

	"pax/internal/baselines/wal"
	"pax/internal/memory"
	"pax/internal/sim"
	"pax/internal/stats"
)

const chunk = 8 // logging granularity: 8-byte aligned chunks

// TxMemory wraps a persistent Memory with per-transaction undo logging. It
// implements memory.Memory so unmodified structures run over it; every Store
// inside a transaction is interposed on, exactly like PMDK macros expand to.
type TxMemory struct {
	mem  memory.Memory
	per  memory.Persister
	log  *wal.Log
	inTx bool
	// logged tracks 8-byte chunks already logged this transaction.
	logged map[uint64]struct{}
	// pending are the chunks stored this transaction, flushed at commit.
	pending []pendingSpan

	// Stats.
	Txs        stats.Counter
	Stores     stats.Counter
	StoreBytes stats.Counter
}

type pendingSpan struct {
	addr uint64
	n    int
}

// New builds a transactional memory over mem (which must implement
// memory.Persister) with an undo log in [logBase, logBase+logSize).
func New(mem memory.Memory, logBase, logSize uint64) *TxMemory {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("pmdk: memory must implement Persister")
	}
	return &TxMemory{
		mem:    mem,
		per:    per,
		log:    wal.Create(mem, logBase, logSize),
		logged: make(map[uint64]struct{}),
	}
}

// Attach builds a TxMemory over an existing log (post-recovery reopen).
func Attach(mem memory.Memory, log *wal.Log) *TxMemory {
	per, ok := mem.(memory.Persister)
	if !ok {
		panic("pmdk: memory must implement Persister")
	}
	return &TxMemory{mem: mem, per: per, log: log, logged: make(map[uint64]struct{})}
}

// Log exposes the undo log (stats, recovery tests).
func (t *TxMemory) Log() *wal.Log { return t.log }

// Begin opens a transaction.
func (t *TxMemory) Begin() {
	if t.inTx {
		panic("pmdk: nested transaction")
	}
	t.log.Begin()
	t.inTx = true
	t.Txs.Inc()
}

// Commit flushes the transaction's data stores, fences, and durably closes
// the undo log. After Commit the mutations are failure-atomic.
func (t *TxMemory) Commit() sim.Time {
	if !t.inTx {
		panic("pmdk: commit outside transaction")
	}
	for _, s := range t.pending {
		t.per.FlushLines(s.addr, s.n)
	}
	t.per.Fence()
	done := t.log.Commit()
	t.inTx = false
	t.pending = t.pending[:0]
	// Replace rather than clear(): one huge transaction (e.g. snapshotting a
	// multi-megabyte range) would otherwise leave the map's bucket array
	// permanently large, making every later clear() an O(capacity) sweep.
	t.logged = make(map[uint64]struct{})
	return done
}

// Load implements memory.Memory.
func (t *TxMemory) Load(addr uint64, buf []byte) sim.Time {
	return t.mem.Load(addr, buf)
}

// Store implements memory.Memory: inside a transaction, the pre-image of
// every not-yet-logged 8-byte chunk is durably logged before the store.
func (t *TxMemory) Store(addr uint64, data []byte) sim.Time {
	if !t.inTx {
		panic(fmt.Sprintf("pmdk: store to %#x outside transaction", addr))
	}
	start := addr &^ uint64(chunk-1)
	end := (addr + uint64(len(data)) + chunk - 1) &^ uint64(chunk-1)
	var toLog []uint64
	for c := start; c < end; c += chunk {
		if _, ok := t.logged[c]; !ok {
			toLog = append(toLog, c)
			t.logged[c] = struct{}{}
		}
	}
	// Log pre-images for all new chunks, coalescing consecutive chunks into
	// one range record — exactly what pmemobj_tx_add_range does for a
	// contiguous snapshot. wal.Append fences each record, giving the
	// log→store ordering §2 describes.
	for i := 0; i < len(toLog); {
		j := i + 1
		for j < len(toLog) && toLog[j] == toLog[j-1]+chunk {
			j++
		}
		runStart, runLen := toLog[i], uint64(j-i)*chunk
		old := make([]byte, runLen)
		t.mem.Load(runStart, old)
		t.log.Append(runStart, old)
		i = j
	}
	done := t.mem.Store(addr, data)
	t.pending = append(t.pending, pendingSpan{addr: addr, n: len(data)})
	t.Stores.Inc()
	t.StoreBytes.Add(uint64(len(data)))
	return done
}

// Map is the PMDK-style persistent hash map: the repository's generic
// HashMap run over TxMemory, one transaction per operation — the shape of
// PMDK's hand-built structures.
type Map struct {
	tx *TxMemory
	hm hashMap
}

// hashMap is the minimal interface Map needs from structures.HashMap; it is
// satisfied by *structures.HashMap and keeps this package free of an import
// cycle with test helpers.
type hashMap interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, bool)
	Delete(key []byte) (bool, error)
	Len() uint64
}

// NewMap wraps hm (built over tx) as a transaction-per-op persistent map.
func NewMap(tx *TxMemory, hm hashMap) *Map { return &Map{tx: tx, hm: hm} }

// Put runs an insert/update as one failure-atomic transaction.
func (m *Map) Put(key, value []byte) error {
	m.tx.Begin()
	err := m.hm.Put(key, value)
	m.tx.Commit()
	return err
}

// Get reads without transactional overhead (loads are never interposed on).
func (m *Map) Get(key []byte) ([]byte, bool) { return m.hm.Get(key) }

// Delete runs a removal as one failure-atomic transaction.
func (m *Map) Delete(key []byte) (bool, error) {
	m.tx.Begin()
	present, err := m.hm.Delete(key)
	m.tx.Commit()
	return present, err
}

// Len reports the entry count.
func (m *Map) Len() uint64 { return m.hm.Len() }
