package pmdk

import (
	"bytes"
	"fmt"
	"testing"

	"pax/internal/baselines/wal"
	"pax/internal/cache"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
	"pax/internal/structures"
)

const (
	logBase  = 0
	logSize  = 1 << 20
	heapBase = 1 << 20
	heapSize = 8 << 20
	pmSize   = heapBase + heapSize
)

func fixture(t *testing.T) (*pmem.Device, *cache.Core) {
	t.Helper()
	pm := pmem.New(pmem.DefaultConfig(pmSize))
	return pm, attach(pm)
}

func attach(pm *pmem.Device) *cache.Core {
	h := cache.NewHierarchy(sim.SmallHost())
	h.AddRange(0, pmSize, memory.NewControllerHome(pm, 0, 0, pmSize))
	return h.Core(0)
}

func TestTxAtomicCommit(t *testing.T) {
	pm, core := fixture(t)
	tx := New(core, logBase, logSize)
	tx.Begin()
	tx.Store(heapBase, []byte("hello"))
	tx.Store(heapBase+100, []byte("world"))
	tx.Commit()

	// Crash after commit: both stores durable.
	core2 := attach(pm)
	log2, err := wal.Open(core2, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if n := log2.Recover(); n != 0 {
		t.Fatalf("rolled back %d records from committed tx", n)
	}
	buf := make([]byte, 5)
	core2.Load(heapBase, buf)
	if string(buf) != "hello" {
		t.Fatalf("first store lost: %q", buf)
	}
	core2.Load(heapBase+100, buf)
	if string(buf) != "world" {
		t.Fatalf("second store lost: %q", buf)
	}
}

func TestTxRollbackOnCrash(t *testing.T) {
	pm, core := fixture(t)
	// Durable initial state.
	core.Store(heapBase, []byte("original"))
	core.FlushLines(heapBase, 8)
	core.Fence()

	tx := New(core, logBase, logSize)
	tx.Begin()
	tx.Store(heapBase, []byte("mutated!"))
	// Force the mutated data to media to prove rollback, then crash
	// WITHOUT commit.
	core.FlushLines(heapBase, 8)
	core.Fence()

	core2 := attach(pm)
	log2, err := wal.Open(core2, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if n := log2.Recover(); n == 0 {
		t.Fatal("nothing recovered")
	}
	buf := make([]byte, 8)
	core2.Load(heapBase, buf)
	if string(buf) != "original" {
		t.Fatalf("rollback failed: %q", buf)
	}
}

func TestChunkDedupWithinTx(t *testing.T) {
	_, core := fixture(t)
	tx := New(core, logBase, logSize)
	tx.Begin()
	tx.Store(heapBase, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	appendsAfterFirst := tx.Log().Appends.Load()
	tx.Store(heapBase, []byte{9, 9, 9, 9, 9, 9, 9, 9}) // same chunk
	tx.Store(heapBase+2, []byte{7})                    // still same chunk
	if tx.Log().Appends.Load() != appendsAfterFirst {
		t.Fatal("re-logged an already-logged chunk")
	}
	tx.Store(heapBase+8, []byte{1}) // new chunk
	if tx.Log().Appends.Load() != appendsAfterFirst+1 {
		t.Fatal("new chunk not logged")
	}
	tx.Commit()

	// Dedup state resets across transactions.
	tx.Begin()
	tx.Store(heapBase, []byte{1})
	if tx.Log().Appends.Load() != appendsAfterFirst+2 {
		t.Fatal("chunk not re-logged in new tx")
	}
	tx.Commit()
}

func TestUnalignedStoreLogsSpannedRange(t *testing.T) {
	_, core := fixture(t)
	tx := New(core, logBase, logSize)
	tx.Begin()
	// Spans chunks at +0 and +8: logged as ONE coalesced 16-byte range
	// record (the pmemobj_tx_add_range shape).
	tx.Store(heapBase+6, []byte{1, 2, 3, 4})
	if got := tx.Log().Appends.Load(); got != 1 {
		t.Fatalf("spanning store logged %d records, want 1 range", got)
	}
	if got := tx.Log().AppendedBytes.Load(); got != 16 {
		t.Fatalf("range record covered %d bytes, want 16", got)
	}
	// A later store to either chunk is already covered: no new record.
	tx.Store(heapBase, []byte{9})
	tx.Store(heapBase+8, []byte{9})
	if got := tx.Log().Appends.Load(); got != 1 {
		t.Fatalf("covered chunks re-logged (%d records)", got)
	}
	tx.Commit()
}

func TestStoreOutsideTxPanics(t *testing.T) {
	_, core := fixture(t)
	tx := New(core, logBase, logSize)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tx.Store(heapBase, []byte{1})
}

func TestFenceCostsAccrue(t *testing.T) {
	_, core := fixture(t)
	tx := New(core, logBase, logSize)
	before := core.Now()
	tx.Begin()
	tx.Store(heapBase, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	tx.Store(heapBase+64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	tx.Commit()
	elapsed := core.Now() - before
	// Two log fences + commit fences: at least 3 SFENCE drains plus PM
	// write latency for the log entries.
	if elapsed < 3*sim.SFenceDrain {
		t.Fatalf("tx took %v, expected ≥ 3 fences of stall", elapsed)
	}
}

func TestMapOverTxMemory(t *testing.T) {
	pm, core := fixture(t)
	tx := New(core, logBase, logSize)

	// Build the generic hash map over the transactional memory: this is the
	// PMDK-style hand-built map.
	tx.Begin() // construction is itself a transaction
	arena := memory.NewBump(tx, heapBase, heapSize)
	hm, err := structures.NewHashMap(arena, 16)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	m := NewMap(tx, hm)
	for i := 0; i < 200; i++ {
		if err := m.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if m.Len() != 200 {
		t.Fatalf("len = %d", m.Len())
	}
	got, ok := m.Get([]byte("k007"))
	if !ok || !bytes.Equal(got, []byte("v007")) {
		t.Fatalf("Get = %q %v", got, ok)
	}
	present, err := m.Delete([]byte("k007"))
	if err != nil || !present {
		t.Fatal("delete failed")
	}

	// Crash + recover: all committed operations survive. (Data may be in
	// caches; PMDK relies on flush-at-commit, which Map does.)
	core2 := attach(pm)
	log2, err := wal.Open(core2, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	log2.Recover()
	arena2 := memory.NewBump(core2, heapBase, heapSize)
	hm2 := structures.OpenHashMap(arena2, hm.Addr())
	if hm2.Len() != 199 {
		t.Fatalf("recovered len = %d, want 199", hm2.Len())
	}
	got, ok = hm2.Get([]byte("k008"))
	if !ok || !bytes.Equal(got, []byte("v008")) {
		t.Fatalf("recovered Get = %q %v", got, ok)
	}
	if _, ok := hm2.Get([]byte("k007")); ok {
		t.Fatal("deleted key resurrected")
	}
}
