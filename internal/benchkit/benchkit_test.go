package benchkit

import (
	"strings"
	"testing"

	"pax/internal/workload"
)

func quickRun(t *testing.T, kind SystemKind, spec RunSpec) RunResult {
	t.Helper()
	f, err := Build(kind, TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return RunKV(f, spec)
}

func writeSpec(persistEvery int) RunSpec {
	return RunSpec{
		Workload:     workload.Fig2bConfig(1000),
		LoadKeys:     1000,
		MeasureOps:   2000,
		PersistEvery: persistEvery,
	}
}

func TestAllFixturesBuildAndRun(t *testing.T) {
	for _, kind := range []SystemKind{DRAM, PMDirect, PMDK, CompilerPass, PageFault, PAXCXL, PAXEnzian} {
		f, err := Build(kind, TestConfig())
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		persistEvery := 0
		if kind == PageFault || kind == PAXCXL || kind == PAXEnzian {
			persistEvery = 500
		}
		res := RunKV(f, RunSpec{
			Workload:     workload.Fig2bConfig(500),
			LoadKeys:     500,
			MeasureOps:   1000,
			PersistEvery: persistEvery,
		})
		if res.NsPerOp <= 0 {
			t.Fatalf("%s: ns/op = %g", kind, res.NsPerOp)
		}
		if res.MopsSingle() <= 0 {
			t.Fatalf("%s: zero throughput", kind)
		}
		// Functional check: the map must answer gets after the run.
		g := workload.NewGenerator(workload.Fig2bConfig(500))
		found := 0
		for i := uint64(0); i < 500; i++ {
			if _, ok := f.Map.Get(g.MakeKey(i)); ok {
				found++
			}
		}
		if found != 500 {
			t.Fatalf("%s: only %d/500 keys survive the run", kind, found)
		}
	}
}

func TestPerformanceOrdering(t *testing.T) {
	dram := quickRun(t, DRAM, writeSpec(0))
	pmDirect := quickRun(t, PMDirect, writeSpec(0))
	pmdkRes := quickRun(t, PMDK, writeSpec(0))
	cp := quickRun(t, CompilerPass, writeSpec(0))
	pax := quickRun(t, PAXCXL, writeSpec(500))

	// The paper's qualitative claims, in ns/op (lower is better):
	if !(dram.NsPerOp < pmDirect.NsPerOp) {
		t.Errorf("DRAM (%.0f) not faster than PM direct (%.0f)", dram.NsPerOp, pmDirect.NsPerOp)
	}
	if !(pmDirect.NsPerOp < pmdkRes.NsPerOp) {
		t.Errorf("PM direct (%.0f) not faster than PMDK (%.0f)", pmDirect.NsPerOp, pmdkRes.NsPerOp)
	}
	// On update-in-place workloads the two WAL variants coincide (one chunk
	// per op); the hand-crafted advantage appears on multi-store ops, which
	// TestStallAccounting checks with an insert-heavy workload. Here the
	// pass must merely never beat the hand-crafted code.
	if pmdkRes.NsPerOp > cp.NsPerOp {
		t.Errorf("hand-crafted PMDK (%.0f) slower than compiler pass (%.0f)", pmdkRes.NsPerOp, cp.NsPerOp)
	}
	// §5: PAX with group commit beats the synchronous WAL.
	if !(pax.NsPerOp < pmdkRes.NsPerOp) {
		t.Errorf("PAX (%.0f) not faster than PMDK (%.0f)", pax.NsPerOp, pmdkRes.NsPerOp)
	}
}

func TestStallAccounting(t *testing.T) {
	// Insert-heavy spec (no pre-load): each put allocates and links a node,
	// so ops have several stores — where per-store instrumentation (the
	// compiler pass) pays more fences than chunk-deduplicating PMDK.
	insertSpec := func(persistEvery int) RunSpec {
		return RunSpec{
			Workload:     workload.Fig2bConfig(4000),
			MeasureOps:   2000,
			PersistEvery: persistEvery,
		}
	}
	pmdkRes := quickRun(t, PMDK, insertSpec(0))
	cp := quickRun(t, CompilerPass, insertSpec(0))
	pax := quickRun(t, PAXCXL, insertSpec(500))

	if pmdkRes.FencesPerOp < 1 {
		t.Errorf("PMDK fences/op = %.2f, want ≥ 1", pmdkRes.FencesPerOp)
	}
	if cp.FencesPerOp <= pmdkRes.FencesPerOp {
		t.Errorf("compiler pass fences/op %.2f not above PMDK %.2f", cp.FencesPerOp, pmdkRes.FencesPerOp)
	}
	if pax.FencesPerOp != 0 {
		t.Errorf("PAX fences/op = %.2f, want 0 (stalls only in persist)", pax.FencesPerOp)
	}
}

func TestScaleModel(t *testing.T) {
	res := quickRun(t, PMDirect, writeSpec(0))
	f, _ := Build(PMDirect, TestConfig())
	points := Scale(res, f.Caps(), []int{1, 8, 32})
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	if points[0].Mops <= 0 {
		t.Fatal("zero single-thread throughput")
	}
	// Monotone non-decreasing in threads.
	for i := 1; i < len(points); i++ {
		if points[i].Mops < points[i-1].Mops {
			t.Fatalf("throughput fell with threads: %+v", points)
		}
	}
	// With absurdly low caps, the bottleneck must bind.
	capped := Scale(res, Caps{PMWriteBW: 1, PMReadBW: 1}, []int{32})
	if capped[0].Bottleneck == "cpu" {
		t.Fatal("tiny caps did not bind")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are seconds each")
	}
	cfg := TestConfig()
	sz := Sizes{Keys: 500, MeasureOps: 600, PersistEvery: 100, Threads: []int{1, 8, 32}}
	for _, e := range Experiments() {
		tables := e.Run(cfg, sz)
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", e.ID)
		}
		for _, tb := range tables {
			out := tb.String()
			if len(out) == 0 || !strings.Contains(out, "\n") {
				t.Fatalf("%s produced empty table", e.ID)
			}
		}
	}
}

func TestFindExperiment(t *testing.T) {
	if _, ok := Find("fig2a"); !ok {
		t.Fatal("fig2a missing")
	}
	if _, ok := Find("bogus"); ok {
		t.Fatal("bogus found")
	}
	if len(Experiments()) != 24 {
		t.Fatalf("%d experiments, want 24", len(Experiments()))
	}
}

func TestFig2aShape(t *testing.T) {
	cfg := TestConfig()
	sz := Sizes{Keys: 2000, MeasureOps: 2000, PersistEvery: 500, Threads: []int{1}}
	tables := Fig2a(cfg, sz)
	out := tables[0].String()
	for _, want := range []string{"DRAM", "PM via CXL", "PM via Enzian", "amat_ns"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig2a table missing %q:\n%s", want, out)
		}
	}
}

func TestWriteAmplificationShape(t *testing.T) {
	cfg := TestConfig()
	tables := WriteAmplification(cfg, QuickSizes())
	out := tables[0].String()
	if !strings.Contains(out, "one-per-page") {
		t.Fatalf("missing pattern rows:\n%s", out)
	}
	// For the sparse pattern the page tracker must amplify far more than
	// PAX; spot-check by re-measuring directly.
	pf := mustBuild(PageFault, cfg)
	base := cfg.LogSize + cfg.DataSize/2
	stored := storePattern(pf.RawMem, base, 1<<18, "one-per-page")
	pf.Persist()
	wa := float64(pf.LoggedBytes()) / float64(stored)
	if wa < 100 {
		t.Fatalf("page-fault sparse write amplification = %.0f, want ≥ 100", wa)
	}
}
