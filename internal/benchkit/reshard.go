package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pax"
	"pax/internal/server"
	"pax/internal/stats"
)

// This file is the live-resharding experiment: run a zipfian-skewed shared
// keyspace against a file-backed sharded engine, measure the hot-shard
// collapse, split the hottest shard live, measure again, then crash and
// reopen to prove no acked write was lost. It is the end-to-end measurement
// of the slot router (internal/server/slotmap.go + migrate.go): acked ops/s
// should rise and the hot shard's ack tail should fall, with only
// ~moved-slots/256 of the keyspace migrating.

// SplitJSON is the split half of a reshard record: what moved and whether
// the crash check passed. It rides on the post-split LoadJSON record.
type SplitJSON struct {
	Source     int     `json:"source"`
	Dest       int     `json:"dest"`
	NewShard   bool    `json:"new_shard"`
	MovedSlots int     `json:"moved_slots"`
	MovedKeys  int     `json:"moved_keys"`
	MovedFrac  float64 `json:"moved_frac"` // MovedSlots / NumSlots
	SplitMS    float64 `json:"split_ms"`   // wall time of the live migration
	// CrashVerified is whether the post-split crash+reopen found every key
	// present with a current value; LostKeys counts the ones it did not (the
	// acceptance bar is 0).
	CrashVerified bool `json:"crash_verified"`
	LostKeys      int  `json:"lost_keys"`
}

// SplitResult is everything RunSplitLoad measured: the steady-state phase
// before the split, the phase after, and the split itself.
type SplitResult struct {
	Pre, Post LoadResult
	Split     SplitJSON
	Report    *server.SplitReport
}

// JSON renders the two phases as LoadJSON records tagged pre-split /
// post-split, with the split details attached to the post record — the shape
// BENCH_loadgen.json stores.
func (r SplitResult) JSON() []LoadJSON {
	pre := r.Pre.JSON()
	pre.Phase = "pre-split"
	post := r.Post.JSON()
	post.Phase = "post-split"
	split := r.Split
	post.Split = &split
	return []LoadJSON{pre, post}
}

// RunSplitLoad is the live-split A/B. One file-backed sharded engine serves
// a zipfian shared keyspace through three stages:
//
//  1. Preload, then a measured pre-split phase (spec as given).
//  2. Split: the engine picks its hottest shard from per-slot op counts and
//     migrates the hot half of its slots to a new shard — live, while no
//     client traffic is suspended except per-slot during each cutover.
//  3. A measured post-split phase (same spec, reseeded), then Crash (no
//     final commit), reopen from the discovered layout, and verify every
//     key of the keyspace is present — every pre-crash acked durable write
//     must have survived the migration.
//
// spec must be file-backed (PoolDir), shared-keyspace (Keys > 0), and
// multi-shard (Shards >= 2; bare layouts cannot split).
func RunSplitLoad(spec LoadSpec) (SplitResult, error) {
	var out SplitResult
	if spec.PoolDir == "" || spec.Keys == 0 || spec.Shards < 2 {
		return out, fmt.Errorf("benchkit: split load needs PoolDir, Keys > 0, and Shards >= 2, got %+v", spec)
	}
	if spec.AckOnApply {
		// The crash check asserts every acked write survives; apply-acked
		// writes are allowed to roll back, so the assertion would be vacuous.
		return out, fmt.Errorf("benchkit: split load measures durable acks; AckOnApply would make the crash check vacuous")
	}
	shards := spec.Shards
	opts := pax.Options{DataSize: 32 << 20, LogSize: 16 << 20, HBMSize: 16 << 20, EpochLog: spec.EpochLog, Overwrite: true}
	if spec.DataSize > 0 {
		opts.DataSize = spec.DataSize
	}
	path := filepath.Join(spec.PoolDir, "load.pool")
	cfg := server.Config{
		MaxBatch:           spec.MaxBatch,
		MaxDelay:           spec.MaxDelay,
		Async:              spec.Async,
		CommitLatency:      spec.CommitLatency,
		QueuedReads:        spec.QueuedReads,
		MaxInflightCommits: spec.MaxInflightCommits,
	}
	eng, err := server.OpenSharded(path, shards, opts, 0, cfg)
	if err != nil {
		return out, err
	}
	value := make([]byte, spec.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	if err := preloadKeys(eng, spec, value); err != nil {
		eng.Close()
		return out, err
	}

	out.Pre, err = measurePhase(eng, spec, value, 0)
	if err != nil {
		eng.Close()
		return out, err
	}

	splitStart := time.Now()
	rep, err := eng.Split(-1)
	if err != nil {
		eng.Close()
		return out, fmt.Errorf("benchkit: live split: %w", err)
	}
	out.Report = rep
	out.Split = SplitJSON{
		Source:     rep.Source,
		Dest:       rep.Dest,
		NewShard:   rep.NewShard,
		MovedSlots: len(rep.MovedSlots),
		MovedKeys:  rep.MovedKeys,
		MovedFrac:  float64(len(rep.MovedSlots)) / float64(server.NumSlots),
		SplitMS:    float64(time.Since(splitStart).Microseconds()) / 1e3,
	}

	// Reseed so the post phase draws a fresh sample of the same distribution
	// rather than replaying identical key sequences against warm state.
	post := spec
	post.Seed = spec.Seed + 7919
	post.Shards = eng.NumShards()
	out.Post, err = measurePhase(eng, post, value, 1)
	if err != nil {
		eng.Close()
		return out, err
	}

	// Crash (no final commit) and reopen from the discovered layout: every
	// key must still be present — the preload was durable and every measured
	// write was acked durable, so a miss is a lost acked write.
	if err := eng.Crash(); err != nil {
		return out, fmt.Errorf("benchkit: crash after split: %w", err)
	}
	n, err := server.DiscoverShards(path)
	if err != nil {
		return out, fmt.Errorf("benchkit: rediscovering layout: %w", err)
	}
	reopenOpts := opts
	reopenOpts.Overwrite = false
	reng, err := server.OpenSharded(path, n, reopenOpts, 0, cfg)
	if err != nil {
		return out, fmt.Errorf("benchkit: reopening after crash: %w", err)
	}
	defer reng.Close()
	lost := 0
	for i := uint64(0); i < spec.Keys; i++ {
		if _, ok, err := reng.Get(sharedKey(i)); err != nil || !ok {
			lost++
		}
	}
	out.Split.LostKeys = lost
	out.Split.CrashVerified = lost == 0
	return out, nil
}

// measurePhase runs one measured shared-keyspace phase against an already
// preloaded engine and folds the counter deltas into a LoadResult. Unlike
// RunLoad it samples the per-shard counters before and after (the engine
// stays open across phases), so each phase's imbalance reflects only its own
// traffic.
func measurePhase(eng *server.ShardedEngine, spec LoadSpec, value []byte, phase int) (LoadResult, error) {
	policy := server.AckDurable
	if spec.AckOnApply {
		policy = server.AckApply
	}
	before := shardCounters(eng)
	aggBefore := eng.AggregateStats()
	shardAck := make([]stats.LatencyHistogram, eng.NumShards())
	var ackLat stats.LatencyHistogram
	errs := make(chan error, spec.Clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Offset the per-client seed by phase so the two phases do not
			// replay the same streams.
			phased := spec
			phased.Seed = spec.Seed + int64(phase)*1_000_000_007
			runSharedClient(eng, phased, c, value, policy, &ackLat, shardAck, errs)
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	select {
	case err := <-errs:
		return LoadResult{}, err
	default:
	}
	after := shardCounters(eng)
	agg := eng.AggregateStats()

	ack := ackLat.Snapshot()
	res := LoadResult{
		Spec:         spec,
		AckedWrites:  (agg.AckedWrites + agg.AckedOnApply) - (aggBefore.AckedWrites + aggBefore.AckedOnApply),
		Gets:         agg.Gets - aggBefore.Gets,
		GroupCommits: agg.GroupCommits - aggBefore.GroupCommits,
		BatchMax:     agg.BatchMax,
		Wall:         wall,
		AckP50:       time.Duration(ack.Quantile(0.50)),
		AckP95:       time.Duration(ack.Quantile(0.95)),
		AckP99:       time.Duration(ack.Quantile(0.99)),
		PoolBytes:    int64(eng.MediaSize()),
		EpochLog:     eng.EpochLogEnabled(),
	}
	if res.GroupCommits > 0 {
		res.Amortization = float64(res.AckedWrites) / float64(res.GroupCommits)
	}
	if wall > 0 {
		res.Throughput = float64(res.AckedWrites) / wall.Seconds()
		res.OpsThroughput = float64(res.AckedWrites+res.Gets) / wall.Seconds()
	}
	loads := make([]ShardLoad, len(after))
	var sum, max float64
	for k := range after {
		delta := after[k]
		if k < len(before) {
			delta -= before[k]
		}
		snap := shardAck[k].Snapshot()
		loads[k] = ShardLoad{
			Shard:        k,
			AckedOps:     delta,
			AckP99Micros: float64(snap.Quantile(0.99)) / 1e3,
		}
		sum += float64(delta)
		if float64(delta) > max {
			max = float64(delta)
			res.HotShard = k
		}
	}
	if sum > 0 {
		res.ShardImbalance = max / (sum / float64(len(loads)))
	}
	res.PerShard = loads
	return res, nil
}

// shardCounters samples each shard's acked-op counters (atomic; safe under
// traffic) so phases can difference them.
func shardCounters(eng *server.ShardedEngine) []uint64 {
	return eng.ShardAckedWrites()
}

// Reshard is the experiment wrapper: a zipfian skew sweep (the recorded size
// of the hot-shard problem at increasing s) and the live-split A/B.
func Reshard(cfg Config, sz Sizes) []*stats.Table {
	ops := sz.MeasureOps / 30
	if ops < 40 {
		ops = 40
	}
	keys := sz.sweepKeys()
	if keys > 20_000 {
		keys = 20_000
	}

	skewTable := stats.NewTable("reshard: zipfian skew vs shard imbalance (4 shards, 64 clients, 2ms media commit)",
		"dist", "zipf s", "acked ops/s", "imbalance (max/mean)", "hot shard", "hot p99 ack ms", "p99 ack ms")
	type sweep struct {
		dist string
		s    float64
	}
	for _, sw := range []sweep{{"uniform", 0}, {"zipf", 1.1}, {"zipf", 1.2}, {"zipf", 1.5}} {
		res, err := RunLoad(LoadSpec{
			Clients:       64,
			OpsPerClient:  ops,
			ValueBytes:    64,
			ReadRatio:     0.5,
			RMWRatio:      0.25,
			Keys:          keys,
			Dist:          sw.dist,
			ZipfS:         sw.s,
			MaxBatch:      16,
			MaxDelay:      2 * time.Millisecond,
			Shards:        4,
			CommitLatency: 2 * time.Millisecond,
		})
		if err != nil {
			panic(fmt.Sprintf("benchkit: reshard skew sweep (%s s=%v): %v", sw.dist, sw.s, err))
		}
		hotP99 := 0.0
		if res.HotShard < len(res.PerShard) {
			hotP99 = res.PerShard[res.HotShard].AckP99Micros / 1e3
		}
		skewTable.AddRowf(sw.dist, sw.s, res.OpsThroughput, res.ShardImbalance, res.HotShard,
			hotP99, float64(res.AckP99.Microseconds())/1e3)
	}

	dir, err := os.MkdirTemp("", "pax-reshard-*")
	if err != nil {
		panic(fmt.Sprintf("benchkit: reshard: %v", err))
	}
	defer os.RemoveAll(dir)
	sres, err := RunSplitLoad(LoadSpec{
		Clients:       64,
		OpsPerClient:  ops,
		ValueBytes:    64,
		ReadRatio:     0.5,
		Keys:          keys,
		Dist:          "zipf",
		ZipfS:         1.2,
		MaxBatch:      16,
		MaxDelay:      2 * time.Millisecond,
		Shards:        2,
		CommitLatency: 2 * time.Millisecond,
		PoolDir:       dir,
		// Delta commits keep the A/B about routing, not about full-image
		// republish IO (and keep the quick scale actually quick).
		EpochLog: true,
	})
	if err != nil {
		panic(fmt.Sprintf("benchkit: reshard split A/B: %v", err))
	}
	splitTable := stats.NewTable("reshard: live split A/B (zipf s=1.2, 2 shards -> 3, file-backed, 2ms media commit)",
		"phase", "shards", "acked ops/s", "imbalance", "hot p99 ack ms", "moved slots", "moved keys", "crash ok")
	hotP99 := func(r LoadResult) float64 {
		if r.HotShard < len(r.PerShard) {
			return r.PerShard[r.HotShard].AckP99Micros / 1e3
		}
		return 0
	}
	splitTable.AddRowf("pre-split", sres.Pre.Spec.Shards, sres.Pre.OpsThroughput, sres.Pre.ShardImbalance,
		hotP99(sres.Pre), "-", "-", "-")
	splitTable.AddRowf("post-split", sres.Post.Spec.Shards, sres.Post.OpsThroughput, sres.Post.ShardImbalance,
		hotP99(sres.Post), sres.Split.MovedSlots, sres.Split.MovedKeys, sres.Split.CrashVerified)
	return []*stats.Table{skewTable, splitTable}
}
