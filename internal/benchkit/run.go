package benchkit

import (
	"fmt"

	"pax/internal/sim"
	"pax/internal/stats"
	"pax/internal/workload"
)

// RunResult is the measured single-thread profile of one system on one
// workload: simulated per-op latency plus per-op shared-resource demands,
// which the scaling model turns into multi-thread throughput.
type RunResult struct {
	System SystemKind
	Ops    int

	Elapsed sim.Time
	NsPerOp float64

	// Per-op shared-resource demands.
	PMWriteBytesPerOp float64
	PMReadBytesPerOp  float64
	LinkBytesPerOp    float64
	DeviceMsgsPerOp   float64

	// Mechanism-level counters for the stall/amplification experiments.
	FencesPerOp      float64
	LoggedBytesPerOp float64
	TrapsPerOp       float64

	// Cache behaviour (AMAT inputs).
	L1Miss, L2Miss, LLCMiss float64
	HBMHitRate              float64

	// Latencies is the per-op simulated latency histogram (picoseconds),
	// populated when RunSpec.RecordLatencies is set.
	Latencies *stats.Histogram
}

// MopsSingle reports single-thread throughput in million ops/second.
func (r RunResult) MopsSingle() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds() / 1e6
}

// RunSpec describes one measurement run.
type RunSpec struct {
	Workload workload.Config
	// LoadKeys pre-populates the table with keys [0, LoadKeys).
	LoadKeys int
	// MeasureOps is the measured operation count.
	MeasureOps int
	// PersistEvery commits an epoch every N measured ops (snapshot systems
	// only; 0 disables).
	PersistEvery int
	// Pipelined selects PersistPipelined when available.
	Pipelined bool
	// RecordLatencies captures a per-operation simulated-latency histogram
	// (persist stalls are charged to the op that triggered them, showing
	// group commit's tail).
	RecordLatencies bool
	// PostLoad, if set, runs after the load phase and its commit, just
	// before measurement counters are snapshotted — the hook experiments use
	// to zero their own counters.
	PostLoad func()
}

// deleter is the optional delete surface of a fixture map.
type deleter interface {
	Delete(key []byte) (bool, error)
}

// RunKV executes spec against fixture f and returns the measured profile.
func RunKV(f *Fixture, spec RunSpec) RunResult {
	gen := workload.NewGenerator(spec.Workload)

	// Load phase: populate the table, then commit it so the measurement
	// window starts from a persisted steady state. Snapshot systems also
	// persist periodically during the load so the undo log footprint stays
	// bounded by the epoch length, not the dataset size.
	for i := 0; i < spec.LoadKeys; i++ {
		k := uint64(i)
		if err := f.Map.Put(gen.MakeKey(k), gen.MakeValue(k)); err != nil {
			panic(fmt.Sprintf("benchkit: load put: %v", err))
		}
		if spec.PersistEvery > 0 && (i+1)%spec.PersistEvery == 0 {
			f.Persist()
		}
	}
	if spec.PersistEvery > 0 && f.Persist != nil {
		f.Persist()
	}
	if spec.PostLoad != nil {
		spec.PostLoad()
	}

	// Snapshot counters at the window start.
	f.PM.ResetStats()
	f.Hier.ResetStats()
	if f.Link != nil {
		f.Link.ResetStats()
	}
	if f.Dev != nil && f.Dev.HBM() != nil {
		f.Dev.HBM().Ratio.Reset()
	}
	fences0 := f.Fences()
	logged0 := f.LoggedBytes()
	traps0 := f.Traps()
	start := f.Core.Now()

	persist := f.Persist
	if spec.Pipelined && f.PersistPipelined != nil {
		persist = f.PersistPipelined
	}
	var hist *stats.Histogram
	if spec.RecordLatencies {
		hist = stats.NewHistogram()
	}
	for i := 0; i < spec.MeasureOps; i++ {
		opStart := f.Core.Now()
		op := gen.Next()
		switch op.Kind {
		case workload.Get:
			f.Map.Get(op.Key)
		case workload.Put:
			if err := f.Map.Put(op.Key, op.Value); err != nil {
				panic(fmt.Sprintf("benchkit: measure put: %v", err))
			}
		case workload.Delete:
			if d, ok := f.Map.(deleter); ok {
				if _, err := d.Delete(op.Key); err != nil {
					panic(fmt.Sprintf("benchkit: measure delete: %v", err))
				}
			}
		}
		if spec.PersistEvery > 0 && (i+1)%spec.PersistEvery == 0 {
			persist()
		}
		if hist != nil {
			hist.Observe(int64(f.Core.Now() - opStart))
		}
	}
	if spec.PersistEvery > 0 && spec.MeasureOps%spec.PersistEvery != 0 {
		persist()
	}

	elapsed := f.Core.Now() - start
	ops := float64(spec.MeasureOps)
	res := RunResult{
		System:  f.Kind,
		Ops:     spec.MeasureOps,
		Elapsed: elapsed,
		NsPerOp: elapsed.Nanoseconds() / ops,

		PMWriteBytesPerOp: float64(f.PM.BytesWritten.Load()) / ops,
		PMReadBytesPerOp:  float64(f.PM.BytesRead.Load()) / ops,

		FencesPerOp:      float64(f.Fences()-fences0) / ops,
		LoggedBytesPerOp: float64(f.LoggedBytes()-logged0) / ops,
		TrapsPerOp:       float64(f.Traps()-traps0) / ops,
	}
	res.Latencies = hist
	res.L1Miss, res.L2Miss, res.LLCMiss = f.Hier.MissRates()
	if f.Link != nil {
		wire := f.Link.H2DBandwidth().Bytes() + f.Link.D2HBandwidth().Bytes()
		res.LinkBytesPerOp = float64(wire) / ops
		res.DeviceMsgsPerOp = float64(f.Link.PipelineServed()) / ops
	}
	if f.Dev != nil && f.Dev.HBM() != nil {
		res.HBMHitRate = f.Dev.HBM().Ratio.HitRate()
	}
	return res
}

// Caps are the shared-resource ceilings the scaling model enforces.
type Caps struct {
	PMWriteBW  float64 // bytes/s
	PMReadBW   float64
	LinkBW     float64 // bytes/s; 0 = no accelerator link
	DeviceRate float64 // msgs/s; 0 = none
}

// Caps derives the fixture's resource ceilings from its configuration.
func (f *Fixture) Caps() Caps {
	c := Caps{
		PMWriteBW: f.PM.Config().WriteBandwidth,
		PMReadBW:  f.PM.Config().ReadBandwidth,
	}
	if f.Link != nil {
		prof := f.Link.Profile()
		c.LinkBW = prof.Bandwidth
		c.DeviceRate = prof.DeviceHz
	}
	return c
}

// ScalePoint is one (threads, throughput) point with the binding bottleneck.
type ScalePoint struct {
	Threads    int
	Mops       float64
	Bottleneck string
}

// Scale applies the roofline model (§5.1's bottleneck analysis): N threads
// each run at the single-thread rate until a shared ceiling binds — PM write
// or read bandwidth, accelerator link bandwidth, or the device's coherence-
// message pipeline rate.
func Scale(r RunResult, caps Caps, threads []int) []ScalePoint {
	rate1 := float64(r.Ops) / r.Elapsed.Seconds() // ops/s, one thread
	type ceiling struct {
		name string
		rate float64
	}
	ceilings := []ceiling{}
	if r.PMWriteBytesPerOp > 0 {
		ceilings = append(ceilings, ceiling{"pm-write-bw", caps.PMWriteBW / r.PMWriteBytesPerOp})
	}
	if r.PMReadBytesPerOp > 0 {
		ceilings = append(ceilings, ceiling{"pm-read-bw", caps.PMReadBW / r.PMReadBytesPerOp})
	}
	if caps.LinkBW > 0 && r.LinkBytesPerOp > 0 {
		ceilings = append(ceilings, ceiling{"link-bw", caps.LinkBW / r.LinkBytesPerOp})
	}
	if caps.DeviceRate > 0 && r.DeviceMsgsPerOp > 0 {
		ceilings = append(ceilings, ceiling{"device-pipeline", caps.DeviceRate / r.DeviceMsgsPerOp})
	}

	out := make([]ScalePoint, 0, len(threads))
	for _, n := range threads {
		rate := rate1 * float64(n)
		binding := "cpu"
		for _, c := range ceilings {
			if c.rate < rate {
				rate = c.rate
				binding = c.name
			}
		}
		out = append(out, ScalePoint{Threads: n, Mops: rate / 1e6, Bottleneck: binding})
	}
	return out
}
