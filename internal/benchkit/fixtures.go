// Package benchkit is the experiment harness: it builds each system under
// test (DRAM, PM-direct, PMDK-style WAL, compiler-pass WAL, page-fault
// tracking, and PAX over CXL- and Enzian-class links) behind one KV
// interface, runs the paper's workloads over them on simulated time, applies
// the multi-thread scaling model, and renders every figure and ablation as a
// text table.
package benchkit

import (
	"fmt"

	"pax/internal/alloc"
	"pax/internal/baselines/compilerpass"
	"pax/internal/baselines/pagefault"
	"pax/internal/baselines/pmdk"
	"pax/internal/cache"
	"pax/internal/core"
	"pax/internal/cxl"
	"pax/internal/device"
	"pax/internal/hbm"
	"pax/internal/hybrid"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
	"pax/internal/structures"
	"pax/internal/undolog"
)

// SystemKind names a system under test.
type SystemKind string

// The systems the paper's evaluation compares.
const (
	DRAM         SystemKind = "dram"
	PMDirect     SystemKind = "pm-direct"
	PMDK         SystemKind = "pmdk"
	CompilerPass SystemKind = "compilerpass"
	PageFault    SystemKind = "pagefault"
	PAXCXL       SystemKind = "pax-cxl"
	PAXEnzian    SystemKind = "pax-enzian"
	// PAXHybrid is the §5.1 "Combining with Paging" mode: clean pages are
	// read through a direct mapping; written pages transition to vPM.
	PAXHybrid SystemKind = "pax-hybrid"
)

// Config sizes a fixture.
type Config struct {
	Host     sim.HostProfile
	DataSize uint64 // heap / vPM region
	LogSize  uint64 // undo log region (all crash-consistent systems)
	HBMSize  int    // PAX device cache; 0 disables
	HBMWays  int
	Policy   hbm.Policy
	Buckets  int // initial hash buckets
}

// DefaultConfig returns the paper-scale fixture configuration.
func DefaultConfig() Config {
	return Config{
		Host:     sim.DefaultHost(),
		DataSize: 256 << 20,
		LogSize:  64 << 20,
		HBMSize:  16 << 20,
		HBMWays:  8,
		Policy:   hbm.PreferDurable,
		// Pre-sized so the table never rehashes mid-run: measurements are
		// stationary, and the PMDK baseline is not dominated by one giant
		// rehash transaction.
		Buckets: 1 << 20,
	}
}

// TestConfig returns a miniature configuration for unit tests.
func TestConfig() Config {
	return Config{
		Host:     sim.SmallHost(),
		DataSize: 4 << 20,
		LogSize:  4 << 20,
		HBMSize:  64 << 10,
		HBMWays:  4,
		Policy:   hbm.PreferDurable,
		Buckets:  4096,
	}
}

// KVMap is the operation surface every fixture exposes.
type KVMap interface {
	Put(key, value []byte) error
	Get(key []byte) ([]byte, bool)
}

// Fixture is one ready-to-run system under test.
type Fixture struct {
	Kind SystemKind
	Map  KVMap
	// Persist commits an epoch/group boundary; no-op for non-snapshot
	// systems (DRAM, PM-direct, PMDK which commits per op).
	Persist func()
	// PersistPipelined is the §6 non-blocking persist; nil except for PAX.
	PersistPipelined func()

	Core *cache.Core
	Hier *cache.Hierarchy
	PM   *pmem.Device
	Link *cxl.Link      // nil unless PAX
	Dev  *device.Device // nil unless PAX
	Pool *core.Pool     // nil unless PAX
	// PoolOpts are the core options a PAX pool was built with (for
	// crash-image reopening).
	PoolOpts core.Options

	// RawMem is the mechanism-facing memory (the tracker for page-fault
	// systems, a vPM view for PAX, the core itself for direct systems); the
	// write-amplification and trap experiments drive raw stores through it.
	RawMem memory.Memory
	// Arena is the allocator structures are built from; experiments that
	// construct additional structures (the scan workload's B+tree) use it.
	Arena memory.Allocator
	// OpWrap runs one mutating structure operation under the mechanism's
	// failure-atomicity discipline (a WAL transaction for the PMDK and
	// compiler-pass baselines; a plain call elsewhere).
	OpWrap func(op func())

	// Fences reports cumulative ordering stalls; LoggedBytes cumulative
	// undo-log volume; Traps cumulative protection faults. Zero-value
	// closures report 0.
	Fences      func() uint64
	LoggedBytes func() uint64
	Traps       func() uint64
}

func noCount() uint64 { return 0 }

func plainWrap(op func()) { op() }

// cpMap adapts the compiler-pass instrumented memory to KVMap: the pass
// brackets each outermost operation.
type cpMap struct {
	in *compilerpass.Instrumented
	hm *structures.HashMap
}

func (m *cpMap) Put(k, v []byte) error {
	m.in.BeginOp()
	err := m.hm.Put(k, v)
	m.in.EndOp()
	return err
}

func (m *cpMap) Get(k []byte) ([]byte, bool) { return m.hm.Get(k) }

// Build constructs a fixture of the given kind.
func Build(kind SystemKind, cfg Config) (*Fixture, error) {
	switch kind {
	case DRAM, PMDirect:
		return buildDirect(kind, cfg)
	case PMDK:
		return buildPMDK(cfg)
	case CompilerPass:
		return buildCompilerPass(cfg)
	case PageFault:
		return buildPageFault(cfg)
	case PAXCXL:
		return buildPAX(kind, cfg, sim.CXLLink)
	case PAXEnzian:
		return buildPAX(kind, cfg, sim.EnzianLink)
	case PAXHybrid:
		return buildHybrid(cfg)
	default:
		return nil, fmt.Errorf("benchkit: unknown system %q", kind)
	}
}

// buildDirect places the heap directly on DRAM- or PM-configured media with
// no crash consistency — the paper's "DRAM" and "PM Direct" series.
func buildDirect(kind SystemKind, cfg Config) (*Fixture, error) {
	var mediaCfg pmem.Config
	if kind == DRAM {
		mediaCfg = pmem.DRAMConfig(int(cfg.DataSize))
	} else {
		mediaCfg = pmem.DefaultConfig(int(cfg.DataSize))
	}
	pm := pmem.New(mediaCfg)
	hier := cache.NewHierarchy(cfg.Host)
	hier.AddRange(0, cfg.DataSize, memory.NewControllerHome(pm, 0, 0, cfg.DataSize))
	c := hier.Core(0)
	arena := alloc.Create(c, 0, cfg.DataSize)
	hm, err := structures.NewHashMap(arena, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	return &Fixture{
		Kind: kind, Map: hm, Persist: func() {},
		Core: c, Hier: hier, PM: pm, RawMem: c,
		Arena: arena, OpWrap: plainWrap,
		Fences: noCount, LoggedBytes: noCount, Traps: noCount,
	}, nil
}

// buildPMDK: hand-crafted WAL over PM. Layout: [wal log | heap].
func buildPMDK(cfg Config) (*Fixture, error) {
	total := cfg.LogSize + cfg.DataSize
	pm := pmem.New(pmem.DefaultConfig(int(total)))
	hier := cache.NewHierarchy(cfg.Host)
	hier.AddRange(0, total, memory.NewControllerHome(pm, 0, 0, total))
	c := hier.Core(0)
	tx := pmdk.New(c, 0, cfg.LogSize)

	tx.Begin() // construction is a transaction
	arena := alloc.Create(tx, cfg.LogSize, cfg.DataSize)
	hm, err := structures.NewHashMap(arena, cfg.Buckets)
	tx.Commit()
	if err != nil {
		return nil, err
	}
	return &Fixture{
		Kind: PMDK, Map: pmdk.NewMap(tx, hm), Persist: func() {},
		Core: c, Hier: hier, PM: pm, RawMem: c,
		Arena: arena,
		OpWrap: func(op func()) {
			tx.Begin()
			op()
			tx.Commit()
		},
		Fences:      func() uint64 { return tx.Log().Fences.Load() },
		LoggedBytes: func() uint64 { return tx.Log().AppendedBytes.Load() },
		Traps:       noCount,
	}, nil
}

// buildCompilerPass: per-store instrumented WAL over PM.
func buildCompilerPass(cfg Config) (*Fixture, error) {
	total := cfg.LogSize + cfg.DataSize
	pm := pmem.New(pmem.DefaultConfig(int(total)))
	hier := cache.NewHierarchy(cfg.Host)
	hier.AddRange(0, total, memory.NewControllerHome(pm, 0, 0, total))
	c := hier.Core(0)
	in := compilerpass.New(c, 0, cfg.LogSize)

	in.BeginOp()
	arena := alloc.Create(in, cfg.LogSize, cfg.DataSize)
	hm, err := structures.NewHashMap(arena, cfg.Buckets)
	in.EndOp()
	if err != nil {
		return nil, err
	}
	return &Fixture{
		Kind: CompilerPass, Map: &cpMap{in: in, hm: hm}, Persist: func() {},
		Core: c, Hier: hier, PM: pm, RawMem: c,
		Arena: arena,
		OpWrap: func(op func()) {
			in.BeginOp()
			op()
			in.EndOp()
		},
		Fences:      func() uint64 { return in.Log().Fences.Load() },
		LoggedBytes: func() uint64 { return in.Log().AppendedBytes.Load() },
		Traps:       noCount,
	}, nil
}

// buildPageFault: page-protection tracking with epoch snapshots over PM.
func buildPageFault(cfg Config) (*Fixture, error) {
	total := cfg.LogSize + cfg.DataSize
	pm := pmem.New(pmem.DefaultConfig(int(total)))
	hier := cache.NewHierarchy(cfg.Host)
	hier.AddRange(0, total, memory.NewControllerHome(pm, 0, 0, total))
	c := hier.Core(0)
	tr := pagefault.New(c, 0, cfg.LogSize)
	arena := alloc.Create(tr, cfg.LogSize, cfg.DataSize)
	hm, err := structures.NewHashMap(arena, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	return &Fixture{
		Kind: PageFault, Map: hm,
		Persist: func() { tr.Persist() },
		Core:    c, Hier: hier, PM: pm, RawMem: tr,
		Arena: arena, OpWrap: plainWrap,
		Fences:      func() uint64 { return tr.Log().Fences.Load() },
		LoggedBytes: func() uint64 { return tr.Log().AppendedBytes.Load() },
		Traps:       func() uint64 { return tr.Traps.Load() },
	}, nil
}

// buildPAX: the paper's system — a pool on a PAX device.
func buildPAX(kind SystemKind, cfg Config, link sim.LinkProfile) (*Fixture, error) {
	opts := core.Options{
		DataSize: cfg.DataSize,
		LogSize:  cfg.LogSize,
		Device:   device.Config{Link: link, HBMSize: cfg.HBMSize, HBMWays: cfg.HBMWays, Policy: cfg.Policy},
		Host:     cfg.Host,
	}
	pm := pmem.New(pmem.DefaultConfig(int(core.HeaderSize + cfg.LogSize + cfg.DataSize)))
	pool, err := core.Create(pm, opts)
	if err != nil {
		return nil, err
	}
	hm, err := structures.NewHashMap(pool.Arena(), cfg.Buckets)
	if err != nil {
		return nil, err
	}
	pool.SetRoot(0, hm.Addr())
	dev := pool.Device()
	return &Fixture{
		Kind: kind, Map: hm,
		Persist:          func() { pool.Persist() },
		PersistPipelined: func() { pool.PersistPipelined() },
		Core:             pool.Hierarchy().Core(0),
		Hier:             pool.Hierarchy(),
		PM:               pm,
		Link:             dev.Link(),
		Dev:              dev,
		Pool:             pool,
		PoolOpts:         opts,
		RawMem:           pool.Mem(0),
		Arena:            pool.Arena(),
		OpWrap:           plainWrap,
		Fences:           noCount, // PAX stalls only inside persist()
		LoggedBytes:      func() uint64 { return dev.Stats.LogAppends.Load() * undolog.EntrySize },
		Traps:            noCount,
	}, nil
}

// buildHybrid: a PAX pool whose data region is additionally aliased through
// a direct controller mapping; accesses route through hybrid.Memory. The
// hybrid fixture owns the data region (its allocator supersedes the pool's)
// and uses region-relative addresses.
func buildHybrid(cfg Config) (*Fixture, error) {
	opts := core.Options{
		DataSize: cfg.DataSize,
		LogSize:  cfg.LogSize,
		Device:   device.Config{Link: sim.CXLLink, HBMSize: cfg.HBMSize, HBMWays: cfg.HBMWays, Policy: cfg.Policy},
		Host:     cfg.Host,
	}
	pm := pmem.New(pmem.DefaultConfig(int(core.HeaderSize + cfg.LogSize + cfg.DataSize)))
	pool, err := core.Create(pm, opts)
	if err != nil {
		return nil, err
	}
	hier := pool.Hierarchy()
	const directBase = uint64(1) << 40
	hier.AddRange(directBase, cfg.DataSize,
		memory.NewControllerHome(pm, directBase, pool.DataBase(), cfg.DataSize))
	c := hier.Core(0)
	hmem := hybrid.New(c, c, hier, directBase, pool.DataBase(), cfg.DataSize)

	arena := alloc.Create(hmem, 0, cfg.DataSize)
	hm, err := structures.NewHashMap(arena, cfg.Buckets)
	if err != nil {
		return nil, err
	}
	dev := pool.Device()
	return &Fixture{
		Kind: PAXHybrid, Map: hm,
		// Each epoch commit re-protects all pages (the paging model's
		// per-epoch tracking), so clean pages read direct again.
		Persist:          func() { pool.Persist(); hmem.ResetProtections() },
		PersistPipelined: func() { pool.PersistPipelined(); hmem.ResetProtections() },
		Core:             c,
		Hier:             hier,
		PM:               pm,
		Link:             dev.Link(),
		Dev:              dev,
		Pool:             pool,
		PoolOpts:         opts,
		RawMem:           hmem,
		Arena:            arena,
		OpWrap:           plainWrap,
		Fences:           noCount,
		LoggedBytes:      func() uint64 { return dev.Stats.LogAppends.Load() * undolog.EntrySize },
		Traps: func() uint64 {
			return hmem.Faults.Load()
		},
	}, nil
}

// ReopenCrashImage treats img as a post-crash media image of a PAX
// fixture's pool: it builds a fresh device from it and runs recovery,
// returning the recovered pool.
func ReopenCrashImage(f *Fixture, img []byte) (*core.Pool, error) {
	pm := pmem.New(pmem.DefaultConfig(len(img)))
	pm.Restore(img)
	return core.Open(pm, f.PoolOpts)
}
