package benchkit

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pax"
	"pax/internal/server"
	"pax/internal/stats"
)

// This file is the reshard-autopilot experiment: the same hot-shard story as
// reshard.go, but nobody calls Split. A zipfian flood runs against a
// file-backed fleet with the policy loop watching windowed per-shard load;
// the policy must split the hot shard on its own (the commit pipeline is
// measurably saturated), the post-split phase must show the same win a manual
// split buys, and once the load stops the policy must fold the extra shard
// back — ending at the starting fleet size with every acked write surviving a
// crash+reopen.

// AutopilotJSON is the policy half of an autopilot A/B record: what the
// policy did unprompted and whether the crash check passed. It rides on the
// post-phase LoadJSON record.
type AutopilotJSON struct {
	StartShards int `json:"start_shards"`
	// PeakShards is the largest fleet the policy grew to; EndShards is the
	// fleet after the idle merge-back (the acceptance bar is EndShards ==
	// StartShards).
	PeakShards int `json:"peak_shards"`
	EndShards  int `json:"end_shards"`
	// Splits/Merges are the policy's executed action counts
	// (paxserve_autopilot_splits / _merges).
	Splits int `json:"splits"`
	Merges int `json:"merges"`
	// SplitWaitMS is how long after the policy started the fleet grew;
	// MergeWaitMS how long after the load stopped it shrank back.
	SplitWaitMS float64 `json:"split_wait_ms"`
	MergeWaitMS float64 `json:"merge_wait_ms"`
	// SplitReason/MergeReason are the policy's own recorded justifications.
	SplitReason string `json:"split_reason,omitempty"`
	MergeReason string `json:"merge_reason,omitempty"`
	// CrashVerified is whether a crash+reopen after the merge-back found
	// every key; LostKeys counts the misses (the acceptance bar is 0).
	CrashVerified bool `json:"crash_verified"`
	LostKeys      int  `json:"lost_keys"`
}

// AutopilotResult is everything RunAutopilotLoad measured: the phase before
// the policy acted, the phase after its split, and the policy's own record.
type AutopilotResult struct {
	Pre, Post LoadResult
	Pilot     AutopilotJSON
}

// JSON renders the two phases as LoadJSON records tagged pre-autosplit /
// post-autosplit, with the policy details attached to the post record.
func (r AutopilotResult) JSON() []LoadJSON {
	pre := r.Pre.JSON()
	pre.Phase = "pre-autosplit"
	post := r.Post.JSON()
	post.Phase = "post-autosplit"
	pilot := r.Pilot
	post.Autopilot = &pilot
	return []LoadJSON{pre, post}
}

// RunAutopilotLoad is the autopilot A/B. One file-backed sharded engine
// serves a zipfian shared keyspace through five stages:
//
//  1. Preload, then a measured pre phase with no policy running.
//  2. StartAutopilot, then an unmeasured flood of the same skewed traffic
//     until the policy splits on its own (deadline-bounded): the hot shard's
//     windowed enqueue-wait p99 is the signal, so the split fires because
//     the commit pipeline is the measured bottleneck, not merely because
//     load is imbalanced.
//  3. A measured post phase (same spec, reseeded) on the grown fleet.
//  4. Idle until the policy merges the fleet back to its starting size.
//  5. Crash (no final commit), reopen from the discovered layout, verify
//     every key — acked durable writes must survive the whole episode.
//
// spec must be file-backed (PoolDir), shared-keyspace (Keys > 0), durable
// (the crash check), and multi-shard (Shards >= 2).
func RunAutopilotLoad(spec LoadSpec) (AutopilotResult, error) {
	var out AutopilotResult
	if spec.PoolDir == "" || spec.Keys == 0 || spec.Shards < 2 {
		return out, fmt.Errorf("benchkit: autopilot load needs PoolDir, Keys > 0, and Shards >= 2, got %+v", spec)
	}
	if spec.AckOnApply {
		return out, fmt.Errorf("benchkit: autopilot load measures durable acks; AckOnApply would make the crash check vacuous")
	}
	start := spec.Shards
	opts := pax.Options{DataSize: 32 << 20, LogSize: 16 << 20, HBMSize: 16 << 20, EpochLog: spec.EpochLog, Overwrite: true}
	if spec.DataSize > 0 {
		opts.DataSize = spec.DataSize
	}
	path := filepath.Join(spec.PoolDir, "load.pool")
	cfg := server.Config{
		MaxBatch:           spec.MaxBatch,
		MaxDelay:           spec.MaxDelay,
		Async:              spec.Async,
		CommitLatency:      spec.CommitLatency,
		QueuedReads:        spec.QueuedReads,
		MaxInflightCommits: spec.MaxInflightCommits,
		// A shallow queue makes hot-shard saturation visible where the policy
		// looks for it: durable writers pile into the enqueue path, so the hot
		// shard's windowed enqueue-wait p99 rises well above the cold shards'.
		QueueDepth: 8,
	}
	eng, err := server.OpenSharded(path, start, opts, 0, cfg)
	if err != nil {
		return out, err
	}
	value := make([]byte, spec.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	if err := preloadKeys(eng, spec, value); err != nil {
		eng.Close()
		return out, err
	}

	out.Pre, err = measurePhase(eng, spec, value, 0)
	if err != nil {
		eng.Close()
		return out, err
	}

	// The policy watches from here on. Thresholds are scaled to the bench
	// flood (tens of ms windows instead of operator seconds) but keep the
	// production shape: consecutive hot ticks on a pipeline signal to split,
	// a sustained idle stretch to merge, a cooldown between actions.
	ap, err := eng.StartAutopilot(server.AutopilotConfig{
		Interval:           50 * time.Millisecond,
		Window:             250 * time.Millisecond,
		SplitEnabled:       true,
		MaxShards:          start + 1,
		SplitMinOpsPerSec:  200,
		SplitImbalance:     1.2,
		SplitEnqueueP99:    300 * time.Microsecond,
		SplitStallFrac:     0.05,
		SplitHotTicks:      2,
		MergeEnabled:       true,
		MinShards:          start,
		MergeIdleOpsPerSec: 5,
		MergeIdle:          500 * time.Millisecond,
		Cooldown:           time.Second,
	})
	if err != nil {
		eng.Close()
		return out, err
	}
	out.Pilot.StartShards = start
	out.Pilot.PeakShards = start

	// Unmeasured flood: the same skewed traffic, looping in bursts until the
	// policy acts. Histograms sized for the grown fleet so a mid-burst split
	// is safe.
	policy := server.AckDurable
	var (
		floodLat   stats.LatencyHistogram
		floodShard = make([]stats.LatencyHistogram, start+1)
		floodErrs  = make(chan error, spec.Clients)
		floodStop  = make(chan struct{})
		floodWG    sync.WaitGroup
	)
	for c := 0; c < spec.Clients; c++ {
		floodWG.Add(1)
		go func(c int) {
			defer floodWG.Done()
			for round := 0; ; round++ {
				select {
				case <-floodStop:
					return
				default:
				}
				burst := spec
				burst.OpsPerClient = 200
				burst.Seed = spec.Seed + int64(round)*31 + 17
				runSharedClient(eng, burst, c, value, policy, &floodLat, floodShard, floodErrs)
			}
		}(c)
	}
	// The decision record (and its counters) publish just after the fleet
	// change itself, so wait on the recorded decision, not the shard count.
	const actDeadline = 30 * time.Second
	waitDecision := func(action string) bool {
		deadline := time.Now().Add(actDeadline)
		for {
			if d := ap.LastDecision(); d != nil && d.Action == action && d.Err == "" {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	splitStart := time.Now()
	if !waitDecision("split") {
		close(floodStop)
		floodWG.Wait()
		eng.Close()
		return out, fmt.Errorf("benchkit: autopilot never split within %v (windows %+v)", actDeadline, ap.Windows())
	}
	out.Pilot.SplitWaitMS = float64(time.Since(splitStart).Microseconds()) / 1e3
	out.Pilot.PeakShards = eng.NumShards()
	out.Pilot.SplitReason = ap.LastDecision().Reason
	close(floodStop)
	floodWG.Wait()
	select {
	case err := <-floodErrs:
		eng.Close()
		return out, fmt.Errorf("benchkit: autopilot flood: %w", err)
	default:
	}

	// Measured post phase on the fleet the policy built. Reseeded like the
	// manual-split A/B so the phase draws a fresh sample of the same
	// distribution. The policy stays on but cannot act: the fleet is at
	// MaxShards and the measured load keeps every shard above idle.
	post := spec
	post.Seed = spec.Seed + 7919
	post.Shards = eng.NumShards()
	out.Post, err = measurePhase(eng, post, value, 1)
	if err != nil {
		eng.Close()
		return out, err
	}

	// Idle: the windowed rates decay and the policy must fold the extra
	// shard back to the starting count on its own.
	mergeStart := time.Now()
	if !waitDecision("merge") {
		eng.Close()
		return out, fmt.Errorf("benchkit: autopilot never merged back within %v (windows %+v)", actDeadline, ap.Windows())
	}
	out.Pilot.MergeWaitMS = float64(time.Since(mergeStart).Microseconds()) / 1e3
	out.Pilot.MergeReason = ap.LastDecision().Reason
	if eng.NumShards() != start {
		eng.Close()
		return out, fmt.Errorf("benchkit: autopilot merged to %d shards, want the starting %d", eng.NumShards(), start)
	}
	if m, err := eng.Metrics(); err == nil {
		out.Pilot.Splits = int(m["paxserve_autopilot_splits"])
		out.Pilot.Merges = int(m["paxserve_autopilot_merges"])
	}

	// Crash and verify: the whole episode — split, measured load, merge —
	// must not have lost a single acked write.
	if err := eng.Crash(); err != nil {
		return out, fmt.Errorf("benchkit: crash after autopilot run: %w", err)
	}
	n, err := server.DiscoverShards(path)
	if err != nil {
		return out, fmt.Errorf("benchkit: rediscovering layout: %w", err)
	}
	out.Pilot.EndShards = n
	reopenOpts := opts
	reopenOpts.Overwrite = false
	reng, err := server.OpenSharded(path, n, reopenOpts, 0, cfg)
	if err != nil {
		return out, fmt.Errorf("benchkit: reopening after crash: %w", err)
	}
	defer reng.Close()
	lost := 0
	for i := uint64(0); i < spec.Keys; i++ {
		if _, ok, err := reng.Get(sharedKey(i)); err != nil || !ok {
			lost++
		}
	}
	out.Pilot.LostKeys = lost
	out.Pilot.CrashVerified = lost == 0
	return out, nil
}

// AutopilotAB is the experiment wrapper: the policy-driven split/merge cycle
// at zipf s=1.5 on a 2-shard file-backed fleet.
func AutopilotAB(cfg Config, sz Sizes) []*stats.Table {
	ops := sz.MeasureOps / 30
	if ops < 40 {
		ops = 40
	}
	keys := sz.sweepKeys()
	if keys > 4_000 {
		keys = 4_000
	}
	dir, err := os.MkdirTemp("", "pax-autopilot-*")
	if err != nil {
		panic(fmt.Sprintf("benchkit: autopilot: %v", err))
	}
	defer os.RemoveAll(dir)
	// The capped regime from the manual-split A/B (max batch 8, 4ms media):
	// the hot shard is pegged at its commit-pipeline ceiling, which is both
	// the condition the policy is built to detect and the one where a split
	// actually pays (~+75% acked ops/s at zipf s=1.5).
	res, err := RunAutopilotLoad(LoadSpec{
		Clients:       128,
		OpsPerClient:  ops,
		ValueBytes:    64,
		Keys:          keys,
		Dist:          "zipf",
		ZipfS:         1.5,
		MaxBatch:      8,
		MaxDelay:      2 * time.Millisecond,
		Shards:        2,
		CommitLatency: 4 * time.Millisecond,
		PoolDir:       dir,
		EpochLog:      true,
	})
	if err != nil {
		panic(fmt.Sprintf("benchkit: autopilot A/B: %v", err))
	}
	t := stats.NewTable("autopilot: policy-driven split/merge cycle (zipf s=1.5, 2 shards, file-backed, 4ms media commit)",
		"phase", "shards", "acked ops/s", "imbalance", "ack p99 ms", "policy action", "wait ms", "crash ok")
	t.AddRowf("pre-autosplit", res.Pre.Spec.Shards, res.Pre.OpsThroughput, res.Pre.ShardImbalance,
		float64(res.Pre.AckP99.Microseconds())/1e3, "-", "-", "-")
	t.AddRowf("post-autosplit", res.Post.Spec.Shards, res.Post.OpsThroughput, res.Post.ShardImbalance,
		float64(res.Post.AckP99.Microseconds())/1e3,
		fmt.Sprintf("split x%d", res.Pilot.Splits), res.Pilot.SplitWaitMS, "-")
	t.AddRowf("idle merge-back", res.Pilot.EndShards, 0.0, "-", "-",
		fmt.Sprintf("merge x%d", res.Pilot.Merges), res.Pilot.MergeWaitMS, res.Pilot.CrashVerified)
	return []*stats.Table{t}
}
