package benchkit

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pax/internal/blackbox"
)

// The CI crash-postmortem smoke in Go form: a chaos load run (blackbox on,
// persistent media fault injected mid-phase, simulated kill at the end) must
// leave a journal that alone names the cause — the failing commit record and
// the seal carrying the injected error — plus at least one metrics snapshot.
func TestRunLoadChaosJournalsTheCause(t *testing.T) {
	dir := t.TempDir()
	res, err := RunLoad(LoadSpec{
		Clients:        4,
		OpsPerClient:   400,
		ValueBytes:     64,
		MaxDelay:       time.Millisecond,
		Shards:         2,
		PoolDir:        dir,
		EpochLog:       true,
		Keys:           256,
		Blackbox:       true,
		FailSyncsAfter: 5,
	})
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	// Shard 1 stays healthy, so the run still serves: the chaos is confined
	// to shard 0 sealing partway through.
	if res.AckedWrites == 0 {
		t.Fatal("chaos run acked nothing; the fault should hit one shard, not both")
	}

	jdir := filepath.Join(dir, "load.pool") + blackbox.DirSuffix
	j, err := blackbox.Open(blackbox.Config{Dir: jdir, ReadOnly: true})
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	defer j.Close()

	types := make(map[string]int)
	sealDetail := ""
	err = j.Replay(func(rec blackbox.Record) error {
		types[rec.Type]++
		if rec.Type == blackbox.EvSeal {
			var ev struct {
				Detail json.RawMessage `json:"detail"`
			}
			if json.Unmarshal(rec.Payload, &ev) == nil {
				sealDetail = string(ev.Detail)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if types[blackbox.EvOpen] != 2 {
		t.Fatalf("journal has %d open events, want one per shard: %v", types[blackbox.EvOpen], types)
	}
	if types[blackbox.EvCommitFailed] == 0 || types[blackbox.EvSeal] == 0 {
		t.Fatalf("journal missing the cause: %v", types)
	}
	if !strings.Contains(sealDetail, ErrInjectedFault.Error()) {
		t.Fatalf("seal detail %q does not carry %q", sealDetail, ErrInjectedFault.Error())
	}
	if types[blackbox.EvSnapshot] == 0 {
		t.Fatalf("journal has no metrics snapshot: %v", types)
	}
	if types[blackbox.EvShutdown] != 0 {
		t.Fatalf("simulated kill journaled a shutdown marker: %v", types)
	}
}
