package benchkit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"pax"
	"pax/internal/blackbox"
	"pax/internal/pmem"
	"pax/internal/server"
	"pax/internal/stats"
	"pax/internal/workload"
)

// This file is the serving-layer load generator: instead of driving a
// fixture single-threaded like the paper experiments, it stands up the
// paxserve group-commit engine over in-memory pools and hammers it with
// concurrent client goroutines, measuring how many individually-acked
// durable writes each snapshot amortizes — and, with Shards > 1, how
// partition-parallel group commit scales throughput.

// ErrInjectedFault is the media error LoadSpec.FailSyncsAfter injects. The
// chaos tests and the CI postmortem smoke grep for its message in the
// journaled seal event, so treat it as part of the harness contract.
var ErrInjectedFault = errors.New("injected media failure (loadgen chaos)")

// LoadSpec parameterizes one loadgen run.
type LoadSpec struct {
	Clients      int
	OpsPerClient int
	ValueBytes   int
	// GetEveryN issues a read after every N writes per client (0 disables).
	// Those reads ride on top of OpsPerClient writes; for a workload whose
	// op *mix* is controlled, use ReadRatio instead.
	GetEveryN int
	// ReadRatio is the fraction of each client's OpsPerClient ops issued as
	// GETs against that client's previously written keys (0 disables and
	// GetEveryN applies; 0.9 models a read-heavy serving tier). The
	// interleave is deterministic — an error-diffusion pattern, not a PRNG —
	// so runs are reproducible.
	ReadRatio float64
	// QueuedReads serves GETs through the writer queue (the engine's
	// pre-read-index behavior) instead of the volatile read index — the
	// "before" side of the read-path A/B.
	QueuedReads bool
	MaxBatch    int
	MaxDelay    time.Duration
	// Async uses PersistAsync (§6 pipelined) for the group commits.
	Async bool
	// Shards partitions the keyspace across N independent pools, each with
	// its own writer loop and device, so N group commits run in parallel
	// (default 1 — the single-writer engine).
	Shards int
	// CommitLatency is the modeled per-group-commit media latency (see
	// server.Config.CommitLatency). With it set, a single engine is bound by
	// one commit in flight at a time and the shard sweep measures how
	// partition-parallel commit overlaps that latency; zero commits at
	// simulator speed, which benchmarks the host CPU rather than the
	// serving design.
	CommitLatency time.Duration
	// PoolDir, when non-empty, backs the engines with real pool files
	// created there (fresh layout per run) instead of in-memory devices.
	// File-backed runs are what the write-amplification sweeps need: the
	// bytes each commit pushes through the filesystem are the measurement.
	PoolDir string
	// DataSize overrides the per-shard vPM data region in bytes (default
	// 32 MiB). The pool-size sweep holds the workload fixed and grows this:
	// full-image commit cost scales with it, delta commit cost must not.
	DataSize uint64
	// EpochLog selects the log-structured delta epoch store for the pools
	// (pax.Options.EpochLog); false is the full-image baseline.
	EpochLog bool
	// MaxInflightCommits bounds the engine's commit pipeline (see
	// server.Config.MaxInflightCommits): 1 is the serial A/B baseline, 0
	// takes the engine default (2).
	MaxInflightCommits int
	// AckOnApply issues every write under server.AckApply: acked when
	// applied and read-index-visible, durability asynchronous. False is the
	// ack-on-durable default — every ack means the write's group commit
	// reached media.
	AckOnApply bool
	// Keys, when > 0, switches the run to a shared-keyspace workload: the
	// keyspace is Keys keys ("k%08d"), preloaded durable before the measured
	// phase, and every client samples the same space — reads and writes alike
	// — through the Dist sampler. 0 keeps the legacy per-client-private keys
	// (each client writes its own sequence and reads its own history), which
	// is what the pre-zipfian sweeps recorded. The shared keyspace is what
	// exposes hot-shard imbalance: private keys spread by construction.
	Keys uint64
	// Dist picks the shared-keyspace sampler: "uniform" (default) or "zipf"
	// (YCSB-style skew; ZipfS sets the exponent). Requires Keys > 0.
	Dist string
	// ZipfS is the zipfian exponent (s > 1; default 1.2). Higher is more
	// skewed: at s=1.2 over 100k keys, the hottest ~25 keys absorb a tenth
	// of the traffic, and whichever shard owns them becomes the bottleneck.
	ZipfS float64
	// RMWRatio is the fraction of write ops issued as read-modify-write —
	// Get then Put of the same sampled key, the YCSB-A update shape — instead
	// of a blind Put. Requires Keys > 0.
	RMWRatio float64
	// ValueDist sizes each written value: "fixed" (default, every value is
	// ValueBytes) or "uniform" (per-op size uniform in [1, ValueBytes]).
	// Requires Keys > 0.
	ValueDist string
	// Seed perturbs the samplers; runs with equal specs are identical, and
	// sweeps vary Seed to decorrelate. Each client derives its own stream.
	Seed int64
	// Blackbox attaches a crash black box (internal/blackbox) to the run:
	// lifecycle events and windowed metrics snapshots journal to
	// <PoolDir>/load.pool.blackbox/. Requires PoolDir (the journal is a
	// directory of files). The A/B against an identical spec without it is
	// the journaling-overhead bound.
	Blackbox bool
	// BlackboxInterval is the snapshot period (default 250ms — short, so
	// even sub-second runs capture a windowed sample).
	BlackboxInterval time.Duration
	// FailSyncsAfter, when > 0, injects a persistent media-sync fault into
	// shard 0 after that many successful syncs: every later persist fails,
	// commit retries exhaust, and the shard seals fail-stop mid-run. Client
	// errors are then expected (the client stops, the run continues), and
	// the run ends with Crash() instead of Close() — a simulated kill, so
	// what the black box captured is exactly what a postmortem would find.
	FailSyncsAfter int
}

// LoadResult summarizes a run.
type LoadResult struct {
	Spec         LoadSpec
	AckedWrites  uint64
	Gets         uint64
	GroupCommits uint64
	BatchMax     uint64
	// Amortization is acked writes per snapshot — the group-commit payoff.
	Amortization float64
	Wall         time.Duration
	Throughput   float64 // acked writes per wall second
	// OpsThroughput is total acked ops (writes + reads) per wall second —
	// the figure of merit for mixed read/write sweeps.
	OpsThroughput float64
	// AckP50/P95/P99 are client-observed per-write ack latency quantiles:
	// Put call to durable-ack return, so they include queue wait, the group-
	// commit window, the persist, and the modeled media latency — the
	// latency a serving client actually experiences, as opposed to the
	// server-side per-stage histograms in the metrics registry.
	AckP50, AckP95, AckP99 time.Duration
	// Metrics is the merged engine+pool metrics summary (per-shard gauges
	// carry a {shard="K"} suffix; plain names are cross-shard sums),
	// sampled safely after the engines close.
	Metrics stats.Summary
	// PoolBytes is the per-shard media size; EpochLog echoes which persist
	// mode the run used.
	PoolBytes int64
	EpochLog  bool
	// CommitP50Bytes/CommitP99Bytes are per-commit persisted-bytes quantiles
	// as the serving engine observed them (paxserve_epoch_delta_bytes, which
	// excludes the one-time pool-format sync): O(dirty) under the epoch
	// store, the pool size under full-image. They come from a log-bucketed
	// histogram, so each is the matching bucket's upper bound — up to ~3%
	// above the true value (a 50331648-byte full image reports as 51380223).
	// CommitMeanBytes has no such error: it is the histogram's exact
	// sum/count. WriteAmplification is CommitMeanBytes divided by the pool
	// size — the fraction of the pool each commit rewrites (1.0 for
	// full-image by construction).
	CommitP50Bytes     float64
	CommitP99Bytes     float64
	CommitMeanBytes    float64
	WriteAmplification float64
	// PerShard breaks the run down by shard (from the merged {shard="K"}
	// metrics): acked ops, queue pressure, and client-observed ack tail per
	// shard. ShardImbalance is max/mean per-shard acked ops — 1.0 is perfect
	// balance, and under zipfian skew it is the recorded size of the
	// hot-shard problem. HotShard is the argmax.
	PerShard       []ShardLoad
	ShardImbalance float64
	HotShard       int
}

// ShardLoad is one shard's share of a run.
type ShardLoad struct {
	Shard int `json:"shard"`
	// AckedOps is the shard's acked writes (durable + on-apply) plus served
	// GETs.
	AckedOps uint64 `json:"acked_ops"`
	// EnqueueWaitP99Micros is the shard's server-side enqueue-wait p99 — how
	// long requests sat blocked on a full queue, the first symptom of a hot
	// shard.
	EnqueueWaitP99Micros float64 `json:"enqueue_wait_p99_us"`
	// AckP99Micros is the client-observed per-write ack p99 for writes routed
	// to this shard.
	AckP99Micros float64 `json:"ack_p99_us"`
}

// LoadJSON is the machine-readable form of a LoadResult — what
// `paxbench -loadgen -format json` emits so the perf trajectory is tracked
// across PRs.
type LoadJSON struct {
	Shards          int     `json:"shards"`
	Clients         int     `json:"clients"`
	OpsPerClient    int     `json:"ops_per_client"`
	MaxBatch        int     `json:"max_batch"`
	CommitLatencyMS float64 `json:"commit_latency_ms"`
	ReadRatio       float64 `json:"read_ratio"`
	ReadPath        string  `json:"read_path"` // "index" | "queued"
	// AckPolicy is "durable" (acks mean on-media) or "apply" (acks mean
	// applied and read-index-visible, durability async);
	// MaxInflightCommits is the commit-pipeline window the run used (1 =
	// serial baseline).
	AckPolicy          string  `json:"ack_policy"`
	MaxInflightCommits int     `json:"max_inflight_commits"`
	AckedWrites        uint64  `json:"acked_writes"`
	Gets               uint64  `json:"gets"`
	Snapshots          uint64  `json:"snapshots"`
	BatchMax           uint64  `json:"batch_max"`
	Amortization       float64 `json:"amortization"`
	WallMillis         float64 `json:"wall_ms"`
	AckedWritesPerSec  float64 `json:"acked_writes_per_sec"`
	AckedOpsPerSec     float64 `json:"acked_ops_per_sec"`
	AckP50Micros       float64 `json:"ack_p50_us"`
	AckP95Micros       float64 `json:"ack_p95_us"`
	AckP99Micros       float64 `json:"ack_p99_us"`
	// Epoch-store A/B fields: which persist mode ran, the per-shard pool
	// size, per-commit persisted bytes, and the mean fraction of the pool
	// rewritten per commit. commit_p50_bytes/commit_p99_bytes are log-bucket
	// upper bounds (up to ~3% above the true value — a 48 MiB full image
	// reports 51380223, not 50331648); commit_mean_bytes is exact
	// (histogram sum/count), so use it when the absolute byte count
	// matters.
	EpochLog           bool    `json:"epoch_log"`
	PoolBytes          int64   `json:"pool_bytes"`
	CommitP50Bytes     float64 `json:"commit_p50_bytes"`
	CommitP99Bytes     float64 `json:"commit_p99_bytes"`
	CommitMeanBytes    float64 `json:"commit_mean_bytes"`
	WriteAmplification float64 `json:"write_amplification"`
	// Workload-shape fields: the key distribution ("uniform" | "zipf" over a
	// shared keyspace of Keys keys, or "private" for the legacy per-client
	// keys), its skew, the read-modify-write fraction, and the value sizing.
	Dist      string  `json:"dist"`
	ZipfS     float64 `json:"zipf_s"`
	Keys      uint64  `json:"keys"`
	RMWRatio  float64 `json:"rmw_ratio"`
	ValueDist string  `json:"value_dist"`
	// Imbalance fields: per-shard load breakdown, max/mean acked ops across
	// shards, and which shard was hottest.
	ShardImbalance float64     `json:"shard_imbalance"`
	HotShard       int         `json:"hot_shard"`
	PerShard       []ShardLoad `json:"per_shard,omitempty"`
	// Split-run fields, set only by the reshard experiment: which phase of a
	// live-split run this record measures ("pre-split" | "post-split") and,
	// on the post record, what the split moved and whether every pre-split
	// acked write survived a crash+reopen.
	Phase string     `json:"phase,omitempty"`
	Split *SplitJSON `json:"split,omitempty"`
	// Autopilot is set only by the autopilot experiment, on the
	// post-autosplit record: what the reshard policy did unprompted.
	Autopilot *AutopilotJSON `json:"autopilot,omitempty"`
	// Blackbox is whether the run journaled to a crash black box — the A/B
	// axis for the journaling-overhead bound. FailSyncsAfter echoes the
	// chaos fault injection (0 = healthy run).
	Blackbox       bool `json:"blackbox"`
	FailSyncsAfter int  `json:"fail_syncs_after,omitempty"`
}

// JSON converts the result to its machine-readable record.
func (r LoadResult) JSON() LoadJSON {
	shards := r.Spec.Shards
	if shards <= 0 {
		shards = 1
	}
	path := "index"
	if r.Spec.QueuedReads {
		path = "queued"
	}
	policy := "durable"
	if r.Spec.AckOnApply {
		policy = "apply"
	}
	inflight := r.Spec.MaxInflightCommits
	if inflight <= 0 {
		inflight = 2 // the engine default (server.Config.withDefaults)
	}
	dist := "private"
	zipfS := 0.0
	valueDist := ""
	if r.Spec.Keys > 0 {
		dist = r.Spec.Dist
		if dist == "" {
			dist = "uniform"
		}
		if dist == "zipf" {
			zipfS = r.Spec.ZipfS
			if zipfS == 0 {
				zipfS = defaultZipfS
			}
		}
		valueDist = r.Spec.ValueDist
		if valueDist == "" {
			valueDist = "fixed"
		}
	}
	return LoadJSON{
		Shards:             shards,
		Clients:            r.Spec.Clients,
		OpsPerClient:       r.Spec.OpsPerClient,
		MaxBatch:           r.Spec.MaxBatch,
		CommitLatencyMS:    float64(r.Spec.CommitLatency.Microseconds()) / 1e3,
		ReadRatio:          r.Spec.ReadRatio,
		ReadPath:           path,
		AckPolicy:          policy,
		MaxInflightCommits: inflight,
		AckedWrites:        r.AckedWrites,
		Gets:               r.Gets,
		Snapshots:          r.GroupCommits,
		BatchMax:           r.BatchMax,
		Amortization:       r.Amortization,
		WallMillis:         float64(r.Wall.Microseconds()) / 1e3,
		AckedWritesPerSec:  r.Throughput,
		AckedOpsPerSec:     r.OpsThroughput,
		AckP50Micros:       float64(r.AckP50.Nanoseconds()) / 1e3,
		AckP95Micros:       float64(r.AckP95.Nanoseconds()) / 1e3,
		AckP99Micros:       float64(r.AckP99.Nanoseconds()) / 1e3,
		EpochLog:           r.EpochLog,
		PoolBytes:          r.PoolBytes,
		CommitP50Bytes:     r.CommitP50Bytes,
		CommitP99Bytes:     r.CommitP99Bytes,
		CommitMeanBytes:    r.CommitMeanBytes,
		WriteAmplification: r.WriteAmplification,
		Dist:               dist,
		ZipfS:              zipfS,
		Keys:               r.Spec.Keys,
		RMWRatio:           r.Spec.RMWRatio,
		ValueDist:          valueDist,
		ShardImbalance:     r.ShardImbalance,
		HotShard:           r.HotShard,
		PerShard:           r.PerShard,
		Blackbox:           r.Spec.Blackbox,
		FailSyncsAfter:     r.Spec.FailSyncsAfter,
	}
}

// defaultZipfS is the zipfian exponent used when Dist is "zipf" and ZipfS is
// unset — skewed enough that one shard's slots clearly dominate, mild enough
// that every shard still sees traffic (the YCSB constant is 0.99 for its
// scrambled variant; rand.Zipf's unscrambled form wants s > 1).
const defaultZipfS = 1.2

// sharedKey names key i of the shared keyspace.
func sharedKey(i uint64) []byte { return []byte(fmt.Sprintf("k%08d", i)) }

// keySampler is what the shared-keyspace clients draw from (workload.Zipf or
// workload.Uniform).
type keySampler interface{ Next() uint64 }

// RunLoad executes one loadgen run on fresh pools (one per shard) —
// in-memory by default, file-backed under spec.PoolDir.
func RunLoad(spec LoadSpec) (LoadResult, error) {
	if spec.Clients <= 0 || spec.OpsPerClient <= 0 {
		return LoadResult{}, fmt.Errorf("benchkit: loadgen needs clients and ops, got %+v", spec)
	}
	if spec.ReadRatio < 0 || spec.ReadRatio >= 1 {
		return LoadResult{}, fmt.Errorf("benchkit: read ratio %v must be in [0, 1)", spec.ReadRatio)
	}
	if spec.ValueBytes <= 0 {
		spec.ValueBytes = 64
	}
	if spec.Keys == 0 {
		if spec.Dist != "" || spec.ZipfS != 0 || spec.RMWRatio != 0 || spec.ValueDist != "" {
			return LoadResult{}, fmt.Errorf("benchkit: Dist/ZipfS/RMWRatio/ValueDist shape the shared keyspace; set Keys > 0")
		}
	} else {
		switch spec.Dist {
		case "", "uniform", "zipf":
		default:
			return LoadResult{}, fmt.Errorf("benchkit: key distribution %q (want uniform or zipf)", spec.Dist)
		}
		if spec.Dist == "zipf" && spec.ZipfS != 0 && spec.ZipfS <= 1 {
			return LoadResult{}, fmt.Errorf("benchkit: zipf exponent %v must be > 1", spec.ZipfS)
		}
		if spec.RMWRatio < 0 || spec.RMWRatio > 1 {
			return LoadResult{}, fmt.Errorf("benchkit: RMW ratio %v must be in [0, 1]", spec.RMWRatio)
		}
		switch spec.ValueDist {
		case "", "fixed", "uniform":
		default:
			return LoadResult{}, fmt.Errorf("benchkit: value distribution %q (want fixed or uniform)", spec.ValueDist)
		}
	}
	if spec.Blackbox && spec.PoolDir == "" {
		return LoadResult{}, fmt.Errorf("benchkit: Blackbox journals to a directory; set PoolDir")
	}
	shards := spec.Shards
	if shards <= 0 {
		shards = 1
	}
	opts := pax.Options{DataSize: 32 << 20, LogSize: 16 << 20, HBMSize: 16 << 20, EpochLog: spec.EpochLog}
	if spec.DataSize > 0 {
		opts.DataSize = spec.DataSize
	}
	path := ""
	if spec.PoolDir != "" {
		path = filepath.Join(spec.PoolDir, "load.pool")
		opts.Overwrite = true
	}
	eng, err := server.OpenSharded(path, shards, opts,
		0, server.Config{
			MaxBatch:           spec.MaxBatch,
			MaxDelay:           spec.MaxDelay,
			Async:              spec.Async,
			CommitLatency:      spec.CommitLatency,
			QueuedReads:        spec.QueuedReads,
			MaxInflightCommits: spec.MaxInflightCommits,
		})
	if err != nil {
		return LoadResult{}, err
	}
	poolBytes := int64(eng.MediaSize())
	epochLog := eng.EpochLogEnabled()

	var bbJournal *blackbox.Journal
	var bbStop func()
	if spec.Blackbox {
		j, err := blackbox.Open(blackbox.Config{Dir: path + blackbox.DirSuffix})
		if err != nil {
			eng.Close()
			return LoadResult{}, fmt.Errorf("benchkit: blackbox: %w", err)
		}
		iv := spec.BlackboxInterval
		if iv <= 0 {
			iv = 250 * time.Millisecond
		}
		bbJournal = j
		bbStop = server.AttachBlackbox(eng, j, iv)
	}

	value := make([]byte, spec.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	policy := server.AckDurable
	if spec.AckOnApply {
		policy = server.AckApply
	}
	// Shared keyspace: preload every key durable before the clock starts, so
	// the measured phase reads always hit and the imbalance numbers reflect
	// steady-state traffic, not fill. The preload's own acks and commits are
	// sampled here and subtracted below, so the reported counters (and the
	// per-shard imbalance) cover only measured traffic. The latency quantiles
	// in the metrics registry still include the fill — histograms cannot be
	// differenced — but the client-side ack histograms start at zero.
	var preAgg server.AggregateStats
	var preShard []uint64
	if spec.Keys > 0 {
		if err := preloadKeys(eng, spec, value); err != nil {
			eng.Close()
			if bbStop != nil {
				bbStop()
				bbJournal.Close()
			}
			return LoadResult{}, err
		}
		preAgg = eng.AggregateStats()
		preShard = eng.ShardAckedWrites()
	}
	chaos := spec.FailSyncsAfter > 0
	if chaos {
		// Injected after the preload so the fill always lands: shard 0's
		// device starts refusing media syncs partway through the measured
		// phase, its commit retries exhaust, and it seals fail-stop.
		eng.ShardPools()[0].Internal().PM().SetFaultFn(
			pmem.FailSyncsAfter(spec.FailSyncsAfter, ErrInjectedFault))
	}
	// shardAck splits the client-observed ack latency by the shard that
	// served the write (routed via the engine's own ShardFor at issue time) —
	// the hot shard's tail is the split experiment's before/after number.
	shardAck := make([]stats.LatencyHistogram, shards)
	start := time.Now()
	var (
		wg     sync.WaitGroup
		ackLat stats.LatencyHistogram // shared; it is lock-free by design
	)
	errs := make(chan error, spec.Clients)
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if spec.Keys > 0 {
				runSharedClient(eng, spec, c, value, policy, &ackLat, shardAck, errs)
				return
			}
			var (
				acc   float64                            // error-diffusion accumulator for the read/write mix
				wrote int                                // keys this client has written so far
				rng   = uint32(2654435761 * uint64(c+1)) // per-client LCG state
			)
			for op := 0; op < spec.OpsPerClient; op++ {
				acc += spec.ReadRatio
				if acc >= 1 && wrote > 0 {
					acc--
					// Read a previously written key (LCG pick, deterministic
					// per client): hits the read path with realistic reuse.
					rng = rng*1664525 + 1013904223
					key := []byte(fmt.Sprintf("c%04d-%06d", c, int(rng)%wrote))
					if _, ok, err := eng.Get(key); err != nil || !ok {
						if chaos {
							return
						}
						errs <- fmt.Errorf("client %d read %s: ok=%v err=%v", c, key, ok, err)
						return
					}
					continue
				}
				key := []byte(fmt.Sprintf("c%04d-%06d", c, wrote))
				wrote++
				shard := eng.ShardFor(key)
				t0 := time.Now()
				if _, err := eng.PutPolicy(key, value, policy); err != nil {
					if chaos {
						// Expected once the injected fault seals the shard:
						// this client's writes route there, so it stops.
						return
					}
					errs <- fmt.Errorf("client %d op %d: %w", c, op, err)
					return
				}
				d := time.Since(t0).Nanoseconds()
				ackLat.Observe(d)
				shardAck[shard].Observe(d)
				if spec.ReadRatio == 0 && spec.GetEveryN > 0 && op%spec.GetEveryN == spec.GetEveryN-1 {
					if _, ok, err := eng.Get(key); err != nil || !ok {
						if chaos {
							return
						}
						errs <- fmt.Errorf("client %d read-back %s: ok=%v err=%v", c, key, ok, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if chaos {
		// Simulated kill: no orderly close, no shutdown marker. Everything a
		// postmortem needs is already on disk — the journal fsyncs each
		// append — so the black box is read back exactly as a crash would
		// leave it (the sampler stop below only adds the tail-window
		// snapshot, which a periodic tick would have written anyway).
		eng.Crash()
	} else if err := eng.Close(); err != nil {
		if bbStop != nil {
			bbStop()
			bbJournal.Close()
		}
		return LoadResult{}, err
	}
	if bbStop != nil {
		bbStop()
		if err := bbJournal.Close(); err != nil {
			return LoadResult{}, fmt.Errorf("benchkit: blackbox close: %w", err)
		}
	}
	select {
	case err := <-errs:
		return LoadResult{}, err
	default:
	}

	agg := eng.AggregateStats()
	metrics, err := eng.Metrics()
	if err != nil {
		return LoadResult{}, err
	}
	ack := ackLat.Snapshot()
	// Durable runs count acks at commit time (AckedWrites); apply runs count
	// them at apply time (AckedOnApply). Either way it is one ack per write.
	res := LoadResult{
		Spec:           spec,
		AckedWrites:    (agg.AckedWrites + agg.AckedOnApply) - (preAgg.AckedWrites + preAgg.AckedOnApply),
		Gets:           agg.Gets - preAgg.Gets,
		GroupCommits:   agg.GroupCommits - preAgg.GroupCommits,
		BatchMax:       agg.BatchMax,
		Wall:           wall,
		Metrics:        metrics,
		AckP50:         time.Duration(ack.Quantile(0.50)),
		AckP95:         time.Duration(ack.Quantile(0.95)),
		AckP99:         time.Duration(ack.Quantile(0.99)),
		PoolBytes:      poolBytes,
		EpochLog:       epochLog,
		CommitP50Bytes: metrics[`paxserve_epoch_delta_bytes{q="p50"}`],
		CommitP99Bytes: metrics[`paxserve_epoch_delta_bytes{q="p99"}`],
	}
	if res.GroupCommits > 0 {
		res.Amortization = float64(res.AckedWrites) / float64(res.GroupCommits)
	}
	if n := metrics["paxserve_epoch_delta_bytes_count"]; n > 0 {
		res.CommitMeanBytes = metrics["paxserve_epoch_delta_bytes_sum"] / n
		if poolBytes > 0 {
			res.WriteAmplification = res.CommitMeanBytes / float64(poolBytes)
		}
	}
	if wall > 0 {
		res.Throughput = float64(res.AckedWrites) / wall.Seconds()
		res.OpsThroughput = float64(res.AckedWrites+res.Gets) / wall.Seconds()
	}
	res.PerShard, res.ShardImbalance, res.HotShard = perShardLoads(metrics, shardAck, preShard)
	return res, nil
}

// perShardLoads folds the merged {shard="K"} metrics plus the client-side
// per-shard ack histograms into the per-shard breakdown and its imbalance
// summary (max/mean acked ops; 1.0 = perfectly balanced). base, when
// non-nil, holds each shard's acked-write count sampled before the measured
// phase (the preload fill), which is subtracted out.
func perShardLoads(metrics stats.Summary, shardAck []stats.LatencyHistogram, base []uint64) ([]ShardLoad, float64, int) {
	loads := make([]ShardLoad, len(shardAck))
	var sum, max float64
	hot := 0
	for k := range loads {
		lbl := fmt.Sprintf("{shard=%q}", strconv.Itoa(k))
		acked := metrics["paxserve_acked_writes"+lbl] +
			metrics["paxserve_acked_on_apply"+lbl] +
			metrics["paxserve_gets"+lbl]
		if k < len(base) {
			acked -= float64(base[k])
		}
		snap := shardAck[k].Snapshot()
		loads[k] = ShardLoad{
			Shard:                k,
			AckedOps:             uint64(acked),
			EnqueueWaitP99Micros: metrics[`paxserve_enqueue_wait_ns{q="p99",shard=`+strconv.Quote(strconv.Itoa(k))+`}`] / 1e3,
			AckP99Micros:         float64(snap.Quantile(0.99)) / 1e3,
		}
		sum += acked
		if acked > max {
			max, hot = acked, k
		}
	}
	imbalance := 0.0
	if sum > 0 {
		imbalance = max / (sum / float64(len(loads)))
	}
	return loads, imbalance, hot
}

// preloadKeys writes the whole shared keyspace before the measured phase:
// ack-on-apply puts fanned across the clients' worth of goroutines, then one
// forced commit per shard so the preload is durable and the measured phase
// starts from a clean epoch.
func preloadKeys(eng *server.ShardedEngine, spec LoadSpec, value []byte) error {
	loaders := spec.Clients
	if loaders > 64 {
		loaders = 64
	}
	per := (spec.Keys + uint64(loaders) - 1) / uint64(loaders)
	errs := make(chan error, loaders)
	var wg sync.WaitGroup
	for c := 0; c < loaders; c++ {
		lo, hi := uint64(c)*per, uint64(c+1)*per
		if hi > spec.Keys {
			hi = spec.Keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				if _, err := eng.PutPolicy(sharedKey(i), value, server.AckApply); err != nil {
					errs <- fmt.Errorf("benchkit: preloading key %d: %w", i, err)
					return
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
	}
	_, err := eng.Persist()
	return err
}

// runSharedClient is one measured-phase client of the shared-keyspace mode:
// reads and writes both draw keys from the same sampler (read skew matches
// write skew — a hot key is hot on both paths), RMWRatio of the writes are
// read-modify-writes (the ack time then includes the read), and ValueDist
// sizes each value.
func runSharedClient(eng *server.ShardedEngine, spec LoadSpec, c int, value []byte, policy server.AckPolicy, ackLat *stats.LatencyHistogram, shardAck []stats.LatencyHistogram, errs chan<- error) {
	seed := spec.Seed*1_000_003 + int64(c)*2_654_435_761 + 1
	var sampler keySampler
	if spec.Dist == "zipf" {
		s := spec.ZipfS
		if s == 0 {
			s = defaultZipfS
		}
		sampler = workload.NewZipf(spec.Keys, s, seed)
	} else {
		sampler = workload.NewUniform(spec.Keys, seed)
	}
	var (
		readAcc, rmwAcc float64 // error-diffusion accumulators, deterministic per client
		rng             = uint32(2654435761 * uint64(c+1))
	)
	// Under fault injection (FailSyncsAfter) errors are the experiment:
	// the sealed shard refuses this client's ops, so it stops quietly.
	chaos := spec.FailSyncsAfter > 0
	for op := 0; op < spec.OpsPerClient; op++ {
		readAcc += spec.ReadRatio
		if readAcc >= 1 {
			readAcc--
			key := sharedKey(sampler.Next())
			if _, ok, err := eng.Get(key); err != nil || !ok {
				if chaos {
					return
				}
				errs <- fmt.Errorf("client %d read %s: ok=%v err=%v", c, key, ok, err)
				return
			}
			continue
		}
		key := sharedKey(sampler.Next())
		v := value
		if spec.ValueDist == "uniform" {
			rng = rng*1664525 + 1013904223
			v = value[:1+int(rng%uint32(len(value)))]
		}
		rmw := false
		if rmwAcc += spec.RMWRatio; rmwAcc >= 1 {
			rmwAcc--
			rmw = true
		}
		shard := eng.ShardFor(key)
		t0 := time.Now()
		if rmw {
			if _, ok, err := eng.Get(key); err != nil || !ok {
				if chaos {
					return
				}
				errs <- fmt.Errorf("client %d rmw-read %s: ok=%v err=%v", c, key, ok, err)
				return
			}
		}
		if _, err := eng.PutPolicy(key, v, policy); err != nil {
			if chaos {
				return
			}
			errs <- fmt.Errorf("client %d op %d: %w", c, op, err)
			return
		}
		d := time.Since(t0).Nanoseconds()
		ackLat.Observe(d)
		shardAck[shard].Observe(d)
	}
}

// EpochStoreAmplification is the epoch-store A/B: the same fixed workload
// over growing file-backed pools, committed as full-image republishes vs as
// delta records. Full-image per-commit bytes track the pool size (write
// amplification 1.0 by construction); the delta store's stay O(dirty) —
// flat across the sweep — which is the property the epoch store exists to
// buy. The workload is deliberately small: the measurement is bytes per
// commit, not throughput, and the full-image side rewrites the whole pool
// every commit.
func EpochStoreAmplification(cfg Config, sz Sizes) []*stats.Table {
	poolMiB := []int{64, 128, 256}
	if sz.MeasureOps < 10_000 {
		poolMiB = []int{16, 32, 64} // quick scale: keep full-image I/O in check
	}
	table := stats.NewTable("epoch store: per-commit persisted bytes vs pool size (fixed workload, file-backed)",
		"mode", "pool MiB", "commits", "p50 KiB/commit", "p99 KiB/commit", "amplification", "writes/s")
	for _, epochLog := range []bool{false, true} {
		mode := "full-image"
		if epochLog {
			mode = "delta"
		}
		for _, mib := range poolMiB {
			dir, err := os.MkdirTemp("", "pax-epochstore-*")
			if err != nil {
				panic(fmt.Sprintf("benchkit: epoch-store sweep: %v", err))
			}
			res, err := RunLoad(LoadSpec{
				Clients:      8,
				OpsPerClient: 24,
				ValueBytes:   64,
				MaxBatch:     16,
				MaxDelay:     time.Millisecond,
				PoolDir:      dir,
				DataSize:     uint64(mib) << 20,
				EpochLog:     epochLog,
			})
			os.RemoveAll(dir)
			if err != nil {
				panic(fmt.Sprintf("benchkit: epoch-store sweep (%s, %d MiB): %v", mode, mib, err))
			}
			table.AddRowf(mode, mib, res.GroupCommits,
				res.CommitP50Bytes/1024, res.CommitP99Bytes/1024,
				res.WriteAmplification, res.Throughput)
		}
	}
	return []*stats.Table{table}
}

// Loadgen is the experiment wrapper: sweep client counts (amortization vs
// concurrency on one shard) and shard counts (throughput vs partition-
// parallel commit), reporting how group commit and sharding scale.
func Loadgen(cfg Config, sz Sizes) []*stats.Table {
	ops := sz.MeasureOps / 30
	if ops < 20 {
		ops = 20
	}
	clientsTable := stats.NewTable("loadgen: group-commit serving vs client count",
		"clients", "acked writes", "snapshots", "writes/snapshot", "max batch", "wall ms", "writes/s")
	for _, clients := range []int{1, 4, 16, 64, 128} {
		res, err := RunLoad(LoadSpec{
			Clients:      clients,
			OpsPerClient: ops,
			ValueBytes:   64,
			GetEveryN:    4,
			MaxBatch:     128,
			MaxDelay:     2 * time.Millisecond,
		})
		if err != nil {
			panic(fmt.Sprintf("benchkit: loadgen with %d clients: %v", clients, err))
		}
		clientsTable.AddRowf(clients, res.AckedWrites, res.GroupCommits,
			res.Amortization, res.BatchMax,
			float64(res.Wall.Milliseconds()), res.Throughput)
	}

	// The shard sweep runs commit-latency-bound (MaxBatch < clients, 2ms
	// modeled media commit): a single pool then has exactly one commit in
	// flight at a time, and shards overlap theirs — the scaling the
	// tentpole exists to buy.
	shardsTable := stats.NewTable("loadgen: sharded serving vs shard count (256 clients, 2ms media commit)",
		"shards", "acked writes", "snapshots", "writes/snapshot", "wall ms", "writes/s", "speedup", "p99 ack ms")
	var base float64
	for _, shards := range []int{1, 2, 4, 8} {
		res, err := RunLoad(LoadSpec{
			Clients:       256,
			OpsPerClient:  ops,
			ValueBytes:    64,
			GetEveryN:     4,
			MaxBatch:      16,
			MaxDelay:      2 * time.Millisecond,
			Shards:        shards,
			CommitLatency: 2 * time.Millisecond,
		})
		if err != nil {
			panic(fmt.Sprintf("benchkit: loadgen with %d shards: %v", shards, err))
		}
		if shards == 1 {
			base = res.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = res.Throughput / base
		}
		shardsTable.AddRowf(shards, res.AckedWrites, res.GroupCommits,
			res.Amortization, float64(res.Wall.Milliseconds()), res.Throughput, speedup,
			float64(res.AckP99.Microseconds())/1e3)
	}

	// The GET-heavy sweep is the read-path A/B: 95% GETs, commit-latency-
	// bound writes. "queued" serializes every GET through the writer loop
	// (the pre-read-index engine); "index" serves GETs from the volatile
	// read index while commits are in flight. The mix matches the recorded
	// BENCH_loadgen.json sweep; closed-loop clients bound the queued path at
	// roughly one op per client per commit cycle, so the ratio grows with
	// the read fraction.
	readTable := stats.NewTable("loadgen: GET-heavy read path (read-ratio 0.95, 128 clients, 2ms media commit)",
		"shards", "read path", "acked writes", "gets", "wall ms", "ops/s", "index speedup")
	for _, shards := range []int{1, 4} {
		var queuedOps float64
		for _, queued := range []bool{true, false} {
			res, err := RunLoad(LoadSpec{
				Clients:       128,
				OpsPerClient:  ops * 2,
				ValueBytes:    64,
				ReadRatio:     0.95,
				QueuedReads:   queued,
				MaxBatch:      16,
				MaxDelay:      2 * time.Millisecond,
				Shards:        shards,
				CommitLatency: 2 * time.Millisecond,
			})
			if err != nil {
				panic(fmt.Sprintf("benchkit: GET-heavy loadgen (%d shards, queued=%v): %v", shards, queued, err))
			}
			path := "index"
			speedup := 0.0
			if queued {
				path = "queued"
				queuedOps = res.OpsThroughput
			} else if queuedOps > 0 {
				speedup = res.OpsThroughput / queuedOps
			}
			readTable.AddRowf(shards, path, res.AckedWrites, res.Gets,
				float64(res.Wall.Milliseconds()), res.OpsThroughput, speedup)
		}
	}
	return []*stats.Table{clientsTable, shardsTable, readTable}
}

// Ackpipe is the commit-pipeline A/B: one shard, commit-latency-bound
// (MaxBatch < clients, 2ms modeled media commit), sweeping the pipeline
// window × ack policy. Under ack-on-durable, window 1 is the serial
// baseline — one commit in flight, one batch per 2ms — and deeper windows
// overlap successive commits' media time, so both throughput and the
// client-observed ack p50 should improve close to linearly until the
// batch supply runs out. Under ack-on-apply the ack latency decouples
// from media entirely (sub-millisecond p50 regardless of window); the
// window then only shapes how far durability lags the acks.
func Ackpipe(cfg Config, sz Sizes) []*stats.Table {
	ops := sz.MeasureOps / 30
	if ops < 20 {
		ops = 20
	}
	table := stats.NewTable("ackpipe: commit pipeline window x ack policy (1 shard, 64 clients, 2ms media commit)",
		"ack policy", "window", "acked writes", "snapshots", "wall ms", "writes/s", "p50 ack ms", "p99 ack ms", "speedup")
	var base float64
	for _, apply := range []bool{false, true} {
		policy := "durable"
		if apply {
			policy = "apply"
		}
		for _, window := range []int{1, 2, 4} {
			res, err := RunLoad(LoadSpec{
				Clients:            64,
				OpsPerClient:       ops,
				ValueBytes:         64,
				GetEveryN:          4,
				MaxBatch:           16,
				MaxDelay:           2 * time.Millisecond,
				CommitLatency:      2 * time.Millisecond,
				MaxInflightCommits: window,
				AckOnApply:         apply,
			})
			if err != nil {
				panic(fmt.Sprintf("benchkit: ackpipe (%s, window %d): %v", policy, window, err))
			}
			if !apply && window == 1 {
				base = res.Throughput
			}
			speedup := 0.0
			if base > 0 {
				speedup = res.Throughput / base
			}
			table.AddRowf(policy, window, res.AckedWrites, res.GroupCommits,
				float64(res.Wall.Milliseconds()), res.Throughput,
				float64(res.AckP50.Microseconds())/1e3,
				float64(res.AckP99.Microseconds())/1e3, speedup)
		}
	}
	return []*stats.Table{table}
}
