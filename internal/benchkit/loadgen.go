package benchkit

import (
	"fmt"
	"sync"
	"time"

	"pax"
	"pax/internal/server"
	"pax/internal/stats"
)

// This file is the serving-layer load generator: instead of driving a
// fixture single-threaded like the paper experiments, it stands up the
// paxserve group-commit engine over an in-memory pool and hammers it with
// concurrent client goroutines, measuring how many individually-acked
// durable writes each snapshot amortizes.

// LoadSpec parameterizes one loadgen run.
type LoadSpec struct {
	Clients      int
	OpsPerClient int
	ValueBytes   int
	// GetEveryN issues a read after every N writes per client (0 disables).
	GetEveryN int
	MaxBatch  int
	MaxDelay  time.Duration
	// Async uses PersistAsync (§6 pipelined) for the group commits.
	Async bool
}

// LoadResult summarizes a run.
type LoadResult struct {
	Spec         LoadSpec
	AckedWrites  uint64
	Gets         uint64
	GroupCommits uint64
	BatchMax     uint64
	// Amortization is acked writes per snapshot — the group-commit payoff.
	Amortization float64
	Wall         time.Duration
	Throughput   float64 // acked writes per wall second
	// Registry is the engine+pool metrics registry, sampled safely (the
	// engine is closed by the time RunLoad returns).
	Registry *stats.Registry
}

// RunLoad executes one loadgen run on a fresh in-memory pool.
func RunLoad(spec LoadSpec) (LoadResult, error) {
	if spec.Clients <= 0 || spec.OpsPerClient <= 0 {
		return LoadResult{}, fmt.Errorf("benchkit: loadgen needs clients and ops, got %+v", spec)
	}
	if spec.ValueBytes <= 0 {
		spec.ValueBytes = 64
	}
	pool, err := pax.CreatePool("", pax.Options{DataSize: 64 << 20, LogSize: 16 << 20, HBMSize: 16 << 20})
	if err != nil {
		return LoadResult{}, err
	}
	defer pool.Close()
	eng, err := server.New(pool, 0, server.Config{
		MaxBatch: spec.MaxBatch,
		MaxDelay: spec.MaxDelay,
		Async:    spec.Async,
	})
	if err != nil {
		return LoadResult{}, err
	}

	value := make([]byte, spec.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, spec.Clients)
	for c := 0; c < spec.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for op := 0; op < spec.OpsPerClient; op++ {
				key := []byte(fmt.Sprintf("c%04d-%06d", c, op))
				if _, err := eng.Put(key, value); err != nil {
					errs <- fmt.Errorf("client %d op %d: %w", c, op, err)
					return
				}
				if spec.GetEveryN > 0 && op%spec.GetEveryN == spec.GetEveryN-1 {
					if _, ok, err := eng.Get(key); err != nil || !ok {
						errs <- fmt.Errorf("client %d read-back %s: ok=%v err=%v", c, key, ok, err)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if err := eng.Close(); err != nil {
		return LoadResult{}, err
	}
	select {
	case err := <-errs:
		return LoadResult{}, err
	default:
	}

	res := LoadResult{
		Spec:         spec,
		AckedWrites:  eng.Stats().AckedWrites.Load(),
		Gets:         eng.Stats().Gets.Load(),
		GroupCommits: eng.Stats().GroupCommits.Load(),
		BatchMax:     eng.Stats().BatchMax.Load(),
		Wall:         wall,
		Registry:     eng.Registry(),
	}
	if res.GroupCommits > 0 {
		res.Amortization = float64(res.AckedWrites) / float64(res.GroupCommits)
	}
	if wall > 0 {
		res.Throughput = float64(res.AckedWrites) / wall.Seconds()
	}
	return res, nil
}

// Loadgen is the experiment wrapper: sweep client counts and report how
// group-commit amortization and throughput scale with concurrency.
func Loadgen(cfg Config, sz Sizes) []*stats.Table {
	ops := sz.MeasureOps / 30
	if ops < 20 {
		ops = 20
	}
	table := stats.NewTable("loadgen: group-commit serving vs client count",
		"clients", "acked writes", "snapshots", "writes/snapshot", "max batch", "wall ms", "writes/s")
	for _, clients := range []int{1, 4, 16, 64, 128} {
		res, err := RunLoad(LoadSpec{
			Clients:      clients,
			OpsPerClient: ops,
			ValueBytes:   64,
			GetEveryN:    4,
			MaxBatch:     128,
			MaxDelay:     2 * time.Millisecond,
		})
		if err != nil {
			panic(fmt.Sprintf("benchkit: loadgen with %d clients: %v", clients, err))
		}
		table.AddRowf(clients, res.AckedWrites, res.GroupCommits,
			res.Amortization, res.BatchMax,
			float64(res.Wall.Milliseconds()), res.Throughput)
	}
	return []*stats.Table{table}
}
