package benchkit

import (
	"fmt"

	"pax/internal/amat"
	"pax/internal/core"
	"pax/internal/device"
	"pax/internal/hbm"
	"pax/internal/memory"
	"pax/internal/pmem"
	"pax/internal/sim"
	"pax/internal/stats"
	"pax/internal/structures"
	"pax/internal/undolog"
	"pax/internal/workload"
)

// Sizes scales an experiment run.
type Sizes struct {
	// Keys sizes the table for the headline figures (chosen to exceed the
	// LLC at paper scale).
	Keys uint64
	// SweepKeys sizes the table for multi-fixture sweep experiments, which
	// rebuild and reload fixtures many times; 0 falls back to Keys.
	SweepKeys    uint64
	MeasureOps   int
	PersistEvery int
	Threads      []int
}

func (s Sizes) sweepKeys() uint64 {
	if s.SweepKeys != 0 {
		return s.SweepKeys
	}
	return s.Keys
}

// QuickSizes returns test-scale sizes (seconds, small tables).
func QuickSizes() Sizes {
	return Sizes{Keys: 2000, MeasureOps: 3000, PersistEvery: 200, Threads: []int{1, 8, 16, 24, 32}}
}

// PaperSizes returns evaluation-scale sizes: the headline figures use a
// table well beyond the LLC; the sweeps use a smaller (but still cache-
// hostile) table so the full suite finishes in minutes.
func PaperSizes() Sizes {
	return Sizes{Keys: 400_000, SweepKeys: 60_000, MeasureOps: 100_000, PersistEvery: 1000, Threads: []int{1, 8, 16, 24, 32}}
}

// Experiment is one reproducible table/figure.
type Experiment struct {
	ID    string
	Paper string // which part of the paper it reproduces
	Desc  string
	Run   func(cfg Config, sz Sizes) []*stats.Table
}

// Experiments lists every experiment in DESIGN.md's index order.
func Experiments() []Experiment {
	return []Experiment{
		{"fig2a", "Figure 2a", "AMAT for DRAM, PM, PM via CXL PAX, PM via Enzian PAX", Fig2a},
		{"fig2b", "Figure 2b", "write-only throughput vs threads: DRAM, PM Direct, PMDK", Fig2b},
		{"fig2b-pax", "§5 claims", "Figure 2b plus PAX (CXL and Enzian)", Fig2bPAX},
		{"wamp", "§1/§5.1", "write amplification: page logging vs PAX line logging", WriteAmplification},
		{"stalls", "§2", "ordering stalls per op: PMDK, compiler pass, page faults, PAX", Stalls},
		{"traps", "§1", "first-touch interposition cost: trap vs coherence message", Traps},
		{"bw", "§5.1", "demanded vs available bandwidth at high thread counts", Bandwidth},
		{"devrate", "§5.1", "device pipeline clock sweep (Enzian FPGA vs ASIC)", DeviceRate},
		{"epoch", "§3.2/§3.3", "epoch length vs throughput, log traffic, persist latency", EpochLength},
		{"evict", "§3.3", "HBM eviction policy ablation under working sets ≫ HBM", Eviction},
		{"recovery", "§3.4", "recovery time and rolled-back lines vs crashed-epoch size", Recovery},
		{"latsweep", "§4/§5", "link latency sweep: where PAX stops beating PMDK", LatencySweep},
		{"hbmsize", "§5", "HBM cache size vs hit rate and op latency (zipfian gets)", HBMSize},
		{"overlap", "§6", "blocking vs pipelined persist()", Overlap},
		{"capacity", "§1", "PM capacity: PAX single-copy + log vs physical snapshots", Capacity},
		{"ycsb", "§5 extension", "YCSB-style mixes (A 50/50, B 95/5, C read-only) across systems", YCSB},
		{"hybrid", "§5.1", "combining with paging: direct-mapped clean pages + vPM dirty pages", HybridPaging},
		{"tail", "§3.2 extension", "tail latency: group commit's persist spikes vs per-op WAL", TailLatency},
		{"scan", "§3.1 extension", "ordered structure (B+tree) inserts and range scans across systems", ScanWorkload},
		{"loadgen", "§3.2 extension", "concurrent KV serving: group-commit amortization vs client count", Loadgen},
		{"epochstore", "§3.3 extension", "per-commit persisted bytes vs pool size: full-image republish vs delta epoch store", EpochStoreAmplification},
		{"ackpipe", "§6 extension", "commit pipeline window x ack policy: serial vs pipelined persist, durable vs apply acks", Ackpipe},
		{"reshard", "§3.2 extension", "zipfian skew vs shard imbalance, plus a live hot-shard split A/B with crash check", Reshard},
		{"autopilot", "§3.2 extension", "reshard autopilot: policy-driven split under zipf skew, idle merge-back, crash check", AutopilotAB},
	}
}

// Find returns the experiment with the given id.
func Find(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

func mustBuild(kind SystemKind, cfg Config) *Fixture {
	f, err := Build(kind, cfg)
	if err != nil {
		panic(fmt.Sprintf("benchkit: building %s: %v", kind, err))
	}
	return f
}

// Fig2a reproduces Figure 2a: measure miss rates and the device HBM hit
// rate on the paper's get() workload, then estimate AMAT per configuration.
func Fig2a(cfg Config, sz Sizes) []*stats.Table {
	// The paper's Figure 2a estimates assume LLC misses are served from PM
	// media (no device-cache benefit); disable the HBM so the estimate is
	// comparable. The HBM upside is quantified separately (hbmsize, ycsb).
	noHBM := cfg
	noHBM.HBMSize = 0
	f := mustBuild(PAXCXL, noHBM)
	res := RunKV(f, RunSpec{
		Workload:     workload.Fig2aConfig(sz.Keys),
		LoadKeys:     int(sz.Keys),
		MeasureOps:   sz.MeasureOps,
		PersistEvery: sz.MeasureOps, // one epoch around the load
	})
	rates := amat.MissRates{L1: res.L1Miss, L2: res.L2Miss, LLC: res.LLCMiss}
	rows := amat.Figure2a(rates, res.HBMHitRate)

	t := stats.NewTable(
		fmt.Sprintf("Figure 2a — AMAT estimates (miss rates L1=%.3f L2=%.3f LLC=%.3f, HBM hit=%.2f)",
			res.L1Miss, res.L2Miss, res.LLCMiss, res.HBMHitRate),
		"config", "llc_miss_service_ns", "amat_ns", "vs_pm")
	for _, r := range rows {
		t.AddRowf(r.Config, r.MemService.Nanoseconds(), r.AMAT.Nanoseconds(), fmt.Sprintf("%.2fx", r.OverPM))
	}
	return []*stats.Table{t}
}

// fig2bSystems runs the write-only workload over the given systems and
// renders the throughput-vs-threads table.
func fig2bSystems(cfg Config, sz Sizes, systems []SystemKind, title string) []*stats.Table {
	headers := []string{"system"}
	for _, n := range sz.Threads {
		headers = append(headers, fmt.Sprintf("t%d_mops", n))
	}
	headers = append(headers, "ns_per_op", "bottleneck_at_max")
	t := stats.NewTable(title, headers...)
	for _, kind := range systems {
		f := mustBuild(kind, cfg)
		persistEvery := 0
		if f.PersistPipelined != nil || kind == PageFault {
			persistEvery = sz.PersistEvery // snapshot systems group-commit
		}
		res := RunKV(f, RunSpec{
			Workload:     workload.Fig2bConfig(sz.Keys),
			LoadKeys:     int(sz.Keys),
			MeasureOps:   sz.MeasureOps,
			PersistEvery: persistEvery,
		})
		points := Scale(res, f.Caps(), sz.Threads)
		row := []any{string(kind)}
		for _, p := range points {
			row = append(row, fmt.Sprintf("%.2f", p.Mops))
		}
		row = append(row, fmt.Sprintf("%.0f", res.NsPerOp), points[len(points)-1].Bottleneck)
		t.AddRowf(row...)
	}
	return []*stats.Table{t}
}

// Fig2b reproduces Figure 2b: DRAM, PM Direct, PMDK, write-only puts.
func Fig2b(cfg Config, sz Sizes) []*stats.Table {
	return fig2bSystems(cfg, sz, []SystemKind{DRAM, PMDirect, PMDK},
		"Figure 2b — write-only throughput vs threads (Mops)")
}

// Fig2bPAX extends Figure 2b with the PAX configurations (§5's claim that
// PAX approaches PM-direct performance).
func Fig2bPAX(cfg Config, sz Sizes) []*stats.Table {
	return fig2bSystems(cfg, sz, []SystemKind{DRAM, PMDirect, PMDK, PAXCXL, PAXEnzian},
		"Figure 2b + PAX — write-only throughput vs threads (Mops)")
}

// Stalls reproduces the §2 argument: ordering stalls and log traffic per
// operation for each crash-consistency mechanism.
func Stalls(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§2 — per-operation crash-consistency overheads (write-only puts)",
		"system", "fences_per_op", "traps_per_op", "log_bytes_per_op", "ns_per_op")
	for _, kind := range []SystemKind{PMDK, CompilerPass, PageFault, PAXCXL} {
		f := mustBuild(kind, cfg)
		persistEvery := 0
		if kind == PageFault || kind == PAXCXL {
			persistEvery = sz.PersistEvery
		}
		// Insert-heavy: no pre-load, keyspace larger than the op count, so
		// each put allocates and links a node (multiple stores per op —
		// where the mechanisms differ most).
		wl := workload.Fig2bConfig(uint64(sz.MeasureOps) * 2)
		res := RunKV(f, RunSpec{
			Workload:     wl,
			MeasureOps:   sz.MeasureOps,
			PersistEvery: persistEvery,
		})
		t.AddRowf(string(kind),
			fmt.Sprintf("%.2f", res.FencesPerOp),
			fmt.Sprintf("%.4f", res.TrapsPerOp),
			fmt.Sprintf("%.1f", res.LoggedBytesPerOp),
			fmt.Sprintf("%.0f", res.NsPerOp))
	}
	return []*stats.Table{t}
}

// storePattern drives 8-byte stores over a region in one of the wamp
// experiment's access patterns and reports bytes stored.
func storePattern(mem memory.Memory, base, size uint64, pattern string) uint64 {
	var stored uint64
	buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	switch pattern {
	case "dense":
		for off := uint64(0); off+8 <= size; off += 8 {
			mem.Store(base+off, buf)
			stored += 8
		}
	case "one-per-line":
		for off := uint64(0); off+8 <= size; off += 64 {
			mem.Store(base+off, buf)
			stored += 8
		}
	case "one-per-page":
		for off := uint64(0); off+8 <= size; off += sim.PageSize {
			mem.Store(base+off, buf)
			stored += 8
		}
	default:
		panic("benchkit: unknown pattern " + pattern)
	}
	return stored
}

// WriteAmplification reproduces the §1/§5.1 granularity argument: log bytes
// written per application byte stored, page-fault tracking vs PAX.
func WriteAmplification(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§1/§5.1 — logging write amplification (log bytes per stored byte)",
		"pattern", "pagefault_4KiB", "pax_64B_lines", "ratio")
	region := uint64(1 << 20)
	if region > cfg.DataSize/2 {
		region = cfg.DataSize / 2
	}
	for _, pattern := range []string{"dense", "one-per-line", "one-per-page"} {
		// Page-fault tracker.
		pf := mustBuild(PageFault, cfg)
		pfBase := cfg.LogSize + cfg.DataSize/2
		pfLogged0 := pf.LoggedBytes()
		pfStored := storePattern(pf.RawMem, pfBase, region, pattern)
		pf.Persist()
		pfWA := float64(pf.LoggedBytes()-pfLogged0) / float64(pfStored)

		// PAX.
		px := mustBuild(PAXCXL, cfg)
		pxBase := px.Pool.DataBase() + cfg.DataSize/2
		px0 := px.Dev.Stats.LogAppends.Load()
		pxStored := storePattern(px.RawMem, pxBase, region, pattern)
		px.Persist()
		pxWA := float64((px.Dev.Stats.LogAppends.Load()-px0)*undolog.EntrySize) / float64(pxStored)

		t.AddRowf(pattern, fmt.Sprintf("%.1f", pfWA), fmt.Sprintf("%.1f", pxWA),
			fmt.Sprintf("%.1fx", pfWA/pxWA))
	}
	return []*stats.Table{t}
}

// Traps reproduces the §1 interposition-cost comparison: the cost of the
// first store to a fresh page (trap) vs a fresh line via PAX (coherence
// message) vs raw PM.
func Traps(cfg Config, sz Sizes) []*stats.Table {
	const n = 256
	t := stats.NewTable("§1 — first-touch interposition cost (avg ns per first store)",
		"system", "first_touch_ns", "mechanism")

	pf := mustBuild(PageFault, cfg)
	base := cfg.LogSize + cfg.DataSize/2
	start := pf.Core.Now()
	for i := uint64(0); i < n; i++ {
		pf.RawMem.Store(base+i*sim.PageSize, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}
	t.AddRowf(string(PageFault), fmt.Sprintf("%.0f", (pf.Core.Now()-start).Nanoseconds()/n), "write-protection trap + 4KiB log")

	px := mustBuild(PAXCXL, cfg)
	pxBase := px.Pool.DataBase() + cfg.DataSize/2
	m := px.Pool.Mem(0)
	start = px.Core.Now()
	for i := uint64(0); i < n; i++ {
		m.Store(pxBase+i*64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}
	t.AddRowf(string(PAXCXL), fmt.Sprintf("%.0f", (px.Core.Now()-start).Nanoseconds()/n), "RdOwn to device, async undo log")

	pd := mustBuild(PMDirect, cfg)
	pdBase := cfg.DataSize / 2
	start = pd.Core.Now()
	for i := uint64(0); i < n; i++ {
		pd.Core.Store(pdBase+i*64, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	}
	t.AddRowf(string(PMDirect), fmt.Sprintf("%.0f", (pd.Core.Now()-start).Nanoseconds()/n), "none (not crash consistent)")
	return []*stats.Table{t}
}

// Bandwidth reproduces the §5.1 headroom analysis: unthrottled demanded
// bandwidth at the highest thread count against each channel's capacity.
func Bandwidth(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§5.1 — bandwidth demand at max threads vs channel capacity",
		"system", "pm_write_B_per_op", "demand_GBps", "pm_write_cap_GBps", "link_GBps_demand", "link_cap_GBps", "binding")
	maxT := sz.Threads[len(sz.Threads)-1]
	for _, kind := range []SystemKind{PMDirect, PMDK, PAXCXL} {
		f := mustBuild(kind, cfg)
		persistEvery := 0
		if f.PersistPipelined != nil {
			persistEvery = sz.PersistEvery
		}
		res := RunKV(f, RunSpec{
			Workload:     workload.Fig2bConfig(sz.Keys),
			LoadKeys:     int(sz.Keys),
			MeasureOps:   sz.MeasureOps,
			PersistEvery: persistEvery,
		})
		caps := f.Caps()
		rate1 := float64(res.Ops) / res.Elapsed.Seconds()
		unclamped := rate1 * float64(maxT)
		demandW := unclamped * res.PMWriteBytesPerOp / 1e9
		linkDemand := unclamped * res.LinkBytesPerOp / 1e9
		linkCap := caps.LinkBW / 1e9
		points := Scale(res, caps, []int{maxT})
		t.AddRowf(string(kind),
			fmt.Sprintf("%.0f", res.PMWriteBytesPerOp),
			fmt.Sprintf("%.1f", demandW),
			fmt.Sprintf("%.0f", caps.PMWriteBW/1e9),
			fmt.Sprintf("%.1f", linkDemand),
			fmt.Sprintf("%.0f", linkCap),
			points[0].Bottleneck)
	}
	return []*stats.Table{t}
}

// DeviceRate reproduces the §5.1 accelerator-bottleneck analysis: sweep the
// device pipeline clock from FPGA-class to ASIC-class and report the
// message-rate ceiling it imposes at full thread count.
func DeviceRate(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§5.1 — device pipeline clock sweep (PAX, write-only)",
		"device_clock_mhz", "msgs_per_op", "pipeline_cap_mops", "mops_at_max_threads", "bottleneck")
	maxT := sz.Threads[len(sz.Threads)-1]
	for _, hz := range []float64{150e6, 300e6, 600e6, 1e9, 2e9} {
		link := sim.CXLLink
		link.DeviceHz = hz
		f := buildPAXWithLink(cfg, link)
		res := RunKV(f, RunSpec{
			Workload:     workload.Fig2bConfig(sz.sweepKeys()),
			LoadKeys:     int(sz.sweepKeys()),
			MeasureOps:   sz.MeasureOps,
			PersistEvery: sz.PersistEvery,
		})
		points := Scale(res, f.Caps(), []int{maxT})
		capMops := 0.0
		if res.DeviceMsgsPerOp > 0 {
			capMops = hz / res.DeviceMsgsPerOp / 1e6
		}
		t.AddRowf(fmt.Sprintf("%.0f", hz/1e6),
			fmt.Sprintf("%.2f", res.DeviceMsgsPerOp),
			fmt.Sprintf("%.1f", capMops),
			fmt.Sprintf("%.2f", points[0].Mops),
			points[0].Bottleneck)
	}
	return []*stats.Table{t}
}

func buildPAXWithLink(cfg Config, link sim.LinkProfile) *Fixture {
	opts := core.Options{
		DataSize: cfg.DataSize,
		LogSize:  cfg.LogSize,
		Device:   device.Config{Link: link, HBMSize: cfg.HBMSize, HBMWays: cfg.HBMWays, Policy: cfg.Policy},
		Host:     cfg.Host,
	}
	pm := pmem.New(pmem.DefaultConfig(int(core.HeaderSize + cfg.LogSize + cfg.DataSize)))
	pool, err := core.Create(pm, opts)
	if err != nil {
		panic(err)
	}
	hm, err := structures.NewHashMap(pool.Arena(), cfg.Buckets)
	if err != nil {
		panic(err)
	}
	pool.SetRoot(0, hm.Addr())
	dev := pool.Device()
	return &Fixture{
		Kind: PAXCXL, Map: hm,
		Persist:          func() { pool.Persist() },
		PersistPipelined: func() { pool.PersistPipelined() },
		Core:             pool.Hierarchy().Core(0),
		Hier:             pool.Hierarchy(),
		PM:               pm,
		Link:             dev.Link(),
		Dev:              dev,
		Pool:             pool,
		PoolOpts:         opts,
		RawMem:           pool.Mem(0),
		Arena:            pool.Arena(),
		OpWrap:           plainWrap,
		Fences:           noCount,
		LoggedBytes:      func() uint64 { return dev.Stats.LogAppends.Load() * undolog.EntrySize },
		Traps:            noCount,
	}
}

// EpochLength reproduces the §3.2/§3.3 group-commit analysis: ops per
// persist() vs throughput, log traffic, and persist latency.
func EpochLength(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§3.2/§3.3 — epoch length (ops per persist)",
		"ops_per_persist", "ns_per_op", "log_entries_per_op", "avg_persist_us", "lines_per_persist")
	for _, every := range []int{1, 10, 100, 1000} {
		if every > sz.MeasureOps {
			continue
		}
		// Short epochs persist tens of thousands of times; a tenth of the
		// ops is ample for a stationary per-op figure.
		measure := sz.MeasureOps
		if every <= 10 && measure > 10_000 {
			measure = measure / 10
		}
		f := mustBuild(PAXCXL, cfg)
		pool := f.Pool
		var persistTime sim.Time
		var persists, lines int
		f.Persist = func() {
			before := f.Core.Now()
			rep, err := pool.Persist()
			if err != nil {
				panic(err) // in-memory fixture: media cannot fail
			}
			persistTime += f.Core.Now() - before
			persists++
			lines += rep.LinesSnooped
		}
		var appends0 uint64
		res := RunKV(f, RunSpec{
			Workload:     workload.Fig2bConfig(sz.sweepKeys()),
			LoadKeys:     int(sz.sweepKeys()),
			MeasureOps:   measure,
			PersistEvery: every,
			PostLoad: func() {
				appends0 = f.Dev.Stats.LogAppends.Load()
				persistTime, persists, lines = 0, 0, 0
			},
		})
		appends := float64(f.Dev.Stats.LogAppends.Load() - appends0)
		avgPersist := 0.0
		avgLines := 0.0
		if persists > 0 {
			avgPersist = (persistTime / sim.Time(persists)).Nanoseconds() / 1000
			avgLines = float64(lines) / float64(persists)
		}
		t.AddRowf(every,
			fmt.Sprintf("%.0f", res.NsPerOp),
			fmt.Sprintf("%.2f", appends/float64(res.Ops)),
			fmt.Sprintf("%.1f", avgPersist),
			fmt.Sprintf("%.0f", avgLines))
	}
	return []*stats.Table{t}
}

// Eviction reproduces the §3.3 eviction-policy ablation at the device's
// arrival process: upgrades and dirty write-backs arriving at the rate a
// full socket of writers produces (tens of ns apart), so undo-log entries
// are still in flight on the PM write channel when their lines must be
// evicted from the small device buffer. PreferDurable evicts clean or
// already-logged lines first; PlainLRU stalls on in-flight entries.
func Eviction(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§3.3 — HBM eviction policy under a socket-rate dirty burst",
		"policy", "stalled_dirty_evictions", "dirty_writebacks", "arrival_gap_ns")
	const gap = 10 // ns between arrivals ≈ 32 threads at ~3 Mops each
	for _, pol := range []hbm.Policy{hbm.PreferDurable, hbm.PlainLRU} {
		c := cfg
		c.HBMSize = 64 << 10
		c.HBMWays = 4
		c.Policy = pol
		f := mustBuild(PAXCXL, c)
		dev := f.Dev
		base := f.Pool.DataBase() + c.DataSize/2
		line := make([]byte, 64)
		var buf [64]byte
		at := sim.Time(0)
		for i := uint64(0); i < 4096; i++ {
			addr := base + i*64
			dev.UpgradeLine(addr, at)
			dev.WriteBackLine(addr, line, at+sim.NS(gap))
			// Clean fills interleave: candidates PreferDurable can evict
			// for free.
			dev.FetchLine(base-(i+1)*64, false, buf[:], at)
			at += sim.NS(2 * gap)
		}
		t.AddRowf(pol.String(),
			dev.HBM().DirtyEvictionsStalled.Load(),
			dev.Stats.WriteBacksRecv.Load(),
			gap)
	}
	return []*stats.Table{t}
}

// Recovery reproduces §3.4: crash with K modified lines in the open epoch,
// then measure what recovery reads, writes, and rolls back.
func Recovery(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§3.4 — recovery vs crashed-epoch size",
		"modified_lines", "rolled_back", "entries_scanned", "recovery_pm_bytes", "est_recovery_us")
	for _, k := range []int{100, 1000, 10000} {
		if uint64(k*64) > cfg.DataSize/2 {
			continue
		}
		opts := core.Options{
			DataSize: cfg.DataSize, LogSize: cfg.LogSize,
			Device: device.Config{Link: sim.CXLLink, HBMSize: cfg.HBMSize, HBMWays: cfg.HBMWays, Policy: cfg.Policy},
			Host:   cfg.Host,
		}
		pm := pmem.New(pmem.DefaultConfig(int(core.HeaderSize + cfg.LogSize + cfg.DataSize)))
		pool, err := core.Create(pm, opts)
		if err != nil {
			panic(err)
		}
		base := pool.DataBase() + cfg.DataSize/2
		m := pool.Mem(0)
		for i := 0; i < k; i++ {
			m.Store(base+uint64(i*64), []byte{9, 9, 9, 9, 9, 9, 9, 9})
		}
		// Crash: reopen and meter the media traffic recovery causes.
		pm.ResetStats()
		p2, err := core.Open(pm, opts)
		if err != nil {
			panic(err)
		}
		rec := p2.Recovery()
		recBytes := pm.BytesRead.Load() + pm.BytesWritten.Load()
		estUS := (float64(pm.BytesRead.Load())/sim.PMReadBandwidth +
			float64(pm.BytesWritten.Load())/sim.PMWriteBandwidth) * 1e6
		t.AddRowf(k, rec.LinesRolledBack, rec.EntriesScanned, recBytes, fmt.Sprintf("%.1f", estUS))
	}
	return []*stats.Table{t}
}

// LatencySweep reproduces the §4/§5 portability question: how much link
// latency can PAX absorb before a hand-crafted WAL wins.
func LatencySweep(cfg Config, sz Sizes) []*stats.Table {
	pmdkF := mustBuild(PMDK, cfg)
	pmdkRes := RunKV(pmdkF, RunSpec{
		Workload:   workload.Fig2bConfig(sz.sweepKeys()),
		LoadKeys:   int(sz.sweepKeys()),
		MeasureOps: sz.MeasureOps,
	})
	t := stats.NewTable(
		fmt.Sprintf("§4/§5 — link latency sweep (PMDK reference: %.0f ns/op)", pmdkRes.NsPerOp),
		"link_latency_ns", "pax_ns_per_op", "pax_vs_pmdk", "pax_wins")
	for _, lat := range []float64{25, 50, 100, 250, 500, 1000} {
		link := sim.CXLLink
		link.Latency = sim.NS(lat)
		f := buildPAXWithLink(cfg, link)
		res := RunKV(f, RunSpec{
			Workload:     workload.Fig2bConfig(sz.sweepKeys()),
			LoadKeys:     int(sz.sweepKeys()),
			MeasureOps:   sz.MeasureOps,
			PersistEvery: sz.PersistEvery,
		})
		ratio := res.NsPerOp / pmdkRes.NsPerOp
		t.AddRowf(fmt.Sprintf("%.0f", lat),
			fmt.Sprintf("%.0f", res.NsPerOp),
			fmt.Sprintf("%.2fx", ratio),
			fmt.Sprintf("%v", ratio < 1))
	}
	return []*stats.Table{t}
}

// HBMSize reproduces the §5 HBM-cache claim. The device cache only pays off
// once it exceeds what the host LLC already absorbs, so the sweep runs from
// zero up to dataset-sized HBM (the paper's HBM is GB-class) under uniform
// reads whose reuse distance defeats the 22 MiB LLC.
func HBMSize(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§5 — HBM cache size vs hit rate (uniform gets, table ≫ LLC)",
		"hbm_bytes", "hbm_hit_rate", "ns_per_op")
	wl := workload.Config{
		Keys: sz.Keys, KeySize: 8, ValueSize: 8,
		ReadFraction: 1.0, Dist: "uniform", Seed: 42,
	}
	for _, size := range []int{0, int(cfg.DataSize / 16), int(cfg.DataSize / 4), int(cfg.DataSize)} {
		c := cfg
		c.HBMSize = size
		f := mustBuild(PAXCXL, c)
		res := RunKV(f, RunSpec{
			Workload:     wl,
			LoadKeys:     int(sz.Keys),
			MeasureOps:   sz.MeasureOps,
			PersistEvery: sz.MeasureOps,
		})
		t.AddRowf(size, fmt.Sprintf("%.3f", res.HBMHitRate), fmt.Sprintf("%.0f", res.NsPerOp))
	}
	return []*stats.Table{t}
}

// Overlap reproduces the §6 extension: blocking vs pipelined persist().
func Overlap(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§6 — blocking vs pipelined persist()",
		"ops_per_persist", "blocking_ns_per_op", "pipelined_ns_per_op", "speedup")
	for _, every := range []int{10, 100, 1000} {
		if every > sz.MeasureOps {
			continue
		}
		run := func(pipelined bool) float64 {
			f := mustBuild(PAXCXL, cfg)
			res := RunKV(f, RunSpec{
				Workload:     workload.Fig2bConfig(sz.sweepKeys()),
				LoadKeys:     int(sz.sweepKeys()),
				MeasureOps:   sz.MeasureOps,
				PersistEvery: every,
				Pipelined:    pipelined,
			})
			return res.NsPerOp
		}
		block := run(false)
		pipe := run(true)
		t.AddRowf(every, fmt.Sprintf("%.0f", block), fmt.Sprintf("%.0f", pipe),
			fmt.Sprintf("%.2fx", block/pipe))
	}
	return []*stats.Table{t}
}

// Capacity reproduces the §1 capacity argument: PAX keeps one copy of the
// structure plus a bounded log; physical-snapshot systems keep ≥ 2x.
func Capacity(cfg Config, sz Sizes) []*stats.Table {
	f := mustBuild(PAXCXL, cfg)
	RunKV(f, RunSpec{
		Workload:     workload.Fig2bConfig(sz.Keys),
		LoadKeys:     int(sz.Keys),
		MeasureOps:   sz.MeasureOps,
		PersistEvery: sz.PersistEvery,
	})
	live := f.Pool.Arena().Brk() - f.Pool.DataBase()
	peakLog := uint64(f.Dev.Log().PeakLive) * undolog.EntrySize
	paxTotal := float64(live + peakLog)
	t := stats.NewTable("§1 — PM capacity cost per byte of live data",
		"approach", "pm_bytes", "ratio_to_live")
	t.AddRowf("live data", live, "1.00")
	t.AddRowf("pax (live + peak undo log)", uint64(paxTotal), fmt.Sprintf("%.2f", paxTotal/float64(live)))
	t.AddRowf("physical snapshot (Kamino/Pronto-style, ≥2 copies)", live*2, "2.00")
	return []*stats.Table{t}
}

// YCSB runs the classic YCSB A/B/C mixes (update-heavy, read-mostly,
// read-only) over the main systems — the paper's §5 expectation that PAX's
// advantage grows with write intensity, checked across mixes.
func YCSB(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("YCSB-style mixes — simulated ns/op (and Mops at max threads)",
		"system", "A_50r50w", "B_95r5w", "C_100r", "A_mops_maxt", "C_mops_maxt")
	maxT := sz.Threads[len(sz.Threads)-1]
	mixes := []struct {
		name string
		read float64
	}{{"A", 0.5}, {"B", 0.95}, {"C", 1.0}}
	for _, kind := range []SystemKind{PMDirect, PMDK, PAXCXL} {
		perMix := map[string]RunResult{}
		var capsOf Caps
		for _, mix := range mixes {
			f := mustBuild(kind, cfg)
			persistEvery := 0
			if f.PersistPipelined != nil {
				persistEvery = sz.PersistEvery
			}
			wl := workload.Config{
				Keys: sz.Keys, KeySize: 8, ValueSize: 8,
				ReadFraction: mix.read, Dist: "zipf", ZipfS: 1.2, Seed: 42,
			}
			perMix[mix.name] = RunKV(f, RunSpec{
				Workload:     wl,
				LoadKeys:     int(sz.Keys),
				MeasureOps:   sz.MeasureOps,
				PersistEvery: persistEvery,
			})
			capsOf = f.Caps()
		}
		aPoints := Scale(perMix["A"], capsOf, []int{maxT})
		cPoints := Scale(perMix["C"], capsOf, []int{maxT})
		t.AddRowf(string(kind),
			fmt.Sprintf("%.0f", perMix["A"].NsPerOp),
			fmt.Sprintf("%.0f", perMix["B"].NsPerOp),
			fmt.Sprintf("%.0f", perMix["C"].NsPerOp),
			fmt.Sprintf("%.2f", aPoints[0].Mops),
			fmt.Sprintf("%.2f", cPoints[0].Mops))
	}
	return []*stats.Table{t}
}

// HybridPaging reproduces the §5.1 combination sketch: clean pages read
// through a direct mapping (no device interposition), written pages tracked
// by PAX at line granularity. Compared against pure PAX across read
// fractions — paging should win as the workload gets read-heavier.
func HybridPaging(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§5.1 — pure PAX vs hybrid paging+PAX",
		"read_fraction", "pax_ns_per_op", "hybrid_ns_per_op", "hybrid_direct_reads", "hybrid_faults_per_op")
	for _, readFrac := range []float64{0.5, 0.95, 1.0} {
		wl := workload.Config{
			Keys: sz.sweepKeys(), KeySize: 8, ValueSize: 8,
			ReadFraction: readFrac, Dist: "uniform", Seed: 42,
		}
		run := func(kind SystemKind) (RunResult, *Fixture) {
			f := mustBuild(kind, cfg)
			res := RunKV(f, RunSpec{
				Workload:     wl,
				LoadKeys:     int(sz.sweepKeys()),
				MeasureOps:   sz.MeasureOps,
				PersistEvery: sz.PersistEvery,
			})
			return res, f
		}
		pax, _ := run(PAXCXL)
		hyb, hf := run(PAXHybrid)
		directFrac := 0.0
		if hm, ok := hf.RawMem.(interface{ DirectReadFraction() float64 }); ok {
			directFrac = hm.DirectReadFraction()
		}
		t.AddRowf(fmt.Sprintf("%.2f", readFrac),
			fmt.Sprintf("%.0f", pax.NsPerOp),
			fmt.Sprintf("%.0f", hyb.NsPerOp),
			fmt.Sprintf("%.2f", directFrac),
			fmt.Sprintf("%.4f", hyb.TrapsPerOp))
	}

	// Second table: spatial locality. The KV workload scatters 8-byte
	// writes, so every touched page costs a trap for little coverage —
	// paging's worst case. Sequential (page-dense) writes amortize one trap
	// over 512 stores, which is where §5.1 expects paging to pay off.
	t2 := stats.NewTable("§5.1 — hybrid fault amortization by write pattern (raw stores)",
		"pattern", "pax_sim_us", "hybrid_sim_us", "faults", "stored_bytes_per_fault")
	region := uint64(1 << 20)
	for _, pattern := range []string{"dense", "one-per-page"} {
		runRaw := func(kind SystemKind) (float64, uint64, uint64) {
			f := mustBuild(kind, cfg)
			var base uint64
			if kind == PAXHybrid {
				base = cfg.DataSize / 2 // hybrid offsets are region-relative
			} else {
				base = f.Pool.DataBase() + cfg.DataSize/2
			}
			traps0 := f.Traps() // exclude fixture-construction faults
			start := f.Core.Now()
			stored := storePattern(f.RawMem, base, region, pattern)
			f.Persist()
			elapsed := (f.Core.Now() - start).Nanoseconds() / 1000
			return elapsed, f.Traps() - traps0, stored
		}
		paxUS, _, _ := runRaw(PAXCXL)
		hybUS, faults, stored := runRaw(PAXHybrid)
		perFault := uint64(0)
		if faults > 0 {
			perFault = stored / faults
		}
		t2.AddRowf(pattern, fmt.Sprintf("%.0f", paxUS), fmt.Sprintf("%.0f", hybUS), faults, perFault)
	}
	return []*stats.Table{t, t2}
}

// TailLatency examines what group commit does to the latency DISTRIBUTION:
// PAX's median op is fast but the op that triggers persist() absorbs the
// whole epoch's write-back (p99.9/max spike), while PMDK pays a fat constant
// per op. Pipelined persist (§6) removes most of the spike.
func TailLatency(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§3.2 — per-op simulated latency distribution (write-only)",
		"system", "p50_ns", "p99_ns", "max_ns", "mean_ns")
	type variant struct {
		name      string
		kind      SystemKind
		every     int
		pipelined bool
	}
	variants := []variant{
		{"pmdk (per-op tx)", PMDK, 0, false},
		{"pax persist-every-1000", PAXCXL, 1000, false},
		{"pax pipelined-1000", PAXCXL, 1000, true},
	}
	for _, v := range variants {
		f := mustBuild(v.kind, cfg)
		res := RunKV(f, RunSpec{
			Workload:        workload.Fig2bConfig(sz.sweepKeys()),
			LoadKeys:        int(sz.sweepKeys()),
			MeasureOps:      sz.MeasureOps,
			PersistEvery:    v.every,
			Pipelined:       v.pipelined,
			RecordLatencies: true,
		})
		h := res.Latencies
		ns := func(ps int64) string { return fmt.Sprintf("%.0f", float64(ps)/1000) }
		t.AddRowf(v.name, ns(h.Quantile(0.5)), ns(h.Quantile(0.99)), ns(h.Max()), fmt.Sprintf("%.0f", h.Mean()/1000))
	}
	return []*stats.Table{t}
}

// ScanWorkload exercises an ordered structure — the B+tree — over the main
// systems: random inserts (each failure-atomic under the system's
// discipline) followed by range scans. Scans are pure reads, so the §3.1
// black-box claim predicts PAX scans at near-direct speed while the WAL
// baseline pays nothing extra either — the gap is all on the insert side.
func ScanWorkload(cfg Config, sz Sizes) []*stats.Table {
	t := stats.NewTable("§3.1 extension — B+tree inserts + range scans",
		"system", "insert_ns_per_op", "scan_ns_per_entry")
	keys := sz.sweepKeys()
	const scanLen = 100
	for _, kind := range []SystemKind{PMDirect, PMDK, PAXCXL} {
		f := mustBuild(kind, cfg)
		var bt *structures.BTree
		var err error
		f.OpWrap(func() {
			bt, err = structures.NewBTree(f.Arena)
		})
		if err != nil {
			panic(err)
		}
		rng := workload.NewUniform(keys, 42)

		start := f.Core.Now()
		for i := uint64(0); i < keys; i++ {
			k := rng.Next()
			f.OpWrap(func() {
				if err := bt.Put(k, k^0xABCD); err != nil {
					panic(err)
				}
			})
			if f.PersistPipelined != nil && (i+1)%uint64(sz.PersistEvery) == 0 {
				f.Persist()
			}
		}
		if f.PersistPipelined != nil {
			f.Persist()
		}
		insertNs := (f.Core.Now() - start).Nanoseconds() / float64(keys)

		start = f.Core.Now()
		scanned := 0
		for s := uint64(0); s < 200; s++ {
			from := rng.Next()
			n := 0
			bt.Scan(from, func(k, v uint64) bool {
				n++
				return n < scanLen
			})
			scanned += n
		}
		scanNs := 0.0
		if scanned > 0 {
			scanNs = (f.Core.Now() - start).Nanoseconds() / float64(scanned)
		}
		t.AddRowf(string(kind), fmt.Sprintf("%.0f", insertNs), fmt.Sprintf("%.0f", scanNs))
	}
	return []*stats.Table{t}
}
