package hbm

import (
	"testing"
	"testing/quick"
)

func mkLine(addr uint64, dirty bool, bound uint64) Line {
	var l Line
	l.Addr = addr
	l.Dirty = dirty
	l.LogBound = bound
	l.Data[0] = byte(addr / LineSize)
	return l
}

func TestLookupInsert(t *testing.T) {
	c := New(1024, 4, PreferDurable) // 16 lines, 4 sets
	if got := c.Lookup(0); got != nil {
		t.Fatal("empty cache hit")
	}
	c.Insert(mkLine(0, false, 0), 0)
	ln := c.Lookup(0)
	if ln == nil || ln.Data[0] != 0 {
		t.Fatal("inserted line not found")
	}
	if c.Ratio.Hits.Load() != 1 || c.Ratio.Misses.Load() != 1 {
		t.Fatalf("ratio %d/%d", c.Ratio.Hits.Load(), c.Ratio.Misses.Load())
	}
}

func TestInsertReplacesInPlace(t *testing.T) {
	c := New(1024, 4, PreferDurable)
	c.Insert(mkLine(64, false, 0), 0)
	updated := mkLine(64, true, 96)
	updated.Data[1] = 0xEE
	if _, evicted := c.Insert(updated, 0); evicted {
		t.Fatal("in-place replace evicted")
	}
	ln := c.Peek(64)
	if !ln.Dirty || ln.Data[1] != 0xEE || ln.LogBound != 96 {
		t.Fatalf("replace lost data: %+v", ln)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
}

// fillSet inserts `ways` lines all mapping to the same set (set stride =
// numSets*LineSize).
func fillSet(c *Cache, numSets, ways int, dirty bool, bound uint64) {
	for i := 0; i < ways; i++ {
		addr := uint64(i*numSets) * LineSize
		c.Insert(mkLine(addr, dirty, bound), 0)
	}
}

func TestPreferDurableEvictsCleanFirst(t *testing.T) {
	c := New(1024, 4, PreferDurable) // 4 sets x 4 ways
	const numSets = 4
	// Fill one set: 3 dirty lines (undurable), 1 clean line (the LRU is the
	// first inserted, which is dirty — policy must still pick the clean one).
	c.Insert(mkLine(0*numSets*LineSize, true, 1000), 0)
	c.Insert(mkLine(1*numSets*LineSize, true, 1000), 0)
	c.Insert(mkLine(2*numSets*LineSize, false, 0), 0)
	c.Insert(mkLine(3*numSets*LineSize, true, 1000), 0)

	victim, evicted := c.Insert(mkLine(4*numSets*LineSize, true, 1000), 0)
	if !evicted {
		t.Fatal("no eviction from full set")
	}
	if victim.Dirty {
		t.Fatalf("evicted dirty line %+v with a clean candidate available", victim)
	}
	if c.DirtyEvictionsStalled.Load() != 0 {
		t.Fatal("clean eviction counted as stalled")
	}
}

func TestPreferDurableEvictsDurableDirtyNext(t *testing.T) {
	c := New(1024, 4, PreferDurable)
	const numSets = 4
	// All dirty: one has a durable log entry (bound 96 ≤ frontier 200).
	c.Insert(mkLine(0*numSets*LineSize, true, 1000), 0)
	c.Insert(mkLine(1*numSets*LineSize, true, 96), 0)
	c.Insert(mkLine(2*numSets*LineSize, true, 1000), 0)
	c.Insert(mkLine(3*numSets*LineSize, true, 1000), 0)

	victim, evicted := c.Insert(mkLine(4*numSets*LineSize, true, 1000), 200)
	if !evicted || victim.Addr != 1*numSets*LineSize {
		t.Fatalf("victim %+v, want the durable-dirty line", victim)
	}
	if c.DirtyEvictionsStalled.Load() != 0 {
		t.Fatal("durable eviction counted as stalled")
	}

	// Now nothing is durable: eviction must stall-count.
	victim, evicted = c.Insert(mkLine(5*numSets*LineSize, true, 1000), 0)
	if !evicted || !victim.Dirty {
		t.Fatalf("victim %+v", victim)
	}
	if c.DirtyEvictionsStalled.Load() != 1 {
		t.Fatalf("stalled = %d", c.DirtyEvictionsStalled.Load())
	}
}

func TestPlainLRUIgnoresDurability(t *testing.T) {
	c := New(1024, 4, PlainLRU)
	const numSets = 4
	// LRU is a dirty, undurable line; a clean line exists but was used later.
	c.Insert(mkLine(0*numSets*LineSize, true, 1000), 0) // LRU
	c.Insert(mkLine(1*numSets*LineSize, false, 0), 0)
	c.Insert(mkLine(2*numSets*LineSize, false, 0), 0)
	c.Insert(mkLine(3*numSets*LineSize, false, 0), 0)

	victim, evicted := c.Insert(mkLine(4*numSets*LineSize, false, 0), 0)
	if !evicted || victim.Addr != 0 || !victim.Dirty {
		t.Fatalf("PlainLRU victim %+v, want addr 0 dirty", victim)
	}
	if c.DirtyEvictionsStalled.Load() != 1 {
		t.Fatal("undurable dirty eviction not counted")
	}
}

func TestLRUOrderWithinClass(t *testing.T) {
	c := New(1024, 4, PreferDurable)
	const numSets = 4
	fillSet(c, numSets, 4, false, 0)
	// Touch line 0 so line 1 becomes LRU.
	c.Lookup(0)
	victim, evicted := c.Insert(mkLine(4*numSets*LineSize, false, 0), 0)
	if !evicted || victim.Addr != 1*numSets*LineSize {
		t.Fatalf("victim %+v, want LRU line 1", victim)
	}
}

func TestMarkCleanAndRemove(t *testing.T) {
	c := New(1024, 4, PreferDurable)
	c.Insert(mkLine(0, true, 96), 0)
	if c.DirtyCount() != 1 {
		t.Fatal("dirty count wrong")
	}
	c.MarkClean(0)
	if c.DirtyCount() != 0 || c.Peek(0).LogBound != 0 {
		t.Fatal("MarkClean incomplete")
	}
	c.MarkClean(4096) // absent: no-op
	ln, ok := c.Remove(0)
	if !ok || ln.Addr != 0 {
		t.Fatal("Remove failed")
	}
	if _, ok := c.Remove(0); ok {
		t.Fatal("double remove succeeded")
	}
	if c.Len() != 0 {
		t.Fatal("cache not empty")
	}
}

func TestForEachDirty(t *testing.T) {
	c := New(1024, 4, PreferDurable)
	c.Insert(mkLine(0, true, 96), 0)
	c.Insert(mkLine(64, false, 0), 0)
	c.Insert(mkLine(128, true, 192), 0)
	var seen []uint64
	c.ForEachDirty(func(l *Line) { seen = append(seen, l.Addr) })
	if len(seen) != 2 {
		t.Fatalf("dirty lines %v", seen)
	}
}

func TestGeometryValidation(t *testing.T) {
	for _, f := range []func(){
		func() { New(100, 4, PlainLRU) },  // not line multiple
		func() { New(1024, 3, PlainLRU) }, // sets not power of two (16/3 invalid)
		func() { New(0, 1, PlainLRU) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: the cache never holds two lines with the same address and never
// exceeds capacity; a line just inserted is always findable unless evicted
// by a later insert to the same set.
func TestCacheCapacityProperty(t *testing.T) {
	f := func(addrs []uint16) bool {
		c := New(2048, 2, PreferDurable) // 32 lines
		for _, a := range addrs {
			addr := uint64(a) * LineSize
			c.Insert(mkLine(addr, a%2 == 0, uint64(a)), uint64(a/2))
			if c.Peek(addr) == nil {
				return false // just-inserted line must be present
			}
		}
		if c.Len() > 32 {
			return false
		}
		seen := map[uint64]bool{}
		dup := false
		for s := range c.sets {
			for w := range c.sets[s] {
				if c.sets[s][w].valid {
					if seen[c.sets[s][w].line.Addr] {
						dup = true
					}
					seen[c.sets[s][w].line.Addr] = true
				}
			}
		}
		return !dup
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPolicyString(t *testing.T) {
	if PreferDurable.String() != "prefer-durable" || PlainLRU.String() != "plain-lru" {
		t.Fatal("policy names wrong")
	}
	if Policy(9).String() != "Policy(9)" {
		t.Fatal("fallback name wrong")
	}
}
