// Package hbm implements the PAX device's on-board high-bandwidth-memory
// cache of PM (Figure 1 of the paper). It buffers both clean lines (to serve
// host fills faster than Optane) and modified lines awaiting write-back.
//
// The cache is where §3.3's key freedom lives: a dirty line may be evicted to
// PM as soon as its undo-log entry is durable, so the device never limits the
// per-epoch working set. The eviction policy can prefer such "unlocked" lines
// (PreferDurable) or ignore durability (PlainLRU) — the `evict` experiment
// ablates the two.
package hbm

import (
	"fmt"

	"pax/internal/coherence"
	"pax/internal/stats"
)

// LineSize is the cache granule.
const LineSize = coherence.LineSize

// Policy selects the victim-selection strategy.
type Policy uint8

const (
	// PreferDurable evicts, in order of preference: invalid ways, clean
	// lines (LRU), dirty lines whose undo entry is durable (LRU), and only
	// as a last resort dirty lines whose undo entry is still in flight.
	PreferDurable Policy = iota
	// PlainLRU always evicts the least recently used way.
	PlainLRU
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PreferDurable:
		return "prefer-durable"
	case PlainLRU:
		return "plain-lru"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// Line is one cached line plus the write-back bookkeeping the device needs.
type Line struct {
	Addr  uint64
	Data  [LineSize]byte
	Dirty bool
	// LogBound is the undo-log virtual offset that must be durable before
	// this line may be written back to PM (entry offset + entry size).
	// Meaningful only when Dirty.
	LogBound uint64
}

type slot struct {
	valid   bool
	line    Line
	lastUse uint64
}

// Cache is the HBM cache: set-associative, with durability-aware eviction.
// It is purely functional; the device charges HBM latency itself.
type Cache struct {
	sets   [][]slot
	mask   uint64
	ways   int
	policy Policy
	useCtr uint64
	// dirty indexes the addresses of dirty lines so persist-time write-back
	// scans cost O(dirty), not O(cache size): a 16 MiB cache is ~256k slots,
	// and walking all of them per persist dominated group-commit cost. The
	// index is maintained at every dirty-bit transition (Insert, MarkClean,
	// Remove), which only works because Dirty is never mutated through the
	// pointers Lookup/Peek return.
	dirty map[uint64]struct{}

	// Ratio tracks device-side lookups (host fill requests reaching HBM).
	Ratio stats.Ratio
	// DirtyEvictionsStalled counts evictions that had to evict a line whose
	// undo entry was not yet durable (forcing the device to wait).
	DirtyEvictionsStalled stats.Counter
}

// New builds a cache of the given total size (bytes) and associativity.
func New(sizeBytes, ways int, policy Policy) *Cache {
	lines := sizeBytes / LineSize
	if lines == 0 || ways <= 0 || lines%ways != 0 {
		panic(fmt.Sprintf("hbm: size %d / ways %d does not divide into sets", sizeBytes, ways))
	}
	numSets := lines / ways
	if numSets&(numSets-1) != 0 {
		panic(fmt.Sprintf("hbm: set count %d not a power of two", numSets))
	}
	sets := make([][]slot, numSets)
	for i := range sets {
		sets[i] = make([]slot, ways)
	}
	return &Cache{sets: sets, mask: uint64(numSets - 1), ways: ways, policy: policy,
		dirty: make(map[uint64]struct{})}
}

// Policy reports the configured eviction policy.
func (c *Cache) Policy() Policy { return c.policy }

func (c *Cache) set(addr uint64) []slot {
	return c.sets[(addr/LineSize)&c.mask]
}

// Lookup returns a pointer to the cached line for addr, or nil. It counts a
// hit or miss and refreshes LRU state on hit. The pointer is valid until the
// next Insert.
func (c *Cache) Lookup(addr uint64) *Line {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].line.Addr == addr {
			c.useCtr++
			set[i].lastUse = c.useCtr
			c.Ratio.Hits.Inc()
			return &set[i].line
		}
	}
	c.Ratio.Misses.Inc()
	return nil
}

// Peek is Lookup without statistics or LRU updates (used by the write-back
// coordinator's internal scans).
func (c *Cache) Peek(addr uint64) *Line {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].line.Addr == addr {
			return &set[i].line
		}
	}
	return nil
}

// Insert places ln into the cache. If the set is full it evicts a victim
// chosen by the policy and returns it with evicted=true; the caller (the
// device write-back coordinator) is responsible for writing a dirty victim
// to PM. durableBelow is the undo log's durable frontier, used by
// PreferDurable: a dirty line with LogBound ≤ durableBelow is free to leave.
func (c *Cache) Insert(ln Line, durableBelow uint64) (victim Line, evicted bool) {
	set := c.set(ln.Addr)
	// Replace in place if present.
	for i := range set {
		if set[i].valid && set[i].line.Addr == ln.Addr {
			c.useCtr++
			set[i].line = ln
			set[i].lastUse = c.useCtr
			c.index(ln)
			return Line{}, false
		}
	}
	var slotIdx = -1
	for i := range set {
		if !set[i].valid {
			slotIdx = i
			break
		}
	}
	if slotIdx < 0 {
		slotIdx = c.pickVictim(set, durableBelow)
		victim = set[slotIdx].line
		evicted = true
		if victim.Dirty {
			delete(c.dirty, victim.Addr)
			if victim.LogBound > durableBelow {
				c.DirtyEvictionsStalled.Inc()
			}
		}
	}
	c.useCtr++
	set[slotIdx] = slot{valid: true, line: ln, lastUse: c.useCtr}
	c.index(ln)
	return victim, evicted
}

// index records ln's dirty state in the dirty-address index.
func (c *Cache) index(ln Line) {
	if ln.Dirty {
		c.dirty[ln.Addr] = struct{}{}
	} else {
		delete(c.dirty, ln.Addr)
	}
}

// pickVictim applies the eviction policy to a full set.
func (c *Cache) pickVictim(set []slot, durableBelow uint64) int {
	lruOf := func(accept func(*slot) bool) int {
		best := -1
		for i := range set {
			if !accept(&set[i]) {
				continue
			}
			if best < 0 || set[i].lastUse < set[best].lastUse {
				best = i
			}
		}
		return best
	}
	if c.policy == PlainLRU {
		return lruOf(func(*slot) bool { return true })
	}
	// PreferDurable: clean first, then durable-dirty, then any.
	if i := lruOf(func(s *slot) bool { return !s.line.Dirty }); i >= 0 {
		return i
	}
	if i := lruOf(func(s *slot) bool { return s.line.LogBound <= durableBelow }); i >= 0 {
		return i
	}
	return lruOf(func(*slot) bool { return true })
}

// MarkClean clears the dirty bit for addr (after the coordinator wrote the
// line to PM). Missing lines are ignored — the line may have been evicted.
func (c *Cache) MarkClean(addr uint64) {
	if ln := c.Peek(addr); ln != nil {
		ln.Dirty = false
		ln.LogBound = 0
		delete(c.dirty, addr)
	}
}

// Remove drops addr from the cache, returning the line if it was present.
func (c *Cache) Remove(addr uint64) (Line, bool) {
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].line.Addr == addr {
			set[i].valid = false
			delete(c.dirty, addr)
			return set[i].line, true
		}
	}
	return Line{}, false
}

// ForEachDirty calls fn for every dirty line, in no particular order (the
// device sorts by address where determinism matters). fn must not insert or
// remove, and must not flip Dirty except through MarkClean after iteration.
// The walk visits only the dirty index, so persist cost scales with the
// epoch's write-back set rather than the cache geometry.
func (c *Cache) ForEachDirty(fn func(*Line)) {
	for addr := range c.dirty {
		if ln := c.Peek(addr); ln != nil && ln.Dirty {
			fn(ln)
		}
	}
}

// Len reports the number of valid lines.
func (c *Cache) Len() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// DirtyCount reports the number of dirty lines buffered.
func (c *Cache) DirtyCount() int { return len(c.dirty) }
