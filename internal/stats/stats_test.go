package stats

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Load())
	}
	c.Add(42)
	if c.Load() != 8042 {
		t.Fatalf("counter = %d, want 8042", c.Load())
	}
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestRatio(t *testing.T) {
	var r Ratio
	if r.HitRate() != 0 || r.MissRate() != 0 {
		t.Fatal("empty ratio must report 0")
	}
	r.Hits.Add(3)
	r.Misses.Add(1)
	if r.Total() != 4 {
		t.Fatalf("total = %d", r.Total())
	}
	if r.HitRate() != 0.75 {
		t.Fatalf("hit rate = %g", r.HitRate())
	}
	if r.MissRate() != 0.25 {
		t.Fatalf("miss rate = %g", r.MissRate())
	}
	r.Reset()
	if r.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 110 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if h.Mean() != 22 {
		t.Fatalf("mean = %g", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min=%d max=%d", h.Min(), h.Max())
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("q0 = %d", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("q1 = %d", got)
	}
	if !strings.Contains(h.String(), "n=5") {
		t.Fatalf("String() = %q", h.String())
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestHistogramNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram().Observe(-1)
}

// Property: quantile estimates bracket the true order statistics within the
// log2 bucket bound (estimate ≥ true value, estimate ≤ 2x true value or max).
func TestHistogramQuantileProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Observe(int64(v))
		}
		// Quantiles must be within [min, max] and monotone in q.
		prev := int64(0)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
			est := h.Quantile(q)
			if est < h.Min() || est > h.Max() {
				return false
			}
			if est < prev {
				return false
			}
			prev = est
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Fig 2a", "config", "amat_ns")
	tb.AddRowf("dram", 10.5)
	tb.AddRowf("pm", 18.25)
	out := tb.String()
	if !strings.Contains(out, "## Fig 2a") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "config") || !strings.Contains(out, "dram") {
		t.Fatalf("missing cells: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestSummaryMergeAndString(t *testing.T) {
	a := Summary{"x": 1, "y": 2}
	b := Summary{"y": 3, "z": 4}
	a.Merge(b)
	if a["y"] != 5 || a["z"] != 4 {
		t.Fatalf("merge wrong: %v", a)
	}
	s := a.String()
	// Sorted by key.
	if !(strings.Index(s, "x=") < strings.Index(s, "y=") && strings.Index(s, "y=") < strings.Index(s, "z=")) {
		t.Fatalf("not sorted: %q", s)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "plain")
	tb.AddRow("2", `with,comma and "quote"`)
	csv := tb.CSV()
	want := "a,b\n1,plain\n2,\"with,comma and \"\"quote\"\"\"\n"
	if csv != want {
		t.Fatalf("CSV:\n%q\nwant\n%q", csv, want)
	}
}

func TestCounterStoreMax(t *testing.T) {
	var c Counter
	c.StoreMax(5)
	if c.Load() != 5 {
		t.Fatalf("counter = %d, want 5", c.Load())
	}
	c.StoreMax(3) // lower values never regress the high-water mark
	if c.Load() != 5 {
		t.Fatalf("counter = %d after lower StoreMax, want 5", c.Load())
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.StoreMax(uint64(i*1000 + j))
			}
		}(i)
	}
	wg.Wait()
	if c.Load() != 7999 {
		t.Fatalf("concurrent StoreMax = %d, want 7999", c.Load())
	}
}
