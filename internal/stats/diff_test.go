package stats

import (
	"testing"
	"time"
)

func TestSummaryDiff(t *testing.T) {
	prev := Summary{
		"ops":                    100,
		"gets":                   40,
		"vanished":               7,
		`commit_ns{q="p99"}`:     5000,
		`lat{shard="0",q="p50"}`: 10,
	}
	cur := Summary{
		"ops":                    250, // counter advanced
		"gets":                   40,  // unchanged
		"fresh":                  12,  // key absent in prev counts from zero
		`commit_ns{q="p99"}`:     9000,
		`lat{shard="0",q="p50"}`: 20,
	}
	d := cur.Diff(prev)
	if d["ops"] != 150 || d["gets"] != 0 || d["fresh"] != 12 {
		t.Fatalf("diff = %v", d)
	}
	if _, ok := d["vanished"]; ok {
		t.Fatalf("key present only in prev must be dropped, got %v", d)
	}
	for k := range d {
		if k == `commit_ns{q="p99"}` || k == `lat{shard="0",q="p50"}` {
			t.Fatalf("quantile gauge %q leaked into a counter diff", k)
		}
	}
}

func TestSummaryRate(t *testing.T) {
	d := Summary{"ops": 150, "idle": 0}
	r := d.Rate(3 * time.Second)
	if r["ops"] != 50 || r["idle"] != 0 {
		t.Fatalf("rate = %v", r)
	}
	if got := d.Rate(0); len(got) != 0 {
		t.Fatalf("zero window must yield no rates, got %v", got)
	}
	if got := d.Rate(-time.Second); len(got) != 0 {
		t.Fatalf("negative window must yield no rates, got %v", got)
	}
}
