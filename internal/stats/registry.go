package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry aggregates named metrics from many components into one sampled
// view. Components register gauge functions (sampled at read time), counters,
// or ratios under stable snake_case names; consumers take a Snapshot or
// render the whole registry as text with WriteTo. Registration and sampling
// are safe for concurrent use, but a gauge function must itself be safe to
// call from the sampling goroutine.
type Registry struct {
	mu     sync.Mutex
	gauges map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{gauges: make(map[string]func() float64)}
}

// Register adds a gauge sampled by fn. Names must be non-empty, contain no
// whitespace (they become `name value` text lines), and be unique; violations
// panic — metric names are compile-time decisions, not runtime input.
func (r *Registry) Register(name string, fn func() float64) {
	if name == "" || strings.ContainsAny(name, " \t\n") {
		panic(fmt.Sprintf("stats: invalid metric name %q", name))
	}
	if fn == nil {
		panic(fmt.Sprintf("stats: nil gauge func for %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.gauges[name]; dup {
		panic(fmt.Sprintf("stats: duplicate metric name %q", name))
	}
	r.gauges[name] = fn
}

// RegisterCounter registers c's live value under name.
func (r *Registry) RegisterCounter(name string, c *Counter) {
	r.Register(name, func() float64 { return float64(c.Load()) })
}

// RegisterRatio registers ra as two gauges, prefix_hits and prefix_misses.
func (r *Registry) RegisterRatio(prefix string, ra *Ratio) {
	r.RegisterCounter(prefix+"_hits", &ra.Hits)
	r.RegisterCounter(prefix+"_misses", &ra.Misses)
}

// Merge registers every metric of other into r (panicking on name
// collisions, like Register). Later samples read other's live gauges.
func (r *Registry) Merge(other *Registry) {
	other.mu.Lock()
	names := make(map[string]func() float64, len(other.gauges))
	for k, v := range other.gauges {
		names[k] = v
	}
	other.mu.Unlock()
	for k, v := range names {
		r.Register(k, v)
	}
}

// Snapshot samples every gauge into a Summary.
func (r *Registry) Snapshot() Summary {
	r.mu.Lock()
	fns := make(map[string]func() float64, len(r.gauges))
	for k, v := range r.gauges {
		fns[k] = v
	}
	r.mu.Unlock()
	s := make(Summary, len(fns))
	for k, fn := range fns {
		s[k] = fn()
	}
	return s
}

// WriteTo renders the registry as Prometheus-style `name value` lines,
// sorted by name, one metric per line. Integral values print without a
// decimal point. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	return r.Snapshot().WriteTo(w)
}

// WriteTo renders the summary as Prometheus-style `name value` lines, sorted
// by name — the same text format Registry.WriteTo emits, available for
// summaries assembled away from a live registry (e.g. merged multi-shard
// snapshots). It implements io.WriterTo.
func (s Summary) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(s))
	for k := range s {
		names = append(names, k)
	}
	sort.Strings(names)
	var n int64
	for _, name := range names {
		v := s[name]
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// A gauge dividing by a zero denominator yields NaN/±Inf, which
			// the plain `name value` consumers (strconv.ParseFloat callers,
			// the bench JSON) choke on — clamp to 0 rather than emit an
			// unparseable (or platform-defined, via the int64 conversion
			// below) line.
			v = 0
		}
		var line string
		if v == float64(int64(v)) {
			line = fmt.Sprintf("%s %d\n", name, int64(v))
		} else {
			line = fmt.Sprintf("%s %g\n", name, v)
		}
		m, err := io.WriteString(w, line)
		n += int64(m)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Text renders WriteTo into a string.
func (r *Registry) Text() string {
	var b strings.Builder
	_, _ = r.WriteTo(&b)
	return b.String()
}
