package stats

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestLatencyHistogramBasics(t *testing.T) {
	var h LatencyHistogram // zero value must be ready
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("sum = %d, want 5050", h.Sum())
	}
	if got := h.Mean(); got != 50.5 {
		t.Fatalf("mean = %g, want 50.5", got)
	}
	s := h.Snapshot()
	if s.Min != 1 {
		t.Fatalf("min = %d, want 1", s.Min)
	}
	// 100 falls in the first log-linear bucket [100, 101]; Max is its upper
	// bound.
	if s.Max < 100 || s.Max > 103 {
		t.Fatalf("max = %d, want ≈100", s.Max)
	}
	if p50 := s.Quantile(0.5); p50 < 50 || p50 > 53 {
		t.Fatalf("p50 = %d, want ≈50", p50)
	}
}

func TestLatencyHistogramNegativeClamped(t *testing.T) {
	var h LatencyHistogram
	h.Observe(-5)
	if h.Count() != 1 || h.Sum() != 0 {
		t.Fatalf("count=%d sum=%d after negative sample, want 1, 0", h.Count(), h.Sum())
	}
	if got := h.Quantile(1); got != 0 {
		t.Fatalf("max after clamped negative = %d, want 0", got)
	}
}

func TestLatencyHistogramEmpty(t *testing.T) {
	var h LatencyHistogram
	s := h.Snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || s.Quantile(0.99) != 0 || s.Mean() != 0 {
		t.Fatalf("empty snapshot not all-zero: %+v", s)
	}
}

// TestLatencyHistogramQuantileAccuracy checks the log-linear error bound: the
// quantile estimate must be within one bucket (≤ 1/latSubCount relative, +1
// for the upper-bound convention) of the true order statistic, across six
// decades of magnitude.
func TestLatencyHistogramQuantileAccuracy(t *testing.T) {
	var h LatencyHistogram
	var samples []int64
	v := int64(1)
	for len(samples) < 20000 {
		samples = append(samples, v)
		// Deterministic spread from 1 ns to ~3 ms.
		v = v*21/20 + 1
		if v > 3_000_000 {
			v = 1
		}
		h.Observe(samples[len(samples)-1])
	}
	// Samples were generated in repeating ascending ramps; sort-free exact
	// quantiles need a sorted copy.
	sorted := append([]int64(nil), samples...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		got := s.Quantile(q)
		exact := sorted[int(q*float64(len(sorted)))]
		relErr := math.Abs(float64(got)-float64(exact)) / float64(exact)
		if relErr > 1.0/latSubCount+0.001 {
			t.Errorf("q=%g: estimate %d vs exact %d, rel err %.4f > %.4f",
				q, got, exact, relErr, 1.0/latSubCount)
		}
	}
}

// TestLatencyBucketRoundTrip verifies the bucket geometry: every sample maps
// into a bucket whose [lower, upper] range contains it, indices are monotone,
// and the largest int64 stays in range.
func TestLatencyBucketRoundTrip(t *testing.T) {
	prev := -1
	for _, v := range []uint64{0, 1, 31, 63, 64, 65, 127, 128, 1000, 4096, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := latBucket(v)
		if idx < 0 || idx >= latBuckets {
			t.Fatalf("latBucket(%d) = %d out of range [0, %d)", v, idx, latBuckets)
		}
		if idx < prev {
			t.Fatalf("latBucket not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
		if lo, hi := latLower(idx), latUpper(idx); int64(v) < lo || int64(v) > hi {
			t.Fatalf("sample %d outside its bucket %d range [%d, %d]", v, idx, lo, hi)
		}
	}
}

// TestLatencyHistogramConcurrent hammers one histogram from many recorders
// while snapshots run — the -race check that the lock-free claim holds, plus
// an exact count/sum check once the dust settles.
func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	const goroutines = 8
	const perG = 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent reader: snapshots must stay internally sane
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count > 0 && (s.Quantile(0.99) < s.Min || s.Quantile(0.99) > s.Max) {
				t.Error("snapshot quantile outside [min, max]")
				return
			}
		}
	}()
	var writers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*1000 + i))
			}
		}(g)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if h.Count() != goroutines*perG {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*perG)
	}
}

func TestRegisterLatencyHistogram(t *testing.T) {
	r := NewRegistry()
	var h LatencyHistogram
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i))
	}
	r.RegisterLatencyHistogram("commit_ns", &h)
	text := r.Text()
	for _, want := range []string{
		`commit_ns{q="p50"} `, `commit_ns{q="p90"} `, `commit_ns{q="p99"} `,
		`commit_ns{q="p999"} `, "commit_ns_count 1000\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry text missing %q:\n%s", want, text)
		}
	}
	// Every line must still be the plain two-field `name value` format.
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if got := len(strings.Fields(line)); got != 2 {
			t.Errorf("line %q has %d fields, want 2", line, got)
		}
	}
}

func TestSummaryWriteToClampsNaNInf(t *testing.T) {
	s := Summary{
		"ok":       3,
		"bad_nan":  math.NaN(),
		"bad_pinf": math.Inf(1),
		"bad_ninf": math.Inf(-1),
	}
	var b strings.Builder
	if _, err := s.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{"bad_nan 0\n", "bad_pinf 0\n", "bad_ninf 0\n", "ok 3\n"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	for i, line := range strings.Split(strings.TrimSpace(text), "\n") {
		var name string
		var v float64
		if _, err := fmt.Sscanf(line, "%s %g", &name, &v); err != nil {
			t.Errorf("line %d %q does not parse as `name value`: %v", i, line, err)
		}
	}
}
