package stats

import (
	"strings"
	"testing"
)

func TestRegistryWriteTo(t *testing.T) {
	r := NewRegistry()
	var c Counter
	c.Add(42)
	r.RegisterCounter("beta_total", &c)
	r.Register("alpha_rate", func() float64 { return 0.5 })
	var ra Ratio
	ra.Hits.Add(3)
	ra.Misses.Add(1)
	r.RegisterRatio("gamma", &ra)

	got := r.Text()
	want := "alpha_rate 0.5\nbeta_total 42\ngamma_hits 3\ngamma_misses 1\n"
	if got != want {
		t.Fatalf("WriteTo:\n%s\nwant:\n%s", got, want)
	}

	// Live sampling: counters read at render time, not registration time.
	c.Add(8)
	if !strings.Contains(r.Text(), "beta_total 50\n") {
		t.Fatalf("registry did not sample live counter: %s", r.Text())
	}

	s := r.Snapshot()
	if s["beta_total"] != 50 || s["alpha_rate"] != 0.5 {
		t.Fatalf("bad snapshot %v", s)
	}
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Register("a_metric", func() float64 { return 1 })
	b.Register("b_metric", func() float64 { return 2 })
	a.Merge(b)
	if got := a.Text(); got != "a_metric 1\nb_metric 2\n" {
		t.Fatalf("merged registry: %q", got)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	r.Register("ok", func() float64 { return 0 })
	for _, bad := range []string{"", "has space", "ok"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Register(%q) did not panic", bad)
				}
			}()
			r.Register(bad, func() float64 { return 0 })
		}()
	}
}
