// Package stats provides the counters, histograms, and rate trackers shared
// by the simulator components and the benchmark harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event counter, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load reports the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// StoreMax raises the counter to n if n is larger, atomically — for
// gauge-style high-water marks sampled concurrently with updates (a
// Reset+Add pair would expose a transient 0 to readers).
func (c *Counter) StoreMax(n uint64) {
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Ratio is a hit/miss style two-way counter.
type Ratio struct {
	Hits, Misses Counter
}

// Total reports hits+misses.
func (r *Ratio) Total() uint64 { return r.Hits.Load() + r.Misses.Load() }

// HitRate reports hits / (hits+misses); zero total reports 0.
func (r *Ratio) HitRate() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return float64(r.Hits.Load()) / float64(t)
}

// MissRate reports 1 - HitRate for a non-empty ratio, else 0.
func (r *Ratio) MissRate() float64 {
	t := r.Total()
	if t == 0 {
		return 0
	}
	return float64(r.Misses.Load()) / float64(t)
}

// Reset zeroes both sides.
func (r *Ratio) Reset() { r.Hits.Reset(); r.Misses.Reset() }

// Histogram is a log2-bucketed histogram of non-negative int64 samples
// (typically picosecond latencies). It keeps exact min/max/sum and per-bucket
// counts. Not safe for concurrent use; each simulated context owns its own.
type Histogram struct {
	buckets [64]uint64
	count   uint64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{min: math.MaxInt64} }

func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return 64 - int(leadingZeros(uint64(v)))
}

func leadingZeros(x uint64) uint {
	n := uint(0)
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Observe records one sample; negative samples panic (latencies are never
// negative, and silently clamping would hide simulator bugs).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram sample %d", v))
	}
	b := bucketOf(v)
	if b > 63 {
		b = 63
	}
	h.buckets[b]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the sample total.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean reports the average sample, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min reports the smallest sample, 0 when empty.
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, 0 when empty.
func (h *Histogram) Max() int64 { return h.max }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from bucket boundaries. The
// estimate is the upper bound of the bucket containing the quantile, which is
// within 2x of the true value — adequate for latency reporting.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	target := uint64(q * float64(h.count))
	var cum uint64
	for b, n := range h.buckets {
		cum += n
		if cum > target {
			if b == 0 {
				return 0
			}
			hi := int64(1) << uint(b)
			if hi > h.max {
				hi = h.max
			}
			return hi
		}
	}
	return h.max
}

// Reset empties the histogram.
func (h *Histogram) Reset() { *h = Histogram{min: math.MaxInt64} }

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p99=%d max=%d",
		h.count, h.Mean(), h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// Table accumulates named numeric results and renders them as an aligned
// text table — the benchmark harness uses it to print paper-style rows.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted values: each argument is rendered with
// %v for strings and %.4g for floats.
func (t *Table) AddRowf(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, hd := range t.Headers {
		widths[i] = len(hd)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first).
// Cells containing commas or quotes are quoted per RFC 4180.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(cell, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Summary holds a set of named scalar metrics collected from one experiment
// run, rendered deterministically (sorted by key).
type Summary map[string]float64

// Merge adds all entries of other into s, summing on key collision.
func (s Summary) Merge(other Summary) {
	for k, v := range other {
		s[k] += v
	}
}

// Diff returns the per-key difference s - prev for counter-like series: the
// windowed delta a rate computation or telemetry snapshot wants. Keys missing
// from prev count as zero (a counter that appeared mid-window), and keys that
// vanished from s are dropped (the series' owner is gone — a retired shard's
// gauge has no meaningful delta). Quantile series — keys carrying a `{q="..."}`
// label — are skipped entirely: a histogram quantile is a distribution
// statistic, not a cumulative counter, and subtracting two of them yields
// nothing meaningful (window a histogram via LatencySnapshot.Sub instead).
func (s Summary) Diff(prev Summary) Summary {
	out := make(Summary, len(s))
	for k, v := range s {
		if strings.Contains(k, `{q="`) || strings.Contains(k, `,q="`) {
			continue
		}
		out[k] = v - prev[k]
	}
	return out
}

// Rate divides every entry by the window length in seconds, turning a Diff
// result into per-second rates. A non-positive window returns an empty
// summary rather than infinities.
func (s Summary) Rate(window time.Duration) Summary {
	if window <= 0 {
		return Summary{}
	}
	secs := window.Seconds()
	out := make(Summary, len(s))
	for k, v := range s {
		out[k] = v / secs
	}
	return out
}

// String renders the summary sorted by key.
func (s Summary) String() string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%.4g ", k, s[k])
	}
	return strings.TrimSpace(b.String())
}
