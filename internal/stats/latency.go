package stats

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// This file is the serving-side latency histogram: unlike Histogram (which
// belongs to one simulated context and is deliberately single-threaded),
// LatencyHistogram is recorded from many goroutines on hot paths — every GET,
// every group commit — so it is lock-free end to end: an Observe is a handful
// of atomic adds, and a Snapshot reads the buckets without stopping writers.

// Log-linear bucket geometry: values below latPrecise get an exact bucket;
// above that, each power of two is split into latSubCount linear sub-buckets,
// so the relative bucket width is at most 1/latSubCount ≈ 3% — about two
// significant digits, enough for latency reporting where the sample noise is
// far wider than the bucket.
const (
	latSubBits   = 5
	latSubCount  = 1 << latSubBits // linear sub-buckets per power of two
	latPrecise   = latSubCount * 2 // values below this are bucketed exactly
	latNumMajors = 64 - (latSubBits + 1)
	latBuckets   = latPrecise + latNumMajors*latSubCount
)

// latBucket maps a non-negative sample to its bucket index.
func latBucket(v uint64) int {
	if v < latPrecise {
		return int(v)
	}
	b := bits.Len64(v)               // ≥ latSubBits+2
	top := v >> uint(b-latSubBits-1) // top latSubBits+1 bits, in [latSubCount, 2*latSubCount)
	return latPrecise + (b-latSubBits-2)*latSubCount + int(top) - latSubCount
}

// latUpper is the largest sample that maps to bucket idx — the value a
// quantile estimate reports for it (matching Histogram.Quantile's convention
// of answering with the bucket's upper bound).
func latUpper(idx int) int64 {
	if idx < latPrecise {
		return int64(idx)
	}
	major := (idx - latPrecise) / latSubCount
	top := uint64(latSubCount + (idx-latPrecise)%latSubCount)
	return int64((top+1)<<uint(major+1) - 1)
}

// latLower is the smallest sample that maps to bucket idx.
func latLower(idx int) int64 {
	if idx < latPrecise {
		return int64(idx)
	}
	major := (idx - latPrecise) / latSubCount
	top := uint64(latSubCount + (idx-latPrecise)%latSubCount)
	return int64(top << uint(major+1))
}

// LatencyHistogram is a lock-free log-linear histogram of non-negative int64
// samples (nanosecond latencies by convention). The zero value is ready to
// use; all methods are safe for concurrent use. Negative samples are clamped
// to zero: on live serving paths a latency can come out of a clock that
// stepped, and panicking a writer loop over a telemetry sample would invert
// the priority of the two.
type LatencyHistogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	buckets [latBuckets]atomic.Uint64
}

// Observe records one sample.
func (h *LatencyHistogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[latBucket(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Since records the nanoseconds elapsed since t0 — the idiomatic hot-path
// call: defer-free, one time.Since.
func (h *LatencyHistogram) Since(t0 time.Time) {
	h.Observe(time.Since(t0).Nanoseconds())
}

// Count reports the number of samples recorded.
func (h *LatencyHistogram) Count() uint64 { return h.count.Load() }

// Sum reports the sample total.
func (h *LatencyHistogram) Sum() int64 { return h.sum.Load() }

// Mean reports the average sample, 0 when empty.
func (h *LatencyHistogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) as the upper bound of the
// bucket holding it — within one bucket width (≈3%) of the true value. It
// scans the buckets once; concurrent Observes may or may not be included.
func (h *LatencyHistogram) Quantile(q float64) int64 {
	s := h.Snapshot()
	return s.Quantile(q)
}

// LatencySnapshot is a point-in-time copy of a LatencyHistogram, from which
// any number of quantiles can be computed consistently (all against the same
// bucket counts).
type LatencySnapshot struct {
	Count uint64
	Sum   int64
	// Min and Max are bucket-resolution bounds on the smallest and largest
	// samples (lower bound of the first occupied bucket, upper bound of the
	// last), 0 when empty.
	Min, Max int64

	buckets [latBuckets]uint64
}

// Snapshot copies the bucket counts. The copy is not atomic with respect to
// concurrent Observes — a sample landing mid-scan may be missed — but every
// quantile computed from one snapshot answers against the same counts, and
// Count is the copied total, so the snapshot is internally consistent.
func (h *LatencyHistogram) Snapshot() LatencySnapshot {
	var s LatencySnapshot
	first, last := -1, -1
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.buckets[i] = n
		s.Count += n
		if first < 0 {
			first = i
		}
		last = i
	}
	s.Sum = h.sum.Load()
	if first >= 0 {
		s.Min = latLower(first)
		s.Max = latUpper(last)
	}
	return s
}

// Quantile estimates the q-quantile from the snapshot's buckets (upper-bound
// convention, clamped to the snapshot's Max).
func (s *LatencySnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	target := uint64(q * float64(s.Count))
	var cum uint64
	for i, n := range s.buckets {
		cum += n
		if cum > target {
			v := latUpper(i)
			if v > s.Max {
				v = s.Max
			}
			return v
		}
	}
	return s.Max
}

// Sub returns the samples recorded between prev and s: the bucket-wise
// difference of two snapshots of the same histogram, with s the newer one —
// a windowed view over a cumulative histogram, from which windowed quantiles
// answer. Buckets that appear to shrink (prev taken mid-Observe) clamp to
// zero rather than going negative.
func (s *LatencySnapshot) Sub(prev *LatencySnapshot) LatencySnapshot {
	var d LatencySnapshot
	first, last := -1, -1
	for i := range s.buckets {
		if s.buckets[i] <= prev.buckets[i] {
			continue
		}
		n := s.buckets[i] - prev.buckets[i]
		d.buckets[i] = n
		d.Count += n
		if first < 0 {
			first = i
		}
		last = i
	}
	if d.Sum = s.Sum - prev.Sum; d.Sum < 0 {
		d.Sum = 0
	}
	if first >= 0 {
		d.Min = latLower(first)
		d.Max = latUpper(last)
	}
	return d
}

// Mean reports the snapshot's average sample, 0 when empty.
func (s *LatencySnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Reset zeroes the histogram. Concurrent Observes may survive a reset
// partially (count without bucket, or vice versa); reset between runs, not
// under load.
func (h *LatencyHistogram) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// String summarizes the histogram.
func (h *LatencyHistogram) String() string {
	s := h.Snapshot()
	return fmt.Sprintf("n=%d mean=%.1f min=%d p50=%d p99=%d max=%d",
		s.Count, s.Mean(), s.Min, s.Quantile(0.5), s.Quantile(0.99), s.Max)
}

// histogramQuantiles are the quantile views RegisterLatencyHistogram exposes.
var histogramQuantiles = []struct {
	Label string
	Q     float64
}{
	{"p50", 0.5},
	{"p90", 0.9},
	{"p99", 0.99},
	{"p999", 0.999},
}

// RegisterLatencyHistogram registers h's quantile, count, and sum views:
//
//	name{q="p50"} … name{q="p999"}   quantile estimates
//	name_count                       samples recorded
//	name_sum                         sample total
//
// The label syntax rides inside the metric name, so the registry's plain
// `name value` text format — and every consumer that splits on whitespace —
// is unchanged. Aggregators must not sum quantile lines across sources (the
// sharded router takes the max, the worst tail; counts and sums add).
func (r *Registry) RegisterLatencyHistogram(name string, h *LatencyHistogram) {
	for _, hq := range histogramQuantiles {
		q := hq.Q
		r.Register(fmt.Sprintf("%s{q=%q}", name, hq.Label),
			func() float64 { return float64(h.Quantile(q)) })
	}
	r.Register(name+"_count", func() float64 { return float64(h.Count()) })
	r.Register(name+"_sum", func() float64 { return float64(h.Sum()) })
}
