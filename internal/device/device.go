// Package device implements the PAX persistence accelerator (§3 of the
// paper): a cache-coherent device that is the home agent for a vPM address
// range. It interposes on the host's coherence traffic via a CXL link,
// performs asynchronous undo logging when the host acquires lines for
// modification, buffers and writes back dirty lines under the constraint
// that a line's undo entry must be durable first, and implements the
// epoch-based persist() protocol with device-to-host SnpData recalls.
package device

import (
	"fmt"
	"sort"

	"pax/internal/coherence"
	"pax/internal/cxl"
	"pax/internal/hbm"
	"pax/internal/pmem"
	"pax/internal/sim"
	"pax/internal/stats"
	"pax/internal/undolog"
)

// LineSize is the coherence granule.
const LineSize = coherence.LineSize

// Config parameterizes a PAX device.
type Config struct {
	// Link selects the transport profile (CXL or Enzian class).
	Link sim.LinkProfile
	// HBMSize and HBMWays size the on-device cache; HBMSize 0 disables it.
	HBMSize, HBMWays int
	// Policy selects the HBM eviction policy.
	Policy hbm.Policy
}

// DefaultConfig returns a CXL-class device with a 16 MiB, 8-way HBM cache.
func DefaultConfig() Config {
	return Config{Link: sim.CXLLink, HBMSize: 16 << 20, HBMWays: 8, Policy: hbm.PreferDurable}
}

// Stats aggregates device-side event counters.
type Stats struct {
	LogAppends     stats.Counter // undo entries written
	LogSkips       stats.Counter // upgrades for lines already logged this epoch
	FillsServed    stats.Counter // host line fills
	HBMHits        stats.Counter // fills served from HBM
	WriteBacksRecv stats.Counter // dirty evictions received from the host
	SnoopsSent     stats.Counter // persist()-time SnpData recalls
	SnoopsDirty    stats.Counter // recalls that returned modified data
	LinesPersisted stats.Counter // lines written to PM data space
	Persists       stats.Counter // persist() calls completed
}

// PersistReport describes one completed persist() for harness output.
type PersistReport struct {
	Epoch        uint64
	LinesSnooped int
	LinesDirty   int
	LinesWritten int
	LogWaited    sim.Time // time spent waiting for log durability
	Done         sim.Time
}

// Device is one PAX accelerator instance. It implements coherence.Home for
// its vPM range. It is not safe for concurrent use; the cache hierarchy
// serializes home calls under its own lock, matching a single device
// pipeline.
type Device struct {
	cfg  Config
	pm   *pmem.Device
	link *cxl.Link

	hostBase uint64 // vPM base address in the host address space
	pmBase   uint64 // data region base on the PM device
	size     uint64
	epochPos uint64 // media address of the durable-epoch cell

	log   *undolog.Log
	cache *hbm.Cache
	host  coherence.Snooper

	epoch uint64 // current, not-yet-durable epoch

	// logged maps host line address → log bound (entry virtual offset +
	// entry size) for lines undo-logged in the current epoch. Its key set is
	// the epoch's modified-line set.
	logged map[uint64]uint64
	// logDone records, per log bound, the simulated time the entry becomes
	// durable; bounds are appended in increasing order with non-decreasing
	// times.
	logDone []logMark
	// lastLogDone is the durability time of the newest log entry.
	lastLogDone sim.Time
	// prevPersistDone serializes pipelined persists: epoch N+1 cannot
	// commit before epoch N.
	prevPersistDone sim.Time

	Stats Stats
}

type logMark struct {
	bound uint64
	at    sim.Time
}

// New builds a device in front of pm. The vPM data region is
// [pmBase, pmBase+size) on pm, exposed to the host at
// [hostBase, hostBase+size). log is the device's undo log (already created
// or recovered on the same pm). epochCell is the media address of the 8-byte
// durable-epoch cell; startEpoch is the first epoch to run (durable+1).
func New(cfg Config, pm *pmem.Device, hostBase, pmBase, size uint64, log *undolog.Log, epochCell, startEpoch uint64) *Device {
	if hostBase%LineSize != 0 || pmBase%LineSize != 0 || size%LineSize != 0 {
		panic("device: vPM geometry must be line-aligned")
	}
	d := &Device{
		cfg:      cfg,
		pm:       pm,
		link:     cxl.NewLink(cfg.Link),
		hostBase: hostBase,
		pmBase:   pmBase,
		size:     size,
		epochPos: epochCell,
		log:      log,
		epoch:    startEpoch,
		logged:   make(map[uint64]uint64),
	}
	if cfg.HBMSize > 0 {
		d.cache = hbm.New(cfg.HBMSize, cfg.HBMWays, cfg.Policy)
	}
	return d
}

// AttachHost wires the host hierarchy so the device can issue D2H snoops.
// It must be called before the first Persist.
func (d *Device) AttachHost(h coherence.Snooper) { d.host = h }

// Link exposes the device's CXL link for experiment accounting.
func (d *Device) Link() *cxl.Link { return d.link }

// Epoch reports the current (not yet durable) epoch number.
func (d *Device) Epoch() uint64 { return d.epoch }

// Log exposes the undo log (tests and the inspector tool).
func (d *Device) Log() *undolog.Log { return d.log }

// HBM exposes the on-device cache, or nil if disabled.
func (d *Device) HBM() *hbm.Cache { return d.cache }

func (d *Device) toPM(hostAddr uint64) uint64 {
	if hostAddr < d.hostBase || hostAddr >= d.hostBase+d.size {
		panic(fmt.Sprintf("device: host address %#x outside vPM [%#x,+%#x)", hostAddr, d.hostBase, d.size))
	}
	return hostAddr - d.hostBase + d.pmBase
}

func (d *Device) toHost(pmAddr uint64) uint64 { return pmAddr - d.pmBase + d.hostBase }

// durableBelow reports the highest log bound durable at time `now`.
func (d *Device) durableBelow(now sim.Time) uint64 {
	i := sort.Search(len(d.logDone), func(i int) bool { return d.logDone[i].at > now })
	if i == 0 {
		return d.log.Tail()
	}
	return d.logDone[i-1].bound
}

// durableAt reports when the given log bound becomes durable (the time of
// the first mark with bound ≥ the requested one).
func (d *Device) durableAt(bound uint64) sim.Time {
	i := sort.Search(len(d.logDone), func(i int) bool { return d.logDone[i].bound >= bound })
	if i == len(d.logDone) {
		return d.lastLogDone
	}
	return d.logDone[i].at
}

// logLine undo-logs the pre-image of the line at hostAddr if it has not been
// logged this epoch. Logging is asynchronous: the append is queued on PM
// write bandwidth and the host is not stalled (§3.2). Returns the line's log
// bound.
func (d *Device) logLine(hostAddr uint64, at sim.Time) uint64 {
	if bound, ok := d.logged[hostAddr]; ok {
		d.Stats.LogSkips.Inc()
		return bound
	}
	pmAddr := d.toPM(hostAddr)
	// The pre-image is the current PM content. A clean HBM copy equals it;
	// a dirty HBM copy cannot exist here (dirty lines are always logged
	// already this epoch, and persist() cleans everything).
	var old [LineSize]byte
	if d.cache != nil {
		if ln := d.cache.Peek(hostAddr); ln != nil {
			if ln.Dirty {
				panic(fmt.Sprintf("device: unlogged line %#x dirty in HBM", hostAddr))
			}
			old = ln.Data
		} else {
			d.pm.Read(pmAddr, old[:], at)
		}
	} else {
		d.pm.Read(pmAddr, old[:], at)
	}
	off, done, err := d.log.Append(d.epoch, pmAddr, old, at)
	if err != nil {
		panic(fmt.Sprintf("device: %v — size the undo log for the epoch working set or call persist() more often", err))
	}
	bound := off + undolog.EntrySize
	d.logged[hostAddr] = bound
	d.logDone = append(d.logDone, logMark{bound: bound, at: done})
	if done > d.lastLogDone {
		d.lastLogDone = done
	}
	d.Stats.LogAppends.Inc()
	return bound
}

// insertHBM places a line into the HBM cache, handling victim write-back.
// Returns the time after any forced stall (an undurable dirty victim cannot
// leave until its undo entry persists).
func (d *Device) insertHBM(ln hbm.Line, at sim.Time) sim.Time {
	if d.cache == nil {
		if ln.Dirty {
			// No buffer: write through once the log entry is durable.
			at = sim.MaxTime(at, d.durableAt(ln.LogBound))
			d.pm.Write(d.toPM(ln.Addr), ln.Data[:], at)
			d.Stats.LinesPersisted.Inc()
		}
		return at
	}
	victim, evicted := d.cache.Insert(ln, d.durableBelow(at))
	if evicted && victim.Dirty {
		wbAt := sim.MaxTime(at, d.durableAt(victim.LogBound))
		if wbAt > at {
			at = wbAt // the device pipeline stalls for the log
		}
		d.pm.Write(d.toPM(victim.Addr), victim.Data[:], at)
		d.Stats.LinesPersisted.Inc()
	}
	return at
}

// FetchLine implements coherence.Home: serve a host fill. Exclusive fetches
// (RdOwn) trigger undo logging; read fetches are granted Shared so that the
// host's first store is always visible to the device (§3.1 "Stores").
func (d *Device) FetchLine(hostAddr uint64, excl bool, buf []byte, at sim.Time) coherence.FillResult {
	op := cxl.RdShared
	if excl {
		op = cxl.RdOwn
	}
	at = d.link.ToDevice(cxl.Message{Op: op, Addr: hostAddr}, at)
	at = d.link.DeviceProcess(at)
	d.Stats.FillsServed.Inc()

	if excl {
		d.logLine(hostAddr, at) // asynchronous: no wait
	}

	var data [LineSize]byte
	served := false
	if d.cache != nil {
		if ln := d.cache.Lookup(hostAddr); ln != nil {
			data = ln.Data
			at += sim.HBMLatency
			served = true
			d.Stats.HBMHits.Inc()
		}
	}
	if !served {
		at = d.pm.Read(d.toPM(hostAddr), data[:], at)
		if d.cache != nil {
			at = d.insertHBM(hbm.Line{Addr: hostAddr, Data: data}, at)
		}
	}
	copy(buf, data[:])

	st := coherence.Shared
	if excl {
		st = coherence.Exclusive
	}
	resp := cxl.Message{Op: cxl.GO, Addr: hostAddr, Data: make([]byte, LineSize)}
	at = d.link.ToHost(resp, at)
	return coherence.FillResult{State: st, Done: at}
}

// UpgradeLine implements coherence.Home: the host upgrades a Shared line for
// writing. The device undo-logs asynchronously and acknowledges immediately.
func (d *Device) UpgradeLine(hostAddr uint64, at sim.Time) sim.Time {
	at = d.link.ToDevice(cxl.Message{Op: cxl.ItoMWr, Addr: hostAddr}, at)
	at = d.link.DeviceProcess(at)
	d.logLine(hostAddr, at)
	return d.link.ToHost(cxl.Message{Op: cxl.GO, Addr: hostAddr, Data: make([]byte, LineSize)}, at)
}

// WriteBackLine implements coherence.Home: the host evicted a dirty vPM
// line. The device buffers it; it reaches PM once its undo entry is durable.
func (d *Device) WriteBackLine(hostAddr uint64, data []byte, at sim.Time) sim.Time {
	msg := cxl.Message{Op: cxl.DirtyEvict, Addr: hostAddr, Data: append([]byte(nil), data...)}
	at = d.link.ToDevice(msg, at)
	at = d.link.DeviceProcess(at)
	d.Stats.WriteBacksRecv.Inc()

	bound, ok := d.logged[hostAddr]
	if !ok {
		// A dirty host line must have been granted exclusively this epoch,
		// which logged it. Reaching here is a protocol bug.
		panic(fmt.Sprintf("device: dirty write-back for unlogged line %#x", hostAddr))
	}
	var line [LineSize]byte
	copy(line[:], data)
	return d.insertHBM(hbm.Line{Addr: hostAddr, Data: line, Dirty: true, LogBound: bound}, at)
}

// Persist runs the §3.3 protocol at time `at`:
//
//  1. Recall (SnpData) every line modified this epoch, downgrading host
//     copies and collecting current values.
//  2. Wait for the epoch's undo-log entries to be durable.
//  3. Write every modified line back to PM data space.
//  4. Atomically advance the durable-epoch cell.
//  5. Truncate the undo log and open the next epoch.
//
// It returns a report whose Done field is when persist() returns to the
// application.
func (d *Device) Persist(at sim.Time) PersistReport {
	if d.host == nil && len(d.logged) > 0 {
		panic("device: Persist with no host attached")
	}
	rep := PersistReport{Epoch: d.epoch, LinesSnooped: len(d.logged)}

	// Deterministic iteration order for reproducible timings.
	addrs := make([]uint64, 0, len(d.logged))
	for a := range d.logged {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	// Phase 1: snoop back modified lines.
	for _, hostAddr := range addrs {
		at = d.link.ToHost(cxl.Message{Op: cxl.SnpData, Addr: hostAddr}, at)
		d.Stats.SnoopsSent.Inc()
		res := d.host.SnoopLine(hostAddr, coherence.SnpData, at)
		at = res.Done
		respOp := cxl.RspMiss
		if res.Present {
			respOp = cxl.RspData
		}
		respMsg := cxl.Message{Op: respOp, Addr: hostAddr}
		if respOp == cxl.RspData {
			respMsg.Data = make([]byte, LineSize)
		}
		at = d.link.ToDevice(respMsg, at)
		at = d.link.DeviceProcess(at)
		if res.Dirty {
			d.Stats.SnoopsDirty.Inc()
			rep.LinesDirty++
			at = d.insertHBM(hbm.Line{Addr: hostAddr, Data: res.Data, Dirty: true, LogBound: d.logged[hostAddr]}, at)
		}
	}

	// Phase 2: the epoch's undo entries must be durable before data
	// write-back may complete.
	if d.lastLogDone > at {
		rep.LogWaited = d.lastLogDone - at
		at = d.lastLogDone
	}

	// Phase 3: write back every still-dirty buffered line.
	var dirty []hbm.Line
	if d.cache != nil {
		d.cache.ForEachDirty(func(l *hbm.Line) { dirty = append(dirty, *l) })
	}
	sort.Slice(dirty, func(i, j int) bool { return dirty[i].Addr < dirty[j].Addr })
	for _, ln := range dirty {
		at = d.pm.Write(d.toPM(ln.Addr), ln.Data[:], at)
		d.cache.MarkClean(ln.Addr)
		d.Stats.LinesPersisted.Inc()
		rep.LinesWritten++
	}

	// Phase 4: atomically commit the epoch.
	var cell [8]byte
	putUint64(cell[:], d.epoch)
	at = d.pm.WriteAtomic(d.epochPos, cell[:], at)

	// Phase 5: drop the epoch's undo entries and start the next epoch.
	at = d.log.Truncate(d.log.Head(), at)
	d.epoch++
	d.logged = make(map[uint64]uint64)
	d.logDone = d.logDone[:0]
	d.lastLogDone = 0
	d.Stats.Persists.Inc()

	rep.Done = at
	return rep
}

// PersistPipelined is the §6 "fully non-blocking persist()" extension: it
// runs the same protocol as Persist, but the host is released after issuing
// the persist command (one link traversal) while the snoop, write-back, and
// commit work proceeds on the device timeline, overlapping the next epoch's
// execution. Successive pipelined persists commit in order. It returns the
// report (whose Done is the device-side commit time) and the host release
// time.
//
// The functional snapshot point is the call itself — the snoops capture line
// values now — matching the paper's constraint that host caches cannot hold
// two epoch versions of a line.
func (d *Device) PersistPipelined(at sim.Time) (PersistReport, sim.Time) {
	// The host posts a persist doorbell (an MMIO write, not a coherence
	// message) and continues immediately.
	release := d.link.ToDevice(cxl.Message{Op: cxl.CfgWr, Addr: d.hostBase}, at)
	start := sim.MaxTime(at, d.prevPersistDone)
	rep := d.Persist(start)
	d.prevPersistDone = rep.Done
	return rep, release
}

// ModifiedLines reports how many lines the current epoch has touched.
func (d *Device) ModifiedLines() int { return len(d.logged) }

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
